(* HEALER command-line interface.

   Subcommands:
     fuzz      run a fuzzing campaign on the simulated kernel
     target    print the compiled syscall description summary
     bugs      list the injected vulnerability catalog
     relations learn relations for a while and dump the table
     compare   head-to-head campaign of two tools
     analyze   static analysis of the description corpus
     lint      deprecated alias for a subset of analyze
     serve     sharded multi-process campaign with checkpoint/resume
     merge     CRDT-join two campaign checkpoints
     shard-status  inspect (and compare) campaign checkpoints *)

module Target = Healer_syzlang.Target
module Syscall = Healer_syzlang.Syscall
module K = Healer_kernel
module Diagnostic = Healer_analysis.Diagnostic
module Analysis = Healer_analysis.Analysis
open Healer_core
open Cmdliner

let version_conv =
  let parse s =
    match K.Version.of_string s with
    | Some v -> Ok v
    | None -> Error (`Msg (Printf.sprintf "unknown kernel version %S" s))
  in
  Arg.conv (parse, fun ppf v -> Fmt.string ppf (K.Version.to_string v))

let tool_conv =
  let parse = function
    | "healer" -> Ok Fuzzer.Healer
    | "healer-" -> Ok Fuzzer.Healer_minus
    | "syzkaller" -> Ok Fuzzer.Syzkaller
    | "moonshine" -> Ok Fuzzer.Moonshine
    | s -> Error (`Msg (Printf.sprintf "unknown tool %S" s))
  in
  Arg.conv (parse, fun ppf t -> Fmt.string ppf (Fuzzer.tool_name t))

let version_arg =
  Arg.(
    value
    & opt version_conv K.Version.V5_11
    & info [ "k"; "kernel" ] ~docv:"VERSION" ~doc:"Kernel version (4.19, 5.0, 5.4, 5.6, 5.11).")

let tool_arg =
  Arg.(
    value
    & opt tool_conv Fuzzer.Healer
    & info [ "t"; "tool" ] ~docv:"TOOL"
        ~doc:"Fuzzer: healer, healer-, syzkaller or moonshine.")

let hours_arg =
  Arg.(
    value
    & opt float 1.0
    & info [ "H"; "hours" ] ~docv:"HOURS" ~doc:"Virtual campaign duration in hours.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Random seed.")

(* Turn the library's typed failures into one-line CLI errors. *)
let or_die f =
  try f () with
  | Persist.Corrupt msg ->
    Fmt.epr "error: corrupt state file (%s)@." msg;
    exit 1
  | Healer_service.Checkpoint.Malformed msg ->
    Fmt.epr "error: corrupt checkpoint (%s)@." msg;
    exit 1
  | Healer_service.Shard_state.Malformed msg ->
    Fmt.epr "error: corrupt campaign state (%s)@." msg;
    exit 1
  | Failure msg ->
    Fmt.epr "error: %s@." msg;
    exit 1
  | Invalid_argument msg ->
    Fmt.epr "error: %s@." msg;
    exit 1
  | Healer_syzlang.Parser.Error { line; msg } ->
    Fmt.epr "error: parse failure at line %d: %s@." line msg;
    exit 1
  | Healer_syzlang.Lexer.Error { line; msg } ->
    Fmt.epr "error: lex failure at line %d: %s@." line msg;
    exit 1
  | Healer_syzlang.Target.Compile_error msg ->
    Fmt.epr "error: %s@." msg;
    exit 1
  | Sys_error msg ->
    Fmt.epr "error: %s@." msg;
    exit 1

let run_fuzz tool version hours seed load_rel save_rel load_corp save_corp =
  let cfg = Fuzzer.config ~seed ~tool ~version () in
  let initial_relations =
    Option.map (fun path -> or_die (fun () -> Persist.load_relations ~path)) load_rel
  in
  let initial_seeds =
    match load_corp with
    | Some path ->
      or_die (fun () -> Persist.load_corpus (Healer_kernel.Kernel.target ()) ~path)
    | None -> []
  in
  let f = Fuzzer.create ?initial_relations ~initial_seeds cfg in
  Fmt.pr "%s on Linux %s, %.1f virtual hours (seed %d)...@." (Fuzzer.tool_name tool)
    (K.Version.to_string version) hours seed;
  Fuzzer.run_until f (hours *. 3600.0);
  (match (save_rel, Fuzzer.relations f) with
  | Some path, Some table ->
    Persist.save_relations ~path table;
    Fmt.pr "saved %d relations to %s@." (Relation_table.count table) path
  | Some _, None -> Fmt.epr "this tool has no relation table to save@."
  | None, _ -> ());
  (match save_corp with
  | Some path ->
    let programs = ref [] in
    Corpus.iter (fun p -> programs := p :: !programs) (Fuzzer.corpus f);
    Persist.save_corpus ~path (List.rev !programs);
    Fmt.pr "saved %d corpus programs to %s@." (List.length !programs) path
  | None -> ());
  Fmt.pr "executions        %d@." (Fuzzer.execs f);
  Fmt.pr "branch coverage   %d@." (Fuzzer.coverage f);
  Fmt.pr "corpus            %d programs@." (Corpus.size (Fuzzer.corpus f));
  if tool = Fuzzer.Healer then begin
    Fmt.pr "learned relations %d@." (Fuzzer.relation_count f);
    Fmt.pr "alpha             %.2f@." (Fuzzer.alpha_value f)
  end;
  (match Fuzzer.cache_stats f with
  | Some s ->
    let open Healer_executor.Exec_cache in
    let total = s.hits + s.misses in
    let rate = if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total in
    Fmt.pr "probe cache       %d hits / %d misses (%.0f%% hit rate), %d calls resumed, %d evictions@."
      s.hits s.misses (100.0 *. rate) s.resumed_calls s.evictions
  | None -> ());
  let records = Triage.records (Fuzzer.triage f) in
  Fmt.pr "unique crashes    %d@." (List.length records);
  List.iter
    (fun (r : Triage.record) ->
      Fmt.pr "  %6.1fh  %-44s %-24s repro=%d calls@."
        (r.Triage.first_found /. 3600.0)
        r.Triage.bug_key
        (K.Risk.to_string r.Triage.risk)
        r.Triage.repro_len)
    records

let path_opt name doc =
  Arg.(value & opt (some string) None & info [ name ] ~docv:"FILE" ~doc)

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Run a fuzzing campaign against the simulated kernel")
    Term.(
      const run_fuzz $ tool_arg $ version_arg $ hours_arg $ seed_arg
      $ path_opt "load-relations" "Merge a saved relation table before fuzzing."
      $ path_opt "save-relations" "Write the learned relation table afterwards."
      $ path_opt "load-corpus" "Ingest a saved corpus archive as initial seeds."
      $ path_opt "save-corpus" "Write the final corpus archive afterwards.")

let run_target () =
  let t = K.Kernel.target () in
  Fmt.pr "%a@.@." Target.pp_summary t;
  let by_sub = Hashtbl.create 16 in
  Array.iter
    (fun (c : Syscall.t) ->
      let sub = K.Kernel.subsystem_of c.Syscall.name in
      Hashtbl.replace by_sub sub
        (c.Syscall.name
        :: (match Hashtbl.find_opt by_sub sub with Some l -> l | None -> [])))
    (Target.syscalls t);
  Hashtbl.fold (fun sub calls acc -> (sub, List.length calls) :: acc) by_sub []
  |> List.sort compare
  |> List.iter (fun (sub, n) -> Fmt.pr "  %-12s %3d interfaces@." sub n)

let target_cmd =
  Cmd.v
    (Cmd.info "target" ~doc:"Print the compiled Syzlang description summary")
    Term.(const run_target $ const ())

let run_bugs () =
  Fmt.pr "%-44s %-10s %-26s %-6s %s@." "BUG" "SUBSYSTEM" "RISK" "SINCE" "POPULATION";
  List.iter
    (fun (b : K.Bug.t) ->
      Fmt.pr "%-44s %-10s %-26s %-6s %s@." b.K.Bug.key b.K.Bug.subsystem
        (K.Risk.to_string b.K.Bug.risk)
        (K.Version.to_string b.K.Bug.since)
        (if b.K.Bug.table4 then "table-4"
         else if b.K.Bug.known then "known"
         else "table-5"))
    K.Bug.catalog

let bugs_cmd =
  Cmd.v
    (Cmd.info "bugs" ~doc:"List the injected vulnerability catalog")
    Term.(const run_bugs $ const ())

let run_relations version hours seed =
  let cfg = Fuzzer.config ~seed ~tool:Fuzzer.Healer ~version () in
  let f = Fuzzer.create cfg in
  Fuzzer.run_until f (hours *. 3600.0);
  let t = Fuzzer.target f in
  let static = Static_learning.initial_table t in
  match Fuzzer.relations f with
  | None -> Fmt.pr "no relation table@."
  | Some table ->
    Fmt.pr "%a@." Relation_table.pp_stats table;
    Fmt.pr "static %d + dynamic %d@.@." (Relation_table.count static)
      (Relation_table.count table - Relation_table.count static);
    List.iter
      (fun (a, b) ->
        let tag = if Relation_table.get static a b then "s" else "d" in
        Fmt.pr "  [%s] %-30s -> %s@." tag
          (Target.syscall t a).Syscall.name
          (Target.syscall t b).Syscall.name)
      (Relation_table.edges table)

let relations_cmd =
  Cmd.v
    (Cmd.info "relations"
       ~doc:"Fuzz for a while with HEALER and dump the learned relation table")
    Term.(const run_relations $ version_arg $ hours_arg $ seed_arg)

(* 0 = auto: HEALER_BENCH_JOBS or Domain.recommended_domain_count. *)
let resolve_jobs jobs = if jobs = 0 then Campaign.default_jobs () else jobs

let run_compare subject base version hours seed rounds jobs =
  or_die @@ fun () ->
  let jobs = resolve_jobs jobs in
  if rounds <= 1 then begin
    (* The two campaigns are independent: fan them out. *)
    let runs =
      Campaign.run_matrix ~jobs
        [ (base, version, seed, hours); (subject, version, seed, hours) ]
    in
    match runs with
    | [ b; s ] ->
      List.iter
        (fun (r : Campaign.run) ->
          Fmt.pr "%-10s coverage=%d execs=%d crashes=%d@."
            (Fuzzer.tool_name r.Campaign.tool) r.Campaign.final_cov
            r.Campaign.execs
            (List.length r.Campaign.crashes))
        [ b; s ];
      Fmt.pr "improvement of %s over %s: %+.1f%%@." (Fuzzer.tool_name subject)
        (Fuzzer.tool_name base)
        (Campaign.improvement_pct ~base:b s);
      (match Campaign.speedup ~base:b s with
      | Some x ->
        Fmt.pr "speed-up to reach %s's coverage: %.1fx@." (Fuzzer.tool_name base) x
      | None -> Fmt.pr "subject did not reach the base coverage@.")
    | _ -> assert false
  end
  else begin
    let c = Campaign.compare_tools ~jobs ~hours ~rounds ~subject ~base version in
    Fmt.pr "%s vs %s on Linux %s, %d paired rounds (%d jobs)@."
      (Fuzzer.tool_name subject) (Fuzzer.tool_name base)
      (K.Version.to_string version) rounds jobs;
    Fmt.pr "  improvement min %+.1f%%  max %+.1f%%  avg %+.1f%%@."
      c.Campaign.min_impr c.Campaign.max_impr c.Campaign.avg_impr;
    match c.Campaign.avg_speedup with
    | Some x -> Fmt.pr "  average speed-up %.1fx@." x
    | None -> Fmt.pr "  subject did not reach the base coverage@."
  end

let base_arg =
  Arg.(
    value
    & opt tool_conv Fuzzer.Syzkaller
    & info [ "b"; "base" ] ~docv:"TOOL" ~doc:"Baseline tool.")

let rounds_arg =
  Arg.(
    value
    & opt int 1
    & info [ "r"; "rounds" ] ~docv:"N"
        ~doc:"Paired rounds (one seed per round); with N>1 prints Table-1-style stats.")

let jobs_arg =
  Arg.(
    value
    & opt int 0
    & info [ "j"; "jobs" ] ~docv:"JOBS"
        ~doc:
          "Worker domains for the campaign matrix. 0 (default) means \
           $(b,HEALER_BENCH_JOBS) or the machine's recommended domain count.")

let compare_cmd =
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Head-to-head campaigns of two tools, fanned out across worker \
          domains")
    Term.(
      const run_compare $ tool_arg $ base_arg $ version_arg $ hours_arg
      $ seed_arg $ rounds_arg $ jobs_arg)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The built-in corpus (with handler drift checks) or a standalone
   description file. Parse/compile failures of a file are reported as
   diagnostics by [Analysis.of_source], not raised. *)
let analysis_input file =
  or_die (fun () ->
      match file with
      | None -> Analysis.of_kernel ()
      | Some path -> Analysis.of_source ~name:path (read_file path))

let file_pos_arg =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Description file; default: built-in corpus.")

let severity_conv =
  let parse = function
    | "error" -> Ok Diagnostic.Error
    | "warning" -> Ok Diagnostic.Warning
    | "info" -> Ok Diagnostic.Info
    | s ->
      Error (`Msg (Printf.sprintf "unknown severity %S (error|warning|info)" s))
  in
  Arg.conv (parse, fun ppf s -> Fmt.string ppf (Diagnostic.severity_to_string s))

let severity_arg =
  Arg.(
    value
    & opt severity_conv Diagnostic.Info
    & info [ "severity" ] ~docv:"LEVEL"
        ~doc:
          "Minimum severity to report: $(b,error), $(b,warning) or \
           $(b,info) (default: everything).")

let only_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "only" ] ~docv:"CHECK_ID"
        ~doc:"Report only this check ID (repeatable; see $(b,--list-checks)).")

(* Diagnostic filters shared by the description and program modes. *)
let apply_filters ~min_sev ~only ds =
  let ds =
    List.filter
      (fun (d : Diagnostic.t) ->
        Diagnostic.severity_rank d.Diagnostic.severity
        <= Diagnostic.severity_rank min_sev)
      ds
  in
  match only with
  | [] -> ds
  | ids ->
    List.filter (fun (d : Diagnostic.t) -> List.mem d.Diagnostic.check ids) ds

let check_only_ids only =
  let known = List.map (fun (id, _, _, _) -> id) Analysis.all_checks in
  List.iter
    (fun id ->
      if not (List.mem id known) then begin
        Fmt.epr "error: unknown check ID %S (see --list-checks)@." id;
        exit 2
      end)
    only

(* Program-corpus mode: validate persisted archives and/or the
   built-in seed corpora against the kernel target. *)
let run_analyze_progs prog seed_corpus json min_sev only =
  or_die @@ fun () ->
  let target = K.Kernel.target () in
  let named =
    (match prog with
    | Some path ->
      Persist.load_corpus target ~path
      |> List.mapi (fun i p -> (Some (Printf.sprintf "%s#%d" path i), p))
    | None -> [])
    @
    if seed_corpus then
      (Seeds.traces target
      |> List.mapi (fun i p -> (Some (Printf.sprintf "seeds/traces#%d" i), p)))
      @ (Seeds.distilled target
        |> List.mapi (fun i p ->
               (Some (Printf.sprintf "seeds/distilled#%d" i), p)))
    else []
  in
  let ds =
    Healer_analysis.Progcheck.validate target named
    |> apply_filters ~min_sev ~only
  in
  if json then
    Fmt.pr "%s@."
      (Healer_analysis.Progcheck.report_to_json ~name:(Target.name target)
         ~programs:(List.length named) ds)
  else begin
    List.iter (fun d -> Fmt.pr "%a@." Diagnostic.pp d) ds;
    List.iter
      (fun (id, n) -> Fmt.pr "  %-22s %4d@." id n)
      (Healer_analysis.Progcheck.count_by_check ds);
    Fmt.pr "%d programs: %d errors, %d warnings, %d notes@."
      (List.length named)
      (Diagnostic.count Diagnostic.Error ds)
      (Diagnostic.count Diagnostic.Warning ds)
      (Diagnostic.count Diagnostic.Info ds)
  end;
  if Diagnostic.has_errors ds then exit 1

(* Lock-model mode: dump the declared model (classes, order graph,
   per-handler specs), the lockdep findings over it, and the lock-pair
   acquisition counts the built-in seed corpus exhibits — the
   queryable concurrency-coverage signal. *)
let run_locks json =
  or_die @@ fun () ->
  let model = K.Kernel.lock_model () in
  let classes =
    List.sort
      (fun (a : K.Lock.cls) (b : K.Lock.cls) -> compare a.K.Lock.rank b.K.Lock.rank)
      model.K.Lock.classes
  in
  let edges = K.Lock.order_edges model in
  let ds =
    List.map Healer_analysis.Lockdep.to_diagnostic (K.Lock.check_model model)
  in
  (* Execute the seed corpus (each program from pristine state, like
     the executor's forked processes) and aggregate the lock-pair /
     per-class acquisition counters across runs. *)
  let target = K.Kernel.target () in
  let kernel = K.Kernel.boot ~version:K.Version.V5_11 () in
  let cov = K.Coverage.create () in
  let merge acc counts =
    List.fold_left
      (fun acc (key, n) ->
        let cur = try List.assoc key acc with Not_found -> 0 in
        (key, cur + n) :: List.remove_assoc key acc)
      acc counts
  in
  let pairs, acqs =
    List.fold_left
      (fun (pairs, acqs) p ->
        let k', _ = Healer_executor.Exec.run ~cov kernel p in
        ( merge pairs (K.Kernel.lock_pair_counts k'),
          merge acqs (K.Kernel.lock_acquire_counts k') ))
      ([], [])
      (Seeds.traces target @ Seeds.distilled target)
  in
  let pairs = List.sort compare pairs and acqs = List.sort compare acqs in
  if json then begin
    let b = Buffer.create 1024 in
    let esc = Diagnostic.json_escape in
    Buffer.add_string b "{\n  \"classes\": [";
    List.iteri
      (fun i (c : K.Lock.cls) ->
        Buffer.add_string b
          (Printf.sprintf "%s\n    {\"name\": \"%s\", \"rank\": %d, \"guards\": [%s]}"
             (if i = 0 then "" else ",")
             (esc c.K.Lock.cname) c.K.Lock.rank
             (String.concat ", "
                (List.map (fun g -> "\"" ^ esc g ^ "\"") c.K.Lock.guards))))
      classes;
    Buffer.add_string b "\n  ],\n  \"order_edges\": [";
    List.iteri
      (fun i (a, bn) ->
        Buffer.add_string b
          (Printf.sprintf "%s\n    [\"%s\", \"%s\"]"
             (if i = 0 then "" else ",")
             (esc a) (esc bn)))
      edges;
    Buffer.add_string b "\n  ],\n  \"specs\": ";
    Buffer.add_string b (string_of_int (List.length model.K.Lock.specs));
    Buffer.add_string b ",\n  \"seed_pair_counts\": [";
    List.iteri
      (fun i ((outer, inner), n) ->
        Buffer.add_string b
          (Printf.sprintf
             "%s\n    {\"outer\": \"%s\", \"inner\": \"%s\", \"count\": %d}"
             (if i = 0 then "" else ",")
             (esc outer) (esc inner) n))
      pairs;
    Buffer.add_string b "\n  ],\n  \"seed_acquire_counts\": [";
    List.iteri
      (fun i (cls, n) ->
        Buffer.add_string b
          (Printf.sprintf "%s\n    {\"class\": \"%s\", \"count\": %d}"
             (if i = 0 then "" else ",")
             (esc cls) n))
      acqs;
    Buffer.add_string b "\n  ],\n  \"diagnostics\": [";
    List.iteri
      (fun i d ->
        Buffer.add_string b
          (Printf.sprintf "%s\n    %s" (if i = 0 then "" else ",")
             (Diagnostic.to_json d)))
      ds;
    Buffer.add_string b "\n  ]\n}";
    Fmt.pr "%s@." (Buffer.contents b)
  end
  else begin
    Fmt.pr "lock classes (%d):@." (List.length classes);
    List.iter
      (fun (c : K.Lock.cls) ->
        Fmt.pr "  %-14s rank %3d  guards: %s@." c.K.Lock.cname c.K.Lock.rank
          (if c.K.Lock.guards = [] then "-"
           else String.concat ", " c.K.Lock.guards))
      classes;
    Fmt.pr "declared handler specs: %d@." (List.length model.K.Lock.specs);
    Fmt.pr "lock-order graph (outer -> inner):@.";
    if edges = [] then Fmt.pr "  (no nested acquisitions)@."
    else List.iter (fun (a, bn) -> Fmt.pr "  %s -> %s@." a bn) edges;
    Fmt.pr "seed-corpus lock-pair acquisitions:@.";
    if pairs = [] then Fmt.pr "  (none)@."
    else
      List.iter
        (fun ((outer, inner), n) -> Fmt.pr "  %-28s %6d@." (outer ^ " -> " ^ inner) n)
        pairs;
    Fmt.pr "seed-corpus acquisitions per class:@.";
    List.iter (fun (cls, n) -> Fmt.pr "  %-28s %6d@." cls n) acqs;
    if ds = [] then Fmt.pr "lockdep: model clean@."
    else begin
      Fmt.pr "lockdep findings:@.";
      List.iter (fun d -> Fmt.pr "%a@." Diagnostic.pp d) ds
    end
  end;
  if Diagnostic.has_errors ds then exit 1

(* Race mode: the known-race catalog, plus the effect-drift and
   lockset-race findings over the declared effect + lock models. Exits
   non-zero on Error severity (drift), so the @analyze gate keeps the
   corpus effect-clean; the intentional fixture races surface at Info. *)
let run_races json =
  or_die @@ fun () ->
  let input = Analysis.of_kernel () in
  let ds =
    Analysis.run
      ~passes:[ Healer_analysis.Effects.pass; Healer_analysis.Races.pass ]
      input
  in
  let known = K.Effect.registered_races () in
  if json then begin
    let b = Buffer.create 1024 in
    let esc = Diagnostic.json_escape in
    Buffer.add_string b "{\n  \"known_races\": [";
    List.iteri
      (fun i (k : K.Effect.known_race) ->
        Buffer.add_string b
          (Printf.sprintf
             "%s\n    {\"slot\": \"%s\", \"bug\": \"%s\", \"parties\": [%s]}"
             (if i = 0 then "" else ",")
             (esc k.K.Effect.kslot) (esc k.K.Effect.bug)
             (String.concat ", "
                (List.map (fun p -> "\"" ^ esc p ^ "\"") k.K.Effect.parties))))
      known;
    Buffer.add_string b "\n  ],\n  \"diagnostics\": [";
    List.iteri
      (fun i d ->
        Buffer.add_string b
          (Printf.sprintf "%s\n    %s" (if i = 0 then "" else ",")
             (Diagnostic.to_json d)))
      ds;
    Buffer.add_string b "\n  ]\n}";
    Fmt.pr "%s@." (Buffer.contents b)
  end
  else begin
    Fmt.pr "known race catalog (%d):@." (List.length known);
    List.iter
      (fun (k : K.Effect.known_race) ->
        Fmt.pr "  slot %-12s %s  (bug %s)@."
          (Printf.sprintf "%S:" k.K.Effect.kslot)
          (String.concat " <-> " k.K.Effect.parties)
          k.K.Effect.bug)
      known;
    if ds = [] then Fmt.pr "race detector: no candidate pairs@."
    else begin
      Fmt.pr "findings:@.";
      List.iter (fun d -> Fmt.pr "%a@." Diagnostic.pp d) ds
    end;
    Fmt.pr "%d errors, %d warnings, %d notes@."
      (Diagnostic.count Diagnostic.Error ds)
      (Diagnostic.count Diagnostic.Warning ds)
      (Diagnostic.count Diagnostic.Info ds)
  end;
  if Diagnostic.has_errors ds then exit 1

(* Effect mode: dump the declared effect model (slot vocabulary, spec
   count), the effect-drift findings, and the per-slot read/write
   counts the built-in seed corpus exhibits — the observed-access
   signal mirroring `--locks`' acquisition counters. Under
   HEALER_DEBUG_VALIDATE the executions also check observed ⊆ declared
   per call, so the @analyze gate exercises the runtime validator. *)
let run_effects json =
  or_die @@ fun () ->
  let input = Analysis.of_kernel () in
  let ds = Analysis.run ~passes:[ Healer_analysis.Effects.pass ] input in
  let model = K.Kernel.effect_model () in
  let target = K.Kernel.target () in
  let kernel = K.Kernel.boot ~version:K.Version.V5_11 () in
  let cov = K.Coverage.create () in
  let counts =
    List.fold_left
      (fun acc p ->
        let k', _ = Healer_executor.Exec.run ~cov kernel p in
        List.fold_left
          (fun acc (slot, r, w) ->
            let cr, cw = try List.assoc slot acc with Not_found -> (0, 0) in
            (slot, (cr + r, cw + w)) :: List.remove_assoc slot acc)
          acc
          (K.Kernel.effect_counts k'))
      []
      (Seeds.traces target @ Seeds.distilled target)
    |> List.sort compare
  in
  if json then begin
    let b = Buffer.create 1024 in
    let esc = Diagnostic.json_escape in
    Buffer.add_string b "{\n  \"slots\": [";
    List.iteri
      (fun i s ->
        Buffer.add_string b
          (Printf.sprintf "%s\"%s\"" (if i = 0 then "" else ", ") (esc s)))
      model.K.Effect.slots;
    Buffer.add_string b "],\n  \"specs\": ";
    Buffer.add_string b (string_of_int (List.length model.K.Effect.especs));
    Buffer.add_string b ",\n  \"seed_slot_counts\": [";
    List.iteri
      (fun i (slot, (r, w)) ->
        Buffer.add_string b
          (Printf.sprintf
             "%s\n    {\"slot\": \"%s\", \"reads\": %d, \"writes\": %d}"
             (if i = 0 then "" else ",")
             (esc slot) r w))
      counts;
    Buffer.add_string b "\n  ],\n  \"diagnostics\": [";
    List.iteri
      (fun i d ->
        Buffer.add_string b
          (Printf.sprintf "%s\n    %s" (if i = 0 then "" else ",")
             (Diagnostic.to_json d)))
      ds;
    Buffer.add_string b "\n  ]\n}";
    Fmt.pr "%s@." (Buffer.contents b)
  end
  else begin
    Fmt.pr "effect slot vocabulary (%d): %s@."
      (List.length model.K.Effect.slots)
      (String.concat ", " model.K.Effect.slots);
    Fmt.pr "declared handler effect specs: %d@."
      (List.length model.K.Effect.especs);
    Fmt.pr "seed-corpus slot accesses (reads/writes):@.";
    if counts = [] then Fmt.pr "  (none; effect hooks disabled?)@."
    else
      List.iter
        (fun (slot, (r, w)) -> Fmt.pr "  %-16s %7d %7d@." slot r w)
        counts;
    if ds = [] then Fmt.pr "effects: model clean@."
    else begin
      Fmt.pr "effect findings:@.";
      List.iter (fun d -> Fmt.pr "%a@." Diagnostic.pp d) ds
    end
  end;
  if Diagnostic.has_errors ds then exit 1

let run_analyze file prog seed_corpus json list_checks locks races effects
    min_sev only =
  if locks then run_locks json
  else if races then run_races json
  else if effects then run_effects json
  else if list_checks then
    List.iter
      (fun (id, sev, doc, pass) ->
        Fmt.pr "%-26s %-7s %-12s %s@." id
          (Diagnostic.severity_to_string sev)
          pass doc)
      Analysis.all_checks
  else begin
    check_only_ids only;
    if prog <> None || seed_corpus then
      run_analyze_progs prog seed_corpus json min_sev only
    else begin
      let input = analysis_input file in
      let ds = Analysis.run input |> apply_filters ~min_sev ~only in
      if json then
        Fmt.pr "%s@."
          (Diagnostic.list_to_json ~name:input.Healer_analysis.Pass.name ds)
      else begin
        List.iter (fun d -> Fmt.pr "%a@." Diagnostic.pp d) ds;
        Fmt.pr "%s: %d errors, %d warnings, %d notes@."
          input.Healer_analysis.Pass.name
          (Diagnostic.count Diagnostic.Error ds)
          (Diagnostic.count Diagnostic.Warning ds)
          (Diagnostic.count Diagnostic.Info ds)
      end;
      if Diagnostic.has_errors ds then exit 1
    end
  end

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Run the multi-pass static analyzer (description semantics, \
          reachability fixpoint, handler drift, static-relation soundness, \
          corpus hygiene) over a description file or the built-in \
          20-subsystem corpus; or, with $(b,--prog) / $(b,--seed-corpus), \
          run the program validator (the $(b,prog-*) checks: typed value \
          conformance and resource dataflow) over persisted corpus \
          archives or the built-in seed corpora. Exits non-zero when any \
          Error-severity diagnostic is reported.")
    Term.(
      const run_analyze $ file_pos_arg
      $ Arg.(
          value
          & opt (some file) None
          & info [ "prog" ] ~docv:"FILE"
              ~doc:
                "Validate the programs of a persisted corpus archive (as \
                 written by $(b,fuzz --save-corpus)) instead of analyzing \
                 descriptions.")
      $ Arg.(
          value & flag
          & info [ "seed-corpus" ]
              ~doc:
                "Validate the built-in seed corpora (synthetic traces and \
                 their distilled form).")
      $ Arg.(value & flag & info [ "json" ] ~doc:"Emit diagnostics as JSON.")
      $ Arg.(
          value & flag
          & info [ "list-checks" ]
              ~doc:"List every check ID with its severity and pass, then exit.")
      $ Arg.(
          value & flag
          & info [ "locks" ]
              ~doc:
                "Report the declared lock model: classes with ranks and \
                 guarded state, the lock-order graph, lockdep findings, and \
                 the lock-pair acquisition counts observed while executing \
                 the built-in seed corpus.")
      $ Arg.(
          value & flag
          & info [ "races" ]
              ~doc:
                "Run the Eraser-style lockset race detector over the \
                 declared effect and lock models: the known-race catalog, \
                 effect-drift findings and candidate race pairs (see the \
                 $(b,race-*) checks).")
      $ Arg.(
          value & flag
          & info [ "effects" ]
              ~doc:
                "Report the declared effect model: the slot vocabulary, \
                 effect-drift findings, and the per-slot read/write counts \
                 observed while executing the built-in seed corpus.")
      $ severity_arg $ only_arg)

(* Deprecated: kept as a thin alias over the analyzer's lint pass so
   existing invocations keep working. *)
let run_lint file =
  Fmt.epr "note: `healer lint` is deprecated; use `healer analyze`@.";
  let input = analysis_input file in
  let ds =
    Analysis.run ~passes:[ Healer_analysis.Lint.pass ] input
    |> List.filter (fun (d : Diagnostic.t) -> d.Diagnostic.severity <> Diagnostic.Info)
  in
  match ds with
  | [] -> Fmt.pr "%s: no description warnings@." input.Healer_analysis.Pass.name
  | ds -> List.iter (fun d -> Fmt.pr "%a@." Diagnostic.pp d) ds

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Deprecated alias for the corpus-hygiene subset of $(b,analyze): \
          unreachable resources, unused flag sets and producer-less \
          consumers.")
    Term.(const run_lint $ file_pos_arg)

(* ---- fuzzing-as-a-service: serve / merge / shard-status ---- *)

module Service = Healer_service

let pp_shard_state ppf (s : Service.Shard_state.t) =
  Fmt.pf ppf "  executions        %d@." (Service.Shard_state.total_execs s);
  List.iter
    (fun (shard, n) -> Fmt.pf ppf "    shard %-4d      %d@." shard n)
    s.Service.Shard_state.execs;
  Fmt.pf ppf "  branch coverage   %d@."
    (Healer_util.Bitset.count s.Service.Shard_state.coverage);
  Fmt.pf ppf "  corpus            %d programs@."
    (List.length s.Service.Shard_state.corpus);
  Fmt.pf ppf "  learned relations %d@."
    (Relation_table.count s.Service.Shard_state.relations);
  Fmt.pf ppf "  unique crashes    %d@."
    (List.length s.Service.Shard_state.crashes);
  List.iter
    (fun (r : Triage.record) ->
      Fmt.pf ppf "    %6.1fh  %-44s %-24s repro=%d calls@."
        (r.Triage.first_found /. 3600.0)
        r.Triage.bug_key
        (K.Risk.to_string r.Triage.risk)
        r.Triage.repro_len)
    s.Service.Shard_state.crashes;
  Fmt.pf ppf "  state digest      %s@." (Service.Shard_state.digest s)

let status_line (p : Service.Coordinator.progress) =
  let s = p.Service.Coordinator.state in
  Printf.sprintf
    "{\"epoch\":%d,\"epochs\":%d,\"execs\":%d,\"coverage\":%d,\"corpus\":%d,\
     \"relations\":%d,\"crashes\":%d,\"respawns\":%d,\"bytes_sent\":%d,\
     \"bytes_recv\":%d,\"digest\":%S,\"updated\":%.0f}"
    (p.Service.Coordinator.epoch + 1)
    p.Service.Coordinator.epochs
    (Service.Shard_state.total_execs s)
    (Healer_util.Bitset.count s.Service.Shard_state.coverage)
    (List.length s.Service.Shard_state.corpus)
    (Relation_table.count s.Service.Shard_state.relations)
    (List.length s.Service.Shard_state.crashes)
    p.Service.Coordinator.respawns p.Service.Coordinator.bytes_sent
    p.Service.Coordinator.bytes_recv
    (Service.Shard_state.digest s)
    (Unix.time ())

let run_serve tool version hours seed jobs epochs checkpoint resume no_fork
    stop_after barrier watch status_json =
  or_die @@ fun () ->
  if jobs < 1 then failwith "--jobs must be at least 1";
  if epochs < 1 then failwith "--epochs must be at least 1";
  let ck =
    if resume then begin
      let dir =
        match checkpoint with
        | Some dir -> dir
        | None -> failwith "--resume requires --checkpoint DIR"
      in
      let ck =
        Service.Checkpoint.load (K.Kernel.target ())
          ~path:(Service.Checkpoint.file dir)
      in
      Fmt.pr "resuming %s campaign at epoch %d/%d (%d jobs)@."
        (Fuzzer.tool_name ck.Service.Checkpoint.config.Service.Checkpoint.tool)
        ck.Service.Checkpoint.completed
        ck.Service.Checkpoint.config.Service.Checkpoint.epochs
        ck.Service.Checkpoint.config.Service.Checkpoint.jobs;
      ck
    end
    else
      Service.Coordinator.initial
        {
          Service.Checkpoint.tool;
          version;
          jobs;
          base_seed = seed;
          epochs;
          slice = hours *. 3600.0;
        }
  in
  let cfg = ck.Service.Checkpoint.config in
  Fmt.pr "%s on Linux %s: %d shards x %d epochs x %.2f virtual hours (seed %d%s)@."
    (Fuzzer.tool_name cfg.Service.Checkpoint.tool)
    (K.Version.to_string cfg.Service.Checkpoint.version)
    cfg.Service.Checkpoint.jobs cfg.Service.Checkpoint.epochs
    (cfg.Service.Checkpoint.slice /. 3600.0)
    cfg.Service.Checkpoint.base_seed
    (if no_fork then ", sequential" else "");
  (* Live status: a one-line JSON snapshot per closed front, written
     atomically so `healer shard-status` (or any dashboard) can poll
     it without ever observing a torn file. --watch throttles the
     cadence; with no file to write, the line goes to stdout. *)
  let status_path =
    match (status_json, checkpoint) with
    | Some f, _ -> Some f
    | None, Some dir when watch <> None ->
      Some (Filename.concat dir "status.json")
    | _ -> None
  in
  let last_status = ref neg_infinity in
  let emit_status p =
    if status_path <> None || watch <> None then begin
      let now = Unix.gettimeofday () in
      let due =
        match watch with None -> true | Some s -> now -. !last_status >= s
      in
      if due then begin
        last_status := now;
        let line = status_line p in
        match status_path with
        | Some path -> Persist.write_atomic ~path (line ^ "\n")
        | None -> Fmt.pr "%s@." line
      end
    end
  in
  let on_epoch (p : Service.Coordinator.progress) =
    Fmt.pr "epoch %d/%d: coverage=%d corpus=%d relations=%d crashes=%d execs=%d@."
      (p.Service.Coordinator.epoch + 1)
      p.Service.Coordinator.epochs
      (Healer_util.Bitset.count
         p.Service.Coordinator.state.Service.Shard_state.coverage)
      (List.length p.Service.Coordinator.state.Service.Shard_state.corpus)
      (Relation_table.count
         p.Service.Coordinator.state.Service.Shard_state.relations)
      (List.length p.Service.Coordinator.state.Service.Shard_state.crashes)
      (Service.Shard_state.total_execs p.Service.Coordinator.state);
    emit_status p
  in
  let mode =
    if barrier then Service.Coordinator.Barrier else Service.Coordinator.Async
  in
  let outcome =
    Service.Coordinator.run ~forked:(not no_fork) ~mode
      ?checkpoint_dir:checkpoint ?stop_after ~on_epoch ck
  in
  let final = outcome.Service.Coordinator.final in
  (* The throttle may have swallowed the last front; always leave the
     final state on disk. *)
  (match status_path with
  | Some path when final.Service.Checkpoint.completed > 0 ->
    Persist.write_atomic ~path
      (status_line
         {
           Service.Coordinator.epoch = final.Service.Checkpoint.completed - 1;
           epochs = final.Service.Checkpoint.config.Service.Checkpoint.epochs;
           state = final.Service.Checkpoint.state;
           respawns = outcome.Service.Coordinator.respawns;
           bytes_sent = outcome.Service.Coordinator.bytes_sent;
           bytes_recv = outcome.Service.Coordinator.bytes_recv;
           bytes_full = outcome.Service.Coordinator.bytes_full;
         }
       ^ "\n")
  | _ -> ());
  if final.Service.Checkpoint.completed
     < final.Service.Checkpoint.config.Service.Checkpoint.epochs
  then
    Fmt.pr "stopped after epoch %d/%d (resume with --resume)@."
      final.Service.Checkpoint.completed
      final.Service.Checkpoint.config.Service.Checkpoint.epochs;
  if outcome.Service.Coordinator.respawns > 0 then
    Fmt.pr "worker deaths recovered: %d@." outcome.Service.Coordinator.respawns;
  if not no_fork then
    Fmt.pr "wire traffic: %d bytes out / %d bytes in (%d+%d frames)@."
      outcome.Service.Coordinator.bytes_sent
      outcome.Service.Coordinator.bytes_recv
      outcome.Service.Coordinator.frames_sent
      outcome.Service.Coordinator.frames_recv;
  Fmt.pr "%a" pp_shard_state final.Service.Checkpoint.state

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "c"; "checkpoint" ] ~docv:"DIR"
        ~doc:"Campaign directory; the checkpoint is written (atomically) \
              after every epoch.")

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a sharded fuzzing campaign: one worker process per shard, \
          pipelined (barrier-free) synchronization of relations, coverage, \
          corpus and crashes via incremental CRDT deltas, durable \
          checkpoints, automatic respawn of dead workers. $(b,--hours) is \
          the virtual time each shard fuzzes per epoch; results are \
          bit-identical with and without $(b,--barrier).")
    Term.(
      const run_serve $ tool_arg $ version_arg
      $ Arg.(
          value
          & opt float 0.25
          & info [ "H"; "hours" ] ~docv:"HOURS"
              ~doc:"Virtual hours each shard fuzzes per epoch.")
      $ seed_arg
      $ Arg.(
          value & opt int 2
          & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker shards.")
      $ Arg.(
          value & opt int 4
          & info [ "e"; "epochs" ] ~docv:"N" ~doc:"Synchronization rounds.")
      $ checkpoint_arg
      $ Arg.(
          value & flag
          & info [ "resume" ]
              ~doc:
                "Continue from the checkpoint in $(b,--checkpoint) (its \
                 recorded configuration wins over the command line).")
      $ Arg.(
          value & flag
          & info [ "no-fork" ]
              ~doc:
                "Compute every shard in-process (same results as forked \
                 mode, bit for bit).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "stop-after-epoch" ] ~docv:"N"
              ~doc:
                "Shut down cleanly once N epochs have completed — simulates \
                 an interrupted daemon for resume testing.")
      $ Arg.(
          value & flag
          & info [ "barrier" ]
              ~doc:
                "Lockstep determinism oracle: wait for every shard's epoch \
                 before dispatching the next. Same schedule, same deltas, \
                 same final digest as the default pipelined mode — only \
                 slower under stragglers.")
      $ Arg.(
          value
          & opt (some float) None
          & info [ "watch" ] ~docv:"SECS"
              ~doc:
                "Emit a one-line JSON status at most every SECS seconds \
                 (to $(b,--status-json), to \
                 $(b,--checkpoint)/status.json, or to stdout).")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "status-json" ] ~docv:"FILE"
              ~doc:
                "Write the one-line JSON status to FILE (atomic \
                 write-then-rename) after every merged epoch."))

let run_merge a b output =
  or_die @@ fun () ->
  let target = K.Kernel.target () in
  let ca = Service.Checkpoint.load target ~path:a in
  let cb = Service.Checkpoint.load target ~path:b in
  let m = Service.Checkpoint.merge ca cb in
  Persist.write_atomic ~path:output (Service.Checkpoint.to_string m);
  Fmt.pr "merged %s + %s -> %s@." a b output;
  Fmt.pr "  digest %s@."
    (Service.Shard_state.digest m.Service.Checkpoint.state)

let merge_cmd =
  Cmd.v
    (Cmd.info "merge"
       ~doc:
         "CRDT-join two campaign checkpoints into one: relation edges, \
          coverage and corpus union; earliest crash record per signature; \
          pointwise-max execution counters. Commutative, associative and \
          idempotent, so any merge order (or re-merge) yields the same \
          bytes.")
    Term.(
      const run_merge
      $ Arg.(
          required
          & pos 0 (some string) None
          & info [] ~docv:"A" ~doc:"First checkpoint (file or campaign dir).")
      $ Arg.(
          required
          & pos 1 (some string) None
          & info [] ~docv:"B" ~doc:"Second checkpoint (file or campaign dir).")
      $ Arg.(
          required
          & opt (some string) None
          & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Merged checkpoint file."))

let run_shard_status path equal =
  or_die @@ fun () ->
  let target = K.Kernel.target () in
  let ck = Service.Checkpoint.load target ~path in
  let cfg = ck.Service.Checkpoint.config in
  Fmt.pr "%s: %s on Linux %s, %d shards, epoch %d/%d, slice %.2fh, seed %d@."
    path
    (Fuzzer.tool_name cfg.Service.Checkpoint.tool)
    (K.Version.to_string cfg.Service.Checkpoint.version)
    cfg.Service.Checkpoint.jobs ck.Service.Checkpoint.completed
    cfg.Service.Checkpoint.epochs
    (cfg.Service.Checkpoint.slice /. 3600.0)
    cfg.Service.Checkpoint.base_seed;
  Fmt.pr "%a" pp_shard_state ck.Service.Checkpoint.state;
  (* A serve --watch daemon leaves a live status line beside the
     checkpoint; surface it (wire counters, respawns, freshness). *)
  (let status =
     Filename.concat
       (if Sys.file_exists path && Sys.is_directory path then path
        else Filename.dirname path)
       "status.json"
   in
   if Sys.file_exists status then
     let ic = open_in_bin status in
     Fun.protect
       ~finally:(fun () -> close_in ic)
       (fun () ->
         match input_line ic with
         | line -> Fmt.pr "  live status       %s@." line
         | exception End_of_file -> ()));
  match equal with
  | None -> ()
  | Some other ->
    let co = Service.Checkpoint.load target ~path:other in
    if
      Service.Shard_state.equal ck.Service.Checkpoint.state
        co.Service.Checkpoint.state
      && ck.Service.Checkpoint.completed = co.Service.Checkpoint.completed
    then Fmt.pr "states are identical@."
    else begin
      Fmt.epr "error: states differ: %s (epoch %d, digest %s) vs %s (epoch %d, digest %s)@."
        path ck.Service.Checkpoint.completed
        (Service.Shard_state.digest ck.Service.Checkpoint.state)
        other co.Service.Checkpoint.completed
        (Service.Shard_state.digest co.Service.Checkpoint.state);
      exit 1
    end

let shard_status_cmd =
  Cmd.v
    (Cmd.info "shard-status"
       ~doc:
         "Print a campaign checkpoint: configuration, progress, per-shard \
          execution counters, merged coverage/corpus/relations/crashes and \
          the canonical state digest. With $(b,--equal), exit non-zero \
          unless the other checkpoint holds the bit-identical merged state \
          (the sharding determinism oracle).")
    Term.(
      const run_shard_status
      $ Arg.(
          required
          & pos 0 (some string) None
          & info [] ~docv:"PATH" ~doc:"Checkpoint file or campaign dir.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "equal" ] ~docv:"OTHER"
              ~doc:"Compare against another checkpoint's merged state."))

let () =
  let info =
    Cmd.info "healer" ~version:"1.0.0"
      ~doc:"Relation-learning guided kernel fuzzing on a simulated Linux kernel"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            fuzz_cmd; target_cmd; bugs_cmd; relations_cmd; compare_cmd;
            analyze_cmd; lint_cmd; serve_cmd; merge_cmd; shard_status_cmd;
          ]))
