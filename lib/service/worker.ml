module Bitset = Healer_util.Bitset
module Serializer = Healer_executor.Serializer
module Corpus = Healer_core.Corpus
module Fuzzer = Healer_core.Fuzzer
module Relation_table = Healer_core.Relation_table
module Triage = Healer_core.Triage

(* Distinct odd multipliers keep (shard, epoch) seed collisions out of
   any realistic campaign size. *)
let seed_for (cfg : Checkpoint.config) ~shard ~epoch =
  cfg.base_seed + (shard * 1_000_003) + (epoch * 7919)

let run_epoch (cfg : Checkpoint.config) ~shard ~epoch (g : Shard_state.t) =
  let fuzzer_cfg =
    Fuzzer.config ~seed:(seed_for cfg ~shard ~epoch) ~tool:cfg.tool
      ~version:cfg.version ()
  in
  let initial_relations =
    if Relation_table.count g.relations > 0 then Some g.relations else None
  in
  let f =
    Fuzzer.create ?initial_relations
      ~initial_seeds:(List.map snd g.corpus)
      fuzzer_cfg
  in
  Fuzzer.run_until f cfg.slice;
  (* Workers fuzz a [0, slice) virtual clock each epoch; offset crash
     times so first_found is campaign-global and the earliest-wins
     merge rule compares like with like. *)
  let epoch_start = float_of_int epoch *. cfg.slice in
  let corpus = ref [] in
  Corpus.iter
    (fun p -> corpus := (Shard_state.corpus_key p, p) :: !corpus)
    (Fuzzer.corpus f);
  let relations =
    match Fuzzer.relations f with
    | Some r -> Relation_table.copy r
    | None -> Relation_table.create g.n_syscalls
  in
  let outcome =
    {
      Shard_state.n_syscalls = g.n_syscalls;
      relations;
      coverage = Bitset.copy (Fuzzer.coverage_set f);
      corpus = !corpus;
      crashes =
        List.map
          (fun (r : Triage.record) ->
            { r with first_found = r.first_found +. epoch_start })
          (Triage.records (Fuzzer.triage f));
      execs = [];
    }
  in
  { Shard_state.shard; epoch; d_execs = Fuzzer.execs f; outcome }

(* Bench/test-only straggler simulation: when HEALER_SHARD_SKEW_MS is
   a positive integer, the shard whose turn it is ((epoch + shard) mod
   jobs = 0) sleeps that long before answering — a deterministic
   rotating slow shard that leaves results untouched but shows what
   the pipelined coordinator buys over the barrier. *)
let skew_ms =
  lazy
    (match Sys.getenv_opt "HEALER_SHARD_SKEW_MS" with
    | Some v -> ( match int_of_string_opt v with Some n when n > 0 -> n | _ -> 0)
    | None -> 0)

let skew_sleep (cfg : Checkpoint.config) ~shard ~epoch =
  let ms = Lazy.force skew_ms in
  if ms > 0 && (epoch + shard) mod cfg.jobs = 0 then
    Unix.sleepf (float_of_int ms /. 1000.0)

let serve (cfg : Checkpoint.config) ~shard ~input ~output =
  let target = Healer_kernel.Kernel.target () in
  let inp = Wire.endpoint input and out = Wire.endpoint output in
  (* The worker's base view of the merged global state: grown only by
     the coordinator's incremental diffs, versioned by their count so
     a desync is caught instead of silently diverging. The fuzzing
     outcome is shipped back as a diff against this base — O(what this
     slice discovered) bytes, not O(total state). *)
  let base = ref (Shard_state.of_target target) in
  let version = ref 0 in
  let rec loop () =
    match Wire.recv inp with
    | Wire.Quit, _ -> Unix._exit 0
    | Wire.Delta, _ -> Unix._exit 3
    | Wire.Epoch, payload ->
      let pos = ref 0 in
      let epoch = Wire.get_int payload pos in
      let ver = Wire.get_int payload pos in
      if ver <> !version then Unix._exit 3;
      let d = Shard_state.of_string target (Wire.get_all payload pos) in
      if not (Shard_state.is_empty d) then base := Shard_state.merge !base d;
      incr version;
      let d = run_epoch cfg ~shard ~epoch !base in
      let d =
        { d with Shard_state.outcome = Shard_state.diff ~since:!base d.outcome }
      in
      skew_sleep cfg ~shard ~epoch;
      Wire.send out Wire.Delta (fun buf -> Shard_state.put_delta buf d);
      loop ()
  in
  try loop () with
  | End_of_file -> Unix._exit 0 (* coordinator went away *)
  | _ -> Unix._exit 3
