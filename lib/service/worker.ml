module Bitset = Healer_util.Bitset
module Serializer = Healer_executor.Serializer
module Corpus = Healer_core.Corpus
module Fuzzer = Healer_core.Fuzzer
module Relation_table = Healer_core.Relation_table
module Triage = Healer_core.Triage

(* Distinct odd multipliers keep (shard, epoch) seed collisions out of
   any realistic campaign size. *)
let seed_for (cfg : Checkpoint.config) ~shard ~epoch =
  cfg.base_seed + (shard * 1_000_003) + (epoch * 7919)

let run_epoch (cfg : Checkpoint.config) ~shard ~epoch (g : Shard_state.t) =
  let fuzzer_cfg =
    Fuzzer.config ~seed:(seed_for cfg ~shard ~epoch) ~tool:cfg.tool
      ~version:cfg.version ()
  in
  let initial_relations =
    if Relation_table.count g.relations > 0 then Some g.relations else None
  in
  let f =
    Fuzzer.create ?initial_relations
      ~initial_seeds:(List.map snd g.corpus)
      fuzzer_cfg
  in
  Fuzzer.run_until f cfg.slice;
  (* Workers fuzz a [0, slice) virtual clock each epoch; offset crash
     times so first_found is campaign-global and the earliest-wins
     merge rule compares like with like. *)
  let epoch_start = float_of_int epoch *. cfg.slice in
  let corpus = ref [] in
  Corpus.iter
    (fun p -> corpus := (Serializer.encode p, p) :: !corpus)
    (Fuzzer.corpus f);
  let relations =
    match Fuzzer.relations f with
    | Some r -> Relation_table.copy r
    | None -> Relation_table.create g.n_syscalls
  in
  let outcome =
    {
      Shard_state.n_syscalls = g.n_syscalls;
      relations;
      coverage = Bitset.copy (Fuzzer.coverage_set f);
      corpus = !corpus;
      crashes =
        List.map
          (fun (r : Triage.record) ->
            { r with first_found = r.first_found +. epoch_start })
          (Triage.records (Fuzzer.triage f));
      execs = [];
    }
  in
  { Shard_state.shard; epoch; d_execs = Fuzzer.execs f; outcome }

let serve (cfg : Checkpoint.config) ~shard ~input ~output =
  let target = Healer_kernel.Kernel.target () in
  let rec loop () =
    match Wire.recv_frame input with
    | Wire.Quit, _ -> Unix._exit 0
    | Wire.Delta, _ -> Unix._exit 3
    | Wire.Epoch, payload ->
      let pos = ref 0 in
      let epoch = Wire.get_int payload pos in
      let g = Shard_state.of_string target (Wire.get_all payload pos) in
      let d = run_epoch cfg ~shard ~epoch g in
      Wire.send_frame output Wire.Delta (Shard_state.delta_to_string d);
      loop ()
  in
  try loop () with
  | End_of_file -> Unix._exit 0 (* coordinator went away *)
  | _ -> Unix._exit 3
