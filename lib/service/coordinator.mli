(** The campaign coordinator: drives N worker shards through
    epoch-barrier rounds, folds their deltas into the merged CRDT
    state, checkpoints after every epoch, and respawns workers that
    die mid-epoch.

    Per epoch the coordinator broadcasts the merged state to every
    shard, then collects one delta per shard (multiplexing with
    [select]); a dead worker — EOF, [EPIPE], or a garbled frame — is
    buried (fds closed, zombie reaped) and respawned, and the epoch
    frame is re-sent. Because workers are restartable per epoch
    ({!Worker.run_epoch} is pure), the respawned worker reproduces the
    exact delta the dead one would have sent, so crashes never perturb
    campaign results. *)

val initial : Checkpoint.config -> Checkpoint.t
(** A fresh zero-epoch checkpoint for the booted kernel target. *)

type progress = { epoch : int; epochs : int; state : Shard_state.t }

type outcome = {
  final : Checkpoint.t;
  respawns : int;  (** Worker deaths recovered from. *)
}

val run :
  ?forked:bool ->
  ?checkpoint_dir:string ->
  ?stop_after:int ->
  ?on_epoch:(progress -> unit) ->
  ?chaos:(epoch:int -> (int * int) list -> unit) ->
  Checkpoint.t ->
  outcome
(** Run the campaign from [ck.completed] up to [ck.config.epochs]
    (or [stop_after], for simulating an interrupted daemon — workers
    are still shut down cleanly).

    [forked] (default true) forks one OS process per shard talking
    the {!Wire} protocol over pipes; when false every shard's epoch is
    computed in-process against the same epoch-start snapshot, which
    produces bit-identical results — the test suite's oracle.

    [checkpoint_dir] persists the checkpoint atomically at start and
    after every epoch. [on_epoch] observes each completed epoch.
    [chaos] (tests only) is called after the epoch broadcast with the
    live [(shard, pid)] list so tests can [kill] workers mid-epoch and
    exercise the respawn path. *)
