(** The campaign coordinator: drives N worker shards through a
    deterministic pipelined schedule, folds their incremental deltas
    into merged CRDT fronts, checkpoints at every merge, and respawns
    workers that die mid-slice.

    {b The lag-2 schedule.} Front [F_k] is the join of the campaign's
    initial state with every shard's deltas through epoch [k]. Epoch
    [e] of {e every} shard is seeded with exactly [F_(e-2)] (fronts
    below the start are the initial state) — one epoch staler than a
    lockstep barrier would use, and that slack is what removes the
    barrier: a shard may start slice [e] the moment [F_(e-2)] closes,
    while slower shards are still finishing epoch [e-1]. Because the
    seed is a function of (config, shard, epoch) and never of arrival
    timing, each delta is identical in every mode, and the CRDT fold
    makes every front — hence the final digest — mode-independent.
    Shards can drift at most two epochs apart, so only the newest two
    fronts are retained (and checkpointed, see {!Checkpoint.t.prev}).

    All traffic is incremental: the coordinator ships each worker the
    {!Shard_state.diff} between the front it is due and the front it
    already holds (serialized once per front transition, not per
    shard), and workers answer with diffs against their base view —
    O(new work) bytes per frame in steady state, not O(total state).
    Worker death (EOF, [EPIPE], garbled frame, version desync) buries
    the corpse and respawns from an empty base (full diff on the next
    dispatch); the pure {!Worker.run_epoch} reproduces the lost delta
    exactly, so crashes never perturb campaign results. *)

val initial : Checkpoint.config -> Checkpoint.t
(** A fresh zero-epoch checkpoint for the booted kernel target. *)

type mode =
  | Barrier
      (** Lockstep oracle: dispatch epoch [e] only once front [e-1] is
          folded. Same schedule, same deltas, same digests — no
          overlap, so stragglers stall every shard. *)
  | Async
      (** Pipelined (default): dispatch epoch [e] as soon as front
          [e-2] is folded; fast shards run ahead of slow ones. *)

type progress = {
  epoch : int;  (** Index of the front that just closed. *)
  epochs : int;
  state : Shard_state.t;  (** The closed front. *)
  respawns : int;
  bytes_sent : int;  (** Cumulative coordinator→worker wire bytes. *)
  bytes_recv : int;  (** Cumulative worker→coordinator wire bytes. *)
  bytes_full : int;  (** Cumulative full-state counterfactual (see
      {!outcome.bytes_full}); 0 unless [measure_full]. *)
}

type outcome = {
  final : Checkpoint.t;
  respawns : int;  (** Worker deaths recovered from. *)
  bytes_sent : int;
  bytes_recv : int;
  frames_sent : int;
  frames_recv : int;
  bytes_full : int;
      (** Only when [measure_full]: the bytes the same campaign would
          have moved shipping full states both ways instead of diffs
          (the pre-incremental protocol) — the denominator for the
          bench's bytes-reduction ratio. *)
}

val run :
  ?forked:bool ->
  ?mode:mode ->
  ?measure_full:bool ->
  ?checkpoint_dir:string ->
  ?stop_after:int ->
  ?on_epoch:(progress -> unit) ->
  ?chaos:(epoch:int -> (int * int) list -> unit) ->
  Checkpoint.t ->
  outcome
(** Run the campaign from [ck.completed] up to [ck.config.epochs]
    (or [stop_after], for simulating an interrupted daemon — workers
    are still shut down cleanly; a fast shard's work past the last
    closed front is discarded and deterministically recomputed on
    resume).

    [forked] (default true) forks one OS process per shard talking the
    {!Wire} protocol over pipes; when false every shard's epoch is
    computed in-process under the same lag-2 schedule, producing
    bit-identical results — the test suite's oracle. [mode] picks
    pipelined vs lockstep dispatch (forked only; final digests are
    equal either way).

    [checkpoint_dir] persists the checkpoint atomically at start and
    at every front close. [on_epoch] observes each closed front in
    order. [chaos] (tests only) is called once per epoch round with
    the live [(shard, pid)] list so tests can [kill] workers mid-slice
    and exercise the respawn path. [measure_full] additionally prices
    every frame's full-state counterfactual into [bytes_full] (bench
    only — it serializes full states just to measure them). *)
