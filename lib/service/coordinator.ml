module Kernel = Healer_kernel.Kernel

let initial (config : Checkpoint.config) =
  {
    Checkpoint.config;
    completed = 0;
    state = Shard_state.of_target (Kernel.target ());
  }

type progress = { epoch : int; epochs : int; state : Shard_state.t }
type outcome = { final : Checkpoint.t; respawns : int }

(* A worker connection: both pipe ends plus the child pid. *)
type handle = { pid : int; to_w : Unix.file_descr; from_w : Unix.file_descr }

(* A worker that dies deterministically would otherwise respawn
   forever; cap recoveries per shard per epoch and give up loudly. *)
let max_respawns_per_epoch = 8

let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ())

let spawn cfg handles ~shard =
  let to_w_r, to_w_w = Unix.pipe ~cloexec:false () in
  let from_w_r, from_w_w = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | 0 ->
    (* EOF-based death detection only works if no other process holds
       a duplicate of a worker's pipe ends, so the child drops every
       fd inherited from previously spawned siblings. *)
    Array.iter
      (fun h ->
        match h with
        | Some { to_w; from_w; _ } ->
          (try Unix.close to_w with Unix.Unix_error _ -> ());
          (try Unix.close from_w with Unix.Unix_error _ -> ())
        | None -> ())
      handles;
    Unix.close to_w_w;
    Unix.close from_w_r;
    (try Worker.serve cfg ~shard ~input:to_w_r ~output:from_w_w
     with _ -> Unix._exit 3)
  | pid ->
    Unix.close to_w_r;
    Unix.close from_w_w;
    { pid; to_w = to_w_w; from_w = from_w_r }

let bury h =
  (try Unix.close h.to_w with Unix.Unix_error _ -> ());
  (try Unix.close h.from_w with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] h.pid) with Unix.Unix_error _ -> ()

let shutdown handles =
  Array.iter
    (function
      | Some h ->
        (try Wire.send_frame h.to_w Wire.Quit ""
         with Unix.Unix_error _ | Sys_error _ -> ());
        bury h
      | None -> ())
    handles

let epoch_payload ~epoch state_blob =
  let buf = Buffer.create (String.length state_blob + 8) in
  Wire.put_int buf epoch;
  Buffer.add_string buf state_blob;
  Buffer.contents buf

let save_opt checkpoint_dir ck =
  match checkpoint_dir with
  | Some dir -> Checkpoint.save ~dir ck
  | None -> ()

let run_forked ?checkpoint_dir ?on_epoch ?chaos (ck : Checkpoint.t) ~until =
  Lazy.force ignore_sigpipe;
  (* Initialize every lazy kernel registry before forking: children
     must never race to build shared tables they'd then diverge on. *)
  Kernel.force_init ();
  let target = Kernel.target () in
  let cfg = ck.config in
  let jobs = cfg.jobs in
  let handles : handle option array = Array.make jobs None in
  let respawns = ref 0 in
  let respawn ~shard ~epoch_budget =
    (match handles.(shard) with Some h -> bury h | None -> ());
    handles.(shard) <- None;
    incr respawns;
    decr epoch_budget;
    if !epoch_budget < 0 then
      failwith
        (Printf.sprintf "shard %d died %d times in one epoch; giving up" shard
           max_respawns_per_epoch);
    handles.(shard) <- Some (spawn cfg handles ~shard)
  in
  let get_handle shard =
    match handles.(shard) with Some h -> h | None -> assert false
  in
  let ck = ref ck in
  Fun.protect
    ~finally:(fun () -> shutdown handles)
    (fun () ->
      for shard = 0 to jobs - 1 do
        handles.(shard) <- Some (spawn cfg handles ~shard)
      done;
      save_opt checkpoint_dir !ck;
      while !ck.completed < until do
        let epoch = !ck.completed in
        let epoch_budget = ref max_respawns_per_epoch in
        let payload =
          epoch_payload ~epoch (Shard_state.to_string !ck.state)
        in
        let send shard =
          let rec attempt () =
            try Wire.send_frame (get_handle shard).to_w Wire.Epoch payload
            with Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) ->
              respawn ~shard ~epoch_budget;
              attempt ()
          in
          attempt ()
        in
        for shard = 0 to jobs - 1 do
          send shard
        done;
        (match chaos with
        | Some f ->
          f ~epoch
            (List.init jobs (fun shard -> (shard, (get_handle shard).pid)))
        | None -> ());
        (* Collect one delta per shard, re-sending to respawned workers
           as deaths are detected. *)
        let pending = Array.make jobs true in
        let n_pending = ref jobs in
        let deltas = Array.make jobs None in
        while !n_pending > 0 do
          let fds =
            List.filter_map
              (fun shard ->
                if pending.(shard) then Some (get_handle shard).from_w
                else None)
              (List.init jobs Fun.id)
          in
          let readable, _, _ =
            try Unix.select fds [] [] (-1.0)
            with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
          in
          List.iter
            (fun fd ->
              let shard =
                let found = ref (-1) in
                Array.iteri
                  (fun i h ->
                    match h with
                    | Some h when h.from_w = fd -> found := i
                    | _ -> ())
                  handles;
                !found
              in
              if shard >= 0 && pending.(shard) then
                match Wire.recv_frame fd with
                | Wire.Delta, payload -> (
                  match Shard_state.delta_of_string target payload with
                  | d
                    when d.Shard_state.epoch = epoch
                         && d.Shard_state.shard = shard ->
                    deltas.(shard) <- Some d;
                    pending.(shard) <- false;
                    decr n_pending
                  | _ -> () (* stale delta from a pre-respawn epoch *)
                  | exception Shard_state.Malformed _ ->
                    respawn ~shard ~epoch_budget;
                    send shard)
                | (Wire.Epoch | Wire.Quit), _ ->
                  respawn ~shard ~epoch_budget;
                  send shard
                | exception (End_of_file | Wire.Malformed _) ->
                  respawn ~shard ~epoch_budget;
                  send shard)
            readable
        done;
        let state =
          Array.fold_left
            (fun acc d ->
              match d with
              | Some d -> Shard_state.apply acc d
              | None -> acc)
            !ck.state deltas
        in
        ck := { !ck with completed = epoch + 1; state };
        save_opt checkpoint_dir !ck;
        match on_epoch with
        | Some f -> f { epoch; epochs = cfg.epochs; state }
        | None -> ()
      done;
      { final = !ck; respawns = !respawns })

let run_sequential ?checkpoint_dir ?on_epoch (ck : Checkpoint.t) ~until =
  Kernel.force_init ();
  let cfg = ck.config in
  let ck = ref ck in
  save_opt checkpoint_dir !ck;
  while !ck.completed < until do
    let epoch = !ck.completed in
    let snapshot = !ck.state in
    (* Every shard fuzzes against the same epoch-start snapshot —
       exactly what the forked workers see — then the deltas fold. *)
    let deltas =
      List.init cfg.jobs (fun shard ->
          Worker.run_epoch cfg ~shard ~epoch snapshot)
    in
    let state = List.fold_left Shard_state.apply snapshot deltas in
    ck := { !ck with completed = epoch + 1; state };
    save_opt checkpoint_dir !ck;
    match on_epoch with
    | Some f -> f { epoch; epochs = cfg.epochs; state }
    | None -> ()
  done;
  { final = !ck; respawns = 0 }

let run ?(forked = true) ?checkpoint_dir ?stop_after ?on_epoch ?chaos
    (ck : Checkpoint.t) =
  let until =
    match stop_after with
    | Some n -> min n ck.config.epochs
    | None -> ck.config.epochs
  in
  if forked then run_forked ?checkpoint_dir ?on_epoch ?chaos ck ~until
  else run_sequential ?checkpoint_dir ?on_epoch ck ~until
