module Kernel = Healer_kernel.Kernel

let initial (config : Checkpoint.config) =
  let state = Shard_state.of_target (Kernel.target ()) in
  { Checkpoint.config; completed = 0; state; prev = state }

type mode = Barrier | Async

type progress = {
  epoch : int;
  epochs : int;
  state : Shard_state.t;
  respawns : int;
  bytes_sent : int;
  bytes_recv : int;
  bytes_full : int;
}

type outcome = {
  final : Checkpoint.t;
  respawns : int;
  bytes_sent : int;
  bytes_recv : int;
  frames_sent : int;
  frames_recv : int;
  bytes_full : int;
}

(* A worker connection: both pipe ends (with their reusable wire
   endpoints) plus the child pid. *)
type handle = {
  pid : int;
  to_w : Unix.file_descr;
  from_w : Unix.file_descr;
  ep_out : Wire.endpoint;
  ep_in : Wire.endpoint;
}

(* A worker that dies deterministically would otherwise respawn
   forever; cap recoveries per shard per epoch and give up loudly. *)
let max_respawns_per_epoch = 8

let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ())

let spawn cfg handles ~shard =
  let to_w_r, to_w_w = Unix.pipe ~cloexec:false () in
  let from_w_r, from_w_w = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | 0 ->
    (* EOF-based death detection only works if no other process holds
       a duplicate of a worker's pipe ends, so the child drops every
       fd inherited from previously spawned siblings. *)
    Array.iter
      (fun h ->
        match h with
        | Some { to_w; from_w; _ } ->
          (try Unix.close to_w with Unix.Unix_error _ -> ());
          (try Unix.close from_w with Unix.Unix_error _ -> ())
        | None -> ())
      handles;
    Unix.close to_w_w;
    Unix.close from_w_r;
    (try Worker.serve cfg ~shard ~input:to_w_r ~output:from_w_w
     with _ -> Unix._exit 3)
  | pid ->
    Unix.close to_w_r;
    Unix.close from_w_w;
    {
      pid;
      to_w = to_w_w;
      from_w = from_w_r;
      ep_out = Wire.endpoint to_w_w;
      ep_in = Wire.endpoint from_w_r;
    }

let bury h =
  (try Unix.close h.to_w with Unix.Unix_error _ -> ());
  (try Unix.close h.from_w with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] h.pid) with Unix.Unix_error _ -> ()

let save_opt checkpoint_dir ck =
  match checkpoint_dir with
  | Some dir -> Checkpoint.save ~dir ck
  | None -> ()

(* The schedule every mode implements: epoch [e] of every shard is
   seeded with front [e-2] — the join of all shards' deltas through
   epoch [e-2] (plus the campaign's initial state). The lag of one
   extra epoch is what makes the schedule {e pipelined}: a shard can
   start slice [e] as soon as the [e-2] front closes, without waiting
   for the other shards' [e-1] deltas. Because the seeding inputs are
   a deterministic function of (config, shard, epoch) — never of
   arrival timing — barrier (lockstep) and async (overlapped)
   execution produce byte-identical deltas, and the CRDT fold makes
   every front, and therefore the final digest, mode-independent. *)
let run_forked ?checkpoint_dir ?on_epoch ?chaos ~mode ~measure_full
    (ck0 : Checkpoint.t) ~until =
  Lazy.force ignore_sigpipe;
  (* Initialize every lazy kernel registry before forking: children
     must never race to build shared tables they'd then diverge on. *)
  Kernel.force_init ();
  let target = Kernel.target () in
  let cfg = ck0.config in
  let jobs = cfg.jobs in
  let c0 = ck0.completed in
  let handles : handle option array = Array.make jobs None in
  let respawns = ref 0 in
  (* Wire counters, accumulated across respawned connections. *)
  let bytes_sent = ref 0 and bytes_recv = ref 0 in
  let frames_sent = ref 0 and frames_recv = ref 0 in
  let bytes_full = ref 0 in
  let retire h =
    bytes_sent := !bytes_sent + Wire.bytes_out h.ep_out;
    bytes_recv := !bytes_recv + Wire.bytes_in h.ep_in;
    frames_sent := !frames_sent + Wire.frames_out h.ep_out;
    frames_recv := !frames_recv + Wire.frames_in h.ep_in
  in
  let live_bytes () =
    Array.fold_left
      (fun (s, r) h ->
        match h with
        | Some h -> (s + Wire.bytes_out h.ep_out, r + Wire.bytes_in h.ep_in)
        | None -> (s, r))
      (!bytes_sent, !bytes_recv) handles
  in
  (* Completed fronts. [get_front k] is defined for k >= -2: epochs
     before the resume point come from the checkpoint's two stored
     fronts (both equal the initial state on a fresh campaign). *)
  let fronts : Shard_state.t option array = Array.make (max until 1) None in
  let front_hi = ref (c0 - 1) in
  let get_front k =
    if k <= c0 - 2 then ck0.prev
    else if k = c0 - 1 then ck0.state
    else
      match fronts.(k) with
      | Some s -> s
      | None -> invalid_arg "Coordinator: front not yet complete"
  in
  (* Per-epoch collection of worker deltas. *)
  let round : Shard_state.delta list array = Array.make (max until 1) [] in
  let arrived = Array.make (max until 1) 0 in
  (* Per-shard scheduling state. *)
  let next = Array.make jobs c0 in
  let dispatched = Array.make jobs false in
  let held = Array.make jobs (Shard_state.of_target target) in
  let held_tag = Array.make jobs (-1) in
  (* -1 = fresh worker, holds the empty state *)
  let ver = Array.make jobs 0 in
  let budget = Array.make jobs max_respawns_per_epoch in
  (* In steady state every shard holds the same previous front, so the
     diff between consecutive fronts is serialized once per front, not
     once per shard. *)
  let diff_cache : (int * int, string) Hashtbl.t = Hashtbl.create 64 in
  let diff_blob ~held_tag:tag ~base_state e =
    match Hashtbl.find_opt diff_cache (tag, e) with
    | Some blob -> blob
    | None ->
      let blob =
        Shard_state.to_string
          (Shard_state.diff ~since:base_state (get_front (e - 2)))
      in
      Hashtbl.replace diff_cache (tag, e) blob;
      blob
  in
  let full_bcast_cache : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let full_bcast_len e =
    match Hashtbl.find_opt full_bcast_cache e with
    | Some n -> n
    | None ->
      let n = String.length (Shard_state.to_string (get_front (e - 2))) + 8 in
      Hashtbl.replace full_bcast_cache e n;
      n
  in
  let get_handle shard =
    match handles.(shard) with Some h -> h | None -> assert false
  in
  let respawn ~shard =
    (match handles.(shard) with
    | Some h ->
      retire h;
      bury h
    | None -> ());
    handles.(shard) <- None;
    incr respawns;
    budget.(shard) <- budget.(shard) - 1;
    if budget.(shard) < 0 then
      failwith
        (Printf.sprintf "shard %d died %d times in one epoch; giving up" shard
           max_respawns_per_epoch);
    handles.(shard) <- Some (spawn cfg handles ~shard);
    held.(shard) <- Shard_state.of_target target;
    held_tag.(shard) <- -1;
    ver.(shard) <- 0;
    dispatched.(shard) <- false
  in
  let dependency_ready e =
    let dep = match mode with Async -> e - 2 | Barrier -> e - 1 in
    dep <= !front_hi
  in
  let rec dispatch shard =
    let e = next.(shard) in
    (* Computed per attempt: a respawned worker holds the empty state,
       so its diff is wider than the one the dead worker was owed. *)
    let blob = diff_blob ~held_tag:held_tag.(shard) ~base_state:held.(shard) e in
    let h = get_handle shard in
    match
      Wire.send h.ep_out Wire.Epoch (fun buf ->
          Wire.put_int buf e;
          Wire.put_int buf ver.(shard);
          Buffer.add_string buf blob)
    with
    | () ->
      ver.(shard) <- ver.(shard) + 1;
      held.(shard) <- get_front (e - 2);
      held_tag.(shard) <- e - 2;
      dispatched.(shard) <- true;
      if measure_full then bytes_full := !bytes_full + full_bcast_len e
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) ->
      respawn ~shard;
      dispatch shard
  in
  let dispatch_wave () =
    for shard = 0 to jobs - 1 do
      if
        (not dispatched.(shard))
        && next.(shard) < until
        && dependency_ready next.(shard)
      then dispatch shard
    done
  in
  let ck = ref ck0 in
  let fire_progress k =
    match on_epoch with
    | Some f ->
      let s, r = live_bytes () in
      f
        {
          epoch = k;
          epochs = cfg.epochs;
          state = get_front k;
          respawns = !respawns;
          bytes_sent = s;
          bytes_recv = r;
          bytes_full = !bytes_full;
        }
    | None -> ()
  in
  (* Fold round [k] the moment it closes (all shards' deltas for epoch
     [k] arrived and front [k-1] exists): this is the merge cadence
     that advances the checkpoint. *)
  let advance_fronts () =
    while
      !front_hi + 1 < until
      && arrived.(!front_hi + 1) = jobs
      && !front_hi >= c0 - 1
    do
      let k = !front_hi + 1 in
      let f =
        List.fold_left Shard_state.apply (get_front (k - 1))
          (List.rev round.(k))
      in
      round.(k) <- [];
      fronts.(k) <- Some f;
      front_hi := k;
      ck :=
        {
          !ck with
          completed = k + 1;
          state = f;
          prev = get_front (k - 1);
        };
      save_opt checkpoint_dir !ck;
      fire_progress k
    done
  in
  let chaos_next = ref c0 in
  let fire_chaos () =
    match chaos with
    | Some f ->
      while !chaos_next <= !front_hi + 1 && !chaos_next < until do
        f ~epoch:!chaos_next
          (List.init jobs (fun shard -> (shard, (get_handle shard).pid)));
        incr chaos_next
      done
    | None -> ()
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (function
          | Some h ->
            (try Wire.send_frame h.to_w Wire.Quit ""
             with Unix.Unix_error _ | Sys_error _ -> ());
            retire h;
            bury h
          | None -> ())
        handles)
    (fun () ->
      for shard = 0 to jobs - 1 do
        handles.(shard) <- Some (spawn cfg handles ~shard)
      done;
      save_opt checkpoint_dir !ck;
      while !front_hi < until - 1 do
        dispatch_wave ();
        fire_chaos ();
        let fds =
          List.filter_map
            (fun shard ->
              if dispatched.(shard) then Some (get_handle shard).from_w
              else None)
            (List.init jobs Fun.id)
        in
        if fds = [] then failwith "Coordinator: scheduler stalled";
        let readable, _, _ =
          try Unix.select fds [] [] (-1.0)
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        List.iter
          (fun fd ->
            let shard =
              let found = ref (-1) in
              Array.iteri
                (fun i h ->
                  match h with
                  | Some h when h.from_w = fd -> found := i
                  | _ -> ())
                handles;
              !found
            in
            if shard >= 0 && dispatched.(shard) then
              let h = get_handle shard in
              match Wire.recv h.ep_in with
              | Wire.Delta, payload -> (
                match Shard_state.delta_of_string target payload with
                | d
                  when d.Shard_state.epoch = next.(shard)
                       && d.Shard_state.shard = shard ->
                  let e = d.Shard_state.epoch in
                  if measure_full then
                    bytes_full :=
                      !bytes_full
                      + String.length
                          (Shard_state.delta_to_string
                             {
                               d with
                               Shard_state.outcome =
                                 Shard_state.merge (get_front (e - 2))
                                   d.Shard_state.outcome;
                             });
                  round.(e) <- d :: round.(e);
                  arrived.(e) <- arrived.(e) + 1;
                  next.(shard) <- e + 1;
                  budget.(shard) <- max_respawns_per_epoch;
                  dispatched.(shard) <- false
                | _ -> respawn ~shard (* protocol desync *)
                | exception Shard_state.Malformed _ -> respawn ~shard)
              | (Wire.Epoch | Wire.Quit), _ -> respawn ~shard
              | exception (End_of_file | Wire.Malformed _) -> respawn ~shard)
          readable;
        advance_fronts ()
      done;
      let s, r = live_bytes () in
      bytes_sent := s;
      bytes_recv := r;
      {
        final = !ck;
        respawns = !respawns;
        bytes_sent = !bytes_sent;
        bytes_recv = !bytes_recv;
        frames_sent =
          Array.fold_left
            (fun acc h ->
              match h with
              | Some h -> acc + Wire.frames_out h.ep_out
              | None -> acc)
            !frames_sent handles;
        frames_recv =
          Array.fold_left
            (fun acc h ->
              match h with
              | Some h -> acc + Wire.frames_in h.ep_in
              | None -> acc)
            !frames_recv handles;
        bytes_full = !bytes_full;
      })

let run_sequential ?checkpoint_dir ?on_epoch (ck : Checkpoint.t) ~until =
  Kernel.force_init ();
  let cfg = ck.config in
  let ck = ref ck in
  save_opt checkpoint_dir !ck;
  while !ck.completed < until do
    let epoch = !ck.completed in
    (* Same schedule as the forked modes: every shard's slice is
       seeded with front [epoch - 2] (the checkpoint's [prev]), then
       the full outcomes fold into front [epoch - 1]. Folding a full
       outcome or its diff against [prev] is equivalent, because
       [prev] is contained in the fold base. *)
    let base = !ck.prev in
    let deltas =
      List.init cfg.jobs (fun shard ->
          Worker.run_epoch cfg ~shard ~epoch base)
    in
    let state = List.fold_left Shard_state.apply !ck.state deltas in
    ck := { !ck with completed = epoch + 1; state; prev = !ck.state };
    save_opt checkpoint_dir !ck;
    match on_epoch with
    | Some f ->
      f
        {
          epoch;
          epochs = cfg.epochs;
          state;
          respawns = 0;
          bytes_sent = 0;
          bytes_recv = 0;
          bytes_full = 0;
        }
    | None -> ()
  done;
  {
    final = !ck;
    respawns = 0;
    bytes_sent = 0;
    bytes_recv = 0;
    frames_sent = 0;
    frames_recv = 0;
    bytes_full = 0;
  }

let run ?(forked = true) ?(mode = Async) ?(measure_full = false)
    ?checkpoint_dir ?stop_after ?on_epoch ?chaos (ck : Checkpoint.t) =
  let until =
    match stop_after with
    | Some n -> min n ck.config.epochs
    | None -> ck.config.epochs
  in
  if forked then
    run_forked ?checkpoint_dir ?on_epoch ?chaos ~mode ~measure_full ck ~until
  else run_sequential ?checkpoint_dir ?on_epoch ck ~until
