module Bitset = Healer_util.Bitset
module Prog = Healer_executor.Prog
module Serializer = Healer_executor.Serializer
module Target = Healer_syzlang.Target
module Risk = Healer_kernel.Risk
module Relation_table = Healer_core.Relation_table
module Triage = Healer_core.Triage

exception Malformed of string

type t = {
  n_syscalls : int;
  relations : Relation_table.t;
  coverage : Bitset.t;
  corpus : (string * Prog.t) list;
  crashes : Triage.record list;
  execs : (int * int) list;
}

(* Corpus entries dedup on a 16-byte digest of the canonical encoding;
   the full serialized form is recomputed only when a state crosses
   the wire, not retained per entry in memory. *)
let corpus_key p = Digest.string (Serializer.encode p)

let empty ~n_syscalls =
  {
    n_syscalls;
    relations = Relation_table.create n_syscalls;
    coverage = Bitset.create ();
    corpus = [];
    crashes = [];
    execs = [];
  }

let of_target target = empty ~n_syscalls:(Target.n_syscalls target)

(* Canonical component orders: corpus by digest key, crashes by
   signature (their dedup unit), counters by shard. *)
let sort_corpus c =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) c

let sort_crashes cs =
  List.sort
    (fun (a : Triage.record) b -> String.compare a.Triage.signature b.Triage.signature)
    cs

(* Duplicate shard keys collapse to their max, so canonicalization is
   a true normalizer and the G-counter laws hold for any input. *)
let sort_execs e =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (s, n) ->
      match Hashtbl.find_opt tbl s with
      | Some m when m >= n -> ()
      | _ -> Hashtbl.replace tbl s n)
    e;
  List.sort compare (Hashtbl.fold (fun s n acc -> (s, n) :: acc) tbl [])

let canonical t =
  {
    t with
    corpus = sort_corpus t.corpus;
    crashes = sort_crashes (Triage.merge_records [ t.crashes ]);
    execs = sort_execs t.execs;
  }

let merge a b =
  if a.n_syscalls <> b.n_syscalls then
    invalid_arg "Shard_state.merge: table size mismatch";
  let coverage = Bitset.copy a.coverage in
  Bitset.union_into ~dst:coverage b.coverage;
  let execs =
    let ea = sort_execs a.execs and eb = sort_execs b.execs in
    let shards = List.sort_uniq compare (List.map fst ea @ List.map fst eb) in
    List.map
      (fun s ->
        let get l = match List.assoc_opt s l with Some n -> n | None -> 0 in
        (s, max (get ea) (get eb)))
      shards
  in
  {
    n_syscalls = a.n_syscalls;
    relations = Relation_table.merge a.relations b.relations;
    coverage;
    corpus = sort_corpus (a.corpus @ b.corpus);
    crashes = sort_crashes (Triage.merge_records [ a.crashes; b.crashes ]);
    execs;
  }

let total_execs t = List.fold_left (fun acc (_, n) -> acc + n) 0 t.execs

(* ---- watermarks and diffs ---- *)

type watermark = {
  w_relations : int;
  w_coverage : int;
  w_corpus : int;
  w_crashes : int;
  w_execs : int;
}

let watermark t =
  {
    w_relations = Relation_table.count t.relations;
    w_coverage = Bitset.count t.coverage;
    w_corpus = List.length t.corpus;
    w_crashes = List.length t.crashes;
    w_execs = total_execs t;
  }

let is_empty t =
  Relation_table.count t.relations = 0
  && Bitset.count t.coverage = 0
  && t.corpus = [] && t.crashes = [] && t.execs = []

(* A diff is itself a state holding only the components of [t] that
   [base] lacks (or, for crash records and counters, strictly
   improves on): merging it into [base] reconstructs [merge base t]
   exactly — the qcheck law the service suite pins. Bytes shipped are
   O(new work), not O(total state). *)
let diff ~since:base t =
  if base.n_syscalls <> t.n_syscalls then
    invalid_arg "Shard_state.diff: table size mismatch";
  let relations = Relation_table.create t.n_syscalls in
  Relation_table.iter_new ~base:base.relations
    (fun i j -> ignore (Relation_table.set relations i j))
    t.relations;
  let coverage = Bitset.create () in
  Bitset.iter_diff ~base:base.coverage (Bitset.add coverage) t.coverage;
  let base_keys = Hashtbl.create (List.length base.corpus) in
  List.iter (fun (k, _) -> Hashtbl.replace base_keys k ()) base.corpus;
  let corpus =
    List.filter (fun (k, _) -> not (Hashtbl.mem base_keys k)) t.corpus
  in
  (* Keep the preferred record per signature: the raw base may hold
     duplicates, and diffing against a worse duplicate would ship
     records the canonical merge already owns. *)
  let base_crashes = Hashtbl.create (List.length base.crashes) in
  List.iter
    (fun (r : Triage.record) ->
      match Hashtbl.find_opt base_crashes r.Triage.signature with
      | Some prev when Triage.preferred prev r -> ()
      | _ -> Hashtbl.replace base_crashes r.Triage.signature r)
    base.crashes;
  let crashes =
    List.filter
      (fun (r : Triage.record) ->
        match Hashtbl.find_opt base_crashes r.Triage.signature with
        | None -> true
        | Some prev -> not (Triage.preferred prev r))
      t.crashes
  in
  let base_execs = sort_execs base.execs in
  let execs =
    List.filter
      (fun (s, n) ->
        match List.assoc_opt s base_execs with
        | Some m -> n > m
        | None -> true)
      (sort_execs t.execs)
  in
  { n_syscalls = t.n_syscalls; relations; coverage; corpus; crashes; execs }

(* ---- canonical serialization ---- *)

let put_crash buf (r : Triage.record) =
  Wire.put_str buf r.Triage.bug_key;
  Wire.put_str buf r.Triage.signature;
  Wire.put_str buf (Risk.to_string r.Triage.risk);
  Wire.put_float buf r.Triage.first_found;
  Wire.put_str buf (Serializer.encode r.Triage.reproducer)

let put_state buf t =
  let t = canonical t in
  Wire.put_int buf t.n_syscalls;
  let edges = Relation_table.edges t.relations in
  Wire.put_int buf (List.length edges);
  List.iter
    (fun (i, j) ->
      Wire.put_int buf i;
      Wire.put_int buf j)
    edges;
  let cov = Bitset.elements t.coverage in
  Wire.put_int buf (List.length cov);
  (* Ascending ids, delta-encoded: small varints. *)
  ignore
    (List.fold_left
       (fun prev id ->
         Wire.put_int buf (id - prev);
         id)
       0 cov);
  Wire.put_int buf (List.length t.corpus);
  List.iter (fun (_, p) -> Wire.put_str buf (Serializer.encode p)) t.corpus;
  Wire.put_int buf (List.length t.crashes);
  List.iter (put_crash buf) t.crashes;
  Wire.put_int buf (List.length t.execs);
  List.iter
    (fun (shard, n) ->
      Wire.put_int buf shard;
      Wire.put_int buf n)
    t.execs

let to_string t =
  let buf = Buffer.create 4096 in
  put_state buf t;
  Buffer.contents buf

let get_crash target s pos =
  let bug_key = Wire.get_str s pos in
  let signature = Wire.get_str s pos in
  let risk_name = Wire.get_str s pos in
  let risk =
    match Risk.of_string risk_name with
    | Some r -> r
    | None -> raise (Malformed (Printf.sprintf "unknown risk class %S" risk_name))
  in
  let first_found = Wire.get_float s pos in
  let enc = Wire.get_str s pos in
  let reproducer =
    try Serializer.decode target enc
    with Serializer.Malformed msg -> raise (Malformed ("bad reproducer: " ^ msg))
  in
  {
    Triage.bug_key;
    risk;
    signature;
    first_found;
    reproducer;
    repro_len = Prog.length reproducer;
  }

let get_state target s pos =
  let wrap f = try f () with Wire.Malformed msg -> raise (Malformed msg) in
  wrap @@ fun () ->
  let n_syscalls = Wire.get_int s pos in
  if n_syscalls <> Target.n_syscalls target then
    raise
      (Malformed
         (Printf.sprintf "state for a %d-syscall target, expected %d" n_syscalls
            (Target.n_syscalls target)));
  let relations = Relation_table.create n_syscalls in
  let n_edges = Wire.get_int s pos in
  for _ = 1 to n_edges do
    let i = Wire.get_int s pos in
    let j = Wire.get_int s pos in
    if i >= n_syscalls || j >= n_syscalls then
      raise (Malformed (Printf.sprintf "relation (%d, %d) out of range" i j));
    ignore (Relation_table.set relations i j)
  done;
  let coverage = Bitset.create () in
  let n_cov = Wire.get_int s pos in
  let prev = ref 0 in
  for _ = 1 to n_cov do
    prev := !prev + Wire.get_int s pos;
    Bitset.add coverage !prev
  done;
  let n_corpus = Wire.get_int s pos in
  let corpus = ref [] in
  for _ = 1 to n_corpus do
    let enc = Wire.get_str s pos in
    let prog =
      try Serializer.decode target enc
      with Serializer.Malformed msg -> raise (Malformed ("bad program: " ^ msg))
    in
    (* Re-key on the canonical encoding in case the stored bytes were
       not (the key is the dedup unit). *)
    corpus := (corpus_key prog, prog) :: !corpus
  done;
  let n_crashes = Wire.get_int s pos in
  let crashes = ref [] in
  for _ = 1 to n_crashes do
    crashes := get_crash target s pos :: !crashes
  done;
  let n_execs = Wire.get_int s pos in
  let execs = ref [] in
  for _ = 1 to n_execs do
    let shard = Wire.get_int s pos in
    let n = Wire.get_int s pos in
    execs := (shard, n) :: !execs
  done;
  canonical
    {
      n_syscalls;
      relations;
      coverage;
      corpus = !corpus;
      crashes = !crashes;
      execs = !execs;
    }

let of_string target s =
  let pos = ref 0 in
  let t = get_state target s pos in
  if !pos <> String.length s then raise (Malformed "trailing bytes");
  t

let equal a b = String.equal (to_string a) (to_string b)
let digest t = Digest.to_hex (Digest.string (to_string t))

(* ---- worker deltas ---- *)

type delta = { shard : int; epoch : int; d_execs : int; outcome : t }

let apply g (d : delta) =
  let prev = match List.assoc_opt d.shard g.execs with Some n -> n | None -> 0 in
  let contrib = { d.outcome with execs = [ (d.shard, prev + d.d_execs) ] } in
  merge g contrib

let put_delta buf d =
  Wire.put_int buf d.shard;
  Wire.put_int buf d.epoch;
  Wire.put_int buf d.d_execs;
  put_state buf { d.outcome with execs = [] }

let delta_to_string d =
  let buf = Buffer.create 4096 in
  put_delta buf d;
  Buffer.contents buf

let delta_of_string target s =
  let wrap f = try f () with Wire.Malformed msg -> raise (Malformed msg) in
  wrap @@ fun () ->
  let pos = ref 0 in
  let shard = Wire.get_int s pos in
  let epoch = Wire.get_int s pos in
  let d_execs = Wire.get_int s pos in
  let outcome = of_string target (Wire.get_all s pos) in
  { shard; epoch; d_execs; outcome }
