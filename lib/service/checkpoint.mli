(** Durable campaign state: the coordinator's merged {!Shard_state}
    plus the campaign configuration and progress, written atomically
    (temp file + rename via {!Healer_core.Persist.write_atomic}) after
    every epoch so a [healer serve] daemon can be killed at any point
    and resume without losing learned relations.

    On-disk format (v2): the magic ["HLRCKP"], one version byte
    (forward compatibility: loaders reject versions they do not
    understand instead of misparsing), the configuration, the number
    of completed epochs, then the two newest completed fronts — the
    older as a full canonical state blob, the newer as its
    {!Shard_state.diff} (reconstructed by merge on load). *)

exception Malformed of string
(** Truncated or corrupt checkpoint files (including unsupported
    format versions). *)

type config = {
  tool : Healer_core.Fuzzer.tool;
  version : Healer_kernel.Version.t;
  jobs : int;  (** Worker shards. *)
  base_seed : int;
  epochs : int;  (** Planned sync rounds. *)
  slice : float;  (** Virtual seconds each shard fuzzes per epoch. *)
}

type t = {
  config : config;
  completed : int;
  state : Shard_state.t;  (** Front [completed - 1]: the join of every
      shard's deltas through the last globally completed epoch. *)
  prev : Shard_state.t;  (** Front [completed - 2] — the state that
      seeds epoch [completed] under the pipelined (lag-2) schedule,
      required for exact resume. Equals [state] on fresh campaigns.
      On disk it is stored whole and [state] as its diff. *)
}

val file : string -> string
(** [file dir] is the checkpoint file inside a campaign directory. *)

val to_string : t -> string

val of_string : Healer_syzlang.Target.t -> string -> t
(** Raises {!Malformed}. *)

val save : dir:string -> t -> unit
(** Creates [dir] if needed; the write is atomic. *)

val load : Healer_syzlang.Target.t -> path:string -> t
(** [path] may be the campaign directory or the checkpoint file
    itself. Raises {!Malformed} on corrupt contents, [Sys_error] when
    unreadable. *)

val merge : t -> t -> t
(** CRDT join of two checkpoints of the same campaign lineage: states
    merge, [completed] takes the max, the configuration must agree on
    tool/version (raises [Invalid_argument] otherwise); [jobs] and
    [epochs] take the max so a widened campaign keeps its history.
    The remaining scalar config fields ([base_seed], [slice]) keep the
    left operand's values — merging checkpoints of the {e same}
    campaign (the intended use) is fully commutative. *)
