(** One shard of a sharded campaign.

    A worker is {e restartable per slice}: each epoch it builds a
    fresh {!Healer_core.Fuzzer} from (config, shard, epoch, base
    view), fuzzes for one time slice, and ships what it found back as
    an incremental {!Shard_state.delta}. The base view is the merged
    global state as of the schedule's front for that epoch,
    reconstructed purely from the coordinator's versioned diffs —
    so the only worker state that survives a slice is a deterministic
    function of what the coordinator sent, which is what makes
    checkpoint/resume and death/respawn exact: a respawned worker
    (re-seeded with a full diff against the empty state) re-running an
    epoch produces byte-identical output. *)

val seed_for : Checkpoint.config -> shard:int -> epoch:int -> int
(** Deterministic per-(shard, epoch) RNG seed. *)

val run_epoch :
  Checkpoint.config -> shard:int -> epoch:int -> Shard_state.t ->
  Shard_state.delta
(** Pure with respect to its arguments: seeds a fresh fuzzer with the
    base view's relations and corpus, runs one slice, harvests the
    {e full} outcome (callers diff it against the base when shipping
    it over a wire). *)

val serve : Checkpoint.config -> shard:int -> input:Unix.file_descr ->
  output:Unix.file_descr -> 'a
(** Child-process loop: receive versioned incremental [Epoch] frames
    (epoch index, base-version check, state diff), fold them into the
    base view, answer with incremental [Delta] frames, exit on [Quit],
    peer EOF, or a version desync. Honors the HEALER_SHARD_SKEW_MS
    straggler knob (bench/tests only — sleeps, never changes
    results). Never returns — terminates the process via [Unix._exit]
    (skipping [at_exit], which belongs to the parent). *)
