(** One shard of a sharded campaign.

    A worker is {e restartable per epoch}: each epoch it builds a
    fresh {!Healer_core.Fuzzer} from (config, shard, epoch, merged
    global state), fuzzes for one time slice, and ships its complete
    end-of-epoch state back as a {!Shard_state.delta}. No worker state
    survives an epoch except through the coordinator's merged state,
    which is what makes checkpoint/resume and death/respawn exact: a
    respawned worker re-running an epoch produces byte-identical
    output. *)

val seed_for : Checkpoint.config -> shard:int -> epoch:int -> int
(** Deterministic per-(shard, epoch) RNG seed. *)

val run_epoch :
  Checkpoint.config -> shard:int -> epoch:int -> Shard_state.t ->
  Shard_state.delta
(** Pure with respect to its arguments: seeds a fresh fuzzer with the
    merged relations and corpus, runs one slice, harvests the
    outcome. *)

val serve : Checkpoint.config -> shard:int -> input:Unix.file_descr ->
  output:Unix.file_descr -> 'a
(** Child-process loop: receive [Epoch] frames, answer with [Delta]
    frames, exit on [Quit] or peer EOF. Never returns — terminates the
    process via [Unix._exit] (skipping [at_exit], which belongs to the
    parent). *)
