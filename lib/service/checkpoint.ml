module Fuzzer = Healer_core.Fuzzer
module Persist = Healer_core.Persist
module Version = Healer_kernel.Version

exception Malformed of string

type config = {
  tool : Fuzzer.tool;
  version : Version.t;
  jobs : int;
  base_seed : int;
  epochs : int;
  slice : float;
}

type t = {
  config : config;
  completed : int;
  state : Shard_state.t;
  prev : Shard_state.t;
}

let magic = "HLRCKP"
let format_version = '\002'
let file dir = Filename.concat dir "healer.ckpt"

(* v2 stores the last two completed fronts (the pipelined schedule
   seeds epoch [e] from front [e-2], so exact resume needs both), the
   older as a full blob and the newer as its diff — the increment is
   cheap to store for the same reason it is cheap to ship. *)
let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_char buf format_version;
  Wire.put_str buf (Fuzzer.tool_name t.config.tool);
  Wire.put_str buf (Version.to_string t.config.version);
  Wire.put_int buf t.config.jobs;
  Wire.put_int buf t.config.base_seed;
  Wire.put_int buf t.config.epochs;
  Wire.put_float buf t.config.slice;
  Wire.put_int buf t.completed;
  Wire.put_str buf (Shard_state.to_string t.prev);
  Buffer.add_string buf
    (Shard_state.to_string (Shard_state.diff ~since:t.prev t.state));
  Buffer.contents buf

let tool_of_name name =
  List.find_opt
    (fun t -> String.equal (Fuzzer.tool_name t) name)
    Fuzzer.all_tools

let of_string target s =
  let wrap f =
    try f () with
    | Wire.Malformed msg -> raise (Malformed msg)
    | Shard_state.Malformed msg -> raise (Malformed msg)
  in
  wrap @@ fun () ->
  let mlen = String.length magic in
  if String.length s < mlen + 1 || not (String.equal (String.sub s 0 mlen) magic)
  then raise (Malformed "bad checkpoint magic");
  if s.[mlen] <> format_version then
    raise
      (Malformed
         (Printf.sprintf "unsupported checkpoint format version %d"
            (Char.code s.[mlen])));
  let pos = ref (mlen + 1) in
  let tool_name = Wire.get_str s pos in
  let tool =
    match tool_of_name tool_name with
    | Some t -> t
    | None -> raise (Malformed (Printf.sprintf "unknown tool %S" tool_name))
  in
  let version_name = Wire.get_str s pos in
  let version =
    match Version.of_string version_name with
    | Some v -> v
    | None ->
      raise (Malformed (Printf.sprintf "unknown kernel version %S" version_name))
  in
  let jobs = Wire.get_int s pos in
  let base_seed = Wire.get_int s pos in
  let epochs = Wire.get_int s pos in
  let slice = Wire.get_float s pos in
  let completed = Wire.get_int s pos in
  if jobs < 1 || epochs < 0 || completed < 0 || completed > epochs then
    raise (Malformed "implausible campaign configuration");
  let prev = Shard_state.of_string target (Wire.get_str s pos) in
  let incr = Shard_state.of_string target (Wire.get_all s pos) in
  let state = Shard_state.merge prev incr in
  {
    config = { tool; version; jobs; base_seed; epochs; slice };
    completed;
    state;
    prev;
  }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let save ~dir t =
  mkdir_p dir;
  Persist.write_atomic ~path:(file dir) (to_string t)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load target ~path =
  let path =
    if Sys.file_exists path && Sys.is_directory path then file path else path
  in
  of_string target (read_file path)

let merge a b =
  if a.config.tool <> b.config.tool || a.config.version <> b.config.version then
    invalid_arg "Checkpoint.merge: campaigns disagree on tool or kernel";
  {
    config =
      {
        a.config with
        jobs = max a.config.jobs b.config.jobs;
        epochs = max a.config.epochs b.config.epochs;
      };
    completed = max a.completed b.completed;
    state = Shard_state.merge a.state b.state;
    prev = Shard_state.merge a.prev b.prev;
  }
