(** The coordinator's merged campaign state — a CRDT.

    Every component is a join-semilattice, so {!merge} is commutative,
    associative and idempotent with {!empty} as identity, and the
    coordinator can fold worker deltas in any order (or twice) and
    reach the same state:

    - learned relations: grow-only edge set ({!Relation_table.merge});
    - coverage: grow-only branch-id set (bitset union);
    - corpus: grow-only program set, deduplicated by encoding digest;
    - crashes: per-signature register resolved by
      {!Healer_core.Triage.merge_records} (earliest discovery wins,
      deterministic tie-breaks);
    - per-shard execution counters: pointwise max (a G-counter).

    Serialization is canonical — equal states produce identical bytes
    regardless of the merge order that built them — so checkpoint
    files diff cleanly and state equality is a string compare.

    States also support {e incremental} exchange: {!diff} computes the
    sparse state a peer at [since] is missing, and merging that diff
    into the peer's state reconstructs the full join — the service's
    wire traffic is O(new work) instead of O(total state). *)

exception Malformed of string
(** Raised by the decoders on truncated or corrupt input (a
    checkpoint cut off mid-write, a garbled frame). *)

type t = {
  n_syscalls : int;
  relations : Healer_core.Relation_table.t;
  coverage : Healer_util.Bitset.t;
  corpus : (string * Healer_executor.Prog.t) list;
      (** [(digest of canonical encoding, program)], sorted by key, no
          duplicates. The full encoding is recomputed only when a
          state crosses the wire, never retained per entry. *)
  crashes : Healer_core.Triage.record list;  (** Sorted by signature. *)
  execs : (int * int) list;  (** [(shard, execs)] counters, sorted. *)
}
(** Treat values as immutable: [merge] never mutates its inputs. *)

val corpus_key : Healer_executor.Prog.t -> string
(** The corpus dedup key: a 16-byte digest of the canonical encoding. *)

val empty : n_syscalls:int -> t
val of_target : Healer_syzlang.Target.t -> t

val merge : t -> t -> t
(** CRDT join. Raises [Invalid_argument] on [n_syscalls] mismatch. *)

val equal : t -> t -> bool
val digest : t -> string
(** Short stable hex digest of the canonical serialization. *)

val total_execs : t -> int

(** {2 Incremental diffs}

    Per-component watermarks and set differences, so shard state can
    be exchanged as what-the-peer-is-missing instead of
    everything-from-scratch. *)

type watermark = {
  w_relations : int;
  w_coverage : int;
  w_corpus : int;
  w_crashes : int;
  w_execs : int;
}
(** Per-component progress counters — each is monotone under {!merge},
    so comparing watermarks is a cheap dirty check. *)

val watermark : t -> watermark

val diff : since:t -> t -> t
(** [diff ~since:base t] is the sparse state holding exactly what
    [base] lacks from [t]: relation edges and coverage ids of [t] not
    in [base], corpus entries with unseen keys, crash records that
    strictly beat [base]'s for their signature
    ({!Healer_core.Triage.preferred}), and counters that increased.
    The defining law, pinned by qcheck in the service suite:

    [merge base (diff ~since:base t) == merge base t]

    and [diff ~since:t t] {!is_empty}. Raises [Invalid_argument] on
    [n_syscalls] mismatch. *)

val is_empty : t -> bool
(** True when every component is empty — e.g. a {!diff} against a
    state that already dominates [t]. *)

val to_string : t -> string
val put_state : Buffer.t -> t -> unit
(** [to_string] through a caller-supplied (reusable) buffer. *)

val of_string : Healer_syzlang.Target.t -> string -> t
(** Raises {!Malformed}. Validates [n_syscalls] against the target. *)

(** {2 Worker deltas} *)

type delta = {
  shard : int;
  epoch : int;
  d_execs : int;  (** Executions spent by this shard this epoch. *)
  outcome : t;
      (** What the shard found: its end-of-epoch state in sequential
          mode, or the {!diff} of it against the shard's base view in
          forked mode — {!apply} folds both to the same result, since
          the base is always part of the coordinator's state already
          ([execs] empty either way). *)
}

val apply : t -> delta -> t
(** Fold one worker delta: merge the outcome and credit the shard's
    execution counter. The coordinator guards against folding the same
    [(shard, epoch)] twice, which keeps the counters exact; the
    set-valued components would be idempotent anyway. *)

val delta_to_string : delta -> string
val put_delta : Buffer.t -> delta -> unit
val delta_of_string : Healer_syzlang.Target.t -> string -> delta
(** Raises {!Malformed}. *)
