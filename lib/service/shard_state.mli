(** The coordinator's merged campaign state — a CRDT.

    Every component is a join-semilattice, so {!merge} is commutative,
    associative and idempotent with {!empty} as identity, and the
    coordinator can fold worker deltas in any order (or twice) and
    reach the same state:

    - learned relations: grow-only edge set ({!Relation_table.merge});
    - coverage: grow-only branch-id set (bitset union);
    - corpus: grow-only program set, deduplicated by serialized form;
    - crashes: per-signature register resolved by
      {!Healer_core.Triage.merge_records} (earliest discovery wins,
      deterministic tie-breaks);
    - per-shard execution counters: pointwise max (a G-counter).

    Serialization is canonical — equal states produce identical bytes
    regardless of the merge order that built them — so checkpoint
    files diff cleanly and state equality is a string compare. *)

exception Malformed of string
(** Raised by the decoders on truncated or corrupt input (a
    checkpoint cut off mid-write, a garbled frame). *)

type t = {
  n_syscalls : int;
  relations : Healer_core.Relation_table.t;
  coverage : Healer_util.Bitset.t;
  corpus : (string * Healer_executor.Prog.t) list;
      (** [(serialized form, program)], sorted by key, no duplicates. *)
  crashes : Healer_core.Triage.record list;  (** Sorted by signature. *)
  execs : (int * int) list;  (** [(shard, execs)] counters, sorted. *)
}
(** Treat values as immutable: [merge] never mutates its inputs. *)

val empty : n_syscalls:int -> t
val of_target : Healer_syzlang.Target.t -> t

val merge : t -> t -> t
(** CRDT join. Raises [Invalid_argument] on [n_syscalls] mismatch. *)

val equal : t -> t -> bool
val digest : t -> string
(** Short stable hex digest of the canonical serialization. *)

val total_execs : t -> int

val to_string : t -> string
val of_string : Healer_syzlang.Target.t -> string -> t
(** Raises {!Malformed}. Validates [n_syscalls] against the target. *)

(** {2 Worker deltas} *)

type delta = {
  shard : int;
  epoch : int;
  d_execs : int;  (** Executions spent by this shard this epoch. *)
  outcome : t;  (** The worker's end-of-epoch state ([execs] empty). *)
}

val apply : t -> delta -> t
(** Fold one worker delta: merge the outcome and credit the shard's
    execution counter. The coordinator guards against folding the same
    [(shard, epoch)] twice, which keeps the counters exact; the
    set-valued components would be idempotent anyway. *)

val delta_to_string : delta -> string
val delta_of_string : Healer_syzlang.Target.t -> string -> delta
(** Raises {!Malformed}. *)
