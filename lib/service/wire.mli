(** Length-prefixed binary framing over file descriptors — the
    coordinator/worker pipe protocol, built on the executor's LEB128
    varints ({!Healer_executor.Serializer}).

    A frame is one tag byte, a uvarint payload length, then the
    payload. Writers emit a frame with a single buffered write;
    readers block until the full frame arrives. A peer dying mid-frame
    surfaces as [End_of_file] (the pipe drains, then reads return 0),
    which the coordinator treats as worker death. *)

exception Malformed of string
(** Unknown tag, varint overflow, or an implausible payload length. *)

type tag =
  | Epoch  (** coordinator -> worker: epoch index + merged state *)
  | Delta  (** worker -> coordinator: end-of-epoch shard delta *)
  | Quit  (** coordinator -> worker: shut down cleanly *)

(** {2 Endpoints}

    A per-connection handle holding reusable scratch buffers: the
    frame-encode buffer and the assembly/receive bytes persist across
    frames, so the steady-state hot path performs one [write] per sent
    frame and allocates only the decoded payload string per received
    frame. Also counts bytes and frames in each direction — the
    coordinator surfaces these through its outcome and the status
    JSON. *)

type endpoint

val endpoint : Unix.file_descr -> endpoint

val send : endpoint -> tag -> (Buffer.t -> unit) -> unit
(** [send ep tag encode] runs [encode] against the endpoint's reused
    buffer and writes the assembled frame with a single [write].
    Raises [Unix.Unix_error (EPIPE, _, _)] when the peer is gone (the
    service layer disables [SIGPIPE]). *)

val send_string : endpoint -> tag -> string -> unit

val recv : endpoint -> tag * string
(** Blocking. Raises [End_of_file] on a closed peer, {!Malformed} on
    garbage. *)

val bytes_out : endpoint -> int
val bytes_in : endpoint -> int
val frames_out : endpoint -> int
val frames_in : endpoint -> int

(** {2 One-shot framing}

    Conveniences over a throwaway endpoint — shutdown paths and tests;
    hot loops should hold an {!endpoint}. *)

val send_frame : Unix.file_descr -> tag -> string -> unit
val recv_frame : Unix.file_descr -> tag * string

(** {2 Payload primitives}

    Shared by the state, delta and checkpoint encoders. All raise
    {!Malformed} on truncated or corrupt input, never [Scanf]-style
    surprises. *)

val put_int : Buffer.t -> int -> unit
(** Non-negative ints as uvarints. *)

val put_str : Buffer.t -> string -> unit
(** Length-prefixed bytes. *)

val put_float : Buffer.t -> float -> unit
(** IEEE bits as a uvarint. *)

val get_int : string -> int ref -> int
val get_str : string -> int ref -> string
val get_float : string -> int ref -> float

val get_all : string -> int ref -> string
(** The remaining bytes (advances the cursor to the end). *)
