(** Length-prefixed binary framing over file descriptors — the
    coordinator/worker pipe protocol, built on the executor's LEB128
    varints ({!Healer_executor.Serializer}).

    A frame is one tag byte, a uvarint payload length, then the
    payload. Writers emit a frame with a single buffered write;
    readers block until the full frame arrives. A peer dying mid-frame
    surfaces as [End_of_file] (the pipe drains, then reads return 0),
    which the coordinator treats as worker death. *)

exception Malformed of string
(** Unknown tag, varint overflow, or an implausible payload length. *)

type tag =
  | Epoch  (** coordinator -> worker: epoch index + merged state *)
  | Delta  (** worker -> coordinator: end-of-epoch shard delta *)
  | Quit  (** coordinator -> worker: shut down cleanly *)

val send_frame : Unix.file_descr -> tag -> string -> unit
(** Raises [Unix.Unix_error (EPIPE, _, _)] when the peer is gone
    (the service layer disables [SIGPIPE]). *)

val recv_frame : Unix.file_descr -> tag * string
(** Blocking. Raises [End_of_file] on a closed peer, {!Malformed} on
    garbage. *)

(** {2 Payload primitives}

    Shared by the state, delta and checkpoint encoders. All raise
    {!Malformed} on truncated or corrupt input, never [Scanf]-style
    surprises. *)

val put_int : Buffer.t -> int -> unit
(** Non-negative ints as uvarints. *)

val put_str : Buffer.t -> string -> unit
(** Length-prefixed bytes. *)

val put_float : Buffer.t -> float -> unit
(** IEEE bits as a uvarint. *)

val get_int : string -> int ref -> int
val get_str : string -> int ref -> string
val get_float : string -> int ref -> float

val get_all : string -> int ref -> string
(** The remaining bytes (advances the cursor to the end). *)
