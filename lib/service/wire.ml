module Serializer = Healer_executor.Serializer

exception Malformed of string

type tag = Epoch | Delta | Quit

let tag_byte = function Epoch -> 'E' | Delta -> 'D' | Quit -> 'Q'

let tag_of_byte = function
  | 'E' -> Epoch
  | 'D' -> Delta
  | 'Q' -> Quit
  | c -> raise (Malformed (Printf.sprintf "unknown frame tag %C" c))

(* A corrupt length prefix must not turn into a giant allocation. *)
let max_payload = 1 lsl 30

(* ---- payload primitives ---- *)

let put_int buf n =
  if n < 0 then invalid_arg "Wire.put_int: negative";
  Serializer.put_uvarint buf (Int64.of_int n)

let put_str buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

let put_float buf f = Serializer.put_uvarint buf (Int64.bits_of_float f)

let get_uvarint s pos =
  try Serializer.get_uvarint s pos
  with Serializer.Malformed msg -> raise (Malformed msg)

let get_int s pos =
  let v = get_uvarint s pos in
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    raise (Malformed "varint out of int range");
  Int64.to_int v

let get_str s pos =
  let n = get_int s pos in
  if n > String.length s - !pos then raise (Malformed "truncated string");
  let r = String.sub s !pos n in
  pos := !pos + n;
  r

let get_float s pos = Int64.float_of_bits (get_uvarint s pos)

let get_all s pos =
  let r = String.sub s !pos (String.length s - !pos) in
  pos := String.length s;
  r

(* ---- endpoints: reusable scratch per connection ---- *)

(* One endpoint per pipe end. The encode buffer and the frame-assembly
   bytes are reused across frames ([Buffer.clear] keeps the storage),
   so the steady-state hot path allocates only the decoded payload
   string — no per-frame [Buffer.create]/[Bytes.create]/[to_bytes]
   copies. Counters make the comms cost of a campaign observable. *)
type endpoint = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* payload encoding, cleared (not reset) per frame *)
  mutable scratch : Bytes.t;  (* assembled outgoing / incoming frame *)
  byte1 : Bytes.t;  (* single-byte header reads *)
  mutable bytes_out : int;
  mutable bytes_in : int;
  mutable frames_out : int;
  mutable frames_in : int;
}

let endpoint fd =
  {
    fd;
    buf = Buffer.create 4096;
    scratch = Bytes.create 4096;
    byte1 = Bytes.create 1;
    bytes_out = 0;
    bytes_in = 0;
    frames_out = 0;
    frames_in = 0;
  }

let ensure ep n =
  if Bytes.length ep.scratch < n then
    ep.scratch <- Bytes.create (max n (2 * Bytes.length ep.scratch))

let rec write_all fd bytes off len =
  if len > 0 then begin
    let n =
      try Unix.write fd bytes off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd bytes (off + n) (len - n)
  end

(* Writes a uvarint into [b] at [off]; returns the byte count. *)
let blit_uvarint b off n =
  let rec go off n =
    if n < 0x80 then begin
      Bytes.set b off (Char.chr n);
      off + 1
    end
    else begin
      Bytes.set b off (Char.chr (0x80 lor (n land 0x7f)));
      go (off + 1) (n lsr 7)
    end
  in
  go off n - off

let send ep tag encode =
  Buffer.clear ep.buf;
  encode ep.buf;
  let len = Buffer.length ep.buf in
  ensure ep (len + 11);
  Bytes.set ep.scratch 0 (tag_byte tag);
  let hdr = 1 + blit_uvarint ep.scratch 1 len in
  Buffer.blit ep.buf 0 ep.scratch hdr len;
  write_all ep.fd ep.scratch 0 (hdr + len);
  ep.bytes_out <- ep.bytes_out + hdr + len;
  ep.frames_out <- ep.frames_out + 1

let send_string ep tag payload =
  send ep tag (fun buf -> Buffer.add_string buf payload)

let read_byte ep =
  let rec go () =
    match Unix.read ep.fd ep.byte1 0 1 with
    | 0 -> raise End_of_file
    | _ -> Bytes.get ep.byte1 0
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let read_exact_into ep n =
  ensure ep n;
  let off = ref 0 in
  while !off < n do
    match Unix.read ep.fd ep.scratch !off (n - !off) with
    | 0 -> raise End_of_file
    | k -> off := !off + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* The length varint is read byte-by-byte: its size is unknown until
   the continuation bit clears, and over-reading would steal the next
   frame's bytes. *)
let recv ep =
  let tag = tag_of_byte (read_byte ep) in
  let len = ref 0 and shift = ref 0 and continue = ref true in
  let hdr = ref 1 in
  while !continue do
    if !shift > 62 then raise (Malformed "frame length varint too long");
    let b = Char.code (read_byte ep) in
    incr hdr;
    len := !len lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    continue := b land 0x80 <> 0
  done;
  if !len > max_payload then raise (Malformed "frame payload too large");
  read_exact_into ep !len;
  ep.bytes_in <- ep.bytes_in + !hdr + !len;
  ep.frames_in <- ep.frames_in + 1;
  (tag, Bytes.sub_string ep.scratch 0 !len)

let bytes_out ep = ep.bytes_out
let bytes_in ep = ep.bytes_in
let frames_out ep = ep.frames_out
let frames_in ep = ep.frames_in

(* ---- one-shot framing (shutdown paths, tests) ---- *)

let send_frame fd tag payload = send_string (endpoint fd) tag payload
let recv_frame fd = recv (endpoint fd)
