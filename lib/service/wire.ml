module Serializer = Healer_executor.Serializer

exception Malformed of string

type tag = Epoch | Delta | Quit

let tag_byte = function Epoch -> 'E' | Delta -> 'D' | Quit -> 'Q'

let tag_of_byte = function
  | 'E' -> Epoch
  | 'D' -> Delta
  | 'Q' -> Quit
  | c -> raise (Malformed (Printf.sprintf "unknown frame tag %C" c))

(* A corrupt length prefix must not turn into a giant allocation. *)
let max_payload = 1 lsl 30

(* ---- payload primitives ---- *)

let put_int buf n =
  if n < 0 then invalid_arg "Wire.put_int: negative";
  Serializer.put_uvarint buf (Int64.of_int n)

let put_str buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

let put_float buf f = Serializer.put_uvarint buf (Int64.bits_of_float f)

let get_uvarint s pos =
  try Serializer.get_uvarint s pos
  with Serializer.Malformed msg -> raise (Malformed msg)

let get_int s pos =
  let v = get_uvarint s pos in
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    raise (Malformed "varint out of int range");
  Int64.to_int v

let get_str s pos =
  let n = get_int s pos in
  if n > String.length s - !pos then raise (Malformed "truncated string");
  let r = String.sub s !pos n in
  pos := !pos + n;
  r

let get_float s pos = Int64.float_of_bits (get_uvarint s pos)

let get_all s pos =
  let r = String.sub s !pos (String.length s - !pos) in
  pos := String.length s;
  r

(* ---- framing ---- *)

let rec write_all fd bytes off len =
  if len > 0 then begin
    let n =
      try Unix.write fd bytes off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd bytes (off + n) (len - n)
  end

let read_exact fd n =
  let bytes = Bytes.create n in
  let off = ref 0 in
  while !off < n do
    match Unix.read fd bytes !off (n - !off) with
    | 0 -> raise End_of_file
    | k -> off := !off + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  bytes

let send_frame fd tag payload =
  let buf = Buffer.create (String.length payload + 12) in
  Buffer.add_char buf (tag_byte tag);
  put_int buf (String.length payload);
  Buffer.add_string buf payload;
  write_all fd (Buffer.to_bytes buf) 0 (Buffer.length buf)

(* The length varint is read byte-by-byte: its size is unknown until
   the continuation bit clears. *)
let recv_frame fd =
  let tag = tag_of_byte (Bytes.get (read_exact fd 1) 0) in
  let len = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if !shift > 62 then raise (Malformed "frame length varint too long");
    let b = Char.code (Bytes.get (read_exact fd 1) 0) in
    len := !len lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    continue := b land 0x80 <> 0
  done;
  if !len > max_payload then raise (Malformed "frame payload too large");
  (tag, Bytes.to_string (read_exact fd !len))
