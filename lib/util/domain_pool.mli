(** Fixed-size OCaml 5 domain worker pool.

    A hand-rolled stdlib-only pool (no [domainslib]): a fixed set of
    worker domains pulls thunks off a [Mutex]/[Condition]-protected
    queue. Built for coarse-grained, embarrassingly parallel jobs —
    independent fuzzing campaigns — not fine-grained tasking: jobs
    should be orders of magnitude longer than a queue round-trip.

    Jobs must only touch data that is private to them or immutable;
    the pool provides ordering of results, not synchronization of
    shared state. *)

type t

val create : jobs:int -> t
(** Spawn a pool of [jobs] worker domains. Raises [Invalid_argument]
    when [jobs < 1]. Counting the caller, the process uses [jobs + 1]
    domains while a [map] is in flight. *)

val size : t -> int
(** Number of worker domains. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] runs [f] on every element of [xs] across the pool's
    workers and returns the results in input order, regardless of
    completion order. If any job raised, the exception of the
    earliest (by input position) failed job is re-raised after all
    jobs have settled, with its original backtrace. Raises
    [Invalid_argument] if the pool has been shut down. *)

val shutdown : t -> unit
(** Finish queued work, then join every worker. Idempotent; the pool
    cannot be used afterwards. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards, also on exception. *)
