(** The diagnostics core shared by every analysis pass and by the
    program validator.

    A diagnostic is a finding with a stable check ID (so CI gates and
    suppressions survive message rewording), a severity, an optional
    source position, the subject it is about, and a human message.
    Lives in [Healer_util] so both the description analyzer
    ([Healer_analysis]) and the program validator
    ([Healer_executor.Progcheck]) can produce the same currency;
    [Healer_analysis.Diagnostic] re-exports this module. *)

type severity = Error | Warning | Info

type pos = { src : string option; line : int }
(** [src] is a file, subsystem or program name; [line] is 1-based and
    local to [src] when [src] is present (for program diagnostics it is
    the 1-based call index). *)

type t = {
  check : string;  (** stable ID, e.g. "sem-len-target" *)
  severity : severity;
  pos : pos option;
  subject : string;  (** what the finding is about, e.g. "call open" *)
  message : string;
}

val v :
  ?pos:pos -> check:string -> severity:severity -> subject:string -> string -> t

val vf :
  ?pos:pos ->
  check:string ->
  severity:severity ->
  subject:string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val severity_to_string : severity -> string
val severity_rank : severity -> int
(** Errors first: [Error] = 0, [Warning] = 1, [Info] = 2. *)

val compare : t -> t -> int
(** Errors first, then stable order by position, check and subject. *)

val count : severity -> t list -> int
val has_errors : t list -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val json_escape : string -> string
val to_json : t -> string

val list_to_json : name:string -> t list -> string
(** The full report document. *)
