(** Growable bit set over non-negative integers.

    Used for coverage bitmaps: branch identifiers index into the set.
    The set grows transparently on [add]. *)

type t

val create : ?capacity:int -> unit -> t
val add : t -> int -> unit
(** [add t i] sets bit [i]. Requires [i >= 0]. *)

val mem : t -> int -> bool
val count : t -> int
(** Number of set bits (cached, O(1) amortized). *)

val add_seq : t -> int list -> int
(** [add_seq t ids] adds every id and returns how many were new. *)

val new_of : t -> int list -> int list
(** [new_of t ids] returns the sublist of [ids] not present in [t]
    (without adding them; duplicates within [ids] collapse to one). *)

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] adds every element of [src] to [dst]. *)

val iter_diff : base:t -> (int -> unit) -> t -> unit
(** [iter_diff ~base f t] calls [f] on every element of [t] that is
    absent from [base], in increasing order — the set difference
    [t \ base], without materializing it. *)

val copy : t -> t
val clear : t -> unit
val iter : (int -> unit) -> t -> unit
val elements : t -> int list
(** Set bits in increasing order. *)
