type t = {
  mutable bits : Bytes.t;
  mutable card : int;
}

let create ?(capacity = 1024) () =
  { bits = Bytes.make (max 1 ((capacity + 7) / 8)) '\000'; card = 0 }

let ensure t i =
  let needed = (i / 8) + 1 in
  let len = Bytes.length t.bits in
  if needed > len then begin
    let grown = Bytes.make (max needed (len * 2)) '\000' in
    Bytes.blit t.bits 0 grown 0 len;
    t.bits <- grown
  end

let mem t i =
  if i < 0 then invalid_arg "Bitset.mem: negative index";
  let byte = i / 8 in
  byte < Bytes.length t.bits
  && Char.code (Bytes.get t.bits byte) land (1 lsl (i mod 8)) <> 0

let add t i =
  if i < 0 then invalid_arg "Bitset.add: negative index";
  ensure t i;
  let byte = i / 8 and bit = 1 lsl (i mod 8) in
  let cur = Char.code (Bytes.get t.bits byte) in
  if cur land bit = 0 then begin
    Bytes.set t.bits byte (Char.chr (cur lor bit));
    t.card <- t.card + 1
  end

let count t = t.card

let add_seq t ids =
  List.fold_left
    (fun fresh i ->
      if mem t i then fresh
      else begin
        add t i;
        fresh + 1
      end)
    0 ids

let remove t i =
  let byte = i / 8 and bit = 1 lsl (i mod 8) in
  if byte < Bytes.length t.bits then begin
    let cur = Char.code (Bytes.get t.bits byte) in
    if cur land bit <> 0 then begin
      Bytes.set t.bits byte (Char.chr (cur land lnot bit));
      t.card <- t.card - 1
    end
  end

let new_of t ids =
  (* Fresh ids are marked in the set itself while scanning (collapsing
     duplicates within [ids]) and unmarked before returning, so the
     per-call scratch table is gone from this hot path. *)
  let rec scan acc = function
    | [] -> List.rev acc
    | i :: rest ->
      if mem t i then scan acc rest
      else begin
        add t i;
        scan (i :: acc) rest
      end
  in
  let fresh = scan [] ids in
  List.iter (remove t) fresh;
  fresh

let iter f t =
  for byte = 0 to Bytes.length t.bits - 1 do
    let v = Char.code (Bytes.get t.bits byte) in
    if v <> 0 then
      for bit = 0 to 7 do
        if v land (1 lsl bit) <> 0 then f ((byte * 8) + bit)
      done
  done

let union_into ~dst src = iter (fun i -> add dst i) src

let iter_diff ~base f t =
  (* Byte-wise and-not against [base]; bytes beyond [base]'s length
     compare against zero. *)
  let blen = Bytes.length base.bits in
  for byte = 0 to Bytes.length t.bits - 1 do
    let v = Char.code (Bytes.get t.bits byte) in
    if v <> 0 then begin
      let b = if byte < blen then Char.code (Bytes.get base.bits byte) else 0 in
      let fresh = v land lnot b in
      if fresh <> 0 then
        for bit = 0 to 7 do
          if fresh land (1 lsl bit) <> 0 then f ((byte * 8) + bit)
        done
    end
  done

let copy t = { bits = Bytes.copy t.bits; card = t.card }

let clear t =
  Bytes.fill t.bits 0 (Bytes.length t.bits) '\000';
  t.card <- 0

let elements t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc
