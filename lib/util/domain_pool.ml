type t = {
  m : Mutex.t;
  have_work : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
}

(* Workers drain the queue until shutdown; a job never carries an
   exception out of the closure (map wraps it into the result slot),
   so a worker only exits on [shutdown]. *)
let worker_loop t =
  let rec next () =
    Mutex.lock t.m;
    let rec dequeue () =
      match Queue.take_opt t.queue with
      | Some job -> Some job
      | None ->
        if t.stopping then None
        else begin
          Condition.wait t.have_work t.m;
          dequeue ()
        end
    in
    let job = dequeue () in
    Mutex.unlock t.m;
    match job with
    | None -> ()
    | Some job ->
      job ();
      next ()
  in
  next ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Domain_pool.create: jobs must be positive";
  let t =
    {
      m = Mutex.create ();
      have_work = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [||];
    }
  in
  t.workers <- Array.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = Array.length t.workers

let map t f xs =
  let input = Array.of_list xs in
  let n = Array.length input in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let remaining = ref n in
    let all_done = Condition.create () in
    Mutex.lock t.m;
    if t.stopping then begin
      Mutex.unlock t.m;
      invalid_arg "Domain_pool.map: pool is shut down"
    end;
    Array.iteri
      (fun i x ->
        Queue.push
          (fun () ->
            let r =
              try Ok (f x)
              with e -> Error (e, Printexc.get_raw_backtrace ())
            in
            Mutex.lock t.m;
            results.(i) <- Some r;
            decr remaining;
            if !remaining = 0 then Condition.signal all_done;
            Mutex.unlock t.m)
          t.queue)
      input;
    Condition.broadcast t.have_work;
    while !remaining > 0 do
      Condition.wait all_done t.m
    done;
    Mutex.unlock t.m;
    (* Every slot settled: re-raise the earliest failure, else collect
       in input order. *)
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | Some (Ok _) | None -> ())
      results;
    Array.to_list
      (Array.map
         (function Some (Ok v) -> v | Some (Error _) | None -> assert false)
         results)
  end

let shutdown t =
  Mutex.lock t.m;
  let ws = t.workers in
  t.stopping <- true;
  t.workers <- [||];
  Condition.broadcast t.have_work;
  Mutex.unlock t.m;
  Array.iter Domain.join ws

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
