(* The diagnostics core shared by every analysis pass.

   A diagnostic is a finding with a stable check ID (so CI gates and
   suppressions survive message rewording), a severity, an optional
   source position, the declaration it is about, and a human message.
   Renderers: one-line human text and JSON. *)

type severity = Error | Warning | Info

(* [src] is a file name or a subsystem name; [line] is 1-based and
   local to [src] when [src] is present. *)
type pos = { src : string option; line : int }

type t = {
  check : string;  (* stable ID, e.g. "sem-len-target" *)
  severity : severity;
  pos : pos option;
  subject : string;  (* declaration the finding is about, e.g. "call open" *)
  message : string;
}

let v ?pos ~check ~severity ~subject message =
  { check; severity; pos; subject; message }

let vf ?pos ~check ~severity ~subject fmt =
  Fmt.kstr (fun message -> v ?pos ~check ~severity ~subject message) fmt

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

(* Errors first, then stable order by position, check and subject. *)
let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let pos_key = function
      | None -> ("", max_int)
      | Some { src; line } -> (Option.value src ~default:"", line)
    in
    let c = Stdlib.compare (pos_key a.pos) (pos_key b.pos) in
    if c <> 0 then c
    else
      let c = String.compare a.check b.check in
      if c <> 0 then c
      else
        let c = String.compare a.subject b.subject in
        if c <> 0 then c else String.compare a.message b.message

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)
let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let pp_pos ppf = function
  | { src = Some s; line } -> Fmt.pf ppf "%s:%d: " s line
  | { src = None; line } -> Fmt.pf ppf "line %d: " line

(* e.g. "vfs:41: error [sem-dir-conflict] call read: ..." *)
let pp ppf d =
  Fmt.pf ppf "%a%s [%s] %s: %s"
    Fmt.(option pp_pos)
    d.pos
    (severity_to_string d.severity)
    d.check d.subject d.message

let to_string d = Fmt.str "%a" pp d

(* ---- JSON (hand-rolled; the repo carries no JSON dependency) ---- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pos_to_json = function
  | None -> "null"
  | Some { src; line } ->
    let src_json =
      match src with
      | None -> "null"
      | Some s -> Printf.sprintf "\"%s\"" (json_escape s)
    in
    Printf.sprintf "{\"src\":%s,\"line\":%d}" src_json line

let to_json d =
  Printf.sprintf
    "{\"check\":\"%s\",\"severity\":\"%s\",\"pos\":%s,\"subject\":\"%s\",\"message\":\"%s\"}"
    (json_escape d.check)
    (severity_to_string d.severity)
    (pos_to_json d.pos) (json_escape d.subject) (json_escape d.message)

(* The full report document. *)
let list_to_json ~name ds =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"target\":\"%s\",\"errors\":%d,\"warnings\":%d,\"infos\":%d,\"diagnostics\":["
       (json_escape name) (count Error ds) (count Warning ds) (count Info ds));
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (to_json d))
    ds;
  Buffer.add_string buf "]}";
  Buffer.contents buf
