module Prog = Healer_executor.Prog
module Exec = Healer_executor.Exec
module Crash = Healer_kernel.Crash
module Risk = Healer_kernel.Risk

type record = {
  bug_key : string;
  risk : Risk.t;
  signature : string;
  first_found : float;
  reproducer : Prog.t;
  repro_len : int;
}

type t = {
  exec : Prog.t -> Exec.run_result;
  table : (string, record) Hashtbl.t;
  mutable order : record list;  (* reverse discovery order *)
}

let create ~exec = { exec; table = Hashtbl.create 32; order = [] }

(* Symbolize the raw log; fall back to the report fields when the log
   is unparsable (truncated console output). *)
let signature_of_report (r : Crash.report) =
  match Crash.symbolize r.Crash.log with
  | Some (key, risk) -> Risk.to_string risk ^ ":" ^ key
  | None -> Crash.signature r

let crash_signature_of_run (r : Exec.run_result) =
  match r.Exec.crash with
  | Some report -> Some (signature_of_report report)
  | None -> None

let minimize_reproducer ~exec ~signature p =
  let still_crashes q =
    match crash_signature_of_run (exec q) with
    | Some s -> String.equal s signature
    | None -> false
  in
  let q = ref p in
  let i = ref (Prog.length !q - 1) in
  while !i >= 0 do
    if Prog.length !q > 1 then begin
      let candidate = Prog.remove !q !i in
      if still_crashes candidate then q := candidate
    end;
    decr i
  done;
  !q

let on_crash t ~vtime p (report : Crash.report) =
  let signature = signature_of_report report in
  if Hashtbl.mem t.table signature then false
  else begin
    (* Cut the program at the crashing call before minimizing: nothing
       after it executed. *)
    let prefix = Prog.sub p (min (Prog.length p) (report.Crash.call_index + 1)) in
    let reproducer = minimize_reproducer ~exec:t.exec ~signature prefix in
    let record =
      {
        bug_key = report.Crash.bug_key;
        risk = report.Crash.risk;
        signature;
        first_found = vtime;
        reproducer;
        repro_len = Prog.length reproducer;
      }
    in
    Hashtbl.replace t.table signature record;
    t.order <- record :: t.order;
    true
  end

let unique_count t = Hashtbl.length t.table
let records t = List.rev t.order

(* Winner per dedup key, independent of the order records are merged
   in: earliest discovery, then smallest reproducer, with the encoded
   program and bug key as total-order tie-breaks. *)
let keeps a b =
  let c = Float.compare a.first_found b.first_found in
  if c <> 0 then c < 0
  else
    let c = compare a.repro_len b.repro_len in
    if c <> 0 then c < 0
    else
      let c =
        String.compare
          (Healer_executor.Serializer.encode a.reproducer)
          (Healer_executor.Serializer.encode b.reproducer)
      in
      if c <> 0 then c < 0 else String.compare a.bug_key b.bug_key <= 0

let preferred = keeps

let merge_records_by ~key lists =
  let best : (string, record) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (List.iter (fun r ->
         let k = key r in
         match Hashtbl.find_opt best k with
         | Some prev when keeps prev r -> ()
         | Some _ | None -> Hashtbl.replace best k r))
    lists;
  Hashtbl.fold (fun _ r acc -> r :: acc) best []
  |> List.sort (fun a b ->
         let c = Float.compare a.first_found b.first_found in
         if c <> 0 then c else String.compare a.signature b.signature)

let merge_records = merge_records_by ~key:(fun r -> r.signature)

let found t bug_key =
  List.find_opt (fun r -> String.equal r.bug_key bug_key) (records t)
