module Rng = Healer_util.Rng
module Target = Healer_syzlang.Target
module Syscall = Healer_syzlang.Syscall
module Prog = Healer_executor.Prog

let syscall_ids p ~upto =
  List.init (min upto (Prog.length p)) (fun k ->
      (Prog.call p k).Prog.syscall.Syscall.id)

let syscall_ids_b b ~upto =
  List.init (min upto (Prog.Builder.length b)) (fun k ->
      (Prog.Builder.call b k).Prog.syscall.Syscall.id)

let seed_pair_b rng target b =
  match Target.resource_kinds target with
  | [] -> ()
  | kinds -> (
    let kind = Rng.pick rng kinds in
    match (Target.producers_of target kind, Target.consumers_of target kind) with
    | [], _ | _, [] -> ()
    | producers, consumers ->
      let producer = Rng.pick rng producers in
      let consumer = Rng.pick rng consumers in
      Builder.append_call_b rng target b producer;
      Builder.append_call_b rng target b consumer)

(* The whole generation runs on one builder: the seed pair, its
   producer chains and every refinement insertion cost amortized
   slots; a program is materialized once at the end. *)
let generate rng target ~select () =
  let b = Prog.Builder.create () in
  seed_pair_b rng target b;
  (if Prog.Builder.length b = 0 then
     (* Degenerate target with no usable resource pair: start from a
        single random call. *)
     let calls = Target.syscalls target in
     let c = calls.(Rng.int rng (Array.length calls)) in
     Builder.append_call_b rng target b c);
  (* Refinement: a few rounds of guided insertion. *)
  let rounds = Rng.int_in rng 2 6 in
  for _ = 1 to rounds do
    if Prog.Builder.length b < Builder.max_prog_len then begin
      let at = Rng.int rng (Prog.Builder.length b + 1) in
      let sub = syscall_ids_b b ~upto:at in
      let id = select ~sub in
      let call = Target.syscall target id in
      Builder.insert_call_b rng target b ~at call
    end
  done;
  let p = Prog.Builder.to_prog b in
  Healer_executor.Progcheck.debug_check ~what:"Gen.generate" target p;
  p
