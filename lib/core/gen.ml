module Rng = Healer_util.Rng
module Target = Healer_syzlang.Target
module Syscall = Healer_syzlang.Syscall
module Prog = Healer_executor.Prog

let syscall_ids p ~upto =
  List.init (min upto (Prog.length p)) (fun k ->
      (Prog.call p k).Prog.syscall.Syscall.id)

let seed_pair rng target =
  match Target.resource_kinds target with
  | [] -> Prog.empty
  | kinds -> (
    let kind = Rng.pick rng kinds in
    match (Target.producers_of target kind, Target.consumers_of target kind) with
    | [], _ | _, [] -> Prog.empty
    | producers, consumers ->
      let producer = Rng.pick rng producers in
      let consumer = Rng.pick rng consumers in
      let p = Builder.append_call rng target Prog.empty producer in
      Builder.append_call rng target p consumer)

let generate rng target ~select () =
  let p = ref (seed_pair rng target) in
  (if Prog.length !p = 0 then
     (* Degenerate target with no usable resource pair: start from a
        single random call. *)
     let calls = Target.syscalls target in
     let c = calls.(Rng.int rng (Array.length calls)) in
     p := Builder.append_call rng target Prog.empty c);
  (* Refinement: a few rounds of guided insertion. *)
  let rounds = Rng.int_in rng 2 6 in
  for _ = 1 to rounds do
    if Prog.length !p < Builder.max_prog_len then begin
      let at = Rng.int rng (Prog.length !p + 1) in
      let sub = syscall_ids !p ~upto:at in
      let id = select ~sub in
      let call = Target.syscall target id in
      p := Builder.insert_call rng target !p ~at call
    end
  done;
  Healer_executor.Progcheck.debug_check ~what:"Gen.generate" target !p;
  !p
