module Rng = Healer_util.Rng

type outcome = { id : int; used_table : bool }

let random_call rng table =
  { id = Rng.int rng (Relation_table.size table); used_table = false }

(* Guided picks run once per generated call: a per-domain scratch
   counter over syscall ids replaces the old per-pick Hashtbl + sorted
   assoc list (domain-local because campaigns run in parallel). *)
let scratch : int array ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [||])

let select rng table ~alpha ~sub =
  if Rng.float rng 1.0 > alpha then random_call rng table
  else begin
    let n = Relation_table.size table in
    let r = Domain.DLS.get scratch in
    if Array.length !r < n then r := Array.make n 0;
    let counts = !r in
    let total = ref 0 in
    List.iter
      (fun ci ->
        List.iter
          (fun cj ->
            counts.(cj) <- counts.(cj) + 1;
            incr total)
          (Relation_table.influenced_by table ci))
      sub;
    if !total = 0 then random_call rng table
    else begin
      (* One draw, walked in ascending id order — the exact sequence
         the old sorted-assoc [Rng.weighted] consumed, so guided picks
         are bit-identical. *)
      let target = Rng.int rng !total in
      let id = ref (-1) in
      let acc = ref 0 in
      let j = ref 0 in
      while !id < 0 do
        (if counts.(!j) > 0 then begin
           acc := !acc + counts.(!j);
           if target < !acc then id := !j
         end);
        incr j
      done;
      Array.fill counts 0 n 0;
      { id = !id; used_table = true }
    end
  end
