(** Guided sequence generation (paper Section 4.2).

    Generation starts from a random producer/consumer pair for a
    resource kind (what Syzlang's descriptions make explicit), then
    refines the sequence by inserting additional calls chosen by the
    caller-provided selection function (Algorithm 3 for HEALER, the
    choice table for the Syzkaller baseline, uniform for HEALER-). *)

val generate :
  Healer_util.Rng.t ->
  Healer_syzlang.Target.t ->
  select:(sub:int list -> int) ->
  unit ->
  Healer_executor.Prog.t
(** [select ~sub] returns the syscall id to insert after the calls
    whose ids are [sub].

    Under {!Healer_executor.Progcheck} debug validation
    ([HEALER_DEBUG_VALIDATE]) the generated program is asserted
    validator-clean before it is returned. *)

val syscall_ids : Healer_executor.Prog.t -> upto:int -> int list
(** The ids of the first [upto] calls (the sub-sequence S fed to call
    selection). *)

val syscall_ids_b : Healer_executor.Prog.Builder.t -> upto:int -> int list
(** {!syscall_ids} over a program under construction. *)
