module Rng = Healer_util.Rng
module Prog = Healer_executor.Prog
module Serializer = Healer_executor.Serializer

type entry = { prog : Prog.t; weight : int }

type t = {
  target : Healer_syzlang.Target.t;
  mutable entries : entry array;
  mutable count : int;
  keys : (string, unit) Hashtbl.t;
}

let create target =
  { target; entries = Array.make 64 { prog = Prog.empty; weight = 0 }; count = 0;
    keys = Hashtbl.create 256 }

let grow t =
  if t.count = Array.length t.entries then begin
    let bigger = Array.make (2 * Array.length t.entries) t.entries.(0) in
    Array.blit t.entries 0 bigger 0 t.count;
    t.entries <- bigger
  end

let add t prog ~new_blocks =
  if Prog.length prog = 0 then false
  else begin
    (* Dedup on a 16-byte digest of the canonical encoding instead of
       retaining the whole encoded string per entry. *)
    let key = Digest.string (Serializer.encode prog) in
    if Hashtbl.mem t.keys key then false
    else begin
      Hashtbl.add t.keys key ();
      grow t;
      t.entries.(t.count) <- { prog; weight = max 1 new_blocks };
      t.count <- t.count + 1;
      true
    end
  end

let size t = t.count
let is_empty t = t.count = 0

let merge_into ~dst src =
  let fresh = ref 0 in
  for i = 0 to src.count - 1 do
    let e = src.entries.(i) in
    if add dst e.prog ~new_blocks:e.weight then incr fresh
  done;
  !fresh

let pick rng t =
  if t.count = 0 then None
  else begin
    (* Weighted pick over a bounded random sample keeps selection O(k)
       even for large corpora, like Syzkaller's prio-weighted choice. *)
    let k = min t.count 16 in
    let best = ref t.entries.(Rng.int rng t.count) in
    for _ = 2 to k do
      let cand = t.entries.(Rng.int rng t.count) in
      let total = !best.weight + cand.weight in
      if total > 0 && Rng.int rng total < cand.weight then best := cand
    done;
    Some !best.prog
  end

let lengths t =
  let rec go i acc =
    if i < 0 then acc else go (i - 1) (Prog.length t.entries.(i).prog :: acc)
  in
  go (t.count - 1) []

let length_histogram t =
  Healer_util.Statx.histogram ~buckets:[ 1; 2; 3; 4 ] (lengths t)

let frac_len_at_least t n =
  if t.count = 0 then 0.0
  else begin
    let hits = ref 0 in
    for i = 0 to t.count - 1 do
      if Prog.length t.entries.(i).prog >= n then incr hits
    done;
    float_of_int !hits /. float_of_int t.count
  end

let iter f t =
  for i = 0 to t.count - 1 do
    f t.entries.(i).prog
  done
