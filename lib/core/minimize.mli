(** Sequence minimization — the paper's Algorithm 1.

    Given a test case and the new coverage achieved by each of its
    calls, extract independent, non-repetitive minimized subsequences:
    for each call [C_i] that triggered new coverage (walking backwards
    and skipping calls already captured by another subsequence), take
    the prefix ending at [C_i] and greedily try to remove each earlier
    call; a removal is kept when [C_i]'s per-call coverage is
    unchanged. *)

val minimize :
  ?target:Healer_syzlang.Target.t ->
  exec:(Healer_executor.Prog.t -> Healer_executor.Exec.run_result) ->
  Prog_cov.t ->
  Prog_cov.t list
(** [minimize ~exec pc] where [pc] bundles the program, its per-call
    coverage and per-call new coverage. Each returned subsequence ends
    at a call that contributed new coverage. The [exec] callback is
    also how execution cost is charged to the caller's clock.

    When [target] is given and {!Healer_executor.Progcheck} debug
    validation is enabled, every minimized subsequence is asserted
    validator-clean before it is returned (removal must only shift or
    degrade references, never corrupt types). *)
