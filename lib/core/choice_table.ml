module Rng = Healer_util.Rng
module Target = Healer_syzlang.Target
module Syscall = Healer_syzlang.Syscall
module Ty = Healer_syzlang.Ty
module Field = Healer_syzlang.Field
module Prog = Healer_executor.Prog

type signature = {
  resources : string list;  (* kinds used in any position/direction *)
  flagsets : string list;
  has_vma : bool;
  has_buffer : bool;
}

type t = {
  n : int;
  p0 : int array array;  (* normalized static part *)
  p1_raw : int array array;  (* adjacency counters *)
  mutable p1 : int array array;  (* normalized dynamic part *)
  mutable dirty : bool;
  mutable noted : int;
  cum : int array option array;
      (* per-row cumulative select weights, invalidated by refresh *)
}

let rec collect_sig target acc (ty : Ty.t) =
  match ty with
  | Ty.Res { kind; _ } -> { acc with resources = kind :: acc.resources }
  | Ty.Flags name -> { acc with flagsets = name :: acc.flagsets }
  | Ty.Vma -> { acc with has_vma = true }
  | Ty.Buffer _ -> { acc with has_buffer = true }
  | Ty.Ptr { elem; _ } -> collect_sig target acc elem
  | Ty.Array { elem; _ } -> collect_sig target acc elem
  | Ty.Struct_ref name ->
    List.fold_left
      (fun acc (f : Field.t) -> collect_sig target acc f.Field.fty)
      acc
      (Target.struct_fields target name)
  | Ty.Union_ref name ->
    List.fold_left
      (fun acc (f : Field.t) -> collect_sig target acc f.Field.fty)
      acc
      (Target.union_fields target name)
  | Ty.Int _ | Ty.Const _ | Ty.Len _ | Ty.Proc _ | Ty.Str _ | Ty.Filename _ ->
    acc

let signature_of target (c : Syscall.t) =
  let base =
    { resources = (match c.Syscall.ret with Some r -> [ r ] | None -> []);
      flagsets = []; has_vma = false; has_buffer = false }
  in
  let s =
    List.fold_left
      (fun acc (f : Field.t) -> collect_sig target acc f.Field.fty)
      base c.Syscall.args
  in
  {
    s with
    resources = List.sort_uniq String.compare s.resources;
    flagsets = List.sort_uniq String.compare s.flagsets;
  }

let common_count xs ys = List.length (List.filter (fun x -> List.mem x ys) xs)

(* Per the paper, P0 weighs common type *classes*, not specific kinds:
   any shared resource type contributes the flat weight 10, vma 5 —
   which is exactly why the choice table cannot express influence
   relations (read(fd) before listen(sock) scores like
   KVM_CREATE_VCPU before KVM_RUN). *)
let raw_p0 si sj =
  (10 * if si.resources <> [] && sj.resources <> [] then 1 else 0)
  + (5 * if si.has_vma && sj.has_vma then 1 else 0)
  + (2 * if common_count si.flagsets sj.flagsets > 0 then 1 else 0)
  + (1 * if si.has_buffer && sj.has_buffer then 1 else 0)

(* Normalize a raw matrix into [10, 1000] by the paper's description. *)
let normalize raw =
  let n = Array.length raw in
  let vmax = Array.fold_left (fun m row -> Array.fold_left max m row) 0 raw in
  let out = Array.make_matrix n n 10 in
  if vmax > 0 then
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        out.(i).(j) <- 10 + (raw.(i).(j) * 990 / vmax)
      done
    done;
  out

let create target =
  let calls = Target.syscalls target in
  let n = Array.length calls in
  let sigs = Array.map (signature_of target) calls in
  let raw = Array.make_matrix n n 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then raw.(i).(j) <- raw_p0 sigs.(i) sigs.(j)
    done
  done;
  {
    n;
    p0 = normalize raw;
    p1_raw = Array.make_matrix n n 0;
    p1 = Array.make_matrix n n 10;
    dirty = false;
    noted = 0;
    cum = Array.make n None;
  }

let note_corpus_program t (p : Prog.t) =
  for k = 0 to Prog.length p - 2 do
    let i = (Prog.call p k).Prog.syscall.Syscall.id in
    let j = (Prog.call p (k + 1)).Prog.syscall.Syscall.id in
    if i < t.n && j < t.n then t.p1_raw.(i).(j) <- t.p1_raw.(i).(j) + 1
  done;
  t.noted <- t.noted + 1;
  t.dirty <- true

let refresh t =
  if t.dirty then begin
    t.p1 <- normalize t.p1_raw;
    Array.fill t.cum 0 t.n None;
    t.dirty <- false
  end

let weight t i j =
  refresh t;
  t.p0.(i).(j) * t.p1.(i).(j) / 1000

(* Built lazily per biased row after each refresh; [select] then draws
   in O(log n) with no per-pick allocation. *)
let cum_row t b =
  match t.cum.(b) with
  | Some row -> row
  | None ->
    let row = Array.make t.n 0 in
    let p0b = t.p0.(b) and p1b = t.p1.(b) in
    let acc = ref 0 in
    for j = 0 to t.n - 1 do
      acc := !acc + max 1 (p0b.(j) * p1b.(j) / 1000);
      row.(j) <- !acc
    done;
    t.cum.(b) <- Some row;
    row

let select rng t ~bias =
  match bias with
  | None -> Rng.int rng t.n
  | Some b when b < 0 || b >= t.n -> Rng.int rng t.n
  | Some b ->
    refresh t;
    let row = cum_row t b in
    (* Same single draw as [Rng.weighted] over the per-j weights, so
       picks are bit-identical to the old list-based sampling. *)
    let target = Rng.int rng row.(t.n - 1) in
    let lo = ref 0 and hi = ref (t.n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if row.(mid) > target then hi := mid else lo := mid + 1
    done;
    !lo
