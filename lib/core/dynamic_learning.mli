(** Dynamic relation learning — the paper's Algorithm 2.

    For each minimized subsequence, examine every pair of {e
    consecutive} calls (C_j, C_i) whose relation is still unknown:
    remove C_j, re-execute, and if C_i's per-call coverage changed,
    record that C_j influences C_i. Only consecutive pairs are
    analyzed because a coverage change after removing a
    non-consecutive call could be an indirect effect (the paper's
    causality argument). *)

val learn :
  exec:(Healer_executor.Prog.t -> Healer_executor.Exec.run_result) ->
  table:Relation_table.t ->
  Prog_cov.t list ->
  (int * int) list
(** [learn ~exec ~table minimized] analyzes each minimized subsequence
    (as produced by {!Minimize.minimize}) and updates [table]. Returns
    the newly learned (i, j) syscall-id pairs. *)

val learn_from_run :
  ?target:Healer_syzlang.Target.t ->
  exec:(Healer_executor.Prog.t -> Healer_executor.Exec.run_result) ->
  table:Relation_table.t ->
  Prog_cov.t ->
  (int * int) list * Prog_cov.t list
(** Full pipeline on an interesting test case: minimize (Algorithm 1),
    then learn (Algorithm 2). Returns the new relations and the
    minimized subsequences (for corpus insertion). [target] is passed
    to {!Minimize.minimize} for debug validation of the minimized
    subsequences. *)
