(** Test-case mutation (paper Section 4.2).

    The dominant operator inserts a new call at a random point, chosen
    by the caller-provided selection function fed with the preceding
    sub-sequence (Algorithm 3 for HEALER). Argument mutation and call
    removal complete the operator set. *)

val mutate :
  Healer_util.Rng.t ->
  Healer_syzlang.Target.t ->
  select:(sub:int list -> int) ->
  Healer_executor.Prog.t ->
  Healer_executor.Prog.t
(** Never returns an empty program; falls back to argument mutation on
    singleton sequences.

    Under {!Healer_executor.Progcheck} debug validation
    ([HEALER_DEBUG_VALIDATE]) the mutated program is asserted
    validator-clean before it is returned. *)
