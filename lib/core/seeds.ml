module Rng = Healer_util.Rng
module Target = Healer_syzlang.Target
module Prog = Healer_executor.Prog

(* LTP-style test scenarios: ordered call chains per subsystem. Names
   not present in the target (e.g. when a subsystem is disabled) are
   skipped, so the corpus degrades gracefully. *)
(* Handwritten test suites exercise the common happy paths of each
   subsystem — typically the setup prefix plus one or two operations —
   not the precise deep combinations a fuzzer must discover. *)
let scenarios =
  [
    [ "open"; "write"; "lseek"; "read"; "fstat"; "close" ];
    [ "open"; "fallocate"; "fsync"; "ftruncate"; "close" ];
    [ "memfd_create"; "write"; "read" ];
    [ "memfd_create"; "ftruncate"; "fcntl$GET_SEALS" ];
    [ "epoll_create"; "open"; "epoll_ctl$EPOLL_CTL_ADD"; "epoll_wait";
      "epoll_ctl$EPOLL_CTL_DEL" ];
    [ "open"; "io_setup"; "io_submit"; "io_destroy"; "close" ];
    [ "mknod$chr"; "open$chr"; "write"; "close" ];
    [ "socket$tcp"; "bind"; "listen"; "accept"; "close" ];
    [ "socket$udp"; "bind"; "sendto"; "recvfrom" ];
    [ "socket$tcp"; "connect"; "sendto"; "shutdown" ];
    [ "openat$kvm"; "ioctl$KVM_CREATE_VM"; "ioctl$KVM_CREATE_VCPU" ];
    [ "openat$kvm"; "ioctl$KVM_CREATE_VM"; "ioctl$KVM_CREATE_IRQCHIP" ];
    [ "openat$ptmx"; "write"; "read"; "close" ];
    [ "openat$vcs"; "lseek"; "read" ];
    [ "openat$fb0"; "ioctl$FBIOGET_VSCREENINFO"; "write" ];
    [ "openat$rdma_cm"; "ioctl$RDMA_CREATE_ID"; "ioctl$RDMA_BIND_ADDR" ];
    [ "io_uring_setup"; "io_uring_enter" ];
    [ "openat$nbd"; "socket$tcp"; "ioctl$NBD_SET_SOCK" ];
    [ "openat$loop"; "open"; "ioctl$LOOP_SET_FD" ];
    [ "socket$l2cap"; "bind$l2cap"; "connect$l2cap" ];
    [ "socket$llcp"; "bind$llcp"; "listen$llcp" ];
    [ "mount$ext4"; "open"; "write"; "fsync"; "umount" ];
    [ "openat$vivid"; "ioctl$VIDIOC_S_FMT"; "ioctl$VIDIOC_REQBUFS";
      "ioctl$VIDIOC_STREAMON" ];
    [ "prctl$PR_SET_NAME"; "prctl$PR_GET_NAME"; "getrandom$DEFAULT" ];
    [ "clock_gettime$REALTIME"; "clock_gettime$MONOTONIC"; "times$SELF" ];
    [ "socket$nl_route"; "sendmsg$RTM_NEWLINK"; "sendmsg$RTM_GETLINK";
      "recvmsg$netlink" ];
    [ "socket$nl_route"; "sendmsg$RTM_SETLINK"; "socket$packet";
      "sendto$packet" ];
    [ "socket$nl_generic"; "sendmsg$GETFAMILY"; "bind$nl_generic";
      "sendmsg$genl" ];
  ]

let noise_calls =
  [ "read"; "lseek"; "fstat"; "epoll_create"; "munmap"; "fsync";
    "umask$SET"; "sync$ALL"; "getcpu$CURRENT" ]

let build_trace rng target names =
  let add p name =
    match Target.find target name with
    | Some call -> Builder.append_call rng target p call
    | None -> p
  in
  let with_noise =
    (* Interleave 1-2 unrelated calls, as real strace output contains. *)
    List.concat_map
      (fun name ->
        if Rng.chance rng 0.25 then [ name; Rng.pick rng noise_calls ]
        else [ name ])
      names
  in
  List.fold_left add Prog.empty with_noise

let traces ?(seed = 7) target =
  let rng = Rng.create seed in
  List.filter_map
    (fun names ->
      let p = build_trace rng target names in
      if Prog.length p >= 2 then Some p else None)
    scenarios

let distilled ?seed target = Distill.distill (traces ?seed target)
