module Version = Healer_kernel.Version

type run = {
  tool : Fuzzer.tool;
  version : Version.t;
  seed : int;
  hours : float;
  final_cov : int;
  samples : (float * int) list;
  corpus_size : int;
  corpus_lengths : int list;
  relations : int;
  crashes : Triage.record list;
  relation_snapshots : (float * (int * int) list) list;
  execs : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_resumed_calls : int;
}

let run_one ?(hours = 24.0) ?(seed = 1) ?exec_cache ~tool ~version () =
  let cfg = Fuzzer.config ~seed ?exec_cache ~tool ~version () in
  let f = Fuzzer.create cfg in
  Fuzzer.run_until f (hours *. 3600.0);
  let cs = Fuzzer.cache_stats f in
  let cache_stat get = match cs with Some s -> get s | None -> 0 in
  {
    tool;
    version;
    seed;
    hours;
    final_cov = Fuzzer.coverage f;
    samples = Fuzzer.samples f;
    corpus_size = Corpus.size (Fuzzer.corpus f);
    corpus_lengths = Corpus.lengths (Fuzzer.corpus f);
    relations = Fuzzer.relation_count f;
    crashes = Triage.records (Fuzzer.triage f);
    relation_snapshots = Fuzzer.relation_snapshots f;
    execs = Fuzzer.execs f;
    cache_hits = cache_stat (fun s -> s.Healer_executor.Exec_cache.hits);
    cache_misses = cache_stat (fun s -> s.Healer_executor.Exec_cache.misses);
    cache_evictions = cache_stat (fun s -> s.Healer_executor.Exec_cache.evictions);
    cache_resumed_calls =
      cache_stat (fun s -> s.Healer_executor.Exec_cache.resumed_calls);
  }

(* ---- parallel campaign matrix ---- *)

let default_jobs () =
  match Sys.getenv_opt "HEALER_BENCH_JOBS" with
  | None -> Domain.recommended_domain_count ()
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None ->
      invalid_arg "HEALER_BENCH_JOBS must be a positive integer")

let run_matrix ?jobs specs =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Campaign.run_matrix: jobs must be positive";
  let jobs = min jobs (max 1 (List.length specs)) in
  (* Campaigns only read the process-global kernel tables; settle them
     all before any worker domain exists. *)
  Healer_kernel.Kernel.force_init ();
  let one (tool, version, seed, hours) = run_one ~hours ~seed ~tool ~version () in
  if jobs = 1 then List.map one specs
  else
    Healer_util.Domain_pool.with_pool ~jobs (fun pool ->
        Healer_util.Domain_pool.map pool one specs)

let improvement_pct ~base subject =
  Healer_util.Statx.pct (float_of_int base.final_cov) (float_of_int subject.final_cov)

let time_to_coverage run level =
  let rec go = function
    | [] -> None
    | (t, cov) :: rest -> if cov >= level then Some t else go rest
  in
  go run.samples

let speedup ~base subject =
  match time_to_coverage subject base.final_cov with
  | Some t when t > 0.0 -> Some (base.hours *. 3600.0 /. t)
  | Some _ | None -> None

type comparison = {
  version : Version.t;
  rounds : int;
  min_impr : float;
  max_impr : float;
  avg_impr : float;
  avg_speedup : float option;
}

let compare_tools ?jobs ?(hours = 24.0) ~rounds ~subject ~base version =
  if rounds <= 0 then invalid_arg "Campaign.compare_tools: rounds must be positive";
  let specs =
    List.concat_map
      (fun round ->
        let seed = round + 1 in
        [ (base, version, seed, hours); (subject, version, seed, hours) ])
      (List.init rounds Fun.id)
  in
  let rec pair_up = function
    | b :: s :: rest -> (b, s) :: pair_up rest
    | [ _ ] | [] -> []
  in
  let pairs = pair_up (run_matrix ?jobs specs) in
  let imprs = List.map (fun (b, s) -> improvement_pct ~base:b s) pairs in
  let speedups = List.filter_map (fun (b, s) -> speedup ~base:b s) pairs in
  {
    version;
    rounds;
    min_impr = Healer_util.Statx.minimum imprs;
    max_impr = Healer_util.Statx.maximum imprs;
    avg_impr = Healer_util.Statx.mean imprs;
    avg_speedup =
      (if speedups = [] then None else Some (Healer_util.Statx.mean speedups));
  }

(* For each query time, the value carried is the last sample at or
   before it. Both lists ascend, so one synchronized pass per run
   replaces the per-query rescan of the whole sample list. *)
let series_at ~times samples =
  let out = Array.make (Array.length times) 0.0 in
  let rec go i last samples =
    if i < Array.length times then
      match samples with
      | (t', cov) :: rest when t' <= times.(i) -> go i (float_of_int cov) rest
      | _ ->
        out.(i) <- last;
        go (i + 1) last samples
  in
  go 0 0.0 samples;
  out

let average_series runs =
  match runs with
  | [] -> []
  | first :: _ ->
    let times = Array.of_list (List.map fst first.samples) in
    let per_run = List.map (fun run -> series_at ~times run.samples) runs in
    let n = float_of_int (List.length runs) in
    List.mapi
      (fun i t ->
        (t, List.fold_left (fun acc s -> acc +. s.(i)) 0.0 per_run /. n))
      (Array.to_list times)

let merge_crashes runs =
  Triage.merge_records_by
    ~key:(fun r -> r.Triage.bug_key)
    (List.map (fun run -> run.crashes) runs)
