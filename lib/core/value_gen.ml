module Value = Healer_executor.Value
module Rng = Healer_util.Rng
module Ty = Healer_syzlang.Ty
module Field = Healer_syzlang.Field
module Target = Healer_syzlang.Target
module Syscall = Healer_syzlang.Syscall

type ctx = {
  target : Target.t;
  producers : string -> int list;
}

let magic_ints =
  [| 0L; 1L; -1L; 2L; 3L; 7L; 8L; 16L; 64L; 127L; 128L; 255L; 256L; 511L;
     1024L; 4096L; 8192L; 65536L; 0x100000L; 0x7fffffffL |]

let buf_sizes = [| 0; 1; 8; 16; 64; 256; 1024; 4096; 8200; 16384 |]
let vma_addrs = [| 0x20000000L; 0x20001000L; 0x7f0000000000L; 0x1000L |]

let truncate_bits bits v =
  if bits >= 64 then v
  else Int64.logand v (Int64.sub (Int64.shift_left 1L bits) 1L)

let gen_int rng bits range =
  match range with
  | Some (lo, hi) ->
    if Rng.chance rng 0.2 then if Rng.bool rng then lo else hi
    else
      let span = Int64.add (Int64.sub hi lo) 1L in
      if Int64.compare span 0L <= 0 then lo else Int64.add lo (Rng.int64 rng span)
  | None ->
    if Rng.chance rng 0.6 then truncate_bits bits (Rng.pick_arr rng magic_ints)
    else truncate_bits bits (Rng.bits64 rng)

let gen_flags rng ctx name =
  let values = Target.flag_values ctx.target name in
  if Array.length values = 0 then 0L
  else if Rng.chance rng 0.75 then Rng.pick_arr rng values
  else begin
    (* OR a small subset, as Syzlang flag sets permit. *)
    let acc = ref 0L in
    let n = 1 + Rng.int rng 3 in
    for _ = 1 to n do
      acc := Int64.logor !acc (Rng.pick_arr rng values)
    done;
    !acc
  end

let gen_resource rng ctx kind =
  match ctx.producers kind with
  | [] ->
    let specials = Target.resource_special_values ctx.target kind in
    if Array.length specials > 0 && Rng.chance rng 0.7 then
      Value.Res_special (Rng.pick_arr rng specials)
    else if Rng.chance rng 0.5 then Value.Res_special (-1L)
    else Value.Int (Int64.of_int (Rng.int rng 16))
  | idxs ->
    if Rng.chance rng 0.92 then Value.Res_ref (Rng.pick rng idxs)
    else Value.Res_special (-1L)

let gen_buffer rng =
  let n = Rng.pick_arr rng buf_sizes in
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (Rng.int rng 256))
  done;
  Value.Buf b

let long_string rng =
  String.make (250 + Rng.int rng 64) (Char.chr (Char.code 'a' + Rng.int rng 26))

(* One byte-size model shared with the validator's len-consistency
   check (Progcheck): the two must never disagree. *)
let size_of_value = Value.byte_size

let rec gen_value rng ctx (ty : Ty.t) =
  match ty with
  | Ty.Int { bits; range } -> Value.Int (gen_int rng bits range)
  | Ty.Const v -> Value.Int v
  | Ty.Flags name -> Value.Int (gen_flags rng ctx name)
  | Ty.Len _ -> Value.Int 0L (* resolved by the caller's second pass *)
  | Ty.Proc { start; step } ->
    Value.Int (Int64.add start (Int64.mul step (Int64.of_int (Rng.int rng 4))))
  | Ty.Res { kind; dir = _ } -> gen_resource rng ctx kind
  | Ty.Ptr { elem; dir = _ } ->
    if Rng.chance rng 0.05 then Value.Null else Value.Ptr (gen_value rng ctx elem)
  | Ty.Buffer _ -> gen_buffer rng
  | Ty.Str lits ->
    if lits <> [] && Rng.chance rng 0.9 then Value.Str (Rng.pick rng lits)
    else Value.Str (long_string rng)
  | Ty.Filename lits ->
    if lits <> [] && Rng.chance rng 0.95 then Value.Str (Rng.pick rng lits)
    else Value.Str "/nonexistent"
  | Ty.Array { elem; min_len; max_len } ->
    let n = Rng.int_in rng min_len max_len in
    Value.Group (List.init n (fun _ -> gen_value rng ctx elem))
  | Ty.Struct_ref name ->
    Value.Group (gen_fields rng ctx (Target.struct_fields ctx.target name))
  | Ty.Union_ref name ->
    let fields = Target.union_fields ctx.target name in
    let f = List.nth fields (Rng.int rng (List.length fields)) in
    Value.Group [ gen_value rng ctx f.Field.fty ]
  | Ty.Vma -> Value.Vma (Rng.pick_arr rng vma_addrs)

(* Generate all fields, then resolve Len references against siblings. *)
and gen_fields rng ctx (fields : Field.t list) =
  let values = List.map (fun (f : Field.t) -> gen_value rng ctx f.Field.fty) fields in
  resolve_lens fields values

and resolve_lens fields values =
  List.map2
    (fun (f : Field.t) v ->
      match f.Field.fty with
      | Ty.Len name -> (
        let sibling =
          List.find_opt
            (fun ((g : Field.t), _) -> String.equal g.Field.fname name)
            (List.combine fields values)
        in
        match sibling with
        | Some (_, sv) -> Value.Int (Int64.of_int (size_of_value sv))
        | None -> v)
      | _ -> v)
    fields values

let gen_args rng ctx (call : Syscall.t) = gen_fields rng ctx call.Syscall.args

(* ---- mutation ---- *)

let mutate_int rng v =
  match Rng.int rng 4 with
  | 0 -> Int64.logxor v (Int64.shift_left 1L (Rng.int rng 64)) (* bit flip *)
  | 1 -> Int64.add v (Int64.of_int (Rng.int_in rng (-8) 8))
  | 2 -> Rng.pick_arr rng magic_ints
  | _ -> Rng.bits64 rng

let mutate_buf rng b =
  let n = Bytes.length b in
  match Rng.int rng 3 with
  | 0 -> Bytes.sub b 0 (Rng.int rng (n + 1)) (* shrink *)
  | 1 ->
    let extra = Rng.pick_arr rng buf_sizes in
    Bytes.cat b (Bytes.make extra '\x41') (* grow *)
  | _ ->
    if n = 0 then Bytes.make (Rng.pick_arr rng buf_sizes) '\x00'
    else begin
      let b = Bytes.copy b in
      Bytes.set b (Rng.int rng n) (Char.chr (Rng.int rng 256));
      b
    end

let rec mutate_value rng ctx (ty : Ty.t) v =
  match (ty, v) with
  | Ty.Const _, _ -> v (* constants stay fixed; the kernel checks them *)
  | Ty.Int { bits; range }, Value.Int x -> (
    match range with
    | None -> Value.Int (truncate_bits bits (mutate_int rng x))
    | Some _ ->
      (* Ranged ints must stay in range: the kernel rejects the call
         before reaching interesting code otherwise, and the validator
         (prog-int-width) treats escapes as generator bugs. *)
      Value.Int (gen_int rng bits range))
  | Ty.Flags name, Value.Int _ -> Value.Int (gen_flags rng ctx name)
  | Ty.Len _, (Value.Int x : Value.t) ->
    if Rng.chance rng 0.3 then Value.Int (mutate_int rng x) else v
  | Ty.Res { kind; _ }, _ -> gen_resource rng ctx kind
  | Ty.Ptr { elem; _ }, Value.Ptr inner ->
    if Rng.chance rng 0.08 then Value.Null
    else Value.Ptr (mutate_value rng ctx elem inner)
  | Ty.Ptr { elem; _ }, Value.Null ->
    Value.Ptr (gen_value rng ctx elem)
  | Ty.Buffer _, Value.Buf b -> Value.Buf (mutate_buf rng b)
  | Ty.Str _, _ | Ty.Filename _, _ -> gen_value rng ctx ty
  | Ty.Array { elem; min_len; max_len }, Value.Group vs ->
    let vs =
      if Rng.chance rng 0.3 && List.length vs < max_len then
        gen_value rng ctx elem :: vs
      else if Rng.chance rng 0.3 && List.length vs > min_len then List.tl vs
      else
        List.map
          (fun v -> if Rng.chance rng 0.4 then mutate_value rng ctx elem v else v)
          vs
    in
    Value.Group vs
  | Ty.Struct_ref name, Value.Group vs ->
    let fields = Target.struct_fields ctx.target name in
    if List.length fields = List.length vs then begin
      let k = Rng.int rng (List.length fields) in
      let vs =
        List.mapi
          (fun i v ->
            if i = k then
              mutate_value rng ctx (List.nth fields i).Field.fty v
            else v)
          vs
      in
      Value.Group (resolve_lens fields vs)
    end
    else gen_value rng ctx ty
  | Ty.Union_ref _, _ -> gen_value rng ctx ty
  | Ty.Vma, _ -> Value.Vma (Rng.pick_arr rng vma_addrs)
  | Ty.Proc _, _ -> gen_value rng ctx ty
  | _, _ -> gen_value rng ctx ty

let mutate_args rng ctx (call : Syscall.t) args =
  let fields = call.Syscall.args in
  if fields = [] || List.length args <> List.length fields then
    gen_args rng ctx call
  else begin
    let k = Rng.int rng (List.length args) in
    let args =
      List.mapi
        (fun i v ->
          if i = k || Rng.chance rng 0.1 then
            mutate_value rng ctx (List.nth fields i).Field.fty v
          else v)
        args
    in
    resolve_lens fields args
  end
