(** Program assembly: creating calls with resource arguments wired to
    earlier producers, and inserting the producer chain a call needs
    when none exists yet in the sequence. *)

val producers_for :
  Healer_syzlang.Target.t ->
  Healer_executor.Prog.t ->
  upto:int ->
  string ->
  int list
(** Indices [< upto] of calls whose produced resource kind is
    compatible with consumer kind. *)

val make_call :
  Healer_util.Rng.t ->
  Healer_syzlang.Target.t ->
  Healer_executor.Prog.t ->
  at:int ->
  Healer_syzlang.Syscall.t ->
  Healer_executor.Prog.call
(** Synthesize arguments for the call as if inserted at position [at]
    (resource refs drawn from calls [0 .. at-1]). *)

val insert_call :
  Healer_util.Rng.t ->
  Healer_syzlang.Target.t ->
  Healer_executor.Prog.t ->
  at:int ->
  Healer_syzlang.Syscall.t ->
  Healer_executor.Prog.t
(** Insert the call at [at], first inserting producers (recursively, up
    to depth 3) for any consumed resource kind that has no compatible
    producer earlier in the sequence. *)

val append_call :
  Healer_util.Rng.t ->
  Healer_syzlang.Target.t ->
  Healer_executor.Prog.t ->
  Healer_syzlang.Syscall.t ->
  Healer_executor.Prog.t

(** {2 Builder-backed assembly}

    The same operations over a mutable {!Healer_executor.Prog.Builder},
    for callers that chain many insertions (generation, guided
    mutation): amortized one array slot per inserted call instead of a
    whole-program copy. Draw-for-draw identical Rng usage with the
    immutable forms above. *)

val producers_for_b :
  Healer_syzlang.Target.t ->
  Healer_executor.Prog.Builder.t ->
  upto:int ->
  string ->
  int list

val make_call_b :
  Healer_util.Rng.t ->
  Healer_syzlang.Target.t ->
  Healer_executor.Prog.Builder.t ->
  at:int ->
  Healer_syzlang.Syscall.t ->
  Healer_executor.Prog.call

val insert_call_b :
  Healer_util.Rng.t ->
  Healer_syzlang.Target.t ->
  Healer_executor.Prog.Builder.t ->
  at:int ->
  Healer_syzlang.Syscall.t ->
  unit

val append_call_b :
  Healer_util.Rng.t ->
  Healer_syzlang.Target.t ->
  Healer_executor.Prog.Builder.t ->
  Healer_syzlang.Syscall.t ->
  unit

val max_prog_len : int
(** Hard cap on generated program length (the paper's sequences range
    up to ~32 calls). *)
