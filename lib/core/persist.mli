(** Persistence of fuzzing state across campaigns: corpus archives (the
    syz-db analogue) and learned-relation files (HEALER's [-r] flag).

    Corpus archives are binary: a magic header, then each program as a
    length-prefixed {!Healer_executor.Serializer} encoding. Relation
    files are the text format of {!Relation_table.serialize}. *)

exception Corrupt of string

val corpus_to_string : Healer_executor.Prog.t list -> string

val corpus_of_string :
  Healer_syzlang.Target.t -> string -> Healer_executor.Prog.t list
(** Raises {!Corrupt} on malformed archives. *)

val write_atomic : path:string -> string -> unit
(** Write-to-temp-then-rename: a crash mid-write can never leave a
    truncated file at [path] — the previous contents survive. Every
    state-persisting path (corpus archives, relation files, campaign
    checkpoints) writes through this. *)

val save_corpus : path:string -> Healer_executor.Prog.t list -> unit
val load_corpus : Healer_syzlang.Target.t -> path:string -> Healer_executor.Prog.t list

val save_relations : path:string -> Relation_table.t -> unit

val load_relations : path:string -> Relation_table.t
(** Raises {!Corrupt} on malformed relation files (mapped from
    {!Relation_table.Malformed}). *)
