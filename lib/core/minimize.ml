module Prog = Healer_executor.Prog
module Exec = Healer_executor.Exec

(* Algorithm 1 (Sequence Minimization).

   Indices: [reserved] accumulates calls already explained by some
   minimized subsequence; each seeding call C_i walks backwards trying
   to remove every earlier call, keeping a removal when C_i's per-call
   coverage is preserved, and reserving the calls that could not be
   removed. *)
let minimize ?target ~exec (pc : Prog_cov.t) =
  let p = pc.Prog_cov.prog in
  let n = Prog.length p in
  let reserved = Hashtbl.create 16 in
  let out = ref [] in
  for i = n - 1 downto 0 do
    if (not (Hashtbl.mem reserved i)) && pc.Prog_cov.new_cov.(i) <> [] then begin
      Hashtbl.replace reserved i ();
      (* Keyed once; compared against every removal probe below. *)
      let target_key = Exec.cov_key pc.Prog_cov.cov.(i) in
      (* p' = p[0 .. i]; [last] tracks C_i's index within p' as earlier
         calls are removed. *)
      let p' = ref (Prog.sub p (i + 1)) in
      let last = ref i in
      (* pos_of.(k) is original call k's position inside the current p'
         (-1 once removed), so kept calls can be reserved without
         rescanning an index list per probe. *)
      let pos_of = Array.init (i + 1) Fun.id in
      for j = i - 1 downto 0 do
        (* Position of original call j inside the current p'. *)
        let pos = pos_of.(j) in
        if pos >= 0 then begin
          let candidate = Prog.remove !p' pos in
          let r = exec candidate in
          let kept_last = !last - 1 in
          let cov' =
            if kept_last >= 0 && kept_last < Array.length r.Exec.calls then
              r.Exec.calls.(kept_last).Exec.cov
            else []
          in
          if Exec.cov_matches target_key cov' then begin
            p' := candidate;
            last := kept_last;
            pos_of.(j) <- -1;
            for o = j + 1 to i do
              if pos_of.(o) >= 0 then pos_of.(o) <- pos_of.(o) - 1
            done
          end
          else
            (* C_j is load-bearing for C_i: reserve it so it does not
               seed its own subsequence. *)
            Hashtbl.replace reserved j ()
        end
      done;
      Option.iter
        (fun t ->
          Healer_executor.Progcheck.debug_check ~what:"Minimize.minimize" t !p')
        target;
      out := Prog_cov.observe ~exec !p' :: !out
    end
  done;
  List.rev !out
