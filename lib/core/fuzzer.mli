(** The fuzzing loop, configurable as any of the paper's four
    experiment subjects:

    - [Healer]: relation table (static init + Algorithm 2 dynamic
      learning), Algorithm 3 guided selection with adaptive alpha,
      HEALER's lightweight shared-state architecture (low per-exec
      overhead), fault injection support.
    - [Healer_minus]: identical architecture, uniform random call
      selection, no relation learning — the paper's ablation subject.
    - [Syzkaller]: choice-table guided selection (static common-type
      weights refreshed with corpus adjacency counts), RPC-architecture
      overhead, USB emulation support.
    - [Moonshine]: Syzkaller bootstrapped with distilled initial seeds.

    All subjects share the same executor, feedback, corpus
    minimization and crash triage, so the only differences are the
    ones the paper isolates. *)

type tool = Healer | Healer_minus | Syzkaller | Moonshine

val tool_name : tool -> string
val all_tools : tool list

type costs = {
  exec_overhead : float;  (** Virtual seconds per program execution. *)
  per_call : float;  (** Additional virtual seconds per call. *)
  crash_reboot : float;  (** VM reboot cost after a crash. *)
}

val default_costs : tool -> costs
(** HEALER's architecture (Section 5) avoids Syzkaller's RPC and
    in-guest fuzzer overheads, hence a lower per-exec cost. *)

type config = {
  tool : tool;
  version : Healer_kernel.Version.t;
  seed : int;
  vms : int;
  costs : costs option;  (** Override {!default_costs}. *)
  gen_ratio : float;  (** Probability of generation vs mutation. *)
  fault_rate : float;  (** Probability of fault-injected execution. *)
  use_static_learning : bool;  (** Ablation hook (HEALER only). *)
  use_dynamic_learning : bool;  (** Ablation hook (HEALER only). *)
  fixed_alpha : float option;  (** Ablation hook: disable adaptation. *)
  exec_cache : bool option;
      (** Force the probe prefix-execution cache on/off; [None] follows
          [HEALER_EXEC_CACHE]. Results are bit-identical either way —
          the cache only changes simulator wall-clock. *)
}

val config :
  ?seed:int ->
  ?vms:int ->
  ?costs:costs ->
  ?gen_ratio:float ->
  ?fault_rate:float ->
  ?use_static_learning:bool ->
  ?use_dynamic_learning:bool ->
  ?fixed_alpha:float ->
  ?exec_cache:bool ->
  tool:tool ->
  version:Healer_kernel.Version.t ->
  unit ->
  config

type t

val create :
  ?initial_relations:Relation_table.t ->
  ?initial_seeds:Healer_executor.Prog.t list ->
  config ->
  t
(** Builds the tool-specific machinery and, for [Moonshine], executes
    and ingests the distilled seed corpus. [initial_relations] (HEALER
    only) merges a previously saved relation table into the fresh one
    (the original tool's [-r] flag); [initial_seeds] are executed and
    ingested before fuzzing starts for any tool. *)

val step : t -> unit
(** One fuzzing iteration: build a test case, execute it, process
    feedback, minimize / learn / triage as applicable. *)

val run_until : t -> float -> unit
(** Step until the virtual clock reaches the given time (seconds). *)

(** {2 Observations} *)

val now : t -> float
val coverage : t -> int

val coverage_set : t -> Healer_util.Bitset.t
(** The live global-coverage bitmap (covered branch ids). Callers
    must treat it as read-only; shard workers copy it into their
    outgoing deltas. *)

val execs : t -> int
val corpus : t -> Corpus.t
val triage : t -> Triage.t
val relations : t -> Relation_table.t option
val relation_count : t -> int
val cache_stats : t -> Healer_executor.Exec_cache.stats option
(** Live hit/miss/eviction/resume-depth counters of the probe
    execution cache; [None] when the cache is disabled. *)

val alpha_value : t -> float
val samples : t -> (float * int) list
(** (virtual time, branch coverage) per virtual minute, ascending. *)

val relation_snapshots : t -> (float * (int * int) list) list
(** Relation-table edge lists captured at 1h/2h/3h (HEALER only). *)

val crash_log : t -> (float * string) list
(** (virtual time, bug key) for each unique crash, ascending. *)

val target : t -> Healer_syzlang.Target.t

val coverage_by_region : t -> (string * int) list
(** Covered-branch counts grouped by kernel subsystem region, sorted by
    region name. For reports and calibration. *)
