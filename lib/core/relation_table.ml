type t = {
  n : int;
  bits : Bytes.t;  (* row-major n*n bit matrix *)
  succ : int list array;  (* adjacency: successors of each row *)
  pred : int list array;
  mutable relations : int;
}

let create n =
  if n <= 0 then invalid_arg "Relation_table.create: size must be positive";
  {
    n;
    bits = Bytes.make ((n * n / 8) + 1) '\000';
    succ = Array.make n [];
    pred = Array.make n [];
    relations = 0;
  }

let size t = t.n

let check t i j =
  if i < 0 || i >= t.n || j < 0 || j >= t.n then
    invalid_arg "Relation_table: index out of range"

let get t i j =
  check t i j;
  let idx = (i * t.n) + j in
  Char.code (Bytes.get t.bits (idx / 8)) land (1 lsl (idx mod 8)) <> 0

let set t i j =
  check t i j;
  if i = j then false
  else if get t i j then false
  else begin
    let idx = (i * t.n) + j in
    let byte = idx / 8 and bit = 1 lsl (idx mod 8) in
    Bytes.set t.bits byte (Char.chr (Char.code (Bytes.get t.bits byte) lor bit));
    t.succ.(i) <- j :: t.succ.(i);
    t.pred.(j) <- i :: t.pred.(j);
    t.relations <- t.relations + 1;
    true
  end

let count t = t.relations

let influenced_by t i =
  check t i 0;
  t.succ.(i)

let influencers_of t j =
  check t j 0;
  t.pred.(j)

let edges t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    List.iter (fun j -> acc := (i, j) :: !acc) (List.sort Int.compare t.succ.(i))
  done;
  !acc

let copy t =
  {
    n = t.n;
    bits = Bytes.copy t.bits;
    succ = Array.copy t.succ;
    pred = Array.copy t.pred;
    relations = t.relations;
  }

let merge_into ~dst src =
  if dst.n <> src.n then invalid_arg "Relation_table.merge_into: size mismatch";
  let fresh = ref 0 in
  Array.iteri
    (fun i js -> List.iter (fun j -> if set dst i j then incr fresh) js)
    src.succ;
  !fresh

let merge a b =
  let t = copy a in
  ignore (merge_into ~dst:t b);
  t

let iter_new ~base f t =
  if base.n <> t.n then invalid_arg "Relation_table.iter_new: size mismatch";
  Array.iteri
    (fun i js -> List.iter (fun j -> if not (get base i j) then f i j) js)
    t.succ

let out_degree t i =
  check t i 0;
  List.length t.succ.(i)

let serialize t =
  let buf = Buffer.create (16 * t.relations) in
  Buffer.add_string buf (Printf.sprintf "healer-relations %d\n" t.n);
  List.iter
    (fun (i, j) -> Buffer.add_string buf (Printf.sprintf "%d %d\n" i j))
    (edges t);
  Buffer.contents buf

exception Malformed of string

(* Relation files and checkpoints can arrive truncated or corrupt (a
   crash mid-write, a bad copy): every malformed shape must surface as
   the typed {!Malformed}, never as a confusing [Scanf]/allocation
   failure. The size cap bounds the [create] allocation a hostile
   header could otherwise demand. *)
let max_size = 65_536

let deserialize s =
  match String.split_on_char '\n' s with
  | header :: rest -> (
    match Scanf.sscanf_opt header "healer-relations %d" (fun n -> n) with
    | None -> raise (Malformed "bad header (expected 'healer-relations <n>')")
    | Some n when n <= 0 || n > max_size ->
      raise (Malformed (Printf.sprintf "implausible table size %d" n))
    | Some n ->
      let t = create n in
      List.iter
        (fun line ->
          if String.trim line <> "" then
            match Scanf.sscanf_opt line " %d %d %s" (fun i j rest -> (i, j, rest)) with
            | Some (i, j, "") when i >= 0 && i < n && j >= 0 && j < n ->
              ignore (set t i j)
            | Some (i, j, "") ->
              raise
                (Malformed
                   (Printf.sprintf "pair (%d, %d) out of range for size %d" i j n))
            | Some _ | None ->
              raise (Malformed (Printf.sprintf "bad pair line %S" line)))
        rest;
      t)
  | [] -> raise (Malformed "empty input")

let pp_stats ppf t =
  let nonzero = Array.fold_left (fun acc l -> if l = [] then acc else acc + 1) 0 t.succ in
  Fmt.pf ppf "%d relations over %d calls (%d with successors)" t.relations t.n
    nonzero
