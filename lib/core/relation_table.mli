(** HEALER's relation table (paper Section 4.1).

    A two-dimensional boolean table over the n syscalls of the target:
    [get t i j] is true when call [i] is known to influence call [j]'s
    execution path. Entries start unknown (false) and are set by static
    and dynamic relation learning; they are never cleared during a
    campaign.

    The table maintains per-row adjacency lists so that Algorithm 3 can
    enumerate the candidates influenced by a call in O(out-degree). *)

type t

val create : int -> t
(** [create n] for a target with [n] syscalls. *)

val size : t -> int
val get : t -> int -> int -> bool

val set : t -> int -> int -> bool
(** [set t i j] records that [i] influences [j]; returns true when the
    entry was previously unknown (a newly learned relation).
    Self-relations [i = j] are ignored (returns false). *)

val count : t -> int
(** Number of learned relations (set entries). *)

val influenced_by : t -> int -> int list
(** [influenced_by t i] = all [j] with [get t i j], unordered. *)

val influencers_of : t -> int -> int list
(** [influencers_of t j] = all [i] with [get t i j], unordered. *)

val edges : t -> (int * int) list
(** All learned (i, j) pairs, lexicographic. *)

val copy : t -> t

val merge_into : dst:t -> t -> int
(** Union [src] into [dst]; returns how many entries were new. *)

val merge : t -> t -> t
(** Pure union into a fresh table (neither input is mutated). The
    relation table is a grow-only set of edges, so this is a CRDT
    join: commutative, associative, idempotent, with the empty table
    as identity. Raises [Invalid_argument] on size mismatch. *)

val iter_new : base:t -> (int -> int -> unit) -> t -> unit
(** [iter_new ~base f t] calls [f i j] for every edge of [t] absent
    from [base] — the edge difference [t \ base], the unit shipped by
    incremental shard-state diffs. Unordered. Raises
    [Invalid_argument] on size mismatch. *)

val out_degree : t -> int -> int

val pp_stats : Format.formatter -> t -> unit

(** {2 Persistence}

    HEALER can reuse relations learned by an earlier campaign (the
    original tool's [-r] flag). The format is a plain text header line
    [healer-relations <n>] followed by one [i j] pair per line. *)

val serialize : t -> string

exception Malformed of string
(** Raised by {!deserialize} on any malformed input: bad header,
    unparsable or out-of-range pair, or an implausible table size
    (checkpoint/resume can feed it files cut off mid-write). *)

val deserialize : string -> t
(** Raises {!Malformed} on malformed input. *)
