module Rng = Healer_util.Rng
module Vclock = Healer_util.Vclock
module Target = Healer_syzlang.Target
module Prog = Healer_executor.Prog
module Exec = Healer_executor.Exec
module Pool = Healer_executor.Pool
module Kernel = Healer_kernel.Kernel

type tool = Healer | Healer_minus | Syzkaller | Moonshine

let tool_name = function
  | Healer -> "healer"
  | Healer_minus -> "healer-"
  | Syzkaller -> "syzkaller"
  | Moonshine -> "moonshine"

let all_tools = [ Healer; Healer_minus; Syzkaller; Moonshine ]

type costs = {
  exec_overhead : float;
  per_call : float;
  crash_reboot : float;
}

(* Calibrated so that HEALER's shared-state architecture (Section 5)
   executes programs ~1.5x faster than Syzkaller's RPC architecture
   (in-guest fuzzer, corpus synchronization over RPC, manager round
   trips). Together with relation-guided selection this reproduces the
   paper's coverage improvements and time-to-coverage speedups; HEALER-
   shares the cheap architecture but not the guidance, which is why it
   still loses to Syzkaller, as in Table 2. *)
let default_costs = function
  | Healer | Healer_minus ->
    { exec_overhead = 1.00; per_call = 0.05; crash_reboot = 60.0 }
  | Syzkaller | Moonshine ->
    { exec_overhead = 1.50; per_call = 0.05; crash_reboot = 60.0 }

type config = {
  tool : tool;
  version : Healer_kernel.Version.t;
  seed : int;
  vms : int;
  costs : costs option;
  gen_ratio : float;
  fault_rate : float;
  use_static_learning : bool;
  use_dynamic_learning : bool;
  fixed_alpha : float option;
  exec_cache : bool option;
}

let config ?(seed = 1) ?(vms = 2) ?costs ?(gen_ratio = 0.15) ?(fault_rate = 0.01)
    ?(use_static_learning = true) ?(use_dynamic_learning = true) ?fixed_alpha
    ?exec_cache ~tool ~version () =
  {
    tool;
    version;
    seed;
    vms;
    costs;
    gen_ratio;
    fault_rate;
    use_static_learning;
    use_dynamic_learning;
    fixed_alpha;
    exec_cache;
  }

(* Executor features per tool (Section 6.3: three bugs need USB
   emulation, which HEALER does not support; HEALER's executor supports
   fault injection). *)
let features_of = function
  | Healer | Healer_minus -> [ "fault_injection" ]
  | Syzkaller | Moonshine -> [ "usb" ]

type t = {
  cfg : config;
  tgt : Target.t;
  rng : Rng.t;
  clock : Vclock.t;
  pool : Pool.t;
  costs : costs;
  feedback : Feedback.t;
  corp : Corpus.t;
  mutable tri : Triage.t;
  rel : Relation_table.t option;
  choice : Choice_table.t option;
  alpha : Alpha.t;
  mutable n_execs : int;
  mutable used_table : bool;  (* any table-guided selection this test case *)
  mutable sample_acc : (float * int) list;
  mutable next_sample : float;
  mutable snapshots : (float * (int * int) list) list;
  mutable snapshot_due : float list;
  mutable crashes_found : (float * string) list;
  (* Adaptive generation: "when the gain from mutation decreases,
     HEALER will try to generate new system call sequences" (Section
     4.2). A decaying average of mutation success scales the
     generation probability between gen_ratio and 4 * gen_ratio. *)
  mutable mutation_gain : float;
}

let sample_period = 60.0

let rec take_samples t =
  if Vclock.now t.clock >= t.next_sample then begin
    t.sample_acc <- (t.next_sample, Feedback.coverage t.feedback) :: t.sample_acc;
    t.next_sample <- t.next_sample +. sample_period;
    take_samples t
  end

(* The virtual clock always charges full execution cost from the
   program shape alone — the prefix cache saves simulator wall-clock,
   never simulated kernel time, so campaign curves are identical with
   the cache on or off. *)
let charge t prog r =
  let dt =
    t.costs.exec_overhead
    +. (t.costs.per_call *. float_of_int (Prog.length prog))
    +. (match r.Exec.crash with Some _ -> t.costs.crash_reboot | None -> 0.0)
  in
  Vclock.advance t.clock dt;
  t.n_execs <- t.n_execs + 1;
  take_samples t;
  r

let exec_prog t ?fault_call prog = charge t prog (Pool.run t.pool ?fault_call prog)
let exec_plain t prog = exec_prog t prog

(* Probe executions (minimization, dynamic learning, triage
   reproducers) go through the pool's prefix cache. *)
let exec_probe t prog = charge t prog (Pool.run_probe t.pool prog)

let create ?initial_relations ?(initial_seeds = []) cfg =
  let tgt = Kernel.target () in
  let rng = Rng.create cfg.seed in
  let clock = Vclock.create () in
  let pool =
    Pool.create ~features:(features_of cfg.tool) ?exec_cache:cfg.exec_cache
      ~version:cfg.version ~size:cfg.vms ()
  in
  let costs = match cfg.costs with Some c -> c | None -> default_costs cfg.tool in
  let rel =
    match cfg.tool with
    | Healer ->
      Some
        (if cfg.use_static_learning then Static_learning.initial_table tgt
         else Relation_table.create (Target.n_syscalls tgt))
    | Healer_minus | Syzkaller | Moonshine -> None
  in
  let choice =
    match cfg.tool with
    | Syzkaller | Moonshine -> Some (Choice_table.create tgt)
    | Healer | Healer_minus -> None
  in
  let t =
    {
      cfg;
      tgt;
      rng;
      clock;
      pool;
      costs;
      feedback = Feedback.create ();
      corp = Corpus.create tgt;
      tri = Triage.create ~exec:(fun _ -> assert false);
      rel;
      choice;
      alpha =
        Alpha.create
          ?init:cfg.fixed_alpha
          ~window:(if cfg.fixed_alpha = None then 1024 else max_int)
          ();
      n_execs = 0;
      used_table = false;
      sample_acc = [];
      next_sample = 0.0;
      snapshots = [];
      snapshot_due = [ 3600.0; 7200.0; 10800.0 ];
      crashes_found = [];
      mutation_gain = 0.5;
    }
  in
  t.tri <- Triage.create ~exec:(exec_probe t);
  (match (t.rel, initial_relations) with
  | Some table, Some saved -> ignore (Relation_table.merge_into ~dst:table saved)
  | _ -> ());
  (* Seed ingestion: Moonshine's distilled corpus, plus any caller
     provided programs (e.g. a corpus archive from a prior campaign). *)
  let seeds =
    (if cfg.tool = Moonshine then Seeds.distilled tgt else []) @ initial_seeds
  in
  List.iter
    (fun seed ->
      let r = exec_plain t seed in
      let new_cov = Feedback.process t.feedback r in
      if r.Exec.crash = None && Feedback.is_interesting new_cov then begin
        let total_new = Array.fold_left (fun a l -> a + List.length l) 0 new_cov in
        if Corpus.add t.corp seed ~new_blocks:total_new then
          Option.iter (fun ct -> Choice_table.note_corpus_program ct seed) t.choice
      end)
    seeds;
  t

let rec last_opt = function
  | [] -> None
  | [ x ] -> Some x
  | _ :: tl -> last_opt tl

let select_fn t ~sub =
  match t.cfg.tool with
  | Healer -> (
    match t.rel with
    | Some table ->
      let o = Select.select t.rng table ~alpha:(Alpha.value t.alpha) ~sub in
      if o.Select.used_table then t.used_table <- true;
      o.Select.id
    | None -> Rng.int t.rng (Target.n_syscalls t.tgt))
  | Healer_minus -> Rng.int t.rng (Target.n_syscalls t.tgt)
  | Syzkaller | Moonshine -> (
    match t.choice with
    | Some ct -> Choice_table.select t.rng ct ~bias:(last_opt sub)
    | None -> Rng.int t.rng (Target.n_syscalls t.tgt))

let gen_probability t =
  (* Starved mutation (gain -> 0) quadruples the generation share;
     productive mutation keeps it near the configured base. *)
  min 0.9 (t.cfg.gen_ratio *. (1.0 +. (3.0 *. (1.0 -. t.mutation_gain))))

let build_test_case t =
  let select = select_fn t in
  if Corpus.is_empty t.corp || Rng.chance t.rng (gen_probability t) then
    (`Generated, Gen.generate t.rng t.tgt ~select ())
  else
    match Corpus.pick t.rng t.corp with
    | Some seed -> (`Mutated, Mutate.mutate t.rng t.tgt ~select seed)
    | None -> (`Generated, Gen.generate t.rng t.tgt ~select ())

let take_snapshots t =
  match (t.rel, t.snapshot_due) with
  | Some table, due :: rest when Vclock.now t.clock >= due ->
    t.snapshots <- (due, Relation_table.edges table) :: t.snapshots;
    t.snapshot_due <- rest
  | _ -> ()

let decay = 0.995

let note_mutation_outcome t origin ~interesting =
  match origin with
  | `Mutated ->
    let hit = if interesting then 1.0 else 0.0 in
    t.mutation_gain <- (decay *. t.mutation_gain) +. ((1.0 -. decay) *. hit)
  | `Generated -> ()

let step t =
  t.used_table <- false;
  let origin, prog = build_test_case t in
  if Prog.length prog > 0 then begin
    let fault_call =
      if
        t.cfg.fault_rate > 0.0
        && List.mem "fault_injection" (features_of t.cfg.tool)
        && Rng.chance t.rng t.cfg.fault_rate
      then Some (Rng.int t.rng (Prog.length prog))
      else None
    in
    let r = exec_prog t ?fault_call prog in
    (match r.Exec.crash with
    | Some report ->
      let vtime = Vclock.now t.clock in
      if Triage.on_crash t.tri ~vtime prog report then
        t.crashes_found <- (vtime, report.Healer_kernel.Crash.bug_key) :: t.crashes_found;
      ignore (Feedback.process t.feedback r)
    | None ->
      let new_cov = Feedback.process t.feedback r in
      let interesting = Feedback.is_interesting new_cov in
      if interesting then begin
        let pc = Prog_cov.of_run prog r ~new_cov in
        let minimized = Minimize.minimize ~target:t.tgt ~exec:(exec_probe t) pc in
        (match (t.cfg.tool, t.rel) with
        | Healer, Some table when t.cfg.use_dynamic_learning ->
          ignore (Dynamic_learning.learn ~exec:(exec_probe t) ~table minimized)
        | _ -> ());
        let total_new = Array.fold_left (fun a l -> a + List.length l) 0 new_cov in
        List.iter
          (fun (m : Prog_cov.t) ->
            (* A subsequence whose re-observation crashed (its final
               call never produced coverage) belongs to triage, not the
               corpus: mutating it would pay the reboot cost forever. *)
            let n = Prog_cov.length m in
            let completed = n > 0 && Prog_cov.call_cov m (n - 1) <> [] in
            if completed then
              if Corpus.add t.corp m.Prog_cov.prog ~new_blocks:total_new then
                Option.iter
                  (fun ct -> Choice_table.note_corpus_program ct m.Prog_cov.prog)
                  t.choice)
          minimized
      end;
      note_mutation_outcome t origin ~interesting;
      if t.cfg.tool = Healer then
        Alpha.record t.alpha ~used_table:t.used_table ~new_cov:interesting);
    take_snapshots t
  end

let run_until t until =
  while Vclock.now t.clock < until do
    step t
  done

let now t = Vclock.now t.clock
let coverage t = Feedback.coverage t.feedback
let coverage_set t = Feedback.seen t.feedback
let execs t = t.n_execs
let corpus t = t.corp
let triage t = t.tri
let relations t = t.rel

let relation_count t =
  match t.rel with Some r -> Relation_table.count r | None -> 0

let cache_stats t = Pool.cache_stats t.pool
let alpha_value t = Alpha.value t.alpha
let samples t = List.rev t.sample_acc
let relation_snapshots t = List.rev t.snapshots
let crash_log t = List.rev t.crashes_found
let target t = t.tgt

let coverage_by_region t =
  let counts = Hashtbl.create 32 in
  Healer_util.Bitset.iter
    (fun id ->
      let region = Healer_kernel.Coverage.region_name id in
      let cur = match Hashtbl.find_opt counts region with Some v -> v | None -> 0 in
      Hashtbl.replace counts region (cur + 1))
    (Feedback.seen t.feedback);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
