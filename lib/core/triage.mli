(** Crash triage: symbolization, deduplication and reproducer
    extraction (paper Section 4: "HEALER's crash reproduction component
    will try to extract the smallest test case that can trigger the
    crash").

    Raw VM console logs are symbolized back to a stable bug signature
    via {!Healer_kernel.Crash.symbolize}; the first time a signature is
    seen, the triggering program is minimized down to the smallest
    sub-program that still produces the same signature. *)

type record = {
  bug_key : string;
  risk : Healer_kernel.Risk.t;
  signature : string;
  first_found : float;  (** Virtual time of first detection. *)
  reproducer : Healer_executor.Prog.t;
  repro_len : int;
}

type t

val create : exec:(Healer_executor.Prog.t -> Healer_executor.Exec.run_result) -> t

val on_crash :
  t ->
  vtime:float ->
  Healer_executor.Prog.t ->
  Healer_kernel.Crash.report ->
  bool
(** Process a crash; returns true when the signature is new (a unique
    vulnerability). Reproducer minimization re-executes through the
    [exec] callback, charging its cost to the caller's clock. *)

val unique_count : t -> int
val records : t -> record list
(** Sorted by first_found. *)

val merge_records_by :
  key:(record -> string) -> record list list -> record list
(** Union record lists keeping one record per [key]: the earliest
    [first_found] wins, ties broken by smallest reproducer, then its
    encoding, then [bug_key] — a total order, so the result is
    independent of merge order (commutative, associative, idempotent).
    Sorted by [(first_found, signature)]. *)

val merge_records : record list list -> record list
(** {!merge_records_by} keyed on the triage [signature] — the dedup
    unit sharded campaign coordinators union across workers. *)

val preferred : record -> record -> bool
(** [preferred a b] is true when a merge keeps [a] over [b] for the
    same dedup key: the total order behind {!merge_records} (earliest
    [first_found], then smallest reproducer, then its encoding, then
    [bug_key]). [preferred a a] is true, so a record never beats an
    equal one — incremental diffs use this to ship only records that
    strictly improve on the receiver's. *)

val found : t -> string -> record option
(** Lookup by bug key. *)

val minimize_reproducer :
  exec:(Healer_executor.Prog.t -> Healer_executor.Exec.run_result) ->
  signature:string ->
  Healer_executor.Prog.t ->
  Healer_executor.Prog.t
(** Exposed for tests: greedy call removal preserving the signature. *)

val signature_of_report : Healer_kernel.Crash.report -> string
