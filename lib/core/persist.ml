module Prog = Healer_executor.Prog
module Serializer = Healer_executor.Serializer

exception Corrupt of string

let magic = "HLRDB1\n"

let corpus_to_string progs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  List.iter
    (fun p ->
      let encoded = Serializer.encode p in
      Serializer.put_uvarint buf (Int64.of_int (String.length encoded));
      Buffer.add_string buf encoded)
    progs;
  Buffer.contents buf

let corpus_of_string target s =
  let n = String.length s in
  if n < String.length magic || String.sub s 0 (String.length magic) <> magic then
    raise (Corrupt "bad corpus magic");
  let pos = ref (String.length magic) in
  let progs = ref [] in
  (try
     while !pos < n do
       let len = Int64.to_int (Serializer.get_uvarint s pos) in
       (* [len > n - !pos] rather than [!pos + len > n]: a hostile
          varint near [max_int] would overflow the addition and slip
          past the bound. *)
       if len < 0 || len > n - !pos then raise (Corrupt "truncated entry");
       let entry = String.sub s !pos len in
       pos := !pos + len;
       progs := Serializer.decode target entry :: !progs
     done
   with Serializer.Malformed msg -> raise (Corrupt msg));
  List.rev !progs

(* All persisted state goes through write-to-temp-then-rename: a crash
   mid-write leaves the previous file intact (the temp is garbage the
   next writer overwrites), never a truncated archive. [Sys.rename] is
   atomic within a filesystem and the temp lives next to the target. *)
let write_atomic ~path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc contents;
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  Sys.rename tmp path

let write_file path contents = write_atomic ~path contents

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let save_corpus ~path progs = write_file path (corpus_to_string progs)
let load_corpus target ~path = corpus_of_string target (read_file path)
let save_relations ~path table = write_file path (Relation_table.serialize table)

let load_relations ~path =
  try Relation_table.deserialize (read_file path)
  with Relation_table.Malformed msg -> raise (Corrupt msg)
