(** Campaign engine: runs the paper's experiments on the virtual clock
    and computes the statistics reported in Section 6 — coverage
    improvement (min/max/avg across rounds), time-to-coverage speedups,
    learned-relation counts, corpus length distributions, and
    vulnerability sets. *)

type run = {
  tool : Fuzzer.tool;
  version : Healer_kernel.Version.t;
  seed : int;
  hours : float;
  final_cov : int;
  samples : (float * int) list;  (** Per virtual minute. *)
  corpus_size : int;
  corpus_lengths : int list;
  relations : int;
  crashes : Triage.record list;
  relation_snapshots : (float * (int * int) list) list;
  execs : int;
  cache_hits : int;
      (** Probe-cache counters (all 0 when the cache is disabled).
          Wall-clock bookkeeping only: every other field is
          bit-identical with the cache on or off. *)
  cache_misses : int;
  cache_evictions : int;
  cache_resumed_calls : int;
}

val run_one :
  ?hours:float ->
  ?seed:int ->
  ?exec_cache:bool ->
  tool:Fuzzer.tool ->
  version:Healer_kernel.Version.t ->
  unit ->
  run
(** One campaign (default 24 virtual hours). [exec_cache] forwards to
    {!Fuzzer.config}. *)

val default_jobs : unit -> int
(** Worker-domain count for {!run_matrix}: the [HEALER_BENCH_JOBS]
    environment variable when set (must be a positive integer), else
    [Domain.recommended_domain_count ()]. *)

val run_matrix :
  ?jobs:int ->
  (Fuzzer.tool * Healer_kernel.Version.t * int * float) list ->
  run list
(** [run_matrix specs] runs one campaign per [(tool, version, seed,
    hours)] spec. Campaigns are independent (the paper's evaluation
    matrix, Section 6), so they are fanned out across [jobs] worker
    domains (default {!default_jobs}); results come back in input
    order and are identical to a sequential run — each campaign is a
    deterministic function of its spec. Calls
    {!Healer_kernel.Kernel.force_init} before spawning. *)

val improvement_pct : base:run -> run -> float
(** Final-coverage improvement of the subject over [base], percent. *)

val time_to_coverage : run -> int -> float option
(** Virtual time at which the run first reached the coverage level,
    from its samples. [None] if never. *)

val speedup : base:run -> run -> float option
(** How much faster the subject reached [base]'s final coverage:
    [base.hours * 3600 / t]. [None] when the subject never got there. *)

type comparison = {
  version : Healer_kernel.Version.t;
  rounds : int;
  min_impr : float;
  max_impr : float;
  avg_impr : float;
  avg_speedup : float option;
}

val compare_tools :
  ?jobs:int ->
  ?hours:float ->
  rounds:int ->
  subject:Fuzzer.tool ->
  base:Fuzzer.tool ->
  Healer_kernel.Version.t ->
  comparison
(** Paired rounds (same seed per round for both tools), as in Table 1 /
    Table 2. The [2 * rounds] campaigns run through {!run_matrix}. *)

val average_series : run list -> (float * float) list
(** Point-wise average of the runs' coverage samples (Figure 4). *)

val merge_crashes : run list -> Triage.record list
(** Union by bug key via {!Triage.merge_records_by}: earliest
    first_found wins, with deterministic tie-breaks, so the result is
    independent of the order runs are listed in. *)
