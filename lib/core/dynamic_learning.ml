module Prog = Healer_executor.Prog
module Exec = Healer_executor.Exec
module Syscall = Healer_syzlang.Syscall

let call_id p k = (Prog.call p k).Prog.syscall.Syscall.id

(* Algorithm 2 body for one minimized subsequence. *)
let learn_one ~exec ~table (pc : Prog_cov.t) =
  let p = pc.Prog_cov.prog in
  let fresh = ref [] in
  for k = 1 to Prog.length p - 1 do
    let prev = k - 1 in
    let i = call_id p prev and j = call_id p k in
    if not (Relation_table.get table i j) then begin
      let candidate = Prog.remove p prev in
      let r = exec candidate in
      (* After removing the call at [prev], C_k sits at index k-1. *)
      let cov' =
        if k - 1 < Array.length r.Exec.calls then r.Exec.calls.(k - 1).Exec.cov
        else []
      in
      if not (Exec.cov_matches (Exec.cov_key pc.Prog_cov.cov.(k)) cov') then
        if Relation_table.set table i j then fresh := (i, j) :: !fresh
    end
  done;
  List.rev !fresh

let learn ~exec ~table minimized =
  List.concat_map (learn_one ~exec ~table) minimized

let learn_from_run ?target ~exec ~table pc =
  let minimized = Minimize.minimize ?target ~exec pc in
  let relations = learn ~exec ~table minimized in
  (relations, minimized)
