module Rng = Healer_util.Rng
module Target = Healer_syzlang.Target
module Prog = Healer_executor.Prog

let mutate_args rng target (p : Prog.t) =
  if Prog.length p = 0 then p
  else begin
    let k = Rng.int rng (Prog.length p) in
    let c = Prog.call p k in
    let ctx =
      {
        Value_gen.target;
        producers = (fun kind -> Builder.producers_for target p ~upto:k kind);
      }
    in
    let args = Value_gen.mutate_args rng ctx c.Prog.syscall c.Prog.args in
    let calls = Array.copy p.Prog.calls in
    calls.(k) <- { c with Prog.args };
    { Prog.calls }
  end

let insert_one_b rng target ~select b =
  if Prog.Builder.length b < Builder.max_prog_len then begin
    let at = Rng.int rng (Prog.Builder.length b + 1) in
    let sub = Gen.syscall_ids_b b ~upto:at in
    let id = select ~sub in
    Builder.insert_call_b rng target b ~at (Target.syscall target id)
  end

let insert_guided rng target ~select p =
  if Prog.length p >= Builder.max_prog_len then mutate_args rng target p
  else begin
    (* One builder serves both insertions (and their producer chains):
       a single copy in, a single program out. *)
    let n = if Rng.chance rng 0.4 then 2 else 1 in
    let b = Prog.Builder.of_prog p in
    for _ = 1 to n do
      insert_one_b rng target ~select b
    done;
    Prog.Builder.to_prog b
  end

let remove_random rng (p : Prog.t) =
  if Prog.length p <= 1 then p else Prog.remove p (Rng.int rng (Prog.length p))

let mutate rng target ~select p =
  if Prog.length p = 0 then p
  else begin
    let p' =
      match Rng.weighted rng [ (`Insert, 60); (`Args, 30); (`Remove, 10) ] with
      | `Insert -> insert_guided rng target ~select p
      | `Args -> mutate_args rng target p
      | `Remove -> remove_random rng p
    in
    Healer_executor.Progcheck.debug_check ~what:"Mutate.mutate" target p';
    p'
  end
