module Rng = Healer_util.Rng
module Target = Healer_syzlang.Target
module Prog = Healer_executor.Prog

let mutate_args rng target (p : Prog.t) =
  if Prog.length p = 0 then p
  else begin
    let k = Rng.int rng (Prog.length p) in
    let c = Prog.call p k in
    let ctx =
      {
        Value_gen.target;
        producers = (fun kind -> Builder.producers_for target p ~upto:k kind);
      }
    in
    let args = Value_gen.mutate_args rng ctx c.Prog.syscall c.Prog.args in
    let calls = Array.copy p.Prog.calls in
    calls.(k) <- { c with Prog.args };
    { Prog.calls }
  end

let insert_one rng target ~select p =
  if Prog.length p >= Builder.max_prog_len then p
  else begin
    let at = Rng.int rng (Prog.length p + 1) in
    let sub = Gen.syscall_ids p ~upto:at in
    let id = select ~sub in
    Builder.insert_call rng target p ~at (Target.syscall target id)
  end

let insert_guided rng target ~select p =
  if Prog.length p >= Builder.max_prog_len then mutate_args rng target p
  else begin
    let n = if Rng.chance rng 0.4 then 2 else 1 in
    let rec go k p = if k = 0 then p else go (k - 1) (insert_one rng target ~select p) in
    go n p
  end

let remove_random rng (p : Prog.t) =
  if Prog.length p <= 1 then p else Prog.remove p (Rng.int rng (Prog.length p))

let mutate rng target ~select p =
  if Prog.length p = 0 then p
  else begin
    let p' =
      match Rng.weighted rng [ (`Insert, 60); (`Args, 30); (`Remove, 10) ] with
      | `Insert -> insert_guided rng target ~select p
      | `Args -> mutate_args rng target p
      | `Remove -> remove_random rng p
    in
    Healer_executor.Progcheck.debug_check ~what:"Mutate.mutate" target p';
    p'
  end
