(** The corpus of interesting (minimized) test cases.

    Entries are deduplicated by their serialized form; seed picking is
    weighted toward entries that contributed more new coverage. The
    length histogram feeds the paper's Figure 6. *)

type t

val create : Healer_syzlang.Target.t -> t

val add : t -> Healer_executor.Prog.t -> new_blocks:int -> bool
(** False if the program was already present. Empty programs are
    rejected. *)

val size : t -> int

val is_empty : t -> bool

val merge_into : dst:t -> t -> int
(** Union [src]'s entries into [dst], deduplicating by serialized
    form and preserving each entry's seed-selection weight; returns
    how many programs were new. As a set of programs the corpus is
    grow-only, so this is a CRDT join (commutative, associative,
    idempotent, empty-corpus identity) — shard corpora can merge in
    any order. *)

val pick : Healer_util.Rng.t -> t -> Healer_executor.Prog.t option
val lengths : t -> int list

val length_histogram : t -> (string * int) list
(** Buckets "1".."4" and "5+", as in Figure 6. *)

val frac_len_at_least : t -> int -> float
(** Fraction of corpus programs with at least that many calls. *)

val iter : (Healer_executor.Prog.t -> unit) -> t -> unit
