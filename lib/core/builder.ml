module Rng = Healer_util.Rng
module Target = Healer_syzlang.Target
module Syscall = Healer_syzlang.Syscall
module Prog = Healer_executor.Prog

let max_prog_len = 32

(* All assembly runs on a {!Prog.Builder.t}: producer-chain insertion
   adds one call at a time, which on the immutable program costs a
   full copy per call. The [Prog.t] entry points below wrap a builder
   around the same logic (identical Rng draw sequence, so guided
   generation is reproducible across both forms). *)

let producers_for_b target b ~upto kind =
  let acc = ref [] in
  for k = min upto (Prog.Builder.length b) - 1 downto 0 do
    let c = (Prog.Builder.call b k).Prog.syscall in
    let produced = Target.produces target c in
    if
      List.exists
        (fun r -> Target.compatible target ~consumer:kind ~producer:r)
        produced
    then acc := k :: !acc
  done;
  !acc

let producers_for target p ~upto kind =
  let acc = ref [] in
  for k = min upto (Prog.length p) - 1 downto 0 do
    let c = (Prog.call p k).Prog.syscall in
    let produced = Target.produces target c in
    if
      List.exists
        (fun r -> Target.compatible target ~consumer:kind ~producer:r)
        produced
    then acc := k :: !acc
  done;
  !acc

let value_ctx_b target b ~at =
  {
    Value_gen.target;
    producers = (fun kind -> producers_for_b target b ~upto:at kind);
  }

let make_call_b rng target b ~at (call : Syscall.t) =
  let args = Value_gen.gen_args rng (value_ctx_b target b ~at) call in
  { Prog.syscall = call; args }

let make_call rng target p ~at (call : Syscall.t) =
  let ctx =
    {
      Value_gen.target;
      producers = (fun kind -> producers_for target p ~upto:at kind);
    }
  in
  { Prog.syscall = call; args = Value_gen.gen_args rng ctx call }

(* Insert producers for the consumed kinds of [call] that have no
   compatible producer before [at]; returns the position where [call]
   itself should now go. *)
let rec ensure_producers_b rng target b ~at ~depth (call : Syscall.t) =
  if depth <= 0 || Prog.Builder.length b >= max_prog_len then at
  else
    List.fold_left
      (fun at kind ->
        if Prog.Builder.length b >= max_prog_len then at
        else if producers_for_b target b ~upto:at kind <> [] then at
        else
          match Target.producers_of target kind with
          | [] -> at
          | cands ->
            let producer = Rng.pick rng cands in
            if producer.Syscall.id = call.Syscall.id then at
            else begin
              let at' =
                ensure_producers_b rng target b ~at ~depth:(depth - 1) producer
              in
              if Prog.Builder.length b >= max_prog_len then at'
              else begin
                let pc = make_call_b rng target b ~at:at' producer in
                Prog.Builder.insert b at' pc;
                at' + 1
              end
            end)
      at (Target.consumes target call)

let insert_call_b rng target b ~at (call : Syscall.t) =
  let at = min at (Prog.Builder.length b) in
  let at = ensure_producers_b rng target b ~at ~depth:3 call in
  if Prog.Builder.length b < max_prog_len then
    let c = make_call_b rng target b ~at call in
    Prog.Builder.insert b at c

let append_call_b rng target b call =
  insert_call_b rng target b ~at:(Prog.Builder.length b) call

let insert_call rng target p ~at (call : Syscall.t) =
  let b = Prog.Builder.of_prog p in
  insert_call_b rng target b ~at call;
  Prog.Builder.to_prog b

let append_call rng target p call = insert_call rng target p ~at:(Prog.length p) call
