type resource_info = { parent : string option; special : int64 array }

type t = {
  tname : string;
  calls : Syscall.t array;
  by_name : (string, Syscall.t) Hashtbl.t;
  flagsets : (string, int64 array) Hashtbl.t;
  structs : (string, Field.t list) Hashtbl.t;
  unions : (string, Field.t list) Hashtbl.t;
  resources : (string, resource_info) Hashtbl.t;
  (* Struct-expanded produce/consume sets, per syscall id. *)
  produced : string list array;
  consumed : string list array;
  producers : (string, Syscall.t list) Hashtbl.t;
  consumers : (string, Syscall.t list) Hashtbl.t;
  (* Source line of each declaration, keyed by "kind:name" (kinds:
     call, struct, union, flags, resource). Empty when the target was
     compiled from bare declarations without positions. *)
  positions : (string, int) Hashtbl.t;
}

type decl_kind = [ `Call | `Struct | `Union | `Flags | `Resource ]

let decl_key (kind : decl_kind) name =
  let k =
    match kind with
    | `Call -> "call"
    | `Struct -> "struct"
    | `Union -> "union"
    | `Flags -> "flags"
    | `Resource -> "resource"
  in
  k ^ ":" ^ name

exception Compile_error of string

let error fmt = Fmt.kstr (fun s -> raise (Compile_error s)) fmt

let builtin_int_parents = [ "int8"; "int16"; "int32"; "int64"; "intptr" ]

let base_of name =
  match String.index_opt name '$' with
  | None -> name
  | Some i -> String.sub name 0 i

(* Resolve bare-name references left by the parser: a [Res] whose kind
   names a declared struct or union becomes a [Struct_ref]/[Union_ref]. *)
let rec resolve_ty ~where resources structs unions (ty : Ty.t) : Ty.t =
  let resolve = resolve_ty ~where resources structs unions in
  match ty with
  | Ty.Res { kind; dir } ->
    if Hashtbl.mem resources kind then ty
    else if Hashtbl.mem structs kind then
      if dir <> Ty.In then error "%s: struct %s cannot carry a direction" where kind
      else Ty.Struct_ref kind
    else if Hashtbl.mem unions kind then
      if dir <> Ty.In then error "%s: union %s cannot carry a direction" where kind
      else Ty.Union_ref kind
    else error "%s: unknown type or resource %s" where kind
  | Ty.Ptr { dir; elem } -> Ty.Ptr { dir; elem = resolve elem }
  | Ty.Array { elem; min_len; max_len } ->
    Ty.Array { elem = resolve elem; min_len; max_len }
  | Ty.Int _ | Ty.Const _ | Ty.Flags _ | Ty.Len _ | Ty.Proc _ | Ty.Buffer _
  | Ty.Str _ | Ty.Filename _ | Ty.Struct_ref _ | Ty.Union_ref _ | Ty.Vma ->
    ty

let rec validate_ty ~where t (ty : Ty.t) =
  match ty with
  | Ty.Flags name ->
    if not (Hashtbl.mem t.flagsets name) then
      error "%s: unknown flag set %s" where name
  | Ty.Int { bits; _ } ->
    if not (Ty.int_bits_valid bits) then error "%s: invalid int width %d" where bits
  | Ty.Ptr { elem; _ } -> validate_ty ~where t elem
  | Ty.Array { elem; _ } -> validate_ty ~where t elem
  | Ty.Struct_ref name ->
    if not (Hashtbl.mem t.structs name) then error "%s: unknown struct %s" where name
  | Ty.Union_ref name ->
    if not (Hashtbl.mem t.unions name) then error "%s: unknown union %s" where name
  | Ty.Res { kind; _ } ->
    if not (Hashtbl.mem t.resources kind) then
      error "%s: unknown resource %s" where kind
  | Ty.Const _ | Ty.Len _ | Ty.Proc _ | Ty.Buffer _ | Ty.Str _ | Ty.Filename _
  | Ty.Vma ->
    ()

let validate_len_refs ~where (args : Field.t list) =
  let names = List.map (fun (f : Field.t) -> f.fname) args in
  let check (f : Field.t) =
    match f.fty with
    | Ty.Len target ->
      if not (List.mem target names) then
        error "%s: len[%s] does not name a sibling argument" where target
    | _ -> ()
  in
  List.iter check args

let check_resource_cycles resources =
  let rec walk seen kind =
    if List.mem kind seen then
      error "resource inheritance cycle through %s" kind;
    match Hashtbl.find_opt resources kind with
    | Some { parent = Some p; _ } -> walk (kind :: seen) p
    | Some { parent = None; _ } -> ()
    | None -> ()
  in
  Hashtbl.iter (fun kind _ -> walk [] kind) resources

(* Resource kinds reachable through a type, expanding struct/union
   members, keeping only the directions selected by [keep]. A pointer's
   direction overrides the pointee's. [fuel] bounds recursion through
   (potentially cyclic) struct references. *)
let collect_res_deep t ~keep ty =
  let rec go fuel ptr_dir acc (ty : Ty.t) =
    if fuel = 0 then acc
    else
      match ty with
      | Ty.Res { kind; dir } ->
        let dir = match ptr_dir with Some d -> d | None -> dir in
        if keep dir then kind :: acc else acc
      | Ty.Ptr { dir; elem } -> go (fuel - 1) (Some dir) acc elem
      | Ty.Array { elem; _ } -> go (fuel - 1) ptr_dir acc elem
      | Ty.Struct_ref name ->
        let fields = try Hashtbl.find t.structs name with Not_found -> [] in
        List.fold_left
          (fun acc (f : Field.t) -> go (fuel - 1) ptr_dir acc f.fty)
          acc fields
      | Ty.Union_ref name ->
        let fields = try Hashtbl.find t.unions name with Not_found -> [] in
        List.fold_left
          (fun acc (f : Field.t) -> go (fuel - 1) ptr_dir acc f.fty)
          acc fields
      | Ty.Int _ | Ty.Const _ | Ty.Flags _ | Ty.Len _ | Ty.Proc _
      | Ty.Buffer _ | Ty.Str _ | Ty.Filename _ | Ty.Vma ->
        acc
  in
  go 8 None [] ty

let compute_produced t (c : Syscall.t) =
  let keep = function Ty.Out | Ty.In_out -> true | Ty.In -> false in
  let from_args =
    List.concat_map (fun (f : Field.t) -> collect_res_deep t ~keep f.fty) c.args
  in
  let all = match c.ret with Some r -> r :: from_args | None -> from_args in
  List.sort_uniq String.compare all

let compute_consumed t (c : Syscall.t) =
  let keep = function Ty.In | Ty.In_out -> true | Ty.Out -> false in
  List.sort_uniq String.compare
    (List.concat_map (fun (f : Field.t) -> collect_res_deep t ~keep f.fty) c.args)

let is_subtype t ~sub ~sup =
  let rec walk kind =
    if String.equal kind sup then true
    else
      match Hashtbl.find_opt t.resources kind with
      | Some { parent = Some p; _ } -> walk p
      | Some { parent = None; _ } | None -> false
  in
  walk sub

let compatible t ~consumer ~producer = is_subtype t ~sub:producer ~sup:consumer

let compile_located ?(name = "sim") ldecls =
  let flagsets = Hashtbl.create 64 in
  let structs : (string, Field.t list) Hashtbl.t = Hashtbl.create 64 in
  let unions : (string, Field.t list) Hashtbl.t = Hashtbl.create 16 in
  let resources = Hashtbl.create 64 in
  let positions = Hashtbl.create 256 in
  let raw_calls = ref [] in
  let add_unique table what key value =
    if Hashtbl.mem table key then error "duplicate %s %s" what key;
    Hashtbl.add table key value
  in
  let record kind dname line =
    if line > 0 && not (Hashtbl.mem positions (decl_key kind dname)) then
      Hashtbl.add positions (decl_key kind dname) line
  in
  (* Pass 1: collect declarations. *)
  let collect (decl, line) =
    match decl with
    | Parser.Resource { name; parent; values } ->
      let parent_res =
        if List.mem parent builtin_int_parents then None else Some parent
      in
      record `Resource name line;
      add_unique resources "resource" name
        { parent = parent_res; special = Array.of_list values }
    | Parser.Flagset { name; values } ->
      record `Flags name line;
      add_unique flagsets "flag set" name (Array.of_list values)
    | Parser.Structdef { name; fields } ->
      record `Struct name line;
      add_unique structs "struct" name fields
    | Parser.Uniondef { name; fields } ->
      record `Union name line;
      add_unique unions "union" name fields
    | Parser.Call { name; args; ret } ->
      record `Call name line;
      raw_calls := (name, args, ret) :: !raw_calls
  in
  List.iter collect ldecls;
  (* Resource parents must exist. *)
  Hashtbl.iter
    (fun rname { parent; _ } ->
      match parent with
      | Some p when not (Hashtbl.mem resources p) ->
        error "resource %s: unknown parent %s" rname p
      | Some _ | None -> ())
    resources;
  check_resource_cycles resources;
  (* Pass 2: resolve bare references inside structs/unions and calls. *)
  let resolve_fields ~where fields =
    List.map
      (fun (f : Field.t) ->
        Field.v f.fname (resolve_ty ~where resources structs unions f.fty))
      fields
  in
  let structs' = Hashtbl.create (Hashtbl.length structs) in
  Hashtbl.iter
    (fun sname fields ->
      Hashtbl.add structs' sname (resolve_fields ~where:("struct " ^ sname) fields))
    structs;
  let unions' = Hashtbl.create (Hashtbl.length unions) in
  Hashtbl.iter
    (fun uname fields ->
      Hashtbl.add unions' uname (resolve_fields ~where:("union " ^ uname) fields))
    unions;
  let calls_list =
    List.rev !raw_calls
    |> List.mapi (fun id (cname, args, ret) ->
           (match ret with
           | Some r when not (Hashtbl.mem resources r) ->
             error "%s: return type %s is not a resource" cname r
           | Some _ | None -> ());
           let args = resolve_fields ~where:cname args in
           validate_len_refs ~where:cname args;
           { Syscall.id; name = cname; base = base_of cname; args; ret })
  in
  let calls = Array.of_list calls_list in
  let by_name = Hashtbl.create (Array.length calls) in
  Array.iter
    (fun (c : Syscall.t) ->
      if Hashtbl.mem by_name c.name then error "duplicate syscall %s" c.name;
      Hashtbl.add by_name c.name c)
    calls;
  let t =
    {
      tname = name;
      calls;
      by_name;
      flagsets;
      structs = structs';
      unions = unions';
      resources;
      produced = Array.make (Array.length calls) [];
      consumed = Array.make (Array.length calls) [];
      producers = Hashtbl.create 64;
      consumers = Hashtbl.create 64;
      positions;
    }
  in
  (* Pass 3: validate types now that every table is final. *)
  Array.iter
    (fun (c : Syscall.t) ->
      List.iter (fun (f : Field.t) -> validate_ty ~where:c.name t f.fty) c.args)
    calls;
  Hashtbl.iter
    (fun sname fields ->
      List.iter
        (fun (f : Field.t) -> validate_ty ~where:("struct " ^ sname) t f.fty)
        fields)
    structs';
  Hashtbl.iter
    (fun uname fields ->
      List.iter
        (fun (f : Field.t) -> validate_ty ~where:("union " ^ uname) t f.fty)
        fields)
    unions';
  (* Pass 4: produce/consume indices, inheritance-aware. *)
  Array.iter
    (fun (c : Syscall.t) ->
      t.produced.(c.id) <- compute_produced t c;
      t.consumed.(c.id) <- compute_consumed t c)
    calls;
  let kinds = Hashtbl.fold (fun k _ acc -> k :: acc) resources [] in
  List.iter
    (fun kind ->
      let produces_compatible (c : Syscall.t) =
        List.exists (fun p -> compatible t ~consumer:kind ~producer:p) t.produced.(c.id)
      in
      let consumes_compatible (c : Syscall.t) =
        List.exists (fun cns -> compatible t ~consumer:cns ~producer:kind) t.consumed.(c.id)
      in
      Hashtbl.add t.producers kind
        (List.filter produces_compatible (Array.to_list calls));
      Hashtbl.add t.consumers kind
        (List.filter consumes_compatible (Array.to_list calls)))
    kinds;
  t

let compile ?name decls =
  compile_located ?name (List.map (fun d -> (d, 0)) decls)

let of_string ?name src = compile_located ?name (Parser.parse_located src)

let decl_line t kind dname = Hashtbl.find_opt t.positions (decl_key kind dname)

let name t = t.tname
let n_syscalls t = Array.length t.calls
let syscalls t = t.calls

let syscall t id =
  if id < 0 || id >= Array.length t.calls then
    invalid_arg (Printf.sprintf "Target.syscall: id %d out of range" id);
  t.calls.(id)

let find t name = Hashtbl.find_opt t.by_name name
let find_exn t name = Hashtbl.find t.by_name name

let flag_values t name =
  match Hashtbl.find_opt t.flagsets name with
  | Some vs -> vs
  | None -> error "unknown flag set %s" name

let struct_fields t name =
  match Hashtbl.find_opt t.structs name with
  | Some fs -> fs
  | None -> error "unknown struct %s" name

let union_fields t name =
  match Hashtbl.find_opt t.unions name with
  | Some fs -> fs
  | None -> error "unknown union %s" name

let resource_kinds t =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.resources [])

let sorted_keys tbl =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let struct_names t = sorted_keys t.structs
let union_names t = sorted_keys t.unions
let flagset_names t = sorted_keys t.flagsets

let resource_parent t kind =
  match Hashtbl.find_opt t.resources kind with
  | Some { parent; _ } -> parent
  | None -> error "unknown resource %s" kind

let resource_special_values t kind =
  match Hashtbl.find_opt t.resources kind with
  | Some { special; _ } -> special
  | None -> error "unknown resource %s" kind

let produces t (c : Syscall.t) = t.produced.(c.id)
let consumes t (c : Syscall.t) = t.consumed.(c.id)

let producers_of t kind =
  match Hashtbl.find_opt t.producers kind with
  | Some cs -> cs
  | None -> error "unknown resource %s" kind

let consumers_of t kind =
  match Hashtbl.find_opt t.consumers kind with
  | Some cs -> cs
  | None -> error "unknown resource %s" kind

(* Collect every type node reachable from a call's arguments. Each
   struct/union body is entered once per traversal, so self-referential
   layouts (legal behind a pointer) terminate. *)
let iter_ty t f ty =
  let seen = Hashtbl.create 8 in
  let enter key = if Hashtbl.mem seen key then false else (Hashtbl.add seen key (); true) in
  let rec go (ty : Ty.t) =
    f ty;
    match ty with
    | Ty.Ptr { elem; _ } -> go elem
    | Ty.Array { elem; _ } -> go elem
    | Ty.Struct_ref name ->
      if enter ("s:" ^ name) then
        List.iter (fun (fl : Field.t) -> go fl.Field.fty) (struct_fields t name)
    | Ty.Union_ref name ->
      if enter ("u:" ^ name) then
        List.iter (fun (fl : Field.t) -> go fl.Field.fty) (union_fields t name)
    | Ty.Int _ | Ty.Const _ | Ty.Flags _ | Ty.Len _ | Ty.Proc _ | Ty.Buffer _
    | Ty.Str _ | Ty.Filename _ | Ty.Res _ | Ty.Vma ->
      ()
  in
  go ty

(* Superseded by the [Healer_analysis] pass framework, which reports
   the same findings with stable check IDs, severities and source
   positions. Kept only for out-of-tree callers. *)
let lint t =
  let warnings = ref [] in
  let warn fmt = Fmt.kstr (fun s -> warnings := s :: !warnings) fmt in
  let used_flags = Hashtbl.create 32 in
  let used_structs = Hashtbl.create 32 in
  let used_unions = Hashtbl.create 32 in
  Array.iter
    (fun (c : Syscall.t) ->
      List.iter
        (fun (f : Field.t) ->
          iter_ty t
            (function
              | Ty.Flags name -> Hashtbl.replace used_flags name ()
              | Ty.Struct_ref name -> Hashtbl.replace used_structs name ()
              | Ty.Union_ref name -> Hashtbl.replace used_unions name ()
              | _ -> ())
            f.Field.fty)
        c.Syscall.args)
    t.calls;
  List.iter
    (fun kind ->
      let produced =
        (* A kind counts as produced when anything produces it or a
           subkind a consumer would accept in its place. *)
        Array.exists
          (fun (c : Syscall.t) ->
            List.exists
              (fun r -> compatible t ~consumer:kind ~producer:r)
              t.produced.(c.id))
          t.calls
      in
      let consumed =
        Array.exists
          (fun (c : Syscall.t) ->
            List.exists
              (fun cns -> compatible t ~consumer:cns ~producer:kind)
              t.consumed.(c.id))
          t.calls
      in
      if not produced then warn "resource %s has no producer" kind;
      if not consumed then warn "resource %s has no consumer" kind)
    (List.sort String.compare
       (Hashtbl.fold (fun k _ acc -> k :: acc) t.resources []));
  Hashtbl.iter
    (fun name _ ->
      if not (Hashtbl.mem used_flags name) then warn "flag set %s is unused" name)
    t.flagsets;
  Hashtbl.iter
    (fun name _ ->
      if not (Hashtbl.mem used_structs name) then warn "struct %s is unreachable" name)
    t.structs;
  Hashtbl.iter
    (fun name _ ->
      if not (Hashtbl.mem used_unions name) then warn "union %s is unreachable" name)
    t.unions;
  Array.iter
    (fun (c : Syscall.t) ->
      List.iter
        (fun kind ->
          let some_producer =
            Array.exists
              (fun (p : Syscall.t) ->
                List.exists
                  (fun r -> compatible t ~consumer:kind ~producer:r)
                  t.produced.(p.id))
              t.calls
          in
          if not some_producer then
            warn "%s consumes %s, which nothing can produce" c.Syscall.name kind)
        t.consumed.(c.id))
    t.calls;
  List.sort String.compare !warnings
[@@ocaml.deprecated "use the Healer_analysis passes instead"]

let pp_summary ppf t =
  Fmt.pf ppf "target %s: %d syscalls, %d resources, %d flag sets, %d structs"
    t.tname (Array.length t.calls)
    (Hashtbl.length t.resources)
    (Hashtbl.length t.flagsets)
    (Hashtbl.length t.structs)
