(** A compiled description set: the fuzzing target's interface model.

    Compilation resolves bare-name type references (resource vs struct vs
    union), validates flag-set / length-field / resource references,
    checks resource inheritance for cycles, assigns dense syscall ids and
    precomputes producer/consumer indices used by static relation
    learning and by sequence generation. *)

type t

exception Compile_error of string

val compile : ?name:string -> Parser.decl list -> t
(** Raises {!Compile_error} on invalid declarations. *)

val compile_located : ?name:string -> (Parser.decl * int) list -> t
(** Like {!compile}, recording each declaration's source line for
    {!decl_line}. Lines [<= 0] mean "unknown" and are not recorded. *)

val of_string : ?name:string -> string -> t
(** Lex + parse + {!compile_located}. Raises {!Compile_error},
    {!Parser.Error} or {!Lexer.Error}. *)

type decl_kind = [ `Call | `Struct | `Union | `Flags | `Resource ]

val decl_line : t -> decl_kind -> string -> int option
(** Source line the named declaration starts on, when the target was
    compiled from located declarations (e.g. via {!of_string}). *)

val name : t -> string
val n_syscalls : t -> int
val syscalls : t -> Syscall.t array

val syscall : t -> int -> Syscall.t
(** Raises [Invalid_argument] if the id is out of range. *)

val find : t -> string -> Syscall.t option
(** Lookup by full name, e.g. ["ioctl$KVM_RUN"]. *)

val find_exn : t -> string -> Syscall.t
(** Raises [Not_found]. *)

val flag_values : t -> string -> int64 array
val struct_fields : t -> string -> Field.t list
val union_fields : t -> string -> Field.t list

val resource_kinds : t -> string list
(** All declared resource kind names, sorted. *)

val struct_names : t -> string list
val union_names : t -> string list
val flagset_names : t -> string list

val resource_parent : t -> string -> string option
(** Parent resource kind, or [None] if the parent is a builtin integer. *)

val resource_special_values : t -> string -> int64 array
(** Special values (e.g. [-1] for fds) usable in place of a real
    instance; empty if none were declared. *)

val is_subtype : t -> sub:string -> sup:string -> bool
(** Reflexive-transitive resource inheritance: [is_subtype ~sub ~sup]
    holds if [sub] equals [sup] or inherits from it. *)

val compatible : t -> consumer:string -> producer:string -> bool
(** A produced resource of kind [producer] may be passed where kind
    [consumer] is expected iff [producer] is a subtype of [consumer]. *)

val produces : t -> Syscall.t -> string list
(** Resource kinds the call can produce, with struct/union members
    expanded. *)

val consumes : t -> Syscall.t -> string list

val producers_of : t -> string -> Syscall.t list
(** Calls producing a kind compatible with the given consumer kind. *)

val consumers_of : t -> string -> Syscall.t list
(** Calls consuming a kind compatible with the given producer kind. *)

val iter_ty : t -> (Ty.t -> unit) -> Ty.t -> unit
(** Apply a function to every type node reachable from a type,
    expanding struct/union references. *)

val pp_summary : Format.formatter -> t -> unit

val lint : t -> string list
  [@@ocaml.deprecated "use the Healer_analysis passes instead"]
(** Description-quality diagnostics, addressing the paper's Section 8
    concern that hand-written descriptions are neither complete nor
    correct. Reported (as human-readable warnings):
    - resource kinds nothing produces (their consumers can only ever
      receive special values);
    - resource kinds nothing consumes (producing them is pointless);
    - flag sets no call references;
    - structs/unions no call reaches;
    - calls consuming a kind that has no producer.

    @deprecated Superseded by the [Healer_analysis] pass framework
    (the [lint-*] checks), which adds severities, stable check IDs and
    source positions. *)
