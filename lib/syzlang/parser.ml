type decl =
  | Resource of { name : string; parent : string; values : int64 list }
  | Flagset of { name : string; values : int64 list }
  | Structdef of { name : string; fields : Field.t list }
  | Uniondef of { name : string; fields : Field.t list }
  | Call of { name : string; args : Field.t list; ret : string option }

exception Error of { line : int; msg : string }

let fail line msg = raise (Error { line; msg })

(* Mutable token cursor. *)
type cursor = { mutable toks : (Lexer.token * int) list }

let peek cur =
  match cur.toks with [] -> (Lexer.EOF, 0) | (t, l) :: _ -> (t, l)

let advance cur =
  match cur.toks with [] -> () | _ :: rest -> cur.toks <- rest

let next cur =
  let t = peek cur in
  advance cur;
  t

let cur_line cur = snd (peek cur)

let expect cur tok what =
  let t, l = next cur in
  if t <> tok then fail l (Fmt.str "expected %s, got %a" what Lexer.pp_token t)

let expect_ident cur what =
  match next cur with
  | Lexer.IDENT s, _ -> s
  | t, l -> fail l (Fmt.str "expected %s, got %a" what Lexer.pp_token t)

let expect_int cur what =
  match next cur with
  | Lexer.INT v, _ -> v
  | t, l -> fail l (Fmt.str "expected %s, got %a" what Lexer.pp_token t)

let parse_dir cur =
  match next cur with
  | Lexer.IDENT "in", _ -> Ty.In
  | Lexer.IDENT "out", _ -> Ty.Out
  | Lexer.IDENT "inout", _ -> Ty.In_out
  | t, l -> fail l (Fmt.str "expected direction, got %a" Lexer.pp_token t)

let int_bits_of_name = function
  | "int8" -> Some 8
  | "int16" -> Some 16
  | "int32" -> Some 32
  | "int64" | "intptr" -> Some 64
  | _ -> None

let parse_string_list cur what =
  expect cur Lexer.LBRACK "[";
  let rec go acc =
    match next cur with
    | Lexer.STRING s, _ -> (
      match peek cur with
      | Lexer.COMMA, _ ->
        advance cur;
        go (s :: acc)
      | Lexer.RBRACK, _ ->
        advance cur;
        List.rev (s :: acc)
      | t, l -> fail l (Fmt.str "expected , or ] in %s, got %a" what Lexer.pp_token t))
    | t, l -> fail l (Fmt.str "expected string literal in %s, got %a" what Lexer.pp_token t)
  in
  go []

let rec parse_ty cur =
  match next cur with
  | Lexer.IDENT name, line -> parse_ty_named cur name line
  | t, l -> fail l (Fmt.str "expected a type, got %a" Lexer.pp_token t)

and parse_ty_named cur name line =
  match name with
  | "int8" | "int16" | "int32" | "int64" | "intptr" ->
    let bits =
      match int_bits_of_name name with Some b -> b | None -> assert false
    in
    let range =
      match peek cur with
      | Lexer.LBRACK, _ ->
        advance cur;
        let lo = expect_int cur "range low bound" in
        expect cur Lexer.COLON ":";
        let hi = expect_int cur "range high bound" in
        expect cur Lexer.RBRACK "]";
        if Int64.compare lo hi > 0 then fail line "empty integer range";
        Some (lo, hi)
      | _ -> None
    in
    Ty.Int { bits; range }
  | "const" ->
    expect cur Lexer.LBRACK "[";
    let v = expect_int cur "const value" in
    expect cur Lexer.RBRACK "]";
    Ty.Const v
  | "flags" ->
    expect cur Lexer.LBRACK "[";
    let fname = expect_ident cur "flag set name" in
    expect cur Lexer.RBRACK "]";
    Ty.Flags fname
  | "len" ->
    expect cur Lexer.LBRACK "[";
    let target = expect_ident cur "len target field" in
    expect cur Lexer.RBRACK "]";
    Ty.Len target
  | "proc" ->
    expect cur Lexer.LBRACK "[";
    let start = expect_int cur "proc start" in
    expect cur Lexer.COMMA ",";
    let step = expect_int cur "proc step" in
    expect cur Lexer.RBRACK "]";
    Ty.Proc { start; step }
  | "ptr" ->
    expect cur Lexer.LBRACK "[";
    let dir = parse_dir cur in
    expect cur Lexer.COMMA ",";
    let elem = parse_ty cur in
    expect cur Lexer.RBRACK "]";
    Ty.Ptr { dir; elem }
  | "buffer" ->
    expect cur Lexer.LBRACK "[";
    let dir = parse_dir cur in
    expect cur Lexer.RBRACK "]";
    Ty.Buffer { dir }
  | "string" -> Ty.Str (parse_string_list cur "string")
  | "filename" -> Ty.Filename (parse_string_list cur "filename")
  | "array" ->
    expect cur Lexer.LBRACK "[";
    let elem = parse_ty cur in
    let min_len, max_len =
      match peek cur with
      | Lexer.COMMA, _ ->
        advance cur;
        let lo = Int64.to_int (expect_int cur "array min length") in
        expect cur Lexer.COLON ":";
        let hi = Int64.to_int (expect_int cur "array max length") in
        if lo < 0 || hi < lo then fail line "bad array length range";
        (lo, hi)
      | _ -> (0, 4)
    in
    expect cur Lexer.RBRACK "]";
    Ty.Array { elem; min_len; max_len }
  | "vma" -> Ty.Vma
  | "in" | "out" | "inout" -> fail line "direction keyword is not a type"
  | _ ->
    (* Bare reference: resource, struct or union; Target.compile resolves.
       An optional trailing direction keyword applies to resources. *)
    let dir =
      match peek cur with
      | Lexer.IDENT "in", _ ->
        advance cur;
        Ty.In
      | Lexer.IDENT "out", _ ->
        advance cur;
        Ty.Out
      | Lexer.IDENT "inout", _ ->
        advance cur;
        Ty.In_out
      | _ -> Ty.In
    in
    Ty.Res { kind = name; dir }

let parse_field cur =
  let fname = expect_ident cur "field name" in
  let fty = parse_ty cur in
  Field.v fname fty

(* field, field, ... terminated by [stop]. *)
let parse_fields cur stop what =
  let rec go acc =
    match peek cur with
    | t, _ when t = stop ->
      advance cur;
      List.rev acc
    | _ ->
      let f = parse_field cur in
      (match peek cur with
      | Lexer.COMMA, _ -> advance cur
      | t, _ when t = stop -> ()
      | t, l -> fail l (Fmt.str "expected , in %s, got %a" what Lexer.pp_token t));
      go (f :: acc)
  in
  go []

let parse_int_values cur =
  let rec go acc =
    match peek cur with
    | Lexer.INT v, _ ->
      advance cur;
      (match peek cur with Lexer.COMMA, _ -> advance cur | _ -> ());
      go (v :: acc)
    | _ -> List.rev acc
  in
  go []

let parse_resource cur =
  let name = expect_ident cur "resource name" in
  expect cur Lexer.LBRACK "[";
  let parent = expect_ident cur "resource parent" in
  expect cur Lexer.RBRACK "]";
  let values =
    match peek cur with
    | Lexer.COLON, _ ->
      advance cur;
      parse_int_values cur
    | _ -> []
  in
  Resource { name; parent; values }

let parse_flagset cur =
  let name = expect_ident cur "flag set name" in
  expect cur Lexer.EQUALS "=";
  let line = cur_line cur in
  let values = parse_int_values cur in
  if values = [] then fail line "flag set needs at least one value";
  Flagset { name; values }

let parse_struct_like cur ctor =
  let name = expect_ident cur "type name" in
  expect cur Lexer.LBRACE "{";
  let line = cur_line cur in
  let fields = parse_fields cur Lexer.RBRACE "struct/union body" in
  if fields = [] then fail line "empty struct/union";
  ctor name fields

let parse_call cur name =
  expect cur Lexer.LPAREN "(";
  let args = parse_fields cur Lexer.RPAREN "argument list" in
  let ret =
    match peek cur with
    | Lexer.IDENT r, _ ->
      advance cur;
      Some r
    | _ -> None
  in
  Call { name; args; ret }

let parse_decl cur =
  match next cur with
  | Lexer.IDENT "resource", _ -> parse_resource cur
  | Lexer.IDENT "flags", l -> (
    (* Disambiguate the [flags] keyword from a syscall named flags. *)
    match peek cur with
    | Lexer.IDENT _, _ -> parse_flagset cur
    | t, _ -> fail l (Fmt.str "expected flag set name, got %a" Lexer.pp_token t))
  | Lexer.IDENT "struct", _ ->
    parse_struct_like cur (fun name fields -> Structdef { name; fields })
  | Lexer.IDENT "union", _ ->
    parse_struct_like cur (fun name fields -> Uniondef { name; fields })
  | Lexer.IDENT name, _ -> parse_call cur name
  | t, l -> fail l (Fmt.str "expected a declaration, got %a" Lexer.pp_token t)

(* Like [parse], but each declaration carries the 1-based source line it
   starts on, for diagnostics downstream. *)
let parse_located src =
  let cur = { toks = Lexer.tokenize src } in
  let rec go acc =
    match peek cur with
    | Lexer.EOF, _ -> List.rev acc
    | Lexer.NEWLINE, _ ->
      advance cur;
      go acc
    | _, line ->
      let d = parse_decl cur in
      (match next cur with
      | Lexer.NEWLINE, _ | Lexer.EOF, _ -> ()
      | t, l -> fail l (Fmt.str "trailing tokens after declaration: %a" Lexer.pp_token t));
      go ((d, line) :: acc)
  in
  go []

let parse src = List.map fst (parse_located src)

let pp_decl ppf = function
  | Resource { name; parent; values = [] } ->
    Fmt.pf ppf "resource %s[%s]" name parent
  | Resource { name; parent; values } ->
    Fmt.pf ppf "resource %s[%s]: %a" name parent Fmt.(list ~sep:sp int64) values
  | Flagset { name; values } ->
    Fmt.pf ppf "flags %s = %a" name Fmt.(list ~sep:sp int64) values
  | Structdef { name; fields } ->
    Fmt.pf ppf "struct %s { %a }" name Fmt.(list ~sep:(any ", ") Field.pp) fields
  | Uniondef { name; fields } ->
    Fmt.pf ppf "union %s { %a }" name Fmt.(list ~sep:(any ", ") Field.pp) fields
  | Call { name; args; ret } ->
    Fmt.pf ppf "%s(%a)%a" name
      Fmt.(list ~sep:(any ", ") Field.pp)
      args
      Fmt.(option (fun ppf r -> pf ppf " %s" r))
      ret
