(** Recursive-descent parser for the Syzlang-subset description language.

    Grammar (one declaration per line):
    {v
    resource NAME[PARENT] (: INT ...)?
    flags NAME = INT INT ...          # also accepts comma separators
    struct NAME { field ty, field ty, ... }
    union NAME { field ty, field ty, ... }
    NAME(field ty, ...) RET_RESOURCE?
    v}

    Type expressions:
    {v
    int8|int16|int32|int64|intptr ([lo:hi])?
    const[INT]      flags[NAME]    len[FIELD]    proc[START, STEP]
    ptr[DIR, TY]    buffer[DIR]    vma
    string["lit", ...]             filename["lit", ...]
    array[TY] | array[TY, MIN:MAX]
    NAME (in|out|inout)?           # resource / struct / union reference
    v}

    Bare-name references are left as [Ty.Res] and resolved against the
    declared structs and unions by {!Target.compile}. *)

type decl =
  | Resource of { name : string; parent : string; values : int64 list }
      (** [parent] is either a builtin integer type name or another
          resource name. *)
  | Flagset of { name : string; values : int64 list }
  | Structdef of { name : string; fields : Field.t list }
  | Uniondef of { name : string; fields : Field.t list }
  | Call of { name : string; args : Field.t list; ret : string option }

exception Error of { line : int; msg : string }

val parse : string -> decl list
(** Raises {!Error} or {!Lexer.Error} on malformed input. *)

val parse_located : string -> (decl * int) list
(** Like {!parse}, with the 1-based source line each declaration starts
    on, for diagnostics. *)

val pp_decl : Format.formatter -> decl -> unit
