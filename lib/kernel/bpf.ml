type bpf_map = {
  key_size : int64;
  value_size : int64;
  max_entries : int64;
  mutable entries : int;
  mutable frozen : bool;
}

type bpf_prog = {
  insn_count : int;
  mutable attached_to : int option;
  mutable test_runs : int;
}

type State.fd_kind += Bpf_map of bpf_map | Bpf_prog of bpf_prog

let blk = Coverage.region ~name:"bpf" ~size:512
let c ctx o = Ctx.cover ctx (blk + o)

let h_map_create ctx args =
  let r = Arg.nth args 1 in
  let key_size = Arg.as_int (Arg.field r 0) in
  let value_size = Arg.as_int (Arg.field r 1) in
  let max_entries = Arg.as_int (Arg.field r 2) in
  c ctx 0;
  if Int64.compare key_size 0L <= 0 || Int64.compare key_size 512L > 0 then begin
    c ctx 1;
    Ctx.err Errno.EINVAL
  end
  else if Int64.compare value_size 0L <= 0 || Int64.compare value_size 65536L > 0
  then begin
    c ctx 2;
    Ctx.err Errno.EINVAL
  end
  else if Int64.compare max_entries 0L <= 0 then begin
    c ctx 3;
    Ctx.err Errno.EINVAL
  end
  else begin
    c ctx 4;
    if Int64.compare max_entries 1024L > 0 then c ctx 5;
    let m =
      { key_size; value_size; max_entries; entries = 0; frozen = false }
    in
    let entry = State.alloc_fd ctx.Ctx.st (Bpf_map m) in
    Ctx.ok (Int64.of_int entry.State.fd)
  end

let with_map ctx args k =
  match State.lookup_fd ctx.Ctx.st (Arg.as_fd (Arg.nth args 1)) with
  | Some { kind = Bpf_map m; _ } -> k m
  | Some _ -> (c ctx 7; Ctx.err Errno.EINVAL)
  | None -> (c ctx 8; Ctx.err Errno.EBADF)

let with_prog ctx args k =
  match State.lookup_fd ctx.Ctx.st (Arg.as_fd (Arg.nth args 1)) with
  | Some { kind = Bpf_prog p; _ } -> k p
  | Some _ -> (c ctx 9; Ctx.err Errno.EINVAL)
  | None -> (c ctx 10; Ctx.err Errno.EBADF)

let h_map_update ctx args =
  c ctx 12;
  with_map ctx args (fun m ->
      let key = Arg.as_buf (Arg.nth args 2) in
      if m.frozen then begin
        c ctx 13;
        Ctx.err Errno.EPERM
      end
      else if Int64.compare (Int64.of_int (Bytes.length key)) m.key_size < 0
      then begin
        (* The kernel copies key_size bytes; a short buffer faults. *)
        c ctx 14;
        Ctx.err Errno.EFAULT
      end
      else if Int64.of_int m.entries >= m.max_entries then begin
        c ctx 15;
        Ctx.err Errno.ENOSPC
      end
      else begin
        c ctx 16;
        m.entries <- m.entries + 1;
        c ctx (32 + min 15 m.entries);
        Ctx.ok0
      end)

let h_map_lookup ctx args =
  c ctx 18;
  with_map ctx args (fun m ->
      if m.entries = 0 then begin
        c ctx 19;
        Ctx.err Errno.ENOENT
      end
      else begin
        c ctx 20;
        Ctx.ok0
      end)

let h_map_delete ctx args =
  c ctx 22;
  with_map ctx args (fun m ->
      if m.entries = 0 then begin
        c ctx 23;
        Ctx.err Errno.ENOENT
      end
      else begin
        c ctx 24;
        m.entries <- m.entries - 1;
        Ctx.ok0
      end)

let h_map_freeze ctx args =
  c ctx 26;
  with_map ctx args (fun m ->
      if m.frozen then begin
        c ctx 27;
        Ctx.err Errno.EBUSY
      end
      else begin
        c ctx 28;
        m.frozen <- true;
        Ctx.ok0
      end)

(* The verifier gate: programs must be non-empty, bounded, and end in
   an exit instruction (opcode byte 0x95). *)
let h_prog_load ctx args =
  let r = Arg.nth args 1 in
  let insns = Arg.as_rec (Arg.field r 0) in
  let n = List.length insns in
  c ctx 50;
  if n = 0 then begin
    c ctx 51;
    Ctx.err Errno.EINVAL
  end
  else if n > 16 then begin
    c ctx 52;
    Ctx.err Errno.EOVERFLOW
  end
  else begin
    let last = List.nth insns (n - 1) in
    let opcode = Int64.logand (Arg.as_int last) 0xffL in
    if Int64.compare opcode 0x95L <> 0 then begin
      (* Verifier rejection: fall-through off the end. *)
      c ctx 53;
      Ctx.err Errno.EACCES
    end
    else begin
      c ctx 54;
      c ctx (64 + min 15 n);
      let p = { insn_count = n; attached_to = None; test_runs = 0 } in
      let entry = State.alloc_fd ctx.Ctx.st (Bpf_prog p) in
      Ctx.ok (Int64.of_int entry.State.fd)
    end
  end

let h_prog_attach ctx args =
  c ctx 80;
  with_prog ctx args (fun p ->
      let target_fd = Arg.as_fd (Arg.nth args 2) in
      let is_socket_kind = function
        | Sock.Sock _ | Sock_misc.L2cap _ | Sock_misc.Llcp _
        | Sock_misc.Ieee802154 _ | Netdev.Packet_sock ->
          true
        | _ -> false
      in
      match State.lookup_fd ctx.Ctx.st target_fd with
      | Some { kind; _ } when is_socket_kind kind ->
        if p.attached_to <> None then begin
          c ctx 81;
          Ctx.err Errno.EBUSY
        end
        else begin
          c ctx 82;
          p.attached_to <- Some target_fd;
          Ctx.ok0
        end
      | Some _ ->
        c ctx 83;
        Ctx.err Errno.EINVAL
      | None ->
        c ctx 84;
        Ctx.err Errno.EBADF)

let h_prog_detach ctx args =
  c ctx 86;
  with_prog ctx args (fun p ->
      match p.attached_to with
      | None ->
        c ctx 87;
        Ctx.err Errno.ENOENT
      | Some _ ->
        c ctx 88;
        p.attached_to <- None;
        Ctx.ok0)

let h_prog_test_run ctx args =
  c ctx 90;
  with_prog ctx args (fun p ->
      let data = Arg.as_buf (Arg.nth args 2) in
      let n = Bytes.length data in
      if n = 0 then begin
        c ctx 91;
        Ctx.err Errno.EINVAL
      end
      else begin
        c ctx 92;
        p.test_runs <- p.test_runs + 1;
        (* Execution specializes on program size x run count x whether
           the program is live on a socket. *)
        let combo =
          (min 3 (p.insn_count / 4) * 8)
          lor (min 3 p.test_runs * 2)
          lor if p.attached_to <> None then 1 else 0
        in
        c ctx (96 + combo);
        Ctx.ok (Int64.of_int n)
      end)

let descriptions =
  {|
# BPF: maps, program loading, attachment.
resource fd_bpf_map[fd]
resource fd_bpf_prog[fd]
struct bpf_map_create_arg { key_size int32[0:512], value_size int32, max_entries int32 }
struct bpf_prog_load_arg { insns array[int64, 1:16], license int64 }
bpf$MAP_CREATE(cmd const[0], attr ptr[in, bpf_map_create_arg]) fd_bpf_map
bpf$MAP_UPDATE_ELEM(cmd const[2], fd fd_bpf_map, key buffer[in], value buffer[in])
bpf$MAP_LOOKUP_ELEM(cmd const[1], fd fd_bpf_map, key buffer[in], value buffer[out])
bpf$MAP_DELETE_ELEM(cmd const[3], fd fd_bpf_map, key buffer[in])
bpf$MAP_FREEZE(cmd const[22], fd fd_bpf_map)
bpf$PROG_LOAD(cmd const[5], attr ptr[in, bpf_prog_load_arg]) fd_bpf_prog
bpf$PROG_ATTACH(cmd const[8], prog fd_bpf_prog, target sock, atype int32[0:10])
bpf$PROG_DETACH(cmd const[9], prog fd_bpf_prog)
bpf$PROG_TEST_RUN(cmd const[10], prog fd_bpf_prog, data buffer[in], dsize len[data])
|}

let copy_kind : State.fd_kind -> State.fd_kind option = function
  | Bpf_map m -> Some (Bpf_map { m with entries = m.entries })
  | Bpf_prog p -> Some (Bpf_prog { p with test_runs = p.test_runs })
  | _ -> None

let sub =
  Subsystem.make ~name:"bpf" ~descriptions ~copy_kind
    ~handlers:
      [
        ("bpf$MAP_CREATE", h_map_create);
        ("bpf$MAP_UPDATE_ELEM", h_map_update);
        ("bpf$MAP_LOOKUP_ELEM", h_map_lookup);
        ("bpf$MAP_DELETE_ELEM", h_map_delete);
        ("bpf$MAP_FREEZE", h_map_freeze);
        ("bpf$PROG_LOAD", h_prog_load);
        ("bpf$PROG_ATTACH", h_prog_attach);
        ("bpf$PROG_DETACH", h_prog_detach);
        ("bpf$PROG_TEST_RUN", h_prog_test_run);
      ]
    ()
