type vm = {
  mutable vcpus : int;
  mutable memslots : (int64 * int64) list;
  mutable irqchip : bool;
  mutable coalesced_zones : int64 list;
  mutable io_bus_devs : int64 list;
  mutable hv_routing_stale : bool;
  mutable dirty_log_slots : int64 list;
  mutable tss_addr : int64 option;
}

type vcpu = {
  vm_fd : int;
  mutable lapic_set : bool;
  mutable cap_enabled : bool;
  mutable smi_pending : bool;
  mutable guest_debug : bool;
  mutable runs : int;
  mutable regs_set : bool;
  mutable nmi_pending : bool;
}

type State.fd_kind += Kvm_sys | Kvm_vm of vm | Kvm_vcpu of vcpu

let blk = Coverage.region ~name:"kvm" ~size:1024
let c ctx o = Ctx.cover ctx (blk + o)

let h_open_kvm ctx args =
  let path = Arg.as_str (Arg.nth args 1) in
  c ctx 0;
  if path <> "/dev/kvm" then begin
    c ctx 1;
    Ctx.err Errno.ENOENT
  end
  else begin
    c ctx 2;
    let entry = State.alloc_fd ctx.Ctx.st Kvm_sys in
    Ctx.ok (Int64.of_int entry.fd)
  end

let with_kind ctx args extract bad k =
  let fd = Arg.as_fd (Arg.nth args 0) in
  match State.lookup_fd ctx.Ctx.st fd with
  | Some entry -> (
    match extract entry.State.kind with
    | Some x -> k fd x
    | None ->
      c ctx bad;
      Ctx.err Errno.EINVAL)
  | None ->
    c ctx (bad + 1);
    Ctx.err Errno.EBADF

let with_sys ctx args k =
  with_kind ctx args (function Kvm_sys -> Some () | _ -> None) 4 (fun _ () -> k ())

let with_vm ctx args k =
  with_kind ctx args (function Kvm_vm vm -> Some vm | _ -> None) 6 k

let with_vcpu ctx args k =
  with_kind ctx args (function Kvm_vcpu v -> Some v | _ -> None) 8 k

let h_create_vm ctx args =
  c ctx 10;
  with_sys ctx args (fun () ->
      c ctx 11;
      let vm =
        {
          vcpus = 0;
          memslots = [];
          irqchip = false;
          coalesced_zones = [];
          io_bus_devs = [];
          hv_routing_stale = false;
          dirty_log_slots = [];
          tss_addr = None;
        }
      in
      let entry = State.alloc_fd ctx.Ctx.st (Kvm_vm vm) in
      Ctx.ok (Int64.of_int entry.fd))

let h_create_vcpu ctx args =
  c ctx 13;
  with_vm ctx args (fun vm_fd vm ->
      let id = Arg.as_int (Arg.nth args 2) in
      if Int64.compare id 0L < 0 || Int64.compare id 8L >= 0 then begin
        c ctx 14;
        Ctx.err Errno.EINVAL
      end
      else if vm.vcpus >= 4 then begin
        c ctx 15;
        Ctx.err Errno.ENOMEM
      end
      else begin
        c ctx 16;
        vm.vcpus <- vm.vcpus + 1;
        let v =
          {
            vm_fd;
            lapic_set = false;
            cap_enabled = false;
            smi_pending = false;
            guest_debug = false;
            runs = 0;
            regs_set = false;
            nmi_pending = false;
          }
        in
        let entry = State.alloc_fd ctx.Ctx.st (Kvm_vcpu v) in
        Ctx.ok (Int64.of_int entry.fd)
      end)

let h_set_memory_region ctx args =
  c ctx 18;
  with_vm ctx args (fun _ vm ->
      (* region { slot int32, flags, guest_phys_addr int64, memory_size
         int64, userspace_addr vma } *)
      let r = Arg.nth args 2 in
      if Arg.is_null r then begin
        c ctx 19;
        Ctx.err Errno.EFAULT
      end
      else begin
        let gpa = Arg.as_int (Arg.field r 2) in
        let size = Arg.as_int (Arg.field r 3) in
        if Int64.compare size 0L < 0 then begin
          c ctx 20;
          Ctx.err Errno.EINVAL
        end
        else if Int64.compare size 0L = 0 then begin
          c ctx 21;
          (* Size 0 deletes the slot. *)
          vm.memslots <-
            List.filter (fun (base, _) -> Int64.compare base gpa <> 0) vm.memslots;
          Ctx.ok0
        end
        else begin
          c ctx 22;
          let npages = Int64.shift_right_logical size 12 in
          let slot = Arg.as_int (Arg.field r 0) in
          let mflags = Arg.as_int (Arg.field r 1) in
          if Int64.logand mflags 0x1L <> 0L (* KVM_MEM_LOG_DIRTY_PAGES *) then
            vm.dirty_log_slots <- slot :: vm.dirty_log_slots;
          vm.memslots <- (Int64.shift_right_logical gpa 12, npages) :: vm.memslots;
          if List.length vm.memslots > 2 then c ctx 23;
          (* A slot whose page count wraps past the gfn space poisons
             later gfn->hva cache initialization (5.6+). *)
          if Int64.compare size 0x0fffffff00000000L > 0 then c ctx 24;
          Ctx.ok0
        end
      end)

let vm_of_vcpu ctx v =
  match State.lookup_fd ctx.Ctx.st v.vm_fd with
  | Some { kind = Kvm_vm vm; _ } -> Some vm
  | Some _ | None -> None

let h_run ctx args =
  c ctx 26;
  with_vcpu ctx args (fun _ v ->
      match vm_of_vcpu ctx v with
      | None ->
        c ctx 27;
        Ctx.err Errno.ENODEV
      | Some vm ->
        v.runs <- v.runs + 1;
        if vm.memslots = [] then begin
          c ctx 28;
          Ctx.err Errno.EFAULT (* no memory: VM exits immediately *)
        end
        else begin
          c ctx 29;
          (* Guest touches a gfn: binary search over memslots
             (Listing 1). With two or more discontiguous slots that all
             start above gfn 0, the search can end with start == end
             and the subsequent memslots[start] access is out of
             bounds. *)
          let discontiguous =
            List.length vm.memslots >= 2
            && List.for_all (fun (base, _) -> Int64.compare base 0L > 0) vm.memslots
          in
          if discontiguous then begin
            c ctx 30;
            Ctx.bug ctx "search_memslots"
          end;
          (* gfn->hva cache over a wrapping slot (5.6+). *)
          if
            List.exists
              (fun (_, npages) -> Int64.compare npages 0x000fffffffffffL > 0)
              vm.memslots
          then begin
            c ctx 31;
            Ctx.bug ctx "kvm_gfn_to_hva_cache_init"
          end;
          if v.lapic_set then c ctx 32;
          let smi = v.smi_pending in
          if smi then begin
            c ctx 33;
            v.smi_pending <- false
          end;
          if v.nmi_pending then begin
            c ctx 800;
            v.nmi_pending <- false
          end;
          if v.regs_set then c ctx 801;
          if vm.tss_addr <> None then c ctx 802;
          if v.guest_debug then c ctx 34;
          if vm.irqchip then c ctx 35;
          if v.cap_enabled then c ctx 36;
          (* The vcpu-run fast path specializes on the assembled VM
             configuration: each combination is its own inlined
             dispatch block. *)
          let combo =
            (if v.lapic_set then 1 else 0)
            lor (if vm.irqchip then 2 else 0)
            lor (if v.guest_debug then 4 else 0)
            lor (if smi then 8 else 0)
            lor if v.cap_enabled then 16 else 0
          in
          c ctx (100 + combo);
          c ctx (140 + min 7 (List.length vm.memslots));
          c ctx (150 + min 7 v.runs);
          if vm.coalesced_zones <> [] then c ctx (160 + min 7 (List.length vm.io_bus_devs));
          (* Product space: configuration x progress ladder. Each run
             of a differently-assembled VM retires a distinct block,
             like the emulator's specialized exit handlers. *)
          let ladder = min 15 ((2 * List.length vm.memslots) + v.runs) in
          c ctx (256 + (combo * 16) + ladder);
          Ctx.ok0
        end)

let h_create_irqchip ctx args =
  c ctx 38;
  with_vm ctx args (fun _ vm ->
      if vm.irqchip then begin
        c ctx 39;
        Ctx.err Errno.EEXIST
      end
      else begin
        c ctx 40;
        vm.irqchip <- true;
        Ctx.ok0
      end)

let h_irq_line ctx args =
  c ctx 42;
  with_vm ctx args (fun _ vm ->
      if not vm.irqchip then begin
        c ctx 43;
        Ctx.err Errno.ENXIO
      end
      else begin
        c ctx 44;
        (* Raising a line while the Hyper-V SynIC routing table is
           stale dereferences the freed table (5.11). *)
        if vm.hv_routing_stale then begin
          c ctx 45;
          Ctx.bug ctx "kvm_hv_irq_routing_update"
        end;
        let level = Arg.as_int (Arg.field (Arg.nth args 2) 1) in
        if Int64.compare level 0L = 0 then c ctx 46 else c ctx 47;
        Ctx.ok0
      end)

let h_set_gsi_routing ctx args =
  c ctx 49;
  with_vm ctx args (fun _ vm ->
      if not vm.irqchip then begin
        c ctx 50;
        Ctx.err Errno.ENXIO
      end
      else begin
        c ctx 51;
        let nr = Arg.as_int (Arg.field (Arg.nth args 2) 0) in
        (* An empty HV route set frees the old table without
           republishing a new one. *)
        if Int64.compare nr 0L = 0 then begin
          c ctx 52;
          vm.hv_routing_stale <- true
        end
        else vm.hv_routing_stale <- false;
        Ctx.ok0
      end)

let h_set_lapic ctx args =
  c ctx 54;
  with_vcpu ctx args (fun _ v ->
      match vm_of_vcpu ctx v with
      | Some vm when not vm.irqchip ->
        c ctx 55;
        (* Setting LAPIC state with no in-kernel irqchip trips a
           WARN_ON in the arch ioctl. *)
        Ctx.bug ctx "kvm_arch_vcpu_ioctl_warn";
        Ctx.err Errno.EINVAL
      | Some _ ->
        c ctx 56;
        v.lapic_set <- true;
        Ctx.ok0
      | None ->
        c ctx 57;
        Ctx.err Errno.ENODEV)

let h_enable_cap ctx args =
  c ctx 59;
  with_vcpu ctx args (fun _ v ->
      let cap = Arg.as_int (Arg.field (Arg.nth args 2) 0) in
      if Int64.compare cap 64L > 0 then begin
        c ctx 60;
        Ctx.err Errno.EINVAL
      end
      else begin
        c ctx 61;
        v.cap_enabled <- true;
        Ctx.ok0
      end)

let h_smi ctx args =
  c ctx 63;
  with_vcpu ctx args (fun _ v ->
      c ctx 64;
      v.smi_pending <- true;
      Ctx.ok0)

let h_set_guest_debug ctx args =
  c ctx 66;
  with_vcpu ctx args (fun _ v ->
      let control = Arg.as_int (Arg.field (Arg.nth args 2) 0) in
      if Int64.logand control 1L = 0L then begin
        c ctx 67;
        v.guest_debug <- false;
        Ctx.ok0
      end
      else begin
        c ctx 68;
        v.guest_debug <- true;
        Ctx.ok0
      end)

let h_register_coalesced ctx args =
  c ctx 70;
  with_vm ctx args (fun _ vm ->
      let addr = Arg.as_int (Arg.field (Arg.nth args 2) 0) in
      c ctx 71;
      vm.coalesced_zones <- addr :: vm.coalesced_zones;
      Ctx.ok0)

let h_unregister_coalesced ctx args =
  c ctx 73;
  with_vm ctx args (fun _ vm ->
      let addr = Arg.as_int (Arg.field (Arg.nth args 2) 0) in
      if List.mem addr vm.coalesced_zones then begin
        c ctx 74;
        vm.coalesced_zones <- List.filter (fun a -> a <> addr) vm.coalesced_zones;
        Ctx.ok0
      end
      else if vm.coalesced_zones <> [] then begin
        (* Unregistering a zone that was never registered while others
           exist walks off the zone list (GPF, 5.11). *)
        c ctx 75;
        Ctx.bug ctx "kvm_vm_ioctl_unregister_coalesced_mmio";
        Ctx.err Errno.ENXIO
      end
      else begin
        c ctx 76;
        Ctx.err Errno.ENXIO
      end)

let h_ioeventfd ctx args =
  c ctx 78;
  with_vm ctx args (fun _ vm ->
      let r = Arg.nth args 2 in
      let addr = Arg.as_int (Arg.field r 0) in
      let deassign = Int64.logand (Arg.as_int (Arg.field r 1)) 4L <> 0L in
      if deassign then
        if List.mem addr vm.io_bus_devs then begin
          c ctx 79;
          vm.io_bus_devs <- List.filter (fun a -> a <> addr) vm.io_bus_devs;
          Ctx.ok0
        end
        else if List.length vm.io_bus_devs >= 1 then begin
          (* Failed unregister leaks the bus copy (5.11). *)
          c ctx 80;
          Ctx.bug ctx "kvm_io_bus_unregister_dev";
          Ctx.err Errno.ENOENT
        end
        else begin
          c ctx 81;
          Ctx.err Errno.ENOENT
        end
      else begin
        c ctx 82;
        vm.io_bus_devs <- addr :: vm.io_bus_devs;
        Ctx.ok0
      end)

(* ---- register access, NMI, TSS, dirty log ---- *)

let h_get_regs ctx args =
  c ctx 804;
  with_vcpu ctx args (fun _ v ->
      c ctx 805;
      if v.runs > 0 then c ctx 806;
      Ctx.ok0)

let h_set_regs ctx args =
  c ctx 808;
  with_vcpu ctx args (fun _ v ->
      let rip = Arg.as_int (Arg.field (Arg.nth args 2) 0) in
      c ctx 809;
      v.regs_set <- true;
      if Int64.compare rip 0x100000L > 0 then c ctx 810;
      Ctx.ok0)

let h_nmi ctx args =
  c ctx 812;
  with_vcpu ctx args (fun _ v ->
      c ctx 813;
      v.nmi_pending <- true;
      Ctx.ok0)

let h_set_tss_addr ctx args =
  c ctx 815;
  with_vm ctx args (fun _ vm ->
      let addr = Arg.as_int (Arg.nth args 2) in
      if Int64.logand addr 0xfffL <> 0L then begin
        c ctx 816;
        Ctx.err Errno.EINVAL (* must be page aligned *)
      end
      else if vm.tss_addr <> None then begin
        c ctx 817;
        Ctx.err Errno.EEXIST
      end
      else begin
        c ctx 818;
        vm.tss_addr <- Some addr;
        Ctx.ok0
      end)

let h_get_dirty_log ctx args =
  c ctx 820;
  with_vm ctx args (fun _ vm ->
      let slot = Arg.as_int (Arg.field (Arg.nth args 2) 0) in
      if not (List.mem slot vm.dirty_log_slots) then begin
        (* The slot exists but was not created with
           KVM_MEM_LOG_DIRTY_PAGES. *)
        c ctx 821;
        Ctx.err Errno.ENOENT
      end
      else begin
        c ctx 822;
        c ctx (824 + min 7 (List.length vm.memslots));
        Ctx.ok0
      end)

let descriptions =
  {|
# KVM virtualization.
resource fd_kvm[fd]
resource fd_kvm_vm[fd]
resource fd_kvm_vcpu[fd]
flags kvm_mem_flags = 0x0 0x1 0x2
struct kvm_userspace_memory_region { slot int32, mflags flags[kvm_mem_flags], guest_phys_addr int64, memory_size int64, userspace_addr vma }
struct kvm_irq_level { irq int32, level int32 }
struct kvm_gsi_routing { nr int32[0:8], pad int32, entries array[int64, 0:8] }
struct kvm_lapic_state { regs buffer[in] }
struct kvm_enable_cap { cap int32, eflags int32, args int64 }
struct kvm_guest_debug { control int32, pad int32, debugreg int64 }
struct kvm_coalesced_mmio_zone { addr int64, size int32, pad int32 }
struct kvm_ioeventfd { addr int64, ioflags int32, datamatch int32 }
openat$kvm(dirfd fd, file filename["/dev/kvm"], oflags flags[open_flags]) fd_kvm
ioctl$KVM_CREATE_VM(fd fd_kvm, cmd const[0xae01]) fd_kvm_vm
ioctl$KVM_CREATE_VCPU(fd fd_kvm_vm, cmd const[0xae41], id int32[0:8]) fd_kvm_vcpu
ioctl$KVM_SET_USER_MEMORY_REGION(fd fd_kvm_vm, cmd const[0x4020ae46], region ptr[in, kvm_userspace_memory_region])
ioctl$KVM_RUN(fd fd_kvm_vcpu, cmd const[0xae80])
ioctl$KVM_CREATE_IRQCHIP(fd fd_kvm_vm, cmd const[0xae60])
ioctl$KVM_IRQ_LINE(fd fd_kvm_vm, cmd const[0x4008ae61], line ptr[in, kvm_irq_level])
ioctl$KVM_SET_GSI_ROUTING(fd fd_kvm_vm, cmd const[0x4008ae6a], routing ptr[in, kvm_gsi_routing])
ioctl$KVM_SET_LAPIC(fd fd_kvm_vcpu, cmd const[0x4400ae8f], lapic ptr[in, kvm_lapic_state])
ioctl$KVM_ENABLE_CAP_CPU(fd fd_kvm_vcpu, cmd const[0x4068aea3], cap ptr[in, kvm_enable_cap])
ioctl$KVM_SMI(fd fd_kvm_vcpu, cmd const[0xaeb7])
ioctl$KVM_SET_GUEST_DEBUG(fd fd_kvm_vcpu, cmd const[0x4048ae9b], dbg ptr[in, kvm_guest_debug])
ioctl$KVM_REGISTER_COALESCED_MMIO(fd fd_kvm_vm, cmd const[0x4010ae67], zone ptr[in, kvm_coalesced_mmio_zone])
ioctl$KVM_UNREGISTER_COALESCED_MMIO(fd fd_kvm_vm, cmd const[0x4010ae68], zone ptr[in, kvm_coalesced_mmio_zone])
ioctl$KVM_IOEVENTFD(fd fd_kvm_vm, cmd const[0x4040ae79], eventfd ptr[in, kvm_ioeventfd])
struct kvm_regs_sim { rip int64, rsp int64, rflags int64 }
struct kvm_dirty_log_sim { slot int32, pad int32, bitmap vma }
ioctl$KVM_GET_REGS(fd fd_kvm_vcpu, cmd const[0x8090ae81], regs ptr[out, kvm_regs_sim])
ioctl$KVM_SET_REGS(fd fd_kvm_vcpu, cmd const[0x4090ae82], regs ptr[in, kvm_regs_sim])
ioctl$KVM_NMI(fd fd_kvm_vcpu, cmd const[0xae9a])
ioctl$KVM_SET_TSS_ADDR(fd fd_kvm_vm, cmd const[0xae47], addr intptr)
ioctl$KVM_GET_DIRTY_LOG(fd fd_kvm_vm, cmd const[0x4010ae42], log ptr[inout, kvm_dirty_log_sim])
|}

let copy_kind : State.fd_kind -> State.fd_kind option = function
  | Kvm_sys -> Some Kvm_sys
  | Kvm_vm v -> Some (Kvm_vm { v with vcpus = v.vcpus })
  | Kvm_vcpu c -> Some (Kvm_vcpu { c with runs = c.runs })
  | _ -> None

let sub =
  Subsystem.make ~name:"kvm" ~descriptions ~copy_kind
    ~handlers:
      [
        ("openat$kvm", h_open_kvm);
        ("ioctl$KVM_CREATE_VM", h_create_vm);
        ("ioctl$KVM_CREATE_VCPU", h_create_vcpu);
        ("ioctl$KVM_SET_USER_MEMORY_REGION", h_set_memory_region);
        ("ioctl$KVM_RUN", h_run);
        ("ioctl$KVM_CREATE_IRQCHIP", h_create_irqchip);
        ("ioctl$KVM_IRQ_LINE", h_irq_line);
        ("ioctl$KVM_SET_GSI_ROUTING", h_set_gsi_routing);
        ("ioctl$KVM_SET_LAPIC", h_set_lapic);
        ("ioctl$KVM_ENABLE_CAP_CPU", h_enable_cap);
        ("ioctl$KVM_SMI", h_smi);
        ("ioctl$KVM_SET_GUEST_DEBUG", h_set_guest_debug);
        ("ioctl$KVM_REGISTER_COALESCED_MMIO", h_register_coalesced);
        ("ioctl$KVM_UNREGISTER_COALESCED_MMIO", h_unregister_coalesced);
        ("ioctl$KVM_IOEVENTFD", h_ioeventfd);
        ("ioctl$KVM_GET_REGS", h_get_regs);
        ("ioctl$KVM_SET_REGS", h_set_regs);
        ("ioctl$KVM_NMI", h_nmi);
        ("ioctl$KVM_SET_TSS_ADDR", h_set_tss_addr);
        ("ioctl$KVM_GET_DIRTY_LOG", h_get_dirty_log);
      ]
    ()
