module Target = Healer_syzlang.Target
module Syscall = Healer_syzlang.Syscall

type t = {
  st : State.t;
  san : Sanitizer.config;
  features : string list;
}

(* Subsystem list: extended as subsystems are implemented. Order
   matters only for description concatenation (resource declarations
   must precede uses, so [vfs] comes first). *)
let all_subsystems =
  lazy
    (let subs =
       [
         Vfs.sub; Memfd.sub; Sock.sub; Kvm.sub; Tty.sub; Fbdev.sub; Rdma.sub;
         Uring.sub; Blockdev.sub; Sock_misc.sub; Netdev.sub; Netlink.sub;
         Jfs.sub;
         Mounts.sub; Vivid.sub; Usb.sub; Ipc.sub; Bpf.sub; Inotify.sub;
         Compat.sub;
       ]
     in
     List.iter Subsystem.register subs;
     Subsystem.registered ())

let subsystems () = Lazy.force all_subsystems

(* The full description corpus, one subsystem after another. Line
   numbers in the concatenation are resolvable back to a subsystem via
   [locate_line]. *)
let source () =
  String.concat "\n"
    (List.map (fun (s : Subsystem.t) -> s.descriptions) (subsystems ()))

let count_lines s =
  1 + String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 s

(* (subsystem, first global line, line count) per description block,
   sorted by start line — diagnostics resolve lines by binary search,
   like [Coverage.region_name] does for branch ids. *)
let line_index =
  lazy
    (let rec build start = function
       | [] -> []
       | (s : Subsystem.t) :: rest ->
         let n = count_lines s.descriptions in
         (s.name, start, n) :: build (start + n) rest
     in
     Array.of_list (build 1 (subsystems ())))

let locate_line global =
  let index = Lazy.force line_index in
  (* Greatest block whose start is <= global. *)
  let rec search lo hi best =
    if lo > hi then best
    else
      let mid = (lo + hi) / 2 in
      let _, start, _ = index.(mid) in
      if start <= global then search (mid + 1) hi (Some index.(mid))
      else search lo (mid - 1) best
  in
  match search 0 (Array.length index - 1) None with
  | Some (name, start, n) when global < start + n ->
    Some (name, global - start + 1)
  | Some _ | None -> None

let target_memo = ref None

let target () =
  match !target_memo with
  | Some t -> t
  | None ->
    let t = Target.of_string ~name:"healer-sim" (source ()) in
    target_memo := Some t;
    t

let handler_table =
  lazy
    (let tbl = Hashtbl.create 256 in
     List.iter
       (fun (s : Subsystem.t) ->
         List.iter
           (fun (name, h) ->
             if Hashtbl.mem tbl name then
               invalid_arg ("Kernel: duplicate handler for " ^ name);
             Hashtbl.add tbl name h)
           s.handlers)
       (subsystems ());
     tbl)

let subsystem_index =
  lazy
    (let tbl = Hashtbl.create 256 in
     List.iter
       (fun (s : Subsystem.t) ->
         List.iter (fun (name, _) -> Hashtbl.replace tbl name s.name) s.handlers)
       (subsystems ());
     tbl)

let subsystem_of name =
  match Hashtbl.find_opt (Lazy.force subsystem_index) name with
  | Some s -> s
  | None -> "?"

let boot ?(san = Sanitizer.default) ?(features = []) ~version () =
  let st = State.create ~version in
  List.iter (fun (s : Subsystem.t) -> s.init st) (subsystems ());
  { st; san; features }

let reboot k = boot ~san:k.san ~features:k.features ~version:(State.version k.st) ()

(* Copier dispatch memos. Walking all ~20 subsystems per fd kind and
   per global made [copy] dispatch-bound (the prefix cache copies
   snapshots on every resumed probe). The owning subsystem of an fd
   kind is a function of its extension constructor, and of a global a
   function of its name, so both resolve once and memoize. The tables
   are process-global and kernels are copied from parallel campaign
   domains — a mutex serializes access (the copy itself is far more
   expensive than an uncontended lock). *)
let copier_mutex = Mutex.create ()
let kind_copier : (Obj.Extension_constructor.t, Subsystem.t) Hashtbl.t =
  Hashtbl.create 32
let global_copier : (string, Subsystem.t) Hashtbl.t = Hashtbl.create 32

let copy_fd_kind k =
  match k with
  | State.Dead -> State.Dead
  | _ -> (
    let ec = Obj.Extension_constructor.of_val k in
    Mutex.lock copier_mutex;
    let owner = Hashtbl.find_opt kind_copier ec in
    Mutex.unlock copier_mutex;
    match owner with
    | Some s -> (
      match s.Subsystem.copy_kind k with
      | Some k' -> k'
      | None -> invalid_arg "Kernel.copy: fd kind copier became partial")
    | None ->
      let rec go = function
        | [] -> invalid_arg "Kernel.copy: fd kind with no subsystem copier"
        | (s : Subsystem.t) :: rest -> (
          match s.Subsystem.copy_kind k with
          | Some k' ->
            Mutex.lock copier_mutex;
            Hashtbl.replace kind_copier ec s;
            Mutex.unlock copier_mutex;
            k'
          | None -> go rest)
      in
      go (subsystems ()))

let copy_global name g =
  Mutex.lock copier_mutex;
  let owner = Hashtbl.find_opt global_copier name in
  Mutex.unlock copier_mutex;
  match owner with
  | Some s -> (
    match s.Subsystem.copy_global g with
    | Some g' -> g'
    | None -> invalid_arg ("Kernel.copy: global copier became partial: " ^ name))
  | None ->
    let rec go = function
      | [] -> invalid_arg ("Kernel.copy: no subsystem copier for global " ^ name)
      | (s : Subsystem.t) :: rest -> (
        match s.Subsystem.copy_global g with
        | Some g' ->
          Mutex.lock copier_mutex;
          Hashtbl.replace global_copier name s;
          Mutex.unlock copier_mutex;
          g'
        | None -> go rest)
    in
    go (subsystems ())

let copy k =
  { k with st = State.copy ~copy_kind:copy_fd_kind ~copy_global k.st }

(* The assembled lock model: every registered class (subsystem modules
   register theirs at module-init time, which [subsystems ()] forces)
   plus every subsystem's declared handler specs. *)
let lock_model_memo =
  lazy
    (let subs = subsystems () in
     {
       Lock.classes = Lock.registered ();
       specs =
         List.concat_map
           (fun (s : Subsystem.t) ->
             List.map (fun (h, spec) -> (s.Subsystem.name, h, spec)) s.Subsystem.locks)
           subs;
     })

let lock_model () = Lazy.force lock_model_memo

(* The assembled effect model: the interned slot vocabulary (subsystem
   modules intern theirs at module-init time, which [subsystems ()]
   forces) unioned with every lock class's guarded slots, plus every
   subsystem's declared effect specs. *)
let effect_model_memo =
  lazy
    (let subs = subsystems () in
     {
       Effect.slots =
         List.sort_uniq compare
           (Effect.registered_slots ()
           @ List.concat_map
               (fun (c : Lock.cls) -> c.Lock.guards)
               (Lock.registered ()));
       especs =
         List.concat_map
           (fun (s : Subsystem.t) ->
             List.map
               (fun (h, sp) -> (s.Subsystem.name, h, sp))
               s.Subsystem.effects)
           subs;
     })

let effect_model () = Lazy.force effect_model_memo

(* Validate the access trace the current call just recorded against
   the handler's declared effect spec (HEALER_DEBUG_VALIDATE, same
   contract as the lock-trace check below). *)
let check_effect_trace st ~sub ~handler =
  let events =
    List.map (fun (w, s) -> (w, Effect.slot_name s)) (State.effect_trace st)
  in
  match Effect.check_trace (effect_model ()) ~subsystem:sub ~handler events with
  | [] -> ()
  | f :: _ -> raise (Effect.Violation f)

let split_pair key =
  (* "lock:pair:A->B" -> (A, B) *)
  let body =
    String.sub key
      (String.length Lock.pair_prefix)
      (String.length key - String.length Lock.pair_prefix)
  in
  match String.index_opt body '-' with
  | Some i when i + 1 < String.length body && body.[i + 1] = '>' ->
    (String.sub body 0 i, String.sub body (i + 2) (String.length body - i - 2))
  | _ -> (body, "")

let lock_pair_counts k =
  List.filter_map
    (fun (slot, v) ->
      let key = Lock.slot_name slot in
      if String.starts_with ~prefix:Lock.pair_prefix key then
        Some (split_pair key, v)
      else None)
    (State.lock_slot_counts k.st)
  |> List.sort compare

let lock_acquire_counts k =
  List.filter_map
    (fun (slot, v) ->
      let key = Lock.slot_name slot in
      if String.starts_with ~prefix:Lock.acq_prefix key then
        Some
          ( String.sub key
              (String.length Lock.acq_prefix)
              (String.length key - String.length Lock.acq_prefix),
            v )
      else None)
    (State.lock_slot_counts k.st)
  |> List.sort compare

let effect_counts k =
  List.map
    (fun (slot, r, w) -> (Effect.slot_name slot, r, w))
    (State.effect_slot_counts k.st)
  |> List.sort compare
let version k = State.version k.st
let state k = k.st
let sanitizers k = k.san
let features k = k.features

(* Settle every piece of process-global kernel state — the subsystem
   registry, the memoized target, the lazy dispatch tables, the crash
   symbol table and the coverage-region lookup array — while still
   single-domain. After this returns, all of that state is read-only,
   so campaigns may run in parallel domains against it. *)
let force_init () =
  ignore (subsystems ());
  ignore (target ());
  ignore (Lazy.force handler_table);
  ignore (Lazy.force subsystem_index);
  ignore (Lazy.force line_index);
  ignore (lock_model ());
  ignore (effect_model ());
  Lock.force_pairs ();
  Crash.preload ();
  Coverage.force_regions ()

let blk = Coverage.region ~name:"core" ~size:64

let exec_call k ?(fault = false) ~cov (call : Syscall.t) args =
  let ctx = Ctx.make ~features:k.features ~st:k.st ~san:k.san cov in
  ctx.Ctx.fault_pending <- fault;
  State.reset_effect_trace k.st;
  ignore (State.tick k.st);
  Coverage.hit cov (blk + 0);
  match Hashtbl.find_opt (Lazy.force handler_table) call.Syscall.name with
  | None ->
    Coverage.hit cov (blk + 1);
    Ctx.err Errno.ENOSYS
  | Some h ->
    (* A fault-injected allocation failure short-circuits the call
       itself with ENOMEM on a dedicated branch when the handler has
       not consumed the fault explicitly. *)
    let r = h ctx args in
    (* Runtime lockdep (the HEALER_DEBUG_VALIDATE contract): the trace
       this call actually recorded must match the handler's declared
       spec and the global order graph — the static model can never
       drift from handler behavior. Skipped when a Crash aborted the
       call ([Fun.protect] in [Ctx.with_lock] still released
       everything). *)
    if Lock.validate_enabled () then begin
      match
        Lock.check_trace (lock_model ())
          ~subsystem:(subsystem_of call.Syscall.name)
          ~handler:call.Syscall.name (Ctx.lock_trace ctx)
      with
      | [] -> ()
      | f :: _ -> raise (Lock.Violation f)
    end;
    (* Same contract for the observed effect trace: every state slot
       this call read or wrote must appear in the handler's declared
       effect spec. *)
    if Effect.validate_enabled () then
      check_effect_trace k.st
        ~sub:(subsystem_of call.Syscall.name)
        ~handler:call.Syscall.name;
    if Ctx.take_fault ctx then begin
      Coverage.hit cov (blk + 2);
      Ctx.err Errno.ENOMEM
    end
    else r

(* ---- prepared (compiled) execution ---- *)

(* A call with its dispatch pre-resolved: the compiled executor looks
   the handler and owning subsystem up once per program instead of
   hashing the syscall name on every execution. Must stay in lockstep
   with [exec_call] — the HEALER_DEBUG_VALIDATE differential oracle in
   the executor compares the two paths call-for-call. *)
type prepared = {
  p_name : string;
  p_sub : string;  (* owning subsystem, for the lockdep validator *)
  p_handler : Subsystem.handler option;  (* None -> ENOSYS *)
}

let prepare (call : Syscall.t) =
  let name = call.Syscall.name in
  {
    p_name = name;
    p_sub = subsystem_of name;
    p_handler = Hashtbl.find_opt (Lazy.force handler_table) name;
  }

let make_ctx k cov = Ctx.make ~features:k.features ~st:k.st ~san:k.san cov

let exec_prepared k ~ctx ?(fault = false) prep args =
  Ctx.recycle ctx;
  ctx.Ctx.fault_pending <- fault;
  let cov = ctx.Ctx.cov in
  State.reset_effect_trace k.st;
  ignore (State.tick k.st);
  Coverage.hit cov (blk + 0);
  match prep.p_handler with
  | None ->
    Coverage.hit cov (blk + 1);
    Ctx.err Errno.ENOSYS
  | Some h ->
    let r = h ctx args in
    if Lock.validate_enabled () then begin
      match
        Lock.check_trace (lock_model ()) ~subsystem:prep.p_sub
          ~handler:prep.p_name (Ctx.lock_trace ctx)
      with
      | [] -> ()
      | f :: _ -> raise (Lock.Violation f)
    end;
    if Effect.validate_enabled () then
      check_effect_trace k.st ~sub:prep.p_sub ~handler:prep.p_name;
    if Ctx.take_fault ctx then begin
      Coverage.hit cov (blk + 2);
      Ctx.err Errno.ENOMEM
    end
    else r

let coredump k ~cov =
  let ctx = Ctx.make ~features:k.features ~st:k.st ~san:k.san cov in
  Coverage.hit cov (blk + 8);
  (* fill_note / regset walk of binfmt_elf core dumping. *)
  Coverage.hit cov (blk + 9);
  let live = State.live_fds k.st in
  if List.length live >= 1 then begin
    Coverage.hit cov (blk + 10);
    (* Listing 2: a regset with an unfilled tail leaves kmalloc'ed
       memory uninitialized and dumps it to the core file. *)
    Ctx.bug ctx "fill_thread_core_info"
  end
  else Coverage.hit cov (blk + 11)
