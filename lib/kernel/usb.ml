type usbdev = { mutable configured : bool; mutable disconnected : bool }

type State.fd_kind += Usbdev of usbdev

let blk = Coverage.region ~name:"usb" ~size:128
let c ctx o = Ctx.cover ctx (blk + o)

let gated ctx k =
  if not (Ctx.has_feature ctx "usb") then begin
    c ctx 0;
    Ctx.err Errno.ENOSYS
  end
  else k ()

let h_connect ctx args =
  gated ctx (fun () ->
      c ctx 2;
      let desc = Arg.as_buf (Arg.nth args 0) in
      let n = Bytes.length desc in
      if n < 18 then begin
        c ctx 3;
        Ctx.err Errno.EINVAL
      end
      else begin
        c ctx 4;
        (* A config descriptor whose declared total length exceeds the
           payload walks past the buffer. *)
        if n >= 20 && Char.code (Bytes.get desc 19) > 0x40 then begin
          c ctx 5;
          Ctx.bug ctx "usb_parse_configuration_oob"
        end;
        let entry =
          State.alloc_fd ctx.Ctx.st (Usbdev { configured = true; disconnected = false })
        in
        Ctx.ok (Int64.of_int entry.State.fd)
      end)

let with_usb ctx args k =
  match State.lookup_fd ctx.Ctx.st (Arg.as_fd (Arg.nth args 0)) with
  | Some { kind = Usbdev u; _ } -> k u
  | Some _ -> (c ctx 7; Ctx.err Errno.ENODEV)
  | None -> (c ctx 8; Ctx.err Errno.EBADF)

let h_disconnect ctx args =
  gated ctx (fun () ->
      c ctx 10;
      with_usb ctx args (fun u ->
          if u.disconnected then begin
            c ctx 11;
            Ctx.err Errno.ENODEV
          end
          else begin
            c ctx 12;
            u.disconnected <- true;
            Ctx.ok0
          end))

let h_control_io ctx args =
  gated ctx (fun () ->
      c ctx 14;
      with_usb ctx args (fun u ->
          if u.disconnected then begin
            (* Port state read after hub teardown (hub_activate). *)
            c ctx 15;
            Ctx.bug ctx "hub_activate_uaf";
            Ctx.err Errno.ENODEV
          end
          else begin
            let req = Arg.nth args 1 in
            let rtype = Arg.as_int (Arg.field req 0) in
            c ctx 16;
            (* A class-specific request before the gadget bound its
               function dereferences the NULL driver data. *)
            if Int64.compare rtype 0x21L = 0 && u.configured then begin
              c ctx 17;
              Ctx.bug ctx "gadget_setup_null"
            end;
            Ctx.ok0
          end))

let descriptions =
  {|
# USB emulation pseudo-calls.
resource fd_usb[fd]
struct usb_ctrl_req { request_type int32, request int32, value int32, index int32 }
syz_usb_connect(desc buffer[in]) fd_usb
syz_usb_disconnect(fd fd_usb)
syz_usb_control_io(fd fd_usb, req ptr[in, usb_ctrl_req])
|}

let copy_kind : State.fd_kind -> State.fd_kind option = function
  | Usbdev d -> Some (Usbdev { d with configured = d.configured })
  | _ -> None

let sub =
  Subsystem.make ~name:"usb" ~descriptions ~copy_kind
    ~handlers:
      [
        ("syz_usb_connect", h_connect);
        ("syz_usb_disconnect", h_disconnect);
        ("syz_usb_control_io", h_control_io);
      ]
    ()
