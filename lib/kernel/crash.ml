exception Crash of { bug_key : string; risk : Risk.t }

type report = {
  bug_key : string;
  risk : Risk.t;
  call_index : int;
  call_name : string;
  log : string;
}

(* FNV-1a, stable across runs (unlike Hashtbl.hash we own the bits). *)
let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let text_base = 0xffffffff81000000L

let address_of key =
  Int64.add text_base (Int64.logand (fnv1a key) 0xffffffL)

let header_of_risk (risk : Risk.t) =
  match risk with
  | Risk.Use_after_free -> "BUG: KASAN: use-after-free in"
  | Risk.Out_of_bounds -> "BUG: KASAN: slab-out-of-bounds in"
  | Risk.Uninit_value -> "BUG: KMSAN: uninit-value in"
  | Risk.Memory_leak -> "BUG: memory leak in"
  | Risk.Data_race -> "BUG: KCSAN: data-race in"
  | Risk.Null_ptr_deref -> "BUG: kernel NULL pointer dereference in"
  | Risk.General_protection_fault -> "general protection fault in"
  | Risk.Paging_fault -> "BUG: unable to handle page fault in"
  | Risk.Divide_error -> "divide error in"
  | Risk.Kernel_bug -> "kernel BUG in"
  | Risk.Deadlock -> "INFO: task hung, possible deadlock in"
  | Risk.Inconsistent_lock_state -> "inconsistent lock state in"
  | Risk.Refcount_bug -> "refcount_t: underflow; use-after-free in"

let risk_of_header line =
  let has prefix = String.length line >= String.length prefix
                   && String.sub line 0 (String.length prefix) = prefix in
  if has "BUG: KASAN: use-after-free" then Some Risk.Use_after_free
  else if has "BUG: KASAN: slab-out-of-bounds" then Some Risk.Out_of_bounds
  else if has "BUG: KMSAN: uninit-value" then Some Risk.Uninit_value
  else if has "BUG: memory leak" then Some Risk.Memory_leak
  else if has "BUG: KCSAN: data-race" then Some Risk.Data_race
  else if has "BUG: kernel NULL pointer dereference" then Some Risk.Null_ptr_deref
  else if has "general protection fault" then Some Risk.General_protection_fault
  else if has "BUG: unable to handle page fault" then Some Risk.Paging_fault
  else if has "divide error" then Some Risk.Divide_error
  else if has "kernel BUG" then Some Risk.Kernel_bug
  else if has "INFO: task hung" then Some Risk.Deadlock
  else if has "inconsistent lock state" then Some Risk.Inconsistent_lock_state
  else if has "refcount_t" then Some Risk.Refcount_bug
  else None

(* Filler frames make the log realistic enough that naive parsing (grab
   the first address) would symbolize the wrong frame; triage must use
   the RIP line, as real syzkaller-style symbolization does. *)
let render_log ~bug_key ~risk ~call_name =
  let addr = address_of bug_key in
  let noise1 = Int64.add text_base (Int64.logand (fnv1a (bug_key ^ ":t")) 0xffffffL) in
  let noise2 = Int64.add text_base (Int64.logand (fnv1a (bug_key ^ ":u")) 0xffffffL) in
  String.concat "\n"
    [
      Printf.sprintf "%s 0x%Lx" (header_of_risk risk) addr;
      Printf.sprintf "CPU: 0 PID: 4021 Comm: executor Not tainted (sim)";
      Printf.sprintf "RIP: 0010:0x%Lx" addr;
      "Call Trace:";
      Printf.sprintf " 0x%Lx" noise1;
      Printf.sprintf " 0x%Lx" noise2;
      Printf.sprintf " entry_SYSCALL_64 (%s)" call_name;
      "---[ end trace ]---";
    ]

(* Symbol table: address -> bug key, built from the catalog. *)
let symbols =
  lazy
    (let tbl = Hashtbl.create 128 in
     List.iter
       (fun (b : Bug.t) -> Hashtbl.replace tbl (address_of b.key) b.key)
       Bug.catalog;
     tbl)

let preload () = ignore (Lazy.force symbols)

let find_line pred log =
  List.find_opt pred (String.split_on_char '\n' log)

let symbolize log =
  let lines = String.split_on_char '\n' log in
  match lines with
  | [] -> None
  | header :: _ -> (
    match risk_of_header header with
    | None -> None
    | Some risk -> (
      let rip =
        find_line
          (fun l ->
            String.length l > 4 && String.sub l 0 4 = "RIP:")
          log
      in
      match rip with
      | None -> None
      | Some line -> (
        (* RIP: 0010:0xffffffff81xxxxxx *)
        match String.index_opt line 'x' with
        | None -> None
        | Some _ ->
          let addr_str =
            match String.rindex_opt line ':' with
            | Some i -> String.sub line (i + 1) (String.length line - i - 1)
            | None -> line
          in
          (try
             let addr = Int64.of_string (String.trim addr_str) in
             match Hashtbl.find_opt (Lazy.force symbols) addr with
             | Some key -> Some (key, risk)
             | None -> None
           with Failure _ -> None))))

let signature r = Risk.to_string r.risk ^ ":" ^ r.bug_key

let pp_report ppf r =
  Fmt.pf ppf "%s at call %d (%s): %s" r.bug_key r.call_index r.call_name
    (Risk.to_string r.risk)
