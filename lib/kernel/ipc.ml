type eventfd = { mutable counter : int64 }
type timerfd = { mutable armed : bool; mutable interval : int64 }

type shm = {
  shm_size : int64;
  mutable attached : int;
  mutable rmid_pending : bool;
  mutable shm_destroyed : bool;
}

type sem = { mutable values : int array; mutable sem_destroyed : bool }
type msgq = { mutable depth : int; mutable bytes : int; mutable q_destroyed : bool }

type tables = {
  shms : (int64, shm) Hashtbl.t;
  sems : (int64, sem) Hashtbl.t;
  msgs : (int64, msgq) Hashtbl.t;
}

type State.fd_kind += Eventfd of eventfd | Timerfd of timerfd
type State.global += Ipc of tables

let blk = Coverage.region ~name:"ipc" ~size:512

(* One class over the shm/sem/msg id tables (ipc_ids.rwsem writ
   large) and the eventfd/timerfd per-instance payloads. *)
let ipc_ids =
  Lock.register ~rank:50 ~guards:[ "ipc"; "fd:eventfd"; "fd:timerfd" ] "ipc_ids"
let c ctx o = Ctx.cover ctx (blk + o)

(* Effect slots: the SysV id tables plus the eventfd/timerfd payloads.
   eventfd/timerfd_create allocations are exempt (fresh payload). *)
let s_ipc = Effect.slot "ipc"
let s_fd_eventfd = Effect.slot "fd:eventfd"
let s_fd_timerfd = Effect.slot "fd:timerfd"

let init st =
  State.set_global st "ipc"
    (Ipc { shms = Hashtbl.create 8; sems = Hashtbl.create 8; msgs = Hashtbl.create 8 })

let ipc_of st =
  State.record_read st s_ipc;
  match State.global st "ipc" with
  | Some (Ipc t) -> t
  | Some _ | None -> failwith "ipc: state not initialized"

let fresh_id st = Int64.of_int (State.incr_counter st "ipc.next_id")

(* ---- eventfd / timerfd ---- *)

let h_eventfd ctx args =
  let initval = Arg.as_int (Arg.nth args 0) in
  c ctx 0;
  if Int64.compare initval 0L < 0 then begin
    c ctx 1;
    Ctx.err Errno.EINVAL
  end
  else begin
    c ctx 2;
    let entry = State.alloc_fd ctx.Ctx.st (Eventfd { counter = initval }) in
    Ctx.ok (Int64.of_int entry.State.fd)
  end

let h_timerfd_create ctx args =
  let clockid = Arg.as_int (Arg.nth args 0) in
  c ctx 4;
  if Int64.compare clockid 0L < 0 || Int64.compare clockid 11L > 0 then begin
    c ctx 5;
    Ctx.err Errno.EINVAL
  end
  else begin
    c ctx 6;
    let entry = State.alloc_fd ctx.Ctx.st (Timerfd { armed = false; interval = 0L }) in
    Ctx.ok (Int64.of_int entry.State.fd)
  end

let h_timerfd_settime ctx args =
  c ctx 8;
  match State.lookup_fd ctx.Ctx.st (Arg.as_fd (Arg.nth args 0)) with
  | Some { kind = Timerfd tm; _ } ->
    State.record_read ctx.Ctx.st s_fd_timerfd;
    let interval = Arg.as_int (Arg.field (Arg.nth args 2) 0) in
    if Int64.compare interval 0L < 0 then begin
      c ctx 9;
      Ctx.err Errno.EINVAL
    end
    else begin
      c ctx 10;
      State.record_write ctx.Ctx.st s_fd_timerfd;
      tm.armed <- Int64.compare interval 0L > 0;
      tm.interval <- interval;
      if tm.armed then c ctx 11 else c ctx 12;
      Ctx.ok0
    end
  | Some _ ->
    c ctx 13;
    Ctx.err Errno.EINVAL
  | None ->
    c ctx 14;
    Ctx.err Errno.EBADF

let event_write ctx (entry : State.fd_entry) args =
  match entry.kind with
  | Eventfd ev ->
    let buf = Arg.as_buf (Arg.nth args 1) in
    c ctx 16;
    if Bytes.length buf < 8 then begin
      c ctx 17;
      Ctx.err Errno.EINVAL
    end
    else begin
      c ctx 18;
      State.record_write ctx.Ctx.st s_fd_eventfd;
      ev.counter <- Int64.add ev.counter 1L;
      c ctx (32 + Int64.to_int (Int64.min ev.counter 15L));
      Ctx.ok 8L
    end
  | _ -> Ctx.err Errno.EINVAL

let event_read ctx (entry : State.fd_entry) args =
  match entry.kind with
  | Eventfd ev ->
    let count = Arg.as_int (Arg.nth args 2) in
    c ctx 20;
    State.record_read ctx.Ctx.st s_fd_eventfd;
    if Int64.compare count 8L < 0 then begin
      c ctx 21;
      Ctx.err Errno.EINVAL
    end
    else if Int64.compare ev.counter 0L = 0 then begin
      c ctx 22;
      Ctx.err Errno.EAGAIN
    end
    else begin
      c ctx 23;
      State.record_write ctx.Ctx.st s_fd_eventfd;
      ev.counter <- 0L;
      Ctx.ok 8L
    end
  | _ -> Ctx.err Errno.EINVAL

let timer_read ctx (entry : State.fd_entry) _args =
  match entry.kind with
  | Timerfd tm ->
    c ctx 25;
    State.record_read ctx.Ctx.st s_fd_timerfd;
    if not tm.armed then begin
      c ctx 26;
      Ctx.err Errno.EAGAIN
    end
    else begin
      c ctx 27;
      Ctx.ok 8L
    end
  | _ -> Ctx.err Errno.EINVAL

(* ---- SysV shared memory ---- *)

let h_shmget ctx args =
  let size = Arg.as_int (Arg.nth args 1) in
  let ipc = ipc_of ctx.Ctx.st in
  c ctx 30;
  if Int64.compare size 0L <= 0 then begin
    c ctx 31;
    Ctx.err Errno.EINVAL
  end
  else if Hashtbl.length ipc.shms >= 16 then begin
    c ctx 32;
    Ctx.err Errno.ENOSPC
  end
  else begin
    c ctx 33;
    if Int64.compare size 0x100000L > 0 then c ctx 34;
    let id = fresh_id ctx.Ctx.st in
    State.record_write ctx.Ctx.st s_ipc;
    Hashtbl.replace ipc.shms id
      { shm_size = size; attached = 0; rmid_pending = false; shm_destroyed = false };
    Ctx.ok id
  end

let with_shm ctx args k =
  let ipc = ipc_of ctx.Ctx.st in
  let id = Arg.as_int (Arg.nth args 0) in
  match Hashtbl.find_opt ipc.shms id with
  | Some s when not s.shm_destroyed -> k s
  | Some _ | None ->
    c ctx 36;
    Ctx.err Errno.EINVAL

let h_shmat ctx args =
  c ctx 38;
  with_shm ctx args (fun s ->
      if s.rmid_pending then begin
        (* Attaching to a segment already marked for destruction: a
           distinct (legal but deep) path. *)
        c ctx 39;
        Ctx.err Errno.EINVAL
      end
      else begin
        c ctx 40;
        State.record_write ctx.Ctx.st s_ipc;
        s.attached <- s.attached + 1;
        c ctx (48 + min 7 s.attached);
        Ctx.ok 0x7f0001000000L
      end)

let h_shmdt ctx args =
  c ctx 56;
  with_shm ctx args (fun s ->
      if s.attached = 0 then begin
        c ctx 57;
        Ctx.err Errno.EINVAL
      end
      else begin
        c ctx 58;
        State.record_write ctx.Ctx.st s_ipc;
        s.attached <- s.attached - 1;
        (* Deferred destruction completes on the last detach. *)
        if s.rmid_pending && s.attached = 0 then begin
          c ctx 59;
          s.shm_destroyed <- true
        end;
        Ctx.ok0
      end)

let h_shm_rmid ctx args =
  c ctx 61;
  with_shm ctx args (fun s ->
      State.record_write ctx.Ctx.st s_ipc;
      if s.attached > 0 then begin
        c ctx 62;
        s.rmid_pending <- true;
        Ctx.ok0
      end
      else begin
        c ctx 63;
        s.shm_destroyed <- true;
        Ctx.ok0
      end)

(* ---- SysV semaphores ---- *)

let h_semget ctx args =
  let nsems = Int64.to_int (Arg.as_int (Arg.nth args 1)) in
  let ipc = ipc_of ctx.Ctx.st in
  c ctx 66;
  if nsems <= 0 || nsems > 32 then begin
    c ctx 67;
    Ctx.err Errno.EINVAL
  end
  else begin
    c ctx 68;
    let id = fresh_id ctx.Ctx.st in
    State.record_write ctx.Ctx.st s_ipc;
    Hashtbl.replace ipc.sems id
      { values = Array.make nsems 0; sem_destroyed = false };
    Ctx.ok id
  end

let with_sem ctx args k =
  let ipc = ipc_of ctx.Ctx.st in
  let id = Arg.as_int (Arg.nth args 0) in
  match Hashtbl.find_opt ipc.sems id with
  | Some s when not s.sem_destroyed -> k s
  | Some _ | None ->
    c ctx 70;
    Ctx.err Errno.EINVAL

let h_semop ctx args =
  c ctx 72;
  with_sem ctx args (fun s ->
      let op = Arg.nth args 1 in
      let idx = Int64.to_int (Arg.as_int (Arg.field op 0)) in
      let delta = Int64.to_int (Arg.as_int (Arg.field op 1)) in
      if idx < 0 || idx >= Array.length s.values then begin
        c ctx 73;
        Ctx.err Errno.EINVAL
      end
      else begin
        let v = s.values.(idx) + delta in
        if v < 0 then begin
          (* Would block: the simulator fails instead of sleeping. *)
          c ctx 74;
          Ctx.err Errno.EAGAIN
        end
        else begin
          c ctx 75;
          State.record_write ctx.Ctx.st s_ipc;
          s.values.(idx) <- v;
          c ctx (80 + min 7 v);
          Ctx.ok0
        end
      end)

let h_sem_rmid ctx args =
  c ctx 88;
  with_sem ctx args (fun s ->
      c ctx 89;
      State.record_write ctx.Ctx.st s_ipc;
      s.sem_destroyed <- true;
      Ctx.ok0)

(* ---- SysV message queues ---- *)

let h_msgget ctx _args =
  let ipc = ipc_of ctx.Ctx.st in
  c ctx 92;
  let id = fresh_id ctx.Ctx.st in
  State.record_write ctx.Ctx.st s_ipc;
  Hashtbl.replace ipc.msgs id { depth = 0; bytes = 0; q_destroyed = false };
  Ctx.ok id

let with_msgq ctx args k =
  let ipc = ipc_of ctx.Ctx.st in
  let id = Arg.as_int (Arg.nth args 0) in
  match Hashtbl.find_opt ipc.msgs id with
  | Some q when not q.q_destroyed -> k q
  | Some _ | None ->
    c ctx 94;
    Ctx.err Errno.EINVAL

let h_msgsnd ctx args =
  c ctx 96;
  with_msgq ctx args (fun q ->
      let n = Bytes.length (Arg.as_buf (Arg.nth args 1)) in
      if n = 0 then begin
        c ctx 97;
        Ctx.err Errno.EINVAL
      end
      else if q.depth >= 16 || q.bytes + n > 65536 then begin
        c ctx 98;
        Ctx.err Errno.EAGAIN
      end
      else begin
        c ctx 99;
        State.record_write ctx.Ctx.st s_ipc;
        q.depth <- q.depth + 1;
        q.bytes <- q.bytes + n;
        c ctx (104 + min 7 q.depth);
        Ctx.ok0
      end)

let h_msgrcv ctx args =
  c ctx 112;
  with_msgq ctx args (fun q ->
      if q.depth = 0 then begin
        c ctx 113;
        Ctx.err Errno.EAGAIN
      end
      else begin
        c ctx 114;
        State.record_write ctx.Ctx.st s_ipc;
        q.depth <- q.depth - 1;
        Ctx.ok 1L
      end)

let h_msg_rmid ctx args =
  c ctx 116;
  with_msgq ctx args (fun q ->
      c ctx 117;
      if q.depth > 0 then c ctx 118;
      State.record_write ctx.Ctx.st s_ipc;
      q.q_destroyed <- true;
      Ctx.ok0)

let descriptions =
  {|
# IPC: eventfd, timerfd, SysV shm/sem/msg.
resource fd_event[fd]
resource fd_timer[fd]
resource shm_id[int64]: -1
resource sem_id[int64]: -1
resource msg_id[int64]: -1
struct itimerspec_sim { interval int64, value int64 }
struct sembuf_sim { sem_num int16, sem_op int16, sem_flg int16 }
eventfd(initval int32) fd_event
timerfd_create(clockid int32[0:11], tflags const[0]) fd_timer
timerfd_settime(fd fd_timer, tflags const[0], spec ptr[in, itimerspec_sim])
shmget(key intptr, size intptr, shmflg int32) shm_id
shmat(id shm_id, addr vma, shmflg int32)
shmdt(id shm_id)
shmctl$IPC_RMID(id shm_id, cmd const[0])
semget(key intptr, nsems int32[0:32], semflg int32) sem_id
semop(id sem_id, ops ptr[in, sembuf_sim], nops const[1])
semctl$IPC_RMID(id sem_id, semnum const[0], cmd const[0])
msgget(key intptr, msgflg int32) msg_id
msgsnd(id msg_id, buf buffer[in], msgsz len[buf], msgflg int32)
msgrcv(id msg_id, buf buffer[out], msgsz len[buf], msgtyp intptr, msgflg int32)
msgctl$IPC_RMID(id msg_id, cmd const[0])
|}

let applies_event = function Eventfd _ -> true | _ -> false
let applies_timer = function Timerfd _ -> true | _ -> false

let copy_kind : State.fd_kind -> State.fd_kind option = function
  | Eventfd e -> Some (Eventfd { counter = e.counter })
  | Timerfd t -> Some (Timerfd { t with armed = t.armed })
  | _ -> None

let copy_global : State.global -> State.global option = function
  | Ipc t ->
    Some
      (Ipc
         {
           shms =
             State.copy_tbl (fun (s : shm) -> { s with attached = s.attached }) t.shms;
           sems =
             State.copy_tbl
               (fun (s : sem) ->
                 { values = Array.copy s.values; sem_destroyed = s.sem_destroyed })
               t.sems;
           msgs =
             State.copy_tbl (fun (m : msgq) -> { m with depth = m.depth }) t.msgs;
         })
  | _ -> None

let sub =
  let l = Subsystem.locked [ ipc_ids ] in
  let w = Lock.scoped [ "ipc_ids" ] ~touches:[ "ipc" ] in
  let wt = Lock.scoped [ "ipc_ids" ] ~touches:[ "fd:timerfd" ] in
  Subsystem.make ~name:"ipc" ~descriptions ~init ~copy_kind ~copy_global
    ~handlers:
      [
        ("eventfd", h_eventfd);
        ("timerfd_create", h_timerfd_create);
        ("timerfd_settime", l h_timerfd_settime);
        ("shmget", l h_shmget);
        ("shmat", l h_shmat);
        ("shmdt", l h_shmdt);
        ("shmctl$IPC_RMID", l h_shm_rmid);
        ("semget", l h_semget);
        ("semop", l h_semop);
        ("semctl$IPC_RMID", l h_sem_rmid);
        ("msgget", l h_msgget);
        ("msgsnd", l h_msgsnd);
        ("msgrcv", l h_msgrcv);
        ("msgctl$IPC_RMID", l h_msg_rmid);
      ]
    ~locks:
      [
        ("timerfd_settime", wt);
        ("shmget", w);
        ("shmat", w);
        ("shmdt", w);
        ("shmctl$IPC_RMID", w);
        ("semget", w);
        ("semop", w);
        ("semctl$IPC_RMID", w);
        ("msgget", w);
        ("msgsnd", w);
        ("msgrcv", w);
        ("msgctl$IPC_RMID", w);
      ]
    ~effects:
      (let e = Effect.spec ~writes:[ "ipc" ] () in
       [
         ("timerfd_settime", Effect.spec ~writes:[ "fd:timerfd" ] ());
         ("shmget", e);
         ("shmat", e);
         ("shmdt", e);
         ("shmctl$IPC_RMID", e);
         ("semget", e);
         ("semop", e);
         ("semctl$IPC_RMID", e);
         ("msgget", e);
         ("msgsnd", e);
         ("msgrcv", e);
         ("msgctl$IPC_RMID", e);
       ])
    ~file_ops:
      [
        { Subsystem.op_name = "write"; applies = applies_event; run = event_write };
        { Subsystem.op_name = "read"; applies = applies_event; run = event_read };
        { Subsystem.op_name = "read"; applies = applies_timer; run = timer_read };
      ]
    ()
