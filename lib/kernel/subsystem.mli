(** Subsystem plumbing: each simulated kernel subsystem bundles its
    Syzlang descriptions, an initializer for its global state, exact
    handlers for its specialized syscalls, and optional implementations
    of the generic file operations ([read]/[write]/[mmap]/[ftruncate]
    ...), mirroring Linux's [file_operations] dispatch. *)

type handler = Ctx.t -> Arg.t list -> Ctx.result

type file_op = {
  op_name : string;  (** "read", "write", "mmap", "ftruncate", ... *)
  applies : State.fd_kind -> bool;  (** Does this fd belong to us? *)
  run : Ctx.t -> State.fd_entry -> Arg.t list -> Ctx.result;
}

type t = {
  name : string;
  descriptions : string;  (** Syzlang source for this subsystem. *)
  init : State.t -> unit;  (** Install global state at boot. *)
  handlers : (string * handler) list;  (** Exact syscall-name handlers. *)
  file_ops : file_op list;
  copy_kind : State.fd_kind -> State.fd_kind option;
      (** Deep-copy this subsystem's fd payloads ([None] = not ours).
          Every subsystem that extends {!State.fd_kind} must handle its
          own constructors here or {!Kernel.copy} fails loudly. *)
  copy_global : State.global -> State.global option;
      (** Same, for {!State.global} slots installed at boot. *)
  locks : (string * Lock.spec) list;
      (** Declared lock specs, keyed by handler name. Deliberately
          separate from the {!locked} wrappers on the handlers
          themselves: the runtime validator in {!Kernel.exec_call}
          cross-checks actual acquisition traces against these, so the
          two cannot drift silently. *)
  effects : (string * Effect.spec) list;
      (** Declared effect summaries, keyed by handler name — the state
          slots each handler reads/writes ({!Effect.spec}). Separate
          from the instrumented accessors for the same reason as
          [locks]: the runtime validator cross-checks observed access
          traces against these. *)
}

val make :
  ?init:(State.t -> unit) ->
  ?handlers:(string * handler) list ->
  ?file_ops:file_op list ->
  ?copy_kind:(State.fd_kind -> State.fd_kind option) ->
  ?copy_global:(State.global -> State.global option) ->
  ?locks:(string * Lock.spec) list ->
  ?effects:(string * Effect.spec) list ->
  name:string ->
  descriptions:string ->
  unit ->
  t

val locked : Lock.cls list -> handler -> handler
(** [locked classes h] wraps [h] so its body runs under
    {!Ctx.with_lock} for each class, acquired in list order and
    released in reverse. *)

val register : t -> unit
(** Idempotent (keyed by name); installs the subsystem's file_ops into
    the global dispatch chain used by {!dispatch_file_op}. *)

val registered : unit -> t list
(** In registration order. *)

val dispatch_file_op :
  Ctx.t -> string -> State.fd_entry -> Arg.t list -> Ctx.result option
(** [dispatch_file_op ctx op entry args] walks the chain and runs the
    first registered operation whose [applies] matches the entry's
    kind. [None] when no subsystem claims the descriptor. *)
