type t = {
  st : State.t;
  cov : Coverage.t;
  san : Sanitizer.config;
  features : string list;
  proc : int;
  mutable fault_pending : bool;
  mutable lock_held : Lock.cls list;
  mutable lock_trace : Lock.op list;
}

type result = { ret : int64; err : Errno.t option }

let make ?(features = []) ?(proc = 0) ~st ~san cov =
  {
    st;
    cov;
    san;
    features;
    proc;
    fault_pending = false;
    lock_held = [];
    lock_trace = [];
  }

(* Reset the per-call mutable fields so one context can serve every
   call of a run — the compiled executor's steady-state path, which
   must not allocate a context per call. Equivalent to a fresh [make]
   with the same immutable fields. *)
let recycle ctx =
  ctx.fault_pending <- false;
  ctx.lock_held <- [];
  ctx.lock_trace <- []

let ok ret = { ret; err = None }
let ok0 = { ret = 0L; err = None }
let err e = { ret = Int64.of_int (-Errno.code e); err = Some e }

let cover ctx id = Coverage.hit ctx.cov id
let covern ctx base offs = List.iter (fun o -> Coverage.hit ctx.cov (base + o)) offs
let version ctx = State.version ctx.st
let has_feature ctx f = List.mem f ctx.features

let take_fault ctx =
  if ctx.fault_pending then begin
    ctx.fault_pending <- false;
    true
  end
  else false

let bug_fires ctx key =
  match Bug.find key with
  | None -> invalid_arg ("Ctx.bug: unknown bug key " ^ key)
  | Some b -> Bug.exists_in b (version ctx) && Sanitizer.detects ctx.san b.risk

let bug ctx key =
  if bug_fires ctx key then
    let b = Bug.find_exn key in
    raise (Crash.Crash { bug_key = key; risk = b.risk })

(* Top-level so the hot path allocates no closure per acquire. *)
let rec bump_pairs st held (c : Lock.cls) =
  match held with
  | [] -> ()
  | h :: rest ->
    State.bump_lock st (Lock.pair_counter h c);
    bump_pairs st rest c

let acquire ctx (c : Lock.cls) =
  if Lock.hooks_enabled () then begin
    bump_pairs ctx.st ctx.lock_held c;
    State.bump_lock ctx.st (Lock.acq_counter c);
    ctx.lock_held <- c :: ctx.lock_held;
    if Lock.validate_enabled () then
      ctx.lock_trace <- Lock.Acquire c.Lock.cname :: ctx.lock_trace
  end

let release ctx (c : Lock.cls) =
  if Lock.hooks_enabled () then begin
    (match ctx.lock_held with
    | h :: rest when h.Lock.id = c.Lock.id -> ctx.lock_held <- rest
    | held -> ctx.lock_held <- List.filter (fun h -> h.Lock.id <> c.Lock.id) held);
    if Lock.validate_enabled () then
      ctx.lock_trace <- Lock.Release c.Lock.cname :: ctx.lock_trace
  end

let with_lock ctx c f =
  acquire ctx c;
  Fun.protect ~finally:(fun () -> release ctx c) f

let lock_trace ctx = List.rev ctx.lock_trace
