(** The lock model: named lock classes with a declared nesting order,
    the shared-state slots each class guards, per-handler declared lock
    specs, and the checking core shared by the static lockdep pass
    ([Healer_analysis.Lockdep]) and the runtime validator in
    {!Kernel.exec_call}.

    The simulated kernel is single-threaded, so acquire/release never
    block: the hooks account lock-pair coverage and (under debug
    validation) record acquisition traces, and lockdep checks the
    declared discipline — exactly like Linux's lockdep reports
    would-be deadlocks on executions that never actually deadlock. *)

(** {2 Lock classes} *)

type cls = {
  id : int;  (** Dense registration id; keys the counter memos. *)
  cname : string;  (** Class name, e.g. ["rtnl"]. *)
  rank : int;
      (** Declared nesting order: a handler may only acquire a class
          whose rank is >= every rank it already holds. *)
  guards : string list;
      (** The {!State.global} slot names (["netdevs"]) and fd-payload
          pseudo-slots (["fd:sock"]) this class protects. *)
}

val make : ?guards:string list -> rank:int -> string -> cls
(** A class value without registering it — for test fixtures building
    broken models. *)

val register : ?guards:string list -> rank:int -> string -> cls
(** Register (idempotently, by name) into the process-global class
    registry; subsystem modules call this at module-init time. *)

val registered : unit -> cls list
(** In registration order. *)

val find : string -> cls option

(** {2 Declared specs} *)

type op = Acquire of string | Release of string

type spec = {
  ops : op list;  (** The declared acquire/release sequence. *)
  touches : string list;
      (** Slots (as in {!cls.guards}) the handler mutates — the
          guard-coverage input. *)
}

val scoped : ?touches:string list -> string list -> spec
(** [scoped ~touches classes] declares well-bracketed acquisition:
    acquire in list order, release in reverse. *)

val acquires : spec -> string list
(** The acquire sequence of a spec, in order. *)

type model = {
  classes : cls list;
  specs : (string * string * spec) list;
      (** [(subsystem, handler, declared spec)]. *)
}

(** {2 Checking}

    Findings use stable [lock-*] check IDs; {!Healer_analysis.Lockdep}
    maps them onto the Diagnostic framework. *)

type finding = { check : string; subject : string; msg : string }

exception Violation of finding
(** Raised by the runtime validator in {!Kernel.exec_call} (never by
    the pure checkers below). *)

val check_model :
  ?reads:(string * string * string list) list -> model -> finding list
(** Static lockdep over the declared model: unknown classes, double
    acquire, release of unheld, held-at-exit, rank inversions,
    declared-order cycles (ABBA), guard coverage and unused classes.
    [reads] extends guard coverage to the read side:
    [(subsystem, handler, slots read)] triples — reading a slot some
    class guards without holding any guarding class also warns under
    [lock-guard-coverage]. Sorted and deduplicated; empty on a clean
    model. *)

val order_edges : model -> (string * string) list
(** The declared lock-order graph: deduped [(outer, inner)] nesting
    edges over every spec, in first-witness order. *)

val check_trace :
  model -> subsystem:string -> handler:string -> op list -> finding list
(** Validate one recorded acquisition trace against the model: the
    structural checks of {!check_model}, plus the runtime acquire
    order must be a subsequence of the handler's declared spec
    ([lock-spec-mismatch]) and must not invert the declared order
    graph. *)

(** {2 Runtime switches} *)

val env_on : ?default:bool -> string -> bool
(** Parse a boolean environment toggle (["" | 0 | false | no | off]
    are false); shared with the other hook-bearing modules. *)

val hooks_enabled : unit -> bool
(** Lock-pair accounting hooks; default on, [HEALER_LOCK_HOOKS=0]
    disables (the bench measures their overhead). Executions are
    bit-identical either way — the hooks only write [lock:*]
    counters. *)

val set_hooks : bool -> unit

val validate_enabled : unit -> bool
(** Trace recording + per-call validation; same contract as
    {!Healer_executor.Progcheck}: opt-in via [HEALER_DEBUG_VALIDATE],
    forced on across [dune runtest]. *)

val set_validate : bool -> unit

(** {2 Lock-pair coverage counters}

    Acquisitions are accounted in dense integer slots into
    {!State.t}'s lock-count array (so the per-acquire hot path is an
    array increment): one slot per acquisition of class [C]
    (["lock:acq:C"]) and one per acquisition of [B] while holding [A]
    (["lock:pair:A->B"]) — the queryable concurrency-coverage signal
    ({!Kernel.lock_pair_counts}). {!slot_name} maps a slot back to its
    printable key. *)

val counter_prefix : string
val pair_prefix : string
val acq_prefix : string

val pair_counter : cls -> cls -> int
(** Memoized counter slot for (outer, inner). *)

val acq_counter : cls -> int

val slot_name : int -> string
(** The printable ["lock:pair:A->B"] / ["lock:acq:C"] key of a slot. *)

val n_counter_slots : unit -> int

val force_pairs : unit -> unit
(** Pre-assign counter slots for every registered class pair so the
    hot path never mutates the memos; {!Kernel.force_init} calls this
    before campaigns go parallel. *)
