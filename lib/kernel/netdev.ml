type netdev = {
  dname : string;
  mutable up : bool;
  mutable qdisc_limit : int option;
  mutable last_xmit : int;
  mutable macvlan_dying : bool;
}

type State.global += Netdevs of (string, netdev) Hashtbl.t
type State.fd_kind += Packet_sock

let blk = Coverage.region ~name:"netdev" ~size:256
let c ctx o = Ctx.cover ctx (blk + o)

(* Like Linux's rtnl_mutex: one class serializing the device table for
   both the ioctl paths here and the rtnetlink paths in [Netlink] (the
   shared-table coupling below); also covers the address table those
   rtnetlink handlers manage alongside the devices. *)
let rtnl = Lock.register ~rank:10 ~guards:[ "netdevs"; "nl_addrs" ] "rtnl"

(* Effect slots: the device table, and the packet-socket tx statistics
   that are deliberately NOT guarded by any class — the
   [packet_seq_show] fixture race below. *)
let s_netdevs = Effect.slot "netdevs"
let s_pkt_stats = Effect.slot "pkt_stats"

let () =
  Effect.register_race ~slot:"pkt_stats"
    ~parties:[ "sendto$packet"; "socket$packet" ]
    ~bug:"packet_seq_show"

let fresh name =
  { dname = name; up = false; qdisc_limit = None; last_xmit = 0; macvlan_dying = false }

let init st =
  let tbl = Hashtbl.create 8 in
  Hashtbl.replace tbl "eth0" (fresh "eth0");
  Hashtbl.replace tbl "lo" { (fresh "lo") with up = true };
  State.set_global st "netdevs" (Netdevs tbl)

let devs_of st =
  match State.global st "netdevs" with
  | Some (Netdevs t) -> t
  | Some _ | None -> failwith "netdev: state not initialized"

(* State accessors for sibling subsystems (rtnetlink mutates the same
   device table that the ioctl paths manage). *)

let lookup st name =
  State.record_read st s_netdevs;
  Hashtbl.find_opt (devs_of st) name

let sorted_names st =
  State.record_read st s_netdevs;
  Hashtbl.fold (fun name _ acc -> name :: acc) (devs_of st) []
  |> List.sort String.compare

let device_count st =
  State.record_read st s_netdevs;
  Hashtbl.length (devs_of st)

let install st dev =
  State.record_write st s_netdevs;
  Hashtbl.replace (devs_of st) dev.dname dev

let remove st name =
  let devs = devs_of st in
  if Hashtbl.mem devs name then begin
    State.record_write st s_netdevs;
    Hashtbl.remove devs name;
    true
  end
  else false

let h_socket_packet ctx _args =
  c ctx 0;
  let st = ctx.Ctx.st in
  (* /proc/net/packet-style walk: creating a second packet socket scans
     the existing socket list and reads the tx statistics another
     socket may be updating with no lock held at all — the
     packet_seq_show data race (5.6). *)
  if
    State.exists_fd st (fun e ->
        match e.State.kind with Packet_sock -> true | _ -> false)
  then begin
    c ctx 1;
    State.record_read st s_pkt_stats;
    let dirty = State.counter st "pkt.dirty_at" in
    if dirty > 0 && State.now st - dirty <= 2 then begin
      c ctx 4;
      Ctx.bug ctx "packet_seq_show"
    end
  end;
  let entry = State.alloc_fd st Packet_sock in
  Ctx.ok (Int64.of_int entry.State.fd)

let with_packet ctx args k =
  match State.lookup_fd ctx.Ctx.st (Arg.as_fd (Arg.nth args 0)) with
  | Some { kind = Packet_sock; _ } -> k ()
  | Some _ -> (c ctx 2; Ctx.err Errno.EOPNOTSUPP)
  | None -> (c ctx 3; Ctx.err Errno.EBADF)

let dev_arg ctx args i =
  let name = Arg.as_str (Arg.nth args i) in
  State.record_read ctx.Ctx.st s_netdevs;
  let devs = devs_of ctx.Ctx.st in
  (name, Hashtbl.find_opt devs name)

let h_ifup ctx args =
  c ctx 5;
  with_packet ctx args (fun () ->
      match dev_arg ctx args 2 with
      | _, Some dev ->
        c ctx 6;
        State.record_write ctx.Ctx.st s_netdevs;
        dev.up <- true;
        Ctx.ok0
      | name, None ->
        c ctx 7;
        (* Unknown interface name with a control character trips a
           WARN in dev_ioctl's name validation. *)
        if String.exists (fun ch -> Char.code ch < 32) name then begin
          c ctx 8;
          Ctx.bug ctx "dev_ioctl_warn"
        end;
        Ctx.err Errno.ENODEV)

let h_ifdown ctx args =
  c ctx 10;
  with_packet ctx args (fun () ->
      match dev_arg ctx args 2 with
      | _, Some dev ->
        c ctx 11;
        State.record_write ctx.Ctx.st s_netdevs;
        dev.up <- false;
        Ctx.ok0
      | _, None ->
        c ctx 12;
        Ctx.err Errno.ENODEV)

let h_macvlan_create ctx args =
  c ctx 14;
  with_packet ctx args (fun () ->
      match dev_arg ctx args 2 with
      | _, Some lower when lower.dname <> "lo" ->
        let devs = devs_of ctx.Ctx.st in
        if Hashtbl.mem devs "macvlan0" then begin
          c ctx 15;
          Ctx.err Errno.EEXIST
        end
        else begin
          c ctx 16;
          State.record_write ctx.Ctx.st s_netdevs;
          Hashtbl.replace devs "macvlan0" (fresh "macvlan0");
          Ctx.ok0
        end
      | _, Some _ ->
        c ctx 17;
        Ctx.err Errno.EINVAL
      | _, None ->
        c ctx 18;
        Ctx.err Errno.ENODEV)

let h_macvlan_del ctx args =
  c ctx 20;
  with_packet ctx args (fun () ->
      State.record_read ctx.Ctx.st s_netdevs;
      let devs = devs_of ctx.Ctx.st in
      match Hashtbl.find_opt devs "macvlan0" with
      | Some dev ->
        c ctx 21;
        (* Teardown is asynchronous: the device lingers briefly, still
           up, with its broadcast queue live. *)
        State.record_write ctx.Ctx.st s_netdevs;
        dev.macvlan_dying <- true;
        Ctx.ok0
      | None ->
        c ctx 22;
        Ctx.err Errno.ENODEV)

let h_qdisc_add ctx args =
  c ctx 24;
  with_packet ctx args (fun () ->
      match dev_arg ctx args 2 with
      | _, Some dev ->
        let limit = Int64.to_int (Arg.as_int (Arg.nth args 3)) in
        if limit < 0 then begin
          c ctx 25;
          Ctx.err Errno.EINVAL
        end
        else begin
          c ctx 26;
          State.record_write ctx.Ctx.st s_netdevs;
          dev.qdisc_limit <- Some limit;
          if limit = 0 then c ctx 27;
          Ctx.ok0
        end
      | _, None ->
        c ctx 28;
        Ctx.err Errno.ENODEV)

let h_qdisc_del ctx args =
  c ctx 30;
  with_packet ctx args (fun () ->
      match dev_arg ctx args 2 with
      | _, Some dev ->
        c ctx 31;
        State.record_write ctx.Ctx.st s_netdevs;
        dev.qdisc_limit <- None;
        Ctx.ok0
      | _, None ->
        c ctx 32;
        Ctx.err Errno.ENODEV)

let h_sendto_packet ctx args =
  c ctx 34;
  with_packet ctx args (fun () ->
      let buf = Arg.as_buf (Arg.nth args 1) in
      let n = Bytes.length buf in
      match dev_arg ctx args 4 with
      | _, Some dev ->
        if not dev.up then begin
          c ctx 35;
          Ctx.err Errno.ENODEV
        end
        else begin
          c ctx 36;
          State.record_write ctx.Ctx.st s_netdevs;
          dev.last_xmit <- State.now ctx.Ctx.st;
          (* Per-socket tx statistics, bumped outside any lock — the
             write half of the packet_seq_show race. *)
          State.record_write ctx.Ctx.st s_pkt_stats;
          ignore (State.incr_counter ctx.Ctx.st "pkt.tx");
          State.set_counter ctx.Ctx.st "pkt.dirty_at" (State.now ctx.Ctx.st);
          (* Broadcast onto a macvlan whose teardown already started
             queues work against the freed port (5.11). *)
          if dev.macvlan_dying then begin
            c ctx 37;
            Ctx.bug ctx "macvlan_broadcast"
          end;
          (* A zero-limit qdisc with an oversized frame indexes the
             size table out of bounds (5.11). *)
          (match dev.qdisc_limit with
          | Some 0 when n > 2048 ->
            c ctx 38;
            Ctx.bug ctx "qdisc_calculate_pkt_len"
          | Some _ -> c ctx 39
          | None -> c ctx 40);
          let combo =
            (if dev.qdisc_limit <> None then 1 else 0)
            lor (if dev.dname = "macvlan0" then 2 else 0)
            lor if n > 1024 then 4 else 0
          in
          c ctx (64 + combo);
          let size_class =
            if n = 0 then 0 else if n <= 256 then 1
            else if n <= 2048 then 2 else 3
          in
          c ctx (96 + (combo * 4) + size_class);
          Ctx.ok (Int64.of_int n)
        end
      | _, None ->
        c ctx 41;
        Ctx.err Errno.ENODEV)

let h_recv_packet ctx args =
  c ctx 43;
  with_packet ctx args (fun () ->
      State.record_read ctx.Ctx.st s_netdevs;
      let devs = devs_of ctx.Ctx.st in
      match Hashtbl.find_opt devs "eth0" with
      | Some dev ->
        c ctx 44;
        (* RX clean path racing a transmit in the same window
           (e1000_clean vs e1000_xmit_frame, 5.11). *)
        if
          dev.up && dev.last_xmit > 0
          && State.now ctx.Ctx.st - dev.last_xmit <= 2
        then begin
          c ctx 45;
          Ctx.bug ctx "e1000_clean"
        end;
        Ctx.ok 0L
      | None ->
        c ctx 46;
        Ctx.err Errno.ENODEV)

let descriptions =
  {|
# Network devices: interfaces, macvlan, qdisc, packet sockets.
resource sock_packet[sock]
socket$packet(domain const[17], type const[3], proto const[768]) sock_packet
ioctl$ifup(fd sock_packet, cmd const[0x8914], dev ptr[in, string["eth0", "macvlan0", "lo"]])
ioctl$ifdown(fd sock_packet, cmd const[0x8915], dev ptr[in, string["eth0", "macvlan0"]])
ioctl$macvlan_create(fd sock_packet, cmd const[0x89f0], lower ptr[in, string["eth0"]])
ioctl$macvlan_del(fd sock_packet, cmd const[0x89f1], dev ptr[in, string["macvlan0"]])
ioctl$qdisc_add(fd sock_packet, cmd const[0x89f2], dev ptr[in, string["eth0", "macvlan0"]], limit int32[0:1024])
ioctl$qdisc_del(fd sock_packet, cmd const[0x89f3], dev ptr[in, string["eth0", "macvlan0"]])
sendto$packet(fd sock_packet, buf buffer[in], length len[buf], sflags const[0], dev ptr[in, string["eth0", "macvlan0", "lo"]])
recvfrom$packet(fd sock_packet, buf buffer[out], length len[buf])
|}

let copy_kind : State.fd_kind -> State.fd_kind option = function
  | Packet_sock -> Some Packet_sock
  | _ -> None

let copy_global : State.global -> State.global option = function
  | Netdevs tbl ->
    Some
      (Netdevs (State.copy_tbl (fun (d : netdev) -> { d with up = d.up }) tbl))
  | _ -> None

let sub =
  let l = Subsystem.locked [ rtnl ] in
  let w = Lock.scoped [ "rtnl" ] ~touches:[ "netdevs" ] in
  let r = Lock.scoped [ "rtnl" ] in
  Subsystem.make ~name:"netdev" ~descriptions ~init ~copy_kind ~copy_global
    ~handlers:
      [
        ("socket$packet", h_socket_packet);
        ("ioctl$ifup", l h_ifup);
        ("ioctl$ifdown", l h_ifdown);
        ("ioctl$macvlan_create", l h_macvlan_create);
        ("ioctl$macvlan_del", l h_macvlan_del);
        ("ioctl$qdisc_add", l h_qdisc_add);
        ("ioctl$qdisc_del", l h_qdisc_del);
        ("sendto$packet", l h_sendto_packet);
        ("recvfrom$packet", l h_recv_packet);
      ]
    ~locks:
      [
        ("ioctl$ifup", w);
        ("ioctl$ifdown", w);
        ("ioctl$macvlan_create", w);
        ("ioctl$macvlan_del", w);
        ("ioctl$qdisc_add", w);
        ("ioctl$qdisc_del", w);
        ("sendto$packet", w);
        ("recvfrom$packet", r);
      ]
    ~effects:
      (let wdev = Effect.spec ~writes:[ "netdevs" ] () in
       [
         ("socket$packet", Effect.spec ~reads:[ "pkt_stats" ] ());
         ("ioctl$ifup", wdev);
         ("ioctl$ifdown", wdev);
         ("ioctl$macvlan_create", wdev);
         ("ioctl$macvlan_del", wdev);
         ("ioctl$qdisc_add", wdev);
         ("ioctl$qdisc_del", wdev);
         ( "sendto$packet",
           Effect.spec ~writes:[ "netdevs"; "pkt_stats" ] () );
         ("recvfrom$packet", Effect.spec ~reads:[ "netdevs" ] ());
       ])
    ()
