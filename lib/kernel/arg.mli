(** Runtime argument values as seen by a syscall handler.

    The executor resolves a program's symbolic values (resource
    references, pointers) into this flat representation before entering
    the kernel: integers/resources become [Int] (ids), pointer payloads
    are dereferenced into [Rec] groups, null pointers become [Nothing]. *)

type slot = { mutable sv : int64 }
(** A mutable integer cell: the compiled executor's patch point. The
    compiler lowers every [Res_ref] to a [Slot] embedded in an
    otherwise immutable argument skeleton; before each execution of
    the call the runner overwrites [sv] with the producing call's
    result. Handlers cannot distinguish a [Slot] from an [Int] holding
    the same value — every accessor below treats them identically. *)

type t =
  | Int of int64
  | Slot of slot  (** Compiled patch point; reads as [Int sv]. *)
  | Str of string
  | Buf of bytes
  | Rec of t list  (** Dereferenced pointer payload (struct/array). *)
  | Nothing  (** Null pointer / absent argument. *)

val slot : int64 -> slot

val as_int : t -> int64
(** [Int v -> v], [Slot s -> s.sv]; anything else is 0 (like reading a
    bad register). *)

val as_fd : t -> int
(** [as_int] truncated to [int]. *)

val as_buf : t -> bytes
(** [Buf b -> b], [Str s -> bytes of s]; otherwise empty. *)

val as_str : t -> string
val as_rec : t -> t list
(** [Rec fs -> fs]; otherwise []. *)

val is_null : t -> bool
val nth : t list -> int -> t
(** [nth args i] is [Nothing] when out of range. *)

val field : t -> int -> t
(** [field arg i] is the [i]-th member of a [Rec], else [Nothing]. *)

val pp : Format.formatter -> t -> unit
