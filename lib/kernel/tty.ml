type tty_kind = Ptmx | Vcs | Vcsa | Tpk

type tty = {
  tkind : tty_kind;
  mutable ldisc : int;
  mutable ldisc_switches : int;
  mutable gsm_configured : bool;
  mutable pending_input : int;
  mutable reads : int;
  mutable offset : int64;
}

type console = {
  mutable writes : int;
  mutable active_vt : int;
  mutable deallocated : bool;
  mutable vt_switches : int;
}

type State.fd_kind += Tty of tty
type State.global += Console of console

let blk = Coverage.region ~name:"tty" ~size:1024
let c ctx o = Ctx.cover ctx (blk + o)

let n_gsm = 21
let vcs_columns = 80 * 25

let init st =
  State.set_global st "console"
    (Console { writes = 0; active_vt = 1; deallocated = false; vt_switches = 0 })

let console_of st =
  match State.global st "console" with
  | Some (Console con) -> con
  | Some _ | None -> failwith "tty: state not initialized"

let fresh_tty tkind =
  {
    tkind;
    ldisc = 0;
    ldisc_switches = 0;
    gsm_configured = false;
    pending_input = 0;
    reads = 0;
    offset = 0L;
  }

let open_count_key = function
  | Ptmx -> "tty.ptmx_opens"
  | Vcs -> "tty.vcs_opens"
  | Vcsa -> "tty.vcsa_opens"
  | Tpk -> "tty.tpk_opens"

let h_open kind ctx _args =
  c ctx 0;
  let opens = State.incr_counter ctx.Ctx.st (open_count_key kind) in
  (match kind with
  | Ptmx ->
    c ctx 1;
    (* A re-opened ptmx while a previous instance still exists leaks
       the half-initialized tty (tty_init_dev). *)
    if opens >= 2 then begin
      c ctx 2;
      Ctx.bug ctx "tty_init_dev_leak"
    end
  | Vcs -> c ctx 3
  | Vcsa -> c ctx 4
  | Tpk -> c ctx 5);
  let entry = State.alloc_fd ctx.Ctx.st (Tty (fresh_tty kind)) in
  Ctx.ok (Int64.of_int entry.State.fd)

let with_tty ctx args k =
  let fd = Arg.as_fd (Arg.nth args 0) in
  match State.lookup_fd ctx.Ctx.st fd with
  | Some { kind = Tty t; _ } -> k t
  | Some _ ->
    c ctx 7;
    Ctx.err Errno.ENOTTY
  | None ->
    c ctx 8;
    Ctx.err Errno.EBADF

let h_set_ldisc ctx args =
  c ctx 10;
  with_tty ctx args (fun t ->
      let ld = Int64.to_int (Arg.as_int (Arg.field (Arg.nth args 2) 0)) in
      if ld < 0 || ld > 30 then begin
        c ctx 11;
        Ctx.err Errno.EINVAL
      end
      else begin
        let old = t.ldisc in
        t.ldisc <- ld;
        t.ldisc_switches <- t.ldisc_switches + 1;
        if ld = n_gsm then begin
          c ctx 12;
          if old = n_gsm then begin
            (* Re-attaching N_GSM to a tty that already carries a GSM
               mux dereferences the stale gsm->tty (5.11). *)
            c ctx 13;
            Ctx.bug ctx "gsmld_attach_gsm"
          end
        end
        else if old = n_gsm && ld = 0 then begin
          (* Falling back from N_GSM to N_TTY with input pending takes
             the n_tty_open path over freed ldisc data (5.11). *)
          c ctx 14;
          if t.pending_input > 0 then begin
            c ctx 15;
            Ctx.bug ctx "n_tty_open"
          end
        end
        else c ctx 16;
        Ctx.ok0
      end)

let h_get_ldisc ctx args =
  c ctx 18;
  with_tty ctx args (fun t ->
      c ctx 19;
      Ctx.ok (Int64.of_int t.ldisc))

let h_gsm_config ctx args =
  c ctx 21;
  with_tty ctx args (fun t ->
      if t.ldisc <> n_gsm then begin
        c ctx 22;
        Ctx.err Errno.EOPNOTSUPP
      end
      else begin
        c ctx 23;
        t.gsm_configured <- true;
        Ctx.ok0
      end)

let h_sti ctx args =
  c ctx 25;
  with_tty ctx args (fun t ->
      c ctx 26;
      t.pending_input <- t.pending_input + 1;
      (* Injected input flushed into a tty whose reader raced a ldisc
         change lands in a freed buffer (5.0+). *)
      if t.ldisc_switches >= 2 && t.reads >= 1 then begin
        c ctx 27;
        Ctx.bug ctx "n_tty_receive_buf_common"
      end;
      Ctx.ok0)

let h_vt_activate ctx args =
  c ctx 29;
  let vt = Int64.to_int (Arg.as_int (Arg.nth args 2)) in
  let con = console_of ctx.Ctx.st in
  if vt < 1 || vt > 12 then begin
    c ctx 30;
    Ctx.err Errno.ENXIO
  end
  else begin
    c ctx 31;
    con.active_vt <- vt;
    con.deallocated <- false;
    con.vt_switches <- con.vt_switches + 1;
    Ctx.ok0
  end

let h_vt_disallocate ctx args =
  c ctx 33;
  let vt = Int64.to_int (Arg.as_int (Arg.nth args 2)) in
  let con = console_of ctx.Ctx.st in
  if vt < 1 || vt > 12 then begin
    c ctx 34;
    Ctx.err Errno.ENXIO
  end
  else begin
    c ctx 35;
    if vt = con.active_vt then con.deallocated <- true;
    Ctx.ok0
  end

let h_syslog ctx args =
  c ctx 37;
  let cmd = Int64.to_int (Arg.as_int (Arg.nth args 0)) in
  let con = console_of ctx.Ctx.st in
  match cmd with
  | 5 ->
    (* SYSLOG_ACTION_CLEAR while a console-write storm holds the
       console lock across a VT switch self-deadlocks in
       console_unlock (the 18-call Table 4 chain). *)
    c ctx 38;
    if con.writes >= 12 && con.vt_switches >= 1 then begin
      c ctx 39;
      Ctx.bug ctx "console_unlock"
    end;
    con.writes <- 0;
    Ctx.ok0
  | 2 | 3 | 4 ->
    c ctx 40;
    Ctx.ok 0L
  | 9 | 10 ->
    c ctx 41;
    Ctx.ok (Int64.of_int con.writes)
  | _ ->
    c ctx 42;
    Ctx.err Errno.EINVAL

let tty_combo t =
  let kind_idx = match t.tkind with Ptmx -> 0 | Vcs -> 1 | Vcsa -> 2 | Tpk -> 3 in
  (kind_idx * 8)
  lor (if t.ldisc = n_gsm then 4 else 0)
  lor (if t.gsm_configured then 2 else 0)
  lor if t.pending_input > 0 then 1 else 0

let tty_write ctx (entry : State.fd_entry) args =
  match entry.kind with
  | Tty t -> (
    let buf = Arg.as_buf (Arg.nth args 1) in
    let n = Bytes.length buf in
    let con = console_of ctx.Ctx.st in
    c ctx 44;
    c ctx (100 + tty_combo t);
    con.writes <- con.writes + 1;
    (* Console rendering ladder: combo x accumulated console writes. *)
    c ctx (256 + (tty_combo t * 16) + min 15 con.writes);
    match t.tkind with
    | Tpk ->
      c ctx 45;
      (* ttyprintk BUG()s on a line longer than its fixed buffer when
         the tty was switched to a non-default ldisc first. *)
      if n > 512 && t.ldisc_switches >= 1 then begin
        c ctx 46;
        Ctx.bug ctx "tpk_write"
      end;
      Ctx.ok (Int64.of_int n)
    | Vcs | Vcsa ->
      c ctx 47;
      if con.deallocated then begin
        c ctx 48;
        Ctx.err Errno.ENXIO
      end
      else if Int64.compare t.offset (Int64.of_int vcs_columns) > 0 && n > 0
      then begin
        (* Writing past the screen buffer of the current console
           (4.19). *)
        c ctx 49;
        Ctx.bug ctx "vcs_write";
        Ctx.ok (Int64.of_int n)
      end
      else begin
        c ctx 50;
        t.offset <- Int64.add t.offset (Int64.of_int n);
        Ctx.ok (Int64.of_int n)
      end
    | Ptmx ->
      c ctx 51;
      if t.ldisc = n_gsm && not t.gsm_configured then begin
        c ctx 52;
        Ctx.err Errno.EAGAIN
      end
      else begin
        c ctx 53;
        Ctx.ok (Int64.of_int n)
      end)
  | _ -> Ctx.err Errno.EINVAL

let tty_read ctx (entry : State.fd_entry) args =
  match entry.kind with
  | Tty t -> (
    let count = Arg.as_int (Arg.nth args 2) in
    c ctx 55;
    c ctx (140 + tty_combo t);
    t.reads <- t.reads + 1;
    c ctx (768 + (tty_combo t * 4) + min 3 t.reads);
    match t.tkind with
    | Vcs | Vcsa ->
      let con = console_of ctx.Ctx.st in
      if con.deallocated then begin
        (* Screen buffer of the deallocated console is gone; the word
           read walks freed memory (5.0+). *)
        c ctx 56;
        Ctx.bug ctx "vcs_scr_readw";
        Ctx.err Errno.ENXIO
      end
      else begin
        c ctx 57;
        Ctx.ok (min count (Int64.of_int vcs_columns))
      end
    | Ptmx ->
      c ctx 58;
      if t.pending_input > 0 then begin
        c ctx 59;
        let n = min count (Int64.of_int t.pending_input) in
        t.pending_input <- 0;
        Ctx.ok n
      end
      else begin
        c ctx 60;
        Ctx.err Errno.EAGAIN
      end
    | Tpk ->
      c ctx 61;
      Ctx.err Errno.EOPNOTSUPP)
  | _ -> Ctx.err Errno.EINVAL

(* vcs supports lseek to position within the screen buffer. *)
let tty_lseek ctx (entry : State.fd_entry) args =
  match entry.kind with
  | Tty ({ tkind = Vcs | Vcsa; _ } as t) ->
    c ctx 63;
    let offset = Arg.as_int (Arg.nth args 1) in
    if Int64.compare offset 0L < 0 then begin
      c ctx 64;
      Ctx.err Errno.EINVAL
    end
    else begin
      c ctx 65;
      t.offset <- offset;
      if Int64.compare offset (Int64.of_int vcs_columns) > 0 then c ctx 66;
      Ctx.ok offset
    end
  | Tty _ -> Ctx.err Errno.EOPNOTSUPP
  | _ -> Ctx.err Errno.EINVAL

let descriptions =
  {|
# TTY: ptmx, line disciplines, virtual consoles, ttyprintk, console.
resource fd_tty[fd]
resource fd_ptmx[fd_tty]
resource fd_vcs[fd_tty]
resource fd_tpk[fd_tty]
flags tty_ldisc = 0 2 3 21
struct gsm_config { adaption int32, encapsulation int32, mru int32, mtu int32 }
openat$ptmx(dirfd fd, file filename["/dev/ptmx"], oflags flags[open_flags]) fd_ptmx
openat$vcs(dirfd fd, file filename["/dev/vcs"], oflags flags[open_flags]) fd_vcs
openat$vcsa(dirfd fd, file filename["/dev/vcsa"], oflags flags[open_flags]) fd_vcs
openat$ttyprintk(dirfd fd, file filename["/dev/ttyprintk"], oflags flags[open_flags]) fd_tpk
ioctl$TIOCSETD(fd fd_tty, cmd const[0x5423], ldisc ptr[in, flags[tty_ldisc]])
ioctl$TIOCGETD(fd fd_tty, cmd const[0x5424], ldisc ptr[out, int32])
ioctl$GSMIOC_SETCONF(fd fd_ptmx, cmd const[0x40204701], conf ptr[in, gsm_config])
ioctl$TIOCSTI(fd fd_tty, cmd const[0x5412], ch ptr[in, int8])
ioctl$VT_ACTIVATE(fd fd_tty, cmd const[0x5606], vt int32[0:16])
ioctl$VT_DISALLOCATE(fd fd_tty, cmd const[0x5608], vt int32[0:16])
syslog(cmd int32[0:10], buf buffer[out], length len[buf])
|}

let applies_tty = function Tty _ -> true | _ -> false

let copy_kind : State.fd_kind -> State.fd_kind option = function
  | Tty t -> Some (Tty { t with ldisc = t.ldisc })
  | _ -> None

let copy_global : State.global -> State.global option = function
  | Console c -> Some (Console { c with writes = c.writes })
  | _ -> None

let sub =
  Subsystem.make ~name:"tty" ~descriptions ~init ~copy_kind ~copy_global
    ~handlers:
      [
        ("openat$ptmx", h_open Ptmx);
        ("openat$vcs", h_open Vcs);
        ("openat$vcsa", h_open Vcsa);
        ("openat$ttyprintk", h_open Tpk);
        ("ioctl$TIOCSETD", h_set_ldisc);
        ("ioctl$TIOCGETD", h_get_ldisc);
        ("ioctl$GSMIOC_SETCONF", h_gsm_config);
        ("ioctl$TIOCSTI", h_sti);
        ("ioctl$VT_ACTIVATE", h_vt_activate);
        ("ioctl$VT_DISALLOCATE", h_vt_disallocate);
        ("syslog", h_syslog);
      ]
    ~file_ops:
      [
        { Subsystem.op_name = "write"; applies = applies_tty; run = tty_write };
        { Subsystem.op_name = "read"; applies = applies_tty; run = tty_read };
        { Subsystem.op_name = "lseek"; applies = applies_tty; run = tty_lseek };
      ]
    ()
