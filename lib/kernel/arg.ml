type slot = { mutable sv : int64 }

type t =
  | Int of int64
  | Slot of slot
  | Str of string
  | Buf of bytes
  | Rec of t list
  | Nothing

let slot v = { sv = v }

let as_int = function
  | Int v -> v
  | Slot s -> s.sv
  | Str _ | Buf _ | Rec _ | Nothing -> 0L

let as_fd a = Int64.to_int (as_int a)

let as_buf = function
  | Buf b -> b
  | Str s -> Bytes.of_string s
  | Int _ | Slot _ | Rec _ | Nothing -> Bytes.empty

let as_str = function
  | Str s -> s
  | Buf b -> Bytes.to_string b
  | Int _ | Slot _ | Rec _ | Nothing -> ""

let as_rec = function Rec fs -> fs | Int _ | Slot _ | Str _ | Buf _ | Nothing -> []

let is_null = function
  | Nothing -> true
  | Int _ | Slot _ | Str _ | Buf _ | Rec _ -> false

let nth args i = match List.nth_opt args i with Some a -> a | None -> Nothing

let field arg i =
  match arg with
  | Rec fs -> nth fs i
  | Int _ | Slot _ | Str _ | Buf _ | Nothing -> Nothing

let rec pp ppf = function
  | Int v -> Fmt.pf ppf "0x%Lx" v
  | Slot s -> Fmt.pf ppf "0x%Lx" s.sv
  | Str s -> Fmt.pf ppf "%S" s
  | Buf b -> Fmt.pf ppf "buf[%d]" (Bytes.length b)
  | Rec fs -> Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") pp) fs
  | Nothing -> Fmt.string ppf "nil"
