(** Crash reports: raising, rendering and symbolizing kernel crash logs.

    Subsystem handlers raise {!Crash} through {!Ctx.bug}. The executor
    catches it, renders a sanitizer-style textual log with raw kernel
    addresses (the virtual machine's console output), and the fuzzer's
    triage component symbolizes that log back into a stable bug
    signature — the same pipeline the paper describes (collect and parse
    the crash log, symbolize kernel addresses, filter irrelevant
    information). *)

exception Crash of { bug_key : string; risk : Risk.t }

type report = {
  bug_key : string;
  risk : Risk.t;
  call_index : int;  (** Index of the triggering call in the program. *)
  call_name : string;
  log : string;  (** Raw console log (addresses, not symbols). *)
}

val address_of : string -> int64
(** Deterministic fake kernel text address for a bug key. *)

val render_log : bug_key:string -> risk:Risk.t -> call_name:string -> string
(** A KASAN/KCSAN-style multi-line crash log containing only raw
    addresses and boilerplate. *)

val preload : unit -> unit
(** Force the lazily built symbol table. Forcing a lazy from several
    domains at once is a race; {!Kernel.force_init} calls this before
    any domain spawns. *)

val symbolize : string -> (string * Risk.t) option
(** Parse a raw log back to [(bug_key, risk)] by resolving the faulting
    address against the bug catalog's symbol table. [None] if the log is
    not a crash or the address is unknown. *)

val signature : report -> string
(** Stable deduplication signature, [risk-class:bug_key]. *)

val pp_report : Format.formatter -> report -> unit
