type video = {
  mutable fmt_set : bool;
  mutable fmt_changes : int;
  mutable reqbufs : int;
  mutable streaming : bool;
  mutable ctrl_set : bool;
}

type State.fd_kind += Vivid of video

let blk = Coverage.region ~name:"vivid" ~size:192
let c ctx o = Ctx.cover ctx (blk + o)

let h_open ctx _args =
  c ctx 0;
  let v =
    { fmt_set = false; fmt_changes = 0; reqbufs = 0; streaming = false;
      ctrl_set = false }
  in
  let entry = State.alloc_fd ctx.Ctx.st (Vivid v) in
  Ctx.ok (Int64.of_int entry.State.fd)

let with_video ctx args k =
  match State.lookup_fd ctx.Ctx.st (Arg.as_fd (Arg.nth args 0)) with
  | Some { kind = Vivid v; _ } -> k v
  | Some _ -> (c ctx 2; Ctx.err Errno.ENOTTY)
  | None -> (c ctx 3; Ctx.err Errno.EBADF)

let h_querycap ctx args =
  c ctx 5;
  with_video ctx args (fun _ ->
      c ctx 6;
      Ctx.ok0)

let h_s_fmt ctx args =
  c ctx 8;
  with_video ctx args (fun v ->
      let w = Arg.as_int (Arg.field (Arg.nth args 2) 0) in
      let h = Arg.as_int (Arg.field (Arg.nth args 2) 1) in
      if Int64.compare w 0L <= 0 || Int64.compare h 0L <= 0 then begin
        c ctx 9;
        Ctx.err Errno.EINVAL
      end
      else begin
        c ctx 10;
        v.fmt_set <- true;
        v.fmt_changes <- v.fmt_changes + 1;
        if v.streaming then c ctx 11;
        Ctx.ok0
      end)

let h_reqbufs ctx args =
  c ctx 13;
  with_video ctx args (fun v ->
      let n = Int64.to_int (Arg.as_int (Arg.nth args 2)) in
      if n < 0 || n > 32 then begin
        c ctx 14;
        Ctx.err Errno.EINVAL
      end
      else begin
        c ctx 15;
        v.reqbufs <- n;
        Ctx.ok0
      end)

let h_streamon ctx args =
  c ctx 17;
  with_video ctx args (fun v ->
      if not v.fmt_set then begin
        c ctx 18;
        Ctx.err Errno.EINVAL
      end
      else if v.streaming then begin
        c ctx 19;
        Ctx.err Errno.EBUSY
      end
      else begin
        c ctx 20;
        v.streaming <- true;
        Ctx.ok0
      end)

let h_streamoff ctx args =
  c ctx 22;
  with_video ctx args (fun v ->
      if not v.streaming then begin
        c ctx 23;
        Ctx.err Errno.EINVAL
      end
      else begin
        c ctx 24;
        (* Stopping the generator after a mid-stream format change
           with no queued buffers and an adjusted control: the
           generator thread is already gone (4.19). *)
        if v.reqbufs = 0 && v.fmt_changes >= 2 && v.ctrl_set then begin
          c ctx 25;
          Ctx.bug ctx "vivid_stop_generating_vid_cap"
        end;
        let combo =
          (if v.reqbufs > 0 then 1 else 0)
          lor (if v.ctrl_set then 2 else 0)
          lor if v.fmt_changes >= 2 then 4 else 0
        in
        c ctx (64 + combo);
        v.streaming <- false;
        Ctx.ok0
      end)

let h_queryctrl ctx args =
  c ctx 27;
  with_video ctx args (fun v ->
      let id = Arg.as_int (Arg.nth args 2) in
      if Int64.compare id 0x10000L > 0 && v.streaming then begin
        (* Control index beyond the table while the generator reads
           it. *)
        c ctx 28;
        Ctx.bug ctx "v4l2_queryctrl_oob";
        Ctx.err Errno.EINVAL
      end
      else begin
        c ctx 29;
        Ctx.ok0
      end)

let h_s_ctrl ctx args =
  c ctx 31;
  with_video ctx args (fun v ->
      c ctx 32;
      v.ctrl_set <- true;
      ignore args;
      Ctx.ok0)

let descriptions =
  {|
# Vivid virtual video driver (V4L2).
resource fd_vivid[fd]
struct v4l2_fmt { width int32, height int32, pixelformat int32 }
openat$vivid(dirfd fd, file filename["/dev/video0"], oflags flags[open_flags]) fd_vivid
ioctl$VIDIOC_QUERYCAP(fd fd_vivid, cmd const[0x80685600])
ioctl$VIDIOC_S_FMT(fd fd_vivid, cmd const[0xc0d05605], fmt ptr[in, v4l2_fmt])
ioctl$VIDIOC_REQBUFS(fd fd_vivid, cmd const[0xc0145608], count int32[0:32])
ioctl$VIDIOC_STREAMON(fd fd_vivid, cmd const[0x40045612])
ioctl$VIDIOC_STREAMOFF(fd fd_vivid, cmd const[0x40045613])
ioctl$VIDIOC_QUERYCTRL(fd fd_vivid, cmd const[0xc0445624], id int32)
ioctl$VIDIOC_S_CTRL(fd fd_vivid, cmd const[0xc008561c], ctrl ptr[in, int64])
|}

let copy_kind : State.fd_kind -> State.fd_kind option = function
  | Vivid v -> Some (Vivid { v with reqbufs = v.reqbufs })
  | _ -> None

let sub =
  Subsystem.make ~name:"vivid" ~descriptions ~copy_kind
    ~handlers:
      [
        ("openat$vivid", h_open);
        ("ioctl$VIDIOC_QUERYCAP", h_querycap);
        ("ioctl$VIDIOC_S_FMT", h_s_fmt);
        ("ioctl$VIDIOC_REQBUFS", h_reqbufs);
        ("ioctl$VIDIOC_STREAMON", h_streamon);
        ("ioctl$VIDIOC_STREAMOFF", h_streamoff);
        ("ioctl$VIDIOC_QUERYCTRL", h_queryctrl);
        ("ioctl$VIDIOC_S_CTRL", h_s_ctrl);
      ]
    ()
