type t =
  | Data_race
  | Use_after_free
  | Out_of_bounds
  | Null_ptr_deref
  | Memory_leak
  | Uninit_value
  | Deadlock
  | Refcount_bug
  | General_protection_fault
  | Paging_fault
  | Divide_error
  | Kernel_bug
  | Inconsistent_lock_state

let to_string = function
  | Data_race -> "data race"
  | Use_after_free -> "use after free"
  | Out_of_bounds -> "out of bounds"
  | Null_ptr_deref -> "null-ptr-deref"
  | Memory_leak -> "memory leak"
  | Uninit_value -> "uninit value"
  | Deadlock -> "deadlock"
  | Refcount_bug -> "refcount bug"
  | General_protection_fault -> "general protection fault"
  | Paging_fault -> "paging fault"
  | Divide_error -> "divide error"
  | Kernel_bug -> "kernel bug"
  | Inconsistent_lock_state -> "inconsistent lock state"

let all =
  [
    Data_race; Use_after_free; Out_of_bounds; Null_ptr_deref; Memory_leak;
    Uninit_value; Deadlock; Refcount_bug; General_protection_fault;
    Paging_fault; Divide_error; Kernel_bug; Inconsistent_lock_state;
  ]

let of_string s = List.find_opt (fun r -> String.equal (to_string r) s) all
let pp ppf r = Fmt.string ppf (to_string r)

let is_memory_error = function
  | Use_after_free | Out_of_bounds | Uninit_value | Memory_leak -> true
  | Data_race | Null_ptr_deref | Deadlock | Refcount_bug
  | General_protection_fault | Paging_fault | Divide_error | Kernel_bug
  | Inconsistent_lock_state ->
    false

let is_concurrency = function
  | Data_race | Deadlock | Inconsistent_lock_state -> true
  | Use_after_free | Out_of_bounds | Uninit_value | Memory_leak
  | Null_ptr_deref | Refcount_bug | General_protection_fault | Paging_fault
  | Divide_error | Kernel_bug ->
    false
