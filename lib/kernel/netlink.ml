(* Netlink message layer: NETLINK_ROUTE (link / address / qdisc
   management) and generic netlink (runtime family-id resolution plus
   simulated nlctrl / devlink / ethtool families).

   The rtnetlink handlers mutate the same device table that the netdev
   ioctl paths manage (via the accessors netdev.mli exposes), so the
   relation learner can discover genuine cross-subsystem influence:
   RTM_NEWLINK creates the device a packet socket transmits on,
   RTM_SETLINK flips the [up] bit that gates [sendto$packet], and
   RTM_NEWQDISC installs the zero-limit qdisc that
   [qdisc_calculate_pkt_len] trips over. *)

type nl_proto = Route | Generic

type nl_sock = {
  nproto : nl_proto;
  mutable memberships : int;
  mutable bound_family : int option;  (** Generic: family id from bind. *)
  mutable dump_offset : int;  (** Links already emitted by the dump. *)
  mutable dump_total : int;  (** Link count when the dump started; -1 = idle. *)
  mutable queued : int;  (** Reply messages waiting for recvmsg. *)
}

type genl_family = {
  gname : string;
  mutable gid : int;  (** Runtime id; reassigned on reload. *)
  mutable registered : bool;
  mutable sends : int;
}

type State.fd_kind += Nl_sock of nl_sock
type State.global += Genl_families of (string, genl_family) Hashtbl.t
type State.global += Nl_addrs of (string, int64 list) Hashtbl.t

let blk = Coverage.region ~name:"netlink" ~size:512
let c ctx o = Ctx.cover ctx (blk + o)

(* Effect slots. "netdevs" is the same slot netdev.ml interns — the
   rtnetlink handlers mutate that shared table directly. The
   per-socket receive state (queues, cursors, memberships) is the
   fd:nl_sock payload; socket creation itself is exempt
   (fresh-payload allocation). *)
let s_genl = Effect.slot "genl_families"
let s_nl_addrs = Effect.slot "nl_addrs"
let s_nl_sock = Effect.slot "fd:nl_sock"
let s_netdevs = Effect.slot "netdevs"

let nlmsg_hdrlen = 16
let nla_hdrlen = 4
let nlm_f_dump = 0x300
let nlm_f_create = 0x400
let nlm_f_excl = 0x800
let dump_batch = 2
let genl_base_id = 0x10

let fresh_sock nproto =
  {
    nproto;
    memberships = 0;
    bound_family = None;
    dump_offset = 0;
    dump_total = -1;
    queued = 0;
  }

let families_of st =
  State.record_read st s_genl;
  match State.global st "genl_families" with
  | Some (Genl_families t) -> t
  | Some _ | None -> failwith "netlink: state not initialized"

let addrs_of st =
  State.record_read st s_nl_addrs;
  match State.global st "nl_addrs" with
  | Some (Nl_addrs t) -> t
  | Some _ | None -> failwith "netlink: state not initialized"

(* Queue a reply on the socket: fd:nl_sock payload write. *)
let enqueue st s n =
  State.record_write st s_nl_sock;
  s.queued <- s.queued + n

let next_family_id st = genl_base_id - 1 + State.incr_counter st "genl_next_id"

let register_family st name =
  Hashtbl.replace (families_of st) name
    { gname = name; gid = next_family_id st; registered = true; sends = 0 }

let family st name = Hashtbl.find_opt (families_of st) name

let family_by_id st id =
  Hashtbl.fold
    (fun _ f acc -> if f.gid = id && f.registered then Some f else acc)
    (families_of st) None

let init st =
  State.set_global st "genl_families" (Genl_families (Hashtbl.create 4));
  State.set_global st "nl_addrs" (Nl_addrs (Hashtbl.create 4));
  register_family st "nlctrl";
  register_family st "devlink";
  register_family st "ethtool"

(* {2 Socket plumbing} *)

let h_socket_route ctx _args =
  c ctx 0;
  let entry = State.alloc_fd ctx.Ctx.st (Nl_sock (fresh_sock Route)) in
  Ctx.ok (Int64.of_int entry.State.fd)

let h_socket_generic ctx _args =
  c ctx 1;
  let entry = State.alloc_fd ctx.Ctx.st (Nl_sock (fresh_sock Generic)) in
  Ctx.ok (Int64.of_int entry.State.fd)

let with_nl ctx ~proto args k =
  match State.lookup_fd ctx.Ctx.st (Arg.as_fd (Arg.nth args 0)) with
  | Some { kind = Nl_sock s; _ } when s.nproto = proto ->
    State.record_read ctx.Ctx.st s_nl_sock;
    k s
  | Some { kind = Nl_sock _; _ } ->
    c ctx 2;
    Ctx.err Errno.EOPNOTSUPP
  | Some _ ->
    c ctx 3;
    Ctx.err Errno.EOPNOTSUPP
  | None ->
    c ctx 4;
    Ctx.err Errno.EBADF

(* Validate the nlmsghdr prefix common to every rtnetlink message:
   pointer present, length covers the header, type matches the handler.
   Passes the dereferenced message and its flags word on success. *)
let with_msg ctx ~at ~mtype args k =
  let msg = Arg.nth args at in
  if Arg.is_null msg then begin
    c ctx 10;
    Ctx.err Errno.EFAULT
  end
  else begin
    let nlen = Int64.to_int (Arg.as_int (Arg.field msg 0)) in
    let ntype = Int64.to_int (Arg.as_int (Arg.field msg 1)) in
    let nflags = Int64.to_int (Arg.as_int (Arg.field msg 2)) in
    if nlen < nlmsg_hdrlen then begin
      c ctx 11;
      Ctx.err Errno.EINVAL
    end
    else if ntype <> mtype then begin
      c ctx 12;
      Ctx.err Errno.EOPNOTSUPP
    end
    else begin
      c ctx 13;
      k msg nflags
    end
  end

(* {2 Attribute TLV walk} *)

type attrs = {
  mutable a_ifname : string option;
  mutable a_kind : string option;
  mutable a_mtu : int option;
  mutable a_addr : int64 option;
  mutable a_qlimit : int option;
  mutable a_count : int;
  mutable a_truncated : bool;
}

let rec arg_size = function
  | Arg.Int _ | Arg.Slot _ -> 8
  | Arg.Str s -> String.length s
  | Arg.Buf b -> Bytes.length b
  | Arg.Rec fs -> List.fold_left (fun acc f -> acc + arg_size f) 0 fs
  | Arg.Nothing -> 0

(* An array of unions arrives as [Rec [Rec [Rec fields]; ...]]: the
   extra layer is the union wrapper. Plain struct elements have no
   wrapper, so unwrap only single-element records. *)
let attr_fields = function
  | Arg.Rec [ (Arg.Rec _ as inner) ] -> inner
  | other -> other

(* Walk an rtattr TLV list. Each attribute claims [alen] bytes; a claim
   exceeding the actual payload means the kernel-side parser would read
   past the end of the message (the KMSAN bug below). *)
let parse_attrs ctx msg ~at =
  let acc =
    {
      a_ifname = None;
      a_kind = None;
      a_mtu = None;
      a_addr = None;
      a_qlimit = None;
      a_count = 0;
      a_truncated = false;
    }
  in
  List.iter
    (fun elem ->
      let fields = attr_fields elem in
      let alen = Int64.to_int (Arg.as_int (Arg.field fields 0)) in
      let atype = Int64.to_int (Arg.as_int (Arg.field fields 1)) in
      let payload = Arg.field fields 2 in
      acc.a_count <- acc.a_count + 1;
      let truncated = alen > arg_size payload + nla_hdrlen in
      if truncated then begin
        acc.a_truncated <- true;
        c ctx 290
      end
      else c ctx 291;
      match atype with
      | 1 ->
        c ctx 292;
        let kind = Arg.as_str payload in
        acc.a_kind <- Some kind;
        (* Nested IFLA_INFO_DATA parsing trusts the claimed length:
           the vlan module's nested policy walk reads the bytes the
           truncated attribute pretends to carry (5.4). *)
        if truncated && kind = "vlan" then begin
          c ctx 293;
          Ctx.bug ctx "nla_parse_nested"
        end
      | 2 ->
        c ctx 294;
        acc.a_qlimit <- Some (Int64.to_int (Arg.as_int payload))
      | 3 ->
        c ctx 295;
        acc.a_ifname <- Some (Arg.as_str payload)
      | 4 ->
        c ctx 296;
        acc.a_mtu <- Some (Int64.to_int (Arg.as_int payload))
      | 6 ->
        c ctx 297;
        acc.a_addr <- Some (Arg.as_int payload)
      | _ -> c ctx 298)
    (Arg.as_rec (Arg.field msg at));
  acc

(* Resolve the device a message targets: IFLA_IFNAME attribute first,
   else the ifindex-like field of the per-family header interpreted as
   an index into the sorted device list. *)
let resolve_dev st at msg ~idx_field =
  match at.a_ifname with
  | Some name -> Netdev.lookup st name
  | None ->
    let body = Arg.field msg 4 in
    let idx = Int64.to_int (Arg.as_int (Arg.field body idx_field)) in
    let names = Netdev.sorted_names st in
    if idx >= 0 && idx < List.length names then
      Netdev.lookup st (List.nth names idx)
    else None

(* {2 Combination coverage}

   320..383: rtnetlink op (0..7) x target/dump state.
   384..447: genl cmd (low 3 bits) x socket/family state.
   448..511: rtnetlink op x attribute-count class. *)

let rtm_combo ctx ~op ~dev ~up ~dumping ~nattrs =
  let bits =
    (if dev then 1 else 0) lor (if up then 2 else 0)
    lor if dumping then 4 else 0
  in
  c ctx (320 + (op * 8) + bits);
  c ctx (448 + (op * 8) + min 7 nattrs)

let genl_combo ctx ~cmd ~bound ~registered ~nattrs =
  let bits =
    (if bound then 1 else 0)
    lor (if registered then 2 else 0)
    lor if nattrs > 0 then 4 else 0
  in
  c ctx (384 + (cmd land 7 * 8) + bits)

(* {2 NETLINK_ROUTE handlers} *)

let h_newlink ctx args =
  c ctx 30;
  with_nl ctx ~proto:Route args (fun s ->
      with_msg ctx ~at:1 ~mtype:16 args (fun msg nflags ->
          let st = ctx.Ctx.st in
          let at = parse_attrs ctx msg ~at:5 in
          match at.a_ifname with
          | None ->
            c ctx 31;
            rtm_combo ctx ~op:0 ~dev:false ~up:false
              ~dumping:(s.dump_total >= 0) ~nattrs:at.a_count;
            Ctx.err Errno.EINVAL
          | Some name -> (
            let existing = Netdev.lookup st name in
            rtm_combo ctx ~op:0 ~dev:(existing <> None)
              ~up:(match existing with Some d -> d.Netdev.up | None -> false)
              ~dumping:(s.dump_total >= 0) ~nattrs:at.a_count;
            let create = nflags land nlm_f_create <> 0 in
            match (existing, create) with
            | Some _, true when nflags land nlm_f_excl <> 0 ->
              c ctx 32;
              Ctx.err Errno.EEXIST
            | Some dev, _ ->
              (* Modify-in-place form: only device attributes change. *)
              c ctx 33;
              (match at.a_mtu with Some _ -> c ctx 34 | None -> ());
              ignore dev;
              enqueue st s 1;
              Ctx.ok0
            | None, false ->
              c ctx 35;
              Ctx.err Errno.ENODEV
            | None, true ->
              (match at.a_kind with
              | Some "vlan" -> c ctx 36
              | Some "bridge" -> c ctx 37
              | Some "dummy" | None -> c ctx 38
              | Some _ ->
                (* No module registered for the requested link kind. *)
                c ctx 39);
              if
                match at.a_kind with
                | Some ("vlan" | "bridge" | "dummy") | None -> false
                | Some _ -> true
              then Ctx.err Errno.EOPNOTSUPP
              else begin
                c ctx 40;
                Netdev.install st (Netdev.fresh name);
                (match at.a_mtu with Some _ -> c ctx 41 | None -> ());
                enqueue st s 1;
                Ctx.ok0
              end)))

let h_dellink ctx args =
  c ctx 60;
  with_nl ctx ~proto:Route args (fun s ->
      with_msg ctx ~at:1 ~mtype:17 args (fun msg _nflags ->
          let st = ctx.Ctx.st in
          let at = parse_attrs ctx msg ~at:5 in
          let dev = resolve_dev st at msg ~idx_field:2 in
          rtm_combo ctx ~op:1 ~dev:(dev <> None)
            ~up:(match dev with Some d -> d.Netdev.up | None -> false)
            ~dumping:(s.dump_total >= 0) ~nattrs:at.a_count;
          match dev with
          | None ->
            c ctx 61;
            Ctx.err Errno.ENODEV
          | Some d when d.Netdev.dname = "lo" ->
            c ctx 62;
            Ctx.err Errno.EPERM
          | Some d ->
            c ctx 63;
            (* Unregister immediately. A dump that is mid-flight on
               this socket keeps its recorded offset (see GETLINK). *)
            ignore (Netdev.remove st d.Netdev.dname);
            State.record_write st s_nl_addrs;
            Hashtbl.remove (addrs_of st) d.Netdev.dname;
            enqueue st s 1;
            Ctx.ok0))

let h_setlink ctx args =
  c ctx 80;
  with_nl ctx ~proto:Route args (fun s ->
      with_msg ctx ~at:1 ~mtype:19 args (fun msg _nflags ->
          let st = ctx.Ctx.st in
          let at = parse_attrs ctx msg ~at:5 in
          let dev = resolve_dev st at msg ~idx_field:2 in
          rtm_combo ctx ~op:2 ~dev:(dev <> None)
            ~up:(match dev with Some d -> d.Netdev.up | None -> false)
            ~dumping:(s.dump_total >= 0) ~nattrs:at.a_count;
          match dev with
          | None ->
            c ctx 81;
            Ctx.err Errno.ENODEV
          | Some dev ->
            let ifi = Arg.field msg 4 in
            let flags = Int64.to_int (Arg.as_int (Arg.field ifi 3)) in
            let change = Int64.to_int (Arg.as_int (Arg.field ifi 4)) in
            if change land 1 <> 0 then begin
              let want_up = flags land 1 <> 0 in
              if want_up && dev.Netdev.macvlan_dying then begin
                (* Bringing a device back up mid-teardown. *)
                c ctx 82;
                Ctx.err Errno.EBUSY
              end
              else begin
                if want_up <> dev.Netdev.up then
                  c ctx (if want_up then 83 else 84)
                else c ctx 85;
                State.record_write st s_netdevs;
                dev.Netdev.up <- want_up;
                (match at.a_mtu with Some _ -> c ctx 86 | None -> ());
                enqueue st s 1;
                Ctx.ok0
              end
            end
            else begin
              (* change mask clear: attribute-only update. *)
              c ctx 87;
              (match at.a_mtu with Some _ -> c ctx 86 | None -> ());
              enqueue st s 1;
              Ctx.ok0
            end))

let h_getlink ctx args =
  c ctx 100;
  with_nl ctx ~proto:Route args (fun s ->
      with_msg ctx ~at:1 ~mtype:18 args (fun msg nflags ->
          let st = ctx.Ctx.st in
          let at = parse_attrs ctx msg ~at:5 in
          let dumping = s.dump_total >= 0 in
          if nflags land nlm_f_dump = nlm_f_dump then begin
            c ctx 101;
            rtm_combo ctx ~op:3 ~dev:false ~up:false ~dumping
              ~nattrs:at.a_count;
            let count = Netdev.device_count st in
            if not dumping then begin
              (* Start a fresh dump: emit the first batch and record
                 where to resume. *)
              c ctx 102;
              State.record_write st s_nl_sock;
              s.dump_total <- count;
              let batch = min dump_batch count in
              s.dump_offset <- batch;
              s.queued <- s.queued + batch;
              if s.dump_offset >= s.dump_total then begin
                c ctx 103;
                s.dump_total <- -1;
                s.dump_offset <- 0
              end;
              Ctx.ok (Int64.of_int batch)
            end
            else begin
              c ctx 104;
              (* Resuming with an offset recorded before deletions
                 shrank the link table indexes past the end of the
                 per-family dump array (5.6). *)
              if s.dump_offset >= count && s.dump_offset < s.dump_total
              then begin
                c ctx 105;
                Ctx.bug ctx "rtnl_dump_ifinfo"
              end;
              let upper = min count s.dump_total in
              let batch = min dump_batch (max 0 (upper - s.dump_offset)) in
              State.record_write st s_nl_sock;
              s.dump_offset <- s.dump_offset + batch;
              s.queued <- s.queued + batch;
              if s.dump_offset >= upper then begin
                c ctx 106;
                s.dump_total <- -1;
                s.dump_offset <- 0
              end;
              Ctx.ok (Int64.of_int batch)
            end
          end
          else begin
            let dev = resolve_dev st at msg ~idx_field:2 in
            rtm_combo ctx ~op:3 ~dev:(dev <> None)
              ~up:(match dev with Some d -> d.Netdev.up | None -> false)
              ~dumping ~nattrs:at.a_count;
            match dev with
            | Some dev ->
              c ctx 107;
              enqueue st s 1;
              Ctx.ok (if dev.Netdev.up then 1L else 0L)
            | None ->
              c ctx 108;
              Ctx.err Errno.ENODEV
          end))

let h_newaddr ctx args =
  c ctx 130;
  with_nl ctx ~proto:Route args (fun s ->
      with_msg ctx ~at:1 ~mtype:20 args (fun msg _nflags ->
          let st = ctx.Ctx.st in
          let at = parse_attrs ctx msg ~at:5 in
          let dev = resolve_dev st at msg ~idx_field:4 in
          rtm_combo ctx ~op:4 ~dev:(dev <> None)
            ~up:(match dev with Some d -> d.Netdev.up | None -> false)
            ~dumping:(s.dump_total >= 0) ~nattrs:at.a_count;
          match dev with
          | None ->
            c ctx 131;
            Ctx.err Errno.ENODEV
          | Some dev -> (
            match at.a_addr with
            | None ->
              c ctx 132;
              Ctx.err Errno.EINVAL
            | Some addr ->
              let tbl = addrs_of st in
              let cur =
                Option.value ~default:[]
                  (Hashtbl.find_opt tbl dev.Netdev.dname)
              in
              if List.mem addr cur then begin
                c ctx 133;
                Ctx.err Errno.EEXIST
              end
              else begin
                c ctx 134;
                let ifa = Arg.field msg 4 in
                let plen = Int64.to_int (Arg.as_int (Arg.field ifa 1)) in
                if plen = 0 then c ctx 135;
                State.record_write st s_nl_addrs;
                Hashtbl.replace tbl dev.Netdev.dname (addr :: cur);
                enqueue st s 1;
                Ctx.ok0
              end)))

let h_getaddr ctx args =
  c ctx 150;
  with_nl ctx ~proto:Route args (fun s ->
      with_msg ctx ~at:1 ~mtype:22 args (fun msg _nflags ->
          let st = ctx.Ctx.st in
          let at = parse_attrs ctx msg ~at:5 in
          let dev = resolve_dev st at msg ~idx_field:4 in
          rtm_combo ctx ~op:5 ~dev:(dev <> None)
            ~up:(match dev with Some d -> d.Netdev.up | None -> false)
            ~dumping:(s.dump_total >= 0) ~nattrs:at.a_count;
          match dev with
          | None ->
            c ctx 151;
            Ctx.err Errno.ENODEV
          | Some dev ->
            let n =
              List.length
                (Option.value ~default:[]
                   (Hashtbl.find_opt (addrs_of st) dev.Netdev.dname))
            in
            if n = 0 then c ctx 152 else c ctx 153;
            enqueue st s n;
            Ctx.ok (Int64.of_int n)))

let h_newqdisc ctx args =
  c ctx 170;
  with_nl ctx ~proto:Route args (fun s ->
      with_msg ctx ~at:1 ~mtype:36 args (fun msg _nflags ->
          let st = ctx.Ctx.st in
          let at = parse_attrs ctx msg ~at:5 in
          let dev = resolve_dev st at msg ~idx_field:1 in
          rtm_combo ctx ~op:6 ~dev:(dev <> None)
            ~up:(match dev with Some d -> d.Netdev.up | None -> false)
            ~dumping:(s.dump_total >= 0) ~nattrs:at.a_count;
          match dev with
          | None ->
            c ctx 171;
            Ctx.err Errno.ENODEV
          | Some dev -> (
            match at.a_qlimit with
            | None ->
              c ctx 172;
              Ctx.err Errno.EINVAL
            | Some limit ->
              c ctx 173;
              (* Same field the ioctl path manages: a zero limit arms
                 netdev's qdisc_calculate_pkt_len out-of-bounds. *)
              State.record_write st s_netdevs;
              dev.Netdev.qdisc_limit <- Some limit;
              if limit = 0 then c ctx 174;
              let tcm = Arg.field msg 4 in
              let parent = Int64.to_int (Arg.as_int (Arg.field tcm 3)) in
              if parent <> 0 then c ctx 175;
              enqueue st s 1;
              Ctx.ok0)))

let h_recvmsg ctx args =
  c ctx 190;
  match State.lookup_fd ctx.Ctx.st (Arg.as_fd (Arg.nth args 0)) with
  | Some { kind = Nl_sock s; _ } ->
    State.record_read ctx.Ctx.st s_nl_sock;
    if s.queued = 0 then begin
      c ctx 191;
      Ctx.ok 0L
    end
    else begin
      c ctx 192;
      (* Mid-dump replies carry NLM_F_MULTI. *)
      if s.dump_total >= 0 then c ctx 193;
      let n = s.queued in
      State.record_write ctx.Ctx.st s_nl_sock;
      s.queued <- 0;
      Ctx.ok (Int64.of_int (n * 20))
    end
  | Some { kind = Sock.Sock sk; _ } when sk.Sock.proto = Sock.Netlink ->
    (* Plain sock.ml netlink socket: no message layer, empty queue. *)
    c ctx 194;
    Ctx.ok 0L
  | Some _ ->
    c ctx 195;
    Ctx.err Errno.EOPNOTSUPP
  | None ->
    c ctx 196;
    Ctx.err Errno.EBADF

(* {2 Generic netlink handlers} *)

let h_getfamily ctx args =
  c ctx 200;
  with_nl ctx ~proto:Generic args (fun s ->
      let msg = Arg.nth args 1 in
      if Arg.is_null msg then begin
        c ctx 201;
        Ctx.err Errno.EFAULT
      end
      else begin
        let nlen = Int64.to_int (Arg.as_int (Arg.field msg 0)) in
        if nlen < nlmsg_hdrlen then begin
          c ctx 202;
          Ctx.err Errno.EINVAL
        end
        else begin
          let name = Arg.as_str (Arg.field msg 3) in
          match family ctx.Ctx.st name with
          | Some f when f.registered ->
            c ctx 203;
            genl_combo ctx ~cmd:3 ~bound:(s.bound_family <> None)
              ~registered:true ~nattrs:0;
            enqueue ctx.Ctx.st s 1;
            Ctx.ok (Int64.of_int f.gid)
          | Some _ ->
            (* Known name whose family was unloaded. *)
            c ctx 204;
            Ctx.err Errno.ENOENT
          | None ->
            c ctx 205;
            Ctx.err Errno.ENOENT
        end
      end)

let h_bind_genl ctx args =
  c ctx 220;
  with_nl ctx ~proto:Generic args (fun s ->
      let id = Int64.to_int (Arg.as_int (Arg.nth args 1)) in
      match family_by_id ctx.Ctx.st id with
      | Some f ->
        c ctx 221;
        if f.gname = "nlctrl" then c ctx 222;
        State.record_write ctx.Ctx.st s_nl_sock;
        s.bound_family <- Some id;
        Ctx.ok0
      | None ->
        c ctx 223;
        Ctx.err Errno.EINVAL)

(* Count and cover a generic-netlink attribute list. *)
let genl_attrs ctx msg ~at =
  let n = ref 0 in
  List.iter
    (fun elem ->
      let fields = attr_fields elem in
      let alen = Int64.to_int (Arg.as_int (Arg.field fields 0)) in
      let atype = Int64.to_int (Arg.as_int (Arg.field fields 1)) in
      let payload = Arg.field fields 2 in
      incr n;
      if alen > arg_size payload + nla_hdrlen then c ctx 316;
      c ctx (300 + min 15 atype))
    (Arg.as_rec (Arg.field msg at));
  !n

let h_genl_send ctx args =
  c ctx 230;
  with_nl ctx ~proto:Generic args (fun s ->
      let st = ctx.Ctx.st in
      (match s.bound_family with
      | Some b when family_by_id st b = None ->
        (* The socket still points at a genl_family freed by
           unregister (or replaced by a reload): the receive path
           dispatches through the stale ops table (5.11). *)
        c ctx 231;
        Ctx.bug ctx "genl_rcv_msg"
      | Some _ -> c ctx 232
      | None -> ());
      let id = Int64.to_int (Arg.as_int (Arg.nth args 1)) in
      match family_by_id st id with
      | None ->
        c ctx 233;
        Ctx.err Errno.ENOENT
      | Some f ->
        let msg = Arg.nth args 2 in
        if Arg.is_null msg then begin
          c ctx 234;
          Ctx.err Errno.EFAULT
        end
        else begin
          let nlen = Int64.to_int (Arg.as_int (Arg.field msg 0)) in
          if nlen < nlmsg_hdrlen then begin
            c ctx 235;
            Ctx.err Errno.EINVAL
          end
          else begin
            let cmd = Int64.to_int (Arg.as_int (Arg.field msg 1)) in
            let nattrs = genl_attrs ctx msg ~at:3 in
            genl_combo ctx ~cmd ~bound:(s.bound_family <> None)
              ~registered:f.registered ~nattrs;
            State.record_write st s_genl;
            f.sends <- f.sends + 1;
            if cmd = 0 then begin
              (* CTRL_CMD_UNSPEC: no family accepts it. *)
              c ctx 236;
              Ctx.err Errno.EOPNOTSUPP
            end
            else begin
              (match f.gname with
              | "devlink" -> c ctx 237
              | "ethtool" -> c ctx 238
              | "nlctrl" -> c ctx 239
              | _ -> c ctx 240);
              enqueue st s 1;
              Ctx.ok 0L
            end
          end
        end)

let h_devlink_reload ctx args =
  c ctx 260;
  with_nl ctx ~proto:Generic args (fun s ->
      let st = ctx.Ctx.st in
      let id = Int64.to_int (Arg.as_int (Arg.nth args 1)) in
      match family_by_id st id with
      | None ->
        c ctx 261;
        Ctx.err Errno.ENOENT
      | Some f when f.gname <> "devlink" ->
        c ctx 262;
        Ctx.err Errno.EOPNOTSUPP
      | Some f ->
        c ctx 263;
        let msg = Arg.nth args 2 in
        if not (Arg.is_null msg) then
          ignore (genl_attrs ctx msg ~at:3);
        (* Reload unregisters and re-registers the family under a
           fresh runtime id; ids saved before the reload now dangle. *)
        State.record_write st s_genl;
        f.gid <- next_family_id st;
        genl_combo ctx ~cmd:1 ~bound:(s.bound_family <> None)
          ~registered:true ~nattrs:0;
        enqueue st s 1;
        Ctx.ok (Int64.of_int f.gid))

let h_nlctrl_unregister ctx args =
  c ctx 270;
  with_nl ctx ~proto:Generic args (fun _s ->
      match family_by_id ctx.Ctx.st (Int64.to_int (Arg.as_int (Arg.nth args 1))) with
      | None ->
        c ctx 271;
        Ctx.err Errno.ENOENT
      | Some f when f.gname = "nlctrl" ->
        (* The control family itself cannot be unloaded. *)
        c ctx 272;
        Ctx.err Errno.EPERM
      | Some f ->
        c ctx 273;
        State.record_write ctx.Ctx.st s_genl;
        f.registered <- false;
        Ctx.ok0)

let h_add_membership ctx args =
  c ctx 280;
  let group =
    match Arg.nth args 3 with
    | Arg.Rec [ g ] -> Int64.to_int (Arg.as_int g)
    | g -> Int64.to_int (Arg.as_int g)
  in
  match State.lookup_fd ctx.Ctx.st (Arg.as_fd (Arg.nth args 0)) with
  | Some { kind = Nl_sock s; _ } ->
    State.record_read ctx.Ctx.st s_nl_sock;
    if group <= 0 then begin
      c ctx 281;
      Ctx.err Errno.EINVAL
    end
    else if s.memberships >= 8 then begin
      c ctx 282;
      Ctx.err Errno.ENOSPC
    end
    else begin
      c ctx 283;
      State.record_write ctx.Ctx.st s_nl_sock;
      s.memberships <- s.memberships + 1;
      Ctx.ok0
    end
  | Some { kind = Sock.Sock sk; _ } when sk.Sock.proto = Sock.Netlink ->
    c ctx 284;
    Ctx.ok0
  | Some _ ->
    c ctx 285;
    Ctx.err Errno.EOPNOTSUPP
  | None ->
    c ctx 286;
    Ctx.err Errno.EBADF

let descriptions =
  {|
# Netlink message layer: rtnetlink link/addr/qdisc management over
# NETLINK_ROUTE, and generic netlink with runtime-resolved family ids.
resource sock_nl_route[sock_netlink]
resource sock_nl_generic[sock_netlink]
resource genl_family_id[int16]: -1
flags nlm_flags = 0x1 0x4 0x100 0x200 0x300 0x400 0x800
flags iff_flags = 0x0 0x1 0x2 0x40 0x1000
flags ifa_flags = 0x0 0x1 0x2 0x80
struct ifinfomsg_sim { ifam int8, ifitype int16, ifindex int32[0:8], ifflags flags[iff_flags], change int32[0:1] }
struct ifaddrmsg_sim { afam int8, prefixlen int8[0:32], aflags flags[ifa_flags], ascope int8, aindex int32[0:8] }
struct tcmsg_sim { tfam int8, tcmindex int32[0:8], tcmhandle int32, tcmparent int32[0:2] }
struct nlattr_kind { klen int16[0:64], ktype const[1], kind string["dummy", "vlan", "bridge"] }
struct nlattr_qlimit { qlen int16[0:64], qtype const[2], limit int32[0:1024] }
struct nlattr_ifname { alen int16[0:64], atype const[3], ifname string["dummy0", "vlan0", "bridge0", "eth0", "lo", "macvlan0"] }
struct nlattr_mtu { mlen int16[0:64], mtype const[4], mtu int32[0:9000] }
struct nlattr_addr { adlen int16[0:64], adtype const[6], addr int64 }
union rt_attr { aname nlattr_ifname, amtu nlattr_mtu, akind nlattr_kind, aaddr nlattr_addr, aqlimit nlattr_qlimit }
struct nlmsg_newlink { nlen int16[0:256], ntype const[16], nflags flags[nlm_flags], seq int32, ifi ifinfomsg_sim, attrs array[rt_attr, 0:3] }
struct nlmsg_dellink { dlen int16[0:256], dtype const[17], dflags flags[nlm_flags], dseq int32, difi ifinfomsg_sim, dattrs array[rt_attr, 0:3] }
struct nlmsg_getlink { glen int16[0:256], gtype const[18], gflags flags[nlm_flags], gseq int32, gifi ifinfomsg_sim, gattrs array[rt_attr, 0:3] }
struct nlmsg_setlink { slen int16[0:256], stype const[19], sflags flags[nlm_flags], sseq int32, sifi ifinfomsg_sim, sattrs array[rt_attr, 0:3] }
struct nlmsg_newaddr { nalen int16[0:256], natype const[20], nafl flags[nlm_flags], naseq int32, ifa ifaddrmsg_sim, naattrs array[rt_attr, 0:3] }
struct nlmsg_getaddr { galen int16[0:256], gatype const[22], gafl flags[nlm_flags], gaseq int32, gifa ifaddrmsg_sim, gaattrs array[rt_attr, 0:3] }
struct nlmsg_newqdisc { qdlen int16[0:256], qdtype const[36], qdfl flags[nlm_flags], qdseq int32, tcm tcmsg_sim, qdattrs array[rt_attr, 0:3] }
struct genl_getfamily { fglen int16[0:256], fgcmd const[3], fgver const[2], fname string["nlctrl", "devlink", "ethtool", "nl80211", "batadv"] }
struct nlattr_genl { gnlen int16[0:64], gntype int16[0:10], gndata int64 }
struct nlattr_genl_str { gslen int16[0:64], gstype const[7], gsdata string["eth0", "dummy0", "netdevsim0"] }
union genl_attr { gnum nlattr_genl, gstr nlattr_genl_str }
struct genl_msg { gmlen int16[0:256], gmcmd int8[0:8], gmver int8[1:2], gmattrs array[genl_attr, 0:3] }
socket$nl_route(domain const[16], type const[3], proto const[0]) sock_nl_route
socket$nl_generic(domain const[16], type const[3], proto const[16]) sock_nl_generic
sendmsg$RTM_NEWLINK(fd sock_nl_route, msg ptr[in, nlmsg_newlink], mflags const[0])
sendmsg$RTM_DELLINK(fd sock_nl_route, msg ptr[in, nlmsg_dellink], mflags const[0])
sendmsg$RTM_SETLINK(fd sock_nl_route, msg ptr[in, nlmsg_setlink], mflags const[0])
sendmsg$RTM_GETLINK(fd sock_nl_route, msg ptr[in, nlmsg_getlink], mflags const[0])
sendmsg$RTM_NEWADDR(fd sock_nl_route, msg ptr[in, nlmsg_newaddr], mflags const[0])
sendmsg$RTM_GETADDR(fd sock_nl_route, msg ptr[in, nlmsg_getaddr], mflags const[0])
sendmsg$RTM_NEWQDISC(fd sock_nl_route, msg ptr[in, nlmsg_newqdisc], mflags const[0])
recvmsg$netlink(fd sock_netlink, buf buffer[out], length len[buf], mflags const[0])
sendmsg$GETFAMILY(fd sock_nl_generic, msg ptr[in, genl_getfamily], mflags const[0]) genl_family_id
bind$nl_generic(fd sock_nl_generic, fam genl_family_id)
sendmsg$genl(fd sock_nl_generic, fam genl_family_id, msg ptr[in, genl_msg], mflags const[0])
sendmsg$devlink_reload(fd sock_nl_generic, fam genl_family_id, msg ptr[in, genl_msg], mflags const[0]) genl_family_id
sendmsg$nlctrl_unregister(fd sock_nl_generic, fam genl_family_id, mflags const[0])
setsockopt$NETLINK_ADD_MEMBERSHIP(fd sock_netlink, level const[270], optname const[1], group ptr[in, int32[1:32]])
|}

let copy_kind : State.fd_kind -> State.fd_kind option = function
  | Nl_sock s -> Some (Nl_sock { s with memberships = s.memberships })
  | _ -> None

let copy_global : State.global -> State.global option = function
  | Genl_families tbl ->
    Some
      (Genl_families
         (State.copy_tbl (fun (f : genl_family) -> { f with gid = f.gid }) tbl))
  | Nl_addrs tbl -> Some (Nl_addrs (Hashtbl.copy tbl))
  | _ -> None

(* Lock classes. The rtnetlink handlers take [Netdev.rtnl] — the same
   class as the netdev ioctl paths — because they mutate the same
   device table; guard-coverage flagged exactly this cross-subsystem
   sharing when they were first annotated with a netlink-local class.
   The per-socket receive state (queues, memberships, dump cursors)
   nests inside under its own class, like lock_sock inside rtnl. *)
let genl_mutex = Lock.register ~rank:20 ~guards:[ "genl_families" ] "genl_mutex"
let nl_sock_lock = Lock.register ~rank:90 ~guards:[ "fd:nl_sock" ] "nl_sock"

let sub =
  let rt = Subsystem.locked [ Netdev.rtnl; nl_sock_lock ] in
  let ge = Subsystem.locked [ genl_mutex; nl_sock_lock ] in
  let sk = Subsystem.locked [ nl_sock_lock ] in
  let rt_spec touches = Lock.scoped [ "rtnl"; "nl_sock" ] ~touches in
  let ge_spec touches = Lock.scoped [ "genl_mutex"; "nl_sock" ] ~touches in
  let sk_spec touches = Lock.scoped [ "nl_sock" ] ~touches in
  Subsystem.make ~name:"netlink" ~descriptions ~init ~copy_kind ~copy_global
    ~handlers:
      [
        ("socket$nl_route", h_socket_route);
        ("socket$nl_generic", h_socket_generic);
        ("sendmsg$RTM_NEWLINK", rt h_newlink);
        ("sendmsg$RTM_DELLINK", rt h_dellink);
        ("sendmsg$RTM_SETLINK", rt h_setlink);
        ("sendmsg$RTM_GETLINK", rt h_getlink);
        ("sendmsg$RTM_NEWADDR", rt h_newaddr);
        ("sendmsg$RTM_GETADDR", rt h_getaddr);
        ("sendmsg$RTM_NEWQDISC", rt h_newqdisc);
        ("recvmsg$netlink", sk h_recvmsg);
        ("sendmsg$GETFAMILY", ge h_getfamily);
        ("bind$nl_generic", ge h_bind_genl);
        ("sendmsg$genl", ge h_genl_send);
        ("sendmsg$devlink_reload", ge h_devlink_reload);
        (* Unregister resolves the sender's socket like every other
           genl op, so it must hold the socket lock too — the first
           draft took genl_mutex alone, and the runtime effect
           validator flagged the unlocked fd:nl_sock read. *)
        ("sendmsg$nlctrl_unregister", ge h_nlctrl_unregister);
        ("setsockopt$NETLINK_ADD_MEMBERSHIP", sk h_add_membership);
      ]
    ~locks:
      [
        ("sendmsg$RTM_NEWLINK", rt_spec [ "netdevs"; "fd:nl_sock" ]);
        ("sendmsg$RTM_DELLINK", rt_spec [ "netdevs"; "nl_addrs"; "fd:nl_sock" ]);
        ("sendmsg$RTM_SETLINK", rt_spec [ "netdevs"; "fd:nl_sock" ]);
        ("sendmsg$RTM_GETLINK", rt_spec [ "fd:nl_sock" ]);
        ("sendmsg$RTM_NEWADDR", rt_spec [ "nl_addrs"; "fd:nl_sock" ]);
        ("sendmsg$RTM_GETADDR", rt_spec [ "fd:nl_sock" ]);
        ("sendmsg$RTM_NEWQDISC", rt_spec [ "netdevs"; "fd:nl_sock" ]);
        ("recvmsg$netlink", sk_spec [ "fd:nl_sock" ]);
        ("sendmsg$GETFAMILY", ge_spec [ "fd:nl_sock" ]);
        ("bind$nl_generic", ge_spec [ "fd:nl_sock" ]);
        ("sendmsg$genl", ge_spec [ "genl_families"; "fd:nl_sock" ]);
        ("sendmsg$devlink_reload", ge_spec [ "genl_families"; "fd:nl_sock" ]);
        ("sendmsg$nlctrl_unregister", ge_spec [ "genl_families" ]);
        ("setsockopt$NETLINK_ADD_MEMBERSHIP", sk_spec [ "fd:nl_sock" ]);
      ]
    ~effects:
      [
        ( "sendmsg$RTM_NEWLINK",
          Effect.spec ~writes:[ "netdevs"; "fd:nl_sock" ] () );
        ( "sendmsg$RTM_DELLINK",
          Effect.spec ~writes:[ "netdevs"; "nl_addrs"; "fd:nl_sock" ] () );
        ( "sendmsg$RTM_SETLINK",
          Effect.spec ~writes:[ "netdevs"; "fd:nl_sock" ] () );
        ( "sendmsg$RTM_GETLINK",
          Effect.spec ~reads:[ "netdevs" ] ~writes:[ "fd:nl_sock" ] () );
        ( "sendmsg$RTM_NEWADDR",
          Effect.spec ~reads:[ "netdevs" ] ~writes:[ "nl_addrs"; "fd:nl_sock" ] () );
        ( "sendmsg$RTM_GETADDR",
          Effect.spec ~reads:[ "netdevs"; "nl_addrs" ] ~writes:[ "fd:nl_sock" ] () );
        ( "sendmsg$RTM_NEWQDISC",
          Effect.spec ~writes:[ "netdevs"; "fd:nl_sock" ] () );
        ("recvmsg$netlink", Effect.spec ~writes:[ "fd:nl_sock" ] ());
        ( "sendmsg$GETFAMILY",
          Effect.spec ~reads:[ "genl_families" ] ~writes:[ "fd:nl_sock" ] () );
        ( "bind$nl_generic",
          Effect.spec ~reads:[ "genl_families" ] ~writes:[ "fd:nl_sock" ] () );
        ( "sendmsg$genl",
          Effect.spec ~writes:[ "genl_families"; "fd:nl_sock" ] () );
        ( "sendmsg$devlink_reload",
          Effect.spec ~writes:[ "genl_families"; "fd:nl_sock" ] () );
        ( "sendmsg$nlctrl_unregister",
          Effect.spec ~reads:[ "fd:nl_sock" ] ~writes:[ "genl_families" ] () );
        ( "setsockopt$NETLINK_ADD_MEMBERSHIP",
          Effect.spec ~writes:[ "fd:nl_sock" ] () );
      ]
    ()
