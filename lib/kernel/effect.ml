(* Handler effect summaries: every handler in the stateful subsystems
   declares the [State.global] slots and fd-payload pseudo-slots it
   reads and writes (the same slot vocabulary as [Lock.cls.guards]),
   and instrumented state accessors record the observed per-execution
   effect trace. The pure checking core here backs three consumers:
   the static effect-drift pass ([Healer_analysis.Effects]), the
   Eraser-style lockset race detector ([Healer_analysis.Races]) and
   the runtime validator in [Kernel.exec_call] (the same
   HEALER_DEBUG_VALIDATE contract as Progcheck and lockdep).

   Like the lock model, everything is simulator-shaped: the kernel is
   single-threaded, so "races" are declared-discipline findings — a
   write/write or write/read handler pair on one slot whose declared
   locksets cannot serialize, exactly what Eraser's lockset algorithm
   reports on traces that never actually raced. *)

(* ---- specs and models ---- *)

type spec = { reads : string list; writes : string list }

let spec ?(reads = []) ?(writes = []) () = { reads; writes }

type model = {
  slots : string list;  (* the known slot vocabulary *)
  especs : (string * string * spec) list;
      (* (subsystem, handler, declared effect spec) *)
}

type finding = { check : string; subject : string; msg : string }

exception Violation of finding

let () =
  Printexc.register_printer (function
    | Violation f ->
      Some
        (Printf.sprintf "Effect.Violation(%s: %s: %s)" f.check f.subject f.msg)
    | _ -> None)

(* The fd wildcard: generic vfs handlers ([read], [write], [close],
   ...) dispatch file_ops on whatever fd kind the descriptor carries,
   so their specs declare ["fd:*"] — any fd-payload pseudo-slot. *)
let wildcard = "fd:*"
let fd_prefix = "fd:"
let is_fd_slot s = String.starts_with ~prefix:fd_prefix s

let covers ~declared slot =
  List.exists
    (fun d -> String.equal d slot || (String.equal d wildcard && is_fd_slot slot))
    declared

(* ---- runtime switches ---- *)

(* Recording hooks default on (they feed the per-slot access counters
   behind `healer analyze --effects`); HEALER_EFFECT_HOOKS=0 turns
   them off, which the bench uses to measure their overhead.
   Executions are bit-identical either way. *)
let hooks = ref (Lock.env_on ~default:true "HEALER_EFFECT_HOOKS")
let hooks_enabled () = !hooks
let set_hooks b = hooks := b

(* Trace recording + per-call validation follow the
   HEALER_DEBUG_VALIDATE contract ([Progcheck.set_debug] arms all of
   Progcheck, lockdep and this). *)
let validate = ref (Lock.env_on "HEALER_DEBUG_VALIDATE")
let validate_enabled () = !validate
let set_validate b = validate := b

(* ---- slot interning ----

   Observed accesses are accounted in dense integer slots into
   [State]'s effect-count arrays (one read + one write counter per
   slot), so the record hook on the execution hot path is an array
   increment. Subsystem modules intern their slots at module-init
   time; after [Kernel.force_init] the table is read-only. *)

let slot_names = ref (Array.make 0 "")
let n_interned = ref 0
let interned : (string, int) Hashtbl.t = Hashtbl.create 32

let slot name =
  match Hashtbl.find_opt interned name with
  | Some i -> i
  | None ->
    let i = !n_interned in
    let cap = Array.length !slot_names in
    if i >= cap then begin
      let a = Array.make (max 16 (2 * cap)) "" in
      Array.blit !slot_names 0 a 0 cap;
      slot_names := a
    end;
    !slot_names.(i) <- name;
    incr n_interned;
    Hashtbl.add interned name i;
    i

let slot_name i = !slot_names.(i)
let n_slots () = !n_interned

let registered_slots () =
  List.init !n_interned (fun i -> !slot_names.(i))

(* ---- known-race catalog ----

   The deliberately-unguarded fixture races: each entry names the slot
   and the full set of handlers racing on it, keyed to the
   version-gated bug the race models. The race detector downgrades
   candidate pairs drawn entirely from one entry's parties to Info
   ([race-known-bug]) so the shipped corpus stays warning-clean while
   the true positives remain visible in `healer analyze --races`. *)

type known_race = { kslot : string; parties : string list; bug : string }

let race_registry : known_race list ref = ref []

let register_race ~slot:kslot ~parties ~bug =
  if
    not
      (List.exists
         (fun k -> k.kslot = kslot && k.bug = bug)
         !race_registry)
  then race_registry := { kslot; parties; bug } :: !race_registry

let registered_races () = List.rev !race_registry

(* ---- static checking core ---- *)

let subject_of sub handler = Printf.sprintf "%s/%s" sub handler

let lock_spec_of (lock : Lock.model) handler =
  List.find_opt (fun (_, h, _) -> String.equal h handler) lock.Lock.specs

(* Static effect-model checks: unknown slots, orphan specs (handler
   tables given), handlers whose lock spec declares mutations but that
   carry no effect spec, and lock-spec [touches] the effect spec does
   not acknowledge as writes. An effect spec writing MORE than the
   lock spec touches is legal — that surplus (unguarded writes) is
   exactly what the race detector inspects. *)
let check_model ~lock ?handlers model =
  let out = ref [] in
  let add check subject msg = out := { check; subject; msg } :: !out in
  List.iter
    (fun (sub, handler, sp) ->
      let subject = subject_of sub handler in
      List.iter
        (fun s ->
          if (not (String.equal s wildcard)) && not (List.mem s model.slots)
          then
            add "effect-unknown-slot" subject
              (Printf.sprintf "spec names undeclared state slot %S" s))
        (sp.reads @ sp.writes);
      (match handlers with
      | None -> ()
      | Some hs ->
        if not (List.exists (fun (h, _) -> String.equal h handler) hs) then
          add "effect-orphan-spec" subject
            "effect spec declared for a handler that does not exist");
      match lock_spec_of lock handler with
      | None -> ()
      | Some (_, _, lspec) ->
        List.iter
          (fun t ->
            if not (covers ~declared:sp.writes t) then
              add "effect-guard-mismatch" subject
                (Printf.sprintf
                   "lock spec declares it mutates %S but the effect spec does \
                    not write it"
                   t))
          lspec.Lock.touches)
    model.especs;
  (* A handler whose lock spec declares mutations must summarize them. *)
  List.iter
    (fun (sub, handler, (lspec : Lock.spec)) ->
      if
        lspec.Lock.touches <> []
        && not
             (List.exists
                (fun (_, h, _) -> String.equal h handler)
                model.especs)
      then
        add "effect-missing-spec"
          (subject_of sub handler)
          (Printf.sprintf
             "lock spec declares it mutates %s but no effect spec summarizes \
              its reads/writes"
             (String.concat ", "
                (List.map (Printf.sprintf "%S") lspec.Lock.touches))))
    lock.Lock.specs;
  List.sort_uniq compare (List.rev !out)

(* ---- runtime trace checking ---- *)

(* One observed access: [(is_write, slot name)]. A declared write
   subsumes reads of the same slot (read-modify-write accessors record
   only the write). *)
let check_trace model ~subsystem ~handler events =
  let subject = Printf.sprintf "runtime %s" (subject_of subsystem handler) in
  let out = ref [] in
  let add check msg = out := { check; subject; msg } :: !out in
  let sp =
    match
      List.find_opt (fun (_, h, _) -> String.equal h handler) model.especs
    with
    | Some (_, _, sp) -> Some sp
    | None -> None
  in
  List.iter
    (fun (is_write, s) ->
      match sp with
      | None ->
        add
          (if is_write then "effect-undeclared-write"
           else "effect-undeclared-read")
          (Printf.sprintf "%s state slot %S but declares no effect spec"
             (if is_write then "wrote" else "read")
             s)
      | Some sp ->
        if is_write then begin
          if not (covers ~declared:sp.writes s) then
            add "effect-undeclared-write"
              (Printf.sprintf "wrote state slot %S, not declared in writes" s)
        end
        else if
          not (covers ~declared:sp.reads s || covers ~declared:sp.writes s)
        then
          add "effect-undeclared-read"
            (Printf.sprintf "read state slot %S, not declared in reads" s))
    events;
  List.sort_uniq compare (List.rev !out)

(* ---- the Eraser-style lockset race detector ---- *)

(* Reachability over the declared lock-order edges (a tiny graph;
   recomputed per query). *)
let reaches edges src dst =
  let visited = Hashtbl.create 16 in
  let rec go n =
    n = dst
    || (not (Hashtbl.mem visited n))
       && begin
            Hashtbl.add visited n ();
            List.exists (fun (a, b) -> a = n && go b) edges
          end
  in
  src = dst || List.exists (fun (a, b) -> a = src && go b) edges

(* For every slot, gather the declared accesses [(handler, is_write,
   lockset)] (wildcards excluded: a ["fd:*"] access names no single
   object). A write/write or write/read pair whose locksets do not
   intersect is a candidate race:
   - both parties of a registered fixture race  -> race-known-bug (Info)
   - either side holds no lock at all           -> race-unguarded-slot
   - a class guarding the slot reaches both
     locksets in the declared order graph       -> race-order-masked (Info)
   - otherwise                                  -> race-disjoint-locksets *)
let races ~lock ?(known = []) model =
  let out = ref [] in
  let add check subject msg = out := { check; subject; msg } :: !out in
  let lockset handler =
    match lock_spec_of lock handler with
    | None -> []
    | Some (_, _, lspec) -> List.sort_uniq compare (Lock.acquires lspec)
  in
  let accesses = Hashtbl.create 16 in
  let slot_order = ref [] in
  let record sub handler is_write s =
    if not (String.equal s wildcard) then begin
      if not (Hashtbl.mem accesses s) then slot_order := s :: !slot_order;
      let prev = try Hashtbl.find accesses s with Not_found -> [] in
      Hashtbl.replace accesses s
        ((sub, handler, is_write, lockset handler) :: prev)
    end
  in
  List.iter
    (fun (sub, handler, sp) ->
      List.iter (fun s -> record sub handler true s) sp.writes;
      List.iter
        (fun s -> if not (List.mem s sp.writes) then record sub handler false s)
        sp.reads)
    model.especs;
  let order = Lock.order_edges lock in
  let guardians s =
    List.filter_map
      (fun (c : Lock.cls) ->
        if List.mem s c.Lock.guards then Some c.Lock.cname else None)
      lock.Lock.classes
  in
  List.iter
    (fun s ->
      let acc = List.rev (Hashtbl.find accesses s) in
      let subject = Printf.sprintf "state slot %S" s in
      let rec pairs = function
        | [] -> ()
        | (sub1, h1, w1, ls1) :: rest ->
          List.iter
            (fun (sub2, h2, w2, ls2) ->
              if
                (w1 || w2)
                && not (String.equal h1 h2)
                && not (List.exists (fun c -> List.mem c ls2) ls1)
              then begin
                let pair =
                  Printf.sprintf "%s <-> %s"
                    (subject_of sub1 h1) (subject_of sub2 h2)
                in
                let kind = if w1 && w2 then "write/write" else "write/read" in
                match
                  List.find_opt
                    (fun k ->
                      String.equal k.kslot s
                      && List.mem h1 k.parties
                      && List.mem h2 k.parties)
                    known
                with
                | Some k ->
                  add "race-known-bug" subject
                    (Printf.sprintf
                       "%s pair %s with disjoint locksets: the intentional \
                        race behind bug %S"
                       kind pair k.bug)
                | None ->
                  if ls1 = [] || ls2 = [] then
                    add "race-unguarded-slot" subject
                      (Printf.sprintf
                         "%s pair %s: %s accesses it under no lock at all \
                          (candidate race)"
                         kind pair
                         (subject_of
                            (if ls1 = [] then sub1 else sub2)
                            (if ls1 = [] then h1 else h2)))
                  else if
                    List.exists
                      (fun g ->
                        List.exists (fun c -> reaches order g c) ls1
                        && List.exists (fun c -> reaches order g c) ls2)
                      (guardians s)
                  then
                    add "race-order-masked" subject
                      (Printf.sprintf
                         "%s pair %s holds disjoint locksets, but a class \
                          guarding the slot precedes both in the declared \
                          order graph (race masked by lock-order convention)"
                         kind pair)
                  else
                    add "race-disjoint-locksets" subject
                      (Printf.sprintf
                         "%s pair %s under disjoint locksets [%s] vs [%s] \
                          (candidate race)"
                         kind pair (String.concat ", " ls1)
                         (String.concat ", " ls2))
              end)
            rest;
          pairs rest
      in
      pairs acc)
    (List.rev !slot_order);
  List.sort_uniq compare (List.rev !out)

(* ---- relation inference ---- *)

(* The write(slot) -> read(slot) handler-pair graph: handler [w]
   writing a slot that handler [r] reads predicts an influence edge
   w -> r (HEALER's relation, justified by shared state rather than
   resource flow). Wildcard accesses predict nothing. *)
let predicted_edges model =
  let writers = Hashtbl.create 16 in
  List.iter
    (fun (_, handler, sp) ->
      List.iter
        (fun s ->
          if not (String.equal s wildcard) then
            Hashtbl.replace writers (s, handler) ())
        sp.writes)
    model.especs;
  let out = ref [] in
  List.iter
    (fun (_, reader, sp) ->
      List.iter
        (fun s ->
          if not (String.equal s wildcard) then
            Hashtbl.iter
              (fun (s', writer) () ->
                if String.equal s s' && not (String.equal writer reader) then
                  out := (writer, reader, s) :: !out)
              writers)
        (List.sort_uniq compare (sp.reads @ sp.writes)))
    model.especs;
  List.sort_uniq compare !out
