(** KCOV-style branch coverage collection.

    Each simulated kernel subsystem allocates a contiguous region of
    branch identifiers at module initialization; handlers then report
    the blocks they pass through into a per-execution collector. The
    executor snapshots the collector around each call to obtain
    HEALER's per-call coverage. *)

type t
(** A coverage collector (one per executing virtual machine).
    Collectors are designed for reuse: [reset] is O(1) (a generation
    bump, not a wipe), so a single collector serves every execution
    of a long campaign without per-window allocation. *)

val create : unit -> t

val hit : t -> int -> unit
(** Record that branch [id] was covered. Duplicate hits within one
    collection window are collapsed. *)

val blocks : t -> int list
(** Covered branch ids in first-hit order since the last [reset]. *)

val reset : t -> unit

(** {2 Branch-id regions} *)

val region : name:string -> size:int -> int
(** [region ~name ~size] allocates (once per [name]) a region of [size]
    consecutive branch ids and returns its base id. Calling it again
    with the same [name] returns the same base. Raises
    [Invalid_argument] if re-registered with a larger size. *)

val region_name : int -> string
(** [region_name id] is the name of the region containing branch [id],
    or ["?"] if the id was never allocated. Used by the crash
    symbolizer and by coverage reports. Binary search over the sorted
    region array, O(log regions). *)

val force_regions : unit -> unit
(** Build the sorted lookup array for [region_name] now. Must be
    called (via [Kernel.force_init]) before sharing the registry
    across domains: lookups lazily rebuild the array when the
    registry grew, which is a data race if the first lookups happen
    concurrently. *)

val total_allocated : unit -> int
(** Total number of branch ids allocated across all regions. *)
