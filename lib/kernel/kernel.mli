(** The assembled simulated kernel: boots a {!State.t} for a version,
    compiles the union of all subsystem descriptions into a
    {!Healer_syzlang.Target.t}, and dispatches executed calls to
    subsystem handlers.

    This module is the executor's only entry point into the kernel. *)

type t
(** A booted kernel instance. *)

val subsystems : unit -> Subsystem.t list
(** All registered subsystems (registers them on first use). *)

val target : unit -> Healer_syzlang.Target.t
(** The compiled description set (memoized; identical across boots). *)

val source : unit -> string
(** The full Syzlang corpus: every subsystem's descriptions
    concatenated in registration order — exactly what {!target}
    compiles. *)

val locate_line : int -> (string * int) option
(** Map a 1-based line of {!source} back to [(subsystem, local line)].
    [None] for lines past the end. Lets analysis diagnostics point at
    the subsystem that owns a declaration. *)

val subsystem_of : string -> string
(** [subsystem_of syscall_name] is the name of the subsystem whose
    handler serves the call, or ["?"] for unknown names. Used by the
    Moonshine baseline's read-write dependency approximation. *)

val force_init : unit -> unit
(** Force every lazily initialized process-global (subsystem registry,
    memoized target, handler/subsystem/line dispatch tables, crash
    symbol table, coverage-region lookup). The globals are read-only
    afterwards, making kernel boots and executions safe from multiple
    domains. Must be called before spawning any domain that touches
    the kernel; {!Healer_core.Campaign.run_matrix} does so. *)

val boot :
  ?san:Sanitizer.config ->
  ?features:string list ->
  version:Version.t ->
  unit ->
  t
(** Boot a fresh kernel: creates the state and runs every subsystem's
    initializer. [features] are executor capabilities (e.g. ["usb";
    "fault_injection"]) visible to handlers. *)

val reboot : t -> t
(** Fresh state with the same version, sanitizer config and features. *)

val copy : t -> t
(** Snapshot: deep-copy the kernel's mutable state via each
    subsystem's registered copy hooks, so execution can resume from
    the copy while the original stays pristine (the prefix-caching
    executor's primitive). Fails loudly on an fd kind or global slot
    whose subsystem registered no copier — a gap the snapshot tests
    catch. *)

val version : t -> Version.t
val state : t -> State.t
val sanitizers : t -> Sanitizer.config
val features : t -> string list

(** {2 Lock model} *)

val lock_model : unit -> Lock.model
(** The assembled lock model: every registered {!Lock.cls} plus every
    subsystem's declared handler specs. Memoized; the lockdep analysis
    pass and the runtime validator below both read it. *)

val lock_pair_counts : t -> ((string * string) * int) list
(** Lock-pair acquisition counts accumulated by this kernel's
    executions: [((outer, inner), n)] meaning [inner] was acquired [n]
    times while [outer] was held. Sorted; empty when
    {!Lock.hooks_enabled} was off. The queryable concurrency-coverage
    signal behind [healer analyze --locks]. *)

val lock_acquire_counts : t -> (string * int) list
(** Total acquisitions per lock class, sorted by class name. *)

(** {2 Effect model} *)

val effect_model : unit -> Effect.model
(** The assembled effect model: the interned slot vocabulary unioned
    with every lock class's guarded slots, plus every subsystem's
    declared handler effect specs. Memoized; read by the effect-drift
    / race / relation-inference passes and the runtime validator. *)

val effect_counts : t -> (string * int * int) list
(** Per-slot [(slot, reads, writes)] access counts accumulated by this
    kernel's executions, sorted by slot name; empty when
    {!Effect.hooks_enabled} was off. The observed-access signal behind
    [healer analyze --effects]. *)

val exec_call :
  t ->
  ?fault:bool ->
  cov:Coverage.t ->
  Healer_syzlang.Syscall.t ->
  Arg.t list ->
  Ctx.result
(** Execute one call against the kernel. Coverage lands in [cov]
    (caller resets it between calls). [fault] injects an allocation
    failure into this call. May raise {!Crash.Crash}. Unknown syscall
    names return [ENOSYS]. Under {!Lock.validate_enabled} the call's
    recorded lock-acquisition trace is checked against its declared
    spec and the order graph; a divergence raises {!Lock.Violation}.
    Likewise under {!Effect.validate_enabled} the observed state-slot
    access trace must be covered by the handler's declared
    {!Effect.spec}; drift raises {!Effect.Violation}. *)

(** {2 Prepared (compiled) execution}

    The compiled executor resolves each call's dispatch once per
    program: {!prepare} performs the handler-table and subsystem
    lookups that {!exec_call} would repeat per execution, and
    {!exec_prepared} runs a prepared call through a recycled
    {!Ctx.t} with no per-call allocation. The two entry points must
    behave identically — the executor's HEALER_DEBUG_VALIDATE
    differential oracle compares them run-for-run. *)

type prepared
(** A syscall with its handler and owning subsystem pre-resolved.
    Valid across kernels (dispatch tables are process-global and
    immutable after {!force_init}). *)

val prepare : Healer_syzlang.Syscall.t -> prepared

val make_ctx : t -> Coverage.t -> Ctx.t
(** A handler context bound to this kernel's state and the given
    collector; recycled across every call of a compiled run. *)

val exec_prepared :
  t -> ctx:Ctx.t -> ?fault:bool -> prepared -> Arg.t list -> Ctx.result
(** Execute one prepared call. [ctx] must come from {!make_ctx} on
    this kernel (it is {!Ctx.recycle}d first; coverage lands in its
    collector, which the caller resets between calls). Semantics are
    exactly {!exec_call}'s: may raise {!Crash.Crash}, unknown names
    return [ENOSYS], lock traces are validated under
    {!Lock.validate_enabled}. *)

val coredump : t -> cov:Coverage.t -> unit
(** Run the core-dump path, entered after a fault-injected call kills
    the executor process. Covers the binfmt_elf blocks and can trigger
    the [fill_thread_core_info] KMSAN bug (the paper's Listing 2 /
    Section 7 case study). May raise {!Crash.Crash}. *)
