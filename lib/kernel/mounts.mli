(** Mount management: ext4/nfs/reiserfs mounts and umount.

    Injected bugs: [do_umount_null], [nfs23_parse_monolithic],
    [reiserfs_fill_super], [fs_reclaim_acquire] lives in {!Vfs}. *)

type mounts = {
  mutable mounted : (string * string) list;  (** (mountpoint, fstype). *)
  mutable last_umount : int;
}

type State.global += Mounts of mounts

val mount_busy : State.t -> bool
(** Is a umount still settling (within its data-race window)? Read by
    {!Vfs}'s open path with no lock held — the lock-free refcount
    check of Linux's [legitimize_mnt], and the read half of the
    [legitimize_mnt] fixture race (records a ["mounts"] effect read). *)

val sub : Subsystem.t
