(** Shared kernel state: the file-descriptor table and per-subsystem
    global slots.

    Subsystems extend {!fd_kind} with their own object constructors
    (like [struct file] private data) and register whole-subsystem
    state (device registries, journals, console) under named {!global}
    slots at boot. *)

type fd_kind = ..
(** Extended by each subsystem, e.g. [State.fd_kind += Memfd of memfd]. *)

type fd_kind += Dead  (** A closed descriptor whose number was reused. *)

type fd_entry = {
  fd : int;
  mutable kind : fd_kind;
  mutable refs : int;  (** Reference count ([dup] raises it). *)
  mutable closed : bool;
}

type global = ..
(** Extended by subsystems for their non-fd state. *)

type t

val create : version:Version.t -> t
val version : t -> Version.t

val tick : t -> int
(** Bump and return the global operation counter. Handlers use
    distances between ticks to model data-race windows
    deterministically. *)

val now : t -> int
(** Current operation counter without bumping. *)

(** {2 File descriptors} *)

val alloc_fd : t -> fd_kind -> fd_entry
(** Install a new descriptor at the lowest unused number (>= 3). *)

val lookup_fd : t -> int -> fd_entry option
(** [None] for unknown or closed descriptors. *)

val lookup_fd_raw : t -> int -> fd_entry option
(** Like {!lookup_fd} but returns closed entries too (needed for
    use-after-free modeling). *)

val close_fd : t -> int -> bool
(** Drop one reference; marks the entry closed when the count reaches
    zero. Returns false for unknown/already-closed descriptors. *)

val dup_fd : t -> int -> int option
(** Allocate a new descriptor number sharing the same object (bumps the
    refcount) and return it. *)

val live_fds : t -> fd_entry list
(** Open descriptors in ascending fd order. *)

val exists_fd : t -> (fd_entry -> bool) -> bool
(** Does any open descriptor satisfy the predicate? (No allocation or
    ordering — safe for hot paths.) *)

(** {2 Global slots} *)

val set_global : t -> string -> global -> unit
val global : t -> string -> global option
val global_exn : t -> string -> global
(** Raises [Not_found]. *)

(** {2 Snapshots} *)

val copy :
  copy_kind:(fd_kind -> fd_kind) ->
  copy_global:(string -> global -> global) ->
  t ->
  t
(** Deep-copy the state so execution can resume from it later without
    disturbing the original. [copy_kind] / [copy_global] clone the
    subsystem-owned payloads ({!Kernel.copy} assembles them from the
    per-subsystem hooks); the fd table preserves [dup_fd] aliasing
    (two descriptor numbers sharing one entry share its copy too). *)

val copy_tbl : ('b -> 'b) -> ('a, 'b) Hashtbl.t -> ('a, 'b) Hashtbl.t
(** Hash-table clone with a per-value copy function, preserving the
    internal bucket structure (and therefore iteration order) of the
    original — subsystem copy hooks use it for their registries. *)

(** {2 Named counters}

    Small integer scratchpad for cross-call conditions that do not
    warrant a dedicated record (e.g. "number of faults injected"). *)

val incr_counter : t -> string -> int
(** Increment and return the new value (counters start at 0). *)

val counter : t -> string -> int
val set_counter : t -> string -> int -> unit

val fold_counters : (string -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over every named counter (unspecified order — sort for
    deterministic output). *)

(** {2 Lock-acquisition counters}

    Dense integer slots (assigned by [Lock]) into a plain int array,
    so the per-acquire accounting hook is an array increment — far
    cheaper than a string-keyed counter on the execution hot path.
    Copied by {!copy} like every other piece of state. *)

val bump_lock : t -> int -> unit
(** Increment a lock-counter slot, growing the array on demand. *)

val lock_slot_counts : t -> (int * int) list
(** The non-zero [(slot, count)] pairs, in slot order.
    {!Kernel.lock_pair_counts} maps slots back to printable keys. *)

(** {2 Effect-access recording}

    Instrumented subsystem accessors call these with [Effect]'s dense
    slot indices. With hooks on ({!Effect.hooks_enabled}) accesses are
    counted per slot (one read + one write counter, array-increment
    hot path); under debug validation ({!Effect.validate_enabled}) the
    current call's access trace is recorded too, for the
    declared-vs-observed check in [Kernel.exec_call]. Results never
    depend on recording — campaigns are bit-identical hooks on/off. *)

val record_read : t -> int -> unit
val record_write : t -> int -> unit

val reset_effect_trace : t -> unit
(** Clear the per-call trace ([Kernel] calls it at call entry). *)

val effect_trace : t -> (bool * int) list
(** The recorded trace in access order, decoded to
    [(is_write, effect slot)]. *)

val effect_slot_counts : t -> (int * int * int) list
(** Non-zero [(slot, reads, writes)] triples in slot order;
    {!Kernel.effect_counts} maps slots back to names. *)
