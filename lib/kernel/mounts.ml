type mounts = {
  mutable mounted : (string * string) list;
  mutable last_umount : int;
}

type State.global += Mounts of mounts

let blk = Coverage.region ~name:"mounts" ~size:192

(* namespace_sem: serializes the mount table. *)
let namespace_sem = Lock.register ~rank:40 ~guards:[ "mounts" ] "namespace_sem"
let c ctx o = Ctx.cover ctx (blk + o)

let s_mounts = Effect.slot "mounts"

(* The mount table is read lock-free by vfs's open path
   ([mount_busy] below) — the legitimize_mnt fixture race. *)
let () =
  Effect.register_race ~slot:"mounts"
    ~parties:[ "mount$ext4"; "mount$nfs"; "mount$reiserfs"; "umount"; "open" ]
    ~bug:"legitimize_mnt"

let init st =
  State.set_global st "mounts"
    (Mounts { mounted = [ ("/mnt/ext4", "ext4") ]; last_umount = 0 })

let mounts_of st =
  State.record_read st s_mounts;
  match State.global st "mounts" with
  | Some (Mounts m) -> m
  | Some _ | None -> failwith "mounts: state not initialized"

(* Is a mount transition (a umount) still settling? Linux's
   legitimize_mnt checks the mount's refcount lock-free on the open
   fast path; we model it as reading the table (through [mounts_of],
   which records the effect) with no lock held — the read half of the
   legitimize_mnt race. *)
let mount_busy st =
  let m = mounts_of st in
  m.last_umount > 0 && State.now st - m.last_umount <= 2

let valid_mountpoint = function "/mnt/a" | "/mnt/b" | "/mnt/ext4" -> true | _ -> false

let h_mount_ext4 ctx args =
  let dst = Arg.as_str (Arg.nth args 1) in
  let m = mounts_of ctx.Ctx.st in
  c ctx 0;
  if not (valid_mountpoint dst) then begin
    c ctx 1;
    Ctx.err Errno.ENOENT
  end
  else if List.mem_assoc dst m.mounted then begin
    c ctx 2;
    Ctx.err Errno.EBUSY
  end
  else begin
    c ctx 3;
    State.record_write ctx.Ctx.st s_mounts;
    m.mounted <- (dst, "ext4") :: m.mounted;
    Ctx.ok0
  end

let h_mount_nfs ctx args =
  let dst = Arg.as_str (Arg.nth args 1) in
  let m = mounts_of ctx.Ctx.st in
  c ctx 5;
  if not (valid_mountpoint dst) then begin
    c ctx 6;
    Ctx.err Errno.ENOENT
  end
  else begin
    let data = Arg.nth args 2 in
    let version = Arg.as_int (Arg.field data 0) in
    let namlen = Arg.as_int (Arg.field data 1) in
    if Int64.compare version 2L < 0 || Int64.compare version 4L > 0 then begin
      c ctx 7;
      Ctx.err Errno.EINVAL
    end
    else begin
      c ctx 8;
      (* v2/v3 monolithic mount data with an oversized name length:
         the parser bails after allocating the context (5.6+). *)
      if Int64.compare version 4L < 0 && Int64.compare namlen 255L > 0 then begin
        c ctx 9;
        Ctx.bug ctx "nfs23_parse_monolithic";
        Ctx.err Errno.EINVAL
      end
      else begin
        c ctx 10;
        State.record_write ctx.Ctx.st s_mounts;
        m.mounted <- (dst, "nfs") :: m.mounted;
        Ctx.ok0
      end
    end
  end

let h_mount_reiserfs ctx args =
  let dst = Arg.as_str (Arg.nth args 1) in
  let m = mounts_of ctx.Ctx.st in
  c ctx 12;
  if not (valid_mountpoint dst) then begin
    c ctx 13;
    Ctx.err Errno.ENOENT
  end
  else begin
    let opts = Arg.as_buf (Arg.nth args 2) in
    c ctx 14;
    (* A journal-device option pointing into the tiny superblock
       area crashes fill_super (4.19). *)
    if Bytes.length opts >= 4 && Bytes.get opts 0 = 'j' && Bytes.get opts 1 = 'd'
    then begin
      c ctx 15;
      Ctx.bug ctx "reiserfs_fill_super";
      Ctx.err Errno.EINVAL
    end
    else if Bytes.length opts > 64 then begin
      c ctx 16;
      Ctx.err Errno.EINVAL
    end
    else begin
      c ctx 17;
      State.record_write ctx.Ctx.st s_mounts;
      m.mounted <- (dst, "reiserfs") :: m.mounted;
      Ctx.ok0
    end
  end

let h_umount ctx args =
  let dst = Arg.as_str (Arg.nth args 0) in
  let m = mounts_of ctx.Ctx.st in
  c ctx 19;
  if List.mem_assoc dst m.mounted then begin
    c ctx 20;
    State.record_write ctx.Ctx.st s_mounts;
    m.mounted <- List.remove_assoc dst m.mounted;
    m.last_umount <- State.now ctx.Ctx.st;
    Ctx.ok0
  end
  else begin
    c ctx 21;
    (* Re-umounting a just-detached mountpoint follows the NULL
       mnt (known bug). *)
    if m.last_umount > 0 && State.now ctx.Ctx.st - m.last_umount <= 2 then begin
      c ctx 22;
      Ctx.bug ctx "do_umount_null"
    end;
    Ctx.err Errno.EINVAL
  end

let descriptions =
  {|
# Mounts: ext4, nfs, reiserfs.
struct nfs_mount_data { version int32, namlen int32, opts buffer[in] }
mount$ext4(src filename["/dev/loop0"], dst filename["/mnt/a", "/mnt/b", "/mnt/ext4"], fstype string["ext4"], mflags int32, data ptr[in, int64])
mount$nfs(src filename["10.0.0.1:/export"], dst filename["/mnt/a", "/mnt/b"], data ptr[in, nfs_mount_data])
mount$reiserfs(src filename["/dev/loop0"], dst filename["/mnt/a", "/mnt/b"], opts ptr[in, string["acl", "nolog", "jdev=/dev/loop1", "notail"]])
umount(dst filename["/mnt/a", "/mnt/b", "/mnt/ext4"])
|}

let copy_global : State.global -> State.global option = function
  | Mounts m -> Some (Mounts { m with mounted = m.mounted })
  | _ -> None

let sub =
  let l = Subsystem.locked [ namespace_sem ] in
  let w = Lock.scoped [ "namespace_sem" ] ~touches:[ "mounts" ] in
  Subsystem.make ~name:"mounts" ~descriptions ~init ~copy_global
    ~handlers:
      [
        ("mount$ext4", l h_mount_ext4);
        ("mount$nfs", l h_mount_nfs);
        ("mount$reiserfs", l h_mount_reiserfs);
        ("umount", l h_umount);
      ]
    ~locks:
      [
        ("mount$ext4", w);
        ("mount$nfs", w);
        ("mount$reiserfs", w);
        ("umount", w);
      ]
    ~effects:
      (let e = Effect.spec ~writes:[ "mounts" ] () in
       [
         ("mount$ext4", e);
         ("mount$nfs", e);
         ("mount$reiserfs", e);
         ("umount", e);
       ])
    ()
