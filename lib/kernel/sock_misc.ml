type l2cap = {
  mutable connected : bool;
  mutable mode_set : bool;
  mutable chan_refs : int;
  mutable shut : bool;
}

type llcp = {
  mutable bound : bool;
  mutable listening : bool;
  mutable connect_failed : bool;
}

type ieee802154 = {
  mutable keys : int64 list;
  mutable security_on : bool;
  mutable closed_while_tx : bool;
}

type State.fd_kind +=
  | L2cap of l2cap
  | Llcp of llcp
  | Ieee802154 of ieee802154

let blk = Coverage.region ~name:"sock_misc" ~size:320
let c ctx o = Ctx.cover ctx (blk + o)

let h_socket_l2cap ctx _args =
  c ctx 0;
  let entry =
    State.alloc_fd ctx.Ctx.st
      (L2cap { connected = false; mode_set = false; chan_refs = 1; shut = false })
  in
  Ctx.ok (Int64.of_int entry.State.fd)

let h_socket_llcp ctx _args =
  c ctx 1;
  let entry =
    State.alloc_fd ctx.Ctx.st
      (Llcp { bound = false; listening = false; connect_failed = false })
  in
  Ctx.ok (Int64.of_int entry.State.fd)

let h_socket_154 ctx _args =
  c ctx 2;
  let entry =
    State.alloc_fd ctx.Ctx.st
      (Ieee802154 { keys = []; security_on = false; closed_while_tx = false })
  in
  Ctx.ok (Int64.of_int entry.State.fd)

let with_l2cap ctx args k =
  match State.lookup_fd ctx.Ctx.st (Arg.as_fd (Arg.nth args 0)) with
  | Some { kind = L2cap s; _ } -> k s
  | Some _ -> (c ctx 4; Ctx.err Errno.EOPNOTSUPP)
  | None -> (c ctx 5; Ctx.err Errno.EBADF)

let with_llcp ctx args k =
  match State.lookup_fd ctx.Ctx.st (Arg.as_fd (Arg.nth args 0)) with
  | Some { kind = Llcp s; _ } -> k s
  | Some _ -> (c ctx 6; Ctx.err Errno.EOPNOTSUPP)
  | None -> (c ctx 7; Ctx.err Errno.EBADF)

let with_154 ctx args k =
  match State.lookup_fd ctx.Ctx.st (Arg.as_fd (Arg.nth args 0)) with
  | Some ({ kind = Ieee802154 s; _ } as e) -> k e s
  | Some _ -> (c ctx 8; Ctx.err Errno.EOPNOTSUPP)
  | None -> (c ctx 9; Ctx.err Errno.EBADF)

(* ---- L2CAP ---- *)

let h_bind_l2cap ctx args =
  c ctx 12;
  with_l2cap ctx args (fun s ->
      c ctx 13;
      s.chan_refs <- s.chan_refs + 1;
      Ctx.ok0)

let h_connect_l2cap ctx args =
  c ctx 15;
  with_l2cap ctx args (fun s ->
      if s.connected then begin
        c ctx 16;
        Ctx.err Errno.EISCONN
      end
      else begin
        c ctx 17;
        s.connected <- true;
        s.chan_refs <- s.chan_refs + 1;
        Ctx.ok0
      end)

let h_setsockopt_l2cap_mode ctx args =
  c ctx 19;
  with_l2cap ctx args (fun s ->
      let mode = Arg.as_int (Arg.field (Arg.nth args 3) 0) in
      if Int64.compare mode 4L > 0 then begin
        c ctx 20;
        Ctx.err Errno.EINVAL
      end
      else begin
        c ctx 21;
        s.mode_set <- true;
        Ctx.ok0
      end)

let h_shutdown_l2cap ctx args =
  c ctx 23;
  with_l2cap ctx args (fun s ->
      c ctx 24;
      s.shut <- true;
      (* Mode switch mid-connection dropped an extra channel ref; the
         shutdown path now underflows it (l2cap_chan_put, 5.11). *)
      if s.connected && s.mode_set && s.chan_refs >= 3 then begin
        c ctx 25;
        Ctx.bug ctx "l2cap_chan_put"
      end;
      s.chan_refs <- max 0 (s.chan_refs - 1);
      Ctx.ok0)

(* ---- NFC LLCP ---- *)

let h_bind_llcp ctx args =
  c ctx 28;
  with_llcp ctx args (fun s ->
      let addr = Arg.nth args 1 in
      let svc_len = Arg.as_int (Arg.field addr 1) in
      c ctx 29;
      (* A short service-name length leaves the tail of the name
         buffer uninitialized (llcp_sock_bind). *)
      if Int64.compare svc_len 0L > 0 && Int64.compare svc_len 4L < 0 then begin
        c ctx 30;
        Ctx.bug ctx "llcp_sock_bind_uninit"
      end;
      s.bound <- true;
      Ctx.ok0)

let h_listen_llcp ctx args =
  c ctx 32;
  with_llcp ctx args (fun s ->
      if not s.bound then begin
        c ctx 33;
        Ctx.err Errno.EDESTADDRREQ
      end
      else begin
        c ctx 34;
        s.listening <- true;
        Ctx.ok0
      end)

let h_connect_llcp ctx args =
  c ctx 36;
  with_llcp ctx args (fun s ->
      (* No NFC adapter is present in the simulator: connect fails but
         leaves a half-set-up local. *)
      c ctx 37;
      s.connect_failed <- true;
      Ctx.err Errno.ENODEV)

let h_getsockname_llcp ctx args =
  c ctx 39;
  with_llcp ctx args (fun s ->
      if s.connect_failed && not s.bound then begin
        (* Socket has no local device after the failed connect;
           getname dereferences NULL (5.4). *)
        c ctx 40;
        Ctx.bug ctx "llcp_sock_getname";
        Ctx.err Errno.EINVAL
      end
      else begin
        c ctx 41;
        Ctx.ok0
      end)

(* ---- IEEE 802.15.4 ---- *)

let h_set_key_154 ctx args =
  c ctx 44;
  with_154 ctx args (fun _ s ->
      let key = Arg.nth args 2 in
      let mode = Arg.as_int (Arg.field key 0) in
      let id = Arg.as_int (Arg.field key 1) in
      if Int64.compare mode 3L > 0 then begin
        c ctx 45;
        Ctx.err Errno.EINVAL
      end
      else begin
        c ctx 46;
        (* Implicit-mode key with a zero id: the key-id parser
           dereferences the absent device address (5.11). *)
        if Int64.compare mode 2L = 0 && Int64.compare id 0L = 0 then begin
          c ctx 47;
          Ctx.bug ctx "ieee802154_llsec_parse_key_id"
        end;
        s.keys <- id :: s.keys;
        s.security_on <- true;
        Ctx.ok0
      end)

let h_del_key_154 ctx args =
  c ctx 49;
  with_154 ctx args (fun _ s ->
      let id = Arg.as_int (Arg.field (Arg.nth args 2) 1) in
      if List.mem id s.keys then begin
        c ctx 50;
        s.keys <- List.filter (fun k -> k <> id) s.keys;
        Ctx.ok0
      end
      else if s.security_on then begin
        (* Deleting a non-existent key walks the llsec table off the
           end (5.4). *)
        c ctx 51;
        Ctx.bug ctx "nl802154_del_llsec_key";
        Ctx.err Errno.ENOENT
      end
      else begin
        c ctx 52;
        Ctx.err Errno.ENOENT
      end)

let h_sendto_154 ctx args =
  c ctx 54;
  with_154 ctx args (fun entry s ->
      c ctx 55;
      (* The entry aliased by a duplicate descriptor was closed while
         a frame was queued: the tx path uses the freed sock (5.11). *)
      if s.closed_while_tx then begin
        c ctx 56;
        Ctx.bug ctx "ieee802154_tx"
      end;
      if s.security_on then c ctx 57;
      let combo =
        (if s.security_on then 1 else 0)
        lor ((min 3 (List.length s.keys)) * 2)
      in
      c ctx (100 + combo);
      ignore entry;
      Ctx.ok (Int64.of_int (Bytes.length (Arg.as_buf (Arg.nth args 1)))))

let close_154 ctx (entry : State.fd_entry) _args =
  match entry.kind with
  | Ieee802154 s ->
    c ctx 59;
    (* Closing one alias while another remains: mark the queued-tx
       hazard. *)
    if entry.refs > 1 then s.closed_while_tx <- true;
    Ctx.ok0
  | _ -> Ctx.err Errno.EINVAL

let descriptions =
  {|
# Bluetooth L2CAP, NFC LLCP, IEEE 802.15.4.
resource sock_l2cap[sock]
resource sock_llcp[sock]
resource sock_154[sock]
struct llcp_addr { dev_idx int32, service_name_len int32, service_name buffer[in] }
struct llsec_key { mode int32[0:3], id int32, key buffer[in] }
socket$l2cap(domain const[31], type const[5], proto const[0]) sock_l2cap
bind$l2cap(fd sock_l2cap, addr ptr[in, sockaddr])
connect$l2cap(fd sock_l2cap, addr ptr[in, sockaddr])
setsockopt$l2cap_mode(fd sock_l2cap, level const[6], optname const[1], val ptr[in, int32])
shutdown$l2cap(fd sock_l2cap, how int32[0:2])
socket$llcp(domain const[39], type const[1], proto const[1]) sock_llcp
bind$llcp(fd sock_llcp, addr ptr[in, llcp_addr])
listen$llcp(fd sock_llcp, backlog int32)
connect$llcp(fd sock_llcp, addr ptr[in, llcp_addr])
getsockname$llcp(fd sock_llcp, addr ptr[out, llcp_addr])
socket$ieee802154(domain const[36], type const[2], proto const[0]) sock_154
ioctl$154_SET_KEY(fd sock_154, cmd const[0x8b01], key ptr[in, llsec_key])
ioctl$154_DEL_KEY(fd sock_154, cmd const[0x8b02], key ptr[in, llsec_key])
sendto$ieee802154(fd sock_154, buf buffer[in], length len[buf], sflags const[0], addr ptr[in, sockaddr])
|}

let copy_kind : State.fd_kind -> State.fd_kind option = function
  | L2cap l -> Some (L2cap { l with connected = l.connected })
  | Llcp l -> Some (Llcp { l with bound = l.bound })
  | Ieee802154 i -> Some (Ieee802154 { i with keys = i.keys })
  | _ -> None

let sub =
  Subsystem.make ~name:"sock_misc" ~descriptions ~copy_kind
    ~handlers:
      [
        ("socket$l2cap", h_socket_l2cap);
        ("bind$l2cap", h_bind_l2cap);
        ("connect$l2cap", h_connect_l2cap);
        ("setsockopt$l2cap_mode", h_setsockopt_l2cap_mode);
        ("shutdown$l2cap", h_shutdown_l2cap);
        ("socket$llcp", h_socket_llcp);
        ("bind$llcp", h_bind_llcp);
        ("listen$llcp", h_listen_llcp);
        ("connect$llcp", h_connect_llcp);
        ("getsockname$llcp", h_getsockname_llcp);
        ("socket$ieee802154", h_socket_154);
        ("ioctl$154_SET_KEY", h_set_key_154);
        ("ioctl$154_DEL_KEY", h_del_key_154);
        ("sendto$ieee802154", h_sendto_154);
      ]
    ~file_ops:
      [
        {
          Subsystem.op_name = "close";
          applies = (function Ieee802154 _ -> true | _ -> false);
          run = close_154;
        };
      ]
    ()
