type fb = {
  mutable xres : int64;
  mutable yres : int64;
  mutable bpp : int64;
  mutable pixclock : int64;
  mutable font_height : int64;
  mutable cursor_size : int64;
  mutable panned : bool;
}

type State.fd_kind += Fb of fb

let blk = Coverage.region ~name:"fbdev" ~size:512
let c ctx o = Ctx.cover ctx (blk + o)

let h_open ctx args =
  let path = Arg.as_str (Arg.nth args 1) in
  c ctx 0;
  if path <> "/dev/fb0" then begin
    c ctx 1;
    Ctx.err Errno.ENOENT
  end
  else begin
    c ctx 2;
    let fb =
      {
        xres = 1024L;
        yres = 768L;
        bpp = 32L;
        pixclock = 39721L;
        font_height = 0L;
        cursor_size = 0L;
        panned = false;
      }
    in
    let entry = State.alloc_fd ctx.Ctx.st (Fb fb) in
    Ctx.ok (Int64.of_int entry.State.fd)
  end

let with_fb ctx args k =
  let fd = Arg.as_fd (Arg.nth args 0) in
  match State.lookup_fd ctx.Ctx.st fd with
  | Some { kind = Fb fb; _ } -> k fb
  | Some _ ->
    c ctx 4;
    Ctx.err Errno.ENOTTY
  | None ->
    c ctx 5;
    Ctx.err Errno.EBADF

let h_get_vscreeninfo ctx args =
  c ctx 7;
  with_fb ctx args (fun _ ->
      c ctx 8;
      Ctx.ok0)

let h_put_vscreeninfo ctx args =
  c ctx 10;
  with_fb ctx args (fun fb ->
      (* var { xres, yres, bpp, pixclock } *)
      let r = Arg.nth args 2 in
      if Arg.is_null r then begin
        c ctx 11;
        Ctx.err Errno.EFAULT
      end
      else begin
        let xres = Arg.as_int (Arg.field r 0) in
        let yres = Arg.as_int (Arg.field r 1) in
        let bpp = Arg.as_int (Arg.field r 2) in
        let pixclock = Arg.as_int (Arg.field r 3) in
        if Int64.compare xres 0L = 0 || Int64.compare yres 0L = 0 then begin
          (* Zero geometry survives validation and divides the refresh
             computation (fb_set_var). *)
          c ctx 12;
          Ctx.bug ctx "fb_set_var_div";
          Ctx.err Errno.EINVAL
        end
        else if Int64.compare bpp 0L <= 0 || Int64.compare bpp 64L > 0 then begin
          c ctx 13;
          Ctx.err Errno.EINVAL
        end
        else begin
          c ctx 14;
          (* Zero pixclock after a pan: fb_var_to_videomode divides by
             the pixel clock (4.19). *)
          if Int64.compare pixclock 0L = 0 then begin
            c ctx 15;
            if fb.panned then begin
              c ctx 16;
              Ctx.bug ctx "fb_var_to_videomode"
            end
          end
          else fb.pixclock <- pixclock;
          let shrunk = Int64.compare xres fb.xres < 0 in
          fb.xres <- xres;
          fb.yres <- yres;
          fb.bpp <- bpp;
          if shrunk then begin
            c ctx 17;
            (* Shrinking the row while a tall console font is loaded
               leaves the blit stride stale: the next console render
               reads past the glyph map (bit_putcs, 5.4). *)
            if Int64.compare fb.font_height 16L > 0 then begin
              c ctx 18;
              Ctx.bug ctx "bit_putcs"
            end;
            (* 1-bpp fill of the now-misaligned remainder row
               (bitfill_aligned, 4.19). *)
            if Int64.compare bpp 1L = 0 && fb.panned then begin
              c ctx 19;
              Ctx.bug ctx "bitfill_aligned"
            end
          end;
          Ctx.ok0
        end
      end)

let h_pan ctx args =
  c ctx 21;
  with_fb ctx args (fun fb ->
      c ctx 22;
      fb.panned <- true;
      Ctx.ok0)

let h_font_set ctx args =
  c ctx 24;
  with_fb ctx args (fun fb ->
      let op = Arg.nth args 2 in
      let height = Arg.as_int (Arg.field op 1) in
      if Int64.compare height 0L <= 0 || Int64.compare height 64L > 0 then begin
        c ctx 25;
        Ctx.err Errno.EINVAL
      end
      else begin
        c ctx 26;
        fb.font_height <- height;
        if Int64.compare height 32L > 0 then c ctx 27;
        Ctx.ok0
      end)

let h_font_get ctx args =
  c ctx 29;
  with_fb ctx args (fun fb ->
      if Int64.compare fb.font_height 0L = 0 then begin
        c ctx 30;
        Ctx.err Errno.ENODEV
      end
      else if Int64.compare fb.font_height 32L > 0 then begin
        (* The copy-out buffer is sized for 32-pixel glyphs
           (fbcon_get_font, 4.19). *)
        c ctx 31;
        Ctx.bug ctx "fbcon_get_font";
        Ctx.err Errno.EINVAL
      end
      else begin
        c ctx 32;
        Ctx.ok0
      end)

let h_cursor ctx args =
  c ctx 34;
  with_fb ctx args (fun fb ->
      let cur = Arg.nth args 2 in
      let size = Arg.as_int (Arg.field cur 0) in
      if Int64.compare size 0L < 0 then begin
        c ctx 35;
        Ctx.err Errno.EINVAL
      end
      else begin
        c ctx 36;
        fb.cursor_size <- size;
        (* A cursor larger than the remaining row after a shrink blits
           outside the shadow buffer (soft_cursor, 5.0+). *)
        if
          Int64.compare size 64L > 0
          && Int64.compare fb.xres 512L < 0
          && fb.panned
        then begin
          c ctx 37;
          Ctx.bug ctx "soft_cursor"
        end;
        Ctx.ok0
      end)

let fb_write ctx (entry : State.fd_entry) args =
  match entry.kind with
  | Fb fb ->
    let n = Bytes.length (Arg.as_buf (Arg.nth args 1)) in
    c ctx 39;
    if Int64.compare fb.font_height 0L > 0 then c ctx 40;
    if n > 4096 then c ctx 41 else c ctx 42;
    let combo =
      (if Int64.compare fb.font_height 0L > 0 then 1 else 0)
      lor (if fb.panned then 2 else 0)
      lor (if Int64.compare fb.bpp 8L <= 0 then 4 else 0)
      lor if Int64.compare fb.xres 512L < 0 then 8 else 0
    in
    c ctx (100 + combo);
    let size_class =
      if n = 0 then 0 else if n <= 256 then 1
      else if n <= 1024 then 2 else if n <= 4096 then 3
      else if n <= 8192 then 4 else 5
    in
    c ctx (128 + (combo * 8) + size_class);
    Ctx.ok (Int64.of_int n)
  | _ -> Ctx.err Errno.EINVAL

let descriptions =
  {|
# Framebuffer and fbcon.
resource fd_fb[fd]
struct fb_var { xres int32, yres int32, bpp int32, pixclock int32 }
struct console_font_op { op int32[0:2], height int32, width int32, data buffer[in] }
struct fb_cursor { size int32, setmode int32, image buffer[in] }
openat$fb0(dirfd fd, file filename["/dev/fb0"], oflags flags[open_flags]) fd_fb
ioctl$FBIOGET_VSCREENINFO(fd fd_fb, cmd const[0x4600], var ptr[out, fb_var])
ioctl$FBIOPUT_VSCREENINFO(fd fd_fb, cmd const[0x4601], var ptr[in, fb_var])
ioctl$FBIOPAN_DISPLAY(fd fd_fb, cmd const[0x4606], var ptr[in, fb_var])
ioctl$KDFONTOP_SET(fd fd_fb, cmd const[0x4b72], op ptr[in, console_font_op])
ioctl$KDFONTOP_GET(fd fd_fb, cmd const[0x4b72], op ptr[out, console_font_op])
ioctl$FBIO_CURSOR(fd fd_fb, cmd const[0x4608], cursor ptr[in, fb_cursor])
|}

let copy_kind : State.fd_kind -> State.fd_kind option = function
  | Fb f -> Some (Fb { f with xres = f.xres })
  | _ -> None

let sub =
  Subsystem.make ~name:"fbdev" ~descriptions ~copy_kind
    ~handlers:
      [
        ("openat$fb0", h_open);
        ("ioctl$FBIOGET_VSCREENINFO", h_get_vscreeninfo);
        ("ioctl$FBIOPUT_VSCREENINFO", h_put_vscreeninfo);
        ("ioctl$FBIOPAN_DISPLAY", h_pan);
        ("ioctl$KDFONTOP_SET", h_font_set);
        ("ioctl$KDFONTOP_GET", h_font_get);
        ("ioctl$FBIO_CURSOR", h_cursor);
      ]
    ~file_ops:
      [
        {
          Subsystem.op_name = "write";
          applies = (function Fb _ -> true | _ -> false);
          run = fb_write;
        };
      ]
    ()
