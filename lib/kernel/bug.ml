type t = {
  key : string;
  title : string;
  subsystem : string;
  operations : string;
  risk : Risk.t;
  since : Version.t;
  until_ : Version.t option;
  known : bool;
  table4 : bool;
  repro_len : int;
  requires : string option;
}

let v ?until_ ?requires ?(table4 = false) ~known ~risk ~since ~len ~sub ~ops ~title
    key =
  {
    key;
    title;
    subsystem = sub;
    operations = ops;
    risk;
    since;
    until_;
    known;
    table4;
    repro_len = len;
    requires;
  }

open Risk
open Version

(* Table 4: previously-known vulnerabilities found only by HEALER in the
   24-hour experiments. The paper's "Version" column is the kernel the
   bug was found on; we model each as present exactly there. *)
let table4_catalog =
  [
    v "console_unlock" ~title:"deadlock in console_unlock" ~sub:"TTY"
      ~ops:"console_unlock" ~risk:Deadlock ~since:V5_11 ~until_:V5_11
      ~known:true ~table4:true ~len:18;
    v "put_device" ~title:"null-ptr-deref in put_device" ~sub:"Block"
      ~ops:"put_device" ~risk:Null_ptr_deref ~since:V5_11 ~until_:V5_11
      ~known:true ~table4:true ~len:8;
    v "l2cap_chan_put" ~title:"refcount bug in l2cap_chan_put" ~sub:"Network"
      ~ops:"l2cap_chan_put" ~risk:Refcount_bug ~since:V5_11 ~until_:V5_11
      ~known:true ~table4:true ~len:7;
    v "nbd_disconnect_and_put" ~title:"null-ptr-deref nbd_disconnect_and_put"
      ~sub:"Block" ~ops:"nbd_disconnect_and_put" ~risk:Null_ptr_deref
      ~since:V5_11 ~until_:V5_11 ~known:true ~table4:true ~len:6;
    v "ioremap_page_range" ~title:"kernel bug in ioremap_page_range"
      ~sub:"VFS" ~ops:"ioremap_page_range" ~risk:Kernel_bug ~since:V5_11
      ~until_:V5_11 ~known:true ~table4:true ~len:6;
    v "kvm_hv_irq_routing_update"
      ~title:"null-ptr-deref in kvm_hv_irq_routing_update" ~sub:"KVM"
      ~ops:"kvm_hv_irq_routing_update" ~risk:Null_ptr_deref ~since:V5_11
      ~until_:V5_11 ~known:true ~table4:true ~len:6;
    v "ieee802154_llsec_parse_key_id"
      ~title:"null-ptr-deref in ieee802154_llsec_parse_key_id" ~sub:"Network"
      ~ops:"ieee802154_llsec_parse_key_id" ~risk:Null_ptr_deref ~since:V5_11
      ~until_:V5_11 ~known:true ~table4:true ~len:5;
    v "bit_putcs" ~title:"out-of-bounds read in bit_putcs" ~sub:"Video"
      ~ops:"bit_putcs" ~risk:Out_of_bounds ~since:V5_4 ~until_:V5_4
      ~known:true ~table4:true ~len:8;
    v "tpk_write" ~title:"kernel bug in tpk_write" ~sub:"TTY" ~ops:"tpk_write"
      ~risk:Kernel_bug ~since:V5_4 ~until_:V5_4 ~known:true ~table4:true ~len:6;
    v "nl802154_del_llsec_key" ~title:"null-ptr-deref nl802154_del_llsec_key"
      ~sub:"Network" ~ops:"nl802154_del_llsec_key" ~risk:Null_ptr_deref
      ~since:V5_4 ~until_:V5_4 ~known:true ~table4:true ~len:5;
    v "llcp_sock_getname" ~title:"null-ptr-deref in llcp_sock_getname"
      ~sub:"Network" ~ops:"llcp_sock_getname" ~risk:Null_ptr_deref ~since:V5_4
      ~until_:V5_4 ~known:true ~table4:true ~len:5;
    v "vivid_stop_generating_vid_cap"
      ~title:"null-ptr-deref in vivid_stop_generating_vid_cap" ~sub:"Video"
      ~ops:"vivid_stop_generating_vid_cap" ~risk:Null_ptr_deref ~since:V4_19
      ~until_:V4_19 ~known:true ~table4:true ~len:10;
    v "bitfill_aligned" ~title:"kernel bug in bitfill_aligned" ~sub:"Video"
      ~ops:"bitfill_aligned" ~risk:Kernel_bug ~since:V4_19 ~until_:V4_19
      ~known:true ~table4:true ~len:9;
    v "fbcon_get_font" ~title:"out-of-bounds in fbcon_get_font" ~sub:"Video"
      ~ops:"fbcon_get_font" ~risk:Out_of_bounds ~since:V4_19 ~until_:V4_19
      ~known:true ~table4:true ~len:6;
    v "vcs_write" ~title:"out-of-bounds in vcs_write" ~sub:"TTY"
      ~ops:"vcs_write" ~risk:Out_of_bounds ~since:V4_19 ~until_:V4_19
      ~known:true ~table4:true ~len:5;
  ]

(* The remaining previously-known bugs of the 24-hour experiment: 17
   shallower bugs reachable by all tools, plus 3 that require USB
   emulation, an executor feature HEALER does not support (the paper's
   explanation for the 3 bugs Syzkaller/Moonshine found and HEALER did
   not). Names are modeled on real syzbot reports. *)
let known_shared_catalog =
  [
    v "memfd_create_warn" ~title:"WARNING in memfd_create" ~sub:"VFS"
      ~ops:"memfd_create" ~risk:Kernel_bug ~since:V4_19 ~known:true ~len:1;
    v "vfs_read_oob" ~title:"slab-out-of-bounds in vfs_read" ~sub:"VFS"
      ~ops:"vfs_read" ~risk:Out_of_bounds ~since:V4_19 ~known:true ~len:2;
    v "tcp_disconnect" ~title:"null-ptr-deref in tcp_disconnect" ~sub:"Network"
      ~ops:"tcp_disconnect" ~risk:Null_ptr_deref ~since:V4_19 ~known:true ~len:2;
    v "raw_sendmsg_uninit" ~title:"uninit-value in raw_sendmsg" ~sub:"Network"
      ~ops:"raw_sendmsg" ~risk:Uninit_value ~since:V4_19 ~known:true ~len:2;
    v "tty_init_dev_leak" ~title:"memory leak in tty_init_dev" ~sub:"TTY"
      ~ops:"tty_init_dev" ~risk:Memory_leak ~since:V4_19 ~known:true ~len:2;
    v "fb_set_var_div" ~title:"divide error in fb_set_var" ~sub:"Video"
      ~ops:"fb_set_var" ~risk:Divide_error ~since:V4_19 ~known:true ~len:3;
    v "kvm_arch_vcpu_ioctl_warn" ~title:"WARNING in kvm_arch_vcpu_ioctl"
      ~sub:"KVM" ~ops:"kvm_arch_vcpu_ioctl" ~risk:Kernel_bug ~since:V4_19
      ~known:true ~len:3;
    v "io_ring_exit_work" ~title:"WARNING in io_ring_exit_work" ~sub:"IO-uring"
      ~ops:"io_ring_exit_work" ~risk:Kernel_bug ~since:V5_4 ~known:true ~len:3;
    v "disk_part_iter_uaf" ~title:"use-after-free in disk_part_iter_next"
      ~sub:"Block" ~ops:"disk_part_iter_next" ~risk:Use_after_free ~since:V4_19
      ~known:true ~len:3;
    v "ext4_writepages_bug" ~title:"kernel BUG in ext4_writepages" ~sub:"Ext4"
      ~ops:"ext4_writepages" ~risk:Kernel_bug ~since:V4_19 ~known:true ~len:3;
    v "unix_release_refcount" ~title:"refcount bug in unix_release_sock"
      ~sub:"Network" ~ops:"unix_release_sock" ~risk:Refcount_bug ~since:V4_19
      ~known:true ~len:3;
    v "ucma_create_id_leak" ~title:"memory leak in ucma_create_id" ~sub:"Rdma"
      ~ops:"ucma_create_id" ~risk:Memory_leak ~since:V4_19 ~known:true ~len:2;
    v "v4l2_queryctrl_oob" ~title:"out-of-bounds in v4l2_queryctrl" ~sub:"Video"
      ~ops:"v4l2_queryctrl" ~risk:Out_of_bounds ~since:V4_19 ~known:true ~len:3;
    v "llcp_sock_bind_uninit" ~title:"uninit-value in llcp_sock_bind"
      ~sub:"Network" ~ops:"llcp_sock_bind" ~risk:Uninit_value ~since:V4_19
      ~known:true ~len:2;
    v "do_umount_null" ~title:"null-ptr-deref in do_umount" ~sub:"VFS"
      ~ops:"do_umount" ~risk:Null_ptr_deref ~since:V4_19 ~known:true ~len:2;
    v "dev_ioctl_warn" ~title:"WARNING in dev_ioctl" ~sub:"Network"
      ~ops:"dev_ioctl" ~risk:Kernel_bug ~since:V4_19 ~known:true ~len:2;
    v "search_memslots" ~title:"out-of-bounds in search_memslots" ~sub:"KVM"
      ~ops:"search_memslots" ~risk:Out_of_bounds ~since:V4_19 ~known:true
      ~len:5;
    (* USB bugs: the executor feature "usb" is present in Syzkaller and
       Moonshine configurations only. *)
    v "hub_activate_uaf" ~title:"use-after-free in hub_activate" ~sub:"USB"
      ~ops:"hub_activate" ~risk:Use_after_free ~since:V4_19 ~known:true ~len:2
      ~requires:"usb";
    v "usb_parse_configuration_oob"
      ~title:"out-of-bounds in usb_parse_configuration" ~sub:"USB"
      ~ops:"usb_parse_configuration" ~risk:Out_of_bounds ~since:V4_19
      ~known:true ~len:2 ~requires:"usb";
    v "gadget_setup_null" ~title:"null-ptr-deref in gadget_setup" ~sub:"USB"
      ~ops:"gadget_setup" ~risk:Null_ptr_deref ~since:V4_19 ~known:true ~len:3
      ~requires:"usb";
  ]

(* Table 5: the 33 previously-unknown vulnerabilities, with the paper's
   Subsystem / Operations / Risk / Version-introduced columns. *)
let table5_catalog =
  [
    v "ext4_mark_iloc_dirty" ~sub:"Ext4"
      ~ops:"ext4_mark_iloc_dirty / jbd2_journal_commit_transaction"
      ~title:"data race in ext4_mark_iloc_dirty" ~risk:Data_race ~since:V5_11
      ~known:false ~len:6;
    v "jbd2_journal_file_buffer" ~sub:"Ext4"
      ~ops:"__jbd2_journal_file_buffer / jbd2_journal_dirty_metadata"
      ~title:"data race in __jbd2_journal_file_buffer" ~risk:Data_race
      ~since:V5_11 ~known:false ~len:6;
    v "ext4_handle_dirty_metadata" ~sub:"Ext4"
      ~ops:"__ext4_handle_dirty_metadata / jbd2_journal_commit_transaction"
      ~title:"data race in __ext4_handle_dirty_metadata" ~risk:Data_race
      ~since:V5_11 ~known:false ~len:7;
    v "ext4_fc_commit" ~sub:"Ext4" ~ops:"ext4_fc_commit / ext4_fc_commit"
      ~title:"data race in ext4_fc_commit" ~risk:Data_race ~since:V5_11
      ~known:false ~len:5;
    v "fput_ep_remove" ~sub:"VFS" ~ops:"__fput / ep_remove"
      ~title:"data race in __fput / ep_remove" ~risk:Data_race ~since:V5_11
      ~known:false ~len:5;
    v "e1000_clean" ~sub:"Network" ~ops:"e1000_clean / e1000_xmit_frame"
      ~title:"data race in e1000_clean" ~risk:Data_race ~since:V5_11
      ~known:false ~len:5;
    v "cdev_del" ~sub:"VFS" ~ops:"cdev_del" ~title:"refcount bug in cdev_del"
      ~risk:Refcount_bug ~since:V5_11 ~known:false ~len:6;
    v "cma_cancel_operation" ~sub:"Rdma" ~ops:"cma_cancel_operation"
      ~title:"use-after-free in cma_cancel_operation" ~risk:Use_after_free
      ~since:V5_11 ~known:false ~len:7;
    v "macvlan_broadcast" ~sub:"Network" ~ops:"macvlan_broadcast"
      ~title:"use-after-free in macvlan_broadcast" ~risk:Use_after_free
      ~since:V5_11 ~known:false ~len:6;
    v "rdma_listen" ~sub:"Rdma" ~ops:"rdma_listen"
      ~title:"use-after-free in rdma_listen" ~risk:Use_after_free ~since:V5_11
      ~known:false ~len:7;
    v "ieee802154_tx" ~sub:"Network" ~ops:"ieee802154_tx"
      ~title:"use-after-free in ieee802154_tx" ~risk:Use_after_free
      ~since:V5_11 ~known:false ~len:6;
    v "qdisc_calculate_pkt_len" ~sub:"Network" ~ops:"__qdisc_calculate_pkt_len"
      ~title:"out-of-bounds in __qdisc_calculate_pkt_len" ~risk:Out_of_bounds
      ~since:V5_11 ~known:false ~len:5;
    v "n_tty_open" ~sub:"TTY" ~ops:"n_tty_open"
      ~title:"paging fault in n_tty_open" ~risk:Paging_fault ~since:V5_11
      ~known:false ~len:6;
    v "build_skb" ~sub:"Network" ~ops:"__build_skb"
      ~title:"paging fault in __build_skb" ~risk:Paging_fault ~since:V5_11
      ~known:false ~len:5;
    v "kvm_vm_ioctl_unregister_coalesced_mmio" ~sub:"KVM"
      ~ops:"kvm_vm_ioctl_unregister_coalesced_mmio"
      ~title:"general protection fault in kvm_vm_ioctl_unregister_coalesced_mmio"
      ~risk:General_protection_fault ~since:V5_11 ~known:false ~len:6;
    v "blk_add_partitions" ~sub:"Block" ~ops:"blk_add_partitions"
      ~title:"paging fault in blk_add_partitions" ~risk:Paging_fault
      ~since:V5_11 ~known:false ~len:6;
    v "kvm_io_bus_unregister_dev" ~sub:"KVM" ~ops:"kvm_io_bus_unregister_dev"
      ~title:"memory leak in kvm_io_bus_unregister_dev" ~risk:Memory_leak
      ~since:V5_11 ~known:false ~len:6;
    v "io_uring_cancel_task_requests" ~sub:"IO-uring"
      ~ops:"io_uring_cancel_task_requests"
      ~title:"null-ptr-deref in io_uring_cancel_task_requests"
      ~risk:Null_ptr_deref ~since:V5_11 ~known:false ~len:6;
    v "gsmld_attach_gsm" ~sub:"TTY" ~ops:"gsmld_attach_gsm"
      ~title:"null-ptr-deref in gsmld_attach_gsm" ~risk:Null_ptr_deref
      ~since:V5_11 ~known:false ~len:5;
    v "drop_nlink" ~sub:"VFS" ~ops:"drop_nlink / generic_fillattr"
      ~title:"data race in drop_nlink" ~risk:Data_race ~since:V5_6 ~known:false
      ~len:5;
    v "kvm_gfn_to_hva_cache_init" ~sub:"KVM" ~ops:"kvm_gfn_to_hva_cache_init"
      ~title:"out-of-bounds in kvm_gfn_to_hva_cache_init" ~risk:Out_of_bounds
      ~since:V5_6 ~known:false ~len:6;
    v "nfs23_parse_monolithic" ~sub:"NFS" ~ops:"nfs23_parse_monolithic"
      ~title:"memory leak in nfs23_parse_monolithic" ~risk:Memory_leak
      ~since:V5_6 ~known:false ~len:4;
    v "rxrpc_lookup_local" ~sub:"Network" ~ops:"rxrpc_lookup_local"
      ~title:"memory leak in rxrpc_lookup_local" ~risk:Memory_leak ~since:V5_6
      ~known:false ~len:5;
    v "fill_thread_core_info" ~sub:"VFS" ~ops:"fill_thread_core_info"
      ~title:"uninit-value in fill_thread_core_info" ~risk:Uninit_value
      ~since:V5_6 ~known:false ~len:4;
    v "rds_ib_add_conn" ~sub:"Network" ~ops:"rds_ib_add_conn"
      ~title:"null-ptr-deref in rds_ib_add_conn" ~risk:Null_ptr_deref
      ~since:V5_6 ~known:false ~len:5;
    v "vcs_scr_readw" ~sub:"TTY" ~ops:"vcs_scr_readw"
      ~title:"out-of-bounds in vcs_scr_readw" ~risk:Out_of_bounds ~since:V5_0
      ~known:false ~len:5;
    v "n_tty_receive_buf_common" ~sub:"TTY" ~ops:"n_tty_receive_buf_common"
      ~title:"use-after-free in n_tty_receive_buf_common" ~risk:Use_after_free
      ~since:V5_0 ~known:false ~len:6;
    v "soft_cursor" ~sub:"Video" ~ops:"soft_cursor"
      ~title:"out-of-bounds in soft_cursor" ~risk:Out_of_bounds ~since:V5_0
      ~known:false ~len:6;
    v "io_submit_one" ~sub:"VFS" ~ops:"io_submit_one"
      ~title:"deadlock in io_submit_one" ~risk:Deadlock ~since:V5_0
      ~known:false ~len:6;
    v "free_ioctx_users" ~sub:"VFS" ~ops:"free_ioctx_users"
      ~title:"deadlock in free_ioctx_users" ~risk:Deadlock ~since:V5_0
      ~known:false ~len:6;
    v "fb_var_to_videomode" ~sub:"Video" ~ops:"fb_var_to_videomode"
      ~title:"divide error in fb_var_to_videomode" ~risk:Divide_error
      ~since:V4_19 ~known:false ~len:5;
    v "fs_reclaim_acquire" ~sub:"VFS" ~ops:"fs_reclaim_acquire"
      ~title:"inconsistent lock state in fs_reclaim_acquire"
      ~risk:Inconsistent_lock_state ~since:V4_19 ~known:false ~len:6;
    v "reiserfs_fill_super" ~sub:"Reiserfs" ~ops:"reiserfs_fill_super"
      ~title:"kernel bug in reiserfs_fill_super" ~risk:Kernel_bug ~since:V4_19
      ~known:false ~len:5;
  ]

(* Netlink message-layer bugs injected with the rtnetlink/genetlink
   subsystem; previously unknown, version-gated like Table 5. *)
let netlink_catalog =
  [
    v "nla_parse_nested" ~sub:"Netlink"
      ~ops:"rtnl_newlink / nla_parse_nested"
      ~title:"uninit-value in nla_parse_nested" ~risk:Uninit_value
      ~since:V5_4 ~known:false ~len:2;
    v "rtnl_dump_ifinfo" ~sub:"Netlink" ~ops:"rtnl_dump_ifinfo / rtnl_dellink"
      ~title:"out-of-bounds in rtnl_dump_ifinfo" ~risk:Out_of_bounds
      ~since:V5_6 ~known:false ~len:5;
    v "genl_rcv_msg" ~sub:"Netlink" ~ops:"genl_rcv_msg / genl_unregister_family"
      ~title:"use-after-free in genl_rcv_msg" ~risk:Use_after_free
      ~since:V5_11 ~known:false ~len:5;
  ]

(* Data races behind the deliberately-unguarded effect slots: each has
   a registered [Effect] known-race entry, so the static race detector
   must flag exactly these handler pairs (the --races true-positive
   check). Detected by KCSAN, version-gated like the rest. *)
let race_catalog =
  [
    v "packet_seq_show" ~sub:"Network"
      ~ops:"packet_seq_show / packet_sendmsg"
      ~title:"data race in packet_seq_show" ~risk:Data_race ~since:V5_6
      ~known:false ~len:3;
    v "legitimize_mnt" ~sub:"VFS" ~ops:"legitimize_mnt / do_umount"
      ~title:"data race in legitimize_mnt" ~risk:Data_race ~since:V5_4
      ~known:false ~len:2;
  ]

let catalog =
  table4_catalog @ known_shared_catalog @ table5_catalog @ netlink_catalog
  @ race_catalog

let by_key =
  let tbl = Hashtbl.create 128 in
  List.iter
    (fun b ->
      assert (not (Hashtbl.mem tbl b.key));
      Hashtbl.add tbl b.key b)
    catalog;
  tbl

let find key = Hashtbl.find_opt by_key key
let find_exn key = Hashtbl.find by_key key

let exists_in b version =
  Version.at_least version b.since
  && match b.until_ with None -> true | Some u -> Version.compare version u <= 0

let known_bugs () = List.filter (fun b -> b.known) catalog
let unknown_bugs () = List.filter (fun b -> not b.known) catalog
let table4_bugs () = List.filter (fun b -> b.table4) catalog

let pp ppf b =
  Fmt.pf ppf "%s [%s, %a, since %a%s]" b.title b.subsystem Risk.pp b.risk
    Version.pp b.since
    (match b.until_ with
    | None -> ""
    | Some u -> Printf.sprintf ", until %s" (Version.to_string u))
