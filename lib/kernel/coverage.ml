(* Region registry: global, deterministic for a fixed build since
   regions are allocated from module initializers in link order. *)
let regions : (string, int * int) Hashtbl.t = Hashtbl.create 32
let ordered : (string * int * int) list ref = ref []
let next_base = ref 0

(* Sorted-by-base view of [ordered] for O(log n) [region_name];
   rebuilt whenever the registry has grown since the last lookup. *)
let sorted : (int * int * string) array ref = ref [||]

let region ~name ~size =
  match Hashtbl.find_opt regions name with
  | Some (base, sz) ->
    if size > sz then
      invalid_arg (Printf.sprintf "Coverage.region: %s re-registered larger" name);
    base
  | None ->
    let base = !next_base in
    Hashtbl.add regions name (base, size);
    ordered := (name, base, size) :: !ordered;
    next_base := base + size;
    base

let rebuild_sorted () =
  let arr =
    Array.of_list (List.map (fun (name, base, size) -> (base, size, name)) !ordered)
  in
  Array.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) arr;
  sorted := arr

let force_regions () = rebuild_sorted ()

let region_name id =
  if Array.length !sorted <> Hashtbl.length regions then rebuild_sorted ();
  let arr = !sorted in
  let res = ref "?" in
  let lo = ref 0 and hi = ref (Array.length arr - 1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let base, size, name = arr.(mid) in
    if id < base then hi := mid - 1
    else if id >= base + size then lo := mid + 1
    else begin
      res := name;
      lo := !hi + 1
    end
  done;
  !res

let total_allocated () = !next_base

(* Collector: a generation-stamped array instead of a per-window
   hashtable. [stamp.(id) = gen] marks id as hit in the current
   window; [reset] bumps the generation, which invalidates every
   stamp in O(1) without touching (or re-allocating) the array.
   Collectors are long-lived (one per VM) and reused across runs. *)
type t = {
  mutable order : int array;  (* first-hit order, first [n] slots *)
  mutable n : int;
  mutable stamp : int array;
  mutable gen : int;
}

let create () =
  {
    order = Array.make 64 0;
    n = 0;
    stamp = Array.make (max 64 (total_allocated ())) 0;
    gen = 1;
  }

let hit t id =
  if id < 0 then invalid_arg "Coverage.hit: negative id";
  let len = Array.length t.stamp in
  if id >= len then begin
    let grown = Array.make (max (id + 1) (2 * len)) 0 in
    Array.blit t.stamp 0 grown 0 len;
    t.stamp <- grown
  end;
  if t.stamp.(id) <> t.gen then begin
    t.stamp.(id) <- t.gen;
    if t.n = Array.length t.order then begin
      let grown = Array.make (2 * t.n) 0 in
      Array.blit t.order 0 grown 0 t.n;
      t.order <- grown
    end;
    t.order.(t.n) <- id;
    t.n <- t.n + 1
  end

let blocks t = List.init t.n (fun i -> t.order.(i))

let reset t =
  t.n <- 0;
  t.gen <- t.gen + 1
