(** Vulnerability classes, matching the "Risk" column of the paper's
    Table 5 plus the classes appearing in Table 4. *)

type t =
  | Data_race
  | Use_after_free
  | Out_of_bounds
  | Null_ptr_deref
  | Memory_leak
  | Uninit_value
  | Deadlock
  | Refcount_bug
  | General_protection_fault
  | Paging_fault
  | Divide_error
  | Kernel_bug  (** BUG()/assertion failures. *)
  | Inconsistent_lock_state

val all : t list
(** Every class, in declaration order. *)

val to_string : t -> string

val of_string : string -> t option
(** Inverse of {!to_string}; [None] for unknown class names (used when
    decoding persisted crash records). *)

val pp : Format.formatter -> t -> unit

val is_memory_error : t -> bool
(** The classes the paper attributes to KASAN/KMSAN (44.4% of found
    bugs): use-after-free, out-of-bounds, uninit value, memory leak. *)

val is_concurrency : t -> bool
(** Data races / deadlocks / lock-state, attributed to KCSAN (11.1%). *)
