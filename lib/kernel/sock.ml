type proto = Tcp | Udp | Unix | Netlink | Raw | Rxrpc | Rds

type sock = {
  proto : proto;
  mutable bound : bool;
  mutable bound_addr : int64;
  mutable listening : bool;
  mutable connected : bool;
  mutable backlog : int;
  mutable sndbuf : int;
  mutable shut : bool;
  mutable ib_transport : bool;
  mutable rcvbuf : int;
  mutable keepalive : bool;
  mutable pending_err : bool;
}

type State.fd_kind += Sock of sock

(* rxrpc local endpoints: addr -> refcount; a double bind leaks one. *)
type State.global += Rxrpc_locals of (int64, int) Hashtbl.t

let blk = Coverage.region ~name:"sock" ~size:1024

(* lock_sock: per-socket payload state plus the rxrpc local-endpoint
   table its bind path manages. *)
let sk_lock = Lock.register ~rank:60 ~guards:[ "rxrpc"; "fd:sock" ] "sk_lock"
let c ctx o = Ctx.cover ctx (blk + o)

(* Effect slots: the rxrpc local-endpoint table and the per-socket
   payload. Socket/peer allocation is exempt (fresh payload). *)
let s_rxrpc = Effect.slot "rxrpc"
let s_fd_sock = Effect.slot "fd:sock"

let proto_index = function
  | Tcp -> 0
  | Udp -> 1
  | Unix -> 2
  | Netlink -> 3
  | Raw -> 4
  | Rxrpc -> 5
  | Rds -> 6

let init st = State.set_global st "rxrpc" (Rxrpc_locals (Hashtbl.create 8))

let rxrpc_locals st =
  State.record_read st s_rxrpc;
  match State.global st "rxrpc" with
  | Some (Rxrpc_locals t) -> t
  | Some _ | None -> failwith "sock: state not initialized"

let new_sock ctx proto =
  c ctx (proto_index proto);
  let s =
    {
      proto;
      bound = false;
      bound_addr = 0L;
      listening = false;
      connected = false;
      backlog = 0;
      sndbuf = 65536;
      shut = false;
      ib_transport = false;
      rcvbuf = 65536;
      keepalive = false;
      pending_err = false;
    }
  in
  let entry = State.alloc_fd ctx.Ctx.st (Sock s) in
  Ctx.ok (Int64.of_int entry.fd)

let h_socket proto ctx _args = new_sock ctx proto

let with_sock ctx args k =
  let fd = Arg.as_fd (Arg.nth args 0) in
  match State.lookup_fd ctx.Ctx.st fd with
  | Some { kind = Sock s; _ } ->
    State.record_read ctx.Ctx.st s_fd_sock;
    k s
  | Some _ ->
    c ctx 8;
    Ctx.err Errno.ENOTCONN
  | None ->
    c ctx 9;
    Ctx.err Errno.EBADF

let addr_of args i =
  (* sockaddr { family int16, port int16, addr int32 } *)
  let a = Arg.nth args i in
  Int64.add
    (Int64.mul 65536L (Arg.as_int (Arg.field a 1)))
    (Arg.as_int (Arg.field a 2))

let h_bind ctx args =
  c ctx 12;
  with_sock ctx args (fun s ->
      if s.bound then begin
        c ctx 13;
        Ctx.err Errno.EINVAL
      end
      else if Arg.is_null (Arg.nth args 1) then begin
        c ctx 14;
        Ctx.err Errno.EFAULT
      end
      else begin
        c ctx (16 + proto_index s.proto);
        State.record_write ctx.Ctx.st s_fd_sock;
        s.bound <- true;
        s.bound_addr <- addr_of args 1;
        Ctx.ok0
      end)

(* The motivating example: listen on an unbound socket exits early. *)
let h_listen ctx args =
  c ctx 24;
  with_sock ctx args (fun s ->
      if s.proto <> Tcp && s.proto <> Unix then begin
        c ctx 25;
        Ctx.err Errno.EOPNOTSUPP
      end
      else if not s.bound then begin
        c ctx 26;
        Ctx.err Errno.EDESTADDRREQ
      end
      else begin
        c ctx 27;
        let backlog = Int64.to_int (Arg.as_int (Arg.nth args 1)) in
        State.record_write ctx.Ctx.st s_fd_sock;
        s.listening <- true;
        s.backlog <- max 0 backlog;
        if backlog = 0 then c ctx 28 else if backlog > 128 then c ctx 29 else c ctx 30;
        Ctx.ok0
      end)

let h_accept ctx args =
  c ctx 32;
  with_sock ctx args (fun s ->
      if not s.listening then begin
        c ctx 33;
        Ctx.err Errno.EINVAL
      end
      else begin
        c ctx 34;
        let peer =
          {
            proto = s.proto;
            bound = true;
            bound_addr = s.bound_addr;
            listening = false;
            connected = true;
            backlog = 0;
            sndbuf = s.sndbuf;
            shut = false;
            ib_transport = false;
            rcvbuf = s.rcvbuf;
            keepalive = s.keepalive;
            pending_err = false;
          }
        in
        let entry = State.alloc_fd ctx.Ctx.st (Sock peer) in
        Ctx.ok (Int64.of_int entry.fd)
      end)

let h_connect ctx args =
  c ctx 36;
  with_sock ctx args (fun s ->
      if Arg.is_null (Arg.nth args 1) then begin
        c ctx 37;
        Ctx.err Errno.EFAULT
      end
      else
        match s.proto with
        | Rxrpc ->
          c ctx 38;
          if not s.bound then begin
            c ctx 39;
            Ctx.err Errno.EDESTADDRREQ
          end
          else begin
            (* A local endpoint leaked by a double bind is looked up
               again here (rxrpc_lookup_local, 5.6+). *)
            let locals = rxrpc_locals ctx.Ctx.st in
            (match Hashtbl.find_opt locals s.bound_addr with
            | Some refs when refs >= 2 ->
              c ctx 40;
              Ctx.bug ctx "rxrpc_lookup_local"
            | Some _ | None -> ());
            State.record_write ctx.Ctx.st s_fd_sock;
            s.connected <- true;
            Ctx.ok0
          end
        | Rds ->
          c ctx 42;
          if s.ib_transport && not s.bound then begin
            (* IB transport with no bound device: conn->c_path is NULL
               (rds_ib_add_conn, 5.6+). *)
            c ctx 43;
            Ctx.bug ctx "rds_ib_add_conn";
            Ctx.err Errno.EINVAL
          end
          else begin
            c ctx 44;
            State.record_write ctx.Ctx.st s_fd_sock;
            s.connected <- true;
            Ctx.ok0
          end
        | Tcp | Udp | Unix | Netlink | Raw ->
          if s.connected then begin
            c ctx 45;
            Ctx.err Errno.EISCONN
          end
          else begin
            c ctx (46 + proto_index s.proto);
            State.record_write ctx.Ctx.st s_fd_sock;
            s.connected <- true;
            Ctx.ok0
          end)

(* connect with AF_UNSPEC disconnects a TCP socket; the paper-era bug
   dereferences a stale request socket. *)
let h_connect_unspec ctx args =
  c ctx 54;
  with_sock ctx args (fun s ->
      if s.proto <> Tcp then begin
        c ctx 55;
        Ctx.err Errno.EOPNOTSUPP
      end
      else if s.connected then begin
        c ctx 56;
        State.record_write ctx.Ctx.st s_fd_sock;
        s.connected <- false;
        Ctx.bug ctx "tcp_disconnect";
        Ctx.ok0
      end
      else begin
        c ctx 57;
        Ctx.ok0
      end)

let h_sendto ctx args =
  c ctx 60;
  with_sock ctx args (fun s ->
      let buf = Arg.as_buf (Arg.nth args 1) in
      let n = Bytes.length buf in
      if s.shut then begin
        c ctx 61;
        Ctx.err Errno.EPIPE
      end
      else
        match s.proto with
        | Raw ->
          c ctx 62;
          if n >= 1 && n < 8 then begin
            (* Header shorter than the header struct: the tail is read
               uninitialized (raw_sendmsg). *)
            c ctx 63;
            Ctx.bug ctx "raw_sendmsg_uninit"
          end;
          Ctx.ok (Int64.of_int n)
        | Tcp | Udp | Unix | Netlink | Rxrpc | Rds ->
          if (not s.connected) && s.proto = Tcp then begin
            c ctx 64;
            Ctx.err Errno.ENOTCONN
          end
          else begin
            c ctx (65 + proto_index s.proto);
            (* Oversized frame against a shrunken send buffer builds an
               skb from a misallocated page (__build_skb, 5.11). *)
            if s.connected && s.sndbuf < 1024 && n > 8192 then begin
              c ctx 72;
              Ctx.bug ctx "build_skb"
            end;
            if n > 65536 then begin
              c ctx 73;
              Ctx.err Errno.ENOMEM
            end
            else begin
              (* Transmit path specialization per protocol and socket
                 state: each combination is a distinct inlined path. *)
              let combo =
                (proto_index s.proto * 4)
                lor (if s.bound then 1 else 0)
                lor if s.connected then 2 else 0
              in
              c ctx (128 + combo);
              if s.listening then c ctx (128 + combo + 32);
              (* Segmentation paths specialize on payload size class. *)
              let size_class =
                if n = 0 then 0
                else if n <= 64 then 1
                else if n <= 512 then 2
                else if n <= 1024 then 3
                else if n <= 4096 then 4
                else if n <= 8192 then 5
                else if n <= 16384 then 6
                else 7
              in
              c ctx (256 + (combo * 8) + size_class);
              Ctx.ok (Int64.of_int n)
            end
          end)

let h_recvfrom ctx args =
  c ctx 76;
  with_sock ctx args (fun s ->
      if s.shut then begin
        c ctx 77;
        Ctx.ok 0L
      end
      else if (not s.connected) && s.proto = Tcp then begin
        c ctx 78;
        Ctx.err Errno.ENOTCONN
      end
      else begin
        c ctx (79 + proto_index s.proto);
        let combo =
          (proto_index s.proto * 4)
          lor (if s.bound then 1 else 0)
          lor if s.connected then 2 else 0
        in
        c ctx (192 + combo);
        c ctx (512 + (combo * 4) + (if s.listening then 2 else 0)
               + if s.shut then 1 else 0);
        Ctx.ok 0L
      end)

let h_setsockopt_sndbuf ctx args =
  c ctx 88;
  with_sock ctx args (fun s ->
      let v = Int64.to_int (Arg.as_int (Arg.field (Arg.nth args 3) 0)) in
      c ctx 89;
      State.record_write ctx.Ctx.st s_fd_sock;
      s.sndbuf <- max 256 (v * 2);
      if s.sndbuf < 1024 then c ctx 90;
      Ctx.ok0)

let h_setsockopt_linger ctx args =
  c ctx 92;
  with_sock ctx args (fun s ->
      ignore s;
      c ctx 93;
      Ctx.ok0)

let h_getsockname ctx args =
  c ctx 95;
  with_sock ctx args (fun s ->
      if s.bound then begin
        c ctx 96;
        Ctx.ok 0L
      end
      else begin
        c ctx 97;
        Ctx.ok 0L
      end)

let h_shutdown ctx args =
  c ctx 99;
  with_sock ctx args (fun s ->
      let how = Arg.as_int (Arg.nth args 1) in
      if Int64.compare how 2L > 0 || Int64.compare how 0L < 0 then begin
        c ctx 100;
        Ctx.err Errno.EINVAL
      end
      else begin
        c ctx 101;
        (* Unix socket shut down while connected to a bound peer drops
           one reference too many (unix_release_sock). *)
        if s.proto = Unix && s.connected && s.bound then begin
          c ctx 102;
          Ctx.bug ctx "unix_release_refcount"
        end;
        State.record_write ctx.Ctx.st s_fd_sock;
        s.shut <- true;
        Ctx.ok0
      end)

let h_bind_rxrpc ctx args =
  c ctx 104;
  with_sock ctx args (fun s ->
      if s.proto <> Rxrpc then begin
        c ctx 105;
        Ctx.err Errno.EOPNOTSUPP
      end
      else begin
        let addr = addr_of args 1 in
        let locals = rxrpc_locals ctx.Ctx.st in
        let refs =
          match Hashtbl.find_opt locals addr with Some r -> r | None -> 0
        in
        State.record_write ctx.Ctx.st s_rxrpc;
        Hashtbl.replace locals addr (refs + 1);
        State.record_write ctx.Ctx.st s_fd_sock;
        if s.bound then begin
          (* Second bind on the same socket: the old local endpoint is
             not released. *)
          c ctx 106;
          s.bound_addr <- addr;
          Ctx.ok0
        end
        else begin
          c ctx 107;
          s.bound <- true;
          s.bound_addr <- addr;
          Ctx.ok0
        end
      end)

let h_setsockopt_rds_ib ctx args =
  c ctx 110;
  with_sock ctx args (fun s ->
      if s.proto <> Rds then begin
        c ctx 111;
        Ctx.err Errno.EOPNOTSUPP
      end
      else begin
        c ctx 112;
        State.record_write ctx.Ctx.st s_fd_sock;
        s.ib_transport <- true;
        Ctx.ok0
      end)

let sock_write ctx (entry : State.fd_entry) args =
  match entry.kind with
  | Sock s ->
    c ctx 114;
    State.record_read ctx.Ctx.st s_fd_sock;
    if s.shut then begin
      c ctx 115;
      Ctx.err Errno.EPIPE
    end
    else if (not s.connected) && (s.proto = Tcp || s.proto = Unix) then begin
      c ctx 116;
      Ctx.err Errno.ENOTCONN
    end
    else begin
      c ctx 117;
      Ctx.ok (Int64.of_int (Bytes.length (Arg.as_buf (Arg.nth args 1))))
    end
  | _ -> Ctx.err Errno.EINVAL

let sock_read ctx (entry : State.fd_entry) _args =
  match entry.kind with
  | Sock s ->
    c ctx 119;
    State.record_read ctx.Ctx.st s_fd_sock;
    if s.shut then Ctx.ok 0L
    else if not s.connected then begin
      c ctx 120;
      Ctx.err Errno.EAGAIN
    end
    else begin
      c ctx 121;
      Ctx.ok 0L
    end
  | _ -> Ctx.err Errno.EINVAL

(* ---- additional socket options and control operations ---- *)

let h_setsockopt_rcvbuf ctx args =
  c ctx 640;
  with_sock ctx args (fun s ->
      let v = Int64.to_int (Arg.as_int (Arg.field (Arg.nth args 3) 0)) in
      c ctx 641;
      State.record_write ctx.Ctx.st s_fd_sock;
      s.rcvbuf <- max 256 (v * 2);
      if s.rcvbuf < 1024 then c ctx 642;
      Ctx.ok0)

let h_setsockopt_keepalive ctx args =
  c ctx 644;
  with_sock ctx args (fun s ->
      let v = Arg.as_int (Arg.field (Arg.nth args 3) 0) in
      if s.proto <> Tcp then begin
        c ctx 645;
        Ctx.err Errno.EOPNOTSUPP
      end
      else begin
        c ctx 646;
        State.record_write ctx.Ctx.st s_fd_sock;
        s.keepalive <- Int64.compare v 0L <> 0;
        if s.keepalive then c ctx 647;
        Ctx.ok0
      end)

let h_getsockopt_error ctx args =
  c ctx 649;
  with_sock ctx args (fun s ->
      c ctx 650;
      (* Reading SO_ERROR clears the pending error. *)
      let err = if s.pending_err then Int64.of_int (Errno.code Errno.EPIPE) else 0L in
      State.record_write ctx.Ctx.st s_fd_sock;
      s.pending_err <- false;
      Ctx.ok err)

let h_fionread ctx args =
  c ctx 652;
  with_sock ctx args (fun s ->
      if not s.connected then begin
        c ctx 653;
        Ctx.ok 0L
      end
      else begin
        c ctx 654;
        Ctx.ok 0L (* nothing queued in the simulator's quiet network *)
      end)

let h_accept4 ctx args =
  c ctx 656;
  with_sock ctx args (fun s ->
      let aflags = Arg.as_int (Arg.nth args 2) in
      if Int64.logand aflags (Int64.lognot 0x80800L) <> 0L then begin
        c ctx 657;
        Ctx.err Errno.EINVAL
      end
      else if not s.listening then begin
        c ctx 658;
        Ctx.err Errno.EINVAL
      end
      else begin
        c ctx 659;
        if Int64.logand aflags 0x800L <> 0L then c ctx 660 (* NONBLOCK *);
        let peer =
          {
            proto = s.proto;
            bound = true;
            bound_addr = s.bound_addr;
            listening = false;
            connected = true;
            backlog = 0;
            sndbuf = s.sndbuf;
            shut = false;
            ib_transport = false;
            rcvbuf = s.rcvbuf;
            keepalive = s.keepalive;
            pending_err = false;
          }
        in
        let entry = State.alloc_fd ctx.Ctx.st (Sock peer) in
        Ctx.ok (Int64.of_int entry.State.fd)
      end)

(* sendmsg: scatter-gather transmit; the iov count takes its own
   segmentation paths. *)
let h_sendmsg ctx args =
  c ctx 662;
  with_sock ctx args (fun s ->
      let msg = Arg.nth args 1 in
      if Arg.is_null msg then begin
        c ctx 663;
        Ctx.err Errno.EFAULT
      end
      else begin
        let iovs = Arg.as_rec (Arg.field msg 0) in
        let niov = List.length iovs in
        if niov = 0 then begin
          c ctx 664;
          Ctx.err Errno.EINVAL
        end
        else if s.shut then begin
          c ctx 665;
          State.record_write ctx.Ctx.st s_fd_sock;
          s.pending_err <- true;
          Ctx.err Errno.EPIPE
        end
        else if (not s.connected) && s.proto = Tcp then begin
          c ctx 666;
          Ctx.err Errno.ENOTCONN
        end
        else begin
          c ctx 667;
          c ctx (672 + min 7 niov);
          Ctx.ok (Int64.of_int (niov * 16))
        end
      end)

let descriptions =
  {|
# Core sockets: TCP, UDP, Unix, netlink, raw, RxRPC, RDS.
resource sock[fd]
resource sock_tcp[sock]
resource sock_udp[sock]
resource sock_unix[sock]
resource sock_netlink[sock]
resource sock_raw[sock]
resource sock_rxrpc[sock]
resource sock_rds[sock]
flags send_flags = 0x0 0x1 0x4 0x10 0x40 0x4000
struct sockaddr { family int16, port int16, addr int32 }
socket$tcp(domain const[2], type const[1], proto const[6]) sock_tcp
socket$udp(domain const[2], type const[2], proto const[17]) sock_udp
socket$unix(domain const[1], type const[1], proto const[0]) sock_unix
socket$netlink(domain const[16], type const[3], proto int32[0:22]) sock_netlink
socket$raw(domain const[2], type const[3], proto const[255]) sock_raw
socket$rxrpc(domain const[33], type const[2], proto const[0]) sock_rxrpc
socket$rds(domain const[21], type const[5], proto const[0]) sock_rds
bind(fd sock, addr ptr[in, sockaddr])
bind$rxrpc(fd sock_rxrpc, addr ptr[in, sockaddr])
listen(fd sock_tcp, backlog int32)
accept(fd sock_tcp, peer ptr[out, sockaddr]) sock_tcp
connect(fd sock, addr ptr[in, sockaddr])
connect$unspec(fd sock_tcp, family const[0])
sendto(fd sock, buf buffer[in], length len[buf], flags flags[send_flags], addr ptr[in, sockaddr])
recvfrom(fd sock, buf buffer[out], length len[buf], flags flags[send_flags])
setsockopt$SO_SNDBUF(fd sock, level const[1], optname const[7], val ptr[in, int32])
setsockopt$SO_RCVBUF(fd sock, level const[1], optname const[8], val ptr[in, int32])
setsockopt$SO_KEEPALIVE(fd sock_tcp, level const[1], optname const[9], val ptr[in, int32])
getsockopt$SO_ERROR(fd sock, level const[1], optname const[4], val ptr[out, int32])
ioctl$FIONREAD(fd sock, cmd const[0x541b], avail ptr[out, int32])
accept4(fd sock_tcp, peer ptr[out, sockaddr], aflags int32) sock_tcp
sendmsg(fd sock, msg ptr[in, msghdr_sim], sflags flags[send_flags])
struct iovec_sim { base vma, iov_len int64 }
struct msghdr_sim { iovs array[iovec_sim, 1:4], control int64 }
setsockopt$SO_LINGER(fd sock, level const[1], optname const[13], val ptr[in, int64])
setsockopt$rds_ib(fd sock_rds, level const[276], optname const[1], val ptr[in, int32])
getsockname(fd sock, addr ptr[out, sockaddr])
shutdown(fd sock, how int32[0:2])
|}

let copy_kind : State.fd_kind -> State.fd_kind option = function
  | Sock s -> Some (Sock { s with bound = s.bound })
  | _ -> None

let copy_global : State.global -> State.global option = function
  | Rxrpc_locals tbl -> Some (Rxrpc_locals (Hashtbl.copy tbl))
  | _ -> None

let sub =
  let l = Subsystem.locked [ sk_lock ] in
  let w touches = Lock.scoped [ "sk_lock" ] ~touches in
  let wsk = Lock.scoped [ "sk_lock" ] ~touches:[ "fd:sock" ] in
  Subsystem.make ~name:"sock" ~descriptions ~init ~copy_kind ~copy_global
    ~handlers:
      [
        ("socket$tcp", h_socket Tcp);
        ("socket$udp", h_socket Udp);
        ("socket$unix", h_socket Unix);
        ("socket$netlink", h_socket Netlink);
        ("socket$raw", h_socket Raw);
        ("socket$rxrpc", h_socket Rxrpc);
        ("socket$rds", h_socket Rds);
        ("bind", l h_bind);
        ("bind$rxrpc", l h_bind_rxrpc);
        ("listen", l h_listen);
        ("accept", l h_accept);
        ("connect", l h_connect);
        ("connect$unspec", l h_connect_unspec);
        ("sendto", l h_sendto);
        ("recvfrom", l h_recvfrom);
        ("setsockopt$SO_SNDBUF", l h_setsockopt_sndbuf);
        ("setsockopt$SO_RCVBUF", l h_setsockopt_rcvbuf);
        ("setsockopt$SO_KEEPALIVE", l h_setsockopt_keepalive);
        ("getsockopt$SO_ERROR", l h_getsockopt_error);
        ("ioctl$FIONREAD", l h_fionread);
        ("accept4", l h_accept4);
        ("sendmsg", l h_sendmsg);
        ("setsockopt$SO_LINGER", l h_setsockopt_linger);
        ("setsockopt$rds_ib", l h_setsockopt_rds_ib);
        ("getsockname", l h_getsockname);
        ("shutdown", l h_shutdown);
      ]
    ~locks:
      [
        ("bind", wsk);
        ("bind$rxrpc", w [ "rxrpc"; "fd:sock" ]);
        ("listen", wsk);
        ("accept", wsk);
        ("connect", wsk);
        ("connect$unspec", wsk);
        ("sendto", wsk);
        ("recvfrom", wsk);
        ("setsockopt$SO_SNDBUF", wsk);
        ("setsockopt$SO_RCVBUF", wsk);
        ("setsockopt$SO_KEEPALIVE", wsk);
        ("getsockopt$SO_ERROR", wsk);
        ("ioctl$FIONREAD", w []);
        ("accept4", wsk);
        ("sendmsg", wsk);
        ("setsockopt$SO_LINGER", wsk);
        ("setsockopt$rds_ib", wsk);
        ("getsockname", w []);
        ("shutdown", wsk);
      ]
    ~effects:
      (let wr = Effect.spec ~writes:[ "fd:sock" ] () in
       let rd = Effect.spec ~reads:[ "fd:sock" ] () in
       [
         ("bind", wr);
         ("bind$rxrpc", Effect.spec ~writes:[ "rxrpc"; "fd:sock" ] ());
         ("listen", wr);
         ("accept", wr);
         ("connect", Effect.spec ~reads:[ "rxrpc" ] ~writes:[ "fd:sock" ] ());
         ("connect$unspec", wr);
         ("sendto", wr);
         ("recvfrom", wr);
         ("setsockopt$SO_SNDBUF", wr);
         ("setsockopt$SO_RCVBUF", wr);
         ("setsockopt$SO_KEEPALIVE", wr);
         ("getsockopt$SO_ERROR", wr);
         ("ioctl$FIONREAD", rd);
         ("accept4", wr);
         ("sendmsg", wr);
         ("setsockopt$SO_LINGER", wr);
         ("setsockopt$rds_ib", wr);
         ("getsockname", rd);
         ("shutdown", wr);
       ])
    ~file_ops:
      [
        {
          Subsystem.op_name = "write";
          applies = (function Sock _ -> true | _ -> false);
          run = sock_write;
        };
        {
          Subsystem.op_name = "read";
          applies = (function Sock _ -> true | _ -> false);
          run = sock_read;
        };
      ]
    ()
