(* The lock model: named lock classes with a declared nesting order
   (ranks), the shared-state slots each class guards, per-handler
   declared lock specs, and the pure checking core behind both the
   static lockdep pass ([Healer_analysis.Lockdep]) and the runtime
   validator in [Kernel.exec_call].

   The model is deliberately simulator-shaped: the simulated kernel is
   single-threaded, so locks never block — acquire/release hooks only
   *account* (lock-pair coverage counters) and *record* (acquisition
   traces under debug validation). What lockdep checks is therefore
   the declared discipline, exactly like Linux's lockdep validates
   would-be deadlocks on a machine that never actually deadlocks. *)

(* ---- classes ---- *)

type cls = { id : int; cname : string; rank : int; guards : string list }

let next_id = ref 0

let make ?(guards = []) ~rank cname =
  incr next_id;
  { id = !next_id; cname; rank; guards }

(* Process-global registry, filled by subsystem modules at module-init
   time (like [Subsystem.register]). Idempotent by name. *)
let registry : (string, cls) Hashtbl.t = Hashtbl.create 16
let reg_order : cls list ref = ref []

let register ?guards ~rank cname =
  match Hashtbl.find_opt registry cname with
  | Some c -> c
  | None ->
    let c = make ?guards ~rank cname in
    Hashtbl.add registry cname c;
    reg_order := c :: !reg_order;
    c

let registered () = List.rev !reg_order
let find name = Hashtbl.find_opt registry name

(* ---- specs and models ---- *)

type op = Acquire of string | Release of string

type spec = { ops : op list; touches : string list }

let scoped ?(touches = []) classes =
  let acq = List.map (fun c -> Acquire c) classes in
  let rel = List.rev_map (fun c -> Release c) classes in
  { ops = acq @ rel; touches }

let acquires spec =
  List.filter_map (function Acquire c -> Some c | Release _ -> None) spec.ops

type model = {
  classes : cls list;
  specs : (string * string * spec) list;
      (* (subsystem, handler, declared spec) *)
}

type finding = { check : string; subject : string; msg : string }

exception Violation of finding

let () =
  Printexc.register_printer (function
    | Violation f ->
      Some
        (Printf.sprintf "Lock.Violation(%s: %s: %s)" f.check f.subject f.msg)
    | _ -> None)

(* ---- runtime switches ---- *)

let env_on ?(default = false) var =
  match Sys.getenv_opt var with
  | None -> default
  | Some v -> (
    match String.lowercase_ascii (String.trim v) with
    | "" | "0" | "false" | "no" | "off" -> false
    | _ -> true)

(* Accounting hooks default on (they are the lock-pair coverage
   signal); HEALER_LOCK_HOOKS=0 turns them off, which the bench uses
   to measure their overhead. *)
let hooks = ref (env_on ~default:true "HEALER_LOCK_HOOKS")
let hooks_enabled () = !hooks
let set_hooks b = hooks := b

(* Trace recording + per-call validation follow the same debug
   contract as the program validator ([Progcheck]): opt-in via
   HEALER_DEBUG_VALIDATE, forced on across `dune runtest`. *)
let validate = ref (env_on "HEALER_DEBUG_VALIDATE")
let validate_enabled () = !validate
let set_validate b = validate := b

(* ---- lock-pair coverage counter slots ----

   The per-acquire hot path must stay cheap (it runs on every handler
   of every executed call), so counters are dense int slots into
   [State]'s lock-count array, not string-keyed counters: bumping one
   is an array increment. Slot indices are memoized per class pair /
   class; [slot_name] maps them back to the printable "lock:pair:A->B"
   / "lock:acq:C" keys. The memo tables are filled for every
   registered pair by [force_pairs] (from [Kernel.force_init]) before
   any parallel campaign starts; after that they are only read. *)

let counter_prefix = "lock:"
let pair_prefix = "lock:pair:"
let acq_prefix = "lock:acq:"
let slot_names = ref (Array.make 0 "")
let n_slots = ref 0

let new_slot name =
  let i = !n_slots in
  let cap = Array.length !slot_names in
  if i >= cap then begin
    let a = Array.make (max 16 (2 * cap)) "" in
    Array.blit !slot_names 0 a 0 cap;
    slot_names := a
  end;
  !slot_names.(i) <- name;
  incr n_slots;
  i

let slot_name i = !slot_names.(i)
let n_counter_slots () = !n_slots

(* The memos are dense arrays indexed by class id (0 = unassigned, so
   slot s is stored as s+1): a pair lookup on the acquire hot path is
   two array reads, no tuple allocation, no hashing. *)
let pair_slots : int array array ref = ref [||]
let acq_slots : int array ref = ref [||]

let ensure_id id =
  let cap = Array.length !acq_slots in
  if id >= cap then begin
    let cap' = max 16 (max (id + 1) (2 * cap)) in
    let a = Array.make cap' 0 in
    Array.blit !acq_slots 0 a 0 cap;
    acq_slots := a;
    let m = Array.make cap' [||] in
    Array.blit !pair_slots 0 m 0 (Array.length !pair_slots);
    pair_slots := m
  end

let pair_counter outer inner =
  let m = !pair_slots in
  let row = if outer.id < Array.length m then m.(outer.id) else [||] in
  if inner.id < Array.length row && row.(inner.id) > 0 then row.(inner.id) - 1
  else begin
    ensure_id outer.id;
    ensure_id inner.id;
    let row = !pair_slots.(outer.id) in
    let row =
      if inner.id < Array.length row then row
      else begin
        let r = Array.make (Array.length !acq_slots) 0 in
        Array.blit row 0 r 0 (Array.length row);
        !pair_slots.(outer.id) <- r;
        r
      end
    in
    let s = new_slot (pair_prefix ^ outer.cname ^ "->" ^ inner.cname) in
    row.(inner.id) <- s + 1;
    s
  end

let acq_counter c =
  let a = !acq_slots in
  if c.id < Array.length a && a.(c.id) > 0 then a.(c.id) - 1
  else begin
    ensure_id c.id;
    let s = new_slot (acq_prefix ^ c.cname) in
    !acq_slots.(c.id) <- s + 1;
    s
  end

let force_pairs () =
  let all = registered () in
  List.iter
    (fun a ->
      ignore (acq_counter a);
      List.iter (fun b -> if a.id <> b.id then ignore (pair_counter a b)) all)
    all

(* ---- checking core ---- *)

let find_cls model name = List.find_opt (fun c -> c.cname = name) model.classes

(* Simulate one op sequence: structural checks (unknown class, double
   acquire, release of unheld, held at exit, rank inversions) plus the
   (outer, inner) nesting pairs it exhibits. [held] is innermost
   first. *)
let sim model ~emit ops =
  let held = ref [] in
  let pairs = ref [] in
  List.iter
    (fun op ->
      match op with
      | Acquire n -> (
        match find_cls model n with
        | None ->
          emit "lock-unknown-class"
            (Printf.sprintf "acquires undeclared lock class %S" n)
        | Some c ->
          if List.mem n !held then
            emit "lock-double-acquire"
              (Printf.sprintf "acquires %S while already holding it" n)
          else begin
            List.iter
              (fun h ->
                match find_cls model h with
                | Some hc when hc.rank > c.rank ->
                  emit "lock-rank-violation"
                    (Printf.sprintf
                       "acquires %S (rank %d) while holding %S (rank %d)"
                       n c.rank h hc.rank)
                | _ -> ())
              !held;
            List.iter (fun h -> pairs := (h, n) :: !pairs) !held;
            held := n :: !held
          end)
      | Release n ->
        if List.mem n !held then
          held :=
            (let rec drop = function
               | [] -> []
               | x :: rest -> if x = n then rest else x :: drop rest
             in
             drop !held)
        else if find_cls model n = None then
          emit "lock-unknown-class"
            (Printf.sprintf "releases undeclared lock class %S" n)
        else
          emit "lock-release-unheld"
            (Printf.sprintf "releases %S without holding it" n))
    ops;
  if !held <> [] then
    emit "lock-held-at-exit"
      (Printf.sprintf "exits still holding %s"
         (String.concat ", "
            (List.rev_map (fun n -> Printf.sprintf "%S" n) !held)));
  List.rev !pairs

(* The declared lock-order graph: deduped (outer, inner) edges over
   every spec, in first-witness order. *)
let order_edges model =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  List.iter
    (fun (_, _, spec) ->
      let pairs = sim model ~emit:(fun _ _ -> ()) spec.ops in
      List.iter
        (fun p ->
          if not (Hashtbl.mem seen p) then begin
            Hashtbl.add seen p ();
            out := p :: !out
          end)
        pairs)
    model.specs;
  List.rev !out

let reachable edges ~src ~dst =
  let visited = Hashtbl.create 16 in
  let rec go n =
    if n = dst then true
    else if Hashtbl.mem visited n then false
    else begin
      Hashtbl.add visited n ();
      List.exists (fun (a, b) -> a = n && go b) edges
    end
  in
  List.exists (fun (a, b) -> a = src && (b = dst || go b)) edges

let subject_of sub handler = Printf.sprintf "%s/%s" sub handler

let check_model ?(reads = []) model =
  let out = ref [] in
  let add check subject msg = out := { check; subject; msg } :: !out in
  (* Per-spec structural checks. *)
  List.iter
    (fun (sub, handler, spec) ->
      let subject = subject_of sub handler in
      ignore (sim model ~emit:(fun check msg -> add check subject msg) spec.ops))
    model.specs;
  (* ABBA: an edge that the rest of the graph can invert closes a
     declared-order cycle. Each offending edge is reported once. *)
  let edges = order_edges model in
  List.iter
    (fun (a, b) ->
      if reachable edges ~src:b ~dst:a && (a < b || not (List.mem (b, a) edges))
      then
        add "lock-order-cycle"
          (Printf.sprintf "lock order %S -> %S" a b)
          (Printf.sprintf
             "declared nesting %S -> %S closes a cycle (ABBA deadlock \
              candidate): %S is also reachable from %S"
             a b a b))
    edges;
  (* Guard coverage: a slot mutated by two handlers must share at
     least one guarding class across all of them. *)
  let slots = Hashtbl.create 16 in
  let slot_order = ref [] in
  List.iter
    (fun (sub, handler, spec) ->
      let acquired = List.sort_uniq compare (acquires spec) in
      List.iter
        (fun slot ->
          let guardians =
            List.filter
              (fun cn ->
                match find_cls model cn with
                | Some c -> List.mem slot c.guards
                | None -> false)
              acquired
          in
          if not (Hashtbl.mem slots slot) then slot_order := slot :: !slot_order;
          Hashtbl.replace slots slot
            ((subject_of sub handler, guardians)
            :: (try Hashtbl.find slots slot with Not_found -> [])))
        spec.touches)
    model.specs;
  List.iter
    (fun slot ->
      let touchers = List.rev (Hashtbl.find slots slot) in
      if List.length touchers >= 2 then begin
        let subject = Printf.sprintf "state slot %S" slot in
        let unguarded =
          List.filter_map
            (fun (who, gs) -> if gs = [] then Some who else None)
            touchers
        in
        if unguarded <> [] then
          add "lock-guard-coverage" subject
            (Printf.sprintf
               "mutated by %d handlers but %s under no declared lock class \
                guarding it (data-race candidate)"
               (List.length touchers)
               (String.concat ", " unguarded))
        else begin
          let inter =
            List.fold_left
              (fun acc (_, gs) -> List.filter (fun g -> List.mem g gs) acc)
              (snd (List.hd touchers))
              (List.tl touchers)
          in
          if inter = [] then
            add "lock-guard-coverage" subject
              (Printf.sprintf
                 "mutated under disjoint lock classes across %s (data-race \
                  candidate)"
                 (String.concat ", " (List.map fst touchers)))
        end
      end)
    (List.rev !slot_order);
  (* Read-side guard coverage: reading a slot some class guards
     without holding any guarding class. (Unguarded slots are the race
     detector's domain, not a guard-coverage finding.) *)
  List.iter
    (fun (sub, handler, slots_read) ->
      let acquired =
        match
          List.find_opt (fun (_, h, _) -> String.equal h handler) model.specs
        with
        | Some (_, _, spec) -> List.sort_uniq compare (acquires spec)
        | None -> []
      in
      List.iter
        (fun slot ->
          let guardians =
            List.filter (fun c -> List.mem slot c.guards) model.classes
          in
          if
            guardians <> []
            && not (List.exists (fun c -> List.mem c.cname acquired) guardians)
          then
            add "lock-guard-coverage"
              (Printf.sprintf "state slot %S" slot)
              (Printf.sprintf
                 "read by %s without holding %s guarding it (data-race \
                  candidate)"
                 (subject_of sub handler)
                 (String.concat " or "
                    (List.map
                       (fun c -> Printf.sprintf "%S" c.cname)
                       guardians))))
        slots_read)
    reads;
  (* Classes nothing acquires are dead weight (or a missing spec). *)
  List.iter
    (fun c ->
      let used =
        List.exists (fun (_, _, s) -> List.mem c.cname (acquires s)) model.specs
      in
      if not used then
        add "lock-unused-class"
          (Printf.sprintf "lock class %S" c.cname)
          "declared but never acquired by any handler spec")
    model.classes;
  List.sort_uniq compare (List.rev !out)

let rec subseq xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs', y :: ys' -> if x = y then subseq xs' ys' else subseq xs ys'

let check_trace model ~subsystem ~handler trace =
  let subject = Printf.sprintf "runtime %s" (subject_of subsystem handler) in
  let out = ref [] in
  let add check msg = out := { check; subject; msg } :: !out in
  let got =
    List.filter_map (function Acquire c -> Some c | Release _ -> None) trace
  in
  (match
     List.find_opt (fun (_, h, _) -> String.equal h handler) model.specs
   with
  | None ->
    if trace <> [] then
      add "lock-spec-mismatch"
        (Printf.sprintf "acquired [%s] but declares no lock spec"
           (String.concat "; " got))
  | Some (_, _, spec) ->
    let want = acquires spec in
    if not (subseq got want) then
      add "lock-spec-mismatch"
        (Printf.sprintf
           "runtime acquisition order [%s] is not a subsequence of the \
            declared [%s]"
           (String.concat "; " got)
           (String.concat "; " want)));
  let pairs = sim model ~emit:(fun check msg -> add check msg) trace in
  let edges = order_edges model in
  List.iter
    (fun (outer, inner) ->
      if outer <> inner && reachable edges ~src:inner ~dst:outer then
        add "lock-order-cycle"
          (Printf.sprintf
             "runtime nesting %S -> %S inverts the declared order graph"
             outer inner))
    pairs;
  List.sort_uniq compare (List.rev !out)
