type file = {
  path : string;
  mutable offset : int64;
  mutable oflags : int64;
  mutable mapped : bool;
}

type epoll = { mutable watched : int list; mutable last_wait : int }

type aio_ctx_state = {
  mutable inflight : int;
  mutable draining : bool;
  mutable live : bool;
  mutable last_destroy : int;
}

type chrdev = { mutable registered : bool; mutable opens : int; mutable active : bool }

type inode = {
  mutable size : int64;
  mutable nlink : int;
  mutable exists : bool;
  mutable last_stat : int;
  mutable open_fds : int;
  mutable is_dir : bool;
  mutable locked_ex : bool;  (* flock LOCK_EX held *)
}

type fs = {
  inodes : (string, inode) Hashtbl.t;
  aio : (int64, aio_ctx_state) Hashtbl.t;
  mutable next_aio : int64;
  chr : chrdev;
}

type State.fd_kind += File of file
type State.fd_kind += Epoll of epoll
type State.fd_kind += Chrfd of { mutable writes : int }
type State.global += Fs of fs

let o_creat = 0x40L
let o_trunc = 0x200L

let blk = Coverage.region ~name:"vfs" ~size:512

(* One class for the namespace/inode/aio/chr state and open-file
   payloads (i_rwsem writ large); epoll's per-instance state nests
   under its own class like ep->mtx. *)
let vfs_files =
  Lock.register ~rank:30 ~guards:[ "fs"; "fd:file"; "fd:chr" ] "vfs_files"

let ep_mutex = Lock.register ~rank:35 ~guards:[ "fd:epoll" ] "ep_mutex"
let c ctx o = Ctx.cover ctx (blk + o)

(* Effect slots. Fresh-payload allocation (a new File/Epoll/Chrfd
   record the caller has not yet received the fd for) is exempt from
   effect classification — the object is unreachable until the call
   returns, Eraser's initialization-phase rule. Payload accesses after
   publication are the [fd:*] slots. *)
let s_fs = Effect.slot "fs"
let s_fd_file = Effect.slot "fd:file"
let s_fd_chr = Effect.slot "fd:chr"
let s_fd_epoll = Effect.slot "fd:epoll"

let fs_of st =
  State.record_read st s_fs;
  match State.global st "fs" with
  | Some (Fs fs) -> fs
  | Some _ | None -> failwith "vfs: state not initialized"

let init st =
  let fs =
    {
      inodes = Hashtbl.create 16;
      aio = Hashtbl.create 8;
      next_aio = 1L;
      chr = { registered = false; opens = 0; active = false };
    }
  in
  (* Files that exist at boot. *)
  Hashtbl.replace fs.inodes "/etc/passwd"
    { size = 2048L; nlink = 1; exists = true; last_stat = 0; open_fds = 0; is_dir = false; locked_ex = false };
  State.set_global st "fs" (Fs fs)

let inode fs path = Hashtbl.find_opt fs.inodes path

let inode_or_create fs path =
  match inode fs path with
  | Some i when i.exists -> i
  | Some i ->
    i.exists <- true;
    i.size <- 0L;
    i.nlink <- 1;
    i
  | None ->
    let i = { size = 0L; nlink = 1; exists = true; last_stat = 0; open_fds = 0; is_dir = false; locked_ex = false } in
    Hashtbl.replace fs.inodes path i;
    i

let inode_size st path =
  match inode (fs_of st) path with
  | Some i when i.exists -> Some i.size
  | Some _ | None -> None

let lookup_aio st id =
  match Hashtbl.find_opt (fs_of st).aio id with
  | Some a -> a.live
  | None -> false

(* ---- open family ---- *)

let do_open ?(check_mount = false) ctx path flags =
  let fs = fs_of ctx.Ctx.st in
  c ctx 0;
  if String.length path = 0 then begin
    c ctx 1;
    Ctx.err Errno.EFAULT
  end
  else begin
    (* Opening through a mount point checks the mount table lock-free
       (legitimize_mnt's refcount fast path): during a umount's settle
       window the mount can go away under us (5.4). Only [open] walks
       absolute mount points here — openat is modeled as relative and
       must stay off the mount table (its effect spec declares no
       "mounts" read). *)
    if check_mount && String.length path >= 4 && String.sub path 0 4 = "/mnt"
    then begin
      c ctx 9;
      if Mounts.mount_busy ctx.Ctx.st then begin
        c ctx 18;
        Ctx.bug ctx "legitimize_mnt"
      end
    end;
    let creating = Int64.logand flags o_creat <> 0L in
    match inode fs path with
    | Some i when i.exists ->
      c ctx 2;
      State.record_write ctx.Ctx.st s_fs;
      if Int64.logand flags o_trunc <> 0L then begin
        c ctx 3;
        i.size <- 0L
      end;
      i.open_fds <- i.open_fds + 1;
      let entry =
        State.alloc_fd ctx.Ctx.st (File { path; offset = 0L; oflags = flags; mapped = false })
      in
      c ctx 4;
      Ctx.ok (Int64.of_int entry.fd)
    | Some _ | None ->
      if creating then begin
        c ctx 5;
        State.record_write ctx.Ctx.st s_fs;
        let i = inode_or_create fs path in
        i.open_fds <- i.open_fds + 1;
        let entry =
          State.alloc_fd ctx.Ctx.st
            (File { path; offset = 0L; oflags = flags; mapped = false })
        in
        c ctx 6;
        Ctx.ok (Int64.of_int entry.fd)
      end
      else begin
        c ctx 7;
        Ctx.err Errno.ENOENT
      end
  end

let h_open ctx args =
  do_open ~check_mount:true ctx
    (Arg.as_str (Arg.nth args 0))
    (Arg.as_int (Arg.nth args 1))

let h_openat ctx args =
  c ctx 8;
  (* dirfd is accepted but only AT_FDCWD-style behaviour is modeled. *)
  do_open ctx (Arg.as_str (Arg.nth args 1)) (Arg.as_int (Arg.nth args 2))

let h_close ctx args =
  let fd = Arg.as_fd (Arg.nth args 0) in
  c ctx 10;
  match State.lookup_fd ctx.Ctx.st fd with
  | None ->
    c ctx 11;
    Ctx.err Errno.EBADF
  | Some entry ->
    (* Subsystems may observe the close (release hooks). *)
    ignore (Subsystem.dispatch_file_op ctx "close" entry args);
    (match entry.kind with
    | File f -> (
      c ctx 12;
      let fs = fs_of ctx.Ctx.st in
      match inode fs f.path with
      | Some i ->
        State.record_write ctx.Ctx.st s_fs;
        i.open_fds <- max 0 (i.open_fds - 1);
        (* __fput racing with ep_remove: closing a descriptor still
           watched by an epoll instance right after a wait cycle. The
           scan reads every epoll instance's interest list, so it must
           nest ep_mutex inside vfs_files (rank 30 -> 35) — a first
           draft read them under vfs_files alone, which the read-side
           lock-guard-coverage check flagged ("fd:epoll" is ep_mutex
           territory). *)
        let watched_by_epoll =
          Ctx.with_lock ctx ep_mutex (fun () ->
              State.record_read ctx.Ctx.st s_fd_epoll;
              State.exists_fd ctx.Ctx.st (fun e ->
                  match e.State.kind with
                  | Epoll ep ->
                    List.mem fd ep.watched
                    && State.now ctx.Ctx.st - ep.last_wait <= 3
                    && ep.last_wait > 0
                  | _ -> false))
        in
        if watched_by_epoll then begin
          c ctx 13;
          Ctx.bug ctx "fput_ep_remove"
        end
      | None -> ())
    | Chrfd _ ->
      c ctx 14;
      let fs = fs_of ctx.Ctx.st in
      State.record_write ctx.Ctx.st s_fs;
      fs.chr.opens <- max 0 (fs.chr.opens - 1);
      (* cdev_del: device node unlinked while descriptors remained
         open; the final close underflows the cdev refcount. *)
      if (not fs.chr.registered) && fs.chr.active && fs.chr.opens >= 1 then begin
        c ctx 15;
        Ctx.bug ctx "cdev_del"
      end
    | _ -> c ctx 16);
    ignore (State.close_fd ctx.Ctx.st fd);
    c ctx 17;
    Ctx.ok0

(* ---- generic read/write/lseek through the file_op chain ---- *)

let h_read ctx args =
  let fd = Arg.as_fd (Arg.nth args 0) in
  c ctx 20;
  match State.lookup_fd ctx.Ctx.st fd with
  | None ->
    c ctx 21;
    Ctx.err Errno.EBADF
  | Some entry -> (
    match Subsystem.dispatch_file_op ctx "read" entry args with
    | Some r -> r
    | None ->
      c ctx 22;
      Ctx.err Errno.EINVAL)

let h_write ctx args =
  let fd = Arg.as_fd (Arg.nth args 0) in
  c ctx 25;
  match State.lookup_fd ctx.Ctx.st fd with
  | None ->
    c ctx 26;
    Ctx.err Errno.EBADF
  | Some entry -> (
    match Subsystem.dispatch_file_op ctx "write" entry args with
    | Some r -> r
    | None ->
      c ctx 27;
      Ctx.err Errno.EINVAL)

let file_read ctx (entry : State.fd_entry) args =
  match entry.kind with
  | File f -> (
    let fs = fs_of ctx.Ctx.st in
    let count = Int64.to_int (Arg.as_int (Arg.nth args 2)) in
    c ctx 30;
    match inode fs f.path with
    | None ->
      c ctx 31;
      Ctx.err Errno.EIO
    | Some i ->
      if count < 0 then begin
        c ctx 32;
        Ctx.err Errno.EINVAL
      end
      else if count > 2 * Int64.to_int i.size && count > 4096 then begin
        (* Oversized read into an undersized slab buffer. *)
        c ctx 33;
        Ctx.bug ctx "vfs_read_oob";
        Ctx.ok 0L
      end
      else if Int64.compare f.offset i.size >= 0 then begin
        c ctx 34;
        Ctx.ok 0L (* EOF *)
      end
      else begin
        c ctx 35;
        let avail = Int64.sub i.size f.offset in
        let n = min (Int64.of_int count) avail in
        State.record_write ctx.Ctx.st s_fd_file;
        f.offset <- Int64.add f.offset n;
        if Int64.compare n 1024L > 0 then c ctx 36 else c ctx 37;
        let combo =
          (if f.mapped then 1 else 0)
          lor (if i.nlink > 1 then 2 else 0)
          lor if Int64.compare i.size 4096L > 0 then 4 else 0
        in
        c ctx (200 + combo);
        Ctx.ok n
      end)
  | _ -> Ctx.err Errno.EINVAL

let file_write ctx (entry : State.fd_entry) args =
  match entry.kind with
  | File f -> (
    let fs = fs_of ctx.Ctx.st in
    let buf = Arg.as_buf (Arg.nth args 1) in
    let count = Bytes.length buf in
    c ctx 40;
    match inode fs f.path with
    | None ->
      c ctx 41;
      Ctx.err Errno.EIO
    | Some i ->
      if not i.exists then begin
        c ctx 42;
        Ctx.err Errno.ENOENT
      end
      else begin
        let end_pos = Int64.add f.offset (Int64.of_int count) in
        if Int64.compare end_pos i.size > 0 then begin
          c ctx 43;
          State.record_write ctx.Ctx.st s_fs;
          i.size <- end_pos
        end
        else c ctx 44;
        State.record_write ctx.Ctx.st s_fd_file;
        f.offset <- end_pos;
        if count = 0 then c ctx 45
        else if count > 4096 then c ctx 46
        else c ctx 47;
        Ctx.ok (Int64.of_int count)
      end)
  | _ -> Ctx.err Errno.EINVAL

let h_lseek ctx args =
  let fd = Arg.as_fd (Arg.nth args 0) in
  let offset = Arg.as_int (Arg.nth args 1) in
  let whence = Arg.as_int (Arg.nth args 2) in
  c ctx 50;
  match State.lookup_fd ctx.Ctx.st fd with
  | None ->
    c ctx 51;
    Ctx.err Errno.EBADF
  | Some { kind = File f; _ } ->
    let fs = fs_of ctx.Ctx.st in
    let size = match inode fs f.path with Some i -> i.size | None -> 0L in
    let base =
      match whence with 0L -> 0L | 1L -> f.offset | 2L -> size | _ -> -1L
    in
    if Int64.compare base 0L < 0 then begin
      c ctx 52;
      Ctx.err Errno.EINVAL
    end
    else begin
      let dest = Int64.add base offset in
      if Int64.compare dest 0L < 0 then begin
        c ctx 53;
        Ctx.err Errno.EINVAL
      end
      else begin
        c ctx 54;
        State.record_write ctx.Ctx.st s_fd_file;
        f.offset <- dest;
        if Int64.compare dest size > 0 then c ctx 55;
        Ctx.ok dest
      end
    end
  | Some entry -> (
    match Subsystem.dispatch_file_op ctx "lseek" entry args with
    | Some r -> r
    | None ->
      c ctx 56;
      Ctx.err Errno.EINVAL)

let h_dup ctx args =
  let fd = Arg.as_fd (Arg.nth args 0) in
  c ctx 58;
  match State.dup_fd ctx.Ctx.st fd with
  | None ->
    c ctx 59;
    Ctx.err Errno.EBADF
  | Some fd' ->
    c ctx 60;
    Ctx.ok (Int64.of_int fd')

let h_fsync ctx args =
  let fd = Arg.as_fd (Arg.nth args 0) in
  c ctx 62;
  match State.lookup_fd ctx.Ctx.st fd with
  | None ->
    c ctx 63;
    Ctx.err Errno.EBADF
  | Some _ ->
    c ctx 64;
    Ctx.ok0

let h_ftruncate ctx args =
  let fd = Arg.as_fd (Arg.nth args 0) in
  let len = Arg.as_int (Arg.nth args 1) in
  c ctx 66;
  match State.lookup_fd ctx.Ctx.st fd with
  | None ->
    c ctx 67;
    Ctx.err Errno.EBADF
  | Some entry -> (
    match Subsystem.dispatch_file_op ctx "ftruncate" entry args with
    | Some r -> r
    | None -> (
      match entry.kind with
      | File f -> (
        let fs = fs_of ctx.Ctx.st in
        if Int64.compare len 0L < 0 then begin
          c ctx 68;
          Ctx.err Errno.EINVAL
        end
        else
          match inode fs f.path with
          | None ->
            c ctx 69;
            Ctx.err Errno.EIO
          | Some i ->
            c ctx 70;
            if Int64.compare len i.size < 0 then c ctx 71 else c ctx 72;
            State.record_write ctx.Ctx.st s_fs;
            i.size <- len;
            Ctx.ok0)
      | _ ->
        c ctx 73;
        Ctx.err Errno.EINVAL))

let h_fallocate ctx args =
  let fd = Arg.as_fd (Arg.nth args 0) in
  let mode = Arg.as_int (Arg.nth args 1) in
  let len = Arg.as_int (Arg.nth args 3) in
  c ctx 75;
  match State.lookup_fd ctx.Ctx.st fd with
  | None ->
    c ctx 76;
    Ctx.err Errno.EBADF
  | Some { kind = File f; _ } -> (
    State.record_read ctx.Ctx.st s_fd_file;
    let fs = fs_of ctx.Ctx.st in
    match inode fs f.path with
    | None ->
      c ctx 77;
      Ctx.err Errno.EIO
    | Some i ->
      if Int64.compare len 0L <= 0 then begin
        c ctx 78;
        Ctx.err Errno.EINVAL
      end
      else begin
        c ctx 79;
        (* Punch-hole on a mapped file under memory pressure takes the
           reclaim path with a lock already held (4.19 lockdep splat). *)
        if
          Int64.logand mode 0x3L = 0x3L && f.mapped
          && Int64.compare len 0x100000L >= 0
        then begin
          c ctx 80;
          Ctx.bug ctx "fs_reclaim_acquire"
        end;
        if Int64.logand mode 0x1L <> 0L then c ctx 81
        else begin
          c ctx 82;
          if Int64.compare len i.size > 0 then begin
            State.record_write ctx.Ctx.st s_fs;
            i.size <- len
          end
        end;
        Ctx.ok0
      end)
  | Some _ ->
    c ctx 83;
    Ctx.err Errno.ENODEV

let h_fstat ctx args =
  let fd = Arg.as_fd (Arg.nth args 0) in
  c ctx 85;
  match State.lookup_fd ctx.Ctx.st fd with
  | None ->
    c ctx 86;
    Ctx.err Errno.EBADF
  | Some { kind = File f; _ } -> (
    State.record_read ctx.Ctx.st s_fd_file;
    let fs = fs_of ctx.Ctx.st in
    match inode fs f.path with
    | None ->
      c ctx 87;
      Ctx.err Errno.EIO
    | Some i ->
      c ctx 88;
      State.record_write ctx.Ctx.st s_fs;
      i.last_stat <- State.now ctx.Ctx.st;
      if i.nlink > 1 then c ctx 89;
      Ctx.ok0)
  | Some _ ->
    c ctx 90;
    Ctx.ok0

let h_link ctx args =
  let oldpath = Arg.as_str (Arg.nth args 0) in
  let newpath = Arg.as_str (Arg.nth args 1) in
  let fs = fs_of ctx.Ctx.st in
  c ctx 92;
  match inode fs oldpath with
  | Some i when i.exists ->
    if oldpath = newpath then begin
      c ctx 93;
      Ctx.err Errno.EEXIST
    end
    else begin
      c ctx 94;
      State.record_write ctx.Ctx.st s_fs;
      i.nlink <- i.nlink + 1;
      Ctx.ok0
    end
  | Some _ | None ->
    c ctx 95;
    Ctx.err Errno.ENOENT

let h_unlink ctx args =
  let path = Arg.as_str (Arg.nth args 0) in
  let fs = fs_of ctx.Ctx.st in
  c ctx 97;
  if path = "/dev/c0" then begin
    (* Unlinking the char-device node unregisters the cdev. *)
    c ctx 98;
    if fs.chr.registered then begin
      State.record_write ctx.Ctx.st s_fs;
      fs.chr.registered <- false;
      Ctx.ok0
    end
    else begin
      c ctx 99;
      Ctx.err Errno.ENOENT
    end
  end
  else
    match inode fs path with
    | Some i when i.exists ->
      c ctx 100;
      State.record_write ctx.Ctx.st s_fs;
      i.nlink <- i.nlink - 1;
      (* drop_nlink racing generic_fillattr: a stat within the race
         window on a multi-link inode that still has open descriptors. *)
      if
        i.nlink >= 1 && i.open_fds >= 1
        && State.now ctx.Ctx.st - i.last_stat <= 2
        && i.last_stat > 0
      then begin
        c ctx 101;
        Ctx.bug ctx "drop_nlink"
      end;
      if i.nlink <= 0 then begin
        c ctx 102;
        i.exists <- false
      end;
      Ctx.ok0
    | Some _ | None ->
      c ctx 103;
      Ctx.err Errno.ENOENT

(* ---- character device ---- *)

let h_mknod_chr ctx args =
  let path = Arg.as_str (Arg.nth args 0) in
  let fs = fs_of ctx.Ctx.st in
  c ctx 105;
  if path <> "/dev/c0" then begin
    c ctx 106;
    Ctx.err Errno.EACCES
  end
  else if fs.chr.registered then begin
    c ctx 107;
    Ctx.err Errno.EEXIST
  end
  else begin
    c ctx 108;
    State.record_write ctx.Ctx.st s_fs;
    fs.chr.registered <- true;
    fs.chr.opens <- 0;
    fs.chr.active <- false;
    Ctx.ok0
  end

let h_open_chr ctx args =
  let path = Arg.as_str (Arg.nth args 0) in
  let fs = fs_of ctx.Ctx.st in
  c ctx 110;
  if path <> "/dev/c0" || not fs.chr.registered then begin
    c ctx 111;
    Ctx.err Errno.ENOENT
  end
  else begin
    c ctx 112;
    State.record_write ctx.Ctx.st s_fs;
    fs.chr.opens <- fs.chr.opens + 1;
    if fs.chr.opens > 1 then c ctx 113;
    let entry = State.alloc_fd ctx.Ctx.st (Chrfd { writes = 0 }) in
    Ctx.ok (Int64.of_int entry.fd)
  end

let chr_write ctx (entry : State.fd_entry) args =
  match entry.kind with
  | Chrfd cw ->
    let fs = fs_of ctx.Ctx.st in
    let buf = Arg.as_buf (Arg.nth args 1) in
    c ctx 115;
    State.record_write ctx.Ctx.st s_fd_chr;
    cw.writes <- cw.writes + 1;
    State.record_write ctx.Ctx.st s_fs;
    fs.chr.active <- true;
    if Bytes.length buf > 256 then c ctx 116 else c ctx 117;
    Ctx.ok (Int64.of_int (Bytes.length buf))
  | _ -> Ctx.err Errno.EINVAL

(* ---- mmap / munmap ---- *)

let h_mmap ctx args =
  let len = Arg.as_int (Arg.nth args 1) in
  let prot = Arg.as_int (Arg.nth args 2) in
  let fd = Arg.as_fd (Arg.nth args 4) in
  c ctx 120;
  if Int64.compare len 0L <= 0 then begin
    c ctx 121;
    Ctx.err Errno.EINVAL
  end
  else
    match State.lookup_fd ctx.Ctx.st fd with
    | None ->
      (* Anonymous-style mapping with a bad fd still fails. *)
      c ctx 122;
      Ctx.err Errno.EBADF
    | Some entry -> (
      match Subsystem.dispatch_file_op ctx "mmap" entry args with
      | Some r -> r
      | None -> (
        match entry.kind with
        | File f ->
          c ctx 123;
          State.record_write ctx.Ctx.st s_fd_file;
          f.mapped <- true;
          if Int64.logand prot 0x2L <> 0L then c ctx 124;
          Ctx.ok 0x7f0000000000L
        | Chrfd cw ->
          c ctx 125;
          State.record_read ctx.Ctx.st s_fd_chr;
          (* Mapping an active character device executable takes the
             ioremap path; 5.11 hits a BUG_ON in ioremap_page_range. *)
          if Int64.logand prot 0x4L <> 0L && cw.writes >= 1 then begin
            c ctx 126;
            Ctx.bug ctx "ioremap_page_range"
          end;
          Ctx.ok 0x7f0000400000L
        | _ ->
          c ctx 127;
          Ctx.err Errno.ENODEV))

let h_munmap ctx _args =
  c ctx 129;
  Ctx.ok0

(* ---- epoll ---- *)

let h_epoll_create ctx args =
  let size = Arg.as_int (Arg.nth args 0) in
  c ctx 131;
  if Int64.compare size 0L < 0 then begin
    c ctx 132;
    Ctx.err Errno.EINVAL
  end
  else begin
    c ctx 133;
    let entry = State.alloc_fd ctx.Ctx.st (Epoll { watched = []; last_wait = 0 }) in
    Ctx.ok (Int64.of_int entry.fd)
  end

let with_epoll ctx args k =
  let epfd = Arg.as_fd (Arg.nth args 0) in
  match State.lookup_fd ctx.Ctx.st epfd with
  | Some { kind = Epoll ep; _ } ->
    State.record_read ctx.Ctx.st s_fd_epoll;
    k ep
  | Some _ ->
    c ctx 135;
    Ctx.err Errno.EINVAL
  | None ->
    c ctx 136;
    Ctx.err Errno.EBADF

let h_epoll_ctl_add ctx args =
  c ctx 138;
  with_epoll ctx args (fun ep ->
      let fd = Arg.as_fd (Arg.nth args 2) in
      match State.lookup_fd ctx.Ctx.st fd with
      | None ->
        c ctx 139;
        Ctx.err Errno.EBADF
      | Some _ ->
        if List.mem fd ep.watched then begin
          c ctx 140;
          Ctx.err Errno.EEXIST
        end
        else begin
          c ctx 141;
          State.record_write ctx.Ctx.st s_fd_epoll;
          ep.watched <- fd :: ep.watched;
          Ctx.ok0
        end)

let h_epoll_ctl_del ctx args =
  c ctx 143;
  with_epoll ctx args (fun ep ->
      let fd = Arg.as_fd (Arg.nth args 2) in
      if List.mem fd ep.watched then begin
        c ctx 144;
        State.record_write ctx.Ctx.st s_fd_epoll;
        ep.watched <- List.filter (fun x -> x <> fd) ep.watched;
        Ctx.ok0
      end
      else begin
        c ctx 145;
        Ctx.err Errno.ENOENT
      end)

let h_epoll_wait ctx args =
  c ctx 147;
  with_epoll ctx args (fun ep ->
      State.record_write ctx.Ctx.st s_fd_epoll;
      ep.last_wait <- State.now ctx.Ctx.st;
      if ep.watched = [] then begin
        c ctx 148;
        Ctx.ok 0L
      end
      else begin
        c ctx 149;
        c ctx (220 + min 7 (List.length ep.watched));
        Ctx.ok (Int64.of_int (List.length ep.watched))
      end)

(* ---- AIO ---- *)

let h_io_setup ctx args =
  let nr = Arg.as_int (Arg.nth args 0) in
  let fs = fs_of ctx.Ctx.st in
  c ctx 151;
  if Int64.compare nr 0L <= 0 then begin
    c ctx 152;
    Ctx.err Errno.EINVAL
  end
  else begin
    c ctx 153;
    State.record_write ctx.Ctx.st s_fs;
    let id = fs.next_aio in
    fs.next_aio <- Int64.add fs.next_aio 1L;
    Hashtbl.replace fs.aio id
      { inflight = 0; draining = false; live = true; last_destroy = 0 };
    Ctx.ok id
  end

let h_io_submit ctx args =
  let id = Arg.as_int (Arg.nth args 0) in
  let nr = Arg.as_int (Arg.nth args 1) in
  let fs = fs_of ctx.Ctx.st in
  c ctx 155;
  match Hashtbl.find_opt fs.aio id with
  | None ->
    c ctx 156;
    Ctx.err Errno.EINVAL
  | Some a ->
    if a.draining then begin
      (* Submitting into a context mid-teardown self-deadlocks on the
         ctx lock (io_submit_one, 5.0). *)
      c ctx 157;
      Ctx.bug ctx "io_submit_one";
      Ctx.err Errno.EINVAL
    end
    else if not a.live then begin
      c ctx 158;
      Ctx.err Errno.EINVAL
    end
    else begin
      c ctx 159;
      State.record_write ctx.Ctx.st s_fs;
      let n = max 0 (min 64 (Int64.to_int nr)) in
      a.inflight <- a.inflight + n;
      if n = 0 then c ctx 160 else if n > 4 then c ctx 161 else c ctx 162;
      c ctx (230 + min 7 (a.inflight / 4));
      Ctx.ok (Int64.of_int n)
    end

let h_io_destroy ctx args =
  let id = Arg.as_int (Arg.nth args 0) in
  let fs = fs_of ctx.Ctx.st in
  c ctx 164;
  match Hashtbl.find_opt fs.aio id with
  | None ->
    c ctx 165;
    Ctx.err Errno.EINVAL
  | Some a ->
    if a.draining && State.now ctx.Ctx.st - a.last_destroy <= 2 then begin
      (* Double destroy while requests are still in flight: percpu ref
         teardown waits on itself (free_ioctx_users, 5.0). *)
      c ctx 166;
      if a.inflight > 0 then Ctx.bug ctx "free_ioctx_users";
      Ctx.err Errno.EINVAL
    end
    else if not a.live then begin
      c ctx 167;
      Ctx.err Errno.EINVAL
    end
    else begin
      c ctx 168;
      State.record_write ctx.Ctx.st s_fs;
      if a.inflight > 0 then begin
        c ctx 169;
        a.draining <- true;
        a.last_destroy <- State.now ctx.Ctx.st
      end
      else begin
        c ctx 170;
        a.live <- false
      end;
      Ctx.ok0
    end

(* ---- positional IO, directories, rename, locks, fcntl ---- *)

let with_file ctx args k =
  match State.lookup_fd ctx.Ctx.st (Arg.as_fd (Arg.nth args 0)) with
  | Some { kind = File f; _ } ->
    State.record_read ctx.Ctx.st s_fd_file;
    k f
  | Some _ ->
    c ctx 240;
    Ctx.err Errno.EINVAL
  | None ->
    c ctx 241;
    Ctx.err Errno.EBADF

(* pread/pwrite address the inode at an explicit offset without moving
   the descriptor's position. *)
let h_pread ctx args =
  c ctx 243;
  with_file ctx args (fun f ->
      let fs = fs_of ctx.Ctx.st in
      let count = Arg.as_int (Arg.nth args 2) in
      let offset = Arg.as_int (Arg.nth args 3) in
      match inode fs f.path with
      | None ->
        c ctx 244;
        Ctx.err Errno.EIO
      | Some i ->
        if Int64.compare offset 0L < 0 then begin
          c ctx 245;
          Ctx.err Errno.EINVAL
        end
        else if Int64.compare offset i.size >= 0 then begin
          c ctx 246;
          Ctx.ok 0L
        end
        else begin
          c ctx 247;
          Ctx.ok (min count (Int64.sub i.size offset))
        end)

let h_pwrite ctx args =
  c ctx 249;
  with_file ctx args (fun f ->
      let fs = fs_of ctx.Ctx.st in
      let n = Int64.of_int (Bytes.length (Arg.as_buf (Arg.nth args 1))) in
      let offset = Arg.as_int (Arg.nth args 3) in
      match inode fs f.path with
      | None ->
        c ctx 250;
        Ctx.err Errno.EIO
      | Some i ->
        if Int64.compare offset 0L < 0 then begin
          c ctx 251;
          Ctx.err Errno.EINVAL
        end
        else begin
          c ctx 252;
          let end_pos = Int64.add offset n in
          if Int64.compare end_pos i.size > 0 then begin
            c ctx 253;
            State.record_write ctx.Ctx.st s_fs;
            i.size <- end_pos
          end;
          Ctx.ok n
        end)

let h_mkdir ctx args =
  let path = Arg.as_str (Arg.nth args 0) in
  let fs = fs_of ctx.Ctx.st in
  c ctx 255;
  match inode fs path with
  | Some i when i.exists ->
    c ctx 256;
    Ctx.err Errno.EEXIST
  | Some _ | None ->
    c ctx 257;
    State.record_write ctx.Ctx.st s_fs;
    let i = inode_or_create fs path in
    i.is_dir <- true;
    i.nlink <- 2;
    Ctx.ok0

let h_rmdir ctx args =
  let path = Arg.as_str (Arg.nth args 0) in
  let fs = fs_of ctx.Ctx.st in
  c ctx 259;
  match inode fs path with
  | Some i when i.exists && i.is_dir ->
    if i.open_fds > 0 then begin
      c ctx 260;
      Ctx.err Errno.EBUSY
    end
    else begin
      c ctx 261;
      State.record_write ctx.Ctx.st s_fs;
      i.exists <- false;
      Ctx.ok0
    end
  | Some i when i.exists ->
    c ctx 262;
    Ctx.err Errno.ENOTTY (* ENOTDIR is not modeled; closest errno *)
  | Some _ | None ->
    c ctx 263;
    Ctx.err Errno.ENOENT

let h_rename ctx args =
  let oldpath = Arg.as_str (Arg.nth args 0) in
  let newpath = Arg.as_str (Arg.nth args 1) in
  let fs = fs_of ctx.Ctx.st in
  c ctx 265;
  if oldpath = newpath then begin
    c ctx 266;
    Ctx.ok0
  end
  else
    match inode fs oldpath with
    | Some i when i.exists ->
      c ctx 267;
      State.record_write ctx.Ctx.st s_fs;
      (* The destination inode, if any, is replaced. *)
      (match inode fs newpath with
      | Some d when d.exists ->
        c ctx 268;
        d.exists <- false
      | Some _ | None -> ());
      Hashtbl.remove fs.inodes oldpath;
      Hashtbl.replace fs.inodes newpath i;
      Ctx.ok0
    | Some _ | None ->
      c ctx 269;
      Ctx.err Errno.ENOENT

let h_flock ctx args =
  c ctx 271;
  with_file ctx args (fun f ->
      let fs = fs_of ctx.Ctx.st in
      let op = Arg.as_int (Arg.nth args 1) in
      match inode fs f.path with
      | None ->
        c ctx 272;
        Ctx.err Errno.EIO
      | Some i -> (
        match op with
        | 2L (* LOCK_EX *) ->
          if i.locked_ex then begin
            c ctx 273;
            Ctx.err Errno.EAGAIN
          end
          else begin
            c ctx 274;
            State.record_write ctx.Ctx.st s_fs;
            i.locked_ex <- true;
            Ctx.ok0
          end
        | 8L (* LOCK_UN *) ->
          c ctx 275;
          State.record_write ctx.Ctx.st s_fs;
          i.locked_ex <- false;
          Ctx.ok0
        | 1L (* LOCK_SH *) ->
          if i.locked_ex then begin
            c ctx 276;
            Ctx.err Errno.EAGAIN
          end
          else begin
            c ctx 277;
            Ctx.ok0
          end
        | _ ->
          c ctx 278;
          Ctx.err Errno.EINVAL))

let h_fcntl_getfl ctx args =
  c ctx 280;
  with_file ctx args (fun f ->
      c ctx 281;
      Ctx.ok f.oflags)

let h_fcntl_setfl ctx args =
  c ctx 283;
  with_file ctx args (fun f ->
      let flags = Arg.as_int (Arg.nth args 2) in
      c ctx 284;
      State.record_write ctx.Ctx.st s_fd_file;
      (* Only the status flags may change; access mode bits are fixed. *)
      f.oflags <- Int64.logor (Int64.logand f.oflags 0x3L)
          (Int64.logand flags (Int64.lognot 0x3L));
      Ctx.ok0)

let descriptions =
  {|
# Core VFS: regular files, epoll, AIO, character devices.
resource fd[int32]: -1
resource fd_epoll[fd]
resource fd_chr[fd]
resource aio_ctx[int64]: 0
flags open_flags = 0x0 0x1 0x2 0x40 0x80 0x200 0x400 0x800 0x1000
flags seek_whence = 0 1 2
flags fallocate_mode = 0x0 0x1 0x2 0x3 0x8 0x10 0x20
flags mknod_mode = 0x2000 0x6000 0x1000
flags mmap_prot = 0x0 0x1 0x2 0x3 0x4 0x7
flags mmap_flags = 0x1 0x2 0x10 0x20
flags epoll_events = 0x1 0x2 0x4 0x8 0x10
struct epoll_event { events flags[epoll_events], data int64 }
struct stat_buf { size int64, nlink int32, mode int32 }
struct iocb { op int32[0:8], fd fd, buf buffer[in], nbytes int64 }
open(file filename["/tmp/f0", "/tmp/f1", "/etc/passwd", "/tmp/data", "/mnt/ext4"], flags flags[open_flags], mode const[0x1ff]) fd
openat(dirfd fd, file filename["/tmp/f0", "/tmp/f1"], flags flags[open_flags]) fd
close(fd fd)
read(fd fd, buf buffer[out], count len[buf])
write(fd fd, buf buffer[in], count len[buf])
lseek(fd fd, offset intptr, whence flags[seek_whence])
dup(oldfd fd) fd
fsync(fd fd)
ftruncate(fd fd, length intptr)
fallocate(fd fd, mode flags[fallocate_mode], offset intptr, length intptr)
fstat(fd fd, statbuf ptr[out, stat_buf])
link(oldpath filename["/tmp/f0", "/tmp/f1", "/tmp/data"], newpath filename["/tmp/l0", "/tmp/l1"])
unlink(file filename["/tmp/f0", "/tmp/f1", "/tmp/data", "/dev/c0"])
mknod$chr(file filename["/dev/c0"], mode flags[mknod_mode], dev intptr)
open$chr(file filename["/dev/c0"], flags flags[open_flags]) fd_chr
mmap(addr vma, length intptr, prot flags[mmap_prot], flags flags[mmap_flags], fd fd, offset intptr)
munmap(addr vma, length intptr)
epoll_create(size intptr) fd_epoll
epoll_ctl$EPOLL_CTL_ADD(epfd fd_epoll, op const[1], fd fd, event ptr[in, epoll_event])
epoll_ctl$EPOLL_CTL_DEL(epfd fd_epoll, op const[2], fd fd, event ptr[in, epoll_event])
epoll_wait(epfd fd_epoll, events ptr[out, epoll_event], maxevents intptr, timeout intptr)
pread(fd fd, buf buffer[out], count len[buf], offset intptr)
pwrite(fd fd, buf buffer[in], count len[buf], offset intptr)
mkdir(path filename["/tmp/d0", "/tmp/d1"], mode const[0x1ff])
rmdir(path filename["/tmp/d0", "/tmp/d1"])
rename(oldpath filename["/tmp/f0", "/tmp/f1", "/tmp/data"], newpath filename["/tmp/f1", "/tmp/data", "/tmp/r0"])
flock(fd fd, operation int32[0:8])
fcntl$GETFL(fd fd, cmd const[3])
fcntl$SETFL(fd fd, cmd const[4], fdflags flags[open_flags])
io_setup(nr_events intptr) aio_ctx
io_submit(ctx aio_ctx, nr intptr, iocbs ptr[in, array[iocb, 1:4]])
io_destroy(ctx aio_ctx)
|}

let copy_kind : State.fd_kind -> State.fd_kind option = function
  | File f -> Some (File { f with offset = f.offset })
  | Epoll e -> Some (Epoll { e with last_wait = e.last_wait })
  | Chrfd c -> Some (Chrfd { writes = c.writes })
  | _ -> None

let copy_global : State.global -> State.global option = function
  | Fs fs ->
    Some
      (Fs
         {
           inodes =
             State.copy_tbl (fun (i : inode) -> { i with size = i.size }) fs.inodes;
           aio =
             State.copy_tbl
               (fun (a : aio_ctx_state) -> { a with inflight = a.inflight })
               fs.aio;
           next_aio = fs.next_aio;
           chr = { fs.chr with opens = fs.chr.opens };
         })
  | _ -> None

let sub =
  let l = Subsystem.locked [ vfs_files ] in
  let ep = Subsystem.locked [ ep_mutex ] in
  let w touches = Lock.scoped [ "vfs_files" ] ~touches in
  let ep_spec = Lock.scoped [ "ep_mutex" ] ~touches:[ "fd:epoll" ] in
  Subsystem.make ~name:"vfs" ~descriptions ~init ~copy_kind ~copy_global
    ~handlers:
      [
        ("open", l h_open);
        ("openat", l h_openat);
        ("close", l h_close);
        ("read", l h_read);
        ("write", l h_write);
        ("lseek", l h_lseek);
        ("dup", h_dup);
        ("fsync", l h_fsync);
        ("ftruncate", l h_ftruncate);
        ("fallocate", l h_fallocate);
        ("fstat", l h_fstat);
        ("link", l h_link);
        ("unlink", l h_unlink);
        ("mknod$chr", l h_mknod_chr);
        ("open$chr", l h_open_chr);
        ("mmap", l h_mmap);
        ("munmap", h_munmap);
        ("epoll_create", h_epoll_create);
        ("epoll_ctl$EPOLL_CTL_ADD", ep h_epoll_ctl_add);
        ("epoll_ctl$EPOLL_CTL_DEL", ep h_epoll_ctl_del);
        ("epoll_wait", ep h_epoll_wait);
        ("pread", l h_pread);
        ("pwrite", l h_pwrite);
        ("mkdir", l h_mkdir);
        ("rmdir", l h_rmdir);
        ("rename", l h_rename);
        ("flock", l h_flock);
        ("fcntl$GETFL", l h_fcntl_getfl);
        ("fcntl$SETFL", l h_fcntl_setfl);
        ("io_setup", l h_io_setup);
        ("io_submit", l h_io_submit);
        ("io_destroy", l h_io_destroy);
      ]
    ~locks:
      [
        (* open/openat/close allocate or retire fd payloads, but a
           fresh payload is unreachable until the call returns, so
           those allocations are not shared accesses and the lock
           specs only claim the shared slots ("fs"). *)
        ("open", w [ "fs" ]);
        ("openat", w [ "fs" ]);
        ("close", Lock.scoped [ "vfs_files"; "ep_mutex" ] ~touches:[ "fs" ]);
        ("read", w [ "fd:file" ]);
        ("write", w [ "fs"; "fd:file"; "fd:chr" ]);
        ("lseek", w [ "fd:file" ]);
        ("fsync", w []);
        ("ftruncate", w [ "fs" ]);
        ("fallocate", w [ "fs" ]);
        ("fstat", w [ "fs" ]);
        ("link", w [ "fs" ]);
        ("unlink", w [ "fs" ]);
        ("mknod$chr", w [ "fs" ]);
        ("open$chr", w [ "fs" ]);
        ("mmap", w [ "fd:file" ]);
        ("epoll_ctl$EPOLL_CTL_ADD", ep_spec);
        ("epoll_ctl$EPOLL_CTL_DEL", ep_spec);
        ("epoll_wait", ep_spec);
        ("pread", w []);
        ("pwrite", w [ "fs" ]);
        ("mkdir", w [ "fs" ]);
        ("rmdir", w [ "fs" ]);
        ("rename", w [ "fs" ]);
        ("flock", w [ "fs" ]);
        ("fcntl$GETFL", w []);
        ("fcntl$SETFL", w [ "fd:file" ]);
        ("io_setup", w [ "fs" ]);
        ("io_submit", w [ "fs" ]);
        ("io_destroy", w [ "fs" ]);
      ]
    ~file_ops:
      [
        {
          Subsystem.op_name = "read";
          applies = (function File _ -> true | _ -> false);
          run = file_read;
        };
        {
          Subsystem.op_name = "write";
          applies = (function File _ -> true | _ -> false);
          run = file_write;
        };
        {
          Subsystem.op_name = "write";
          applies = (function Chrfd _ -> true | _ -> false);
          run = chr_write;
        };
      ]
    ~effects:
      (* Generic fd handlers (read/write/mmap/close) dispatch to other
         subsystems' file ops, so their fd-payload effects are declared
         with the "fd:*" wildcard rather than one slot per fd kind.
         dup/fsync/munmap/epoll_create touch no shared slot and carry
         no spec. *)
      [
        ("open", Effect.spec ~reads:[ "mounts" ] ~writes:[ "fs" ] ());
        ("openat", Effect.spec ~writes:[ "fs" ] ());
        ("close", Effect.spec ~reads:[ "fd:epoll" ] ~writes:[ "fs"; "fd:*" ] ());
        ("read", Effect.spec ~reads:[ "fs" ] ~writes:[ "fd:*" ] ());
        ("write", Effect.spec ~writes:[ "fs"; "fd:*" ] ());
        ("lseek", Effect.spec ~reads:[ "fs" ] ~writes:[ "fd:*" ] ());
        ("ftruncate", Effect.spec ~writes:[ "fs"; "fd:*" ] ());
        ("fallocate", Effect.spec ~reads:[ "fd:file" ] ~writes:[ "fs" ] ());
        ("fstat", Effect.spec ~reads:[ "fd:file" ] ~writes:[ "fs" ] ());
        ("link", Effect.spec ~writes:[ "fs" ] ());
        ("unlink", Effect.spec ~writes:[ "fs" ] ());
        ("mknod$chr", Effect.spec ~writes:[ "fs" ] ());
        ("open$chr", Effect.spec ~writes:[ "fs" ] ());
        ("mmap", Effect.spec ~reads:[ "fd:chr" ] ~writes:[ "fd:*" ] ());
        ("epoll_ctl$EPOLL_CTL_ADD", Effect.spec ~writes:[ "fd:epoll" ] ());
        ("epoll_ctl$EPOLL_CTL_DEL", Effect.spec ~writes:[ "fd:epoll" ] ());
        ("epoll_wait", Effect.spec ~writes:[ "fd:epoll" ] ());
        ("pread", Effect.spec ~reads:[ "fs"; "fd:file" ] ());
        ("pwrite", Effect.spec ~reads:[ "fd:file" ] ~writes:[ "fs" ] ());
        ("mkdir", Effect.spec ~writes:[ "fs" ] ());
        ("rmdir", Effect.spec ~writes:[ "fs" ] ());
        ("rename", Effect.spec ~writes:[ "fs" ] ());
        ("flock", Effect.spec ~reads:[ "fd:file" ] ~writes:[ "fs" ] ());
        ("fcntl$GETFL", Effect.spec ~reads:[ "fd:file" ] ());
        ("fcntl$SETFL", Effect.spec ~writes:[ "fd:file" ] ());
        ("io_setup", Effect.spec ~writes:[ "fs" ] ());
        ("io_submit", Effect.spec ~writes:[ "fs" ] ());
        ("io_destroy", Effect.spec ~writes:[ "fs" ] ());
      ]
    ()
