type memfd = {
  mname : string;
  mutable msize : int64;
  mutable seals : int64;
}

type State.fd_kind += Memfd of memfd

let blk = Coverage.region ~name:"memfd" ~size:128

(* shmem_inode_info lock: seals and size of one memfd. *)
let memfd_seals = Lock.register ~rank:70 ~guards:[ "fd:memfd" ] "memfd_seals"
let c ctx o = Ctx.cover ctx (blk + o)

(* Effect slot for the per-memfd payload; memfd_create's allocation is
   exempt (fresh payload). *)
let s_fd_memfd = Effect.slot "fd:memfd"

let seal_seal = 0x1L
let seal_shrink = 0x2L
let seal_grow = 0x4L
let seal_write = 0x8L
let mfd_allow_sealing = 0x2L

let h_memfd_create ctx args =
  let name = Arg.as_str (Arg.field (Arg.nth args 0) 0) in
  let name = if name = "" then Arg.as_str (Arg.nth args 0) else name in
  let flags = Arg.as_int (Arg.nth args 1) in
  c ctx 0;
  if String.length name > 249 then begin
    (* Name-length check bypass: hits a WARN_ON in the allocation. *)
    c ctx 1;
    Ctx.bug ctx "memfd_create_warn";
    Ctx.err Errno.EINVAL
  end
  else if Int64.logand flags (Int64.lognot 0x7L) <> 0L then begin
    c ctx 2;
    Ctx.err Errno.EINVAL
  end
  else begin
    c ctx 3;
    let seals =
      if Int64.logand flags mfd_allow_sealing <> 0L then begin
        c ctx 4;
        0L
      end
      else begin
        c ctx 5;
        seal_seal
      end
    in
    let entry =
      State.alloc_fd ctx.Ctx.st (Memfd { mname = name; msize = 0L; seals })
    in
    Ctx.ok (Int64.of_int entry.fd)
  end

let with_memfd ctx args k =
  let fd = Arg.as_fd (Arg.nth args 0) in
  match State.lookup_fd ctx.Ctx.st fd with
  | Some { kind = Memfd m; _ } ->
    State.record_read ctx.Ctx.st s_fd_memfd;
    k m
  | Some _ ->
    c ctx 7;
    Ctx.err Errno.EINVAL
  | None ->
    c ctx 8;
    Ctx.err Errno.EBADF

let h_add_seals ctx args =
  c ctx 10;
  with_memfd ctx args (fun m ->
      let seals = Arg.as_int (Arg.nth args 2) in
      if Int64.logand m.seals seal_seal <> 0L then begin
        c ctx 11;
        Ctx.err Errno.EPERM
      end
      else begin
        c ctx 12;
        State.record_write ctx.Ctx.st s_fd_memfd;
        m.seals <- Int64.logor m.seals seals;
        if Int64.logand seals seal_write <> 0L then c ctx 13;
        if Int64.logand seals seal_grow <> 0L then c ctx 14;
        Ctx.ok0
      end)

let h_get_seals ctx args =
  c ctx 16;
  with_memfd ctx args (fun m ->
      c ctx 17;
      Ctx.ok m.seals)

let memfd_write ctx (entry : State.fd_entry) args =
  match entry.kind with
  | Memfd m ->
    let buf = Arg.as_buf (Arg.nth args 1) in
    let count = Int64.of_int (Bytes.length buf) in
    c ctx 20;
    State.record_read ctx.Ctx.st s_fd_memfd;
    if Int64.logand m.seals seal_write <> 0L then begin
      c ctx 21;
      Ctx.err Errno.EPERM
    end
    else begin
      let grow = Int64.compare count m.msize > 0 in
      if grow && Int64.logand m.seals seal_grow <> 0L then begin
        c ctx 22;
        Ctx.err Errno.EPERM
      end
      else begin
        c ctx 23;
        if grow then begin
          c ctx 24;
          State.record_write ctx.Ctx.st s_fd_memfd;
          m.msize <- count
        end;
        let seal_bits = Int64.to_int (Int64.logand m.seals 0xfL) in
        c ctx (64 + seal_bits);
        let size_class =
          if Int64.compare count 0L = 0 then 0
          else if Int64.compare count 4096L <= 0 then 1
          else if Int64.compare count 65536L <= 0 then 2
          else 3
        in
        c ctx (96 + (seal_bits * 2) + (size_class / 2));
        Ctx.ok count
      end
    end
  | _ -> Ctx.err Errno.EINVAL

let memfd_read ctx (entry : State.fd_entry) args =
  match entry.kind with
  | Memfd m ->
    let count = Arg.as_int (Arg.nth args 2) in
    c ctx 26;
    State.record_read ctx.Ctx.st s_fd_memfd;
    let n = min count m.msize in
    if Int64.compare n 0L <= 0 then begin
      c ctx 27;
      Ctx.ok 0L
    end
    else begin
      c ctx 28;
      Ctx.ok n
    end
  | _ -> Ctx.err Errno.EINVAL

let memfd_ftruncate ctx (entry : State.fd_entry) args =
  match entry.kind with
  | Memfd m ->
    let len = Arg.as_int (Arg.nth args 1) in
    c ctx 30;
    State.record_read ctx.Ctx.st s_fd_memfd;
    if Int64.compare len 0L < 0 then begin
      c ctx 31;
      Ctx.err Errno.EINVAL
    end
    else if
      Int64.compare len m.msize < 0 && Int64.logand m.seals seal_shrink <> 0L
    then begin
      c ctx 32;
      Ctx.err Errno.EPERM
    end
    else if
      Int64.compare len m.msize > 0 && Int64.logand m.seals seal_grow <> 0L
    then begin
      c ctx 33;
      Ctx.err Errno.EPERM
    end
    else begin
      c ctx 34;
      State.record_write ctx.Ctx.st s_fd_memfd;
      m.msize <- len;
      Ctx.ok0
    end
  | _ -> Ctx.err Errno.EINVAL

(* The Figure 2 path: mapping a sealed memfd takes a dedicated
   read-only-mapping branch that is unreachable without a prior
   fcntl$ADD_SEALS — the relation HEALER's dynamic learning finds. *)
let memfd_mmap ctx (entry : State.fd_entry) args =
  match entry.kind with
  | Memfd m ->
    let prot = Arg.as_int (Arg.nth args 2) in
    c ctx 36;
    State.record_read ctx.Ctx.st s_fd_memfd;
    if Int64.logand m.seals seal_write <> 0L then
      if Int64.logand prot 0x2L <> 0L then begin
        c ctx 37;
        Ctx.err Errno.EPERM
      end
      else begin
        c ctx 38;
        Ctx.covern ctx blk [ 39; 40 ];
        Ctx.ok 0x7f0000800000L
      end
    else if Int64.compare m.msize 0L > 0 then begin
      c ctx 41;
      c ctx (80 + Int64.to_int (Int64.logand m.seals 0xfL));
      Ctx.ok 0x7f0000900000L
    end
    else begin
      c ctx 42;
      Ctx.err Errno.ENOMEM (* cannot map an empty object *)
    end
  | _ -> Ctx.err Errno.EINVAL

let descriptions =
  {|
# memfd and sealing.
resource fd_memfd[fd]
flags memfd_flags = 0x0 0x1 0x2 0x3
flags seal_flags = 0x1 0x2 0x4 0x8 0xc 0xe
memfd_create(name ptr[in, string["memfd", "healer-memfd"]], flags flags[memfd_flags]) fd_memfd
fcntl$ADD_SEALS(fd fd_memfd, cmd const[0x409], seals flags[seal_flags])
fcntl$GET_SEALS(fd fd_memfd, cmd const[0x40a])
|}

let copy_kind : State.fd_kind -> State.fd_kind option = function
  | Memfd m -> Some (Memfd { m with msize = m.msize })
  | _ -> None

let sub =
  Subsystem.make ~name:"memfd" ~descriptions ~copy_kind
    ~handlers:
      [
        ("memfd_create", h_memfd_create);
        ("fcntl$ADD_SEALS", Subsystem.locked [ memfd_seals ] h_add_seals);
        ("fcntl$GET_SEALS", Subsystem.locked [ memfd_seals ] h_get_seals);
      ]
    ~locks:
      [
        ("fcntl$ADD_SEALS", Lock.scoped [ "memfd_seals" ] ~touches:[ "fd:memfd" ]);
        ("fcntl$GET_SEALS", Lock.scoped [ "memfd_seals" ]);
      ]
    ~effects:
      [
        ("fcntl$ADD_SEALS", Effect.spec ~writes:[ "fd:memfd" ] ());
        ("fcntl$GET_SEALS", Effect.spec ~reads:[ "fd:memfd" ] ());
      ]
    ~file_ops:
      [
        {
          Subsystem.op_name = "write";
          applies = (function Memfd _ -> true | _ -> false);
          run = memfd_write;
        };
        {
          Subsystem.op_name = "read";
          applies = (function Memfd _ -> true | _ -> false);
          run = memfd_read;
        };
        {
          Subsystem.op_name = "ftruncate";
          applies = (function Memfd _ -> true | _ -> false);
          run = memfd_ftruncate;
        };
        {
          Subsystem.op_name = "mmap";
          applies = (function Memfd _ -> true | _ -> false);
          run = memfd_mmap;
        };
      ]
    ()
