(** Core VFS subsystem: regular files, epoll, AIO contexts and
    character devices, plus the generic file-operation entry points
    ([read]/[write]/[mmap]/...) that dispatch to whichever subsystem
    owns the descriptor.

    Injected bugs (see {!Bug.catalog}): [vfs_read_oob],
    [fput_ep_remove], [cdev_del], [drop_nlink], [io_submit_one],
    [free_ioctx_users], [fs_reclaim_acquire], [ioremap_page_range],
    [do_umount_null] lives in {!Mounts}. *)

type file = {
  path : string;
  mutable offset : int64;
  mutable oflags : int64;
  mutable mapped : bool;
}

type State.fd_kind += File of file

val sub : Subsystem.t

val vfs_files : Lock.cls
(** The files_struct/inode lock class (guards ["fs"], ["fd:file"],
    ["fd:chr"]). Exposed so subsystems reading the inode table from
    outside — inotify's watch registration — can hold it and declare
    the guarded read. *)

val inode_size : State.t -> string -> int64 option
(** Size of the inode at [path], if it exists. Exposed for tests. *)

val lookup_aio : State.t -> int64 -> bool
(** Does the AIO context id exist (live)? Exposed for tests. *)
