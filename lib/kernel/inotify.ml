type watch = {
  wd : int64;
  wpath : string;
  mutable snap_size : int64;
  mutable snap_exists : bool;
}

type inotify = { mutable watches : watch list; mutable next_wd : int64 }

type State.fd_kind += Inotify of inotify

let blk = Coverage.region ~name:"inotify" ~size:192
let c ctx o = Ctx.cover ctx (blk + o)

let h_init ctx _args =
  c ctx 0;
  let entry = State.alloc_fd ctx.Ctx.st (Inotify { watches = []; next_wd = 1L }) in
  Ctx.ok (Int64.of_int entry.State.fd)

let with_inotify ctx args k =
  match State.lookup_fd ctx.Ctx.st (Arg.as_fd (Arg.nth args 0)) with
  | Some { kind = Inotify ino; _ } -> k ino
  | Some _ -> (c ctx 2; Ctx.err Errno.EINVAL)
  | None -> (c ctx 3; Ctx.err Errno.EBADF)

let inode_state ctx path =
  match Vfs.inode_size ctx.Ctx.st path with
  | Some size -> (size, true)
  | None -> (0L, false)

let h_add_watch ctx args =
  c ctx 5;
  with_inotify ctx args (fun ino ->
      let path = Arg.as_str (Arg.nth args 1) in
      let mask = Arg.as_int (Arg.nth args 2) in
      if Int64.compare mask 0L = 0 then begin
        c ctx 6;
        Ctx.err Errno.EINVAL
      end
      else begin
        let size, exists = inode_state ctx path in
        if not exists then begin
          c ctx 7;
          Ctx.err Errno.ENOENT
        end
        else begin
          c ctx 8;
          (* Re-adding a watched path refreshes the existing watch. *)
          match List.find_opt (fun w -> w.wpath = path) ino.watches with
          | Some w ->
            c ctx 9;
            w.snap_size <- size;
            w.snap_exists <- exists;
            Ctx.ok w.wd
          | None ->
            c ctx 10;
            let wd = ino.next_wd in
            ino.next_wd <- Int64.add wd 1L;
            ino.watches <-
              { wd; wpath = path; snap_size = size; snap_exists = exists }
              :: ino.watches;
            c ctx (16 + min 7 (List.length ino.watches));
            Ctx.ok wd
        end
      end)

let h_rm_watch ctx args =
  c ctx 26;
  with_inotify ctx args (fun ino ->
      let wd = Arg.as_int (Arg.nth args 1) in
      if List.exists (fun w -> w.wd = wd) ino.watches then begin
        c ctx 27;
        ino.watches <- List.filter (fun w -> w.wd <> wd) ino.watches;
        Ctx.ok0
      end
      else begin
        c ctx 28;
        Ctx.err Errno.EINVAL
      end)

(* Reading reports one event per watch whose inode diverged from the
   snapshot, then refreshes the snapshots. *)
let inotify_read ctx (entry : State.fd_entry) _args =
  match entry.kind with
  | Inotify ino ->
    c ctx 30;
    let events = ref 0 in
    List.iter
      (fun w ->
        let size, exists = inode_state ctx w.wpath in
        if exists <> w.snap_exists then begin
          c ctx 31 (* IN_DELETE_SELF / IN_CREATE *);
          incr events
        end
        else if size <> w.snap_size then begin
          c ctx 32 (* IN_MODIFY *);
          incr events
        end;
        w.snap_size <- size;
        w.snap_exists <- exists)
      ino.watches;
    if !events = 0 then begin
      c ctx 33;
      Ctx.err Errno.EAGAIN
    end
    else begin
      c ctx (40 + min 7 !events);
      Ctx.ok (Int64.of_int (!events * 16))
    end
  | _ -> Ctx.err Errno.EINVAL

let descriptions =
  {|
# inotify filesystem events.
resource fd_inotify[fd]
resource inotify_wd[int64]: -1
flags inotify_mask = 0x1 0x2 0x4 0x8 0x100 0x200 0x400 0xfff
inotify_init(iflags const[0]) fd_inotify
inotify_add_watch(fd fd_inotify, path filename["/tmp/f0", "/tmp/f1", "/tmp/data", "/etc/passwd"], mask flags[inotify_mask]) inotify_wd
inotify_rm_watch(fd fd_inotify, wd inotify_wd)
|}

let copy_kind : State.fd_kind -> State.fd_kind option = function
  | Inotify i ->
    Some
      (Inotify
         {
           (* watch records carry mutable snapshot fields, so the list
              elements themselves must be cloned. *)
           watches =
             List.map (fun (w : watch) -> { w with snap_size = w.snap_size }) i.watches;
           next_wd = i.next_wd;
         })
  | _ -> None

let sub =
  Subsystem.make ~name:"inotify" ~descriptions ~copy_kind
    ~handlers:
      [
        ("inotify_init", h_init);
        (* Registering a watch snapshots the target inode, i.e. reads
           the vfs "fs" slot — that read happens under the inode lock,
           like fsnotify does. *)
        ("inotify_add_watch", Subsystem.locked [ Vfs.vfs_files ] h_add_watch);
        ("inotify_rm_watch", h_rm_watch);
      ]
    ~locks:[ ("inotify_add_watch", Lock.scoped [ "vfs_files" ]) ]
    ~effects:[ ("inotify_add_watch", Effect.spec ~reads:[ "fs" ] ()) ]
    ~file_ops:
      [
        {
          Subsystem.op_name = "read";
          applies = (function Inotify _ -> true | _ -> false);
          run = inotify_read;
        };
      ]
    ()
