(** Per-execution handler context and the helpers every simulated
    syscall handler uses: coverage reporting, errno results and bug
    triggering. *)

type t = {
  st : State.t;
  cov : Coverage.t;
  san : Sanitizer.config;
  features : string list;
      (** Executor features (e.g. ["usb"]); gates some subsystems. *)
  proc : int;  (** Executor process id, for [proc] typed values. *)
  mutable fault_pending : bool;
      (** Set by the executor when fault injection targets the current
          call; {!take_fault} consumes it. *)
  mutable lock_held : Lock.cls list;
      (** Lock classes currently held, innermost first; maintained by
          {!with_lock}. *)
  mutable lock_trace : Lock.op list;
      (** Acquisition trace in reverse order, recorded only under
          {!Lock.validate_enabled}; {!lock_trace} returns it
          chronologically. *)
}

type result = { ret : int64; err : Errno.t option }

val make :
  ?features:string list ->
  ?proc:int ->
  st:State.t ->
  san:Sanitizer.config ->
  Coverage.t ->
  t

val recycle : t -> unit
(** Reset the per-call mutable fields ([fault_pending], lock state) so
    one context can be reused across every call of a run — the
    compiled executor's zero-allocation path. Equivalent to a fresh
    {!make} with the same state/coverage/config. *)

val ok : int64 -> result
(** Success with a return value (fd, byte count...). *)

val ok0 : result
(** Success returning 0. *)

val err : Errno.t -> result
(** Failure; the return value is [-errno] like the raw Linux ABI. *)

val cover : t -> int -> unit
(** Report passing through branch id. *)

val covern : t -> int -> int list -> unit
(** [covern ctx base offs] covers [base + o] for each offset. *)

val version : t -> Version.t
val has_feature : t -> string -> bool

val take_fault : t -> bool
(** True at most once per injected fault: simulated allocation failure. *)

val bug : t -> string -> unit
(** [bug ctx key] fires the catalog bug [key]: if the bug exists in the
    booted kernel version and an enabled sanitizer detects its risk
    class, raises {!Crash.Crash}. Otherwise the corruption goes
    unnoticed and execution continues (exactly like an unsanitized or
    unaffected kernel). Raises [Invalid_argument] on unknown keys so
    that typos in handlers fail loudly in tests. *)

val bug_fires : t -> string -> bool
(** Would {!bug} raise? (Version and sanitizer check, no side effect.) *)

(** {2 Lock hooks}

    Handlers (normally via {!Subsystem.locked}) bracket their bodies
    in {!with_lock}; since the simulator is single-threaded the hooks
    never block — they account lock-pair coverage counters in
    {!State.t} and, under {!Lock.validate_enabled}, record the
    acquisition trace that {!Kernel.exec_call} checks against the
    handler's declared spec. *)

val acquire : t -> Lock.cls -> unit
val release : t -> Lock.cls -> unit

val with_lock : t -> Lock.cls -> (unit -> 'a) -> 'a
(** [with_lock ctx c f] runs [f] holding [c]; the release is exception
    safe ([Fun.protect]), so traces stay balanced when a handler
    raises {!Crash.Crash} mid-section. *)

val lock_trace : t -> Lock.op list
(** The recorded trace, chronologically. Empty unless
    {!Lock.validate_enabled}. *)
