type fd_kind = ..
type fd_kind += Dead

type fd_entry = {
  fd : int;
  mutable kind : fd_kind;
  mutable refs : int;
  mutable closed : bool;
}

type global = ..

type t = {
  kversion : Version.t;
  mutable next_fd : int;
  fds : (int, fd_entry) Hashtbl.t;
  mutable ops : int;
  globals : (string, global) Hashtbl.t;
  counters : (string, int) Hashtbl.t;
  (* Lock-acquisition counters, indexed by [Lock]'s dense counter
     slots. A plain int array keeps the per-acquire hook at an array
     increment; grown on demand. *)
  mutable lock_counts : int array;
  (* Effect-access counters (one read + one write counter per [Effect]
     slot, same dense-array scheme) and, under debug validation, the
     current call's observed access trace (encoded [slot*2 + is_write],
     innermost-last). *)
  mutable eff_reads : int array;
  mutable eff_writes : int array;
  mutable eff_trace : int list;
}

let create ~version =
  {
    kversion = version;
    next_fd = 3;
    fds = Hashtbl.create 64;
    ops = 0;
    globals = Hashtbl.create 16;
    counters = Hashtbl.create 16;
    lock_counts = [||];
    eff_reads = [||];
    eff_writes = [||];
    eff_trace = [];
  }

let version t = t.kversion

let tick t =
  t.ops <- t.ops + 1;
  t.ops

let now t = t.ops

let alloc_fd t kind =
  let fd = t.next_fd in
  t.next_fd <- t.next_fd + 1;
  let entry = { fd; kind; refs = 1; closed = false } in
  Hashtbl.replace t.fds fd entry;
  entry

let lookup_fd_raw t fd = Hashtbl.find_opt t.fds fd

let lookup_fd t fd =
  match lookup_fd_raw t fd with
  | Some e when not e.closed -> Some e
  | Some _ | None -> None

let close_fd t fd =
  match lookup_fd t fd with
  | None -> false
  | Some e ->
    e.refs <- e.refs - 1;
    if e.refs <= 0 then e.closed <- true;
    true

let dup_fd t fd =
  match lookup_fd t fd with
  | None -> None
  | Some e ->
    e.refs <- e.refs + 1;
    let fd' = t.next_fd in
    t.next_fd <- t.next_fd + 1;
    (* The duplicated number aliases the same entry record; lookups on
       either number reach the same object. *)
    Hashtbl.replace t.fds fd' e;
    Some fd'

let live_fds t =
  Hashtbl.fold (fun fd e acc -> if e.closed then acc else (fd, e) :: acc) t.fds []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map snd

let exists_fd t pred =
  Hashtbl.fold (fun _ e acc -> acc || ((not e.closed) && pred e)) t.fds false

let set_global t name g = Hashtbl.replace t.globals name g
let global t name = Hashtbl.find_opt t.globals name
let global_exn t name = Hashtbl.find t.globals name

let copy_tbl copy_v tbl =
  let t = Hashtbl.copy tbl in
  Hashtbl.filter_map_inplace (fun _ v -> Some (copy_v v)) t;
  t

let copy ~copy_kind ~copy_global t =
  let fds = Hashtbl.copy t.fds in
  (* [dup_fd] registers the same entry record under two descriptor
     numbers; preserve that aliasing by memoizing copies on the entry's
     allocation-time [fd] field (unique per record). *)
  let memo = Hashtbl.create (Hashtbl.length fds) in
  Hashtbl.filter_map_inplace
    (fun _num e ->
      match Hashtbl.find_opt memo e.fd with
      | Some e' -> Some e'
      | None ->
        let e' = { e with kind = copy_kind e.kind } in
        Hashtbl.add memo e.fd e';
        Some e')
    fds;
  let globals = Hashtbl.copy t.globals in
  Hashtbl.filter_map_inplace (fun name g -> Some (copy_global name g)) globals;
  {
    kversion = t.kversion;
    next_fd = t.next_fd;
    fds;
    ops = t.ops;
    globals;
    counters = Hashtbl.copy t.counters;
    lock_counts = Array.copy t.lock_counts;
    eff_reads = Array.copy t.eff_reads;
    eff_writes = Array.copy t.eff_writes;
    eff_trace = t.eff_trace;
  }

let incr_counter t name =
  let v = (match Hashtbl.find_opt t.counters name with Some v -> v | None -> 0) + 1 in
  Hashtbl.replace t.counters name v;
  v

let counter t name =
  match Hashtbl.find_opt t.counters name with Some v -> v | None -> 0

let set_counter t name v = Hashtbl.replace t.counters name v
let fold_counters f t init = Hashtbl.fold f t.counters init

let bump_lock t slot =
  let n = Array.length t.lock_counts in
  if slot >= n then begin
    let a = Array.make (max 16 (max (slot + 1) (2 * n))) 0 in
    Array.blit t.lock_counts 0 a 0 n;
    t.lock_counts <- a
  end;
  let a = t.lock_counts in
  Array.unsafe_set a slot (Array.unsafe_get a slot + 1)

let lock_slot_counts t =
  let out = ref [] in
  Array.iteri (fun i n -> if n > 0 then out := (i, n) :: !out) t.lock_counts;
  List.rev !out

(* ---- effect-access recording ----

   Called from the instrumented subsystem accessors. With hooks off
   and validation off this is two ref reads; with hooks on, an array
   increment. Results never depend on it (campaigns are bit-identical
   either way). *)

let grown a slot =
  let n = Array.length a in
  if slot < n then a
  else begin
    let a' = Array.make (max 16 (max (slot + 1) (2 * n))) 0 in
    Array.blit a 0 a' 0 n;
    a'
  end

let record_read t slot =
  if Effect.hooks_enabled () then begin
    let a = grown t.eff_reads slot in
    t.eff_reads <- a;
    Array.unsafe_set a slot (Array.unsafe_get a slot + 1)
  end;
  if Effect.validate_enabled () then t.eff_trace <- (slot * 2) :: t.eff_trace

let record_write t slot =
  if Effect.hooks_enabled () then begin
    let a = grown t.eff_writes slot in
    t.eff_writes <- a;
    Array.unsafe_set a slot (Array.unsafe_get a slot + 1)
  end;
  if Effect.validate_enabled () then
    t.eff_trace <- ((slot * 2) + 1) :: t.eff_trace

let reset_effect_trace t = t.eff_trace <- []

let effect_trace t =
  List.rev_map (fun e -> (e land 1 = 1, e asr 1)) t.eff_trace

let effect_slot_counts t =
  let get a i = if i < Array.length a then Array.unsafe_get a i else 0 in
  let n = max (Array.length t.eff_reads) (Array.length t.eff_writes) in
  let out = ref [] in
  for i = n - 1 downto 0 do
    let r = get t.eff_reads i and w = get t.eff_writes i in
    if r > 0 || w > 0 then out := (i, r, w) :: !out
  done;
  !out
