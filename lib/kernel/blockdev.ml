type nbd = {
  mutable sock : int option;
  mutable running : bool;
  mutable disconnects : int;
  mutable cleared : bool;
}

type loopdev = {
  mutable backing : int option;
  mutable partitions : int list;
  mutable deleted_part : bool;
}

type State.fd_kind += Nbd of nbd | Loop of loopdev

let blk = Coverage.region ~name:"blockdev" ~size:256
let c ctx o = Ctx.cover ctx (blk + o)

let h_open_nbd ctx _args =
  c ctx 0;
  let entry =
    State.alloc_fd ctx.Ctx.st
      (Nbd { sock = None; running = false; disconnects = 0; cleared = false })
  in
  Ctx.ok (Int64.of_int entry.State.fd)

let h_open_loop ctx _args =
  c ctx 2;
  let entry =
    State.alloc_fd ctx.Ctx.st
      (Loop { backing = None; partitions = []; deleted_part = false })
  in
  Ctx.ok (Int64.of_int entry.State.fd)

let with_nbd ctx args k =
  let fd = Arg.as_fd (Arg.nth args 0) in
  match State.lookup_fd ctx.Ctx.st fd with
  | Some { kind = Nbd n; _ } -> k n
  | Some _ ->
    c ctx 4;
    Ctx.err Errno.ENOTTY
  | None ->
    c ctx 5;
    Ctx.err Errno.EBADF

let with_loop ctx args k =
  let fd = Arg.as_fd (Arg.nth args 0) in
  match State.lookup_fd ctx.Ctx.st fd with
  | Some { kind = Loop l; _ } -> k l
  | Some _ ->
    c ctx 6;
    Ctx.err Errno.ENOTTY
  | None ->
    c ctx 7;
    Ctx.err Errno.EBADF

let h_nbd_set_sock ctx args =
  c ctx 9;
  with_nbd ctx args (fun n ->
      let sfd = Arg.as_fd (Arg.nth args 2) in
      match State.lookup_fd ctx.Ctx.st sfd with
      | Some { kind = Sock.Sock _; _ } ->
        c ctx 10;
        n.sock <- Some sfd;
        n.cleared <- false;
        Ctx.ok0
      | Some _ ->
        c ctx 11;
        Ctx.err Errno.EINVAL
      | None ->
        c ctx 12;
        Ctx.err Errno.EBADF)

let h_nbd_do_it ctx args =
  c ctx 14;
  with_nbd ctx args (fun n ->
      match n.sock with
      | None ->
        c ctx 15;
        Ctx.err Errno.EINVAL
      | Some _ ->
        if n.running then begin
          c ctx 16;
          Ctx.err Errno.EBUSY
        end
        else begin
          c ctx 17;
          n.running <- true;
          Ctx.ok0
        end)

let h_nbd_disconnect ctx args =
  c ctx 19;
  with_nbd ctx args (fun n ->
      n.disconnects <- n.disconnects + 1;
      match n.sock with
      | None ->
        c ctx 20;
        Ctx.err Errno.EINVAL
      | Some _ ->
        c ctx 21;
        (* Second disconnect while the socket config is still attached
           drops the config reference twice (nbd_disconnect_and_put,
           5.11). *)
        if n.disconnects >= 2 then begin
          c ctx 22;
          Ctx.bug ctx "nbd_disconnect_and_put"
        end;
        n.running <- false;
        Ctx.ok0)

let h_nbd_clear_sock ctx args =
  c ctx 24;
  with_nbd ctx args (fun n ->
      c ctx 25;
      (* Clearing after a completed disconnect cycle, then
         disconnecting again, puts a device reference that is already
         gone (put_device, 5.11). The second-stage check lives in
         h_nbd_disconnect via [cleared]. *)
      if n.cleared && n.disconnects >= 2 then begin
        c ctx 26;
        Ctx.bug ctx "put_device"
      end;
      n.sock <- None;
      n.cleared <- true;
      Ctx.ok0)

let h_loop_set_fd ctx args =
  c ctx 28;
  with_loop ctx args (fun l ->
      let bfd = Arg.as_fd (Arg.nth args 2) in
      match State.lookup_fd ctx.Ctx.st bfd with
      | Some { kind = Vfs.File _; _ } | Some { kind = Memfd.Memfd _; _ } ->
        if l.backing <> None then begin
          c ctx 29;
          Ctx.err Errno.EBUSY
        end
        else begin
          c ctx 30;
          l.backing <- Some bfd;
          Ctx.ok0
        end
      | Some _ ->
        c ctx 31;
        Ctx.err Errno.EINVAL
      | None ->
        c ctx 32;
        Ctx.err Errno.EBADF)

let h_loop_clr_fd ctx args =
  c ctx 34;
  with_loop ctx args (fun l ->
      if l.backing = None then begin
        c ctx 35;
        Ctx.err Errno.ENXIO
      end
      else begin
        c ctx 36;
        l.backing <- None;
        Ctx.ok0
      end)

let h_blkpg_add ctx args =
  c ctx 38;
  with_loop ctx args (fun l ->
      let pno = Int64.to_int (Arg.as_int (Arg.field (Arg.nth args 2) 0)) in
      if pno <= 0 || pno > 15 then begin
        c ctx 39;
        Ctx.err Errno.EINVAL
      end
      else if List.mem pno l.partitions then begin
        c ctx 40;
        Ctx.err Errno.EBUSY
      end
      else begin
        c ctx 41;
        l.partitions <- pno :: l.partitions;
        Ctx.ok0
      end)

let h_blkpg_del ctx args =
  c ctx 43;
  with_loop ctx args (fun l ->
      let pno = Int64.to_int (Arg.as_int (Arg.field (Arg.nth args 2) 0)) in
      if List.mem pno l.partitions then begin
        c ctx 44;
        l.partitions <- List.filter (fun p -> p <> pno) l.partitions;
        l.deleted_part <- true;
        Ctx.ok0
      end
      else begin
        c ctx 45;
        Ctx.err Errno.ENXIO
      end)

let h_blkrrpart ctx args =
  c ctx 47;
  with_loop ctx args (fun l ->
      match l.backing with
      | None ->
        c ctx 48;
        Ctx.err Errno.ENXIO
      | Some _ ->
        c ctx 49;
        (* Re-reading the partition table while iterating over a just
           deleted partition: the iterator touches the freed partition
           (disk_part_iter, known), and on 5.11 re-adding from a dirty
           table faults in blk_add_partitions. *)
        if l.deleted_part then begin
          c ctx 50;
          if l.partitions <> [] then begin
            c ctx 51;
            Ctx.bug ctx "disk_part_iter_uaf"
          end;
          Ctx.bug ctx "blk_add_partitions";
          l.deleted_part <- false
        end;
        if List.length l.partitions > 4 then c ctx 52;
        c ctx (64 + min 7 (List.length l.partitions));
        Ctx.ok0)

let descriptions =
  {|
# Block devices: NBD, loop, partitions.
resource fd_nbd[fd]
resource fd_loop[fd]
struct blkpg_part { pno int32, start int64, plength int64 }
openat$nbd(dirfd fd, file filename["/dev/nbd0"], oflags flags[open_flags]) fd_nbd
openat$loop(dirfd fd, file filename["/dev/loop0"], oflags flags[open_flags]) fd_loop
ioctl$NBD_SET_SOCK(fd fd_nbd, cmd const[0xab00], sock sock)
ioctl$NBD_DO_IT(fd fd_nbd, cmd const[0xab03])
ioctl$NBD_DISCONNECT(fd fd_nbd, cmd const[0xab08])
ioctl$NBD_CLEAR_SOCK(fd fd_nbd, cmd const[0xab04])
ioctl$LOOP_SET_FD(fd fd_loop, cmd const[0x4c00], backing fd)
ioctl$LOOP_CLR_FD(fd fd_loop, cmd const[0x4c01])
ioctl$BLKPG_ADD(fd fd_loop, cmd const[0x1269], part ptr[in, blkpg_part])
ioctl$BLKPG_DEL(fd fd_loop, cmd const[0x126a], part ptr[in, blkpg_part])
ioctl$BLKRRPART(fd fd_loop, cmd const[0x125f])
|}

let copy_kind : State.fd_kind -> State.fd_kind option = function
  | Nbd n -> Some (Nbd { n with sock = n.sock })
  | Loop l -> Some (Loop { l with backing = l.backing })
  | _ -> None

let sub =
  Subsystem.make ~name:"blockdev" ~descriptions ~copy_kind
    ~handlers:
      [
        ("openat$nbd", h_open_nbd);
        ("openat$loop", h_open_loop);
        ("ioctl$NBD_SET_SOCK", h_nbd_set_sock);
        ("ioctl$NBD_DO_IT", h_nbd_do_it);
        ("ioctl$NBD_DISCONNECT", h_nbd_disconnect);
        ("ioctl$NBD_CLEAR_SOCK", h_nbd_clear_sock);
        ("ioctl$LOOP_SET_FD", h_loop_set_fd);
        ("ioctl$LOOP_CLR_FD", h_loop_clr_fd);
        ("ioctl$BLKPG_ADD", h_blkpg_add);
        ("ioctl$BLKPG_DEL", h_blkpg_del);
        ("ioctl$BLKRRPART", h_blkrrpart);
      ]
    ()
