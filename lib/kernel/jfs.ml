type journal = {
  mutable committing_at : int;
  mutable fc_commit_at : int;
  mutable dirty_handles : int;
}

type ext4_file = {
  mutable iloc_dirty_at : int;
  mutable data_dirty_at : int;
  mutable written : int64;
  mutable journalled : bool;
}

type State.fd_kind += Ext4 of ext4_file
type State.global += Journal of journal

let blk = Coverage.region ~name:"jfs" ~size:256
let c ctx o = Ctx.cover ctx (blk + o)
let race_window = 2

let init st =
  State.set_global st "journal"
    (Journal { committing_at = 0; fc_commit_at = 0; dirty_handles = 0 })

let journal_of st =
  match State.global st "journal" with
  | Some (Journal j) -> j
  | Some _ | None -> failwith "jfs: state not initialized"

let in_window st at = at > 0 && State.now st - at <= race_window

let h_open_ext4 ctx args =
  let path = Arg.as_str (Arg.nth args 0) in
  c ctx 0;
  if String.length path < 10 || String.sub path 0 10 <> "/mnt/ext4/" then begin
    c ctx 1;
    Ctx.err Errno.ENOENT
  end
  else begin
    c ctx 2;
    let f =
      { iloc_dirty_at = 0; data_dirty_at = 0; written = 0L; journalled = false }
    in
    let entry = State.alloc_fd ctx.Ctx.st (Ext4 f) in
    Ctx.ok (Int64.of_int entry.State.fd)
  end

let with_ext4 ctx args k =
  match State.lookup_fd ctx.Ctx.st (Arg.as_fd (Arg.nth args 0)) with
  | Some { kind = Ext4 f; _ } -> k f
  | Some _ -> (c ctx 4; Ctx.err Errno.EINVAL)
  | None -> (c ctx 5; Ctx.err Errno.EBADF)

let ext4_write ctx (entry : State.fd_entry) args =
  match entry.kind with
  | Ext4 f ->
    let j = journal_of ctx.Ctx.st in
    let n = Bytes.length (Arg.as_buf (Arg.nth args 1)) in
    c ctx 7;
    f.written <- Int64.add f.written (Int64.of_int n);
    f.data_dirty_at <- State.now ctx.Ctx.st;
    j.dirty_handles <- j.dirty_handles + 1;
    (* Journaled-data write racing a commit: the buffer is refiled
       while the commit walks the list (5.11). *)
    if f.journalled && in_window ctx.Ctx.st j.committing_at then begin
      c ctx 8;
      Ctx.bug ctx "jbd2_journal_file_buffer"
    end;
    if n > 8192 then begin
      c ctx 9;
      (* Writeback of a huge delalloc extent hits a BUG_ON. *)
      if f.journalled then Ctx.bug ctx "ext4_writepages_bug"
    end;
    let combo =
      (if f.journalled then 1 else 0)
      lor (if in_window ctx.Ctx.st j.fc_commit_at then 2 else 0)
      lor if f.iloc_dirty_at > 0 then 4 else 0
    in
    c ctx (64 + combo);
    let size_class =
      if n = 0 then 0 else if n <= 512 then 1 else if n <= 4096 then 2 else 3
    in
    c ctx (96 + (combo * 4) + size_class);
    Ctx.ok (Int64.of_int n)
  | _ -> Ctx.err Errno.EINVAL

let h_fchmod ctx args =
  c ctx 11;
  with_ext4 ctx args (fun f ->
      let j = journal_of ctx.Ctx.st in
      c ctx 12;
      f.iloc_dirty_at <- State.now ctx.Ctx.st;
      (* Inode-location dirty racing the committing transaction
         (5.11). *)
      if in_window ctx.Ctx.st j.committing_at then begin
        c ctx 13;
        Ctx.bug ctx "ext4_mark_iloc_dirty"
      end;
      Ctx.ok0)

let h_setflags ctx args =
  c ctx 15;
  with_ext4 ctx args (fun f ->
      let j = journal_of ctx.Ctx.st in
      let flags = Arg.as_int (Arg.field (Arg.nth args 2) 0) in
      c ctx 16;
      if Int64.logand flags 0x4000L <> 0L then begin
        c ctx 17;
        f.journalled <- true
      end;
      (* Metadata handle dirtied while the commit is live (5.11). *)
      if j.dirty_handles > 0 && in_window ctx.Ctx.st j.committing_at then begin
        c ctx 18;
        Ctx.bug ctx "ext4_handle_dirty_metadata"
      end;
      Ctx.ok0)

let h_fsync_ext4 ctx args =
  c ctx 20;
  with_ext4 ctx args (fun f ->
      let j = journal_of ctx.Ctx.st in
      c ctx 21;
      ignore f;
      j.committing_at <- State.now ctx.Ctx.st;
      j.dirty_handles <- 0;
      Ctx.ok0)

let h_fc_commit ctx args =
  c ctx 23;
  with_ext4 ctx args (fun f ->
      let j = journal_of ctx.Ctx.st in
      c ctx 24;
      (* Two overlapping fast commits race on the fc region (5.11). *)
      if in_window ctx.Ctx.st j.fc_commit_at then begin
        c ctx 25;
        Ctx.bug ctx "ext4_fc_commit"
      end;
      if Int64.compare f.written 0L > 0 then c ctx 26;
      j.fc_commit_at <- State.now ctx.Ctx.st;
      Ctx.ok0)

let descriptions =
  {|
# Ext4 with jbd2 journaling.
resource fd_ext4[fd]
struct ext4_flags_arg { fl int32 }
open$ext4(file filename["/mnt/ext4/f0", "/mnt/ext4/f1"], oflags flags[open_flags], mode const[0x1ff]) fd_ext4
fchmod$ext4(fd fd_ext4, mode int32[0:4095])
ioctl$EXT4_IOC_SETFLAGS(fd fd_ext4, cmd const[0x40086602], arg ptr[in, ext4_flags_arg])
fsync$ext4(fd fd_ext4)
ioctl$EXT4_IOC_FC_COMMIT(fd fd_ext4, cmd const[0x6615])
|}

let copy_kind : State.fd_kind -> State.fd_kind option = function
  | Ext4 f -> Some (Ext4 { f with written = f.written })
  | _ -> None

let copy_global : State.global -> State.global option = function
  | Journal j -> Some (Journal { j with dirty_handles = j.dirty_handles })
  | _ -> None

let sub =
  Subsystem.make ~name:"jfs" ~descriptions ~init ~copy_kind ~copy_global
    ~handlers:
      [
        ("open$ext4", h_open_ext4);
        ("fchmod$ext4", h_fchmod);
        ("ioctl$EXT4_IOC_SETFLAGS", h_setflags);
        ("fsync$ext4", h_fsync_ext4);
        ("ioctl$EXT4_IOC_FC_COMMIT", h_fc_commit);
      ]
    ~file_ops:
      [
        {
          Subsystem.op_name = "write";
          applies = (function Ext4 _ -> true | _ -> false);
          run = ext4_write;
        };
      ]
    ()
