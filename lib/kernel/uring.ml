type uring = {
  mutable entries : int;
  mutable registered_bufs : int;
  mutable inflight : int;
  mutable unregister_pending : bool;
  mutable exiting : bool;
}

type State.fd_kind += Uring of uring

let blk = Coverage.region ~name:"uring" ~size:192

(* ctx->uring_lock: SQ/CQ rings and the registered-buffer table. *)
let uring_ctx = Lock.register ~rank:80 ~guards:[ "fd:uring" ] "uring_ctx"
let c ctx o = Ctx.cover ctx (blk + o)

(* Effect slot for the ring payload; io_uring_setup's allocation is
   exempt (fresh payload). *)
let s_fd_uring = Effect.slot "fd:uring"

let h_setup ctx args =
  let entries = Int64.to_int (Arg.as_int (Arg.nth args 0)) in
  c ctx 0;
  if entries <= 0 || entries > 4096 then begin
    c ctx 1;
    Ctx.err Errno.EINVAL
  end
  else begin
    c ctx 2;
    if entries > 1024 then c ctx 3;
    let u =
      {
        entries;
        registered_bufs = 0;
        inflight = 0;
        unregister_pending = false;
        exiting = false;
      }
    in
    let entry = State.alloc_fd ctx.Ctx.st (Uring u) in
    Ctx.ok (Int64.of_int entry.State.fd)
  end

let with_uring ctx args k =
  let fd = Arg.as_fd (Arg.nth args 0) in
  match State.lookup_fd ctx.Ctx.st fd with
  | Some { kind = Uring u; _ } ->
    State.record_read ctx.Ctx.st s_fd_uring;
    k u
  | Some _ ->
    c ctx 5;
    Ctx.err Errno.EOPNOTSUPP
  | None ->
    c ctx 6;
    Ctx.err Errno.EBADF

let h_enter ctx args =
  c ctx 8;
  with_uring ctx args (fun u ->
      let to_submit = Int64.to_int (Arg.as_int (Arg.nth args 1)) in
      let flags = Arg.as_int (Arg.nth args 3) in
      if to_submit < 0 then begin
        c ctx 9;
        Ctx.err Errno.EINVAL
      end
      else begin
        c ctx 10;
        if u.exiting then begin
          (* Entering a ring whose owner task already started exit work
             trips a WARN in io_ring_exit_work. *)
          c ctx 11;
          Ctx.bug ctx "io_ring_exit_work";
          Ctx.err Errno.EINVAL
        end
        else begin
          let n = min to_submit u.entries in
          State.record_write ctx.Ctx.st s_fd_uring;
          u.inflight <- u.inflight + n;
          (* GETEVENTS while a buffer unregister is pending cancels the
             task requests against a NULL task context (5.11). *)
          if Int64.logand flags 1L <> 0L && u.unregister_pending && u.inflight > 0
          then begin
            c ctx 12;
            Ctx.bug ctx "io_uring_cancel_task_requests"
          end;
          if n = 0 then c ctx 13 else if n > 32 then c ctx 14 else c ctx 15;
          let combo =
            (if u.registered_bufs > 0 then 1 else 0)
            lor (if u.unregister_pending then 2 else 0)
            lor if u.inflight > 16 then 4 else 0
          in
          c ctx (64 + combo);
          let submit_class =
            if n = 0 then 0 else if n <= 4 then 1
            else if n <= 16 then 2 else if n <= 64 then 3
            else if n <= 256 then 4 else 5
          in
          c ctx (96 + (combo * 8) + submit_class);
          Ctx.ok (Int64.of_int n)
        end
      end)

let h_register_buffers ctx args =
  c ctx 17;
  with_uring ctx args (fun u ->
      let nr = Int64.to_int (Arg.as_int (Arg.nth args 3)) in
      if u.registered_bufs > 0 then begin
        c ctx 18;
        Ctx.err Errno.EBUSY
      end
      else begin
        c ctx 19;
        State.record_write ctx.Ctx.st s_fd_uring;
        u.registered_bufs <- max 1 (min nr 1024);
        u.unregister_pending <- false;
        Ctx.ok0
      end)

let h_unregister_buffers ctx args =
  c ctx 21;
  with_uring ctx args (fun u ->
      if u.registered_bufs = 0 then begin
        c ctx 22;
        Ctx.err Errno.ENXIO
      end
      else begin
        c ctx 23;
        State.record_write ctx.Ctx.st s_fd_uring;
        u.registered_bufs <- 0;
        (* Teardown is deferred while requests are in flight. *)
        if u.inflight > 0 then begin
          c ctx 24;
          u.unregister_pending <- true
        end;
        Ctx.ok0
      end)

(* Release hook: a task dying with heavy inflight IO starts the exit
   work early; entering through a surviving duplicate then misbehaves. *)
let uring_close ctx (entry : State.fd_entry) _args =
  match entry.kind with
  | Uring u ->
    c ctx 26;
    State.record_read ctx.Ctx.st s_fd_uring;
    if u.inflight > 16 then begin
      c ctx 27;
      State.record_write ctx.Ctx.st s_fd_uring;
      u.exiting <- true
    end;
    Ctx.ok0
  | _ -> Ctx.err Errno.EINVAL

let descriptions =
  {|
# io_uring.
resource fd_uring[fd]
flags uring_enter_flags = 0x0 0x1 0x2 0x3
struct uring_params { sq_entries int32, cq_entries int32, uflags int32 }
struct iovec { base vma, iov_len int64 }
io_uring_setup(entries int32[0:4096], params ptr[inout, uring_params]) fd_uring
io_uring_enter(fd fd_uring, to_submit int32, min_complete int32, eflags flags[uring_enter_flags])
io_uring_register$BUFFERS(fd fd_uring, opcode const[0], iovs ptr[in, array[iovec, 1:4]], nr_iovs len[iovs])
io_uring_register$UNREGISTER_BUFFERS(fd fd_uring, opcode const[1], unused ptr[in, int64], zero const[0])
|}

let copy_kind : State.fd_kind -> State.fd_kind option = function
  | Uring u -> Some (Uring { u with entries = u.entries })
  | _ -> None

let sub =
  Subsystem.make ~name:"uring" ~descriptions ~copy_kind
    ~handlers:
      [
        ("io_uring_setup", h_setup);
        ("io_uring_enter", Subsystem.locked [ uring_ctx ] h_enter);
        ("io_uring_register$BUFFERS", Subsystem.locked [ uring_ctx ] h_register_buffers);
        ( "io_uring_register$UNREGISTER_BUFFERS",
          Subsystem.locked [ uring_ctx ] h_unregister_buffers );
      ]
    ~locks:
      (let w = Lock.scoped [ "uring_ctx" ] ~touches:[ "fd:uring" ] in
       [
         ("io_uring_enter", w);
         ("io_uring_register$BUFFERS", w);
         ("io_uring_register$UNREGISTER_BUFFERS", w);
       ])
    ~effects:
      (let e = Effect.spec ~writes:[ "fd:uring" ] () in
       [
         ("io_uring_enter", e);
         ("io_uring_register$BUFFERS", e);
         ("io_uring_register$UNREGISTER_BUFFERS", e);
       ])
    ~file_ops:
      [
        {
          Subsystem.op_name = "close";
          applies = (function Uring _ -> true | _ -> false);
          run = uring_close;
        };
      ]
    ()
