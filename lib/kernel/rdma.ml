type cm_id = {
  mutable bound : bool;
  mutable listening : bool;
  mutable resolving : bool;
  mutable destroyed : bool;
}

type State.fd_kind += Rdma_cm
type State.global += Rdma_ids of (int64, cm_id) Hashtbl.t * int64 ref

let blk = Coverage.region ~name:"rdma" ~size:256
let c ctx o = Ctx.cover ctx (blk + o)

let init st = State.set_global st "rdma" (Rdma_ids (Hashtbl.create 8, ref 1L))

let ids_of st =
  match State.global st "rdma" with
  | Some (Rdma_ids (tbl, next)) -> (tbl, next)
  | Some _ | None -> failwith "rdma: state not initialized"

let h_open ctx args =
  let path = Arg.as_str (Arg.nth args 1) in
  c ctx 0;
  if path <> "/dev/infiniband/rdma_cm" then begin
    c ctx 1;
    Ctx.err Errno.ENOENT
  end
  else begin
    c ctx 2;
    let entry = State.alloc_fd ctx.Ctx.st Rdma_cm in
    Ctx.ok (Int64.of_int entry.State.fd)
  end

let with_cm ctx args k =
  let fd = Arg.as_fd (Arg.nth args 0) in
  match State.lookup_fd ctx.Ctx.st fd with
  | Some { kind = Rdma_cm; _ } -> k ()
  | Some _ ->
    c ctx 4;
    Ctx.err Errno.EINVAL
  | None ->
    c ctx 5;
    Ctx.err Errno.EBADF

(* Destroyed ids stay in the table (freed memory); touching one is the
   use-after-free family below. *)
let with_id ctx args ~arg k =
  let tbl, _ = ids_of ctx.Ctx.st in
  let id = Arg.as_int (Arg.nth args arg) in
  match Hashtbl.find_opt tbl id with
  | Some cm -> k cm
  | None ->
    c ctx 7;
    Ctx.err Errno.ENOENT

let h_create_id ctx args =
  c ctx 9;
  with_cm ctx args (fun () ->
      let tbl, next = ids_of ctx.Ctx.st in
      c ctx 10;
      let live =
        Hashtbl.fold (fun _ cm acc -> if cm.destroyed then acc else acc + 1) tbl 0
      in
      (* Creating ids past the per-file quota without destroying any
         leaks the overflow allocation (ucma_create_id). *)
      if live >= 3 then begin
        c ctx 11;
        Ctx.bug ctx "ucma_create_id_leak"
      end;
      let id = !next in
      next := Int64.add !next 1L;
      Hashtbl.replace tbl id
        { bound = false; listening = false; resolving = false; destroyed = false };
      Ctx.ok id)

let h_bind_addr ctx args =
  c ctx 13;
  with_cm ctx args (fun () ->
      with_id ctx args ~arg:2 (fun cm ->
          if cm.destroyed then begin
            c ctx 14;
            Ctx.err Errno.ENOENT
          end
          else begin
            c ctx 15;
            cm.bound <- true;
            Ctx.ok0
          end))

let h_resolve_addr ctx args =
  c ctx 17;
  with_cm ctx args (fun () ->
      with_id ctx args ~arg:2 (fun cm ->
          if cm.destroyed then begin
            c ctx 18;
            Ctx.err Errno.ENOENT
          end
          else begin
            c ctx 19;
            cm.resolving <- true;
            Ctx.ok0
          end))

let h_listen ctx args =
  c ctx 21;
  with_cm ctx args (fun () ->
      with_id ctx args ~arg:2 (fun cm ->
          if cm.destroyed then begin
            (* Listening on an id whose destroy raced the event handler
               re-arms the freed id (rdma_listen, 5.11). *)
            c ctx 22;
            Ctx.bug ctx "rdma_listen";
            Ctx.err Errno.ENOENT
          end
          else if not cm.bound then begin
            c ctx 23;
            Ctx.err Errno.EINVAL
          end
          else begin
            c ctx 24;
            cm.listening <- true;
            Ctx.ok0
          end))

let h_destroy_id ctx args =
  c ctx 26;
  with_cm ctx args (fun () ->
      with_id ctx args ~arg:2 (fun cm ->
          if cm.destroyed then begin
            c ctx 27;
            Ctx.err Errno.ENOENT
          end
          else begin
            c ctx 28;
            (* Destroying while an address resolve is in flight cancels
               the work item after the id is freed
               (cma_cancel_operation, 5.11). *)
            if cm.resolving && cm.listening then begin
              c ctx 29;
              Ctx.bug ctx "cma_cancel_operation"
            end;
            cm.destroyed <- true;
            Ctx.ok0
          end))

let h_connect ctx args =
  c ctx 31;
  with_cm ctx args (fun () ->
      with_id ctx args ~arg:2 (fun cm ->
          if cm.destroyed then begin
            c ctx 32;
            Ctx.err Errno.ENOENT
          end
          else if not cm.resolving then begin
            c ctx 33;
            Ctx.err Errno.EINVAL
          end
          else begin
            c ctx 34;
            Ctx.ok0
          end))

let descriptions =
  {|
# RDMA connection manager (ucma).
resource fd_rdma[fd]
resource rdma_id[int64]: 0
openat$rdma_cm(dirfd fd, file filename["/dev/infiniband/rdma_cm"], oflags flags[open_flags]) fd_rdma
ioctl$RDMA_CREATE_ID(fd fd_rdma, cmd const[0xc0184600], ps int32[0:4]) rdma_id
ioctl$RDMA_BIND_ADDR(fd fd_rdma, cmd const[0xc0184601], id rdma_id, addr ptr[in, sockaddr])
ioctl$RDMA_RESOLVE_ADDR(fd fd_rdma, cmd const[0xc0184602], id rdma_id, addr ptr[in, sockaddr])
ioctl$RDMA_LISTEN(fd fd_rdma, cmd const[0xc0184603], id rdma_id, backlog int32)
ioctl$RDMA_CONNECT(fd fd_rdma, cmd const[0xc0184604], id rdma_id)
ioctl$RDMA_DESTROY_ID(fd fd_rdma, cmd const[0xc0184605], id rdma_id)
|}

let copy_kind : State.fd_kind -> State.fd_kind option = function
  | Rdma_cm -> Some Rdma_cm
  | _ -> None

let copy_global : State.global -> State.global option = function
  | Rdma_ids (tbl, next) ->
    Some
      (Rdma_ids
         ( State.copy_tbl (fun (c : cm_id) -> { c with bound = c.bound }) tbl,
           ref !next ))
  | _ -> None

let sub =
  Subsystem.make ~name:"rdma" ~descriptions ~init ~copy_kind ~copy_global
    ~handlers:
      [
        ("openat$rdma_cm", h_open);
        ("ioctl$RDMA_CREATE_ID", h_create_id);
        ("ioctl$RDMA_BIND_ADDR", h_bind_addr);
        ("ioctl$RDMA_RESOLVE_ADDR", h_resolve_addr);
        ("ioctl$RDMA_LISTEN", h_listen);
        ("ioctl$RDMA_CONNECT", h_connect);
        ("ioctl$RDMA_DESTROY_ID", h_destroy_id);
      ]
    ()
