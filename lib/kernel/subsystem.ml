type handler = Ctx.t -> Arg.t list -> Ctx.result

type file_op = {
  op_name : string;
  applies : State.fd_kind -> bool;
  run : Ctx.t -> State.fd_entry -> Arg.t list -> Ctx.result;
}

type t = {
  name : string;
  descriptions : string;
  init : State.t -> unit;
  handlers : (string * handler) list;
  file_ops : file_op list;
  copy_kind : State.fd_kind -> State.fd_kind option;
  copy_global : State.global -> State.global option;
  locks : (string * Lock.spec) list;
  effects : (string * Effect.spec) list;
}

let make ?(init = fun _ -> ()) ?(handlers = []) ?(file_ops = [])
    ?(copy_kind = fun _ -> None) ?(copy_global = fun _ -> None) ?(locks = [])
    ?(effects = []) ~name ~descriptions () =
  {
    name;
    descriptions;
    init;
    handlers;
    file_ops;
    copy_kind;
    copy_global;
    locks;
    effects;
  }

let locked classes h ctx args =
  let rec go = function
    | [] -> h ctx args
    | c :: rest -> Ctx.with_lock ctx c (fun () -> go rest)
  in
  go classes

let registry : t list ref = ref []

let register sub =
  if not (List.exists (fun s -> String.equal s.name sub.name) !registry) then
    registry := !registry @ [ sub ]

let registered () = !registry

let dispatch_file_op ctx op (entry : State.fd_entry) args =
  let rec go = function
    | [] -> None
    | sub :: rest -> (
      let matching =
        List.find_opt
          (fun fo -> String.equal fo.op_name op && fo.applies entry.kind)
          sub.file_ops
      in
      match matching with
      | Some fo -> Some (fo.run ctx entry args)
      | None -> go rest)
  in
  go !registry
