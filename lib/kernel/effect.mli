(** Handler effect summaries over shared kernel state.

    Every handler in the stateful subsystems declares the
    [State.global] slots and [fd:<kind>] pseudo-slots it reads and
    writes — the same slot vocabulary as {!Lock.cls.guards} — and
    instrumented state accessors record the observed per-execution
    effect trace. The pure checkers here back the static effect-drift
    pass, the Eraser-style lockset race detector, the
    write→read relation-inference pass, and the runtime validator in
    [Kernel.exec_call] (same [HEALER_DEBUG_VALIDATE] contract as
    Progcheck and lockdep). *)

(** {1 Specs and models} *)

type spec = { reads : string list; writes : string list }
(** Declared effect summary: slot names the handler may read / write.
    A write subsumes a read of the same slot (read-modify-write
    accessors record only the write). *)

val spec : ?reads:string list -> ?writes:string list -> unit -> spec

type model = {
  slots : string list;  (** the known slot vocabulary *)
  especs : (string * string * spec) list;
      (** (subsystem, handler, declared effect spec) *)
}

type finding = { check : string; subject : string; msg : string }

exception Violation of finding
(** Raised by the runtime validator on effect drift (validate mode). *)

val wildcard : string
(** ["fd:*"] — matches any [fd:<kind>] pseudo-slot. Generic vfs
    handlers that dispatch file_ops on arbitrary fd kinds declare it.
    Wildcard accesses are excluded from race analysis and relation
    inference (they name no single object). *)

val covers : declared:string list -> string -> bool
(** Does a declared slot list cover an observed slot (wildcard-aware)? *)

(** {1 Runtime switches} *)

val hooks_enabled : unit -> bool
(** Effect-count recording hooks; default on, [HEALER_EFFECT_HOOKS=0]
    disables. Executions are bit-identical either way. *)

val set_hooks : bool -> unit

val validate_enabled : unit -> bool
(** Trace recording + per-call declared-vs-observed validation; armed
    by [HEALER_DEBUG_VALIDATE] / {!set_validate} (wired through
    [Progcheck.set_debug] like the lock validator). *)

val set_validate : bool -> unit

(** {1 Slot interning}

    Observed accesses are accounted in dense int slots into [State]'s
    effect-count arrays, so the record hook on the execution hot path
    is an array increment. Subsystem modules intern their slots at
    module-init time; read-only after [Kernel.force_init]. *)

val slot : string -> int
(** Intern a slot name (idempotent). *)

val slot_name : int -> string
val n_slots : unit -> int
val registered_slots : unit -> string list

(** {1 Known-race catalog} *)

type known_race = { kslot : string; parties : string list; bug : string }
(** A deliberately-unguarded fixture race: the slot, the full set of
    handlers racing on it, and the version-gated bug it models. *)

val register_race : slot:string -> parties:string list -> bug:string -> unit
val registered_races : unit -> known_race list

(** {1 Static checks} *)

val check_model :
  lock:Lock.model -> ?handlers:(string * string) list -> model -> finding list
(** Effect-model drift: [effect-unknown-slot] (slot outside the
    vocabulary), [effect-orphan-spec] (spec for a nonexistent handler,
    when a handler table is given), [effect-missing-spec] (lock spec
    declares mutations but no effect spec exists),
    [effect-guard-mismatch] (lock-spec [touches] not acknowledged as
    writes). Writes beyond the lock spec's [touches] are legal — that
    unguarded surplus is what {!races} inspects. *)

val check_trace :
  model -> subsystem:string -> handler:string -> (bool * string) list ->
  finding list
(** Validate one call's observed accesses [(is_write, slot)] against
    the handler's declared spec: [effect-undeclared-read] /
    [effect-undeclared-write]. *)

val races :
  lock:Lock.model -> ?known:known_race list -> model -> finding list
(** Eraser-style lockset race detector over declared accesses: for
    every (non-wildcard) slot, a write/write or write/read handler
    pair whose declared locksets do not intersect is a candidate race
    — [race-known-bug] (both parties of a registered fixture race),
    [race-unguarded-slot] (a side holds no lock at all),
    [race-order-masked] (a guarding class precedes both locksets in
    the declared order graph), [race-disjoint-locksets] otherwise. *)

val predicted_edges : model -> (string * string * string) list
(** The write(slot)→read(slot) handler-pair graph:
    [(writer, reader, slot)] influence edges predicted by shared
    state, for the relation-inference pass. Deduplicated, sorted;
    wildcards and self-pairs excluded. *)
