(** Netlink message layer: rtnetlink (RTM_NEWLINK / DELLINK / SETLINK /
    GETLINK with dump, RTM_NEWADDR / GETADDR, RTM_NEWQDISC) and generic
    netlink (CTRL_CMD_GETFAMILY runtime family-id resolution, simulated
    nlctrl / devlink / ethtool families).

    The rtnetlink handlers operate on {!Netdev}'s device table, so
    netlink calls genuinely unlock netdev branches (the paper's
    cross-subsystem influence relations).

    Injected bugs: [nla_parse_nested] (KMSAN, 5.4+, truncated
    IFLA_INFO_KIND "vlan"), [rtnl_dump_ifinfo] (KASAN, 5.6+,
    dump-resume with a stale offset after deletions),
    [genl_rcv_msg] (KASAN UAF, 5.11+, send on a socket bound to an
    unregistered family). *)

type nl_proto = Route | Generic

type nl_sock = {
  nproto : nl_proto;
  mutable memberships : int;
  mutable bound_family : int option;
  mutable dump_offset : int;
  mutable dump_total : int;  (** -1 = no dump in progress. *)
  mutable queued : int;
}

type genl_family = {
  gname : string;
  mutable gid : int;
  mutable registered : bool;
  mutable sends : int;
}

type State.fd_kind += Nl_sock of nl_sock
type State.global += Genl_families of (string, genl_family) Hashtbl.t
type State.global += Nl_addrs of (string, int64 list) Hashtbl.t

val family : State.t -> string -> genl_family option
(** Look up a generic-netlink family by name (registered or not). *)

val family_by_id : State.t -> int -> genl_family option
(** Look up a {e registered} family by its current runtime id. *)

val sub : Subsystem.t
