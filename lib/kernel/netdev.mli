(** Network device subsystem: interface management, macvlan upper
    devices, qdisc configuration, packet TX/RX (the e1000 model).

    Injected bugs: [dev_ioctl_warn], [e1000_clean],
    [macvlan_broadcast], [qdisc_calculate_pkt_len]. *)

type netdev = {
  dname : string;
  mutable up : bool;
  mutable qdisc_limit : int option;  (** None = default pfifo. *)
  mutable last_xmit : int;  (** Op tick of the last transmit. *)
  mutable macvlan_dying : bool;
}

type State.global += Netdevs of (string, netdev) Hashtbl.t
type State.fd_kind += Packet_sock

(** {2 Device-table accessors}

    The rtnetlink subsystem ({!Netlink}) manages the same device table
    through RTM_NEWLINK / RTM_DELLINK / RTM_SETLINK / RTM_NEWQDISC, so
    the two subsystems share genuine cross-subsystem influence
    relations (a netlink call unlocks packet-socket transmit paths). *)

val rtnl : Lock.cls
(** The rtnl_mutex analogue guarding the device table (["netdevs"])
    and the rtnetlink address table (["nl_addrs"]); shared with
    {!Netlink}'s RTM handlers, which mutate the same tables. *)

val devs_of : State.t -> (string, netdev) Hashtbl.t
(** The live device table. Raises [Failure] before {!sub}'s init ran. *)

val fresh : string -> netdev
(** A new down device with default qdisc. *)

val lookup : State.t -> string -> netdev option
val sorted_names : State.t -> string list
(** Device names in lexicographic order (the dump iteration order). *)

val device_count : State.t -> int

val install : State.t -> netdev -> unit
(** Insert (or replace) a device under its own name. *)

val remove : State.t -> string -> bool
(** Unregister a device; false when absent. *)

val sub : Subsystem.t
