(** Compile once, execute many: a {!Prog.t} lowered once into flat
    per-call instruction records the executor can run repeatedly with
    zero per-call allocation in steady state.

    The interpreter ({!Exec.resolve}) rebuilds every call's
    {!Healer_kernel.Arg.t} tree on each run to substitute resource
    results. Compilation builds that tree once, leaving a mutable
    {!Healer_kernel.Arg.slot} cell at each [Res_ref] position and
    recording [(slot, producer index)] patch points; before a call
    executes, {!patch} fills its slots from the per-run results array
    ({!set_resval}) — two array reads and a pointer store per
    reference. The interpreter remains the differential oracle: under
    [HEALER_DEBUG_VALIDATE] every compiled run is replayed interpreted
    and compared bit-for-bit (see {!Exec.run_compiled}). *)

module K = Healer_kernel

type ccall = {
  syscall : Healer_syzlang.Syscall.t;
  prep : K.Kernel.prepared;  (** dispatch resolved at compile time *)
  args : K.Arg.t list;  (** shared argument skeleton *)
  slots : K.Arg.slot array;  (** patch points, traversal order *)
  producers : int array;  (** producer call index per slot; -1 = none *)
}
(** One compiled call. [slots] and [producers] are parallel arrays. *)

type t
(** A compiled program: the source {!Prog.t}, its compiled calls, and
    a private per-run results array. Derived forms ({!append},
    {!remove}, {!insert}, {!sub}) share [ccall]s — including their
    mutable slots — with the parent where the edit permits; this is
    safe because every slot of a call is patched immediately before
    that call runs, but it confines any given family of compiled forms
    to a single domain at a time. *)

val compile : Prog.t -> t
val compile_call : Prog.call -> ccall

val of_calls : Prog.t -> ccall array -> t
(** Assemble a compiled form from per-call compiled pieces (the
    prefix-cache reuses trie-resident [ccall]s this way). The array
    length must equal [Prog.length]. *)

val prog : t -> Prog.t
val length : t -> int
val call : t -> int -> ccall

(** {2 Run-time patching} *)

val reset_resvals : t -> unit
(** Invalidate all per-run results (every producer reads as -1). Call
    once before each run. *)

val set_resval : t -> int -> int64 -> unit
(** Record call [i]'s resource value: its return value on success, -1
    on error or skip. *)

val patch : t -> int -> unit
(** Fill call [i]'s slots from the recorded results. Allocation-free. *)

(** {2 Derived forms}

    Each mirrors the corresponding {!Prog} edit but recompiles only
    the calls whose argument skeletons the edit invalidates —
    surviving calls are shared, with producer indices remapped (a
    reference degraded by {!remove} keeps its slot with producer -1,
    patching to the invalid resource value exactly as the interpreter
    resolves the [Res_special (-1)] the {!Prog} edit writes). *)

val append : t -> Prog.call -> t
val remove : t -> int -> t
val insert : t -> int -> Prog.call -> t
val sub : t -> int -> t
