type t = {
  vms : Vm.t array;
  mutable cursor : int;
  cache : Exec_cache.t option;  (* shared: every VM boots identically *)
}

let create ?san ?features ?exec_cache ~version ~size () =
  if size <= 0 then invalid_arg "Pool.create: size must be positive";
  let vms = Array.init size (fun id -> Vm.create ?san ?features ~version ~id ()) in
  let enabled =
    match exec_cache with Some b -> b | None -> Exec_cache.enabled_from_env ()
  in
  let cache =
    if enabled then Some (Exec_cache.create ?san ?features ~version ()) else None
  in
  { vms; cursor = 0; cache }

let size p = Array.length p.vms

let next p =
  let vm = p.vms.(p.cursor) in
  p.cursor <- (p.cursor + 1) mod Array.length p.vms;
  vm

let run p ?fault_call prog = Vm.run (next p) ?fault_call prog
let run_probe p prog = Vm.run_probe (next p) ?cache:p.cache prog
let cache_stats p = Option.map Exec_cache.stats p.cache
let cache p = p.cache

let fold f init p = Array.fold_left f init p.vms

let total_execs p = fold (fun acc vm -> acc + (Vm.stats vm).Vm.execs) 0 p
let total_crashes p = fold (fun acc vm -> acc + (Vm.stats vm).Vm.crashes) 0 p
let total_resets p = fold (fun acc vm -> acc + (Vm.stats vm).Vm.resets) 0 p
let iter f p = Array.iter f p.vms
