type t =
  | Int of int64
  | Res_ref of int
  | Res_special of int64
  | Str of string
  | Buf of bytes
  | Group of t list
  | Ptr of t
  | Null
  | Vma of int64

let rec refs = function
  | Res_ref i -> [ i ]
  | Group vs -> List.concat_map refs vs
  | Ptr v -> refs v
  | Int _ | Res_special _ | Str _ | Buf _ | Null | Vma _ -> []

(* Allocation-free, early-exiting forms of the two questions the hot
   paths ask of [refs]: does this value mention call [i], and do all
   its references land strictly below [k]? *)
let rec mem_ref i = function
  | Res_ref j -> j = i
  | Group vs -> List.exists (mem_ref i) vs
  | Ptr v -> mem_ref i v
  | Int _ | Res_special _ | Str _ | Buf _ | Null | Vma _ -> false

let rec refs_below k = function
  | Res_ref i -> i >= 0 && i < k
  | Group vs -> List.for_all (refs_below k) vs
  | Ptr v -> refs_below k v
  | Int _ | Res_special _ | Str _ | Buf _ | Null | Vma _ -> true

(* Untouched subtrees keep their physical identity, so rewrites that
   change nothing (e.g. removing a later call) return [v] itself —
   downstream consumers can then memoize per-value work by [==]. *)
let rec map_refs f v =
  match v with
  | Res_ref i -> ( match f i with Some v' -> v' | None -> v)
  | Group vs ->
    let vs' = List.map (map_refs f) vs in
    if List.for_all2 ( == ) vs' vs then v else Group vs'
  | Ptr inner ->
    let inner' = map_refs f inner in
    if inner' == inner then v else Ptr inner'
  | Int _ | Res_special _ | Str _ | Buf _ | Null | Vma _ -> v

let equal = ( = )

(* The byte-size model shared by len[] resolution (Value_gen) and the
   len-consistency check (Progcheck): scalars are 8 bytes, pointers are
   transparent (a len names the pointee's payload), null is empty. *)
let rec byte_size = function
  | Int _ | Res_ref _ | Res_special _ | Vma _ -> 8
  | Str s -> String.length s
  | Buf b -> Bytes.length b
  | Group vs -> List.fold_left (fun acc v -> acc + byte_size v) 0 vs
  | Ptr v -> byte_size v
  | Null -> 0

let rec pp ppf = function
  | Int v -> Fmt.pf ppf "0x%Lx" v
  | Res_ref i -> Fmt.pf ppf "r%d" i
  | Res_special v -> Fmt.pf ppf "%Ld" v
  | Str s -> Fmt.pf ppf "%S" s
  | Buf b -> Fmt.pf ppf "\"%d bytes\"" (Bytes.length b)
  | Group vs -> Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") pp) vs
  | Ptr v -> Fmt.pf ppf "&%a" pp v
  | Null -> Fmt.string ppf "nil"
  | Vma a -> Fmt.pf ppf "vma(0x%Lx)" a
