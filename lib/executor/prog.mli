(** Test-case programs: sequences of system calls with symbolic
    arguments, in execution order.

    Programs maintain the invariant that every [Res_ref i] inside call
    [k] satisfies [i < k] (references point strictly backwards).
    Editing operations ({!remove}, {!insert}) preserve it by shifting
    or degrading references. *)

type call = { syscall : Healer_syzlang.Syscall.t; args : Value.t list }
type t = { calls : call array }

val of_list : call list -> t
val length : t -> int
val call : t -> int -> call
val empty : t

val append : t -> call -> t

val remove : t -> int -> t
(** [remove p i] deletes call [i]. References to [i] degrade to
    [Res_special (-1L)]; references to later calls shift down. *)

val insert : t -> int -> call -> t
(** [insert p i c] places [c] at index [i] (existing calls shift up;
    their references are renumbered). The inserted call's own
    references must already be valid for the prefix [0..i-1]. *)

val sub : t -> int -> t
(** [sub p n] is the prefix of length [n]. *)

val refs_of_call : call -> int list
val well_formed : t -> bool
(** All references point strictly backwards. Early-exits on the first
    violation. *)

val uses_result_of : t -> int -> bool
(** [uses_result_of p i] — does any later call reference call [i]?
    Early-exits on the first use. *)

(** Growable program under construction. Generation and mutation
    insert many calls one at a time; on the immutable {!t} each
    insertion copies the whole program, while a builder pays one
    amortized slot per call and converts to {!t} once. *)
module Builder : sig
  type prog := t
  type t

  val create : unit -> t
  val of_prog : prog -> t
  val length : t -> int
  val call : t -> int -> call

  val push : t -> call -> unit
  (** Append at the end. *)

  val insert : t -> int -> call -> unit
  (** In-place {!Prog.insert}: shifts later calls up and renumbers
      their references. *)

  val to_prog : t -> prog
end

val pp : Format.formatter -> t -> unit
(** Syzlang-program-like rendering: one call per line, results named
    [r0], [r1], ... *)

val to_string : t -> string
