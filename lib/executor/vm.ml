module K = Healer_kernel

type stats = {
  mutable execs : int;
  mutable crashes : int;
  mutable resets : int;
}

type t = {
  vm_id : int;
  mutable kernel : K.Kernel.t;
  mutable is_crashed : bool;
  cov : K.Coverage.t;  (* reused across every run on this VM *)
  st : stats;
  (* Small MRU memo of compiled forms, keyed by physical program
     identity: re-executions of the same program object (observation
     re-runs, benchmarks) skip recompilation entirely. *)
  mutable compiled : (Prog.t * Compiled.t) list;
}

let create ?(san = K.Sanitizer.default) ?(features = []) ~version ~id () =
  {
    vm_id = id;
    kernel = K.Kernel.boot ~san ~features ~version ();
    is_crashed = false;
    cov = K.Coverage.create ();
    st = { execs = 0; crashes = 0; resets = 0 };
    compiled = [];
  }

let memo_size = 8

let rec take k = function
  | [] -> []
  | x :: rest -> if k <= 0 then [] else x :: take (k - 1) rest

let compiled_of vm p =
  let rec find = function
    | [] -> None
    | (q, c) :: rest -> if q == p then Some c else find rest
  in
  match find vm.compiled with
  | Some c -> c
  | None ->
    let c = Compiled.compile p in
    vm.compiled <- (p, c) :: take (memo_size - 1) vm.compiled;
    c

let id vm = vm.vm_id
let crashed vm = vm.is_crashed

let reset vm =
  if vm.is_crashed then begin
    vm.kernel <- K.Kernel.reboot vm.kernel;
    vm.is_crashed <- false;
    vm.st.resets <- vm.st.resets + 1
  end

let finish vm result =
  vm.st.execs <- vm.st.execs + 1;
  (match result.Exec.crash with
  | Some _ ->
    vm.is_crashed <- true;
    vm.st.crashes <- vm.st.crashes + 1
  | None -> ());
  result

let run vm ?fault_call prog =
  reset vm;
  let kernel, result =
    if Exec.compiled_enabled () then
      Exec.run_compiled ?fault_call ~cov:vm.cov vm.kernel (compiled_of vm prog)
    else Exec.run ?fault_call ~cov:vm.cov vm.kernel prog
  in
  vm.kernel <- kernel;
  finish vm result

let run_probe vm ?cache prog =
  match cache with
  | None -> run vm prog
  | Some c ->
    (* Stats and crash bookkeeping mirror [run] exactly so campaign
       counters are identical with the cache on or off; [vm.kernel] is
       left untouched (probes always start from a fresh logical boot,
       so the VM's own state never matters to them). *)
    reset vm;
    finish vm (Exec_cache.run c ~cov:vm.cov prog)

let stats vm = vm.st
let version vm = K.Kernel.version vm.kernel
