module K = Healer_kernel

type stats = {
  mutable execs : int;
  mutable crashes : int;
  mutable resets : int;
}

type t = {
  vm_id : int;
  mutable kernel : K.Kernel.t;
  mutable is_crashed : bool;
  cov : K.Coverage.t;  (* reused across every run on this VM *)
  st : stats;
}

let create ?(san = K.Sanitizer.default) ?(features = []) ~version ~id () =
  {
    vm_id = id;
    kernel = K.Kernel.boot ~san ~features ~version ();
    is_crashed = false;
    cov = K.Coverage.create ();
    st = { execs = 0; crashes = 0; resets = 0 };
  }

let id vm = vm.vm_id
let crashed vm = vm.is_crashed

let reset vm =
  if vm.is_crashed then begin
    vm.kernel <- K.Kernel.reboot vm.kernel;
    vm.is_crashed <- false;
    vm.st.resets <- vm.st.resets + 1
  end

let finish vm result =
  vm.st.execs <- vm.st.execs + 1;
  (match result.Exec.crash with
  | Some _ ->
    vm.is_crashed <- true;
    vm.st.crashes <- vm.st.crashes + 1
  | None -> ());
  result

let run vm ?fault_call prog =
  reset vm;
  let kernel, result = Exec.run ?fault_call ~cov:vm.cov vm.kernel prog in
  vm.kernel <- kernel;
  finish vm result

let run_probe vm ?cache prog =
  match cache with
  | None -> run vm prog
  | Some c ->
    (* Stats and crash bookkeeping mirror [run] exactly so campaign
       counters are identical with the cache on or off; [vm.kernel] is
       left untouched (probes always start from a fresh logical boot,
       so the VM's own state never matters to them). *)
    reset vm;
    finish vm (Exec_cache.run c ~cov:vm.cov prog)

let stats vm = vm.st
let version vm = K.Kernel.version vm.kernel
