(** A pool of virtual machines, dispatched round-robin.

    The paper's experiments give each fuzzer several QEMU instances;
    the pool abstracts picking the next available one and aggregating
    their statistics. The pool also owns the (optional) prefix
    execution cache shared by probe runs: all its VMs boot the same
    config, so one cache serves them all regardless of round-robin
    order. *)

type t

val create :
  ?san:Healer_kernel.Sanitizer.config ->
  ?features:string list ->
  ?exec_cache:bool ->
  version:Healer_kernel.Version.t ->
  size:int ->
  unit ->
  t
(** [exec_cache] defaults to {!Exec_cache.enabled_from_env} (the
    [HEALER_EXEC_CACHE] toggle). *)

val size : t -> int
val next : t -> Vm.t
(** Round-robin choice. *)

val run : t -> ?fault_call:int -> Prog.t -> Exec.run_result
(** Run on the next VM — the main fuzzing loop and fault-injection
    path; never touches the cache. *)

val run_probe : t -> Prog.t -> Exec.run_result
(** Run on the next VM through the shared prefix cache (when enabled).
    Bit-identical results to {!run} without [fault_call]; used by
    minimization, dynamic relation learning and triage reproducer
    probes. *)

val cache_stats : t -> Exec_cache.stats option
(** Live counters of the shared cache; [None] when disabled. *)

val cache : t -> Exec_cache.t option

val total_execs : t -> int
val total_crashes : t -> int
val total_resets : t -> int
val iter : (Vm.t -> unit) -> t -> unit
