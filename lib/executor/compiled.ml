module K = Healer_kernel
module Syscall = Healer_syzlang.Syscall

(* A compiled call: the argument skeleton is the fully-resolved
   [K.Arg.t] tree the interpreter would rebuild per run, allocated
   once at compile time. Every [Res_ref] in the source lowers to a
   mutable [K.Arg.Slot] cell recorded in [slots]; [producers.(j)] is
   the index of the call whose result fills [slots.(j)] (-1 for a
   reference that can never resolve — it patches to the invalid
   resource value, exactly how the interpreter degrades a dangling or
   failed reference). Patching before each execution is two array
   reads and a field store per reference: zero allocation. *)
type ccall = {
  syscall : Syscall.t;
  prep : K.Kernel.prepared;  (* handler + subsystem, resolved once *)
  args : K.Arg.t list;  (* skeleton, shared by every run *)
  slots : K.Arg.slot array;  (* patch points, source traversal order *)
  producers : int array;  (* producer call index per slot; -1 = none *)
}

type t = {
  prog : Prog.t;  (* the source program, kept in lockstep *)
  calls : ccall array;
  (* Per-run scratch: the resource value produced by each call
     (retval on success, -1 otherwise), reset before every run. Owned
     by this form — derived forms share [ccall]s but never scratch. *)
  resvals : int64 array;
}

let invalid = -1L

let prog t = t.prog
let length t = Array.length t.calls

let call t i =
  if i < 0 || i >= Array.length t.calls then
    invalid_arg (Printf.sprintf "Compiled.call: index %d out of range" i);
  t.calls.(i)

(* Mirrors [Exec.resolve] shape-for-shape; the HEALER_DEBUG_VALIDATE
   differential oracle enforces that the two stay equivalent. A
   [Res_ref] under a [Ptr] lowers to [Rec [Slot]] where the
   interpreter builds [Rec [Int]] — indistinguishable through the
   [K.Arg] accessors. *)
let rec lower patches (v : Value.t) : K.Arg.t =
  match v with
  | Value.Int x -> K.Arg.Int x
  | Value.Res_special x -> K.Arg.Int x
  | Value.Res_ref i ->
    let s = K.Arg.slot invalid in
    patches := (s, i) :: !patches;
    K.Arg.Slot s
  | Value.Str s -> K.Arg.Str s
  | Value.Buf b -> K.Arg.Buf b
  | Value.Group vs -> K.Arg.Rec (List.map (lower patches) vs)
  | Value.Ptr inner -> (
    match lower patches inner with
    | K.Arg.Rec _ as r -> r
    | K.Arg.Str _ as s -> s
    | K.Arg.Buf _ as b -> b
    | K.Arg.Int _ as x -> K.Arg.Rec [ x ]
    | K.Arg.Slot _ as s -> K.Arg.Rec [ s ]
    | K.Arg.Nothing -> K.Arg.Nothing)
  | Value.Null -> K.Arg.Nothing
  | Value.Vma a -> K.Arg.Int a

let compile_call (c : Prog.call) =
  let patches = ref [] in
  let args = List.map (lower patches) c.Prog.args in
  let ps = List.rev !patches in
  {
    syscall = c.Prog.syscall;
    prep = K.Kernel.prepare c.Prog.syscall;
    args;
    slots = Array.of_list (List.map fst ps);
    producers = Array.of_list (List.map snd ps);
  }

let of_calls prog calls =
  if Array.length calls <> Prog.length prog then
    invalid_arg "Compiled.of_calls: call count mismatch";
  { prog; calls; resvals = Array.make (Array.length calls) invalid }

let compile (p : Prog.t) =
  of_calls p (Array.init (Prog.length p) (fun i -> compile_call (Prog.call p i)))

(* ---- run-time patching ---- *)

let reset_resvals t = Array.fill t.resvals 0 (Array.length t.resvals) invalid
let set_resval t i v = t.resvals.(i) <- v

let patch t i =
  let c = Array.unsafe_get t.calls i in
  let slots = c.slots and producers = c.producers in
  let resvals = t.resvals in
  let nr = Array.length resvals in
  for j = 0 to Array.length producers - 1 do
    let p = Array.unsafe_get producers j in
    (Array.unsafe_get slots j).K.Arg.sv <-
      (if p >= 0 && p < nr then Array.unsafe_get resvals p else invalid)
  done

(* ---- derived forms (share compiled calls where the edit allows) ----

   The derived form's [prog] is exactly what the corresponding
   [Prog.append]/[remove]/[insert] produces, but calls whose argument
   skeletons survive the edit are shared instead of recompiled: only
   the producer-index arrays are rewritten (and only when an index
   actually moves). Sharing includes the mutable slots — safe because
   every run patches every slot of a call before executing it, and
   compiled forms are confined to one domain. A reference the edit
   degrades to the invalid resource keeps its slot with producer -1,
   which patches to the same value the interpreter resolves
   [Res_special (-1)] to. *)

let remap f (c : ccall) =
  let n = Array.length c.producers in
  let rec changed j = j < n && (f c.producers.(j) <> c.producers.(j) || changed (j + 1)) in
  if not (changed 0) then c
  else { c with producers = Array.map f c.producers }

let append t (c : Prog.call) =
  let n = Array.length t.calls in
  let calls = Array.make (n + 1) (compile_call c) in
  Array.blit t.calls 0 calls 0 n;
  of_calls (Prog.append t.prog c) calls

let remove t i =
  let n = Array.length t.calls in
  if i < 0 || i >= n then invalid_arg "Compiled.remove: index out of range";
  let fix p = if p = i then -1 else if p > i then p - 1 else p in
  let calls =
    Array.init (n - 1) (fun k ->
        if k < i then t.calls.(k) else remap fix t.calls.(k + 1))
  in
  of_calls (Prog.remove t.prog i) calls

let insert t i (c : Prog.call) =
  let n = Array.length t.calls in
  if i < 0 || i > n then invalid_arg "Compiled.insert: index out of range";
  let fix p = if p >= i then p + 1 else p in
  let calls =
    Array.init (n + 1) (fun k ->
        if k < i then t.calls.(k)
        else if k = i then compile_call c
        else remap fix t.calls.(k - 1))
  in
  of_calls (Prog.insert t.prog i c) calls

let sub t n =
  if n < 0 || n > Array.length t.calls then invalid_arg "Compiled.sub: bad length";
  of_calls (Prog.sub t.prog n) (Array.sub t.calls 0 n)
