(** Program-level static validator: typed dataflow checking of
    {!Prog.t} against a compiled target.

    Every call is checked deeply — arity, constants, flag subsets,
    integer widths/ranges, buffer kinds, union arms, array bounds,
    [len\[...\]] consistency with the sized sibling — and every
    resource reference is checked to point strictly backwards to a
    call producing a compatible kind (honouring inheritance).
    Diagnostics reuse the {!Healer_util.Diagnostic} currency of the
    description analyzer: stable check IDs ([prog-*]), severities,
    positions ([line] is the 1-based call index).

    Errors mark programs the generator / mutator / minimizer /
    serializer must never emit; warnings mark suspicious-but-legal
    shapes (dead producers, uses after a closing call, references in
    output-only slots) that real fuzzing legitimately explores. *)

val checks : (string * Healer_util.Diagnostic.severity * string) list
(** The check catalog: (stable ID, severity, one-line description). *)

val check :
  ?src:string -> Healer_syzlang.Target.t -> Prog.t -> Healer_util.Diagnostic.t list
(** All diagnostics for a program, sorted errors-first then by call
    index. [src] names the program in positions (e.g. a corpus file). *)

val errors :
  ?src:string -> Healer_syzlang.Target.t -> Prog.t -> Healer_util.Diagnostic.t list
(** Only the [Error]-severity diagnostics of {!check}. *)

val is_clean : Healer_syzlang.Target.t -> Prog.t -> bool
(** No [Error]-severity diagnostics (warnings are allowed). *)

(** {1 Debug enforcement}

    The [HEALER_DEBUG_VALIDATE] contract: when enabled, the program
    pipeline (generation, mutation, minimization, decoding) asserts
    validator-cleanliness on everything it emits and raises {!Invalid}
    with the diagnostics and the offending program's text otherwise.
    Enabled by the [HEALER_DEBUG_VALIDATE] environment variable (any
    value except [0 | false | no | off | empty]), or programmatically;
    the test suite turns it on, benchmarks leave it off. *)

exception Invalid of string

val set_debug : bool -> unit
(** Also arms/disarms the runtime lockdep validator
    ({!Healer_kernel.Lock.set_validate}): one switch for the whole
    debug-validation contract. *)

val debug_enabled : unit -> bool

val debug_check : what:string -> Healer_syzlang.Target.t -> Prog.t -> unit
(** [debug_check ~what target p] raises {!Invalid} if debug validation
    is enabled and [p] has validator errors; [what] names the emitting
    stage (e.g. ["Gen.generate"]) in the failure message. *)

(**/**)

val is_closer : Healer_syzlang.Syscall.t -> bool
(** Exposed for tests: the closing-call heuristic used by the
    use-after-close warning (base name contains close / destroy /
    delete / free). *)
