module K = Healer_kernel

type stats = {
  mutable hits : int;
  mutable full_hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable flushes : int;
  mutable resumed_calls : int;
  mutable executed_calls : int;
  mutable compiled_calls : int;
  mutable reused_ccalls : int;
}

(* One trie node per cached call prefix; the edge label is the call's
   wire encoding ([Serializer.encode_call]), so the cache key is
   exactly (boot config, encoded call prefix). [result] is the
   call_result of the prefix's last call; walking a path therefore
   reconstructs the whole per-call result array. [snap] — when present
   — is the kernel state right after that prefix, resumable via
   [Kernel.copy]. *)
type node = {
  children : (string, node) Hashtbl.t;
  result : Exec.call_result;
  mutable snap : K.Kernel.t option;
  mutable stamp : int;  (* LRU clock of the last snapshot use *)
  (* The call's compiled form, shared by every program whose prefix
     reaches this node (the edge encoding pins the call's bytes, so
     one compiled form fits all of them). A mutate→execute step then
     recompiles only the changed suffix. Valid to share because each
     run patches a call's slots right before executing it and the
     cache is single-domain. *)
  mutable ccall : Compiled.ccall option;
}

type memo_entry = {
  m_prog : Prog.t;
  m_pkey : string;  (* whole-program wire encoding, the [full] key *)
  m_ends : int array;  (* per-call end offsets into [m_pkey] *)
  (* Crash-free per-call results, once known: a repeat probe then
     returns without touching the key at all. *)
  mutable m_calls : Exec.call_result array option;
}

type t = {
  capacity : int;
  node_capacity : int;
  template : K.Kernel.t;  (* encodes the boot config; never executed on *)
  root : (string, node) Hashtbl.t;
  (* Whole-program fast path: encoded program -> its per-call results,
     for crash-free runs. Probes repeated verbatim (Prog_cov.observe,
     warm minimize sweeps) then cost one lookup instead of a trie
     walk. Flushed with the trie. *)
  full : (string, Exec.call_result array) Hashtbl.t;
  (* Per-physical-program memo: probe loops re-run the same [Prog.t]
     values many times (warm minimize sweeps, corpus re-probes), and
     for a full hit the serialization pass plus hashing the multi-KB
     key IS the entire cost. Everything memoized here is
     content-derived — programs are immutable, results deterministic —
     so entries need no invalidation and survive flushes. MRU list,
     newest first. *)
  mutable memo : memo_entry list;
  buf : Buffer.t;  (* scratch for key encoding *)
  st : stats;
  mutable snaps : node list;  (* nodes currently holding a snapshot *)
  mutable nodes : int;
  mutable clock : int;
}

let enabled_from_env () =
  match Sys.getenv_opt "HEALER_EXEC_CACHE" with
  | Some ("0" | "false" | "off" | "no") -> false
  | Some _ | None -> true

let create ?(capacity = 192) ?(node_capacity = 8192) ?san ?features ~version ()
    =
  if capacity <= 0 then invalid_arg "Exec_cache.create: capacity must be > 0";
  if node_capacity < capacity then
    invalid_arg "Exec_cache.create: node_capacity < capacity";
  {
    capacity;
    node_capacity;
    template = K.Kernel.boot ?san ?features ~version ();
    root = Hashtbl.create 64;
    full = Hashtbl.create 256;
    memo = [];
    buf = Buffer.create 256;
    st =
      {
        hits = 0;
        full_hits = 0;
        misses = 0;
        evictions = 0;
        flushes = 0;
        resumed_calls = 0;
        executed_calls = 0;
        compiled_calls = 0;
        reused_ccalls = 0;
      };
    snaps = [];
    nodes = 0;
    clock = 0;
  }

let stats t = t.st
let snapshot_count t = List.length t.snaps
let node_count t = t.nodes

let hit_rate t =
  let total = t.st.hits + t.st.misses in
  if total = 0 then 0.0 else float_of_int t.st.hits /. float_of_int total

let has_snap node = match node.snap with Some _ -> true | None -> false

let memo_size = 128

let rec take n = function
  | x :: tl when n > 0 -> x :: take (n - 1) tl
  | _ -> []

(* One serialization pass yields both the whole-program key and — by
   slicing at the recorded call boundaries — the per-call trie edge
   labels. Memoized per physical program (see [memo]). *)
let encode t p n =
  match List.find_opt (fun e -> e.m_prog == p) t.memo with
  | Some e -> e
  | None ->
    let ends = Array.make n 0 in
    Buffer.clear t.buf;
    for i = 0 to n - 1 do
      Serializer.put_call t.buf (Prog.call p i);
      ends.(i) <- Buffer.length t.buf
    done;
    let e =
      { m_prog = p; m_pkey = Buffer.contents t.buf; m_ends = ends;
        m_calls = None }
    in
    t.memo <- take memo_size (e :: t.memo);
    e

let evict_one t =
  match t.snaps with
  | [] -> ()
  | first :: rest ->
    let victim =
      List.fold_left (fun v n -> if n.stamp < v.stamp then n else v) first rest
    in
    victim.snap <- None;
    t.snaps <- List.filter (fun n -> n != victim) t.snaps;
    t.st.evictions <- t.st.evictions + 1

let put_snap t node kernel =
  if not (has_snap node) then begin
    node.snap <- Some kernel;
    node.stamp <- t.clock;
    t.snaps <- node :: t.snaps;
    if List.length t.snaps > t.capacity then evict_one t
  end

(* Dropping the whole trie when the node bound is hit keeps eviction
   trivially correct (results are deterministic, so losing entries
   only costs future hits) and avoids subtree surgery. *)
let flush t =
  Hashtbl.reset t.root;
  Hashtbl.reset t.full;
  t.st.evictions <- t.st.evictions + List.length t.snaps;
  t.snaps <- [];
  t.nodes <- 0;
  t.st.flushes <- t.st.flushes + 1

let clear t = flush t

let run t ?cov (p : Prog.t) : Exec.run_result =
  let n = Prog.length p in
  if n = 0 then snd (Exec.run ?cov t.template p)
  else begin
    t.clock <- t.clock + 1;
    if t.nodes >= t.node_capacity then flush t;
    let entry = encode t p n in
    let pkey = entry.m_pkey and ends = entry.m_ends in
    let full_hit calls =
      t.st.hits <- t.st.hits + 1;
      t.st.full_hits <- t.st.full_hits + 1;
      t.st.resumed_calls <- t.st.resumed_calls + n;
      { Exec.calls = Array.copy calls; crash = None }
    in
    match entry.m_calls with
    | Some calls -> full_hit calls
    | None ->
    match Hashtbl.find_opt t.full pkey with
    | Some calls ->
      entry.m_calls <- Some calls;
      full_hit calls
    | None ->
    let keys =
      Array.init n (fun i ->
          let start = if i = 0 then 0 else ends.(i - 1) in
          String.sub pkey start (ends.(i) - start))
    in
    let path : node option array = Array.make n None in
    let rec walk children i =
      if i >= n then i
      else
        match Hashtbl.find_opt children keys.(i) with
        | Some child ->
          path.(i) <- Some child;
          walk child.children (i + 1)
        | None -> i
    in
    let matched = walk t.root 0 in
    if matched = n then begin
      (* The entire program is cached (nodes exist only for calls that
         completed without crashing, so the run necessarily ended
         crash-free): no execution at all. *)
      t.st.hits <- t.st.hits + 1;
      t.st.full_hits <- t.st.full_hits + 1;
      t.st.resumed_calls <- t.st.resumed_calls + n;
      let calls = Array.init n (fun i -> (Option.get path.(i)).result) in
      let stored = Array.copy calls in
      Hashtbl.replace t.full pkey stored;
      entry.m_calls <- Some stored;
      Array.iter
        (function
          | Some nd when has_snap nd -> nd.stamp <- t.clock
          | Some _ | None -> ())
        path;
      { Exec.calls; crash = None }
    end
    else begin
      let resume = ref 0 in
      for i = 0 to matched - 1 do
        match path.(i) with
        | Some nd when has_snap nd -> resume := i + 1
        | Some _ | None -> ()
      done;
      let k = !resume in
      let kernel =
        if k = 0 then K.Kernel.reboot t.template
        else begin
          let nd = Option.get path.(k - 1) in
          nd.stamp <- t.clock;
          K.Kernel.copy (match nd.snap with Some s -> s | None -> assert false)
        end
      in
      if k > 0 then t.st.hits <- t.st.hits + 1 else t.st.misses <- t.st.misses + 1;
      t.st.resumed_calls <- t.st.resumed_calls + k;
      let prefix = Array.init k (fun i -> (Option.get path.(i)).result) in
      let record ~ccall idx cr kern =
        t.st.executed_calls <- t.st.executed_calls + 1;
        let children =
          if idx = 0 then t.root else (Option.get path.(idx - 1)).children
        in
        match Hashtbl.find_opt children keys.(idx) with
        | Some child ->
          path.(idx) <- Some child;
          (match child.ccall with
          | None -> child.ccall <- ccall
          | Some _ -> ());
          (* Second execution through a known snapshot-less prefix:
             promote it, so the next shared-prefix probe resumes here
             instead of re-running from boot. Depth n is left to the
             free final-state retention below. *)
          if idx < n - 1 && not (has_snap child) then
            put_snap t child (K.Kernel.copy kern)
        | None ->
          let child =
            {
              children = Hashtbl.create 4;
              result = cr;
              snap = None;
              stamp = t.clock;
              ccall;
            }
          in
          Hashtbl.replace children keys.(idx) child;
          t.nodes <- t.nodes + 1;
          path.(idx) <- Some child
      in
      let kernel, r =
        if Exec.compiled_enabled () then begin
          (* Assemble the compiled program from trie-resident compiled
             calls where the walk matched (typically the whole shared
             prefix), compiling only the new suffix. Nodes missing a
             compiled form are backfilled in place. *)
          let ccalls =
            Array.init n (fun i ->
                match path.(i) with
                | Some nd -> (
                  match nd.ccall with
                  | Some cc ->
                    t.st.reused_ccalls <- t.st.reused_ccalls + 1;
                    cc
                  | None ->
                    let cc = Compiled.compile_call (Prog.call p i) in
                    t.st.compiled_calls <- t.st.compiled_calls + 1;
                    nd.ccall <- Some cc;
                    cc)
                | None ->
                  t.st.compiled_calls <- t.st.compiled_calls + 1;
                  Compiled.compile_call (Prog.call p i))
          in
          let c = Compiled.of_calls p ccalls in
          let on_call idx cr kern = record ~ccall:(Some ccalls.(idx)) idx cr kern in
          Exec.run_from_compiled ~prefix ?cov ~on_call kernel c
        end
        else Exec.run_from ~prefix ?cov ~on_call:(record ~ccall:None) kernel p
      in
      (* The finished kernel is ours alone — retain it as the
         full-program snapshot without paying a copy. *)
      (match r.Exec.crash with
      | None ->
        let stored = Array.copy r.Exec.calls in
        Hashtbl.replace t.full pkey stored;
        entry.m_calls <- Some stored;
        (match path.(n - 1) with
        | Some nd -> put_snap t nd kernel
        | None -> ())
      | Some _ -> ());
      r
    end
  end
