module K = Healer_kernel

type call_result = {
  retval : int64;
  errno : K.Errno.t option;
  cov : int list;
  executed : bool;
}

type run_result = {
  calls : call_result array;
  crash : K.Crash.report option;
}

let skipped = { retval = -1L; errno = None; cov = []; executed = false }

(* Resolve a symbolic value to a runtime argument. [results] holds the
   return values of already-executed calls; a reference to a failed
   call degrades to -1, which is how a real executor passes along an
   invalid resource. *)
let rec resolve results (v : Value.t) : K.Arg.t =
  match v with
  | Value.Int x -> K.Arg.Int x
  | Value.Res_special x -> K.Arg.Int x
  | Value.Res_ref i ->
    let x =
      if i >= 0 && i < Array.length results then
        match results.(i) with
        | Some { retval; errno = None; executed = true; _ } -> retval
        | Some _ | None -> -1L
      else -1L
    in
    K.Arg.Int x
  | Value.Str s -> K.Arg.Str s
  | Value.Buf b -> K.Arg.Buf b
  | Value.Group vs -> K.Arg.Rec (List.map (resolve results) vs)
  | Value.Ptr inner -> (
    match resolve results inner with
    | K.Arg.Rec _ as r -> r
    | K.Arg.Str _ as s -> s
    | K.Arg.Buf _ as b -> b
    | K.Arg.Int _ as x -> K.Arg.Rec [ x ]
    (* The interpreter never materializes patch slots; the case exists
       only because [Arg.t] carries them for the compiled engine. *)
    | K.Arg.Slot _ as s -> K.Arg.Rec [ s ]
    | K.Arg.Nothing -> K.Arg.Nothing)
  | Value.Null -> K.Arg.Nothing
  | Value.Vma a -> K.Arg.Int a

(* Shared execution core: runs calls [start..] of [p] against [kernel]
   in place, filling [results]/[out]. [on_call] fires after each call
   that completes without crashing or being fault-killed — the
   execution cache uses it to snapshot prefix states mid-run. *)
let exec_calls ?fault_call ?on_call kernel (p : Prog.t) results out cov start =
  let n = Prog.length p in
  let crash = ref None in
  let stop = ref false in
  let i = ref start in
  while (not !stop) && !i < n do
    let idx = !i in
    let c = Prog.call p idx in
    let args = List.map (resolve results) c.Prog.args in
    let fault = fault_call = Some idx in
    K.Coverage.reset cov;
    (try
       let r = K.Kernel.exec_call kernel ~fault ~cov c.Prog.syscall args in
       let cr =
         {
           retval = r.K.Ctx.ret;
           errno = r.K.Ctx.err;
           cov = K.Coverage.blocks cov;
           executed = true;
         }
       in
       out.(idx) <- cr;
       results.(idx) <- Some cr
     with K.Crash.Crash { bug_key; risk } ->
       let call_name = c.Prog.syscall.Healer_syzlang.Syscall.name in
       out.(idx) <-
         {
           retval = -1L;
           errno = None;
           cov = K.Coverage.blocks cov;
           executed = true;
         };
       crash :=
         Some
           {
             K.Crash.bug_key;
             risk;
             call_index = idx;
             call_name;
             log = K.Crash.render_log ~bug_key ~risk ~call_name;
           };
       stop := true);
    (* A fault-injected call kills the executor process: the kernel
       dumps core, which can itself crash (Listing 2), and the rest of
       the program never runs. *)
    if (not !stop) && fault then begin
      K.Coverage.reset cov;
      (try
         K.Kernel.coredump kernel ~cov;
         let prev = out.(idx) in
         out.(idx) <- { prev with cov = prev.cov @ K.Coverage.blocks cov }
       with K.Crash.Crash { bug_key; risk } ->
         crash :=
           Some
             {
               K.Crash.bug_key;
               risk;
               call_index = idx;
               call_name = "coredump";
               log = K.Crash.render_log ~bug_key ~risk ~call_name:"coredump";
             });
      stop := true
    end;
    if not !stop then
      (match on_call with Some f -> f idx out.(idx) kernel | None -> ());
    incr i
  done;
  !crash

let run ?fault_call ?(fresh_state = true) ?cov kernel (p : Prog.t) =
  let kernel = if fresh_state then K.Kernel.reboot kernel else kernel in
  let n = Prog.length p in
  let results = Array.make n None in
  let out = Array.make n skipped in
  (* Callers on the hot path (the VM pool) pass a long-lived collector
     so steady-state execution allocates no per-run dedup state. *)
  let cov = match cov with Some c -> c | None -> K.Coverage.create () in
  let crash = exec_calls ?fault_call kernel p results out cov 0 in
  (kernel, { calls = out; crash })

let run_from ?cov ?on_call ~prefix kernel (p : Prog.t) =
  let n = Prog.length p in
  let k = Array.length prefix in
  if k > n then invalid_arg "Exec.run_from: prefix longer than program";
  let results = Array.make n None in
  let out = Array.make n skipped in
  for i = 0 to k - 1 do
    out.(i) <- prefix.(i);
    results.(i) <- Some prefix.(i)
  done;
  let cov = match cov with Some c -> c | None -> K.Coverage.create () in
  let crash = exec_calls ?on_call kernel p results out cov k in
  (kernel, { calls = out; crash })

(* ---- compiled execution ---- *)

let compiled_env () =
  match Sys.getenv_opt "HEALER_COMPILED" with
  | None -> true
  | Some v -> (
    match String.lowercase_ascii (String.trim v) with
    | "" | "0" | "false" | "no" | "off" -> false
    | _ -> true)

let compiled = ref (compiled_env ())
let compiled_enabled () = !compiled
let set_compiled b = compiled := b

(* The resource value a call's result contributes: the interpreter
   encodes this in [resolve]'s match on [results]; the compiled path
   precomputes it into [Compiled.set_resval]. *)
let resval_of (cr : call_result) =
  if cr.executed && cr.errno = None then cr.retval else -1L

(* The compiled twin of [exec_calls]: same control flow call for call
   (crash abort, fault-injection coredump, [on_call] firing), but
   dispatch is pre-resolved, the argument skeleton is patched in place
   instead of rebuilt, and one recycled context serves the whole
   run. *)
let exec_ccalls ?fault_call ?on_call kernel (c : Compiled.t) out cov start =
  let n = Compiled.length c in
  let ctx = K.Kernel.make_ctx kernel cov in
  let crash = ref None in
  let stop = ref false in
  let i = ref start in
  while (not !stop) && !i < n do
    let idx = !i in
    let cc = Compiled.call c idx in
    Compiled.patch c idx;
    let fault = fault_call = Some idx in
    K.Coverage.reset cov;
    (try
       let r = K.Kernel.exec_prepared kernel ~ctx ~fault cc.Compiled.prep cc.Compiled.args in
       let cr =
         {
           retval = r.K.Ctx.ret;
           errno = r.K.Ctx.err;
           cov = K.Coverage.blocks cov;
           executed = true;
         }
       in
       out.(idx) <- cr;
       Compiled.set_resval c idx (resval_of cr)
     with K.Crash.Crash { bug_key; risk } ->
       let call_name = cc.Compiled.syscall.Healer_syzlang.Syscall.name in
       out.(idx) <-
         {
           retval = -1L;
           errno = None;
           cov = K.Coverage.blocks cov;
           executed = true;
         };
       crash :=
         Some
           {
             K.Crash.bug_key;
             risk;
             call_index = idx;
             call_name;
             log = K.Crash.render_log ~bug_key ~risk ~call_name;
           };
       stop := true);
    if (not !stop) && fault then begin
      K.Coverage.reset cov;
      (try
         K.Kernel.coredump kernel ~cov;
         let prev = out.(idx) in
         out.(idx) <- { prev with cov = prev.cov @ K.Coverage.blocks cov }
       with K.Crash.Crash { bug_key; risk } ->
         crash :=
           Some
             {
               K.Crash.bug_key;
               risk;
               call_index = idx;
               call_name = "coredump";
               log = K.Crash.render_log ~bug_key ~risk ~call_name:"coredump";
             });
      stop := true
    end;
    if not !stop then
      (match on_call with Some f -> f idx out.(idx) kernel | None -> ());
    incr i
  done;
  !crash

(* Differential oracle, armed by HEALER_DEBUG_VALIDATE: replay the
   program interpreted on a shadow kernel carrying the same pre-run
   state and require bit-identical results plus identical lock-pair
   coverage counters. The interpreter is the semantics of record; any
   divergence is a compiler bug and fails loudly. *)
let oracle_check ?fault_call ~what ~prefix shadow kernel_after (c : Compiled.t)
    (r : run_result) =
  let p = Compiled.prog c in
  let _, ri =
    match prefix with
    | None ->
      let n = Prog.length p in
      let results = Array.make n None in
      let out = Array.make n skipped in
      let cov = K.Coverage.create () in
      let crash = exec_calls ?fault_call shadow p results out cov 0 in
      (shadow, { calls = out; crash })
    | Some prefix -> run_from ~prefix shadow p
  in
  if r <> ri then
    failwith
      (Fmt.str
         "HEALER_DEBUG_VALIDATE: %s diverged from the interpreter on:@.%s" what
         (Prog.to_string p));
  if
    K.Kernel.lock_pair_counts kernel_after <> K.Kernel.lock_pair_counts shadow
  then
    failwith
      (Fmt.str
         "HEALER_DEBUG_VALIDATE: %s left different lock-pair counters than \
          the interpreter on:@.%s"
         what (Prog.to_string p))

let run_compiled ?fault_call ?(fresh_state = true) ?cov kernel (c : Compiled.t)
    =
  let kernel = if fresh_state then K.Kernel.reboot kernel else kernel in
  let shadow =
    if Progcheck.debug_enabled () then
      Some (if fresh_state then K.Kernel.reboot kernel else K.Kernel.copy kernel)
    else None
  in
  let n = Compiled.length c in
  let out = Array.make n skipped in
  let cov = match cov with Some c -> c | None -> K.Coverage.create () in
  Compiled.reset_resvals c;
  let crash = exec_ccalls ?fault_call kernel c out cov 0 in
  let r = { calls = out; crash } in
  (match shadow with
  | Some sk -> oracle_check ?fault_call ~what:"run_compiled" ~prefix:None sk kernel c r
  | None -> ());
  (kernel, r)

let run_from_compiled ?cov ?on_call ~prefix kernel (c : Compiled.t) =
  let n = Compiled.length c in
  let k = Array.length prefix in
  if k > n then invalid_arg "Exec.run_from_compiled: prefix longer than program";
  let shadow =
    if Progcheck.debug_enabled () then Some (K.Kernel.copy kernel) else None
  in
  let out = Array.make n skipped in
  Compiled.reset_resvals c;
  for i = 0 to k - 1 do
    out.(i) <- prefix.(i);
    Compiled.set_resval c i (resval_of prefix.(i))
  done;
  let cov = match cov with Some c -> c | None -> K.Coverage.create () in
  let crash = exec_ccalls ?on_call kernel c out cov k in
  let r = { calls = out; crash } in
  (match shadow with
  | Some sk ->
    oracle_check ~what:"run_from_compiled" ~prefix:(Some prefix) sk kernel c r
  | None -> ());
  (kernel, r)

(* Sorted, duplicate-free array form of a coverage trace. Minimization
   and dynamic learning compare one reference trace against many probe
   traces; keying the reference once replaces the double sort_uniq the
   old cov_equal paid on every probe. *)
type cov_key = int array

let dedup_sorted a =
  let n = Array.length a in
  if n = 0 then a
  else begin
    let w = ref 1 in
    for r = 1 to n - 1 do
      if a.(r) <> a.(!w - 1) then begin
        a.(!w) <- a.(r);
        incr w
      end
    done;
    if !w = n then a else Array.sub a 0 !w
  end

let cov_key l =
  let a = Array.of_list l in
  Array.sort Int.compare a;
  dedup_sorted a

let cov_matches key l =
  let a = Array.of_list l in
  Array.sort Int.compare a;
  let a = dedup_sorted a in
  let n = Array.length key in
  Array.length a = n
  &&
  let rec eq i = i >= n || (a.(i) = key.(i) && eq (i + 1)) in
  eq 0

let cov_equal a b = cov_matches (cov_key a) b

(* Union of all per-call coverage: one pass to count, one scratch array
   filled and sorted in place, dedup via the shared [dedup_sorted] —
   no intermediate lists for what minimization calls per candidate. *)
let total_cov r =
  let total = ref 0 in
  Array.iter (fun cr -> List.iter (fun _ -> incr total) cr.cov) r.calls;
  if !total = 0 then []
  else begin
    let scratch = Array.make !total 0 in
    let w = ref 0 in
    Array.iter
      (fun cr ->
        List.iter
          (fun b ->
            scratch.(!w) <- b;
            incr w)
          cr.cov)
      r.calls;
    Array.sort Int.compare scratch;
    Array.to_list (dedup_sorted scratch)
  end
