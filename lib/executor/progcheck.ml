(* Program-level static validator: typed dataflow checking of Prog.t
   against the compiled target (the IR analogue of syzkaller's
   prog.debugValidate).

   Two layers per program:

   - value conformance: every argument value is checked deeply against
     its declared type — arity, constants, flag subsets, integer
     widths/ranges, proc values, buffer kinds, union arms, array
     bounds, len fields against the sized sibling they name;

   - resource dataflow: every [Res_ref] must point strictly backwards
     to a call producing a compatible resource kind (honouring
     inheritance), with warnings for references in output-only slots,
     for producers nothing ever consumes, and for uses after a closing
     call consumed the resource.

   Severities split along one line: an Error is something the
   generator/mutator/serializer pipeline must never emit (the
   enforcement hooks turn those into immediate failures under
   HEALER_DEBUG_VALIDATE); a Warning is a plausible-but-suspect
   program shape that real fuzzing legitimately explores. *)

module D = Healer_util.Diagnostic
module Ty = Healer_syzlang.Ty
module Field = Healer_syzlang.Field
module Target = Healer_syzlang.Target
module Syscall = Healer_syzlang.Syscall

let checks =
  [
    ( "prog-alien-call",
      D.Error,
      "call's syscall is not the target's syscall with that id" );
    ("prog-arity", D.Error, "argument count differs from the declaration");
    ("prog-type", D.Error, "value shape incompatible with the declared type");
    ("prog-const", D.Error, "constant argument differs from the declared value");
    ("prog-flags", D.Error, "flags value uses bits outside the declared set");
    ( "prog-int-width",
      D.Error,
      "integer value outside the declared width or range" );
    ("prog-proc", D.Error, "per-process value is not start + k*step");
    ( "prog-len",
      D.Error,
      "length field disagrees with the named sibling's byte size" );
    ("prog-array-bounds", D.Error, "array length outside the declared bounds");
    ("prog-union", D.Error, "union value conforms to no declared arm");
    ( "prog-res-dangling",
      D.Error,
      "resource reference does not point strictly backwards" );
    ( "prog-res-kind",
      D.Error,
      "referenced call produces no compatible resource kind" );
    ( "prog-out-ref",
      D.Warning,
      "resource reference in an output-only slot (the call overwrites it)" );
    ( "prog-dead-producer",
      D.Warning,
      "returned resource is never consumed by a later call" );
    ( "prog-use-after-close",
      D.Warning,
      "resource used after a closing call consumed it" );
  ]

(* ---- debug-validation switch (the HEALER_DEBUG_VALIDATE contract) ---- *)

exception Invalid of string

let env_enabled () =
  match Sys.getenv_opt "HEALER_DEBUG_VALIDATE" with
  | None -> false
  | Some v -> (
    match String.lowercase_ascii (String.trim v) with
    | "" | "0" | "false" | "no" | "off" -> false
    | _ -> true)

let debug = ref (env_enabled ())

(* One switch drives the whole debug-validation contract: flipping it
   also arms (or disarms) the runtime lockdep and effect-trace
   validators down in [Kernel.exec_call], so `Progcheck.set_debug
   true` — what the test suite and the dune @analyze gates do — covers
   all three. *)
let set_debug b =
  debug := b;
  Healer_kernel.Lock.set_validate b;
  Healer_kernel.Effect.set_validate b

let debug_enabled () = !debug

(* ---- the checker ---- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* A call that ends the lifetime of the resources it consumes
   (close(2), io_destroy, timer_delete, ...). Heuristic on the base
   name, mirroring syzkaller's resource-destructor convention. *)
let is_closer (sc : Syscall.t) =
  List.exists (contains sc.Syscall.base) [ "close"; "destroy"; "delete"; "free" ]

let truncate_bits bits v =
  if bits >= 64 then v
  else Int64.logand v (Int64.sub (Int64.shift_left 1L bits) 1L)

let consuming = function Ty.In | Ty.In_out -> true | Ty.Out -> false

(* Facts a value walk gathers about resource references: the referenced
   call index and the slot's effective direction (the innermost
   enclosing pointer direction overrides the resource's own, matching
   Syscall.collect_res). *)
type ref_note = { ref_idx : int; ref_dir : Ty.dir }

type sink = { emit : D.t -> unit; note : ref_note -> unit }

let check ?src target (p : Prog.t) =
  let n = Prog.length p in
  let diags = ref [] in
  let used = Array.make (max n 1) false in
  (* producing call index -> index of the call that closed its resource *)
  let closed : (int, int) Hashtbl.t = Hashtbl.create 8 in
  for k = 0 to n - 1 do
    let c = Prog.call p k in
    let sc = c.Prog.syscall in
    let mk ~check ~severity msg =
      D.v
        ~pos:{ D.src; line = k + 1 }
        ~check ~severity
        ~subject:("call " ^ sc.Syscall.name)
        msg
    in
    (* The deep conformance walk. [ptr_dir] is the innermost enclosing
       pointer direction; [path] keeps messages navigable. *)
    let rec walk sink ~path ~ptr_dir (ty : Ty.t) (v : Value.t) =
      let err check fmt =
        Fmt.kstr
          (fun m -> sink.emit (mk ~check ~severity:D.Error (path ^ ": " ^ m)))
          fmt
      in
      let warn check fmt =
        Fmt.kstr
          (fun m -> sink.emit (mk ~check ~severity:D.Warning (path ^ ": " ^ m)))
          fmt
      in
      let shape expected =
        err "prog-type" "expected %s for %s, got %a" expected (Ty.to_string ty)
          Value.pp v
      in
      match (ty, v) with
      | Ty.Const c, Value.Int x ->
        if not (Int64.equal x c) then
          err "prog-const" "declared const 0x%Lx, got 0x%Lx" c x
      | Ty.Const _, _ -> shape "a constant integer"
      | Ty.Int { bits; range }, Value.Int x -> (
        match range with
        | Some (lo, hi) ->
          if Int64.compare x lo < 0 || Int64.compare x hi > 0 then
            err "prog-int-width" "0x%Lx outside declared range [%Ld:%Ld]" x lo
              hi
        | None ->
          if not (Int64.equal (truncate_bits bits x) x) then
            err "prog-int-width" "0x%Lx does not fit int%d" x bits)
      | Ty.Int _, _ -> shape "an integer"
      | Ty.Flags name, Value.Int x ->
        let mask =
          Array.fold_left Int64.logor 0L (Target.flag_values target name)
        in
        if not (Int64.equal (Int64.logand x (Int64.lognot mask)) 0L) then
          err "prog-flags" "0x%Lx uses bits outside flags %s (mask 0x%Lx)" x
            name mask
      | Ty.Flags _, _ -> shape "a flags integer"
      | Ty.Len _, Value.Int _ ->
        (* The value is checked against its sibling at the field-list
           level (walk_fields); here only the shape. *)
        ()
      | Ty.Len _, _ -> shape "a length integer"
      | Ty.Proc { start; step }, Value.Int x ->
        let d = Int64.sub x start in
        let bad =
          Int64.compare d 0L < 0
          ||
          if Int64.equal step 0L then not (Int64.equal d 0L)
          else not (Int64.equal (Int64.rem d step) 0L)
        in
        if bad then err "prog-proc" "0x%Lx is not %Ld + k*%Ld" x start step
      | Ty.Proc _, _ -> shape "a per-process integer"
      | Ty.Res { kind; dir }, v -> (
        let eff_dir = match ptr_dir with Some d -> d | None -> dir in
        match v with
        | Value.Res_ref i ->
          if i < 0 || i >= k then
            err "prog-res-dangling"
              "r%d does not point strictly backwards from call %d" i (k + 1)
          else begin
            sink.note { ref_idx = i; ref_dir = eff_dir };
            let producer = (Prog.call p i).Prog.syscall in
            let produced = Target.produces target producer in
            if
              not
                (List.exists
                   (fun pk ->
                     Target.compatible target ~consumer:kind ~producer:pk)
                   produced)
            then
              err "prog-res-kind" "r%d (%s) produces %s, none compatible with %s"
                i producer.Syscall.name
                (match produced with
                | [] -> "no resource"
                | ks -> String.concat ", " ks)
                kind;
            if eff_dir = Ty.Out then
              warn "prog-out-ref"
                "r%d passed in an output-only %s slot (the call overwrites it)"
                i kind
          end
        | Value.Res_special _ | Value.Int _ ->
          (* Special values and the generator's no-producer integer
             fallback are legitimate resource arguments. *)
          ()
        | _ -> shape ("a " ^ kind ^ " resource"))
      | Ty.Ptr { dir; elem }, Value.Ptr inner ->
        walk sink ~path ~ptr_dir:(Some dir) elem inner
      | Ty.Ptr _, Value.Null -> ()
      | Ty.Ptr _, _ -> shape "a pointer or null"
      | Ty.Buffer _, Value.Buf _ -> ()
      | Ty.Buffer _, _ -> shape "a byte buffer"
      | Ty.Str _, Value.Str _ -> ()
      | Ty.Str _, _ -> shape "a string"
      | Ty.Filename _, Value.Str _ -> ()
      | Ty.Filename _, _ -> shape "a filename string"
      | Ty.Array { elem; min_len; max_len }, Value.Group vs ->
        let len = List.length vs in
        if len < min_len || len > max_len then
          err "prog-array-bounds" "%d elements outside [%d:%d]" len min_len
            max_len;
        List.iteri
          (fun i v -> walk sink ~path:(Fmt.str "%s[%d]" path i) ~ptr_dir elem v)
          vs
      | Ty.Array _, _ -> shape "an array group"
      | Ty.Struct_ref name, Value.Group vs ->
        let fields = Target.struct_fields target name in
        if List.length fields <> List.length vs then
          err "prog-type" "struct %s has %d fields, value has %d" name
            (List.length fields) (List.length vs)
        else walk_fields sink ~path:(path ^ "." ^ name) ~ptr_dir fields vs
      | Ty.Struct_ref _, _ -> shape "a struct group"
      | Ty.Union_ref name, Value.Group [ v ] -> (
        let arms = Target.union_fields target name in
        (* Trial-check each arm silently; accept the first whose shape
           and dataflow are error-free, replaying its findings and
           resource notes into the real sinks. *)
        let try_arm (f : Field.t) =
          let tr_diags = ref [] and tr_notes = ref [] in
          let trial =
            {
              emit = (fun d -> tr_diags := d :: !tr_diags);
              note = (fun nt -> tr_notes := nt :: !tr_notes);
            }
          in
          walk trial
            ~path:(path ^ "." ^ name ^ "." ^ f.Field.fname)
            ~ptr_dir f.Field.fty v;
          if List.exists (fun (d : D.t) -> d.D.severity = D.Error) !tr_diags
          then None
          else Some (List.rev !tr_diags, List.rev !tr_notes)
        in
        match List.find_map try_arm arms with
        | Some (tr_diags, tr_notes) ->
          List.iter sink.emit tr_diags;
          List.iter sink.note tr_notes
        | None ->
          err "prog-union" "value %a conforms to no arm of union %s" Value.pp v
            name)
      | Ty.Union_ref _, _ -> shape "a single-arm union group"
      | Ty.Vma, Value.Vma _ -> ()
      | Ty.Vma, _ -> shape "a vma address"
    (* A named field list (call arguments or a struct body): walk each
       member, then validate direct len[] fields against the sibling
       they name — the same sibling lookup and byte-size model
       Value_gen.resolve_lens uses to produce them. *)
    and walk_fields sink ~path ~ptr_dir (fields : Field.t list) values =
      let pairs = List.combine fields values in
      List.iter
        (fun ((f : Field.t), v) ->
          walk sink ~path:(path ^ "." ^ f.Field.fname) ~ptr_dir f.Field.fty v)
        pairs;
      List.iter
        (fun ((f : Field.t), v) ->
          match (f.Field.fty, v) with
          | Ty.Len name, Value.Int x -> (
            match
              List.find_opt
                (fun ((g : Field.t), _) -> String.equal g.Field.fname name)
                pairs
            with
            | Some (_, sv) ->
              let expected = Int64.of_int (Value.byte_size sv) in
              if not (Int64.equal x expected) then
                sink.emit
                  (mk ~check:"prog-len" ~severity:D.Error
                     (Fmt.str "%s.%s = %Ld but sibling %s is %Ld bytes" path
                        f.Field.fname x name expected))
            | None -> ())
          | _ -> ())
        pairs
    in
    let declared =
      match Target.syscall target sc.Syscall.id with
      | d ->
        if String.equal d.Syscall.name sc.Syscall.name then Some d else None
      | exception Invalid_argument _ -> None
    in
    match declared with
    | None ->
      diags :=
        mk ~check:"prog-alien-call" ~severity:D.Error
          (Fmt.str "syscall id %d (%s) is not in target %s" sc.Syscall.id
             sc.Syscall.name (Target.name target))
        :: !diags
    | Some decl ->
      let nargs = List.length c.Prog.args
      and nfields = List.length decl.Syscall.args in
      if nargs <> nfields then
        diags :=
          mk ~check:"prog-arity" ~severity:D.Error
            (Fmt.str "%d arguments, declaration has %d" nargs nfields)
          :: !diags
      else begin
        let notes = ref [] in
        let sink =
          {
            emit = (fun d -> diags := d :: !diags);
            note = (fun nt -> notes := nt :: !notes);
          }
        in
        walk_fields sink ~path:"arg" ~ptr_dir:None decl.Syscall.args
          c.Prog.args;
        let notes = List.rev !notes in
        List.iter
          (fun { ref_idx = i; ref_dir } ->
            used.(i) <- true;
            if consuming ref_dir then
              match Hashtbl.find_opt closed i with
              | Some j ->
                diags :=
                  mk ~check:"prog-use-after-close" ~severity:D.Warning
                    (Fmt.str "r%d was closed by call %d (%s)" i (j + 1)
                       (Prog.call p j).Prog.syscall.Syscall.name)
                  :: !diags
              | None -> ())
          notes;
        if is_closer sc then
          List.iter
            (fun { ref_idx = i; ref_dir } ->
              if consuming ref_dir && not (Hashtbl.mem closed i) then
                Hashtbl.replace closed i k)
            notes
      end
  done;
  (* Dead producers: calls whose *returned* resource nothing consumes.
     Out-parameter production is deliberately not flagged — a call with
     a [ptr[out, res]] argument produces as a side effect, and leaving
     that untouched is a perfectly ordinary program shape.  Alien calls
     (no valid declaration) were already reported above and are
     skipped here. *)
  for k = 0 to n - 1 do
    let sc = (Prog.call p k).Prog.syscall in
    let declared_ok =
      match Target.syscall target sc.Syscall.id with
      | d -> String.equal d.Syscall.name sc.Syscall.name
      | exception Invalid_argument _ -> false
    in
    match sc.Syscall.ret with
    | Some kind when declared_ok && not used.(k) ->
      diags :=
        D.v
          ~pos:{ D.src; line = k + 1 }
          ~check:"prog-dead-producer" ~severity:D.Warning
          ~subject:("call " ^ sc.Syscall.name)
          (Fmt.str "returns %s but no later call consumes it" kind)
        :: !diags
    | _ -> ()
  done;
  List.sort_uniq D.compare !diags

let errors ?src target p =
  List.filter (fun (d : D.t) -> d.D.severity = D.Error) (check ?src target p)

let is_clean target p = errors target p = []

let debug_check ~what target p =
  if !debug then
    match errors target p with
    | [] -> ()
    | errs ->
      raise
        (Invalid
           (Fmt.str "%s emitted an invalid program:@.%a@.program:@.%s" what
              Fmt.(list ~sep:cut D.pp)
              errs (Prog.to_string p)))
