(** Program execution against a booted simulated kernel.

    Each run resolves the program's symbolic values, executes the
    calls in order, and collects per-call branch coverage — the
    feedback HEALER's minimization and dynamic relation learning
    consume. A crash aborts the run; the remaining calls are not
    executed (the guest has paniced). *)

type call_result = {
  retval : int64;
  errno : Healer_kernel.Errno.t option;
  cov : int list;  (** Branch ids covered by this call, first-hit order. *)
  executed : bool;  (** False for calls after a crash / process kill. *)
}

type run_result = {
  calls : call_result array;  (** One slot per program call. *)
  crash : Healer_kernel.Crash.report option;
}

val run :
  ?fault_call:int ->
  ?fresh_state:bool ->
  ?cov:Healer_kernel.Coverage.t ->
  Healer_kernel.Kernel.t ->
  Prog.t ->
  Healer_kernel.Kernel.t * run_result
(** [run kernel prog] executes [prog]. With [fresh_state] (default
    true) the kernel is re-booted first, making runs reproducible —
    the executor forks a pristine process per test case.
    [fault_call i] injects an allocation failure into call [i]; the
    process is then killed and the kernel runs its core-dump path
    (which may itself crash). [cov] is the coverage collector to
    (re)use — pass a long-lived one to avoid allocating dedup state
    per run; a fresh one is created when absent. Returns the
    (possibly re-booted) kernel and the result. *)

val run_from :
  ?cov:Healer_kernel.Coverage.t ->
  ?on_call:(int -> call_result -> Healer_kernel.Kernel.t -> unit) ->
  prefix:call_result array ->
  Healer_kernel.Kernel.t ->
  Prog.t ->
  Healer_kernel.Kernel.t * run_result
(** [run_from ~prefix kernel prog] resumes execution at call
    [Array.length prefix]: [kernel] must be the state left by running
    exactly those prefix calls of [prog] from a fresh boot (the
    execution cache restores it from a snapshot), and [prefix] supplies
    their results so later [Res_ref] arguments resolve identically to a
    full {!run}. Because execution is deterministic, the returned
    result is bit-identical to [run kernel prog] — the qcheck suite
    enforces this. [on_call i r k] fires after each live (resumed)
    call that completes without crashing, with the kernel state at
    that point; never for fault-injected runs (which do not resume).
    The kernel is mutated in place and returned. *)

(** {2 Compiled execution}

    The compiled engine runs a {!Compiled.t} — the program lowered
    once, see {!Compiled} — through the same control flow as {!run}
    with zero per-call argument allocation. Results are bit-identical
    to the interpreter's; under [HEALER_DEBUG_VALIDATE]
    ({!Progcheck.set_debug}) every compiled run is also executed
    interpreted on a shadow kernel and compared (results and lock-pair
    counters), keeping the interpreter as the differential oracle. *)

val compiled_enabled : unit -> bool
(** Engine selector consulted by {!Vm.run} and {!Exec_cache.run}:
    defaults to on, [HEALER_COMPILED=0] (or [false]/[no]/[off]) forces
    the interpreter. *)

val set_compiled : bool -> unit
(** Override the engine selector in-process (tests compare engines). *)

val run_compiled :
  ?fault_call:int ->
  ?fresh_state:bool ->
  ?cov:Healer_kernel.Coverage.t ->
  Healer_kernel.Kernel.t ->
  Compiled.t ->
  Healer_kernel.Kernel.t * run_result
(** {!run} over a compiled program. *)

val run_from_compiled :
  ?cov:Healer_kernel.Coverage.t ->
  ?on_call:(int -> call_result -> Healer_kernel.Kernel.t -> unit) ->
  prefix:call_result array ->
  Healer_kernel.Kernel.t ->
  Compiled.t ->
  Healer_kernel.Kernel.t * run_result
(** {!run_from} over a compiled program. *)

val cov_equal : int list -> int list -> bool
(** Set equality of two per-call coverage traces (order-insensitive),
    the comparison both Algorithm 1 and Algorithm 2 perform. *)

type cov_key
(** A coverage trace in sorted duplicate-free form, for comparing one
    reference trace against many probes without re-sorting it. *)

val cov_key : int list -> cov_key
val cov_matches : cov_key -> int list -> bool
(** [cov_matches (cov_key a) b] is [cov_equal a b]. *)

val total_cov : run_result -> int list
(** Union of all per-call coverage, deduplicated. *)
