module Target = Healer_syzlang.Target

exception Malformed of string

let fail msg = raise (Malformed msg)
let magic = "HLR1"

let put_uvarint buf v =
  let v = ref v in
  let continue = ref true in
  while !continue do
    let byte = Int64.to_int (Int64.logand !v 0x7fL) in
    v := Int64.shift_right_logical !v 7;
    if Int64.equal !v 0L then begin
      Buffer.add_char buf (Char.chr byte);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (byte lor 0x80))
  done

let get_uvarint s pos =
  let v = ref 0L in
  let shift = ref 0 in
  let continue = ref true in
  while !continue do
    if !pos >= String.length s then fail "truncated varint";
    if !shift > 63 then fail "varint too long";
    let byte = Char.code s.[!pos] in
    incr pos;
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (byte land 0x7f)) !shift);
    shift := !shift + 7;
    if byte land 0x80 = 0 then continue := false
  done;
  !v

let zigzag v = Int64.logxor (Int64.shift_left v 1) (Int64.shift_right v 63)

let unzigzag v =
  Int64.logxor (Int64.shift_right_logical v 1) (Int64.neg (Int64.logand v 1L))

let put_svarint buf v = put_uvarint buf (zigzag v)
let get_svarint s pos = unzigzag (get_uvarint s pos)

let put_bytes buf b =
  put_uvarint buf (Int64.of_int (Bytes.length b));
  Buffer.add_bytes buf b

let get_bytes s pos =
  let n = Int64.to_int (get_uvarint s pos) in
  if n < 0 || !pos + n > String.length s then fail "truncated bytes";
  let b = Bytes.of_string (String.sub s !pos n) in
  pos := !pos + n;
  b

let rec put_value buf (v : Value.t) =
  match v with
  | Value.Int x ->
    Buffer.add_char buf '\000';
    put_svarint buf x
  | Value.Res_ref i ->
    Buffer.add_char buf '\001';
    put_uvarint buf (Int64.of_int i)
  | Value.Res_special x ->
    Buffer.add_char buf '\002';
    put_svarint buf x
  | Value.Str s ->
    Buffer.add_char buf '\003';
    put_bytes buf (Bytes.of_string s)
  | Value.Buf b ->
    Buffer.add_char buf '\004';
    put_bytes buf b
  | Value.Group vs ->
    Buffer.add_char buf '\005';
    put_uvarint buf (Int64.of_int (List.length vs));
    List.iter (put_value buf) vs
  | Value.Ptr inner ->
    Buffer.add_char buf '\006';
    put_value buf inner
  | Value.Null -> Buffer.add_char buf '\007'
  | Value.Vma a ->
    Buffer.add_char buf '\b';
    put_uvarint buf a

let rec get_value s pos =
  if !pos >= String.length s then fail "truncated value";
  let tag = Char.code s.[!pos] in
  incr pos;
  match tag with
  | 0 -> Value.Int (get_svarint s pos)
  | 1 -> Value.Res_ref (Int64.to_int (get_uvarint s pos))
  | 2 -> Value.Res_special (get_svarint s pos)
  | 3 -> Value.Str (Bytes.to_string (get_bytes s pos))
  | 4 -> Value.Buf (get_bytes s pos)
  | 5 ->
    let n = Int64.to_int (get_uvarint s pos) in
    if n < 0 || n > 4096 then fail "group too large";
    Value.Group (List.init n (fun _ -> get_value s pos))
  | 6 -> Value.Ptr (get_value s pos)
  | 7 -> Value.Null
  | 8 -> Value.Vma (get_uvarint s pos)
  | t -> fail (Printf.sprintf "unknown value tag %d" t)

let encode (p : Prog.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  put_uvarint buf (Int64.of_int (Prog.length p));
  Array.iter
    (fun (c : Prog.call) ->
      put_uvarint buf (Int64.of_int c.syscall.Healer_syzlang.Syscall.id);
      put_uvarint buf (Int64.of_int (List.length c.args));
      List.iter (put_value buf) c.args)
    p.calls;
  Buffer.contents buf

let decode target s =
  if String.length s < 4 || String.sub s 0 4 <> magic then fail "bad magic";
  let pos = ref 4 in
  let n = Int64.to_int (get_uvarint s pos) in
  if n < 0 || n > 4096 then fail "call count out of range";
  let calls =
    List.init n (fun _ ->
        let id = Int64.to_int (get_uvarint s pos) in
        let syscall =
          try Target.syscall target id
          with Invalid_argument _ -> fail "unknown syscall id"
        in
        let argc = Int64.to_int (get_uvarint s pos) in
        if argc < 0 || argc > 64 then fail "arg count out of range";
        let args = List.init argc (fun _ -> get_value s pos) in
        { Prog.syscall; args })
  in
  if !pos <> String.length s then fail "trailing bytes";
  let p = Prog.of_list calls in
  (* Under HEALER_DEBUG_VALIDATE a syntactically well-formed encoding
     of a type-invalid program is still malformed input: the decoder
     is the trust boundary for persisted corpora. *)
  if Progcheck.debug_enabled () then begin
    match Progcheck.errors target p with
    | [] -> ()
    | errs ->
      fail
        (Fmt.str "@[<v>decoded program fails validation:@,%a@]"
           Fmt.(list ~sep:cut Healer_util.Diagnostic.pp)
           errs)
  end;
  p
