module Target = Healer_syzlang.Target

exception Malformed of string

let fail msg = raise (Malformed msg)
let magic = "HLR1"

(* Unboxed fast path: LEB128 of a non-negative native int. The boxed
   Int64 loop below costs several allocations per byte, and encoding
   sits on the probe-cache hot path (one key per call per probe). *)
let put_uint buf i =
  let x = ref i in
  let continue = ref true in
  while !continue do
    let byte = !x land 0x7f in
    x := !x lsr 7;
    if !x = 0 then begin
      Buffer.add_char buf (Char.chr byte);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (byte lor 0x80))
  done

let put_uvarint buf v =
  if Int64.compare v 0L >= 0 && Int64.compare v 0x3FFFFFFFFFFFFFFFL <= 0 then
    put_uint buf (Int64.to_int v)
  else begin
    let v = ref v in
    let continue = ref true in
    while !continue do
      let byte = Int64.to_int (Int64.logand !v 0x7fL) in
      v := Int64.shift_right_logical !v 7;
      if Int64.equal !v 0L then begin
        Buffer.add_char buf (Char.chr byte);
        continue := false
      end
      else Buffer.add_char buf (Char.chr (byte lor 0x80))
    done
  end

let get_uvarint s pos =
  let v = ref 0L in
  let shift = ref 0 in
  let continue = ref true in
  while !continue do
    if !pos >= String.length s then fail "truncated varint";
    if !shift > 63 then fail "varint too long";
    let byte = Char.code s.[!pos] in
    incr pos;
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (byte land 0x7f)) !shift);
    shift := !shift + 7;
    if byte land 0x80 = 0 then continue := false
  done;
  !v

let zigzag v = Int64.logxor (Int64.shift_left v 1) (Int64.shift_right v 63)

let unzigzag v =
  Int64.logxor (Int64.shift_right_logical v 1) (Int64.neg (Int64.logand v 1L))

(* Same bytes as [put_uvarint (zigzag v)]: for |v| < 2^61 the zigzag
   fits the 63-bit native int, so the whole encode stays unboxed. *)
let put_svarint buf v =
  if
    Int64.compare v (-0x1000000000000000L) >= 0
    && Int64.compare v 0x1000000000000000L < 0
  then begin
    let x = Int64.to_int v in
    put_uint buf ((x lsl 1) lxor (x asr 62))
  end
  else put_uvarint buf (zigzag v)
let get_svarint s pos = unzigzag (get_uvarint s pos)

let put_bytes buf b =
  put_uint buf (Bytes.length b);
  Buffer.add_bytes buf b

let put_string buf s =
  put_uint buf (String.length s);
  Buffer.add_string buf s

let get_bytes s pos =
  let n = Int64.to_int (get_uvarint s pos) in
  if n < 0 || !pos + n > String.length s then fail "truncated bytes";
  let b = Bytes.of_string (String.sub s !pos n) in
  pos := !pos + n;
  b

let rec put_value buf (v : Value.t) =
  match v with
  | Value.Int x ->
    Buffer.add_char buf '\000';
    put_svarint buf x
  | Value.Res_ref i ->
    Buffer.add_char buf '\001';
    put_uint buf i
  | Value.Res_special x ->
    Buffer.add_char buf '\002';
    put_svarint buf x
  | Value.Str s ->
    Buffer.add_char buf '\003';
    put_string buf s
  | Value.Buf b ->
    Buffer.add_char buf '\004';
    put_bytes buf b
  | Value.Group vs ->
    Buffer.add_char buf '\005';
    put_uint buf (List.length vs);
    List.iter (put_value buf) vs
  | Value.Ptr inner ->
    Buffer.add_char buf '\006';
    put_value buf inner
  | Value.Null -> Buffer.add_char buf '\007'
  | Value.Vma a ->
    Buffer.add_char buf '\b';
    put_uvarint buf a

let rec get_value s pos =
  if !pos >= String.length s then fail "truncated value";
  let tag = Char.code s.[!pos] in
  incr pos;
  match tag with
  | 0 -> Value.Int (get_svarint s pos)
  | 1 -> Value.Res_ref (Int64.to_int (get_uvarint s pos))
  | 2 -> Value.Res_special (get_svarint s pos)
  | 3 -> Value.Str (Bytes.to_string (get_bytes s pos))
  | 4 -> Value.Buf (get_bytes s pos)
  | 5 ->
    let n = Int64.to_int (get_uvarint s pos) in
    if n < 0 || n > 4096 then fail "group too large";
    Value.Group (List.init n (fun _ -> get_value s pos))
  | 6 -> Value.Ptr (get_value s pos)
  | 7 -> Value.Null
  | 8 -> Value.Vma (get_uvarint s pos)
  | t -> fail (Printf.sprintf "unknown value tag %d" t)

let put_call buf (c : Prog.call) =
  put_uint buf c.Prog.syscall.Healer_syzlang.Syscall.id;
  put_uint buf (List.length c.Prog.args);
  List.iter (put_value buf) c.Prog.args

let encode_call (c : Prog.call) =
  let buf = Buffer.create 32 in
  put_call buf c;
  Buffer.contents buf

let encode (p : Prog.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  put_uvarint buf (Int64.of_int (Prog.length p));
  Array.iter (put_call buf) p.calls;
  Buffer.contents buf

let decode target s =
  if String.length s < 4 || String.sub s 0 4 <> magic then fail "bad magic";
  let pos = ref 4 in
  let n = Int64.to_int (get_uvarint s pos) in
  if n < 0 || n > 4096 then fail "call count out of range";
  let calls =
    List.init n (fun _ ->
        let id = Int64.to_int (get_uvarint s pos) in
        let syscall =
          try Target.syscall target id
          with Invalid_argument _ -> fail "unknown syscall id"
        in
        let argc = Int64.to_int (get_uvarint s pos) in
        if argc < 0 || argc > 64 then fail "arg count out of range";
        let args = List.init argc (fun _ -> get_value s pos) in
        { Prog.syscall; args })
  in
  if !pos <> String.length s then fail "trailing bytes";
  let p = Prog.of_list calls in
  (* Under HEALER_DEBUG_VALIDATE a syntactically well-formed encoding
     of a type-invalid program is still malformed input: the decoder
     is the trust boundary for persisted corpora. *)
  if Progcheck.debug_enabled () then begin
    match Progcheck.errors target p with
    | [] -> ()
    | errs ->
      fail
        (Fmt.str "@[<v>decoded program fails validation:@,%a@]"
           Fmt.(list ~sep:cut Healer_util.Diagnostic.pp)
           errs)
  end;
  p
