(** Symbolic argument values of a test-case program.

    Values are symbolic because resource arguments refer to the result
    of an earlier call by index ([Res_ref]); the executor resolves them
    at run time. *)

type t =
  | Int of int64  (** Scalars: ints, consts, flags, lens, procs. *)
  | Res_ref of int  (** The resource produced by the call at index. *)
  | Res_special of int64  (** A special value (e.g. [-1]) in a resource slot. *)
  | Str of string
  | Buf of bytes
  | Group of t list  (** Struct or array payload. *)
  | Ptr of t  (** Pointer to a payload. *)
  | Null  (** Null pointer. *)
  | Vma of int64  (** Address of a mapped region. *)

val refs : t -> int list
(** All call indices referenced (recursively). *)

val mem_ref : int -> t -> bool
(** [mem_ref i v] — does [v] contain [Res_ref i]? Early-exiting,
    allocation-free form of [List.mem i (refs v)]. *)

val refs_below : int -> t -> bool
(** [refs_below k v] — does every [Res_ref i] in [v] satisfy
    [0 <= i < k]? The per-call well-formedness predicate. *)

val map_refs : (int -> t option) -> t -> t
(** [map_refs f v] replaces each [Res_ref i] by [f i] when it returns
    [Some], recursively. Used to fix up references when calls move. *)

val equal : t -> t -> bool

val byte_size : t -> int
(** Byte-size model used to resolve and validate [len\[...\]]
    arguments: scalars count 8 bytes, strings/buffers their payload,
    groups the sum of their members; pointers are transparent and
    [Null] is 0. *)

val pp : Format.formatter -> t -> unit
