module Syscall = Healer_syzlang.Syscall

type call = { syscall : Syscall.t; args : Value.t list }
type t = { calls : call array }

let of_list calls = { calls = Array.of_list calls }
let length p = Array.length p.calls

let call p i =
  if i < 0 || i >= Array.length p.calls then
    invalid_arg (Printf.sprintf "Prog.call: index %d out of range" i);
  p.calls.(i)

let empty = { calls = [||] }

let append p c =
  let n = Array.length p.calls in
  let calls = Array.make (n + 1) c in
  Array.blit p.calls 0 calls 0 n;
  { calls }

let map_call_refs f c =
  let args' = List.map (Value.map_refs f) c.args in
  if List.for_all2 ( == ) args' c.args then c else { c with args = args' }

(* remove/insert build the edited call array in one allocation;
   [map_call_refs] keeps untouched calls physically shared with the
   source program, which lets Compiled's derived forms (and any
   per-call memoization keyed by [==]) reuse work across edits. *)
let remove p i =
  if i < 0 || i >= length p then invalid_arg "Prog.remove: index out of range";
  let fix j =
    if j = i then Some (Value.Res_special (-1L))
    else if j > i then Some (Value.Res_ref (j - 1))
    else None
  in
  let n = Array.length p.calls in
  {
    calls =
      Array.init (n - 1) (fun k ->
          if k < i then p.calls.(k) else map_call_refs fix p.calls.(k + 1));
  }

let insert p i c =
  if i < 0 || i > length p then invalid_arg "Prog.insert: index out of range";
  let fix j = if j >= i then Some (Value.Res_ref (j + 1)) else None in
  let n = Array.length p.calls in
  {
    calls =
      Array.init (n + 1) (fun k ->
          if k < i then p.calls.(k)
          else if k = i then c
          else map_call_refs fix p.calls.(k - 1));
  }

let sub p n =
  if n < 0 || n > length p then invalid_arg "Prog.sub: bad length";
  { calls = Array.sub p.calls 0 n }

let refs_of_call c =
  List.sort_uniq Int.compare (List.concat_map Value.refs c.args)

let well_formed p =
  let n = Array.length p.calls in
  let rec go k =
    k >= n
    || (List.for_all (Value.refs_below k) p.calls.(k).args && go (k + 1))
  in
  go 0

let uses_result_of p i =
  let n = Array.length p.calls in
  let rec go k =
    k < n && (List.exists (Value.mem_ref i) p.calls.(k).args || go (k + 1))
  in
  go (i + 1)

(* Growable program under construction: generation and mutation build
   programs by repeated insertion, which on immutable [t] costs a full
   copy per producer call. The builder amortizes that — one mutable
   array with doubling growth, converted to a program once at the
   end. *)
module Builder = struct
  type prog = t
  type t = { mutable arr : call array; mutable len : int }

  let create () = { arr = [||]; len = 0 }
  let of_prog (p : prog) = { arr = Array.copy p.calls; len = Array.length p.calls }
  let length b = b.len

  let call b i =
    if i < 0 || i >= b.len then
      invalid_arg (Printf.sprintf "Prog.Builder.call: index %d out of range" i);
    b.arr.(i)

  let push b c =
    let cap = Array.length b.arr in
    if b.len = cap then begin
      let arr = Array.make (max 8 (2 * cap)) c in
      Array.blit b.arr 0 arr 0 b.len;
      b.arr <- arr
    end;
    b.arr.(b.len) <- c;
    b.len <- b.len + 1

  (* Same semantics as {!insert} (shift up, renumber references), in
     place. *)
  let insert b i c =
    if i < 0 || i > b.len then
      invalid_arg "Prog.Builder.insert: index out of range";
    let fix j = if j >= i then Some (Value.Res_ref (j + 1)) else None in
    push b c;
    for k = b.len - 1 downto i + 1 do
      b.arr.(k) <- map_call_refs fix b.arr.(k - 1)
    done;
    b.arr.(i) <- c

  let to_prog b = { calls = Array.sub b.arr 0 b.len }
end

let pp ppf p =
  Array.iteri
    (fun i c ->
      if i > 0 then Fmt.cut ppf ();
      let produces = c.syscall.Syscall.ret <> None in
      if produces then Fmt.pf ppf "r%d = " i;
      Fmt.pf ppf "%s(%a)" c.syscall.Syscall.name
        Fmt.(list ~sep:(any ", ") Value.pp)
        c.args)
    p.calls

let to_string p = Fmt.str "@[<v>%a@]" pp p
