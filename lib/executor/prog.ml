module Syscall = Healer_syzlang.Syscall

type call = { syscall : Syscall.t; args : Value.t list }
type t = { calls : call array }

let of_list calls = { calls = Array.of_list calls }
let length p = Array.length p.calls

let call p i =
  if i < 0 || i >= Array.length p.calls then
    invalid_arg (Printf.sprintf "Prog.call: index %d out of range" i);
  p.calls.(i)

let empty = { calls = [||] }
let append p c = { calls = Array.append p.calls [| c |] }

let map_call_refs f c =
  let args' = List.map (Value.map_refs f) c.args in
  if List.for_all2 ( == ) args' c.args then c else { c with args = args' }

let remove p i =
  if i < 0 || i >= length p then invalid_arg "Prog.remove: index out of range";
  let fix j =
    if j = i then Some (Value.Res_special (-1L))
    else if j > i then Some (Value.Res_ref (j - 1))
    else None
  in
  let calls =
    Array.to_list p.calls
    |> List.filteri (fun k _ -> k <> i)
    |> List.map (map_call_refs fix)
  in
  of_list calls

let insert p i c =
  if i < 0 || i > length p then invalid_arg "Prog.insert: index out of range";
  let fix j = if j >= i then Some (Value.Res_ref (j + 1)) else None in
  let before = Array.sub p.calls 0 i |> Array.to_list in
  let after =
    Array.sub p.calls i (length p - i)
    |> Array.to_list
    |> List.map (map_call_refs fix)
  in
  of_list (before @ (c :: after))

let sub p n =
  if n < 0 || n > length p then invalid_arg "Prog.sub: bad length";
  { calls = Array.sub p.calls 0 n }

let refs_of_call c =
  List.sort_uniq Int.compare (List.concat_map Value.refs c.args)

let well_formed p =
  let ok = ref true in
  Array.iteri
    (fun k c -> List.iter (fun i -> if i >= k || i < 0 then ok := false) (refs_of_call c))
    p.calls;
  !ok

let uses_result_of p i =
  let used = ref false in
  Array.iteri
    (fun k c -> if k > i && List.mem i (refs_of_call c) then used := true)
    p.calls;
  !used

let pp ppf p =
  Array.iteri
    (fun i c ->
      if i > 0 then Fmt.cut ppf ();
      let produces = c.syscall.Syscall.ret <> None in
      if produces then Fmt.pf ppf "r%d = " i;
      Fmt.pf ppf "%s(%a)" c.syscall.Syscall.name
        Fmt.(list ~sep:(any ", ") Value.pp)
        c.args)
    p.calls

let to_string p = Fmt.str "@[<v>%a@]" pp p
