(** Compact binary program encoding.

    This is the analogue of HEALER's ivshmem wire format: the fuzzer
    serializes each test case into a compact byte string that the
    in-guest executor decodes. Integers use LEB128 varints (zigzag for
    signed payloads); the encoding is self-delimiting. *)

exception Malformed of string

val encode : Prog.t -> string

val encode_call : Prog.call -> string
(** Wire encoding of a single call (the per-call slice of {!encode},
    without the program header). The execution cache keys its prefix
    trie on these strings, so two calls compare equal exactly when
    their serialized forms do. *)

val put_call : Buffer.t -> Prog.call -> unit
(** [encode_call] into a caller-provided buffer (not cleared first) —
    lets the execution cache reuse one scratch buffer per probe. *)

val decode : Healer_syzlang.Target.t -> string -> Prog.t
(** Raises {!Malformed} on truncated or corrupt input, or when a
    syscall id does not exist in [target]. When
    {!Progcheck.debug_enabled} is set, additionally raises
    {!Malformed} if the decoded program has {!Progcheck} errors:
    well-formed bytes encoding a type-invalid program are still
    malformed input. *)

val put_uvarint : Buffer.t -> int64 -> unit
(** Exposed for tests. *)

val get_uvarint : string -> int ref -> int64
(** Exposed for tests. Raises {!Malformed}. *)
