(** Compact binary program encoding.

    This is the analogue of HEALER's ivshmem wire format: the fuzzer
    serializes each test case into a compact byte string that the
    in-guest executor decodes. Integers use LEB128 varints (zigzag for
    signed payloads); the encoding is self-delimiting. *)

exception Malformed of string

val encode : Prog.t -> string

val decode : Healer_syzlang.Target.t -> string -> Prog.t
(** Raises {!Malformed} on truncated or corrupt input, or when a
    syscall id does not exist in [target]. When
    {!Progcheck.debug_enabled} is set, additionally raises
    {!Malformed} if the decoded program has {!Progcheck} errors:
    well-formed bytes encoding a type-invalid program are still
    malformed input. *)

val put_uvarint : Buffer.t -> int64 -> unit
(** Exposed for tests. *)

val get_uvarint : string -> int ref -> int64
(** Exposed for tests. Raises {!Malformed}. *)
