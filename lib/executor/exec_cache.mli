(** Prefix-caching execution engine for probe workloads.

    HEALER's minimization (Algorithm 1) and dynamic relation learning
    (Algorithm 2) replay O(n²) candidate programs per interesting
    input, and consecutive candidates share almost their entire call
    prefix. This cache memoizes [(boot config, encoded call prefix) →
    (kernel snapshot, per-call results)] in a bounded trie: a probe
    resumes from the deepest cached snapshot on its path (via
    {!Healer_kernel.Kernel.copy}) instead of re-executing from call 0,
    and a fully-cached program executes nothing at all.

    Correctness rules:
    - Execution is deterministic given the boot config and call
      sequence, so cached results are bit-identical to live ones —
      campaign curves must not change with the cache on or off.
    - Only calls that complete without crashing create trie nodes; a
      crashed kernel is never retained, so crash-reaching probes
      re-crash live (and triage sees real reports). Fault-injected
      runs bypass the cache entirely (fault sites change semantics).
    - Snapshots are promoted onto a prefix the second time it is
      executed (first visits only record results), and the final state
      of a crash-free run is retained for free; an LRU bound caps
      retained snapshots and the trie flushes wholesale at
      [node_capacity].

    The cache only ever models simulator wall-clock: virtual-clock
    charging in the fuzzer is unchanged.

    Under the compiled engine ({!Exec.compiled_enabled}) trie nodes
    additionally carry the call's {!Compiled.ccall}: a probe assembles
    its compiled program from the trie for the shared prefix and
    compiles only the new suffix, so a mutate→execute step never
    re-lowers calls it shares with previous probes.

    A small per-physical-program memo additionally caches each
    program's serialized key and, once known, its crash-free result
    array: a verbatim warm re-probe (the same [Prog.t] value run
    again) returns without serializing or hashing anything. Programs
    are immutable and execution deterministic, so the memo is pure
    content and needs no invalidation. *)

type t

type stats = {
  mutable hits : int;  (** Runs resumed from a snapshot (depth > 0). *)
  mutable full_hits : int;  (** Runs served with zero execution. *)
  mutable misses : int;  (** Runs executed from a fresh boot. *)
  mutable evictions : int;  (** Snapshots dropped (LRU + flushes). *)
  mutable flushes : int;  (** Whole-trie drops at [node_capacity]. *)
  mutable resumed_calls : int;  (** Calls skipped via cached prefixes. *)
  mutable executed_calls : int;  (** Calls run live through the cache. *)
  mutable compiled_calls : int;  (** Calls lowered by the compiled engine. *)
  mutable reused_ccalls : int;  (** Compiled forms reused from the trie. *)
}

val create :
  ?capacity:int ->
  ?node_capacity:int ->
  ?san:Healer_kernel.Sanitizer.config ->
  ?features:string list ->
  version:Healer_kernel.Version.t ->
  unit ->
  t
(** A cache for one boot configuration (the key's first component is
    fixed per instance; the pool shares one cache across its VMs,
    which all boot identically). [capacity] bounds retained snapshots
    (LRU), [node_capacity] bounds trie nodes. *)

val run : t -> ?cov:Healer_kernel.Coverage.t -> Prog.t -> Exec.run_result
(** Execute [p] from a fresh logical boot, resuming from the longest
    cached prefix. Result is bit-identical to
    [snd (Exec.run kernel p)] on a kernel with this cache's boot
    config. *)

val enabled_from_env : unit -> bool
(** [HEALER_EXEC_CACHE=0|false|off|no] disables the cache; anything
    else (including unset) enables it. *)

val stats : t -> stats
val hit_rate : t -> float
(** hits / (hits + misses); 0 before any run. *)

val snapshot_count : t -> int
val node_count : t -> int

val clear : t -> unit
(** Drop every cached prefix (counts as a flush; stats survive). *)
