(** A virtual-machine instance: the QEMU analogue.

    Owns a booted kernel and its lifecycle: executing a crashing test
    case leaves the VM in a crashed state, and it must be reset
    (rebooted) before the next execution — the campaign engine charges
    boot time for that, as a real fuzzer pays for QEMU restarts. *)

type stats = {
  mutable execs : int;
  mutable crashes : int;
  mutable resets : int;
}

type t

val create :
  ?san:Healer_kernel.Sanitizer.config ->
  ?features:string list ->
  version:Healer_kernel.Version.t ->
  id:int ->
  unit ->
  t

val id : t -> int
val crashed : t -> bool

val reset : t -> unit
(** Reboot after a crash (no-op on a healthy VM; counted only when it
    follows a crash). *)

val run : t -> ?fault_call:int -> Prog.t -> Exec.run_result
(** Execute a program. Automatically {!reset}s first when the previous
    run crashed. *)

val run_probe : t -> ?cache:Exec_cache.t -> Prog.t -> Exec.run_result
(** Like {!run} without fault injection, but served through the
    prefix-execution cache when one is given (identical results —
    execution is deterministic — and identical stats bookkeeping).
    Falls back to {!run} when [cache] is absent. *)

val stats : t -> stats
val version : t -> Healer_kernel.Version.t
