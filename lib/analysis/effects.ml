(* Pass 7: effect-model drift.

   The checking core lives in [Healer_kernel.Effect] (shared with the
   runtime validator in [Kernel.exec_call]); this pass adapts its
   findings onto the Diagnostic framework with stable [effect-*] IDs.
   Like lock specs, effect specs have no source position — subjects
   name the subsystem/handler instead.

   The two [effect-undeclared-*] IDs are produced by the runtime
   validator (observed trace vs declared spec, HEALER_DEBUG_VALIDATE),
   never by this static pass; they are cataloged here so
   `--list-checks` documents them, exactly like lockdep's
   [lock-spec-mismatch]. *)

module Effect = Healer_kernel.Effect
module Lock = Healer_kernel.Lock
open Pass

let checks =
  [
    ( "effect-unknown-slot",
      Diagnostic.Error,
      "effect spec names a state slot outside the interned/guarded vocabulary"
    );
    ( "effect-orphan-spec",
      Diagnostic.Error,
      "effect spec declared for a handler that does not exist" );
    ( "effect-missing-spec",
      Diagnostic.Warning,
      "lock spec declares mutations but no effect spec summarizes the \
       handler's reads/writes" );
    ( "effect-guard-mismatch",
      Diagnostic.Error,
      "lock spec declares a mutated slot the effect spec does not write" );
    ( "effect-undeclared-read",
      Diagnostic.Error,
      "runtime read of a state slot outside the handler's declared effect \
       spec" );
    ( "effect-undeclared-write",
      Diagnostic.Error,
      "runtime write of a state slot outside the handler's declared effect \
       spec" );
  ]

let severity_of check =
  match List.find_opt (fun (id, _, _) -> String.equal id check) checks with
  | Some (_, sev, _) -> sev
  | None -> Diagnostic.Error

let to_diagnostic (f : Effect.finding) =
  Diagnostic.v ~check:f.Effect.check ~severity:(severity_of f.Effect.check)
    ~subject:f.Effect.subject f.Effect.msg

let run input =
  match input.effects with
  | None -> []
  | Some model ->
    let lock =
      match input.locks with
      | Some l -> l
      | None -> { Lock.classes = []; specs = [] }
    in
    List.map to_diagnostic
      (Effect.check_model ~lock ?handlers:input.handlers model)

let pass =
  {
    pass_name = "effects";
    doc =
      "declared handler effect summaries vs the slot vocabulary, handler \
       tables and lock-spec mutation claims";
    checks;
    run;
  }
