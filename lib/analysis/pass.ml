(* Pass framework: what a pass sees and what a pass is.

   Passes are pure: they read an [input] and return diagnostics. The
   input bundles the fully-elaborated target with everything a pass
   may want that the target alone cannot answer — the raw located
   declarations (for pre-compile checks), the kernel handler tables
   (for drift checks) and a position resolver mapping a global source
   line back to a printable origin. *)

module Target = Healer_syzlang.Target
module Parser = Healer_syzlang.Parser

type input = {
  name : string;
  (* Raw declarations with source lines; empty when the target was
     built programmatically. *)
  decls : (Parser.decl * int) list;
  (* None when compilation failed; decl-level checks still run. *)
  target : Target.t option;
  (* (call name, subsystem) pairs; None disables handler-drift checks
     (e.g. when analyzing a standalone description file). *)
  handlers : (string * string) list option;
  (* (file_op name, subsystem) pairs. *)
  file_ops : (string * string) list;
  (* Maps a global decl line to a printable position. *)
  resolve : int -> Diagnostic.pos option;
  (* The kernel's lock model (classes + declared handler specs); None
     when analyzing a standalone description file, which disables the
     lockdep pass. *)
  locks : Healer_kernel.Lock.model option;
  (* The kernel's effect model (slot vocabulary + declared handler
     effect specs); None when analyzing a standalone description file,
     which disables the effect-drift, race and relation-inference
     passes. *)
  effects : Healer_kernel.Effect.model option;
  (* Diagnostics produced while loading (parse/compile failures). *)
  pre : Diagnostic.t list;
}

type t = {
  pass_name : string;
  doc : string;
  checks : (string * Diagnostic.severity * string) list;
      (* (check ID, severity, one-line description) *)
  run : input -> Diagnostic.t list;
}

(* Position of a declaration, via the target's decl table. *)
let decl_pos input kind name =
  match input.target with
  | None -> None
  | Some t -> Option.bind (Target.decl_line t kind name) input.resolve

(* Position of a located declaration from the raw decl list. *)
let line_pos input line = if line > 0 then input.resolve line else None
