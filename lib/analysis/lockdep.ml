(* Pass 6: static lockdep over the kernel's declared lock model.

   The checking core lives in [Healer_kernel.Lock] (shared with the
   runtime validator in [Kernel.exec_call]); this pass adapts its
   findings onto the Diagnostic framework with stable [lock-*] IDs.
   Lock specs have no source position — their subjects name the
   subsystem/handler or state slot instead. *)

module Lock = Healer_kernel.Lock
module Effect = Healer_kernel.Effect
open Pass

let checks =
  [
    ( "lock-unknown-class",
      Diagnostic.Error,
      "spec acquires or releases an undeclared lock class" );
    ( "lock-double-acquire",
      Diagnostic.Error,
      "spec acquires a class it already holds (self-deadlock)" );
    ( "lock-release-unheld",
      Diagnostic.Error,
      "spec releases a class it does not hold" );
    ( "lock-held-at-exit",
      Diagnostic.Error,
      "spec exits a handler still holding a class (acquire without release)" );
    ( "lock-rank-violation",
      Diagnostic.Error,
      "acquisition contradicts the classes' declared nesting ranks" );
    ( "lock-order-cycle",
      Diagnostic.Error,
      "the declared lock-order graph has a cycle (ABBA deadlock candidate)" );
    ( "lock-guard-coverage",
      Diagnostic.Warning,
      "state slot mutated under different or no lock classes, or read (per \
       the effect spec) without holding a guarding class (data-race \
       candidate)" );
    ( "lock-spec-mismatch",
      Diagnostic.Error,
      "runtime acquisition trace diverges from the handler's declared spec" );
    ( "lock-unused-class",
      Diagnostic.Info,
      "lock class declared but never acquired by any handler spec" );
  ]

let severity_of check =
  match List.find_opt (fun (id, _, _) -> String.equal id check) checks with
  | Some (_, sev, _) -> sev
  | None -> Diagnostic.Error

let to_diagnostic (f : Lock.finding) =
  Diagnostic.v ~check:f.Lock.check ~severity:(severity_of f.Lock.check)
    ~subject:f.Lock.subject f.Lock.msg

(* Read-side guard coverage gets its read sets from the effect model:
   each handler's declared (non-wildcard) read-only slots, minus the
   slots a registered known race already accounts for — the fixture
   races are the race pass's domain ([race-known-bug]), and reporting
   them here too would dirty the corpus gate. *)
let effect_reads effects =
  match effects with
  | None -> []
  | Some em ->
    let known = Effect.registered_races () in
    List.filter_map
      (fun (sub, handler, (sp : Effect.spec)) ->
        let reads =
          List.filter
            (fun s ->
              (not (String.equal s Effect.wildcard))
              && (not (List.mem s sp.Effect.writes))
              && not
                   (List.exists
                      (fun (k : Effect.known_race) ->
                        String.equal k.Effect.kslot s
                        && List.mem handler k.Effect.parties)
                      known))
            sp.Effect.reads
        in
        if reads = [] then None else Some (sub, handler, reads))
      em.Effect.especs

let run input =
  match input.locks with
  | None -> []
  | Some model ->
    List.map to_diagnostic
      (Lock.check_model ~reads:(effect_reads input.effects) model)

let pass =
  {
    pass_name = "lockdep";
    doc =
      "lock-order graph, acquire/release discipline and guard coverage over \
       the declared lock model";
    checks;
    run;
  }
