(* Pass 2: reachability fixpoint (syzkaller's "enabled calls" analysis).

   A call is enabled when every resource kind it consumes can be
   produced by some already-enabled call (inheritance-aware). The seed
   set is the calls that consume nothing. Calls outside the fixpoint
   can only ever run with special/garbage resource values, and
   resources outside it can never hold a live value — both silently
   weaken relation learning. *)

module Target = Healer_syzlang.Target
module Syscall = Healer_syzlang.Syscall
open Pass

let checks =
  [
    ( "reach-unreachable-call",
      Diagnostic.Warning,
      "call can never have all resource inputs satisfied" );
    ( "reach-unproducible-resource",
      Diagnostic.Warning,
      "consumed resource kind is never produced by a reachable call" );
  ]

(* Returns (enabled flags indexed by call id, producible kind set). *)
let enabled_set t =
  let calls = Target.syscalls t in
  let n = Array.length calls in
  let enabled = Array.make n false in
  let available : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let can_consume kind =
    Hashtbl.fold
      (fun p () acc -> acc || Target.compatible t ~consumer:kind ~producer:p)
      available false
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (c : Syscall.t) ->
        if
          (not enabled.(c.Syscall.id))
          && List.for_all can_consume (Target.consumes t c)
        then begin
          enabled.(c.Syscall.id) <- true;
          List.iter
            (fun k ->
              if not (Hashtbl.mem available k) then begin
                Hashtbl.replace available k ();
                changed := true
              end)
            (Target.produces t c);
          changed := true
        end)
      calls
  done;
  (enabled, available)

let run input =
  match input.target with
  | None -> []
  | Some t ->
    let enabled, available = enabled_set t in
    let producible kind =
      Hashtbl.fold
        (fun p () acc -> acc || Target.compatible t ~consumer:kind ~producer:p)
        available false
    in
    let calls =
      Array.to_list (Target.syscalls t)
      |> List.filter_map (fun (c : Syscall.t) ->
             if enabled.(c.Syscall.id) then None
             else
               let missing =
                 List.filter (fun k -> not (producible k)) (Target.consumes t c)
               in
               Some
                 (Diagnostic.vf
                    ?pos:(decl_pos input `Call c.Syscall.name)
                    ~check:"reach-unreachable-call"
                    ~severity:Diagnostic.Warning
                    ~subject:("call " ^ c.Syscall.name)
                    "no call sequence can satisfy its inputs (missing: %s)"
                    (String.concat ", " missing)))
    in
    let kinds =
      Target.resource_kinds t
      |> List.filter_map (fun kind ->
             let consumed_by_someone =
               Array.exists
                 (fun (c : Syscall.t) ->
                   List.exists
                     (fun k -> Target.compatible t ~consumer:k ~producer:kind)
                     (Target.consumes t c))
                 (Target.syscalls t)
             in
             if consumed_by_someone && not (producible kind) then
               Some
                 (Diagnostic.vf
                    ?pos:(decl_pos input `Resource kind)
                    ~check:"reach-unproducible-resource"
                    ~severity:Diagnostic.Warning ~subject:("resource " ^ kind)
                    "consumed, but no reachable call produces it")
             else None)
    in
    calls @ kinds

let pass =
  {
    pass_name = "reachability";
    doc = "transitively-enabled call set and producible resource kinds";
    checks;
    run;
  }
