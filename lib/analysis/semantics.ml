(* Pass 1: deep description semantics.

   Checks the typed structure of every declaration beyond what
   Target.compile enforces. Everything here is a silent-corruption
   hazard for relation learning: a Len that never resolves generates
   garbage lengths, a mis-directed resource flips produce/consume
   edges, an unboxed struct cycle has infinite size, and an
   out-of-width range can never be generated faithfully. *)

module Ty = Healer_syzlang.Ty
module Field = Healer_syzlang.Field
module Target = Healer_syzlang.Target
module Parser = Healer_syzlang.Parser
module Syscall = Healer_syzlang.Syscall
open Pass

let checks =
  [
    ( "sem-dup-spec",
      Diagnostic.Error,
      "duplicate call, struct, union, flags or resource declaration" );
    ( "sem-res-special-width",
      Diagnostic.Error,
      "resource special value does not fit its builtin integer parent" );
    ( "sem-len-target",
      Diagnostic.Error,
      "len[] does not name a resolvable sibling field" );
    ( "sem-dir-conflict",
      Diagnostic.Error,
      "resource direction contradicts the enclosing pointer direction" );
    ( "sem-struct-cycle",
      Diagnostic.Error,
      "struct/union reference cycle without pointer indirection" );
    ( "sem-int-range",
      Diagnostic.Error,
      "integer range does not fit the declared width" );
    ( "sem-const-width",
      Diagnostic.Error,
      "ioctl command constant exceeds 32 bits" );
  ]

(* ---- decl-level checks (run even when compilation failed) ---- *)

let builtin_bits = function
  | "int8" -> Some 8
  | "int16" -> Some 16
  | "int32" -> Some 32
  | "int64" | "intptr" -> Some 64
  | _ -> None

let fits_width bits v =
  bits >= 64
  || Int64.compare v (Int64.neg (Int64.shift_left 1L (bits - 1))) >= 0
     && Int64.compare v (Int64.sub (Int64.shift_left 1L bits) 1L) <= 0

let decl_name = function
  | Parser.Resource { name; _ } -> ("resource", name)
  | Parser.Flagset { name; _ } -> ("flags", name)
  | Parser.Structdef { name; _ } -> ("struct", name)
  | Parser.Uniondef { name; _ } -> ("union", name)
  | Parser.Call { name; _ } -> ("call", name)

let check_duplicates input =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun (decl, line) ->
      let kind, name = decl_name decl in
      let key = kind ^ ":" ^ name in
      match Hashtbl.find_opt seen key with
      | None ->
        Hashtbl.add seen key line;
        None
      | Some first ->
        Some
          (Diagnostic.vf
             ?pos:(line_pos input line)
             ~check:"sem-dup-spec" ~severity:Diagnostic.Error
             ~subject:(kind ^ " " ^ name)
             "duplicate declaration of %s %s (first at line %d)" kind name
             first))
    input.decls

let check_special_widths input =
  List.concat_map
    (fun (decl, line) ->
      match decl with
      | Parser.Resource { name; parent; values } -> (
        match builtin_bits parent with
        | None -> []
        | Some bits ->
          List.filter_map
            (fun v ->
              if fits_width bits v then None
              else
                Some
                  (Diagnostic.vf
                     ?pos:(line_pos input line)
                     ~check:"sem-res-special-width" ~severity:Diagnostic.Error
                     ~subject:("resource " ^ name)
                     "special value %Ld does not fit parent %s" v parent))
            values)
      | _ -> [])
    input.decls

(* ---- target-level checks ---- *)

(* Every field group in the target: call argument lists plus struct and
   union bodies, each with the decl position kind used to locate it. *)
let groups t : (Target.decl_kind * string * Field.t list) list =
  let calls =
    Array.to_list (Target.syscalls t)
    |> List.map (fun (c : Syscall.t) -> (`Call, c.Syscall.name, c.Syscall.args))
  in
  let structs =
    List.map (fun n -> (`Struct, n, Target.struct_fields t n)) (Target.struct_names t)
  in
  let unions =
    List.map (fun n -> (`Union, n, Target.union_fields t n)) (Target.union_names t)
  in
  calls @ structs @ unions

let kind_label : Target.decl_kind -> string = function
  | `Call -> "call"
  | `Struct -> "struct"
  | `Union -> "union"
  | `Flags -> "flags"
  | `Resource -> "resource"

(* A Len only resolves when it sits directly at field position and its
   target names a sibling in the same group (see Value_gen.resolve_lens,
   which is the single consumer of this contract). *)
let check_len_targets input t =
  let out = ref [] in
  let emit ?pos ~subject fmt = Fmt.kstr
      (fun m ->
        out :=
          Diagnostic.v ?pos ~check:"sem-len-target" ~severity:Diagnostic.Error
            ~subject m
          :: !out)
      fmt
  in
  List.iter
    (fun (kind, gname, fields) ->
      let pos = decl_pos input kind gname in
      let subject = kind_label kind ^ " " ^ gname in
      let siblings = List.map (fun (f : Field.t) -> f.Field.fname) fields in
      List.iter
        (fun (f : Field.t) ->
          (* Direct Len: target must be a sibling. *)
          (match f.Field.fty with
          | Ty.Len target when not (List.mem target siblings) ->
            emit ?pos ~subject "len[%s] in field %s does not name a sibling"
              target f.Field.fname
          | _ -> ());
          (* Nested Len (under ptr/array at any depth) never resolves. *)
          let rec nested depth (ty : Ty.t) =
            match ty with
            | Ty.Len target when depth > 0 ->
              emit ?pos ~subject
                "len[%s] in field %s is nested under ptr/array and can never \
                 resolve"
                target f.Field.fname
            | Ty.Ptr { elem; _ } -> nested (depth + 1) elem
            | Ty.Array { elem; _ } -> nested (depth + 1) elem
            | _ -> ()
          in
          nested 0 f.Field.fty)
        fields)
    (groups t);
  !out

(* Directions of resources reachable from a struct/union body without
   crossing a pointer (a nested pointer re-anchors direction). Used to
   catch conflicts across a struct boundary: ptr[in, s] where s holds a
   Res Out is exactly the case Target.collect_res_deep silently
   overrides. *)
let exposed_dirs t =
  let memo = Hashtbl.create 32 in
  let rec of_name fuel name fields =
    match Hashtbl.find_opt memo name with
    | Some dirs -> dirs
    | None when fuel = 0 -> []
    | None ->
      let dirs =
        List.concat_map (fun (f : Field.t) -> of_ty (fuel - 1) f.Field.fty) fields
      in
      Hashtbl.replace memo name dirs;
      dirs
  and of_ty fuel (ty : Ty.t) =
    match ty with
    | Ty.Res { dir; _ } -> [ dir ]
    | Ty.Array { elem; _ } -> of_ty fuel elem
    | Ty.Struct_ref n when fuel > 0 -> of_name fuel n (Target.struct_fields t n)
    | Ty.Union_ref n when fuel > 0 -> of_name fuel n (Target.union_fields t n)
    | _ -> []
  in
  fun name fields -> of_name 8 name fields

let opposite a b =
  match (a, b) with Ty.In, Ty.Out | Ty.Out, Ty.In -> true | _ -> false

let check_dir_conflicts input t =
  let exposed = exposed_dirs t in
  let out = ref [] in
  let conflict ~pos ~subject ~fname ptr_dir res_dir via =
    out :=
      Diagnostic.vf ?pos ~check:"sem-dir-conflict" ~severity:Diagnostic.Error
        ~subject "field %s: resource marked %a under ptr[%a%s] is never %s"
        fname Ty.pp_dir res_dir Ty.pp_dir ptr_dir via
        (match res_dir with Ty.Out -> "written back" | _ -> "read")
      :: !out
  in
  List.iter
    (fun (kind, gname, fields) ->
      let pos = decl_pos input kind gname in
      let subject = kind_label kind ^ " " ^ gname in
      List.iter
        (fun (f : Field.t) ->
          let rec walk ptr_dir (ty : Ty.t) =
            match ty with
            | Ty.Res { dir; _ } -> (
              match ptr_dir with
              | Some pd when opposite pd dir ->
                conflict ~pos ~subject ~fname:f.Field.fname pd dir ""
              | _ -> ())
            | Ty.Ptr { dir; elem } -> walk (Some dir) elem
            | Ty.Array { elem; _ } -> walk ptr_dir elem
            | Ty.Struct_ref n -> (
              match ptr_dir with
              | Some pd ->
                List.iter
                  (fun d ->
                    if opposite pd d then
                      conflict ~pos ~subject ~fname:f.Field.fname pd d
                        (", " ^ n))
                  (List.sort_uniq Stdlib.compare
                     (exposed n (Target.struct_fields t n)))
              | None -> ())
            | Ty.Union_ref n -> (
              match ptr_dir with
              | Some pd ->
                List.iter
                  (fun d ->
                    if opposite pd d then
                      conflict ~pos ~subject ~fname:f.Field.fname pd d
                        (", " ^ n))
                  (List.sort_uniq Stdlib.compare
                     (exposed n (Target.union_fields t n)))
              | None -> ())
            | _ -> ()
          in
          walk None f.Field.fty)
        fields)
    (groups t);
  !out

(* Struct/union references reachable without pointer indirection form a
   DAG in any finite-size layout; a cycle means infinite inline size. *)
let check_struct_cycles input t =
  let members name =
    try Target.struct_fields t name
    with _ -> ( try Target.union_fields t name with _ -> [])
  in
  let rec inline_refs acc (ty : Ty.t) =
    match ty with
    | Ty.Struct_ref n | Ty.Union_ref n -> n :: acc
    | Ty.Array { elem; _ } -> inline_refs acc elem
    | _ -> acc
  in
  let succ name =
    List.concat_map
      (fun (f : Field.t) -> inline_refs [] f.Field.fty)
      (members name)
  in
  let all = Target.struct_names t @ Target.union_names t in
  let reported = Hashtbl.create 8 in
  let out = ref [] in
  let rec dfs path name =
    if List.mem name path then begin
      (* Cycle: the suffix of [path] from [name]. *)
      let rec cycle = function
        | [] -> []
        | x :: rest -> if x = name then [ x ] else x :: cycle rest
      in
      let members = List.sort_uniq String.compare (name :: cycle path) in
      let key = String.concat "->" members in
      if not (Hashtbl.mem reported key) then begin
        Hashtbl.add reported key ();
        let is_struct = List.mem name (Target.struct_names t) in
        let kind : Target.decl_kind = if is_struct then `Struct else `Union in
        out :=
          Diagnostic.vf
            ?pos:(decl_pos input kind name)
            ~check:"sem-struct-cycle" ~severity:Diagnostic.Error
            ~subject:((if is_struct then "struct " else "union ") ^ name)
            "reference cycle without pointer indirection: %s"
            (String.concat " -> " (List.sort_uniq String.compare members))
          :: !out
      end
    end
    else List.iter (dfs (name :: path)) (succ name)
  in
  List.iter (dfs []) all;
  !out

let check_int_ranges input t =
  let out = ref [] in
  List.iter
    (fun (kind, gname, fields) ->
      let pos = decl_pos input kind gname in
      let subject = kind_label kind ^ " " ^ gname in
      List.iter
        (fun (f : Field.t) ->
          let rec walk (ty : Ty.t) =
            match ty with
            | Ty.Int { bits; range = Some (lo, hi) }
              when bits < 64 && not (fits_width bits lo && fits_width bits hi)
              ->
              out :=
                Diagnostic.vf ?pos ~check:"sem-int-range"
                  ~severity:Diagnostic.Error ~subject
                  "field %s: range [%Ld:%Ld] does not fit int%d" f.Field.fname
                  lo hi bits
                :: !out
            | Ty.Ptr { elem; _ } -> walk elem
            | Ty.Array { elem; _ } -> walk elem
            | _ -> ()
          in
          walk f.Field.fty)
        fields)
    (groups t);
  !out

(* Real ioctl commands are u32; a wider cmd constant means the
   specialization can never match the kernel's switch. *)
let check_const_widths input t =
  Array.to_list (Target.syscalls t)
  |> List.concat_map (fun (c : Syscall.t) ->
         if not (String.equal c.Syscall.base "ioctl") then []
         else
           match c.Syscall.args with
           | _ :: { Field.fname; fty = Ty.Const v } :: _
             when Int64.compare v 0L < 0
                  || Int64.compare v 0xFFFFFFFFL > 0 ->
             [
               Diagnostic.vf
                 ?pos:(decl_pos input `Call c.Syscall.name)
                 ~check:"sem-const-width" ~severity:Diagnostic.Error
                 ~subject:("call " ^ c.Syscall.name)
                 "ioctl command constant %s = 0x%Lx does not fit u32" fname v;
             ]
           | _ -> [])

let run input =
  let decl_level = check_duplicates input @ check_special_widths input in
  match input.target with
  | None -> decl_level
  | Some t ->
    decl_level @ check_len_targets input t @ check_dir_conflicts input t
    @ check_struct_cycles input t @ check_int_ranges input t
    @ check_const_widths input t

let pass =
  {
    pass_name = "semantics";
    doc = "deep description semantics beyond what compilation enforces";
    checks;
    run;
  }
