(* Program-corpus validation: the [Healer_analysis] face of the
   executor-level validator ([Healer_executor.Progcheck]).

   The engine lives down in [Healer_executor] so the generation /
   mutation / serialization pipeline can enforce it without a
   dependency cycle; this module adapts it to the analyzer workflow —
   validating whole persisted corpora, summarizing per-check counts and
   rendering the JSON report `healer analyze --prog` emits. *)

module P = Healer_executor.Progcheck
module Prog = Healer_executor.Prog
module Target = Healer_syzlang.Target

let checks = P.checks
let check = P.check
let errors = P.errors
let is_clean = P.is_clean

(* All diagnostics over a corpus of named programs, sorted. [src]
   names each program in positions (e.g. "corpus.db#3"). *)
let validate target (progs : (string option * Prog.t) list) =
  List.concat_map (fun (src, p) -> P.check ?src target p) progs
  |> List.sort Diagnostic.compare

(* Per-check occurrence counts in catalog order, zero entries
   omitted. *)
let count_by_check (ds : Diagnostic.t list) =
  List.filter_map
    (fun (id, _, _) ->
      match
        List.length
          (List.filter (fun (d : Diagnostic.t) -> String.equal d.Diagnostic.check id) ds)
      with
      | 0 -> None
      | n -> Some (id, n))
    checks

(* The `healer analyze --prog --json` document: the description
   report's envelope plus a program count and per-check counts. *)
let report_to_json ~name ~programs (ds : Diagnostic.t list) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"target\":\"%s\",\"programs\":%d,\"errors\":%d,\"warnings\":%d,\"infos\":%d,\"checks\":["
       (Diagnostic.json_escape name)
       programs
       (Diagnostic.count Diagnostic.Error ds)
       (Diagnostic.count Diagnostic.Warning ds)
       (Diagnostic.count Diagnostic.Info ds));
  List.iteri
    (fun i (id, n) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"check\":\"%s\",\"count\":%d}"
           (Diagnostic.json_escape id) n))
    (count_by_check ds);
  Buffer.add_string buf "],\"diagnostics\":[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Diagnostic.to_json d))
    ds;
  Buffer.add_string buf "]}";
  Buffer.contents buf
