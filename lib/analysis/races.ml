(* Pass 8: Eraser-style lockset race detection over declared effects.

   For every (non-wildcard) state slot, intersect the lock classes
   held at each handler's declared accesses: a write/write or
   write/read pair whose locksets are disjoint is a candidate race.
   The detection core is [Healer_kernel.Effect.races]; candidates are
   classified against PR 6's declared lock-order graph (a guarding
   class preceding both locksets masks the race by convention) and the
   known-race catalog (the deliberately-unguarded fixture races behind
   the version-gated data-race bugs stay visible, at Info, without
   dirtying the corpus gate).

   The kernel is single-threaded, so — like lockdep — these are
   declared-discipline findings on executions that never actually
   raced; that is exactly Eraser's point. *)

module Effect = Healer_kernel.Effect
open Pass

let checks =
  [
    ( "race-unguarded-slot",
      Diagnostic.Warning,
      "write/write or write/read handler pair on a slot where one side \
       holds no lock at all" );
    ( "race-disjoint-locksets",
      Diagnostic.Warning,
      "write/write or write/read handler pair on a slot under disjoint \
       locksets" );
    ( "race-order-masked",
      Diagnostic.Info,
      "disjoint-lockset pair masked by a guarding class that precedes both \
       sides in the declared lock order" );
    ( "race-known-bug",
      Diagnostic.Info,
      "candidate race pair registered as an intentional version-gated \
       data-race bug" );
  ]

let severity_of check =
  match List.find_opt (fun (id, _, _) -> String.equal id check) checks with
  | Some (_, sev, _) -> sev
  | None -> Diagnostic.Warning

let to_diagnostic (f : Effect.finding) =
  Diagnostic.v ~check:f.Effect.check ~severity:(severity_of f.Effect.check)
    ~subject:f.Effect.subject f.Effect.msg

let run input =
  match (input.effects, input.locks) with
  | Some model, Some lock ->
    List.map to_diagnostic
      (Effect.races ~lock ~known:(Effect.registered_races ()) model)
  | _ -> []

let pass =
  {
    pass_name = "races";
    doc =
      "Eraser-style lockset race candidates over the declared effect and \
       lock models";
    checks;
    run;
  }
