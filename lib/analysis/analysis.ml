(* The analyzer entry points: build an [Pass.input] from a source
   string, a compiled target or the built-in kernel corpus, then run
   the registered passes and return sorted diagnostics. *)

module Target = Healer_syzlang.Target
module Parser = Healer_syzlang.Parser
module Lexer = Healer_syzlang.Lexer
module Kernel = Healer_kernel.Kernel
module Subsystem = Healer_kernel.Subsystem

let passes : Pass.t list =
  [
    Semantics.pass; Reachability.pass; Drift.pass; Relations.pass; Lint.pass;
    Lockdep.pass; Effects.pass; Races.pass; Rel_infer.pass;
  ]

(* Every (check ID, severity, description, pass name), for docs and
   `healer analyze --list-checks`. Loader pseudo-checks and the
   program validator's checks included. *)
let all_checks =
  ("parse-error", Diagnostic.Error, "description does not parse", "loader")
  :: ("compile-error", Diagnostic.Error, "description does not compile", "loader")
  :: List.concat_map
       (fun (p : Pass.t) ->
         List.map (fun (id, sev, doc) -> (id, sev, doc, p.Pass.pass_name)) p.Pass.checks)
       passes
  @ List.map (fun (id, sev, doc) -> (id, sev, doc, "progcheck")) Progcheck.checks

let run ?(passes = passes) (input : Pass.input) =
  let ds =
    input.Pass.pre
    @ List.concat_map (fun (p : Pass.t) -> p.Pass.run input) passes
  in
  List.sort_uniq Diagnostic.compare ds

(* ---- input builders ---- *)

let of_target ?(name = "target") target : Pass.input =
  {
    name;
    decls = [];
    target = Some target;
    handlers = None;
    file_ops = [];
    resolve = (fun line -> Some { Diagnostic.src = None; line });
    locks = None;
    effects = None;
    pre = [];
  }

(* Analyze a description source. Parse and compile failures become
   diagnostics rather than exceptions, so `healer analyze broken.txt`
   reports instead of crashing; decl-level checks still run on
   whatever parsed. *)
let of_source ?(name = "source") src : Pass.input =
  let resolve line = Some { Diagnostic.src = Some name; line } in
  let fail ~check ~line msg =
    {
      Pass.name;
      decls = [];
      target = None;
      handlers = None;
      file_ops = [];
      resolve;
      locks = None;
      effects = None;
      pre =
        [
          Diagnostic.v
            ~pos:{ Diagnostic.src = Some name; line }
            ~check ~severity:Diagnostic.Error ~subject:name msg;
        ];
    }
  in
  match Parser.parse_located src with
  | exception Lexer.Error { line; msg } -> fail ~check:"parse-error" ~line msg
  | exception Parser.Error { line; msg } -> fail ~check:"parse-error" ~line msg
  | decls -> (
    let base : Pass.input =
      {
        name;
        decls;
        target = None;
        handlers = None;
        file_ops = [];
        resolve;
        locks = None;
        effects = None;
        pre = [];
      }
    in
    match Target.compile_located ~name decls with
    | target -> { base with target = Some target }
    | exception Target.Compile_error msg ->
      {
        base with
        pre =
          [
            Diagnostic.v ~check:"compile-error" ~severity:Diagnostic.Error
              ~subject:name msg;
          ];
      })

(* The full built-in corpus: all subsystem descriptions, the compiled
   target, the handler tables and file_ops, with positions resolved
   back to (subsystem, local line). *)
let of_kernel () : Pass.input =
  let subs = Kernel.subsystems () in
  let handlers =
    List.concat_map
      (fun (s : Subsystem.t) ->
        List.map (fun (name, _) -> (name, s.Subsystem.name)) s.Subsystem.handlers)
      subs
  in
  let file_ops =
    List.concat_map
      (fun (s : Subsystem.t) ->
        List.map
          (fun (fo : Subsystem.file_op) -> (fo.Subsystem.op_name, s.Subsystem.name))
          s.Subsystem.file_ops)
      subs
  in
  let resolve line =
    match Kernel.locate_line line with
    | Some (sub, local) -> Some { Diagnostic.src = Some sub; line = local }
    | None -> Some { Diagnostic.src = None; line }
  in
  {
    name = "healer-sim";
    decls = Parser.parse_located (Kernel.source ());
    target = Some (Kernel.target ());
    handlers = Some handlers;
    file_ops;
    resolve;
    locks = Some (Kernel.lock_model ());
    effects = Some (Kernel.effect_model ());
    pre = [];
  }
