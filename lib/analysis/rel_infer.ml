(* Pass 9: relation inference from effect summaries.

   The write(slot)→read(slot) handler-pair graph over the declared
   effect model predicts influence edges: a handler mutating shared
   state that another handler reads is exactly HEALER's relation,
   justified by state rather than by resource flow. Diffing the
   prediction against [Static_learning.initial_table] yields:

   - [rel-infer-new-edge]: predicted edges the static resource rule
     misses — candidate relations dynamic learning should confirm,
     reported per writer in a parseable "reader via slot" form (the
     generator could seed these some day);
   - [rel-infer-unjustified]: static edges between two spec-carrying
     handlers that share no state slot — the influence flows through
     the returned resource value alone, so the effect model predicts
     no path sensitivity beyond validity;
   - [rel-infer-summary]: the counts, with the predicted graph held to
     the same sparsity expectation ([Relations.dense_threshold]) as
     the static table.

   Everything here is Info: the diff is a signal for the learning
   loop, not a defect in the corpus. *)

module Effect = Healer_kernel.Effect
module Target = Healer_syzlang.Target
module Syscall = Healer_syzlang.Syscall
module Static_learning = Healer_core.Static_learning
module Relation_table = Healer_core.Relation_table
open Pass

let checks =
  [
    ( "rel-infer-new-edge",
      Diagnostic.Info,
      "effect summaries predict influence edges missing from the static \
       relation seed" );
    ( "rel-infer-unjustified",
      Diagnostic.Info,
      "static relation edge between spec-carrying handlers with no shared \
       state slot (resource-flow only)" );
    ( "rel-infer-summary",
      Diagnostic.Info,
      "effect-predicted edges vs the static relation table" );
  ]

(* Non-wildcard slots a spec touches (reads or writes). *)
let slots_of (sp : Effect.spec) =
  List.filter
    (fun s -> not (String.equal s Effect.wildcard))
    (List.sort_uniq compare (sp.Effect.reads @ sp.Effect.writes))

let run input =
  match (input.target, input.effects) with
  | None, _ | _, None -> []
  | Some t, Some em ->
    let table = Static_learning.initial_table t in
    let idx name =
      Option.map (fun (c : Syscall.t) -> c.Syscall.id) (Target.find t name)
    in
    let predicted = Effect.predicted_edges em in
    let corroborated = ref 0 and off_target = ref 0 in
    (* writer -> (reader, slot) list, insertion order per writer *)
    let news : (string, (string * string) list ref) Hashtbl.t =
      Hashtbl.create 16
    in
    let writers_in_order = ref [] in
    List.iter
      (fun (w, r, s) ->
        match (idx w, idx r) with
        | Some i, Some j ->
          if Relation_table.get table i j then incr corroborated
          else begin
            match Hashtbl.find_opt news w with
            | Some l -> l := (r, s) :: !l
            | None ->
              Hashtbl.add news w (ref [ (r, s) ]);
              writers_in_order := w :: !writers_in_order
          end
        | _ ->
          (* A spec on a handler outside the target (drift's domain). *)
          incr off_target)
      predicted;
    let new_count =
      Hashtbl.fold (fun _ l acc -> acc + List.length !l) news 0
    in
    let new_edges =
      List.rev_map
        (fun w ->
          let es = List.rev !(Hashtbl.find news w) in
          Diagnostic.vf ~check:"rel-infer-new-edge" ~severity:Diagnostic.Info
            ~subject:("handler " ^ w)
            "effect summaries predict %d relation(s) the static seed misses: \
             %s"
            (List.length es)
            (String.concat ", "
               (List.map (fun (r, s) -> Printf.sprintf "%s via %S" r s) es)))
        !writers_in_order
    in
    (* Static edges with no effect-level justification: both endpoints
       declare specs, yet no slot is shared. *)
    let spec_of name =
      List.find_map
        (fun (_, h, sp) -> if String.equal h name then Some sp else None)
        em.Effect.especs
    in
    let unjustified =
      List.filter_map
        (fun (i, j) ->
          let a = Target.syscall t i and b = Target.syscall t j in
          match (spec_of a.Syscall.name, spec_of b.Syscall.name) with
          | Some sa, Some sb ->
            let la = slots_of sa and lb = slots_of sb in
            if la <> [] && lb <> [] && not (List.exists (fun s -> List.mem s lb) la)
            then
              Some
                (Diagnostic.vf ~check:"rel-infer-unjustified"
                   ~severity:Diagnostic.Info
                   ~subject:
                     (Printf.sprintf "relation %s -> %s" a.Syscall.name
                        b.Syscall.name)
                   "static edge shares no state slot (resource-flow only): \
                    the effect model predicts no state-mediated influence")
            else None
          | _ -> None)
        (Relation_table.edges table)
    in
    let n = Target.n_syscalls t in
    let pairs = n * (n - 1) in
    let density =
      if pairs = 0 then 0.0
      else float_of_int (List.length predicted) /. float_of_int pairs
    in
    let summary =
      Diagnostic.vf ~check:"rel-infer-summary" ~severity:Diagnostic.Info
        ~subject:"effect-predicted relations"
        "%d effect-predicted edges (%.2f%% of ordered pairs%s): %d \
         corroborated by the static seed, %d candidate new, %d off-target; \
         %d static edges resource-flow-only"
        (List.length predicted) (100.0 *. density)
        (if density > Relations.dense_threshold && n >= 8 then
           Printf.sprintf ", above the %.0f%% sparsity expectation"
             (100.0 *. Relations.dense_threshold)
         else "")
        !corroborated new_count !off_target
        (List.length unjustified)
    in
    new_edges @ unjustified @ [ summary ]

let pass =
  {
    pass_name = "rel-infer";
    doc =
      "influence edges predicted by shared-state effects, diffed against \
       the static relation seed";
    checks;
    run;
  }
