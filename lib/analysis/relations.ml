(* Pass 4: static-relation soundness.

   The static relation table (HEALER §4.1) is the seed for everything
   the fuzzer learns, so every edge must be actionable: both endpoints
   reachable per the enabled-calls fixpoint. The pass also reports
   density statistics — the paper's Table 3 reports ~5878 relations
   over 3579 calls, a sparse graph, so a dense table means the static
   rule degenerated into noise. *)

module Target = Healer_syzlang.Target
module Syscall = Healer_syzlang.Syscall
module Static_learning = Healer_core.Static_learning
module Relation_table = Healer_core.Relation_table
open Pass

(* Paper reference sparsity: 5878 edges / 3579 calls. Anything an
   order of magnitude denser than that per-pair rate scaled to small
   targets is suspicious; 15% of all ordered pairs is far beyond it.
   Shared with the effect-based inference pass ([Rel_infer]), which
   holds its predicted write→read graph to the same expectation — the
   paper's argument is about relation graphs in general, not just the
   resource-seeded one. *)
let dense_threshold = 0.15

let checks =
  [
    ( "rel-unreachable-producer",
      Diagnostic.Warning,
      "static relation edge with an unreachable endpoint" );
    ( "rel-dense",
      Diagnostic.Warning,
      "static relation table is implausibly dense vs the paper's sparsity" );
    ("rel-density", Diagnostic.Info, "static relation table statistics");
  ]

let run input =
  match input.target with
  | None -> []
  | Some t ->
    let table = Static_learning.initial_table t in
    let enabled, _ = Reachability.enabled_set t in
    let edges =
      List.filter_map
        (fun (a, b) ->
          let pa = Target.syscall t a and cb = Target.syscall t b in
          let dead =
            (if enabled.(a) then [] else [ pa.Syscall.name ])
            @ if enabled.(b) then [] else [ cb.Syscall.name ]
          in
          if dead = [] then None
          else
            Some
              (Diagnostic.vf
                 ?pos:(decl_pos input `Call pa.Syscall.name)
                 ~check:"rel-unreachable-producer"
                 ~severity:Diagnostic.Warning
                 ~subject:
                   (Printf.sprintf "relation %s -> %s" pa.Syscall.name
                      cb.Syscall.name)
                 "edge endpoint(s) unreachable: %s"
                 (String.concat ", " dead)))
        (Relation_table.edges table)
    in
    let n = Target.n_syscalls t in
    let count = Relation_table.count table in
    let pairs = n * (n - 1) in
    let density = if pairs = 0 then 0.0 else float_of_int count /. float_of_int pairs in
    let stats =
      Diagnostic.vf ~check:"rel-density" ~severity:Diagnostic.Info
        ~subject:"relation table"
        "%d static relations over %d calls (%.2f%% of ordered pairs, %.1f per \
         call)%s; paper: ~5878 relations / 3579 calls"
        count n (100.0 *. density)
        (if n = 0 then 0.0 else float_of_int count /. float_of_int n)
        (match input.effects with
        | None -> ""
        | Some em ->
          Printf.sprintf "; effect summaries predict %d write->read edges"
            (List.length (Healer_kernel.Effect.predicted_edges em)))
    in
    (* Tiny targets are naturally dense (a handful of calls around one
       resource), so the sparsity expectation only binds at scale. *)
    let dense =
      if density > dense_threshold && n >= 8 then
        [
          Diagnostic.vf ~check:"rel-dense" ~severity:Diagnostic.Warning
            ~subject:"relation table"
            "density %.1f%% exceeds %.0f%%: the static rule degenerated into \
             noise (paper tables are sparse)"
            (100.0 *. density)
            (100.0 *. dense_threshold);
        ]
      else []
    in
    edges @ dense @ [ stats ]

let pass =
  {
    pass_name = "relations";
    doc = "static relation table soundness and density";
    checks;
    run;
  }
