(* Pass 5: the legacy Target.lint checks, migrated into the framework
   (the old entry point is deprecated). Same findings, now with stable
   check IDs, severities and positions. *)

module Ty = Healer_syzlang.Ty
module Field = Healer_syzlang.Field
module Target = Healer_syzlang.Target
module Syscall = Healer_syzlang.Syscall
open Pass

let checks =
  [
    ("lint-unused-flagset", Diagnostic.Warning, "flag set is never referenced");
    ( "lint-unreachable-struct",
      Diagnostic.Warning,
      "struct is not reachable from any call" );
    ( "lint-unreachable-union",
      Diagnostic.Warning,
      "union is not reachable from any call" );
    ("lint-no-producer", Diagnostic.Warning, "resource has no producer");
    ("lint-no-consumer", Diagnostic.Warning, "resource has no consumer");
    ( "lint-unproducible-consume",
      Diagnostic.Warning,
      "call consumes a resource nothing can produce" );
  ]

let run input =
  match input.target with
  | None -> []
  | Some t ->
    let out = ref [] in
    let emit ?pos ~check ~subject fmt =
      Fmt.kstr
        (fun m ->
          out :=
            Diagnostic.v ?pos ~check ~severity:Diagnostic.Warning ~subject m
            :: !out)
        fmt
    in
    let used_flags = Hashtbl.create 32 in
    let used_structs = Hashtbl.create 32 in
    let used_unions = Hashtbl.create 32 in
    Array.iter
      (fun (c : Syscall.t) ->
        List.iter
          (fun (f : Field.t) ->
            Target.iter_ty t
              (function
                | Ty.Flags name -> Hashtbl.replace used_flags name ()
                | Ty.Struct_ref name -> Hashtbl.replace used_structs name ()
                | Ty.Union_ref name -> Hashtbl.replace used_unions name ()
                | _ -> ())
              f.Field.fty)
          c.Syscall.args)
      (Target.syscalls t);
    List.iter
      (fun name ->
        if not (Hashtbl.mem used_flags name) then
          emit
            ?pos:(decl_pos input `Flags name)
            ~check:"lint-unused-flagset"
            ~subject:("flags " ^ name)
            "flag set is never referenced")
      (Target.flagset_names t);
    List.iter
      (fun name ->
        if not (Hashtbl.mem used_structs name) then
          emit
            ?pos:(decl_pos input `Struct name)
            ~check:"lint-unreachable-struct"
            ~subject:("struct " ^ name)
            "not reachable from any call")
      (Target.struct_names t);
    List.iter
      (fun name ->
        if not (Hashtbl.mem used_unions name) then
          emit
            ?pos:(decl_pos input `Union name)
            ~check:"lint-unreachable-union"
            ~subject:("union " ^ name)
            "not reachable from any call")
      (Target.union_names t);
    let produced_somewhere kind =
      Array.exists
        (fun (c : Syscall.t) ->
          List.exists
            (fun r -> Target.compatible t ~consumer:kind ~producer:r)
            (Target.produces t c))
        (Target.syscalls t)
    in
    List.iter
      (fun kind ->
        let consumed =
          Array.exists
            (fun (c : Syscall.t) ->
              List.exists
                (fun k -> Target.compatible t ~consumer:k ~producer:kind)
                (Target.consumes t c))
            (Target.syscalls t)
        in
        if not (produced_somewhere kind) then
          emit
            ?pos:(decl_pos input `Resource kind)
            ~check:"lint-no-producer"
            ~subject:("resource " ^ kind)
            "no call produces it (or a compatible subkind)";
        if not consumed then
          emit
            ?pos:(decl_pos input `Resource kind)
            ~check:"lint-no-consumer"
            ~subject:("resource " ^ kind)
            "no call consumes it")
      (Target.resource_kinds t);
    Array.iter
      (fun (c : Syscall.t) ->
        List.iter
          (fun kind ->
            if not (produced_somewhere kind) then
              emit
                ?pos:(decl_pos input `Call c.Syscall.name)
                ~check:"lint-unproducible-consume"
                ~subject:("call " ^ c.Syscall.name)
                "consumes %s, which nothing can produce" kind)
          (Target.consumes t c))
      (Target.syscalls t);
    !out

let pass =
  {
    pass_name = "lint";
    doc = "legacy corpus hygiene checks (migrated from Target.lint)";
    checks;
    run;
  }
