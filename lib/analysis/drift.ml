(* Pass 3: handler drift.

   Cross-checks the description corpus against the kernel simulator's
   dispatch tables: every described call needs a registered handler
   (else the dispatcher answers ENOSYS and the description only wastes
   fuzzing budget), every registered handler needs a description (else
   the code is dead), and every file_op should correspond to some
   described call base. Skipped when the input carries no handler
   table (standalone description files). *)

module Target = Healer_syzlang.Target
module Syscall = Healer_syzlang.Syscall
open Pass

let checks =
  [
    ( "drift-missing-handler",
      Diagnostic.Error,
      "described call has no handler in any subsystem" );
    ( "drift-orphan-handler",
      Diagnostic.Error,
      "registered handler has no description" );
    ( "drift-orphan-fileop",
      Diagnostic.Warning,
      "file_op name matches no described call base" );
  ]

let run input =
  match (input.target, input.handlers) with
  | None, _ | _, None -> []
  | Some t, Some handlers ->
    let described = Hashtbl.create 256 in
    let bases = Hashtbl.create 64 in
    Array.iter
      (fun (c : Syscall.t) ->
        Hashtbl.replace described c.Syscall.name ();
        Hashtbl.replace bases c.Syscall.base ())
      (Target.syscalls t);
    let handled = Hashtbl.create 256 in
    List.iter (fun (name, _) -> Hashtbl.replace handled name ()) handlers;
    let missing =
      Array.to_list (Target.syscalls t)
      |> List.filter_map (fun (c : Syscall.t) ->
             if Hashtbl.mem handled c.Syscall.name then None
             else
               Some
                 (Diagnostic.vf
                    ?pos:(decl_pos input `Call c.Syscall.name)
                    ~check:"drift-missing-handler" ~severity:Diagnostic.Error
                    ~subject:("call " ^ c.Syscall.name)
                    "described but no subsystem registers a handler; the \
                     dispatcher will answer ENOSYS"))
    in
    let orphans =
      List.filter_map
        (fun (name, sub) ->
          if Hashtbl.mem described name then None
          else
            Some
              (Diagnostic.vf ~check:"drift-orphan-handler"
                 ~severity:Diagnostic.Error
                 ~subject:("handler " ^ name)
                 "subsystem %s registers a handler, but no description \
                  declares the call"
                 sub))
        handlers
    in
    let fileops =
      List.filter_map
        (fun (op, sub) ->
          if Hashtbl.mem bases op then None
          else
            Some
              (Diagnostic.vf ~check:"drift-orphan-fileop"
                 ~severity:Diagnostic.Warning
                 ~subject:("file_op " ^ op)
                 "subsystem %s registers file_op %S, which matches no \
                  described call base"
                 sub op))
        input.file_ops
    in
    missing @ orphans @ fileops

let pass =
  {
    pass_name = "drift";
    doc = "description corpus vs kernel handler tables and file_ops";
    checks;
    run;
  }
