(* The diagnostic currency moved down to [Healer_util] so the program
   validator in [Healer_executor] can produce the same type; this
   re-export keeps [Healer_analysis.Diagnostic] as the public face for
   passes, the CLI and the tests. *)

include Healer_util.Diagnostic
