(* Reproduction harness for every table and figure in the paper's
   evaluation (Section 6), plus micro-benchmarks and design ablations.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe fig4 table1     # selected sections
     dune exec bench/main.exe -- --json       # also write BENCH_results.json

   Environment:
     HEALER_BENCH_ROUNDS  rounds per experiment (default 5; paper: 10)
     HEALER_BENCH_HOURS   virtual hours per campaign (default 24)
     HEALER_BENCH_EXT     virtual hours of the extended per-version
                          campaign behind Table 5 (default 96)
     HEALER_BENCH_JOBS    worker domains for the campaign matrix
                          (default: Domain.recommended_domain_count)

   The campaign matrix behind the requested sections is prefetched
   through a domain pool (Campaign.run_matrix); each campaign is a
   deterministic function of (tool, version, seed, hours), so stdout
   is byte-identical whatever HEALER_BENCH_JOBS is — prefetch progress
   goes to stderr.

   Absolute numbers differ from the paper (the kernel is a simulator on
   a virtual clock); the comparisons are the reproduction target. *)

module Target = Healer_syzlang.Target
module Syscall = Healer_syzlang.Syscall
module K = Healer_kernel
open Healer_core

let env_int name default =
  match Sys.getenv_opt name with Some s -> int_of_string s | None -> default

let env_float name default =
  match Sys.getenv_opt name with Some s -> float_of_string s | None -> default

let rounds = env_int "HEALER_BENCH_ROUNDS" 5
let hours = env_float "HEALER_BENCH_HOURS" 24.0
let ext_hours = env_float "HEALER_BENCH_EXT" 96.0

let versions = K.Version.evaluated
let tools = Fuzzer.all_tools

let section name =
  Fmt.pr "@.=====================================================@.";
  Fmt.pr "  %s@." name;
  Fmt.pr "=====================================================@."

(* ---- memoized campaign matrix ---- *)

let cache : (string, Campaign.run) Hashtbl.t = Hashtbl.create 64

let key tool version seed h =
  Printf.sprintf "%s/%s/%d/%.1f" (Fuzzer.tool_name tool)
    (K.Version.to_string version) seed h

let campaign ?(h = hours) tool version seed =
  let k = key tool version seed h in
  match Hashtbl.find_opt cache k with
  | Some r -> r
  | None ->
    let r = Campaign.run_one ~hours:h ~seed ~tool ~version () in
    Hashtbl.replace cache k r;
    r

let runs_of ?(h = hours) tool version =
  List.init rounds (fun i -> campaign ~h tool version (i + 1))

(* ---- parallel prefetch of the matrix ---- *)

(* Which tools each section's tables draw on; the version axis is
   always [versions] and the seed axis 1..rounds at [hours]. *)
let section_tools =
  [
    ("fig4", [ Fuzzer.Healer; Fuzzer.Syzkaller; Fuzzer.Moonshine ]);
    ("table1", [ Fuzzer.Healer; Fuzzer.Syzkaller; Fuzzer.Moonshine ]);
    ("table2", [ Fuzzer.Healer; Fuzzer.Healer_minus ]);
    ("table3", [ Fuzzer.Healer ]);
    ("fig5", [ Fuzzer.Healer ]);
    ("fig6", tools);
    ("table4", tools);
  ]

(* Stats for the JSON report. *)
let prefetch_stats : (int * int * float) option ref = ref None

let prefetch requested =
  let wanted =
    List.concat_map
      (fun name ->
        match List.assoc_opt name section_tools with
        | Some ts ->
          List.concat_map
            (fun tool ->
              List.concat_map
                (fun version ->
                  List.init rounds (fun i -> (tool, version, i + 1, hours)))
                versions)
            ts
        | None ->
          if name = "table5" then
            let ext_rounds = max 1 (rounds / 2) in
            List.concat_map
              (fun version ->
                List.init ext_rounds (fun i ->
                    (Fuzzer.Healer, version, i + 1, ext_hours)))
              K.Version.all
          else [])
      requested
  in
  let specs =
    List.filter
      (fun (t, v, s, h) -> not (Hashtbl.mem cache (key t v s h)))
      (List.sort_uniq compare wanted)
  in
  if specs <> [] then begin
    let jobs = Campaign.default_jobs () in
    Fmt.epr "prefetching %d campaigns on %d domains...@." (List.length specs) jobs;
    let t0 = Unix.gettimeofday () in
    let runs = Campaign.run_matrix ~jobs specs in
    let dt = Unix.gettimeofday () -. t0 in
    List.iter2
      (fun (t, v, s, h) r -> Hashtbl.replace cache (key t v s h) r)
      specs runs;
    Fmt.epr "prefetched in %.1fs@." dt;
    prefetch_stats := Some (List.length specs, jobs, dt)
  end

(* ---- Figure 4: coverage growth over 24 hours ---- *)

let fig4 () =
  section "Figure 4: branch coverage growth over the campaign";
  List.iter
    (fun version ->
      Fmt.pr "@.Linux %s (avg of %d rounds)@." (K.Version.to_string version) rounds;
      Fmt.pr "  %6s %10s %10s %10s@." "hour" "healer" "syzkaller" "moonshine";
      let series tool = Campaign.average_series (runs_of tool version) in
      let h_series = series Fuzzer.Healer in
      let s_series = series Fuzzer.Syzkaller in
      let m_series = series Fuzzer.Moonshine in
      let steps = int_of_float (hours /. 2.0) in
      let step_times =
        Array.init steps (fun i -> float_of_int (i + 1) *. 2.0 *. 3600.0)
      in
      (* One synchronized pass per series instead of a full rescan per
         row: both the series and the query times ascend. *)
      let sampled series =
        let out = Array.make steps 0.0 in
        let rec go i last series =
          if i < steps then
            match series with
            | (t', v) :: rest when t' <= step_times.(i) -> go i v rest
            | _ ->
              out.(i) <- last;
              go (i + 1) last series
        in
        go 0 0.0 series;
        out
      in
      let h_at = sampled h_series in
      let s_at = sampled s_series in
      let m_at = sampled m_series in
      for step = 1 to steps do
        let t = step_times.(step - 1) in
        Fmt.pr "  %6.0f %10.0f %10.0f %10.0f@." (t /. 3600.0)
          h_at.(step - 1) s_at.(step - 1) m_at.(step - 1)
      done;
      let arr series = Array.of_list (List.map snd series) in
      Fmt.pr "@.%s@."
        (Healer_util.Asciichart.render
           ~series:
             [ ("healer", arr h_series); ("syzkaller", arr s_series);
               ("moonshine", arr m_series) ]
           ()))
    versions

(* ---- Tables 1 and 2: improvement + speedup ---- *)

let comparison_row version ~subject ~base =
  let pairs =
    List.init rounds (fun i ->
        let seed = i + 1 in
        (campaign base version seed, campaign subject version seed))
  in
  let imprs = List.map (fun (b, s) -> Campaign.improvement_pct ~base:b s) pairs in
  let speedups = List.filter_map (fun (b, s) -> Campaign.speedup ~base:b s) pairs in
  (imprs, speedups)

let print_comparison title ~subject ~base =
  Fmt.pr "@.%s@." title;
  Fmt.pr "  %-8s %9s %9s %9s %9s@." "Version" "min-impr" "max-impr" "Average"
    "Speed-up";
  let all_imprs = ref [] and all_speedups = ref [] in
  List.iter
    (fun version ->
      let imprs, speedups = comparison_row version ~subject ~base in
      all_imprs := imprs @ !all_imprs;
      all_speedups := speedups @ !all_speedups;
      Fmt.pr "  %-8s %+8.0f%% %+8.0f%% %+8.0f%% %8s@."
        (K.Version.to_string version)
        (Healer_util.Statx.minimum imprs)
        (Healer_util.Statx.maximum imprs)
        (Healer_util.Statx.mean imprs)
        (if speedups = [] then "n/a"
         else Printf.sprintf "+%.1fx" (Healer_util.Statx.mean speedups)))
    versions;
  Fmt.pr "  %-8s %+8.0f%% %+8.0f%% %+8.0f%% %8s@." "Overall"
    (Healer_util.Statx.minimum !all_imprs)
    (Healer_util.Statx.maximum !all_imprs)
    (Healer_util.Statx.mean !all_imprs)
    (if !all_speedups = [] then "n/a"
     else Printf.sprintf "+%.1fx" (Healer_util.Statx.mean !all_speedups))

let table1 () =
  section "Table 1: branch coverage of HEALER vs Syzkaller / Moonshine";
  print_comparison "(a) HEALER vs. Syzkaller" ~subject:Fuzzer.Healer
    ~base:Fuzzer.Syzkaller;
  print_comparison "(b) HEALER vs. Moonshine" ~subject:Fuzzer.Healer
    ~base:Fuzzer.Moonshine

let table2 () =
  section "Table 2: HEALER vs HEALER- (relation learning ablation)";
  print_comparison "HEALER vs. HEALER-" ~subject:Fuzzer.Healer
    ~base:Fuzzer.Healer_minus

(* ---- Table 3: learned relation counts ---- *)

let table3 () =
  section "Table 3: HEALER's learned relations count";
  Fmt.pr "  %-8s %8s %8s %8s@." "Version" "Min" "Max" "Average";
  let overall = ref [] in
  List.iter
    (fun version ->
      let counts =
        List.map
          (fun (r : Campaign.run) -> float_of_int r.Campaign.relations)
          (runs_of Fuzzer.Healer version)
      in
      overall := counts @ !overall;
      Fmt.pr "  %-8s %8.0f %8.0f %8.0f@." (K.Version.to_string version)
        (Healer_util.Statx.minimum counts)
        (Healer_util.Statx.maximum counts)
        (Healer_util.Statx.mean counts))
    versions;
  Fmt.pr "  %-8s %8.0f %8.0f %8.0f@." "Overall"
    (Healer_util.Statx.minimum !overall)
    (Healer_util.Statx.maximum !overall)
    (Healer_util.Statx.mean !overall)

(* ---- Figure 5: relation graph evolution over the first 3 hours ---- *)

let fig5 () =
  section "Figure 5: evolution of the learned relations (first 3 hours)";
  let run = campaign Fuzzer.Healer K.Version.V5_11 1 in
  let target = K.Kernel.target () in
  let static = Static_learning.initial_table target in
  List.iter
    (fun (t, edges) ->
      let nodes =
        List.sort_uniq Int.compare (List.concat_map (fun (a, b) -> [ a; b ]) edges)
      in
      let dynamic =
        List.filter (fun (a, b) -> not (Relation_table.get static a b)) edges
      in
      let kvm_edges =
        List.filter
          (fun (a, b) ->
            K.Kernel.subsystem_of (Target.syscall target a).Syscall.name = "kvm"
            && K.Kernel.subsystem_of (Target.syscall target b).Syscall.name = "kvm")
          edges
      in
      Fmt.pr "@.t = %.0fh: %d relations, %d calls involved, %d learned dynamically@."
        (t /. 3600.0) (List.length edges) (List.length nodes) (List.length dynamic);
      Fmt.pr "  KVM subgraph (%d edges):@." (List.length kvm_edges);
      List.iter
        (fun (a, b) ->
          Fmt.pr "    %-34s -> %s@."
            (Target.syscall target a).Syscall.name
            (Target.syscall target b).Syscall.name)
        kvm_edges)
    run.Campaign.relation_snapshots

(* ---- Figure 6: minimized sequence length distribution ---- *)

let fig6 () =
  section "Figure 6: distribution of minimized sequence lengths in the corpus";
  let hist lengths =
    let total = max 1 (List.length lengths) in
    let bucket pred = float_of_int (List.length (List.filter pred lengths))
                      /. float_of_int total in
    [ bucket (fun l -> l = 1); bucket (fun l -> l = 2); bucket (fun l -> l = 3);
      bucket (fun l -> l = 4); bucket (fun l -> l >= 5) ]
  in
  Fmt.pr "  %-10s %8s | %6s %6s %6s %6s %6s | %7s %7s@." "tool" "corpus" "len1"
    "len2" "len3" "len4" "len5+" ">=3" ">=5";
  List.iter
    (fun tool ->
      let runs = List.concat_map (fun v -> runs_of tool v) versions in
      let lengths = List.concat_map (fun (r : Campaign.run) -> r.Campaign.corpus_lengths) runs in
      let sizes =
        Healer_util.Statx.mean
          (List.map (fun (r : Campaign.run) -> float_of_int r.Campaign.corpus_size) runs)
      in
      let h = hist lengths in
      let frac pred =
        float_of_int (List.length (List.filter pred lengths))
        /. float_of_int (max 1 (List.length lengths))
      in
      Fmt.pr "  %-10s %8.0f | %6.2f %6.2f %6.2f %6.2f %6.2f | %6.0f%% %6.0f%%@."
        (Fuzzer.tool_name tool) sizes (List.nth h 0) (List.nth h 1) (List.nth h 2)
        (List.nth h 3) (List.nth h 4)
        (100.0 *. frac (fun l -> l >= 3))
        (100.0 *. frac (fun l -> l >= 5)))
    tools

(* ---- Table 4 + Section 6.3: 24h bug detection ---- *)

let found_keys tool =
  List.concat_map
    (fun version ->
      List.concat_map
        (fun (r : Campaign.run) ->
          List.map (fun (c : Triage.record) -> c.Triage.bug_key) r.Campaign.crashes)
        (runs_of tool version))
    versions
  |> List.sort_uniq String.compare

let known_only keys =
  List.filter
    (fun k -> match K.Bug.find k with Some b -> b.K.Bug.known | None -> false)
    keys

let table4 () =
  section "Table 4 / Section 6.3: vulnerabilities in the 24h experiments";
  let per_tool = List.map (fun tool -> (tool, found_keys tool)) tools in
  Fmt.pr "@.Previously-known vulnerabilities found (paper: HEALER 32, Moonshine 20, Syzkaller 17, HEALER- 10):@.";
  List.iter
    (fun (tool, keys) ->
      Fmt.pr "  %-10s %d known (+%d previously unknown)@." (Fuzzer.tool_name tool)
        (List.length (known_only keys))
        (List.length keys - List.length (known_only keys)))
    per_tool;
  let healer_keys = List.assoc Fuzzer.Healer per_tool in
  let others =
    List.concat_map
      (fun tool -> if tool = Fuzzer.Healer then [] else List.assoc tool per_tool)
      tools
    |> List.sort_uniq String.compare
  in
  let missed_by_healer = List.filter (fun k -> not (List.mem k healer_keys)) others in
  Fmt.pr "@.Bugs found by baselines but not HEALER (paper: 3, all needing USB emulation):@.";
  List.iter
    (fun k ->
      let req =
        match K.Bug.find k with
        | Some { K.Bug.requires = Some f; _ } -> " [requires executor feature: " ^ f ^ "]"
        | _ -> ""
      in
      Fmt.pr "  %s%s@." k req)
    missed_by_healer;
  (* The Table 4 body: previously-known bugs only HEALER found, with
     the measured reproducer length. *)
  let healer_only =
    List.filter (fun k -> not (List.mem k others)) (known_only healer_keys)
  in
  Fmt.pr "@.Previously-known bugs found only by HEALER (paper's Table 4):@.";
  Fmt.pr "  %-48s %-8s %s@." "Vulnerability" "Version" "Length";
  List.iter
    (fun k ->
      let b = K.Bug.find_exn k in
      let lengths =
        List.concat_map
          (fun version ->
            List.filter_map
              (fun (r : Campaign.run) ->
                List.find_map
                  (fun (c : Triage.record) ->
                    if c.Triage.bug_key = k then Some c.Triage.repro_len else None)
                  r.Campaign.crashes)
              (runs_of Fuzzer.Healer version))
          versions
      in
      let length = match lengths with [] -> 0 | l -> List.fold_left min 99 l in
      Fmt.pr "  %-48s %-8s %d@." b.K.Bug.title
        (K.Version.to_string b.K.Bug.since)
        length)
    healer_only

(* ---- Table 5: the extended multi-version campaign ---- *)

let table5 () =
  section "Table 5: previously unknown vulnerabilities (extended campaign)";
  Fmt.pr "  (HEALER on every kernel version, %.0f virtual hours each)@.@."
    ext_hours;
  let ext_rounds = max 1 (rounds / 2) in
  let found =
    List.concat_map
      (fun version ->
        List.concat_map
          (fun seed ->
            let run = campaign ~h:ext_hours Fuzzer.Healer version seed in
            List.map (fun (c : Triage.record) -> c.Triage.bug_key) run.Campaign.crashes)
          (List.init ext_rounds (fun i -> i + 1)))
      K.Version.all
    |> List.sort_uniq String.compare
  in
  let unknown = K.Bug.unknown_bugs () in
  let hit = List.filter (fun (b : K.Bug.t) -> List.mem b.K.Bug.key found) unknown in
  Fmt.pr "  found %d of the %d previously-unknown vulnerabilities:@.@."
    (List.length hit) (List.length unknown);
  Fmt.pr "  %-10s %-58s %-26s %s@." "Subsystem" "Operations" "Risk" "Version";
  List.iter
    (fun (b : K.Bug.t) ->
      let mark = if List.mem b.K.Bug.key found then " " else "*" in
      Fmt.pr "  %-10s %-58s %-26s %-5s %s@." b.K.Bug.subsystem b.K.Bug.operations
        (K.Risk.to_string b.K.Bug.risk)
        (K.Version.to_string b.K.Bug.since)
        mark)
    unknown;
  Fmt.pr "@.  (* = not reproduced in this run)@.";
  (* Risk-class profile, Section 6.3. *)
  let risks = List.map (fun (b : K.Bug.t) -> b.K.Bug.risk) hit in
  let frac pred =
    100.0
    *. float_of_int (List.length (List.filter pred risks))
    /. float_of_int (max 1 (List.length risks))
  in
  Fmt.pr "@.  risk profile of found bugs: %.1f%% memory errors, %.1f%% concurrency, %.1f%% other@."
    (frac K.Risk.is_memory_error)
    (frac K.Risk.is_concurrency)
    (frac (fun r -> not (K.Risk.is_memory_error r || K.Risk.is_concurrency r)))

(* ---- ablations over the design decisions (DESIGN.md section 4) ---- *)

let ablation () =
  section "Ablations: alpha policy, static/dynamic learning";
  let run name cfg =
    let f = Fuzzer.create cfg in
    Fuzzer.run_until f (hours *. 3600.0);
    Fmt.pr "  %-34s coverage=%5d relations=%4d alpha=%.2f@." name
      (Fuzzer.coverage f) (Fuzzer.relation_count f) (Fuzzer.alpha_value f)
  in
  let base ?fixed_alpha ?(static = true) ?(dynamic = true) () =
    Fuzzer.config ~seed:1 ?fixed_alpha ~use_static_learning:static
      ~use_dynamic_learning:dynamic ~tool:Fuzzer.Healer ~version:K.Version.V5_11
      ()
  in
  run "adaptive alpha (paper)" (base ());
  List.iter
    (fun a -> run (Printf.sprintf "fixed alpha = %.1f" a) (base ~fixed_alpha:a ()))
    [ 0.0; 0.2; 0.5; 0.8; 1.0 ];
  run "no static learning" (base ~static:false ());
  run "no dynamic learning" (base ~dynamic:false ());
  run "no learning at all" (base ~static:false ~dynamic:false ())

(* ---- micro-benchmarks (bechamel) ---- *)

(* name -> ns/run, for the JSON report. *)
let micro_results : (string * float) list ref = ref []

(* Counters of the probe cache exercised by the cache-on rows (and the
   [cache] smoke section), for the JSON report. *)
let probe_cache_stats : (Healer_executor.Exec_cache.stats * float) option ref =
  ref None

let report_cache_stats cache =
  let s = Healer_executor.Exec_cache.stats cache in
  let rate = Healer_executor.Exec_cache.hit_rate cache in
  Fmt.pr "  %-26s %d hits / %d misses (%.0f%% hit rate), %d resumed, %d evictions@."
    "probe cache" s.Healer_executor.Exec_cache.hits
    s.Healer_executor.Exec_cache.misses (100.0 *. rate)
    s.Healer_executor.Exec_cache.resumed_calls
    s.Healer_executor.Exec_cache.evictions;
  probe_cache_stats := Some (s, rate)

let micro () =
  section "Micro-benchmarks (bechamel)";
  let open Bechamel in
  let target = K.Kernel.target () in
  let kernel = K.Kernel.boot ~version:K.Version.V5_11 () in
  let rng = Healer_util.Rng.create 1 in
  let table = Static_learning.initial_table target in
  let sample_prog =
    Gen.generate rng target
      ~select:(fun ~sub:_ -> Healer_util.Rng.int rng (Target.n_syscalls target))
      ()
  in
  let encoded = Healer_executor.Serializer.encode sample_prog in
  let choice = Choice_table.create target in
  (* Steady-state fixtures for the hot-path benches: a long-lived
     collector, a run result already merged into the feedback bitmap,
     and its coverage traces. *)
  let bench_cov = K.Coverage.create () in
  let sample_run = snd (Healer_executor.Exec.run ~cov:bench_cov kernel sample_prog) in
  let feedback = Feedback.create () in
  ignore (Feedback.process feedback sample_run);
  let trace = Healer_executor.Exec.total_cov sample_run in
  let trace_shuffled = List.rev trace in
  let sample_pc =
    Prog_cov.of_run sample_prog sample_run
      ~new_cov:(Array.map (fun (c : Healer_executor.Exec.call_result) -> c.Healer_executor.Exec.cov) sample_run.Healer_executor.Exec.calls)
  in
  let min_exec p = snd (Healer_executor.Exec.run ~cov:bench_cov kernel p) in
  (* One long-lived cache, like the fuzzer's pool: successive probe
     sweeps over the same test case hit warm prefixes. *)
  let probe_cache = Healer_executor.Exec_cache.create ~version:K.Version.V5_11 () in
  let cached_exec p = Healer_executor.Exec_cache.run probe_cache ~cov:bench_cov p in
  let dlearn exec () =
    let t = Relation_table.create (Target.n_syscalls target) in
    ignore (Dynamic_learning.learn ~exec ~table:t [ sample_pc ])
  in
  (* A deterministic netlink round-trip — rtnetlink link bring-up, a
     generic-netlink family resolution and a queue drain — isolating
     the nlmsghdr/TLV parsing hot path. *)
  let netlink_prog =
    let module V = Healer_executor.Value in
    let nlcall name args =
      { Healer_executor.Prog.syscall = Target.find_exn target name; args }
    in
    let iv n = V.Int (Int64.of_int n) in
    let ifname = V.Group [ V.Group [ V.Group [ iv 8; iv 3; V.Str "eth0" ] ] ] in
    Healer_executor.Prog.of_list
      [
        nlcall "socket$nl_route" [ iv 16; iv 3; iv 0 ];
        nlcall "sendmsg$RTM_SETLINK"
          [
            V.Res_ref 0;
            V.Ptr
              (V.Group
                 [ iv 32; iv 19; iv 0; iv 0;
                   V.Group [ iv 0; iv 0; iv 0; iv 1; iv 1 ]; ifname ]);
            iv 0;
          ];
        nlcall "socket$nl_generic" [ iv 16; iv 3; iv 16 ];
        nlcall "sendmsg$GETFAMILY"
          [
            V.Res_ref 2;
            V.Ptr (V.Group [ iv 32; iv 3; iv 2; V.Str "devlink" ]);
            iv 0;
          ];
        nlcall "recvmsg$netlink" [ V.Res_ref 0; V.Buf (Bytes.make 64 'x'); iv 64; iv 0 ];
      ]
  in
  let tests =
    [
      Test.make ~name:"exec program"
        (Staged.stage (fun () ->
             ignore (Healer_executor.Exec.run ~cov:bench_cov kernel sample_prog)));
      Test.make ~name:"netlink exec"
        (Staged.stage (fun () ->
             ignore (Healer_executor.Exec.run ~cov:bench_cov kernel netlink_prog)));
      Test.make ~name:"feedback process"
        (Staged.stage (fun () -> ignore (Feedback.process feedback sample_run)));
      Test.make ~name:"bitset new_of"
        (Staged.stage (fun () ->
             ignore (Healer_util.Bitset.new_of (Feedback.seen feedback) trace)));
      Test.make ~name:"cov_equal"
        (Staged.stage (fun () ->
             ignore (Healer_executor.Exec.cov_equal trace trace_shuffled)));
      Test.make ~name:"minimize probe (cache off)"
        (Staged.stage (fun () ->
             ignore (Minimize.minimize ~exec:min_exec sample_pc)));
      Test.make ~name:"minimize probe (cache on)"
        (Staged.stage (fun () ->
             ignore (Minimize.minimize ~exec:cached_exec sample_pc)));
      Test.make ~name:"dlearn probe (cache off)" (Staged.stage (dlearn min_exec));
      Test.make ~name:"dlearn probe (cache on)" (Staged.stage (dlearn cached_exec));
      Test.make ~name:"serializer encode"
        (Staged.stage (fun () -> ignore (Healer_executor.Serializer.encode sample_prog)));
      Test.make ~name:"serializer decode"
        (Staged.stage (fun () ->
             ignore (Healer_executor.Serializer.decode target encoded)));
      Test.make ~name:"algorithm3 select"
        (Staged.stage (fun () ->
             ignore (Select.select rng table ~alpha:0.8 ~sub:[ 1; 2; 3; 4 ])));
      Test.make ~name:"choice table select"
        (Staged.stage (fun () ->
             ignore (Choice_table.select rng choice ~bias:(Some 3))));
      (* Validator overhead: identical generation workload with debug
         validation off (production) vs on (the dune-runtest mode). *)
      Test.make ~name:"generate (validate off)"
        (Staged.stage (fun () ->
             ignore
               (Gen.generate rng target
                  ~select:(fun ~sub:_ -> Healer_util.Rng.int rng (Target.n_syscalls target))
                  ())));
      Test.make ~name:"generate (validate on)"
        (Staged.stage (fun () ->
             Healer_executor.Progcheck.set_debug true;
             Fun.protect
               ~finally:(fun () -> Healer_executor.Progcheck.set_debug false)
               (fun () ->
                 ignore
                   (Gen.generate rng target
                      ~select:(fun ~sub:_ ->
                        Healer_util.Rng.int rng (Target.n_syscalls target))
                      ()))));
      Test.make ~name:"relation table set/get"
        (Staged.stage (fun () ->
             let t = Relation_table.create 64 in
             for i = 0 to 63 do
               ignore (Relation_table.set t i ((i + 7) mod 64))
             done));
    ]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  Fmt.pr "  %-26s %14s@." "benchmark" "ns/run";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg instances elt in
          let result = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            micro_results := (Test.Elt.name elt, est) :: !micro_results;
            Fmt.pr "  %-26s %14.0f@." (Test.Elt.name elt) est
          | _ -> Fmt.pr "  %-26s %14s@." (Test.Elt.name elt) "n/a")
        (Test.elements test))
    tests;
  micro_results := List.rev !micro_results;
  report_cache_stats probe_cache;
  (match
     ( List.assoc_opt "minimize probe (cache off)" !micro_results,
       List.assoc_opt "minimize probe (cache on)" !micro_results )
   with
  | Some off, Some on when on > 0.0 ->
    Fmt.pr "  %-26s %13.1fx@." "minimize cache speedup" (off /. on)
  | _ -> ())

(* ---- probe-cache smoke (cheap enough for every build) ---- *)

(* Two minimization sweeps over one interesting input through a shared
   cache: the second sweep's probes are warm, so hits/misses/resumes
   must all be non-trivial. Exercises the same code path as the
   cache-on micro rows without bechamel's sampling cost. *)
let cache_smoke () =
  section "Probe cache (prefix-caching execution engine)";
  let target = K.Kernel.target () in
  let rng = Healer_util.Rng.create 1 in
  let sample_prog =
    Gen.generate rng target
      ~select:(fun ~sub:_ -> Healer_util.Rng.int rng (Target.n_syscalls target))
      ()
  in
  let cov = K.Coverage.create () in
  let kernel = K.Kernel.boot ~version:K.Version.V5_11 () in
  let sample_run = snd (Healer_executor.Exec.run ~cov kernel sample_prog) in
  let sample_pc =
    Prog_cov.of_run sample_prog sample_run
      ~new_cov:
        (Array.map
           (fun (c : Healer_executor.Exec.call_result) -> c.Healer_executor.Exec.cov)
           sample_run.Healer_executor.Exec.calls)
  in
  let cache = Healer_executor.Exec_cache.create ~version:K.Version.V5_11 () in
  let exec p = Healer_executor.Exec_cache.run cache ~cov p in
  for _ = 1 to 2 do
    let table = Relation_table.create (Target.n_syscalls target) in
    List.iter
      (fun pc -> ignore (Dynamic_learning.learn ~exec ~table [ pc ]))
      (Minimize.minimize ~exec sample_pc)
  done;
  report_cache_stats cache

(* ---- lockdep overhead smoke (cheap enough for every build) ---- *)

(* The acquire/release hooks charge two State-counter increments per
   lock nesting level; the acceptance bar is <= 5% on exec throughput.
   Measured directly (not via bechamel) so the hooks-on/off toggle
   brackets whole timing runs: N seed-corpus executions with hooks on
   vs off, wall-clock per execution into [micro_results]. *)
let lockdep_smoke () =
  section "Lockdep hook overhead";
  let target = K.Kernel.target () in
  let kernel = K.Kernel.boot ~version:K.Version.V5_11 () in
  let cov = K.Coverage.create () in
  let progs = Seeds.traces target @ Seeds.distilled target in
  (* Interleaved batches with min-of-batches per side: alternating
     off/on brackets out scheduler and GC drift, and the minimum is
     the noise-robust estimate of the true per-execution cost. *)
  let batches = 12 and rounds = 200 in
  let batch hooks =
    K.Lock.set_hooks hooks;
    Fun.protect
      ~finally:(fun () -> K.Lock.set_hooks true)
      (fun () ->
        let t0 = Unix.gettimeofday () in
        for _ = 1 to rounds do
          List.iter (fun p -> ignore (Healer_executor.Exec.run ~cov kernel p)) progs
        done;
        let dt = Unix.gettimeofday () -. t0 in
        dt /. float_of_int (rounds * List.length progs) *. 1e9)
  in
  (* Warm-up both sides so allocation effects don't bias either. *)
  ignore (batch false);
  ignore (batch true);
  let off = ref infinity and on = ref infinity in
  for _ = 1 to batches do
    off := Float.min !off (batch false);
    on := Float.min !on (batch true)
  done;
  let off = !off and on = !on in
  micro_results :=
    !micro_results @ [ ("exec (lock hooks off)", off); ("exec (lock hooks on)", on) ];
  Fmt.pr "  %-26s %14.0f@." "exec (lock hooks off)" off;
  Fmt.pr "  %-26s %14.0f@." "exec (lock hooks on)" on;
  Fmt.pr "  %-26s %13.1f%%@." "lockdep overhead"
    (if off > 0.0 then (on -. off) /. off *. 100.0 else 0.0)

(* ---- effect-hook overhead smoke (cheap enough for every build) ---- *)

(* The effect-recording hooks charge one State-array increment per
   instrumented slot access; same acceptance bar and min-of-batches
   method as the lockdep hooks (<= 5% on exec throughput). *)
let effects_smoke () =
  section "Effect hook overhead";
  let target = K.Kernel.target () in
  let kernel = K.Kernel.boot ~version:K.Version.V5_11 () in
  let cov = K.Coverage.create () in
  let progs = Seeds.traces target @ Seeds.distilled target in
  let batches = 12 and rounds = 200 in
  let batch hooks =
    K.Effect.set_hooks hooks;
    Fun.protect
      ~finally:(fun () -> K.Effect.set_hooks true)
      (fun () ->
        let t0 = Unix.gettimeofday () in
        for _ = 1 to rounds do
          List.iter (fun p -> ignore (Healer_executor.Exec.run ~cov kernel p)) progs
        done;
        let dt = Unix.gettimeofday () -. t0 in
        dt /. float_of_int (rounds * List.length progs) *. 1e9)
  in
  ignore (batch false);
  ignore (batch true);
  let off = ref infinity and on = ref infinity in
  for _ = 1 to batches do
    off := Float.min !off (batch false);
    on := Float.min !on (batch true)
  done;
  let off = !off and on = !on in
  micro_results :=
    !micro_results
    @ [ ("exec (effect hooks off)", off); ("exec (effect hooks on)", on) ];
  Fmt.pr "  %-26s %14.0f@." "exec (effect hooks off)" off;
  Fmt.pr "  %-26s %14.0f@." "exec (effect hooks on)" on;
  Fmt.pr "  %-26s %13.1f%%@." "effect overhead"
    (if off > 0.0 then (on -. off) /. off *. 100.0 else 0.0)

(* ---- compiled-engine smoke (cheap enough for every build) ---- *)

(* Compile once, execute many: lowering cost, fresh-run cost, the
   isolated exec loop with the reboot amortized away, and the warm
   probe loop (the minimization/relearning workload the compiled
   engine plus the prefix cache serve together). Measured with the
   lockdep_smoke min-of-batches method. Before timing anything, every
   seed program must produce bit-identical results on both engines —
   a broken compile path fails this section, and with it `dune
   runtest` (via @bench-smoke). *)
let compiled_smoke () =
  section "Compiled execution (compile once, execute many)";
  let module E = Healer_executor in
  let target = K.Kernel.target () in
  let kernel = K.Kernel.boot ~version:K.Version.V5_11 () in
  let cov = K.Coverage.create () in
  let progs = Seeds.traces target @ Seeds.distilled target in
  let nprogs = List.length progs in
  let compiled = List.map E.Compiled.compile progs in
  (* Differential gate over the whole seed corpus. *)
  List.iter2
    (fun p c ->
      let _, ri = E.Exec.run ~cov kernel p in
      let _, rc = E.Exec.run_compiled ~cov kernel c in
      if ri <> rc then
        failwith
          ("compiled engine diverged from the interpreter on:\n"
          ^ E.Prog.to_string p))
    progs compiled;
  Fmt.pr "  differential gate: %d seed programs bit-identical@." nprogs;
  let batches = 12 and rounds = 200 in
  let measure name pass =
    ignore (pass ());
    let best = ref infinity in
    for _ = 1 to batches do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to rounds do
        pass ()
      done;
      let dt = Unix.gettimeofday () -. t0 in
      best := Float.min !best (dt /. float_of_int (rounds * nprogs) *. 1e9)
    done;
    micro_results := !micro_results @ [ (name, !best) ];
    Fmt.pr "  %-30s %12.0f@." name !best;
    !best
  in
  let compile_ns =
    measure "compile program" (fun () ->
        List.iter (fun p -> ignore (E.Compiled.compile p)) progs)
  in
  let interp_fresh =
    measure "exec interpreted (fresh)" (fun () ->
        List.iter (fun p -> ignore (E.Exec.run ~cov kernel p)) progs)
  in
  let comp_fresh =
    measure "exec compiled (fresh)" (fun () ->
        List.iter (fun c -> ignore (E.Exec.run_compiled ~cov kernel c)) compiled)
  in
  (* The exec loop itself: one reboot per corpus pass (amortized to
     noise) isolates per-call dispatch/resolve/patch cost from the
     fresh-boot floor both engines share. *)
  let interp_loop =
    measure "exec loop interpreted" (fun () ->
        let k = K.Kernel.reboot kernel in
        List.iter
          (fun p -> ignore (E.Exec.run ~fresh_state:false ~cov k p))
          progs)
  in
  let comp_loop =
    measure "exec loop compiled" (fun () ->
        let k = K.Kernel.reboot kernel in
        List.iter
          (fun c -> ignore (E.Exec.run_compiled ~fresh_state:false ~cov k c))
          compiled)
  in
  (* Execute-many steady state: the probe loop re-running programs it
     has seen — compiled forms reused from the trie, results resumed
     from cached prefixes. This is the workload minimization and
     relation learning put through the executor. *)
  let probe_cache = E.Exec_cache.create ~version:K.Version.V5_11 () in
  List.iter (fun p -> ignore (E.Exec_cache.run probe_cache ~cov p)) progs;
  List.iter (fun p -> ignore (E.Exec_cache.run probe_cache ~cov p)) progs;
  let warm =
    measure "exec compiled (execute many)" (fun () ->
        List.iter (fun p -> ignore (E.Exec_cache.run probe_cache ~cov p)) progs)
  in
  let st = E.Exec_cache.stats probe_cache in
  Fmt.pr "  %-30s %d lowered / %d reused from trie@." "compiled calls"
    st.E.Exec_cache.compiled_calls st.E.Exec_cache.reused_ccalls;
  let ratio a b = if b > 0.0 then a /. b else 0.0 in
  Fmt.pr "  %-30s %11.1fx@." "compile cost vs one fresh run"
    (ratio compile_ns interp_fresh);
  Fmt.pr "  %-30s %11.1fx@." "fresh-run speedup" (ratio interp_fresh comp_fresh);
  Fmt.pr "  %-30s %11.1fx@." "exec-loop speedup" (ratio interp_loop comp_loop);
  Fmt.pr "  %-30s %11.1fx@." "execute-many speedup" (ratio interp_fresh warm)

(* ---- sharded campaign scaling (fuzzing-as-a-service) ---- *)

(* (jobs, wall seconds, execs, coverage, corpus, relation edges,
   crashes) per shard count. *)
let shard_results : (int * float * int * int * int * int * int) list ref =
  ref []

(* Forked-coordinator communication costs: exact per-epoch wire bytes
   of the incremental protocol against the full-state counterfactual,
   and pipelined (async) vs lockstep (barrier) wall clock under a
   deterministic rotating straggler. *)
let shard_comms_stats :
    (int * int * int * int * float * float) option ref =
  ref None
(* (bytes_full, bytes_incremental, steady_full, steady_incremental,
   barrier_seconds, async_seconds) *)

let shard_comms () =
  let module S = Healer_service in
  let epochs = 8 and jobs = 2 in
  let cfg =
    {
      S.Checkpoint.tool = Fuzzer.Healer;
      version = K.Version.V5_11;
      jobs;
      base_seed = 1;
      epochs;
      slice = hours *. 3600.0 /. float_of_int epochs;
    }
  in
  (* Byte accounting runs in lockstep: per-epoch attribution is exact
     there, and the lag-2 schedule ships the same diffs either way. *)
  let per_epoch = ref [] in
  let last = ref (0, 0) in
  let on_epoch (p : S.Coordinator.progress) =
    let incr_now = p.S.Coordinator.bytes_sent + p.S.Coordinator.bytes_recv in
    let pi, pf = !last in
    per_epoch :=
      (p.S.Coordinator.epoch, incr_now - pi, p.S.Coordinator.bytes_full - pf)
      :: !per_epoch;
    last := (incr_now, p.S.Coordinator.bytes_full)
  in
  let out =
    S.Coordinator.run ~forked:true ~mode:S.Coordinator.Barrier
      ~measure_full:true ~on_epoch (S.Coordinator.initial cfg)
  in
  let bytes_incr =
    out.S.Coordinator.bytes_sent + out.S.Coordinator.bytes_recv
  in
  let bytes_full = out.S.Coordinator.bytes_full in
  Fmt.pr "@.  incremental vs full-state sync (%d shards x %d epochs)@." jobs
    epochs;
  Fmt.pr "  %5s %12s %12s %8s@." "epoch" "incr-bytes" "full-bytes" "ratio";
  List.iter
    (fun (e, i, f) ->
      Fmt.pr "  %5d %12d %12d %7.1fx@." e i f
        (float_of_int f /. float_of_int (max 1 i)))
    (List.rev !per_epoch);
  let steady_incr, steady_full =
    match !per_epoch with (_, i, f) :: _ -> (i, f) | [] -> (0, 0)
  in
  Fmt.pr "  %5s %12d %12d %7.1fx@." "total" bytes_incr bytes_full
    (float_of_int bytes_full /. float_of_int (max 1 bytes_incr));
  (* Wall clock with a rotating 120 ms straggler: the barrier stalls
     every shard on it each epoch; the pipeline overlaps it. Skew only
     sleeps, so all three digests must agree. *)
  Unix.putenv "HEALER_SHARD_SKEW_MS" "120";
  let timed mode =
    let t0 = Unix.gettimeofday () in
    let o = S.Coordinator.run ~forked:true ~mode (S.Coordinator.initial cfg) in
    ( Unix.gettimeofday () -. t0,
      S.Shard_state.digest o.S.Coordinator.final.S.Checkpoint.state )
  in
  let barrier_s, barrier_digest = timed S.Coordinator.Barrier in
  let async_s, async_digest = timed S.Coordinator.Async in
  Unix.putenv "HEALER_SHARD_SKEW_MS" "0";
  let base_digest =
    S.Shard_state.digest out.S.Coordinator.final.S.Checkpoint.state
  in
  if not (String.equal barrier_digest async_digest && String.equal base_digest async_digest)
  then failwith "shard_comms: modes disagree on the final digest";
  Fmt.pr "@.  barrier vs pipelined under a rotating 120ms straggler@.";
  Fmt.pr "  %-28s %7.2fs@." "barrier (lockstep) wall" barrier_s;
  Fmt.pr "  %-28s %7.2fs (digest %s, all modes)@." "async (pipelined) wall"
    async_s async_digest;
  shard_comms_stats :=
    Some (bytes_full, bytes_incr, steady_full, steady_incr, barrier_s, async_s)

(* The serve path end to end: N shards, pipelined CRDT merges. Same
   total virtual budget per shard at every width, so the rows show
   what adding shards buys (coverage, crashes) and costs (merge
   overhead). The digest column makes nondeterminism across widths
   immediately visible: same jobs, same digest, always. Scaling rows
   run the in-process oracle (deterministic timing); the comms rows
   fork real workers, which is why this section runs before the
   prefetch pool spawns domains (fork is unsafe afterwards). *)
let shard_smoke () =
  section "Sharded campaign scaling (serve)";
  let module S = Healer_service in
  let epochs = 3 in
  let slice = hours *. 3600.0 /. float_of_int epochs in
  Fmt.pr "  %4s %9s %9s %7s %6s %8s %7s  %s@." "jobs" "execs" "coverage"
    "corpus" "edges" "crashes" "wall-s" "digest";
  List.iter
    (fun jobs ->
      let cfg =
        {
          S.Checkpoint.tool = Fuzzer.Healer;
          version = K.Version.V5_11;
          jobs;
          base_seed = 1;
          epochs;
          slice;
        }
      in
      let t0 = Unix.gettimeofday () in
      let out = S.Coordinator.run ~forked:false (S.Coordinator.initial cfg) in
      let dt = Unix.gettimeofday () -. t0 in
      let st = out.S.Coordinator.final.S.Checkpoint.state in
      let execs = S.Shard_state.total_execs st in
      let cov = Healer_util.Bitset.count st.S.Shard_state.coverage in
      let corp = List.length st.S.Shard_state.corpus in
      let edges = Relation_table.count st.S.Shard_state.relations in
      let crashes = List.length st.S.Shard_state.crashes in
      Fmt.pr "  %4d %9d %9d %7d %6d %8d %7.2f  %s@." jobs execs cov corp edges
        crashes dt (S.Shard_state.digest st);
      shard_results :=
        (jobs, dt, execs, cov, corp, edges, crashes) :: !shard_results)
    [ 1; 2; 4 ];
  shard_comms ()

(* ---- wire endpoint micro-benchmark ---- *)

(* ns and bytes per framed send+recv roundtrip over a pipe, using the
   reusable endpoint buffers (the serve hot path). *)
let wire_stats : (float * float) option ref = ref None

let wire_micro () =
  section "Wire endpoint overhead";
  let module S = Healer_service in
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      let epr = S.Wire.endpoint r and epw = S.Wire.endpoint w in
      let payload = String.make 512 'x' in
      let roundtrip () =
        S.Wire.send_string epw S.Wire.Delta payload;
        ignore (S.Wire.recv epr)
      in
      for _ = 1 to 1_000 do
        roundtrip ()
      done;
      let n = 50_000 in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to n do
        roundtrip ()
      done;
      let dt = Unix.gettimeofday () -. t0 in
      let ns = dt *. 1e9 /. float_of_int n in
      let bytes =
        float_of_int (S.Wire.bytes_out epw)
        /. float_of_int (S.Wire.frames_out epw)
      in
      Fmt.pr "  %-30s %11.1f ns/frame, %.1f bytes/frame@."
        "send+recv (512B payload)" ns bytes;
      wire_stats := Some (ns, bytes);
      micro_results :=
        !micro_results @ [ ("wire send+recv (512B frame)", ns) ])

(* ---- main ---- *)

let sections =
  [
    ("fig4", fig4); ("table1", table1); ("table2", table2); ("table3", table3);
    ("fig5", fig5); ("fig6", fig6); ("table4", table4); ("table5", table5);
    ("ablation", ablation); ("micro", micro); ("cache", cache_smoke);
    ("lockdep", lockdep_smoke); ("effects", effects_smoke);
    ("compiled", compiled_smoke); ("shard", shard_smoke);
    ("wire", wire_micro);
  ]

(* ---- machine-readable results (--json) ---- *)

let json_path = "BENCH_results.json"

let write_json ~jobs ~section_times () =
  let buf = Buffer.create 1024 in
  let field ?(last = false) fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf "  ";
        Buffer.add_string buf s;
        if not last then Buffer.add_char buf ',';
        Buffer.add_char buf '\n')
      fmt
  in
  let obj_list name items render =
    let body =
      String.concat ", " (List.map render items)
    in
    Printf.sprintf "%S: [%s]" name body
  in
  Buffer.add_string buf "{\n";
  field "\"schema\": 1";
  field "\"rounds\": %d" rounds;
  field "\"hours\": %g" hours;
  field "\"ext_hours\": %g" ext_hours;
  field "\"jobs\": %d" jobs;
  (match !prefetch_stats with
  | Some (campaigns, pjobs, seconds) ->
    field "\"prefetch\": {\"campaigns\": %d, \"jobs\": %d, \"seconds\": %.3f}"
      campaigns pjobs seconds
  | None -> field "\"prefetch\": null");
  field "%s"
    (obj_list "sections" (List.rev section_times) (fun (name, dt) ->
         Printf.sprintf "{\"name\": %S, \"seconds\": %.3f}" name dt));
  (match !probe_cache_stats with
  | Some (s, rate) ->
    field
      "\"exec_cache\": {\"hits\": %d, \"full_hits\": %d, \"misses\": %d, \
       \"hit_rate\": %.3f, \"evictions\": %d, \"flushes\": %d, \
       \"resumed_calls\": %d, \"executed_calls\": %d, \
       \"compiled_calls\": %d, \"reused_ccalls\": %d}"
      s.Healer_executor.Exec_cache.hits s.Healer_executor.Exec_cache.full_hits
      s.Healer_executor.Exec_cache.misses rate
      s.Healer_executor.Exec_cache.evictions s.Healer_executor.Exec_cache.flushes
      s.Healer_executor.Exec_cache.resumed_calls
      s.Healer_executor.Exec_cache.executed_calls
      s.Healer_executor.Exec_cache.compiled_calls
      s.Healer_executor.Exec_cache.reused_ccalls
  | None -> field "\"exec_cache\": null");
  field "%s"
    (obj_list "shard" (List.rev !shard_results)
       (fun (jobs, dt, execs, cov, corp, edges, crashes) ->
         Printf.sprintf
           "{\"jobs\": %d, \"seconds\": %.3f, \"execs\": %d, \"coverage\": \
            %d, \"corpus\": %d, \"relations\": %d, \"crashes\": %d}"
           jobs dt execs cov corp edges crashes));
  (match !shard_comms_stats with
  | Some (bytes_full, bytes_incr, steady_full, steady_incr, barrier_s, async_s)
    ->
    let wire_ns, wire_bytes =
      match !wire_stats with Some (n, b) -> (n, b) | None -> (0.0, 0.0)
    in
    field
      "\"shard_comms\": {\"bytes_full\": %d, \"bytes_incremental\": %d, \
       \"ratio\": %.1f, \"steady_bytes_full\": %d, \
       \"steady_bytes_incremental\": %d, \"steady_ratio\": %.1f, \
       \"barrier_seconds\": %.3f, \"async_seconds\": %.3f, \
       \"wire_ns_per_frame\": %.1f, \"wire_bytes_per_frame\": %.1f}"
      bytes_full bytes_incr
      (float_of_int bytes_full /. float_of_int (max 1 bytes_incr))
      steady_full steady_incr
      (float_of_int steady_full /. float_of_int (max 1 steady_incr))
      barrier_s async_s wire_ns wire_bytes
  | None -> field "\"shard_comms\": null");
  field ~last:true "%s"
    (obj_list "micro" !micro_results (fun (name, ns) ->
         Printf.sprintf "{\"name\": %S, \"ns_per_run\": %.1f}" name ns));
  Buffer.add_string buf "}\n";
  let oc = open_out json_path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.epr "wrote %s@." json_path

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json = List.mem "--json" args in
  let requested =
    match List.filter (fun a -> a <> "--json") args with
    | [] -> List.map fst sections
    | names -> names
  in
  Fmt.pr "HEALER reproduction benches: rounds=%d, %.0f virtual hours per campaign@."
    rounds hours;
  let section_times = ref [] in
  let run_section name =
    match List.assoc_opt name sections with
    | Some f ->
      let t0 = Unix.gettimeofday () in
      f ();
      section_times := (name, Unix.gettimeofday () -. t0) :: !section_times
    | None ->
      Fmt.epr "unknown section %s (available: %s)@." name
        (String.concat ", " (List.map fst sections))
  in
  (* The shard section forks real worker processes, and Unix.fork is
     unsafe once the prefetch pool has spawned domains — so it (and
     the tiny wire micro) runs first. *)
  let fork_first, pooled =
    List.partition (fun n -> n = "shard" || n = "wire") requested
  in
  List.iter run_section fork_first;
  prefetch pooled;
  List.iter run_section pooled;
  if json then
    write_json ~jobs:(Campaign.default_jobs ()) ~section_times:!section_times ()
