(** Vivid (virtual video test driver, V4L2).

    Injected bugs: [v4l2_queryctrl_oob],
    [vivid_stop_generating_vid_cap]. *)

type video = {
  mutable fmt_set : bool;
  mutable fmt_changes : int;
  mutable reqbufs : int;
  mutable streaming : bool;
  mutable ctrl_set : bool;
}

type State.fd_kind += Vivid of video

val sub : Subsystem.t
