(** Simulated kernel versions, matching the paper's evaluation targets
    (Linux 4.19, 5.0, 5.4, 5.6 and 5.11). *)

type t = V4_19 | V5_0 | V5_4 | V5_6 | V5_11

val all : t list
(** In increasing order. *)

val evaluated : t list
(** The three versions of the main 24-hour experiments (Figure 4):
    5.11, 5.4, 4.19, in the paper's presentation order. *)

val compare : t -> t -> int
val at_least : t -> t -> bool
(** [at_least v since] holds when [v >= since]. *)

val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
