(** Core socket subsystem: TCP/UDP/Unix/netlink/raw plus the RxRPC and
    RDS families. Models the bind/listen/connect state machine the
    paper's introduction uses as its motivating influence-relation
    example ([bind] changes which path [listen] takes; unbound sockets
    fail early with EDESTADDRREQ).

    Injected bugs: [tcp_disconnect], [raw_sendmsg_uninit],
    [unix_release_refcount], [rxrpc_lookup_local], [rds_ib_add_conn],
    [build_skb]. *)

type proto = Tcp | Udp | Unix | Netlink | Raw | Rxrpc | Rds

type sock = {
  proto : proto;
  mutable bound : bool;
  mutable bound_addr : int64;
  mutable listening : bool;
  mutable connected : bool;
  mutable backlog : int;
  mutable sndbuf : int;
  mutable shut : bool;
  mutable ib_transport : bool;  (** RDS: transport forced to IB. *)
  mutable rcvbuf : int;
  mutable keepalive : bool;
  mutable pending_err : bool;  (** Consumed by [getsockopt$SO_ERROR]. *)
}

type State.fd_kind += Sock of sock

val sub : Subsystem.t
