(** Ext4-with-jbd2 journaling subsystem: journaled file descriptors on
    the simulated /mnt/ext4 mount, handle and commit paths, fast
    commits. Data-race windows are modeled deterministically via the
    kernel's operation counter (two phases racing when they occur
    within a few operations of each other).

    Injected bugs: [ext4_writepages_bug], [ext4_mark_iloc_dirty],
    [jbd2_journal_file_buffer], [ext4_handle_dirty_metadata],
    [ext4_fc_commit]. *)

type journal = {
  mutable committing_at : int;  (** Op tick of the last commit start. *)
  mutable fc_commit_at : int;  (** Op tick of the last fast commit. *)
  mutable dirty_handles : int;
}

type ext4_file = {
  mutable iloc_dirty_at : int;
  mutable data_dirty_at : int;
  mutable written : int64;
  mutable journalled : bool;  (** data=journal mode via SETFLAGS. *)
}

type State.fd_kind += Ext4 of ext4_file
type State.global += Journal of journal

val sub : Subsystem.t
