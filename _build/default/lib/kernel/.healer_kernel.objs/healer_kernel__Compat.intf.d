lib/kernel/compat.mli: Subsystem
