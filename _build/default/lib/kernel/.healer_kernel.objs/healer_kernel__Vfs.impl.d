lib/kernel/vfs.ml: Arg Bytes Coverage Ctx Errno Hashtbl Int64 List State String Subsystem
