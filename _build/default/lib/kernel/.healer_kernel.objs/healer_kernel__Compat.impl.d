lib/kernel/compat.ml: Arg Coverage Ctx Errno Int64 List String Subsystem
