lib/kernel/bug.mli: Format Risk Version
