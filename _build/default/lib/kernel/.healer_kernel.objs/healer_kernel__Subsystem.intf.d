lib/kernel/subsystem.mli: Arg Ctx State
