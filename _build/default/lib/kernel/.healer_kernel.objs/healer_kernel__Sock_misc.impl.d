lib/kernel/sock_misc.ml: Arg Bytes Coverage Ctx Errno Int64 List State Subsystem
