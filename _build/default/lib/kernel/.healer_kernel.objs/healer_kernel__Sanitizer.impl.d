lib/kernel/sanitizer.ml: Fmt Risk
