lib/kernel/sanitizer.mli: Format Risk
