lib/kernel/fbdev.mli: State Subsystem
