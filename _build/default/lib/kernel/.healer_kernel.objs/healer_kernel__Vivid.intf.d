lib/kernel/vivid.mli: State Subsystem
