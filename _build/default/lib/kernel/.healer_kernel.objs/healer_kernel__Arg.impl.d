lib/kernel/arg.ml: Bytes Fmt Int64 List
