lib/kernel/ipc.mli: Hashtbl State Subsystem
