lib/kernel/arg.mli: Format
