lib/kernel/rdma.mli: Hashtbl State Subsystem
