lib/kernel/bpf.ml: Arg Bytes Coverage Ctx Errno Int64 List Netdev Sock Sock_misc State Subsystem
