lib/kernel/mounts.mli: State Subsystem
