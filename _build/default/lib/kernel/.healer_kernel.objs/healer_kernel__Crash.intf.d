lib/kernel/crash.mli: Format Risk
