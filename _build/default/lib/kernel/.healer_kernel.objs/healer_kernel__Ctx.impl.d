lib/kernel/ctx.ml: Bug Coverage Crash Errno Int64 List Sanitizer State
