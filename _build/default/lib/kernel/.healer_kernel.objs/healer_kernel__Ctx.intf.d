lib/kernel/ctx.mli: Coverage Errno Sanitizer State Version
