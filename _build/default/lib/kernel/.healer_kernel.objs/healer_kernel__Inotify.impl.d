lib/kernel/inotify.ml: Arg Coverage Ctx Errno Int64 List State Subsystem Vfs
