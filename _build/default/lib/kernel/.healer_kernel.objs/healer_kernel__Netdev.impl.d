lib/kernel/netdev.ml: Arg Bytes Char Coverage Ctx Errno Hashtbl Int64 State String Subsystem
