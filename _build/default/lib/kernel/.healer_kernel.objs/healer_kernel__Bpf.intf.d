lib/kernel/bpf.mli: State Subsystem
