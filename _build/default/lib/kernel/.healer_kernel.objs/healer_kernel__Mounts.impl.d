lib/kernel/mounts.ml: Arg Bytes Coverage Ctx Errno Int64 List State Subsystem
