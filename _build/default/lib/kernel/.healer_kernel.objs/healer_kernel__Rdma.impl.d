lib/kernel/rdma.ml: Arg Coverage Ctx Errno Hashtbl Int64 State Subsystem
