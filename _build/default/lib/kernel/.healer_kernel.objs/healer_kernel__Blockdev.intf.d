lib/kernel/blockdev.mli: State Subsystem
