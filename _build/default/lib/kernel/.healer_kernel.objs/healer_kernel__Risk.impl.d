lib/kernel/risk.ml: Fmt
