lib/kernel/uring.ml: Arg Coverage Ctx Errno Int64 State Subsystem
