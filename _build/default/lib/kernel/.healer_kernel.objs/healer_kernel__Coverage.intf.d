lib/kernel/coverage.mli:
