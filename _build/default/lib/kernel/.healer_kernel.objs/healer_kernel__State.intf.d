lib/kernel/state.mli: Version
