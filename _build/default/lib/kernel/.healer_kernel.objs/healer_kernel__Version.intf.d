lib/kernel/version.mli: Format
