lib/kernel/sock.mli: State Subsystem
