lib/kernel/jfs.mli: State Subsystem
