lib/kernel/vfs.mli: State Subsystem
