lib/kernel/risk.mli: Format
