lib/kernel/subsystem.ml: Arg Ctx List State String
