lib/kernel/usb.ml: Arg Bytes Char Coverage Ctx Errno Int64 State Subsystem
