lib/kernel/sock_misc.mli: State Subsystem
