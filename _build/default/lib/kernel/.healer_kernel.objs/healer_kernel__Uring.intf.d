lib/kernel/uring.mli: State Subsystem
