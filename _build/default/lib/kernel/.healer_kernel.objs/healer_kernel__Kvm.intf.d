lib/kernel/kvm.mli: State Subsystem
