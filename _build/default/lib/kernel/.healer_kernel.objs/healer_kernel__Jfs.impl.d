lib/kernel/jfs.ml: Arg Bytes Coverage Ctx Errno Int64 State String Subsystem
