lib/kernel/sock.ml: Arg Bytes Coverage Ctx Errno Hashtbl Int64 List State Subsystem
