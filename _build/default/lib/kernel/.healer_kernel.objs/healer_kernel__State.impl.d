lib/kernel/state.ml: Hashtbl Int List Version
