lib/kernel/inotify.mli: State Subsystem
