lib/kernel/kernel.mli: Arg Coverage Ctx Healer_syzlang Sanitizer State Subsystem Version
