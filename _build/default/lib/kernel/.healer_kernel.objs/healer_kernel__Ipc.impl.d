lib/kernel/ipc.ml: Arg Array Bytes Coverage Ctx Errno Hashtbl Int64 State Subsystem
