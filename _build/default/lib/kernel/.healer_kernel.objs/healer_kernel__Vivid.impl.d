lib/kernel/vivid.ml: Arg Coverage Ctx Errno Int64 State Subsystem
