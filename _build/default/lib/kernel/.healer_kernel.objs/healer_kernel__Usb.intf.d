lib/kernel/usb.mli: State Subsystem
