lib/kernel/crash.ml: Bug Char Fmt Hashtbl Int64 Lazy List Printf Risk String
