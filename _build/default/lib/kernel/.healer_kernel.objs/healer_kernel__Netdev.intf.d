lib/kernel/netdev.mli: Hashtbl State Subsystem
