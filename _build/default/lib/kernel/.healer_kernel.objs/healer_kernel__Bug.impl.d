lib/kernel/bug.ml: Fmt Hashtbl List Printf Risk Version
