lib/kernel/blockdev.ml: Arg Coverage Ctx Errno Int64 List Memfd Sock State Subsystem Vfs
