lib/kernel/coverage.ml: Hashtbl List Printf
