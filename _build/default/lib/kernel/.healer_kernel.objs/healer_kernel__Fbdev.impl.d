lib/kernel/fbdev.ml: Arg Bytes Coverage Ctx Errno Int64 State Subsystem
