lib/kernel/version.ml: Fmt Int
