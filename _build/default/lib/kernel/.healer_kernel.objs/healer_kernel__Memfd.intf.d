lib/kernel/memfd.mli: State Subsystem
