lib/kernel/tty.ml: Arg Bytes Coverage Ctx Errno Int64 State Subsystem
