lib/kernel/kvm.ml: Arg Coverage Ctx Errno Int64 List State Subsystem
