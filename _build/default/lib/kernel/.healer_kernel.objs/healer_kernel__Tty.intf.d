lib/kernel/tty.mli: State Subsystem
