(** memfd subsystem: [memfd_create], sealing via [fcntl$ADD_SEALS], and
    the seal-sensitive [mmap]/[write]/[ftruncate] paths — the paper's
    Figure 2 running example. The relation [fcntl$ADD_SEALS -> mmap] is
    only discoverable dynamically: sealing changes which branches a
    subsequent [mmap]/[write] takes.

    Injected bug: [memfd_create_warn]. *)

type memfd = {
  mname : string;
  mutable msize : int64;
  mutable seals : int64;
}

type State.fd_kind += Memfd of memfd

val sub : Subsystem.t

val seal_write : int64
(** The F_SEAL_WRITE bit. *)
