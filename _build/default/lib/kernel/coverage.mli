(** KCOV-style branch coverage collection.

    Each simulated kernel subsystem allocates a contiguous region of
    branch identifiers at module initialization; handlers then report
    the blocks they pass through into a per-execution collector. The
    executor snapshots the collector around each call to obtain
    HEALER's per-call coverage. *)

type t
(** A coverage collector (one per executing virtual machine). *)

val create : unit -> t

val hit : t -> int -> unit
(** Record that branch [id] was covered. Duplicate hits within one
    collection window are collapsed. *)

val blocks : t -> int list
(** Covered branch ids in first-hit order since the last [reset]. *)

val reset : t -> unit

(** {2 Branch-id regions} *)

val region : name:string -> size:int -> int
(** [region ~name ~size] allocates (once per [name]) a region of [size]
    consecutive branch ids and returns its base id. Calling it again
    with the same [name] returns the same base. Raises
    [Invalid_argument] if re-registered with a larger size. *)

val region_name : int -> string
(** [region_name id] is the name of the region containing branch [id],
    or ["?"] if the id was never allocated. Used by the crash
    symbolizer and by coverage reports. *)

val total_allocated : unit -> int
(** Total number of branch ids allocated across all regions. *)
