(** TTY subsystem: pseudo-terminals, line disciplines (including
    N_GSM), virtual consoles ([/dev/vcs]), the ttyprintk device and the
    console lock.

    Injected bugs: [console_unlock] (the 18-call Table 4 deadlock),
    [tty_init_dev_leak], [tpk_write], [n_tty_open], [gsmld_attach_gsm],
    [n_tty_receive_buf_common], [vcs_scr_readw], [vcs_write]. *)

type tty_kind = Ptmx | Vcs | Vcsa | Tpk

type tty = {
  tkind : tty_kind;
  mutable ldisc : int;  (** 0 = N_TTY, 21 = N_GSM. *)
  mutable ldisc_switches : int;
  mutable gsm_configured : bool;
  mutable pending_input : int;  (** Bytes queued by TIOCSTI. *)
  mutable reads : int;
  mutable offset : int64;
}

type console = {
  mutable writes : int;
  mutable active_vt : int;
  mutable deallocated : bool;  (** Current VT released by VT_DISALLOCATE. *)
  mutable vt_switches : int;
}

type State.fd_kind += Tty of tty
type State.global += Console of console

val sub : Subsystem.t
