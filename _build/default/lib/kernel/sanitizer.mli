(** Simulated kernel sanitizers.

    KASAN catches memory-safety violations, KMSAN catches uses of
    uninitialized values, KCSAN catches data races; plain crashes
    (null dereference, general protection fault, BUG(), deadlock
    watchdog) are always observable. A bug whose class no enabled
    detector covers fires silently: the kernel keeps running and the
    fuzzer never sees it, exactly like an un-sanitized kernel build. *)

type config = { kasan : bool; kmsan : bool; kcsan : bool }

val default : config
(** KASAN + KMSAN + KCSAN all enabled (the paper's build enables KCOV
    and the sanitizers on every target kernel). *)

val none : config

val detects : config -> Risk.t -> bool

val pp : Format.formatter -> config -> unit
