(** Mount management: ext4/nfs/reiserfs mounts and umount.

    Injected bugs: [do_umount_null], [nfs23_parse_monolithic],
    [reiserfs_fill_super], [fs_reclaim_acquire] lives in {!Vfs}. *)

type mounts = {
  mutable mounted : (string * string) list;  (** (mountpoint, fstype). *)
  mutable last_umount : int;
}

type State.global += Mounts of mounts

val sub : Subsystem.t
