type t = {
  st : State.t;
  cov : Coverage.t;
  san : Sanitizer.config;
  features : string list;
  proc : int;
  mutable fault_pending : bool;
}

type result = { ret : int64; err : Errno.t option }

let make ?(features = []) ?(proc = 0) ~st ~san cov =
  { st; cov; san; features; proc; fault_pending = false }

let ok ret = { ret; err = None }
let ok0 = { ret = 0L; err = None }
let err e = { ret = Int64.of_int (-Errno.code e); err = Some e }

let cover ctx id = Coverage.hit ctx.cov id
let covern ctx base offs = List.iter (fun o -> Coverage.hit ctx.cov (base + o)) offs
let version ctx = State.version ctx.st
let has_feature ctx f = List.mem f ctx.features

let take_fault ctx =
  if ctx.fault_pending then begin
    ctx.fault_pending <- false;
    true
  end
  else false

let bug_fires ctx key =
  match Bug.find key with
  | None -> invalid_arg ("Ctx.bug: unknown bug key " ^ key)
  | Some b -> Bug.exists_in b (version ctx) && Sanitizer.detects ctx.san b.risk

let bug ctx key =
  if bug_fires ctx key then
    let b = Bug.find_exn key in
    raise (Crash.Crash { bug_key = key; risk = b.risk })
