(** Block subsystem: NBD devices, loop devices and partition tables.

    Injected bugs: [nbd_disconnect_and_put], [put_device],
    [disk_part_iter_uaf], [blk_add_partitions]. *)

type nbd = {
  mutable sock : int option;  (** Backing socket fd. *)
  mutable running : bool;
  mutable disconnects : int;
  mutable cleared : bool;
}

type loopdev = {
  mutable backing : int option;  (** Backing file fd. *)
  mutable partitions : int list;
  mutable deleted_part : bool;
}

type State.fd_kind += Nbd of nbd | Loop of loopdev

val sub : Subsystem.t
