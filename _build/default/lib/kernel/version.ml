type t = V4_19 | V5_0 | V5_4 | V5_6 | V5_11

let all = [ V4_19; V5_0; V5_4; V5_6; V5_11 ]
let evaluated = [ V5_11; V5_4; V4_19 ]

let rank = function V4_19 -> 0 | V5_0 -> 1 | V5_4 -> 2 | V5_6 -> 3 | V5_11 -> 4
let compare a b = Int.compare (rank a) (rank b)
let at_least v since = compare v since >= 0

let to_string = function
  | V4_19 -> "4.19"
  | V5_0 -> "5.0"
  | V5_4 -> "5.4"
  | V5_6 -> "5.6"
  | V5_11 -> "5.11"

let of_string = function
  | "4.19" -> Some V4_19
  | "5.0" -> Some V5_0
  | "5.4" -> Some V5_4
  | "5.6" -> Some V5_6
  | "5.11" -> Some V5_11
  | _ -> None

let pp ppf v = Fmt.string ppf (to_string v)
