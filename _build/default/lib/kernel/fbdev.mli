(** Framebuffer subsystem: [/dev/fb0], screen geometry ioctls, console
    fonts (fbcon) and cursor blitting.

    Injected bugs: [fb_set_var_div], [fb_var_to_videomode],
    [bit_putcs], [bitfill_aligned], [fbcon_get_font], [soft_cursor]. *)

type fb = {
  mutable xres : int64;
  mutable yres : int64;
  mutable bpp : int64;
  mutable pixclock : int64;
  mutable font_height : int64;  (** 0 = no custom font loaded. *)
  mutable cursor_size : int64;  (** 0 = default cursor. *)
  mutable panned : bool;
}

type State.fd_kind += Fb of fb

val sub : Subsystem.t
