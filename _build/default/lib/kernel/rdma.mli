(** RDMA connection manager (ucma) subsystem.

    Injected bugs: [ucma_create_id_leak], [cma_cancel_operation],
    [rdma_listen]. *)

type cm_id = {
  mutable bound : bool;
  mutable listening : bool;
  mutable resolving : bool;
  mutable destroyed : bool;
}

type State.fd_kind += Rdma_cm  (** The /dev/infiniband/rdma_cm fd. *)
type State.global += Rdma_ids of (int64, cm_id) Hashtbl.t * int64 ref

val sub : Subsystem.t
