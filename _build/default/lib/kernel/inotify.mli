(** inotify subsystem: filesystem event observation.

    Watches snapshot the watched inode's state at [inotify_add_watch];
    reading the inotify descriptor compares the inode's current state
    against the snapshot and reports the difference as events. This
    gives dynamic relation learning genuinely cross-subsystem edges —
    [write]/[unlink]/[rename] on a watched path change what a later
    [read] on the inotify descriptor covers. *)

type watch = {
  wd : int64;
  wpath : string;
  mutable snap_size : int64;
  mutable snap_exists : bool;
}

type inotify = { mutable watches : watch list; mutable next_wd : int64 }

type State.fd_kind += Inotify of inotify

val sub : Subsystem.t
