(** The injected vulnerability catalog.

    Three populations, mirroring the paper's evaluation:
    - the 35 previously-known bugs of the 24-hour experiment (Section
      6.3), of which the 15 deep ones of Table 4 were found only by
      HEALER and 3 require an executor feature (USB emulation) that
      HEALER lacks;
    - the 33 previously-unknown bugs of Table 5, surfacing in the
      extended multi-version campaign;
    - the two case-study bugs (Listing 1 [search_memslots] and Listing 2
      [fill_thread_core_info]).

    A bug fires when a simulated subsystem reaches its trigger condition
    {e and} the bug exists in the booted kernel version {e and} an
    enabled sanitizer covers its risk class. *)

type t = {
  key : string;  (** Stable identifier: the crashing kernel function. *)
  title : string;  (** Human-readable title as printed in Table 4. *)
  subsystem : string;  (** Table 5 "Subsystem" column. *)
  operations : string;  (** Table 5 "Operations" column. *)
  risk : Risk.t;
  since : Version.t;  (** Present in kernels [>= since]... *)
  until_ : Version.t option;  (** ... and [<= until_] when given. *)
  known : bool;  (** Previously known (24h-experiment universe). *)
  table4 : bool;  (** Listed in the paper's Table 4. *)
  repro_len : int;  (** Minimal reproducing sequence length (Table 4). *)
  requires : string option;  (** Executor feature needed to reach it. *)
}

val catalog : t list
val find : string -> t option
val find_exn : string -> t
(** Raises [Not_found]. *)

val exists_in : t -> Version.t -> bool
val known_bugs : unit -> t list
val unknown_bugs : unit -> t list
(** The Table 5 population. *)

val table4_bugs : unit -> t list
val pp : Format.formatter -> t -> unit
