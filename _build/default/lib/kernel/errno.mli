(** Error numbers returned by simulated system calls. *)

type t =
  | EPERM
  | ENOENT
  | EINTR
  | EIO
  | EBADF
  | EAGAIN
  | ENOMEM
  | EFAULT
  | EBUSY
  | EEXIST
  | ENODEV
  | EINVAL
  | ENOTTY
  | ENOSPC
  | EPIPE
  | ENOSYS
  | ENOTCONN
  | EISCONN
  | EADDRINUSE
  | EDESTADDRREQ
  | EOPNOTSUPP
  | EALREADY
  | EINPROGRESS
  | ETIMEDOUT
  | EACCES
  | ENXIO
  | EOVERFLOW

val code : t -> int
(** Positive errno value, matching Linux's numbering. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
