(** KVM subsystem: the paper's flagship deep-state example. Reaching
    [ioctl$KVM_RUN]'s interesting paths requires the full
    [openat$kvm -> KVM_CREATE_VM -> KVM_CREATE_VCPU ->
    KVM_SET_USER_MEMORY_REGION -> KVM_RUN] chain (Section 3 and the
    Figure 5 relation subgraph).

    Injected bugs: [search_memslots] (Listing 1),
    [kvm_arch_vcpu_ioctl_warn], [kvm_hv_irq_routing_update],
    [kvm_vm_ioctl_unregister_coalesced_mmio], [kvm_io_bus_unregister_dev],
    [kvm_gfn_to_hva_cache_init]. *)

type vm = {
  mutable vcpus : int;
  mutable memslots : (int64 * int64) list;  (** (base_gfn, npages). *)
  mutable irqchip : bool;
  mutable coalesced_zones : int64 list;
  mutable io_bus_devs : int64 list;
  mutable hv_routing_stale : bool;
  mutable dirty_log_slots : int64 list;  (** Slots with dirty logging. *)
  mutable tss_addr : int64 option;
}

type vcpu = {
  vm_fd : int;
  mutable lapic_set : bool;
  mutable cap_enabled : bool;
  mutable smi_pending : bool;
  mutable guest_debug : bool;
  mutable runs : int;
  mutable regs_set : bool;
  mutable nmi_pending : bool;
}

type State.fd_kind += Kvm_sys | Kvm_vm of vm | Kvm_vcpu of vcpu

val sub : Subsystem.t
