type t = {
  mutable hits : int list;  (* reverse first-hit order *)
  seen : (int, unit) Hashtbl.t;
}

let create () = { hits = []; seen = Hashtbl.create 64 }

let hit t id =
  if not (Hashtbl.mem t.seen id) then begin
    Hashtbl.add t.seen id ();
    t.hits <- id :: t.hits
  end

let blocks t = List.rev t.hits

let reset t =
  t.hits <- [];
  Hashtbl.reset t.seen

(* Region registry: global, deterministic for a fixed build since
   regions are allocated from module initializers in link order. *)
let regions : (string, int * int) Hashtbl.t = Hashtbl.create 32
let ordered : (string * int * int) list ref = ref []
let next_base = ref 0

let region ~name ~size =
  match Hashtbl.find_opt regions name with
  | Some (base, sz) ->
    if size > sz then
      invalid_arg (Printf.sprintf "Coverage.region: %s re-registered larger" name);
    base
  | None ->
    let base = !next_base in
    Hashtbl.add regions name (base, size);
    ordered := (name, base, size) :: !ordered;
    next_base := base + size;
    base

let region_name id =
  let rec find = function
    | [] -> "?"
    | (name, base, size) :: rest ->
      if id >= base && id < base + size then name else find rest
  in
  find !ordered

let total_allocated () = !next_base
