(** Stateless "long tail" interfaces: prctl variants, clock queries,
    scheduler tuning, resource limits, keyctl operations, ...

    The real Syzlang corpus describes ~3600 interfaces, most of which
    are irrelevant to any particular deep kernel path; call selection
    matters precisely because of that dilution. This module
    reconstructs the long tail compactly: a table of specialized calls
    with scalar-only arguments, each owning a handful of quickly
    exhausted branches and no influence relations with anything. *)

val names : string list
(** All generated syscall names (for tests). *)

val sub : Subsystem.t
