(** USB emulation subsystem (syz_usb_* pseudo-calls).

    Requires the executor feature ["usb"], which Syzkaller and
    Moonshine configurations have and HEALER does not (the paper's
    explanation for the three 24-hour-experiment bugs HEALER missed).
    Without the feature every call fails with ENOSYS.

    Injected bugs: [usb_parse_configuration_oob], [hub_activate_uaf],
    [gadget_setup_null]. *)

type usbdev = { mutable configured : bool; mutable disconnected : bool }

type State.fd_kind += Usbdev of usbdev

val sub : Subsystem.t
