(** io_uring subsystem.

    Injected bugs: [io_ring_exit_work], [io_uring_cancel_task_requests]. *)

type uring = {
  mutable entries : int;
  mutable registered_bufs : int;
  mutable inflight : int;
  mutable unregister_pending : bool;
  mutable exiting : bool;
}

type State.fd_kind += Uring of uring

val sub : Subsystem.t
