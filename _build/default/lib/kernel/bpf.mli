(** BPF subsystem: maps, program loading with a verifier gate, socket
    attachment and test runs.

    The chain [MAP_CREATE -> MAP_UPDATE -> PROG_LOAD -> PROG_ATTACH ->
    PROG_TEST_RUN] is the kind of deep, typed dependency structure
    syzkaller's real BPF descriptions expose; attachment consumes a
    socket, giving relation learning a cross-subsystem edge. No catalog
    bugs live here. *)

type bpf_map = {
  key_size : int64;
  value_size : int64;
  max_entries : int64;
  mutable entries : int;
  mutable frozen : bool;
}

type bpf_prog = {
  insn_count : int;
  mutable attached_to : int option;  (** Socket fd when attached. *)
  mutable test_runs : int;
}

type State.fd_kind += Bpf_map of bpf_map | Bpf_prog of bpf_prog

val sub : Subsystem.t
