let blk = Coverage.region ~name:"compat" ~size:1024
let c ctx o = Ctx.cover ctx (blk + o)

(* Families of specialized scalar-argument calls. Each family is a
   base name plus variant suffixes, mirroring how Syzlang specializes
   one syscall into dozens of per-command descriptions. *)
let families =
  [
    ( "prctl",
      [ "PR_SET_NAME"; "PR_GET_NAME"; "PR_SET_DUMPABLE"; "PR_GET_DUMPABLE";
        "PR_SET_SECCOMP"; "PR_GET_SECCOMP"; "PR_SET_TIMERSLACK";
        "PR_GET_TIMERSLACK"; "PR_SET_CHILD_SUBREAPER"; "PR_GET_CHILD_SUBREAPER";
        "PR_SET_THP_DISABLE"; "PR_GET_THP_DISABLE"; "PR_SET_NO_NEW_PRIVS";
        "PR_GET_NO_NEW_PRIVS"; "PR_SET_PDEATHSIG"; "PR_GET_PDEATHSIG";
        "PR_CAPBSET_READ"; "PR_CAPBSET_DROP"; "PR_SET_TSC"; "PR_GET_TSC" ] );
    ( "clock_gettime",
      [ "REALTIME"; "MONOTONIC"; "BOOTTIME"; "TAI"; "PROCESS_CPUTIME";
        "THREAD_CPUTIME"; "MONOTONIC_RAW"; "REALTIME_COARSE" ] );
    ( "keyctl",
      [ "GET_KEYRING_ID"; "JOIN_SESSION"; "UPDATE"; "REVOKE"; "CHOWN";
        "SETPERM"; "DESCRIBE"; "CLEAR"; "LINK"; "UNLINK"; "SEARCH"; "READ" ] );
    ( "sched_setattr",
      [ "NORMAL"; "FIFO"; "RR"; "BATCH"; "IDLE"; "DEADLINE" ] );
    ( "setrlimit",
      [ "CPU"; "FSIZE"; "DATA"; "STACK"; "CORE"; "RSS"; "NPROC"; "NOFILE";
        "MEMLOCK"; "AS" ] );
    ( "timer_create",
      [ "REALTIME"; "MONOTONIC"; "BOOTTIME"; "REALTIME_ALARM" ] );
    ( "getrandom", [ "DEFAULT"; "NONBLOCK"; "INSECURE" ] );
    ( "seccomp", [ "SET_MODE_STRICT"; "SET_MODE_FILTER"; "GET_ACTION_AVAIL" ] );
    ( "personality",
      [ "LINUX"; "LINUX32"; "SVR4"; "UNAME26" ] );
    ( "madvise",
      [ "NORMAL"; "RANDOM"; "SEQUENTIAL"; "WILLNEED"; "DONTNEED"; "FREE";
        "HUGEPAGE"; "NOHUGEPAGE"; "DONTDUMP"; "DODUMP" ] );
    ( "sysctl",
      [ "KERNEL_OSTYPE"; "KERNEL_OSRELEASE"; "KERNEL_VERSION"; "VM_SWAPPINESS";
        "VM_OVERCOMMIT"; "NET_CORE_SOMAXCONN"; "FS_FILE_MAX"; "FS_NR_OPEN" ] );
    ( "ioprio_set", [ "PROCESS"; "PGRP"; "USER" ] );
    ( "getcpu", [ "CURRENT" ] );
    ( "umask", [ "SET" ] );
    ( "sync", [ "ALL" ] );
    ( "membarrier", [ "QUERY"; "GLOBAL"; "PRIVATE_EXPEDITED" ] );
    ( "rseq", [ "REGISTER"; "UNREGISTER" ] );
    ( "capget", [ "V3" ] );
    ( "capset", [ "V3" ] );
    ( "times", [ "SELF" ] );
  ]

let names =
  List.concat_map
    (fun (base, variants) -> List.map (fun v -> base ^ "$" ^ v) variants)
    families

(* Each call owns one entry block plus (for every fourth call) one
   value-dependent branch — shallow paths that any fuzzer exhausts
   almost immediately. Their role is interface dilution, not
   coverage. *)
let handler idx ctx args =
  let base = idx * 2 in
  c ctx base;
  let a = Arg.as_int (Arg.nth args 0) in
  if idx mod 4 = 0 && Int64.compare a 0x10000L > 0 then c ctx (base + 1);
  if Int64.compare a 0L < 0 then Ctx.err Errno.EINVAL else Ctx.ok0

let descriptions =
  "# Long-tail stateless interfaces.\n"
  ^ String.concat "\n"
      (List.map (fun name -> name ^ "(arg intptr, arg2 intptr)") names)
  ^ "\n"

let sub =
  Subsystem.make ~name:"compat" ~descriptions
    ~handlers:(List.mapi (fun idx name -> (name, handler idx)) names)
    ()
