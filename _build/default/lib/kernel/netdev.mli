(** Network device subsystem: interface management, macvlan upper
    devices, qdisc configuration, packet TX/RX (the e1000 model).

    Injected bugs: [dev_ioctl_warn], [e1000_clean],
    [macvlan_broadcast], [qdisc_calculate_pkt_len]. *)

type netdev = {
  dname : string;
  mutable up : bool;
  mutable qdisc_limit : int option;  (** None = default pfifo. *)
  mutable last_xmit : int;  (** Op tick of the last transmit. *)
  mutable macvlan_dying : bool;
}

type State.global += Netdevs of (string, netdev) Hashtbl.t
type State.fd_kind += Packet_sock

val sub : Subsystem.t
