(** Niche socket families: Bluetooth L2CAP, NFC LLCP and IEEE 802.15.4
    (with its llsec key management).

    Injected bugs: [l2cap_chan_put], [llcp_sock_bind_uninit],
    [llcp_sock_getname], [ieee802154_llsec_parse_key_id],
    [nl802154_del_llsec_key], [ieee802154_tx]. *)

type l2cap = {
  mutable connected : bool;
  mutable mode_set : bool;
  mutable chan_refs : int;
  mutable shut : bool;
}

type llcp = {
  mutable bound : bool;
  mutable listening : bool;
  mutable connect_failed : bool;
}

type ieee802154 = {
  mutable keys : int64 list;
  mutable security_on : bool;
  mutable closed_while_tx : bool;
}

type State.fd_kind +=
  | L2cap of l2cap
  | Llcp of llcp
  | Ieee802154 of ieee802154

val sub : Subsystem.t
