(** IPC subsystem: eventfd/timerfd descriptors and System-V shared
    memory, semaphores and message queues.

    SysV objects are identified by non-fd resource ids, giving the
    relation learner id-typed chains ([shmget -> shmat -> shmdt]) that
    never touch the descriptor table. No catalog bugs live here; the
    subsystem exists to widen the stateful surface (deferred shm
    destruction, semaphore counters, queue depth ladders). *)

type eventfd = { mutable counter : int64 }
type timerfd = { mutable armed : bool; mutable interval : int64 }

type shm = {
  shm_size : int64;
  mutable attached : int;
  mutable rmid_pending : bool;
  mutable shm_destroyed : bool;
}

type sem = { mutable values : int array; mutable sem_destroyed : bool }
type msgq = { mutable depth : int; mutable bytes : int; mutable q_destroyed : bool }

type tables = {
  shms : (int64, shm) Hashtbl.t;
  sems : (int64, sem) Hashtbl.t;
  msgs : (int64, msgq) Hashtbl.t;
}

type State.fd_kind += Eventfd of eventfd | Timerfd of timerfd
type State.global += Ipc of tables

val sub : Subsystem.t
