type config = { kasan : bool; kmsan : bool; kcsan : bool }

let default = { kasan = true; kmsan = true; kcsan = true }
let none = { kasan = false; kmsan = false; kcsan = false }

let detects c (risk : Risk.t) =
  match risk with
  | Risk.Use_after_free | Risk.Out_of_bounds -> c.kasan
  | Risk.Uninit_value -> c.kmsan
  | Risk.Memory_leak -> c.kasan (* kmemleak, bundled with the KASAN build *)
  | Risk.Data_race -> c.kcsan
  | Risk.Null_ptr_deref | Risk.General_protection_fault | Risk.Paging_fault
  | Risk.Divide_error | Risk.Kernel_bug | Risk.Deadlock
  | Risk.Inconsistent_lock_state | Risk.Refcount_bug ->
    true

let pp ppf c =
  Fmt.pf ppf "kasan=%b kmsan=%b kcsan=%b" c.kasan c.kmsan c.kcsan
