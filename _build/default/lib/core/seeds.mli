(** Synthetic trace corpus standing in for Moonshine's strace'd
    handwritten test suites (LTP etc.).

    Each trace is a plausible test program for one kernel subsystem
    with unrelated noise calls interleaved, so that distillation has
    both real dependencies to keep and junk to discard. Traces are
    deterministic for a given seed. *)

val traces : ?seed:int -> Healer_syzlang.Target.t -> Healer_executor.Prog.t list

val distilled : ?seed:int -> Healer_syzlang.Target.t -> Healer_executor.Prog.t list
(** [Distill.distill] applied to {!traces} — the [strong_distill.db]
    analogue used as Moonshine's initial corpus. *)
