(** Moonshine's seed distillation (paper Section 3).

    Moonshine traces existing handwritten test suites, statically
    analyzes the read-write dependencies of the traced calls, and keeps
    only the calls each interesting call depends on, producing compact
    high-quality initial seeds for Syzkaller.

    Our trace substrate is {!Seeds.traces} (synthetic LTP-style test
    programs); the dependency approximation keeps a call [C_j] for
    [C_i] when [C_i] references [C_j]'s result (explicit resource flow)
    or when both touch the same kernel subsystem's global state and
    [C_j] runs first (the static over-approximation of shared
    read-write variables). *)

val dependencies : Healer_executor.Prog.t -> int -> int list
(** [dependencies p i] — indices [j < i] that call [i] depends on
    (one step; not transitive). *)

val slice : Healer_executor.Prog.t -> int -> Healer_executor.Prog.t
(** Backward dependency closure of call [i], as a runnable program. *)

val distill : Healer_executor.Prog.t list -> Healer_executor.Prog.t list
(** Distill a trace corpus into deduplicated seeds: walking each trace
    backwards, each call not yet captured by a previous slice seeds its
    own dependency slice; single-call slices of calls with dependents
    are dropped as redundant. *)
