module Target = Healer_syzlang.Target
module Syscall = Healer_syzlang.Syscall

(* Compatibility here is the *specific* one: the consumer expects the
   produced kind or its immediate parent. Walking inheritance all the
   way to the root (every fd producer influencing every generic fd
   consumer) would make the table dense and uninformative; the paper's
   Table 3 reports ~5878 learned relations over 3579 calls — a sparse,
   locally dense graph — so the static rule cannot be root-compatible.
   Generic edges that actually matter are picked up dynamically, since
   removing the producer visibly changes the consumer's coverage. *)
let specific_match _target ~consumed ~produced =
  List.exists (fun r0 -> List.exists (String.equal r0) consumed) produced

let learn target table =
  let calls = Target.syscalls target in
  let added = ref 0 in
  Array.iter
    (fun (ci : Syscall.t) ->
      let produced = Target.produces target ci in
      if produced <> [] then
        Array.iter
          (fun (cj : Syscall.t) ->
            if ci.Syscall.id <> cj.Syscall.id then
              let consumed = Target.consumes target cj in
              if
                specific_match target ~consumed ~produced
                && Relation_table.set table ci.Syscall.id cj.Syscall.id
              then incr added)
          calls)
    calls;
  !added

let initial_table target =
  let table = Relation_table.create (Target.n_syscalls target) in
  ignore (learn target table);
  table
