type t = {
  mutable alpha : float;
  window : int;
  mutable table_uses : int;
  mutable table_hits : int;
  mutable rand_uses : int;
  mutable rand_hits : int;
  mutable recorded : int;
  mutable n_updates : int;
}

let lo = 0.2
let hi = 0.95

(* [init] is taken as given (the fixed-alpha ablation uses 0 and 1);
   only the adaptive updates are clamped into [lo, hi]. *)
let create ?(init = 0.5) ?(window = 1024) () =
  {
    alpha = init;
    window;
    table_uses = 0;
    table_hits = 0;
    rand_uses = 0;
    rand_hits = 0;
    recorded = 0;
    n_updates = 0;
  }

let value t = t.alpha

let update t =
  if t.table_uses >= 32 && t.rand_uses >= 32 then begin
    (* Laplace-smoothed success rates, blended with the previous value
       so that a window where neither strategy finds much coverage
       does not erase what alpha has learned. *)
    let rt = float_of_int (t.table_hits + 1) /. float_of_int (t.table_uses + 2) in
    let rr = float_of_int (t.rand_hits + 1) /. float_of_int (t.rand_uses + 2) in
    let fresh = rt /. (rt +. rr) in
    t.alpha <- min hi (max lo ((0.5 *. t.alpha) +. (0.5 *. fresh)))
  end;
  t.table_uses <- 0;
  t.table_hits <- 0;
  t.rand_uses <- 0;
  t.rand_hits <- 0;
  t.recorded <- 0;
  t.n_updates <- t.n_updates + 1

let record t ~used_table ~new_cov =
  if used_table then begin
    t.table_uses <- t.table_uses + 1;
    if new_cov then t.table_hits <- t.table_hits + 1
  end
  else begin
    t.rand_uses <- t.rand_uses + 1;
    if new_cov then t.rand_hits <- t.rand_hits + 1
  end;
  t.recorded <- t.recorded + 1;
  if t.recorded >= t.window then update t

let updates t = t.n_updates
