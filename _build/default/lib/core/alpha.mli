(** The dynamically adjusted parameter alpha of Algorithm 3.

    Alpha is the probability of consulting the relation table during
    call selection. Every test case records whether its selection used
    the table and whether it produced new coverage; every [window]
    (default 1024, as in the paper) recorded test cases, alpha is
    updated toward the relative rate of return of table-guided
    selection, clamped away from the extremes so that neither pure
    randomness nor pure guidance ever disappears. *)

type t

val create : ?init:float -> ?window:int -> unit -> t
val value : t -> float

val record : t -> used_table:bool -> new_cov:bool -> unit
(** One finished test case. *)

val updates : t -> int
(** How many times alpha has been recomputed. *)
