module Prog = Healer_executor.Prog
module Serializer = Healer_executor.Serializer

exception Corrupt of string

let magic = "HLRDB1\n"

let corpus_to_string progs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  List.iter
    (fun p ->
      let encoded = Serializer.encode p in
      Serializer.put_uvarint buf (Int64.of_int (String.length encoded));
      Buffer.add_string buf encoded)
    progs;
  Buffer.contents buf

let corpus_of_string target s =
  let n = String.length s in
  if n < String.length magic || String.sub s 0 (String.length magic) <> magic then
    raise (Corrupt "bad corpus magic");
  let pos = ref (String.length magic) in
  let progs = ref [] in
  (try
     while !pos < n do
       let len = Int64.to_int (Serializer.get_uvarint s pos) in
       if len < 0 || !pos + len > n then raise (Corrupt "truncated entry");
       let entry = String.sub s !pos len in
       pos := !pos + len;
       progs := Serializer.decode target entry :: !progs
     done
   with Serializer.Malformed msg -> raise (Corrupt msg));
  List.rev !progs

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let save_corpus ~path progs = write_file path (corpus_to_string progs)
let load_corpus target ~path = corpus_of_string target (read_file path)
let save_relations ~path table = write_file path (Relation_table.serialize table)
let load_relations ~path = Relation_table.deserialize (read_file path)
