(** Guided call selection — the paper's Algorithm 3.

    Given the sub-sequence S preceding an insertion point, with
    probability [1 - alpha] pick a uniformly random call; otherwise
    build the candidate map M — every call [c_j] with [R(c_i, c_j) = 1]
    for some [c_i] in S, weighted by how many calls of S influence it —
    and make a weighted random choice. Falls back to a random call when
    M is empty. *)

type outcome = { id : int; used_table : bool }

val select :
  Healer_util.Rng.t ->
  Relation_table.t ->
  alpha:float ->
  sub:int list ->
  outcome
(** [sub] is the list of syscall ids preceding the insertion point.
    [used_table] is true only when the candidate map actually decided
    the choice (feeds {!Alpha.record}). *)
