(** Syzkaller's choice table — the baseline HEALER is compared against
    (paper Section 3).

    Each entry [P(i,j) = P0(i,j) * P1(i,j) / 1000] records the
    probability weight that call [i] should be invoked before call [j].
    [P0] comes from a static analysis assigning hard-coded weights to
    the types two calls have in common (10 per shared resource kind, 5
    for vma, 2 per shared flag set, 1 for buffers); [P1] counts
    adjacent pairs in the corpus. Both are normalized into
    [10, 1000]. As the paper argues, neither component actually
    captures influence relations — which is the point of the
    comparison. *)

type t

val create : Healer_syzlang.Target.t -> t
(** Computes the static [P0] part. *)

val note_corpus_program : t -> Healer_executor.Prog.t -> unit
(** Count the adjacent pairs of a corpus program into [P1]'s raw
    counters (renormalized lazily). *)

val select :
  Healer_util.Rng.t -> t -> bias:int option -> int
(** Choose a call to insert after the call [bias] (the last call of
    the preceding sub-sequence), weighted by [P(bias, j)]; uniform when
    [bias] is [None]. *)

val weight : t -> int -> int -> int
(** Current [P(i,j)] (for tests and the ablation bench). *)
