module Version = Healer_kernel.Version

type run = {
  tool : Fuzzer.tool;
  version : Version.t;
  seed : int;
  hours : float;
  final_cov : int;
  samples : (float * int) list;
  corpus_size : int;
  corpus_lengths : int list;
  relations : int;
  crashes : Triage.record list;
  relation_snapshots : (float * (int * int) list) list;
  execs : int;
}

let run_one ?(hours = 24.0) ?(seed = 1) ~tool ~version () =
  let cfg = Fuzzer.config ~seed ~tool ~version () in
  let f = Fuzzer.create cfg in
  Fuzzer.run_until f (hours *. 3600.0);
  {
    tool;
    version;
    seed;
    hours;
    final_cov = Fuzzer.coverage f;
    samples = Fuzzer.samples f;
    corpus_size = Corpus.size (Fuzzer.corpus f);
    corpus_lengths = Corpus.lengths (Fuzzer.corpus f);
    relations = Fuzzer.relation_count f;
    crashes = Triage.records (Fuzzer.triage f);
    relation_snapshots = Fuzzer.relation_snapshots f;
    execs = Fuzzer.execs f;
  }

let improvement_pct ~base subject =
  Healer_util.Statx.pct (float_of_int base.final_cov) (float_of_int subject.final_cov)

let time_to_coverage run level =
  let rec go = function
    | [] -> None
    | (t, cov) :: rest -> if cov >= level then Some t else go rest
  in
  go run.samples

let speedup ~base subject =
  match time_to_coverage subject base.final_cov with
  | Some t when t > 0.0 -> Some (base.hours *. 3600.0 /. t)
  | Some _ | None -> None

type comparison = {
  version : Version.t;
  rounds : int;
  min_impr : float;
  max_impr : float;
  avg_impr : float;
  avg_speedup : float option;
}

let compare_tools ?(hours = 24.0) ~rounds ~subject ~base version =
  if rounds <= 0 then invalid_arg "Campaign.compare_tools: rounds must be positive";
  let pairs =
    List.init rounds (fun round ->
        let seed = round + 1 in
        let b = run_one ~hours ~seed ~tool:base ~version () in
        let s = run_one ~hours ~seed ~tool:subject ~version () in
        (b, s))
  in
  let imprs = List.map (fun (b, s) -> improvement_pct ~base:b s) pairs in
  let speedups = List.filter_map (fun (b, s) -> speedup ~base:b s) pairs in
  {
    version;
    rounds;
    min_impr = Healer_util.Statx.minimum imprs;
    max_impr = Healer_util.Statx.maximum imprs;
    avg_impr = Healer_util.Statx.mean imprs;
    avg_speedup =
      (if speedups = [] then None else Some (Healer_util.Statx.mean speedups));
  }

let average_series runs =
  match runs with
  | [] -> []
  | first :: _ ->
    let times = List.map fst first.samples in
    List.map
      (fun t ->
        let at run =
          (* Last sample at or before t; series are per-minute so exact
             matches are the common case. *)
          let rec go acc = function
            | [] -> acc
            | (t', cov) :: rest -> if t' <= t then go (float_of_int cov) rest else acc
          in
          go 0.0 run.samples
        in
        (t, Healer_util.Statx.mean (List.map at runs)))
      times

let merge_crashes runs =
  let best : (string, Triage.record) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun run ->
      List.iter
        (fun (r : Triage.record) ->
          match Hashtbl.find_opt best r.Triage.bug_key with
          | Some prev when prev.Triage.first_found <= r.Triage.first_found -> ()
          | Some _ | None -> Hashtbl.replace best r.Triage.bug_key r)
        run.crashes)
    runs;
  Hashtbl.fold (fun _ r acc -> r :: acc) best []
  |> List.sort (fun a b -> Float.compare a.Triage.first_found b.Triage.first_found)
