(** A program bundled with the coverage observations of one run:
    per-call full coverage and per-call {e new} coverage relative to
    the global bitmap at the time it ran. This is the unit of work
    flowing from the fuzzing loop into minimization and relation
    learning. *)

type t = {
  prog : Healer_executor.Prog.t;
  cov : int list array;  (** Full branch set per call. *)
  new_cov : int list array;  (** Newly discovered branches per call. *)
}

val of_run :
  Healer_executor.Prog.t -> Healer_executor.Exec.run_result -> new_cov:int list array -> t

val observe : exec:(Healer_executor.Prog.t -> Healer_executor.Exec.run_result) -> Healer_executor.Prog.t -> t
(** Run the program once and record coverage, with empty [new_cov]
    (used when re-observing a candidate subsequence). *)

val call_cov : t -> int -> int list
val length : t -> int
