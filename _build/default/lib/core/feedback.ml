module Bitset = Healer_util.Bitset
module Exec = Healer_executor.Exec

type t = { bitmap : Bitset.t }

let create () = { bitmap = Bitset.create ~capacity:8192 () }
let coverage t = Bitset.count t.bitmap
let seen t = t.bitmap

let process t (r : Exec.run_result) =
  let per_call =
    Array.map
      (fun (cr : Exec.call_result) -> Bitset.new_of t.bitmap cr.Exec.cov)
      r.Exec.calls
  in
  Array.iter
    (fun (cr : Exec.call_result) -> ignore (Bitset.add_seq t.bitmap cr.Exec.cov))
    r.Exec.calls;
  per_call

let is_interesting per_call = Array.exists (fun l -> l <> []) per_call

let peek_new t (r : Exec.run_result) =
  Array.exists
    (fun (cr : Exec.call_result) -> Bitset.new_of t.bitmap cr.Exec.cov <> [])
    r.Exec.calls
