module Rng = Healer_util.Rng

type outcome = { id : int; used_table : bool }

let random_call rng table =
  { id = Rng.int rng (Relation_table.size table); used_table = false }

let select rng table ~alpha ~sub =
  if Rng.float rng 1.0 > alpha then random_call rng table
  else begin
    let m : (int, int) Hashtbl.t = Hashtbl.create 32 in
    List.iter
      (fun ci ->
        List.iter
          (fun cj ->
            let w = match Hashtbl.find_opt m cj with Some w -> w | None -> 0 in
            Hashtbl.replace m cj (w + 1))
          (Relation_table.influenced_by table ci))
      sub;
    if Hashtbl.length m = 0 then random_call rng table
    else
      let choices = Hashtbl.fold (fun id w acc -> (id, w) :: acc) m [] in
      let choices = List.sort compare choices in
      { id = Rng.weighted rng choices; used_table = true }
  end
