(** Type-directed argument synthesis and mutation (paper Section 4.2,
    "parameter synthesis").

    Generation strategies follow the type: magic-number-biased integers,
    flag subsets, length fields computed from their sibling argument,
    resource arguments wired to a compatible earlier producer when one
    exists (falling back to a special value), literal pools for
    strings/filenames, recursive struct/union/array payloads.

    Mutation applies type-specific operators: bit flips and arithmetic
    deltas on integers, flag toggles, buffer resizing, producer
    re-wiring, payload regeneration. *)

type ctx = {
  target : Healer_syzlang.Target.t;
  producers : string -> int list;
      (** [producers kind] = indices of earlier calls whose result is a
          resource compatible with consumer kind [kind]. *)
}

val gen_args :
  Healer_util.Rng.t -> ctx -> Healer_syzlang.Syscall.t -> Healer_executor.Value.t list
(** Fresh arguments for a call, length fields resolved. *)

val gen_value : Healer_util.Rng.t -> ctx -> Healer_syzlang.Ty.t -> Healer_executor.Value.t
(** Single value for a type ([Len] becomes a placeholder integer). *)

val mutate_args :
  Healer_util.Rng.t ->
  ctx ->
  Healer_syzlang.Syscall.t ->
  Healer_executor.Value.t list ->
  Healer_executor.Value.t list
(** Mutate one (occasionally several) of the arguments. *)

val size_of_value : Healer_executor.Value.t -> int
(** Byte-size estimate used to resolve [len\[...\]] arguments. *)
