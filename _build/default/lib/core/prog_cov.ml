module Prog = Healer_executor.Prog
module Exec = Healer_executor.Exec

type t = {
  prog : Prog.t;
  cov : int list array;
  new_cov : int list array;
}

let cov_of_run (r : Exec.run_result) =
  Array.map (fun (cr : Exec.call_result) -> cr.Exec.cov) r.Exec.calls

let of_run prog r ~new_cov = { prog; cov = cov_of_run r; new_cov }

let observe ~exec prog =
  let r = exec prog in
  { prog; cov = cov_of_run r; new_cov = Array.make (Prog.length prog) [] }

let call_cov t i = t.cov.(i)
let length t = Prog.length t.prog
