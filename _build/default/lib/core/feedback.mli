(** Global coverage feedback: the accumulated branch bitmap and
    detection of test cases that reach new coverage. *)

type t

val create : unit -> t

val coverage : t -> int
(** Branches covered so far. *)

val seen : t -> Healer_util.Bitset.t

val process : t -> Healer_executor.Exec.run_result -> int list array
(** [process t r] returns, per call, the branch ids that were new
    relative to the global bitmap (before merging), then merges
    everything. The paper's trigger for minimization + relation
    learning is a non-empty result on any call. *)

val is_interesting : int list array -> bool
(** Any call with new coverage? *)

val peek_new : t -> Healer_executor.Exec.run_result -> bool
(** Would [process] find new coverage? No state change. *)
