module Rng = Healer_util.Rng
module Target = Healer_syzlang.Target
module Syscall = Healer_syzlang.Syscall
module Prog = Healer_executor.Prog

let max_prog_len = 32

let producers_for target p ~upto kind =
  let acc = ref [] in
  for k = min upto (Prog.length p) - 1 downto 0 do
    let c = (Prog.call p k).Prog.syscall in
    let produced = Target.produces target c in
    if
      List.exists
        (fun r -> Target.compatible target ~consumer:kind ~producer:r)
        produced
    then acc := k :: !acc
  done;
  !acc

let value_ctx target p ~at =
  {
    Value_gen.target;
    producers = (fun kind -> producers_for target p ~upto:at kind);
  }

let make_call rng target p ~at (call : Syscall.t) =
  let args = Value_gen.gen_args rng (value_ctx target p ~at) call in
  { Prog.syscall = call; args }

(* Insert producers for the consumed kinds of [call] that have no
   compatible producer before [at]; returns the program and the
   position where [call] itself should now go. *)
let rec ensure_producers rng target p ~at ~depth (call : Syscall.t) =
  if depth <= 0 || Prog.length p >= max_prog_len then (p, at)
  else
    List.fold_left
      (fun (p, at) kind ->
        if Prog.length p >= max_prog_len then (p, at)
        else if producers_for target p ~upto:at kind <> [] then (p, at)
        else
          match Target.producers_of target kind with
          | [] -> (p, at)
          | cands ->
            let producer = Rng.pick rng cands in
            if producer.Syscall.id = call.Syscall.id then (p, at)
            else begin
              let p, at' = ensure_producers rng target p ~at ~depth:(depth - 1) producer in
              if Prog.length p >= max_prog_len then (p, at')
              else begin
                let pc = make_call rng target p ~at:at' producer in
                (Prog.insert p at' pc, at' + 1)
              end
            end)
      (p, at) (Target.consumes target call)

let insert_call rng target p ~at (call : Syscall.t) =
  let at = min at (Prog.length p) in
  let p, at = ensure_producers rng target p ~at ~depth:3 call in
  if Prog.length p >= max_prog_len then p
  else Prog.insert p at (make_call rng target p ~at call)

let append_call rng target p call = insert_call rng target p ~at:(Prog.length p) call
