module Prog = Healer_executor.Prog
module Serializer = Healer_executor.Serializer
module Syscall = Healer_syzlang.Syscall
module Kernel = Healer_kernel.Kernel

let subsystem_of_call (c : Prog.call) = Kernel.subsystem_of c.Prog.syscall.Syscall.name

let dependencies p i =
  let ci = Prog.call p i in
  let explicit = Prog.refs_of_call ci in
  let sub_i = subsystem_of_call ci in
  let shared_state =
    List.filter
      (fun j ->
        (not (List.mem j explicit))
        && String.equal (subsystem_of_call (Prog.call p j)) sub_i)
      (List.init i (fun j -> j))
  in
  List.sort_uniq Int.compare (explicit @ shared_state)

let closure p i =
  let marked = Array.make (Prog.length p) false in
  let rec visit k =
    if not marked.(k) then begin
      marked.(k) <- true;
      List.iter visit (dependencies p k)
    end
  in
  visit i;
  marked

let slice p i =
  let marked = closure p i in
  (* Delete unmarked calls from the end backwards so indices stay valid;
     Prog.remove renumbers the references. *)
  let q = ref p in
  for k = Prog.length p - 1 downto 0 do
    if not marked.(k) then q := Prog.remove !q k
  done;
  !q

let distill traces =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let emit s =
    let key = Serializer.encode s in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      out := s :: !out
    end
  in
  List.iter
    (fun p ->
      let n = Prog.length p in
      let captured = Array.make n false in
      for i = n - 1 downto 0 do
        if not captured.(i) then begin
          let marked = closure p i in
          Array.iteri (fun k m -> if m then captured.(k) <- true) marked;
          let s = slice p i in
          (* A single isolated call whose subsystem nobody else touches
             carries no dependency information; Moonshine drops such
             calls from its distilled seeds. *)
          if Prog.length s > 1 then emit s
        end
      done)
    traces;
  List.rev !out
