(** Static relation learning (paper Section 4.1, "Static Learning").

    [C_i] influences [C_j] — R(i,j) = 1 — when:
    + [C_i]'s return type is a resource kind r0, or one of its
      parameters is a pointer to a resource with outward data flow; and
    + at least one of [C_j]'s parameters is a resource kind r1 with
      inward data flow such that r0 is compatible with r1 (r0 equals r1
      or inherits from it).

    This initializes the relation table once from the compiled
    descriptions; dynamic learning refines it during the campaign. *)

val learn : Healer_syzlang.Target.t -> Relation_table.t -> int
(** Populate the table; returns the number of relations added. *)

val initial_table : Healer_syzlang.Target.t -> Relation_table.t
(** Fresh table with static relations applied. *)
