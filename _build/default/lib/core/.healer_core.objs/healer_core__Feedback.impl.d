lib/core/feedback.ml: Array Healer_executor Healer_util
