lib/core/prog_cov.mli: Healer_executor
