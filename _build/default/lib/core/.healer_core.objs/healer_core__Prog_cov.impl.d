lib/core/prog_cov.ml: Array Healer_executor
