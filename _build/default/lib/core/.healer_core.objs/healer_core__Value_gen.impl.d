lib/core/value_gen.ml: Array Bytes Char Healer_executor Healer_syzlang Healer_util Int64 List String
