lib/core/minimize.mli: Healer_executor Prog_cov
