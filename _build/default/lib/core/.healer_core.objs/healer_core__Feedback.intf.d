lib/core/feedback.mli: Healer_executor Healer_util
