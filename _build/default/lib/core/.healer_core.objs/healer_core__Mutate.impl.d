lib/core/mutate.ml: Array Builder Gen Healer_executor Healer_syzlang Healer_util Value_gen
