lib/core/distill.mli: Healer_executor
