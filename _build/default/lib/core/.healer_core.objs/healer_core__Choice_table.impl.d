lib/core/choice_table.ml: Array Healer_executor Healer_syzlang Healer_util List String
