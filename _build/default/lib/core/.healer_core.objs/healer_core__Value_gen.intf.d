lib/core/value_gen.mli: Healer_executor Healer_syzlang Healer_util
