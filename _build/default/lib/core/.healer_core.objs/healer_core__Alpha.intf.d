lib/core/alpha.mli:
