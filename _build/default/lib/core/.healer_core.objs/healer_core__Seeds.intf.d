lib/core/seeds.mli: Healer_executor Healer_syzlang
