lib/core/choice_table.mli: Healer_executor Healer_syzlang Healer_util
