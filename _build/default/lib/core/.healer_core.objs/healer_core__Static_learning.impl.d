lib/core/static_learning.ml: Array Healer_syzlang List Relation_table String
