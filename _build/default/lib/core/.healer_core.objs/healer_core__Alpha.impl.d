lib/core/alpha.ml:
