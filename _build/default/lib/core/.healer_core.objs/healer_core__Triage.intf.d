lib/core/triage.mli: Healer_executor Healer_kernel
