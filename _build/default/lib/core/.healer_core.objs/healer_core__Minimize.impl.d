lib/core/minimize.ml: Array Hashtbl Healer_executor List Prog_cov
