lib/core/gen.ml: Array Builder Healer_executor Healer_syzlang Healer_util List
