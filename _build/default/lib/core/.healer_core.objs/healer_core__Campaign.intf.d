lib/core/campaign.mli: Fuzzer Healer_kernel Triage
