lib/core/distill.ml: Array Hashtbl Healer_executor Healer_kernel Healer_syzlang Int List String
