lib/core/builder.ml: Healer_executor Healer_syzlang Healer_util List Value_gen
