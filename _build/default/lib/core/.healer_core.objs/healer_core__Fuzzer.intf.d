lib/core/fuzzer.mli: Corpus Healer_executor Healer_kernel Healer_syzlang Relation_table Triage
