lib/core/select.mli: Healer_util Relation_table
