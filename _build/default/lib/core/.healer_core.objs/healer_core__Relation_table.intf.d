lib/core/relation_table.mli: Format
