lib/core/dynamic_learning.ml: Array Healer_executor Healer_syzlang List Minimize Prog_cov Relation_table
