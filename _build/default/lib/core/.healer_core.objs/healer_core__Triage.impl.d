lib/core/triage.ml: Hashtbl Healer_executor Healer_kernel List String
