lib/core/corpus.mli: Healer_executor Healer_syzlang Healer_util
