lib/core/persist.mli: Healer_executor Healer_syzlang Relation_table
