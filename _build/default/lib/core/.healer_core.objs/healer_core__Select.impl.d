lib/core/select.ml: Hashtbl Healer_util List Relation_table
