lib/core/campaign.ml: Corpus Float Fuzzer Hashtbl Healer_kernel Healer_util List Triage
