lib/core/static_learning.mli: Healer_syzlang Relation_table
