lib/core/builder.mli: Healer_executor Healer_syzlang Healer_util
