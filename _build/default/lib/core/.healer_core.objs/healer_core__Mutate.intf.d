lib/core/mutate.mli: Healer_executor Healer_syzlang Healer_util
