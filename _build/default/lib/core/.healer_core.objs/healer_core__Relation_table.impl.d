lib/core/relation_table.ml: Array Buffer Bytes Char Fmt Int List Printf Scanf String
