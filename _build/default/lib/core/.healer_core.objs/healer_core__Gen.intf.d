lib/core/gen.mli: Healer_executor Healer_syzlang Healer_util
