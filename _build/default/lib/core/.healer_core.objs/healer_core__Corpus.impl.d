lib/core/corpus.ml: Array Hashtbl Healer_executor Healer_syzlang Healer_util List
