lib/core/seeds.ml: Builder Distill Healer_executor Healer_syzlang Healer_util List
