lib/core/dynamic_learning.mli: Healer_executor Prog_cov Relation_table
