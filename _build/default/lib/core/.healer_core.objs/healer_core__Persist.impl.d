lib/core/persist.ml: Buffer Fun Healer_executor Int64 List Relation_table String
