(** Deterministic splittable pseudo-random number generator.

    Every stochastic decision in the fuzzer flows through a value of type
    {!t} so that campaigns are reproducible from a single integer seed.
    The implementation is SplitMix64, which is fast, has a 64-bit state,
    and supports cheap splitting for independent sub-streams. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator deterministically derived from
    [seed]. Two generators created from the same seed produce the same
    stream. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent from the remainder of [t]'s stream. *)

val copy : t -> t
(** [copy t] duplicates the current state; both copies then produce the
    same stream. Used by tests only. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound). Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in \[lo, hi\]. Requires [lo <= hi]. *)

val int64 : t -> int64 -> int64
(** [int64 t bound] is uniform in \[0, bound). Requires [bound > 0L]. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p] (clamped to \[0,1\]). *)

val pick : t -> 'a list -> 'a
(** Uniform choice. Raises [Invalid_argument] on the empty list. *)

val pick_arr : t -> 'a array -> 'a
(** Uniform choice. Raises [Invalid_argument] on the empty array. *)

val weighted : t -> ('a * int) list -> 'a
(** [weighted t choices] picks proportionally to the (positive) weights.
    Raises [Invalid_argument] if the list is empty or total weight is 0. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs] returns at most [k] distinct elements of [xs], in a
    random order. *)
