type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 finalizer: Stafford's mix13 variant. *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }
let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (bits64 t) mask) in
  v mod bound

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let int64 t bound =
  if Int64.compare bound 0L <= 0 then invalid_arg "Rng.int64: bound must be positive";
  let v = Int64.logand (bits64 t) Int64.max_int in
  Int64.rem v bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let pick_arr t a =
  if Array.length a = 0 then invalid_arg "Rng.pick_arr: empty array";
  a.(int t (Array.length a))

let weighted t choices =
  let total = List.fold_left (fun acc (_, w) -> acc + max 0 w) 0 choices in
  if total <= 0 then invalid_arg "Rng.weighted: no positive weight";
  let target = int t total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.weighted: internal"
    | (x, w) :: rest ->
      let acc = acc + max 0 w in
      if target < acc then x else go acc rest
  in
  go 0 choices

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample t k xs =
  let a = Array.of_list xs in
  shuffle t a;
  let n = min k (Array.length a) in
  Array.to_list (Array.sub a 0 n)
