let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@' |]

let resample values width =
  let n = Array.length values in
  Array.init width (fun col ->
      let idx = col * (n - 1) / max 1 (width - 1) in
      values.(min idx (n - 1)))

let render ?(width = 64) ?(height = 16) ~series () =
  if series = [] then invalid_arg "Asciichart.render: no series";
  if List.length series > Array.length glyphs then
    invalid_arg "Asciichart.render: too many series";
  List.iter
    (fun (_, v) ->
      if Array.length v = 0 then invalid_arg "Asciichart.render: empty series")
    series;
  let vmax =
    List.fold_left
      (fun acc (_, v) -> Array.fold_left max acc v)
      1.0 series
  in
  let grid = Array.make_matrix height width ' ' in
  List.iteri
    (fun k (_, values) ->
      let sampled = resample values width in
      Array.iteri
        (fun col v ->
          let row =
            height - 1 - int_of_float (v /. vmax *. float_of_int (height - 1))
          in
          let row = max 0 (min (height - 1) row) in
          grid.(row).(col) <- glyphs.(k))
        sampled)
    series;
  let buf = Buffer.create (height * (width + 16)) in
  Array.iteri
    (fun row line ->
      let label =
        if row = 0 then Printf.sprintf "%8.0f |" vmax
        else if row = height - 1 then Printf.sprintf "%8.0f |" 0.0
        else "         |"
      in
      Buffer.add_string buf label;
      Buffer.add_string buf (String.init width (fun col -> line.(col)));
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf ("         +" ^ String.make width '-' ^ "\n");
  let legend =
    List.mapi
      (fun k (name, _) -> Printf.sprintf "%c %s" glyphs.(k) name)
      series
    |> String.concat "   "
  in
  Buffer.add_string buf ("           " ^ legend ^ "\n");
  Buffer.contents buf
