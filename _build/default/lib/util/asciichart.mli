(** Minimal ASCII line charts for terminal reports (Figure 4's coverage
    curves in the bench output).

    Renders one or more series sampled on a shared x-axis into a fixed
    character grid, one plot character per series, with a y-axis scale
    and a legend line. *)

val render :
  ?width:int ->
  ?height:int ->
  series:(string * float array) list ->
  unit ->
  string
(** [render ~series ()] plots each named series over its index range
    (series are resampled to [width] columns; the y-range spans 0 to
    the global maximum). Raises [Invalid_argument] when [series] is
    empty, any series is empty, or more than 6 series are given. *)
