(** Virtual clock for deterministic, laptop-scale campaign simulation.

    The paper runs 24-hour wall-clock campaigns; we charge each executed
    program a simulated cost instead, so a full "24 hours" completes in
    seconds and is exactly reproducible. *)

type t

val create : unit -> t
val now : t -> float
(** Seconds of virtual time elapsed. *)

val advance : t -> float -> unit
(** [advance t dt] moves the clock forward by [dt] seconds ([dt >= 0]). *)

val hours : float -> float
(** [hours h] is [h] in seconds. *)

val minutes : float -> float
