lib/util/asciichart.ml: Array Buffer List Printf String
