lib/util/bitset.mli:
