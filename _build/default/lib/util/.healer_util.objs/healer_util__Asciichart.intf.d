lib/util/asciichart.mli:
