lib/util/vclock.mli:
