lib/util/bitset.ml: Bytes Char Hashtbl List
