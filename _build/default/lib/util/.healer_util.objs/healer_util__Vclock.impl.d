lib/util/vclock.ml:
