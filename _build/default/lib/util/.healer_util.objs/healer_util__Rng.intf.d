lib/util/rng.mli:
