lib/util/statx.mli:
