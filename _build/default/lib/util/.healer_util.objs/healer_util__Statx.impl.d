lib/util/statx.ml: List
