let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let minimum = function
  | [] -> invalid_arg "Statx.minimum: empty"
  | x :: xs -> List.fold_left min x xs

let maximum = function
  | [] -> invalid_arg "Statx.maximum: empty"
  | x :: xs -> List.fold_left max x xs

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
    sqrt var

let percentile p = function
  | [] -> invalid_arg "Statx.percentile: empty"
  | xs ->
    let sorted = List.sort compare xs in
    let n = List.length sorted in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let idx = max 0 (min (n - 1) (rank - 1)) in
    List.nth sorted idx

let histogram ~buckets xs =
  (* Buckets must be consecutive integers, or values falling between
     them would be silently dropped. *)
  let rec consecutive = function
    | a :: (b :: _ as rest) ->
      if b <> a + 1 then invalid_arg "Statx.histogram: buckets not consecutive"
      else consecutive rest
    | [ _ ] | [] -> ()
  in
  consecutive buckets;
  match List.rev buckets with
  | [] -> invalid_arg "Statx.histogram: no buckets"
  | last :: _ ->
    let counts = List.map (fun b -> (string_of_int b, ref 0)) buckets in
    let overflow = ref 0 in
    let bump x =
      match List.assoc_opt (string_of_int x) counts with
      | Some r when x <= last -> incr r
      | Some _ | None -> if x > last then incr overflow
    in
    List.iter bump xs;
    List.map (fun (label, r) -> (label, !r)) counts
    @ [ (string_of_int (last + 1) ^ "+", !overflow) ]

let pct base v =
  if base = 0.0 then invalid_arg "Statx.pct: zero base";
  (v -. base) /. base *. 100.0
