type t = { mutable t : float }

let create () = { t = 0.0 }
let now c = c.t

let advance c dt =
  if dt < 0.0 then invalid_arg "Vclock.advance: negative dt";
  c.t <- c.t +. dt

let hours h = h *. 3600.0
let minutes m = m *. 60.0
