(** Small numeric helpers used by the campaign engine and benches. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val minimum : float list -> float
(** Raises [Invalid_argument] on the empty list. *)

val maximum : float list -> float
(** Raises [Invalid_argument] on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in \[0,100\], nearest-rank on the sorted
    list. Raises [Invalid_argument] on the empty list. *)

val histogram : buckets:int list -> int list -> (string * int) list
(** [histogram ~buckets:[1;2;3;4] xs] counts values equal to each bucket,
    with a final ["5+"]-style overflow bucket for values beyond the last.
    Bucket labels are the printed bucket values. Buckets must be
    consecutive integers (raises [Invalid_argument] otherwise — gaps
    would silently drop values). *)

val pct : float -> float -> float
(** [pct base v] is the percentage improvement of [v] over [base]:
    [(v -. base) /. base *. 100.]. Requires [base <> 0]. *)
