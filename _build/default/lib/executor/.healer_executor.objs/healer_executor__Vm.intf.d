lib/executor/vm.mli: Exec Healer_kernel Prog
