lib/executor/exec.ml: Array Healer_kernel Healer_syzlang Int List Prog Value
