lib/executor/value.mli: Format
