lib/executor/prog.ml: Array Fmt Healer_syzlang Int List Printf Value
