lib/executor/pool.mli: Exec Healer_kernel Prog Vm
