lib/executor/vm.ml: Exec Healer_kernel
