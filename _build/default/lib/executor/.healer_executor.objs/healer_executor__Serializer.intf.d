lib/executor/serializer.mli: Buffer Healer_syzlang Prog
