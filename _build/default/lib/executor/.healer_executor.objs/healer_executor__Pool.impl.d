lib/executor/pool.ml: Array Vm
