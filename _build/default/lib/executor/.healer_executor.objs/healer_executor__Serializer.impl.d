lib/executor/serializer.ml: Array Buffer Bytes Char Healer_syzlang Int64 List Printf Prog String Value
