lib/executor/value.ml: Bytes Fmt List
