lib/executor/exec.mli: Healer_kernel Prog
