lib/executor/prog.mli: Format Healer_syzlang Value
