(** A pool of virtual machines, dispatched round-robin.

    The paper's experiments give each fuzzer several QEMU instances;
    the pool abstracts picking the next available one and aggregating
    their statistics. *)

type t

val create :
  ?san:Healer_kernel.Sanitizer.config ->
  ?features:string list ->
  version:Healer_kernel.Version.t ->
  size:int ->
  unit ->
  t

val size : t -> int
val next : t -> Vm.t
(** Round-robin choice. *)

val run : t -> ?fault_call:int -> Prog.t -> Exec.run_result
(** Run on the next VM. *)

val total_execs : t -> int
val total_crashes : t -> int
val total_resets : t -> int
val iter : (Vm.t -> unit) -> t -> unit
