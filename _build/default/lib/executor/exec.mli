(** Program execution against a booted simulated kernel.

    Each run resolves the program's symbolic values, executes the
    calls in order, and collects per-call branch coverage — the
    feedback HEALER's minimization and dynamic relation learning
    consume. A crash aborts the run; the remaining calls are not
    executed (the guest has paniced). *)

type call_result = {
  retval : int64;
  errno : Healer_kernel.Errno.t option;
  cov : int list;  (** Branch ids covered by this call, first-hit order. *)
  executed : bool;  (** False for calls after a crash / process kill. *)
}

type run_result = {
  calls : call_result array;  (** One slot per program call. *)
  crash : Healer_kernel.Crash.report option;
}

val run :
  ?fault_call:int ->
  ?fresh_state:bool ->
  Healer_kernel.Kernel.t ->
  Prog.t ->
  Healer_kernel.Kernel.t * run_result
(** [run kernel prog] executes [prog]. With [fresh_state] (default
    true) the kernel is re-booted first, making runs reproducible —
    the executor forks a pristine process per test case.
    [fault_call i] injects an allocation failure into call [i]; the
    process is then killed and the kernel runs its core-dump path
    (which may itself crash). Returns the (possibly re-booted) kernel
    and the result. *)

val cov_equal : int list -> int list -> bool
(** Set equality of two per-call coverage traces (order-insensitive),
    the comparison both Algorithm 1 and Algorithm 2 perform. *)

val total_cov : run_result -> int list
(** Union of all per-call coverage, deduplicated. *)
