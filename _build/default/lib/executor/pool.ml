type t = { vms : Vm.t array; mutable cursor : int }

let create ?san ?features ~version ~size () =
  if size <= 0 then invalid_arg "Pool.create: size must be positive";
  let vms = Array.init size (fun id -> Vm.create ?san ?features ~version ~id ()) in
  { vms; cursor = 0 }

let size p = Array.length p.vms

let next p =
  let vm = p.vms.(p.cursor) in
  p.cursor <- (p.cursor + 1) mod Array.length p.vms;
  vm

let run p ?fault_call prog = Vm.run (next p) ?fault_call prog

let fold f init p = Array.fold_left f init p.vms

let total_execs p = fold (fun acc vm -> acc + (Vm.stats vm).Vm.execs) 0 p
let total_crashes p = fold (fun acc vm -> acc + (Vm.stats vm).Vm.crashes) 0 p
let total_resets p = fold (fun acc vm -> acc + (Vm.stats vm).Vm.resets) 0 p
let iter f p = Array.iter f p.vms
