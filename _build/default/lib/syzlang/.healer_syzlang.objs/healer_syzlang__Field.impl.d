lib/syzlang/field.ml: Fmt Ty
