lib/syzlang/target.ml: Array Field Fmt Hashtbl List Parser Printf String Syscall Ty
