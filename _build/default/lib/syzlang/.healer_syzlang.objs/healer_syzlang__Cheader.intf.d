lib/syzlang/cheader.mli:
