lib/syzlang/cheader.ml: Array Buffer Char Fmt Hashtbl Int64 List Option Printf Scanf String
