lib/syzlang/parser.ml: Field Fmt Int64 Lexer List Ty
