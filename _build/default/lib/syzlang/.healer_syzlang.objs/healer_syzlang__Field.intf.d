lib/syzlang/field.mli: Format Ty
