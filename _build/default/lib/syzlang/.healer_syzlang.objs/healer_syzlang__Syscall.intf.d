lib/syzlang/syscall.mli: Field Format
