lib/syzlang/lexer.ml: Fmt Int64 List Printf String
