lib/syzlang/parser.mli: Field Format
