lib/syzlang/ty.mli: Format
