lib/syzlang/lexer.mli: Format
