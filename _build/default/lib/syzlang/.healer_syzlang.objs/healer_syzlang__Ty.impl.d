lib/syzlang/ty.ml: Fmt
