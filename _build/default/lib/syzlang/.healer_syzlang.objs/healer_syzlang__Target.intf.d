lib/syzlang/target.mli: Field Format Parser Syscall
