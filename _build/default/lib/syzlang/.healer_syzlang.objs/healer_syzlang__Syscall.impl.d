lib/syzlang/syscall.ml: Field Fmt List String Ty
