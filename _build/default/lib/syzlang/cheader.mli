(** C header to Syzlang conversion — the extension the paper's
    Section 8 proposes to reduce the cost of writing descriptions by
    hand: "automatically convert the definitions in the C header files
    into Syzlang descriptions", preserving the structural definition
    and leaving semantic refinement to a human.

    The supported header subset covers what interface headers actually
    contain:
    - [#define NAME <int>] constants; runs of defines sharing a
      [PREFIX_] are grouped into one Syzlang flag set;
    - [struct name { ... };] with integer fields ([char], [short],
      [int], [long], [__u8..__u64], [size_t]), fixed-size [char]
      arrays (becoming buffers) and pointers (becoming [ptr]);
    - [_IO]/[_IOR]/[_IOW]/[_IOWR] ioctl macros, converted into
      [ioctl$NAME] specializations on a caller-chosen fd resource;
    - function prototypes ([long foo(int fd, const char *buf, size_t
      count);]), converted into syscall declarations.

    The output is valid input for {!Target.of_string} once concatenated
    after a prelude declaring the fd resource. *)

type item =
  | Define of string * int64
  | Struct_def of string * (string * string) list
      (** (field name, converted Syzlang type). *)
  | Ioctl of { iname : string; dir : string; code : int64; arg : string option }
      (** [dir] is "none", "in", "out" or "inout"; [arg] the struct. *)
  | Proto of { pname : string; ret : string; params : (string * string) list }
      (** (converted Syzlang type, param name). *)

exception Unsupported of string

val parse : string -> item list
(** Parse the supported subset; unsupported lines are skipped, but a
    malformed construct that starts like a supported one raises
    {!Unsupported}. *)

val convert : ?fd_resource:string -> string -> string
(** [convert header] emits Syzlang text: flag sets from grouped
    defines, struct definitions, one [ioctl$NAME] per ioctl macro
    (against [fd_resource], default ["fd"]) and one declaration per
    prototype. *)

val group_defines : (string * int64) list -> (string * (string * int64) list) list
(** Group constants by longest shared [PREFIX_]; exposed for tests. *)
