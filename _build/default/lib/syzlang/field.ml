type t = { fname : string; fty : Ty.t }

let v fname fty = { fname; fty }
let pp ppf { fname; fty } = Fmt.pf ppf "%s %a" fname Ty.pp fty
