type token =
  | IDENT of string
  | INT of int64
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACK
  | RBRACK
  | LBRACE
  | RBRACE
  | COMMA
  | COLON
  | EQUALS
  | NEWLINE
  | EOF

exception Error of { line : int; msg : string }

let fail line msg = raise (Error { line; msg })

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "ident %s" s
  | INT v -> Fmt.pf ppf "int %Ld" v
  | STRING s -> Fmt.pf ppf "string %S" s
  | LPAREN -> Fmt.string ppf "("
  | RPAREN -> Fmt.string ppf ")"
  | LBRACK -> Fmt.string ppf "["
  | RBRACK -> Fmt.string ppf "]"
  | LBRACE -> Fmt.string ppf "{"
  | RBRACE -> Fmt.string ppf "}"
  | COMMA -> Fmt.string ppf ","
  | COLON -> Fmt.string ppf ":"
  | EQUALS -> Fmt.string ppf "="
  | NEWLINE -> Fmt.string ppf "<newline>"
  | EOF -> Fmt.string ppf "<eof>"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '$'
let is_digit c = c >= '0' && c <= '9'

let is_hex_digit c =
  is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let depth = ref 0 in
  let emit tok = tokens := (tok, !line) :: !tokens in
  let last_is_newline () =
    match !tokens with (NEWLINE, _) :: _ | [] -> true | _ -> false
  in
  let rec skip_comment i = if i < n && src.[i] <> '\n' then skip_comment (i + 1) else i in
  let read_ident i =
    let j = ref i in
    while !j < n && is_ident_char src.[!j] do incr j done;
    (String.sub src i (!j - i), !j)
  in
  let read_number i =
    let neg = src.[i] = '-' in
    let i = if neg then i + 1 else i in
    if i >= n || not (is_digit src.[i]) then fail !line "malformed number";
    let hex = i + 1 < n && src.[i] = '0' && (src.[i + 1] = 'x' || src.[i + 1] = 'X') in
    let start = if hex then i + 2 else i in
    let j = ref start in
    let valid = if hex then is_hex_digit else is_digit in
    while !j < n && valid src.[!j] do incr j done;
    if !j = start then fail !line "malformed number";
    let digits = String.sub src start (!j - start) in
    let v =
      try
        if hex then Int64.of_string ("0x" ^ digits) else Int64.of_string digits
      with Failure _ -> fail !line ("number out of range: " ^ digits)
    in
    ((if neg then Int64.neg v else v), !j)
  in
  let read_string i =
    (* i points at the opening quote *)
    let j = ref (i + 1) in
    while !j < n && src.[!j] <> '"' && src.[!j] <> '\n' do incr j done;
    if !j >= n || src.[!j] = '\n' then fail !line "unterminated string literal";
    (String.sub src (i + 1) (!j - i - 1), !j + 1)
  in
  let rec go i =
    if i >= n then ()
    else
      match src.[i] with
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '\n' ->
        if !depth = 0 && not (last_is_newline ()) then emit NEWLINE;
        incr line;
        go (i + 1)
      | '#' -> go (skip_comment i)
      | '(' -> incr depth; emit LPAREN; go (i + 1)
      | ')' -> decr depth; emit RPAREN; go (i + 1)
      | '[' -> incr depth; emit LBRACK; go (i + 1)
      | ']' -> decr depth; emit RBRACK; go (i + 1)
      | '{' -> incr depth; emit LBRACE; go (i + 1)
      | '}' -> decr depth; emit RBRACE; go (i + 1)
      | ',' -> emit COMMA; go (i + 1)
      | ':' -> emit COLON; go (i + 1)
      | '=' -> emit EQUALS; go (i + 1)
      | '"' ->
        let s, j = read_string i in
        emit (STRING s);
        go j
      | '-' ->
        let v, j = read_number i in
        emit (INT v);
        go j
      | c when is_digit c ->
        let v, j = read_number i in
        emit (INT v);
        go j
      | c when is_ident_start c ->
        let s, j = read_ident i in
        emit (IDENT s);
        go j
      | c -> fail !line (Printf.sprintf "unexpected character %C" c)
  in
  go 0;
  if not (last_is_newline ()) then emit NEWLINE;
  emit EOF;
  List.rev !tokens
