(** A system call description.

    Specialized calls use Syzlang's [base$variant] convention, e.g.
    [ioctl$KVM_RUN] is a specialization of [ioctl]. *)

type t = {
  id : int;  (** Dense index into the target's syscall table. *)
  name : string;  (** Full name, possibly [base$variant]. *)
  base : string;  (** Name before the [$]. *)
  args : Field.t list;
  ret : string option;  (** Resource kind produced by the return value. *)
}

val variant : t -> string option
(** [variant c] is the part after [$], if any. *)

val is_specialization : t -> bool

val produces : t -> string list
(** Resource kinds this call can produce: its return kind plus any
    [ptr\[out, resource\]] (or direct [Res] with out direction)
    argument, recursively through structs-free positions (pointers and
    arrays are traversed; struct members are resolved by {!Target}). *)

val consumes : t -> string list
(** Resource kinds consumed: [Res] arguments with inward direction,
    traversed through pointers and arrays. *)

val pp : Format.formatter -> t -> unit
