type item =
  | Define of string * int64
  | Struct_def of string * (string * string) list
  | Ioctl of { iname : string; dir : string; code : int64; arg : string option }
  | Proto of { pname : string; ret : string; params : (string * string) list }

exception Unsupported of string

let fail fmt = Fmt.kstr (fun s -> raise (Unsupported s)) fmt

(* ---- tiny lexical helpers ---- *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

let trim = String.trim

let strip_comments src =
  let b = Buffer.create (String.length src) in
  let n = String.length src in
  let rec go i =
    if i >= n then ()
    else if i + 1 < n && src.[i] = '/' && src.[i + 1] = '*' then begin
      (* Preserve newlines inside block comments for line counting. *)
      let rec skip j =
        if j + 1 >= n then n
        else if src.[j] = '*' && src.[j + 1] = '/' then j + 2
        else begin
          if src.[j] = '\n' then Buffer.add_char b '\n';
          skip (j + 1)
        end
      in
      go (skip (i + 2))
    end
    else if i + 1 < n && src.[i] = '/' && src.[i + 1] = '/' then begin
      let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
      go (skip i)
    end
    else begin
      Buffer.add_char b src.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents b

let parse_int s =
  let s = trim s in
  let s =
    (* Drop C integer suffixes. *)
    let rec chop s =
      let n = String.length s in
      if n > 0 && (match s.[n - 1] with 'u' | 'U' | 'l' | 'L' -> true | _ -> false)
      then chop (String.sub s 0 (n - 1))
      else s
    in
    chop s
  in
  match Int64.of_string_opt s with
  | Some v -> Some v
  | None -> (
    (* (1 << N) shifts are ubiquitous in flag headers. *)
    match Scanf.sscanf_opt s "(%Ld << %d)" (fun base sh -> (base, sh)) with
    | Some (base, sh) when sh >= 0 && sh < 63 -> Some (Int64.shift_left base sh)
    | _ -> (
      match Scanf.sscanf_opt s "1 << %d" (fun sh -> sh) with
      | Some sh when sh >= 0 && sh < 63 -> Some (Int64.shift_left 1L sh)
      | _ -> None))

(* ---- C type conversion ---- *)

let convert_scalar = function
  | "char" | "__s8" | "__u8" | "u8" | "int8_t" | "uint8_t" -> Some "int8"
  | "short" | "__s16" | "__u16" | "u16" | "int16_t" | "uint16_t" -> Some "int16"
  | "int" | "unsigned" | "__s32" | "__u32" | "u32" | "int32_t" | "uint32_t" ->
    Some "int32"
  | "long" | "__s64" | "__u64" | "u64" | "int64_t" | "uint64_t" | "size_t"
  | "ssize_t" | "loff_t" ->
    Some "int64"
  | _ -> None

(* Normalize a C declarator like "const char *buf" or "__u32 flags" into
   (syzlang type, identifier). *)
let convert_decl ~structs decl =
  let decl = trim decl in
  let words =
    String.split_on_char ' ' decl
    |> List.concat_map (fun w ->
           (* Split the '*' off "*buf". *)
           if String.length w > 1 && w.[0] = '*' then
             [ "*"; String.sub w 1 (String.length w - 1) ]
           else if String.length w > 1 && w.[String.length w - 1] = '*' then
             [ String.sub w 0 (String.length w - 1); "*" ]
           else [ w ])
    |> List.filter (fun w -> w <> "" && w <> "const" && w <> "unsigned" && w <> "volatile")
  in
  match List.rev words with
  | [] -> fail "empty declaration"
  | name :: rev_ty ->
    let pointer = List.mem "*" rev_ty in
    let ty_words = List.filter (fun w -> w <> "*") (List.rev rev_ty) in
    (* Fixed-size array suffix: name[16]. *)
    let name, array_len =
      match String.index_opt name '[' with
      | Some idx when String.length name > idx + 1 && name.[String.length name - 1] = ']' ->
        let base = String.sub name 0 idx in
        let len_s = String.sub name (idx + 1) (String.length name - idx - 2) in
        (base, int_of_string_opt len_s)
      | Some _ | None -> (name, None)
    in
    if name = "" || not (String.for_all is_ident_char name) then
      fail "bad identifier in %S" decl;
    let base_ty =
      match ty_words with
      | [ "struct"; sname ] ->
        if List.mem sname structs then sname
        else fail "unknown struct %s in %S" sname decl
      | [ "void" ] -> "void"
      | [ scalar ] -> (
        match convert_scalar scalar with
        | Some t -> t
        | None -> fail "unsupported type %S" decl)
      | [] -> "int32" (* bare "unsigned x" after filtering *)
      | _ -> fail "unsupported type %S" decl
    in
    let syz =
      match (pointer, base_ty, array_len) with
      | _, "int8", Some _ -> "buffer[in]"
      | _, t, Some n -> Printf.sprintf "array[%s, %d:%d]" t (max n 0) (max n 0)
      | true, "void", None -> "buffer[inout]"
      | true, "int8", None -> "buffer[in]" (* char* *)
      | true, t, None -> Printf.sprintf "ptr[in, %s]" t
      | false, "void", None -> fail "bare void in %S" decl
      | false, t, None -> t
    in
    (syz, name)

(* ---- parsing ---- *)

let re_matches prefix line =
  String.length line >= String.length prefix
  && String.sub line 0 (String.length prefix) = prefix

let parse_define line =
  (* #define NAME VALUE-ish *)
  match Scanf.sscanf_opt line "#define %s %s@\n" (fun a b -> (a, b)) with
  | None -> None
  | Some (name, rest) ->
    if String.contains name '(' then None (* function-like macro *)
    else (
      match parse_int rest with
      | Some v -> Some (Define (name, v))
      | None -> None)

let find_substring hay needle =
  let hn = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > hn then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

(* #define KVM_RUN _IO(0xae, 0x80) / #define X _IOW('k', 3, struct foo) *)
let parse_ioctl line =
  if not (re_matches "#define " line) then None
  else
    let forms = [ ("_IOWR(", "inout"); ("_IOR(", "out"); ("_IOW(", "in"); ("_IO(", "none") ] in
    let matching =
      List.find_opt (fun (form, _) -> find_substring line form <> None) forms
    in
    match matching with
    | None -> None
    | Some (form, dir) ->
      let name =
        match Scanf.sscanf_opt line "#define %s " (fun s -> s) with
        | Some s -> s
        | None -> fail "bad ioctl define %S" line
      in
      let start = Option.get (find_substring line form) + String.length form in
      let close =
        match String.rindex_opt line ')' with
        | Some i when i > start -> i
        | Some _ | None -> fail "unterminated ioctl macro %S" line
      in
      let args = String.sub line start (close - start) in
      let parts = String.split_on_char ',' args |> List.map trim in
      let number s =
        match parse_int s with
        | Some x -> x
        | None ->
          (* Character codes like 'k' appear as the type byte. *)
          if String.length s = 3 && s.[0] = '\'' && s.[2] = '\'' then
            Int64.of_int (Char.code s.[1])
          else fail "bad ioctl number in %S" line
      in
      let code, arg =
        match parts with
        | ty :: nr :: rest ->
          let code = Int64.add (Int64.mul (number ty) 256L) (number nr) in
          let arg =
            let joined = String.concat "," rest |> trim in
            if re_matches "struct " joined then
              Some (trim (String.sub joined 7 (String.length joined - 7)))
            else None
          in
          (code, arg)
        | _ -> fail "bad ioctl args in %S" line
      in
      Some (Ioctl { iname = name; dir; code; arg })

let parse_struct_block ~structs header i_start lines =
  (* lines.(i_start) is "struct name {". Collect until "};" *)
  let first = trim lines.(i_start) in
  let sname =
    match Scanf.sscanf_opt first "struct %s {" (fun s -> s) with
    | Some s -> s
    | None -> fail "bad struct header %S" first
  in
  ignore header;
  let fields = ref [] in
  let i = ref (i_start + 1) in
  let n = Array.length lines in
  let finished = ref false in
  while (not !finished) && !i < n do
    let line = trim lines.(!i) in
    if line = "};" || line = "}" then finished := true
    else if line <> "" then begin
      let decl =
        if String.length line > 0 && line.[String.length line - 1] = ';' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      let syz, fname = convert_decl ~structs:!structs decl in
      fields := (fname, syz) :: !fields
    end;
    incr i
  done;
  if not !finished then fail "unterminated struct %s" sname;
  structs := sname :: !structs;
  (* [!i] already points past the terminating "};" (the loop increments
     after consuming it). *)
  (Struct_def (sname, List.rev !fields), !i)

let parse_proto ~structs line =
  (* long name(type a, type b); *)
  match Scanf.sscanf_opt line " %s@( %s@) ;" (fun head params -> (head, params)) with
  | None -> None
  | Some (head, params) ->
    let head_words =
      String.split_on_char ' ' head |> List.filter (fun w -> w <> "")
    in
    (match List.rev head_words with
    | name :: ret_words when name <> "" && String.for_all is_ident_char name ->
      let ret = String.concat " " (List.rev ret_words) in
      if convert_scalar ret = None && ret <> "void" then None
      else begin
        let params =
          if trim params = "void" || trim params = "" then []
          else
            String.split_on_char ',' params
            |> List.map (fun p -> convert_decl ~structs p)
        in
        Some (Proto { pname = name; ret; params })
      end
    | _ -> None)

let parse src =
  let src = strip_comments src in
  let lines = Array.of_list (String.split_on_char '\n' src) in
  let structs = ref [] in
  let items = ref [] in
  let i = ref 0 in
  while !i < Array.length lines do
    let line = trim lines.(!i) in
    if line = "" || re_matches "#include" line || re_matches "#ifndef" line
       || re_matches "#ifdef" line || re_matches "#endif" line
       || re_matches "#else" line
    then incr i
    else if re_matches "struct " line && String.contains line '{' then begin
      let item, next = parse_struct_block ~structs line !i lines in
      items := item :: !items;
      i := next
    end
    else begin
      (match parse_ioctl line with
      | Some item -> items := item :: !items
      | None -> (
        match parse_define line with
        | Some item -> items := item :: !items
        | None -> (
          match parse_proto ~structs:!structs line with
          | Some item -> items := item :: !items
          | None -> ())));
      incr i
    end
  done;
  List.rev !items

(* ---- grouping and emission ---- *)

let prefix_of name =
  match String.rindex_opt name '_' with
  | Some i when i > 0 -> String.sub name 0 i
  | Some _ | None -> name

let group_defines defines =
  let groups : (string, (string * int64) list) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (name, v) ->
      let p = prefix_of name in
      if not (Hashtbl.mem groups p) then order := p :: !order;
      Hashtbl.replace groups p
        ((name, v) :: (try Hashtbl.find groups p with Not_found -> [])))
    defines;
  List.rev_map (fun p -> (p, List.rev (Hashtbl.find groups p))) !order

let convert ?(fd_resource = "fd") src =
  let items = parse src in
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  add "# generated from C header by Cheader.convert";
  (* Flag sets from grouped defines (singletons stay constants and are
     only reachable through the ioctls that use them). *)
  let defines =
    List.filter_map (function Define (n, v) -> Some (n, v) | _ -> None) items
  in
  List.iter
    (fun (prefix, members) ->
      if List.length members >= 2 then
        add "flags %s_flags = %s"
          (String.lowercase_ascii prefix)
          (String.concat " " (List.map (fun (_, v) -> Printf.sprintf "0x%Lx" v) members)))
    (group_defines defines);
  (* Structs. *)
  List.iter
    (function
      | Struct_def (name, fields) ->
        add "struct %s { %s }" name
          (String.concat ", "
             (List.map (fun (fname, ty) -> fname ^ " " ^ ty) fields))
      | Define _ | Ioctl _ | Proto _ -> ())
    items;
  (* Ioctls. *)
  List.iter
    (function
      | Ioctl { iname; dir; code; arg } ->
        let arg_part =
          match (arg, dir) with
          | Some sname, ("in" | "inout" | "none") ->
            Printf.sprintf ", arg ptr[in, %s]" sname
          | Some sname, _ -> Printf.sprintf ", arg ptr[out, %s]" sname
          | None, _ -> ""
        in
        add "ioctl$%s(fd %s, cmd const[0x%Lx]%s)" iname fd_resource code arg_part
      | Define _ | Struct_def _ | Proto _ -> ())
    items;
  (* Prototypes. *)
  List.iter
    (function
      | Proto { pname; ret = _; params } ->
        add "%s(%s)" pname
          (String.concat ", " (List.map (fun (ty, name) -> name ^ " " ^ ty) params))
      | Define _ | Struct_def _ | Ioctl _ -> ())
    items;
  Buffer.contents buf
