type t = {
  id : int;
  name : string;
  base : string;
  args : Field.t list;
  ret : string option;
}

let variant c =
  match String.index_opt c.name '$' with
  | None -> None
  | Some i -> Some (String.sub c.name (i + 1) (String.length c.name - i - 1))

let is_specialization c = variant c <> None

(* Walk a type expression collecting resource kinds whose data-flow
   direction satisfies [keep]. A pointer's direction overrides the
   direction of the resource it points to: [ptr[out, fd]] produces. *)
let rec collect_res ~keep ~ptr_dir acc (ty : Ty.t) =
  match ty with
  | Ty.Res { kind; dir } ->
    let dir = match ptr_dir with Some d -> d | None -> dir in
    if keep dir then kind :: acc else acc
  | Ty.Ptr { dir; elem } -> collect_res ~keep ~ptr_dir:(Some dir) acc elem
  | Ty.Array { elem; _ } -> collect_res ~keep ~ptr_dir acc elem
  | Ty.Int _ | Ty.Const _ | Ty.Flags _ | Ty.Len _ | Ty.Proc _ | Ty.Buffer _
  | Ty.Str _ | Ty.Filename _ | Ty.Struct_ref _ | Ty.Union_ref _ | Ty.Vma ->
    acc

let dedup xs = List.sort_uniq String.compare xs

let produces c =
  let keep = function Ty.Out | Ty.In_out -> true | Ty.In -> false in
  let from_args =
    List.fold_left
      (fun acc (f : Field.t) -> collect_res ~keep ~ptr_dir:None acc f.fty)
      [] c.args
  in
  let all = match c.ret with Some r -> r :: from_args | None -> from_args in
  dedup all

let consumes c =
  let keep = function Ty.In | Ty.In_out -> true | Ty.Out -> false in
  dedup
    (List.fold_left
       (fun acc (f : Field.t) -> collect_res ~keep ~ptr_dir:None acc f.fty)
       [] c.args)

let pp ppf c =
  Fmt.pf ppf "%s(%a)%a" c.name
    Fmt.(list ~sep:(any ", ") Field.pp)
    c.args
    Fmt.(option (fun ppf r -> Fmt.pf ppf " %s" r))
    c.ret
