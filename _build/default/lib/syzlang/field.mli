(** A named, typed slot: a syscall argument or a struct/union member. *)

type t = { fname : string; fty : Ty.t }

val v : string -> Ty.t -> t
val pp : Format.formatter -> t -> unit
