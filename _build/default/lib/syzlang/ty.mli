(** Type expressions of the Syzlang subset.

    The subset keeps everything HEALER's algorithms depend on: resource
    types with inheritance and direction, pointers with data-flow
    direction, flag sets, length fields, buffers, strings/filenames,
    fixed-size integers with optional ranges, structs, unions, arrays,
    [vma] regions and per-process values. *)

type dir = In | Out | In_out

type t =
  | Int of { bits : int; range : (int64 * int64) option }
      (** [bits] in {8,16,32,64}; [range] constrains generated values. *)
  | Const of int64  (** Fixed value, e.g. an ioctl command number. *)
  | Flags of string  (** Reference to a named flag set of the target. *)
  | Len of string  (** Length (in bytes) of the named sibling argument. *)
  | Proc of { start : int64; step : int64 }
      (** Per-process value, [start + proc_id * step]. *)
  | Res of { kind : string; dir : dir }
      (** Resource use. [dir = In] consumes, [dir = Out] produces. *)
  | Ptr of { dir : dir; elem : t }
  | Buffer of { dir : dir }
  | Str of string list  (** String drawn from the candidate literals. *)
  | Filename of string list
  | Array of { elem : t; min_len : int; max_len : int }
  | Struct_ref of string
  | Union_ref of string
  | Vma

val pp_dir : Format.formatter -> dir -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val is_resource : t -> bool
(** True for [Res _] at the top level. *)

val int_bits_valid : int -> bool
