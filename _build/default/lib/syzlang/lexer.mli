(** Lexer for the Syzlang-subset description language.

    The language is line-oriented: a newline ends a declaration unless it
    occurs inside parentheses, brackets or braces. Comments run from [#]
    to end of line. *)

type token =
  | IDENT of string  (** Identifiers; may contain [$] (specializations). *)
  | INT of int64  (** Decimal or [0x] hexadecimal, optional [-] sign. *)
  | STRING of string  (** Double-quoted literal, no escapes. *)
  | LPAREN
  | RPAREN
  | LBRACK
  | RBRACK
  | LBRACE
  | RBRACE
  | COMMA
  | COLON
  | EQUALS
  | NEWLINE  (** Declaration separator (only emitted at bracket depth 0). *)
  | EOF

exception Error of { line : int; msg : string }

val tokenize : string -> (token * int) list
(** [tokenize src] returns tokens paired with their 1-based line number,
    ending with [EOF]. Raises {!Error} on malformed input. *)

val pp_token : Format.formatter -> token -> unit
