type dir = In | Out | In_out

type t =
  | Int of { bits : int; range : (int64 * int64) option }
  | Const of int64
  | Flags of string
  | Len of string
  | Proc of { start : int64; step : int64 }
  | Res of { kind : string; dir : dir }
  | Ptr of { dir : dir; elem : t }
  | Buffer of { dir : dir }
  | Str of string list
  | Filename of string list
  | Array of { elem : t; min_len : int; max_len : int }
  | Struct_ref of string
  | Union_ref of string
  | Vma

let pp_dir ppf = function
  | In -> Fmt.string ppf "in"
  | Out -> Fmt.string ppf "out"
  | In_out -> Fmt.string ppf "inout"

let rec pp ppf = function
  | Int { bits; range = None } -> Fmt.pf ppf "int%d" bits
  | Int { bits; range = Some (lo, hi) } -> Fmt.pf ppf "int%d[%Ld:%Ld]" bits lo hi
  | Const v -> Fmt.pf ppf "const[0x%Lx]" v
  | Flags name -> Fmt.pf ppf "flags[%s]" name
  | Len field -> Fmt.pf ppf "len[%s]" field
  | Proc { start; step } -> Fmt.pf ppf "proc[%Ld, %Ld]" start step
  | Res { kind; dir = In } -> Fmt.string ppf kind
  | Res { kind; dir } -> Fmt.pf ppf "%s %a" kind pp_dir dir
  | Ptr { dir; elem } -> Fmt.pf ppf "ptr[%a, %a]" pp_dir dir pp elem
  | Buffer { dir } -> Fmt.pf ppf "buffer[%a]" pp_dir dir
  | Str lits -> Fmt.pf ppf "string[%a]" Fmt.(list ~sep:comma (quote string)) lits
  | Filename lits ->
    Fmt.pf ppf "filename[%a]" Fmt.(list ~sep:comma (quote string)) lits
  | Array { elem; min_len; max_len } ->
    Fmt.pf ppf "array[%a, %d:%d]" pp elem min_len max_len
  | Struct_ref name -> Fmt.pf ppf "struct %s" name
  | Union_ref name -> Fmt.pf ppf "union %s" name
  | Vma -> Fmt.string ppf "vma"

let to_string t = Fmt.str "%a" pp t

let is_resource = function Res _ -> true | _ -> false
let int_bits_valid bits = bits = 8 || bits = 16 || bits = 32 || bits = 64
