examples/triage_demo.mli:
