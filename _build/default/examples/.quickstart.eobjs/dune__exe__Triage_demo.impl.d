examples/triage_demo.ml: Bytes Fmt Healer_core Healer_executor Healer_kernel Healer_syzlang Option Triage
