examples/header_import.ml: Fmt Gen Healer_core Healer_executor Healer_syzlang Healer_util List Relation_table Static_learning
