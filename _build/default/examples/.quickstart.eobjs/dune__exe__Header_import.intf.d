examples/header_import.mli:
