examples/relation_explore.mli:
