examples/quickstart.ml: Array Bytes Corpus Fmt Fuzzer Healer_core Healer_executor Healer_kernel Healer_syzlang List Triage
