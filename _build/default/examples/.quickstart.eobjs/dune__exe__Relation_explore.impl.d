examples/relation_explore.ml: Fmt Fuzzer Healer_core Healer_kernel Healer_syzlang Int List Option Relation_table Static_learning
