examples/kvm_hunt.mli:
