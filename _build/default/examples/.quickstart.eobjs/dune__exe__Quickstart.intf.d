examples/quickstart.mli:
