examples/kvm_hunt.ml: Fmt Fuzzer Healer_core Healer_executor Healer_kernel Healer_syzlang List Relation_table String Triage
