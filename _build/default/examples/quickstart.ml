(* Quickstart: boot the simulated kernel, execute a hand-written test
   case, inspect per-call coverage, then let HEALER fuzz for a virtual
   hour.

   Run with: dune exec examples/quickstart.exe *)

module Target = Healer_syzlang.Target
module K = Healer_kernel
module Prog = Healer_executor.Prog
module Value = Healer_executor.Value
module Exec = Healer_executor.Exec
open Healer_core

let call target name args = { Prog.syscall = Target.find_exn target name; args }

let () =
  let target = K.Kernel.target () in
  Fmt.pr "Target: %a@.@." Target.pp_summary target;

  (* 1. A hand-written test case: create a memfd, seal it, map it —
     the paper's Figure 2 example. *)
  let p =
    Prog.of_list
      [
        call target "memfd_create" [ Value.Ptr (Value.Str "demo"); Value.Int 3L ];
        call target "write" [ Value.Res_ref 0; Value.Buf (Bytes.make 64 'a'); Value.Int 64L ];
        call target "fcntl$ADD_SEALS" [ Value.Res_ref 0; Value.Int 0x409L; Value.Int 0x8L ];
        call target "mmap"
          [ Value.Vma 0x20000000L; Value.Int 4096L; Value.Int 1L; Value.Int 2L;
            Value.Res_ref 0; Value.Int 0L ];
      ]
  in
  Fmt.pr "Test case:@.%s@.@." (Prog.to_string p);
  let kernel = K.Kernel.boot ~version:K.Version.V5_11 () in
  let _, result = Exec.run kernel p in
  Array.iteri
    (fun idx (cr : Exec.call_result) ->
      Fmt.pr "  call %d (%s): ret=%Ld errno=%a coverage=%d blocks@." idx
        (Prog.call p idx).Prog.syscall.Healer_syzlang.Syscall.name cr.Exec.retval
        Fmt.(option ~none:(any "-") (of_to_string K.Errno.to_string))
        cr.Exec.errno (List.length cr.Exec.cov))
    result.Exec.calls;

  (* 2. Fuzz for one virtual hour with HEALER's full pipeline. *)
  Fmt.pr "@.Fuzzing Linux 5.11 (virtual 1h) with relation learning...@.";
  let cfg = Fuzzer.config ~seed:1 ~tool:Fuzzer.Healer ~version:K.Version.V5_11 () in
  let f = Fuzzer.create cfg in
  Fuzzer.run_until f 3600.0;
  Fmt.pr
    "  executions        %d@.  branch coverage   %d@.  corpus            %d \
     programs@.  learned relations %d@.  alpha             %.2f@.  unique \
     crashes    %d@."
    (Fuzzer.execs f) (Fuzzer.coverage f)
    (Corpus.size (Fuzzer.corpus f))
    (Fuzzer.relation_count f) (Fuzzer.alpha_value f)
    (Triage.unique_count (Fuzzer.triage f));
  List.iter
    (fun (r : Triage.record) ->
      Fmt.pr "    crash: %s (%s), reproducer %d calls@." r.Triage.bug_key
        (K.Risk.to_string r.Triage.risk)
        r.Triage.repro_len)
    (Triage.records (Fuzzer.triage f))
