(* Relation learning under the microscope.

   Fuzz for a few virtual hours and dissect the relation table: how
   much came from static learning, what dynamic learning added (the
   relations Syzlang cannot express, like fcntl$ADD_SEALS -> mmap), and
   which calls became the strongest influencers.

   Run with: dune exec examples/relation_explore.exe *)

module Target = Healer_syzlang.Target
module Syscall = Healer_syzlang.Syscall
module K = Healer_kernel
open Healer_core

let name_of target id = (Target.syscall target id).Syscall.name

let () =
  let target = K.Kernel.target () in
  let static = Static_learning.initial_table target in
  Fmt.pr "Static learning over the descriptions: %d relations@."
    (Relation_table.count static);

  let cfg = Fuzzer.config ~seed:4 ~tool:Fuzzer.Healer ~version:K.Version.V5_11 () in
  let f = Fuzzer.create cfg in
  Fuzzer.run_until f (4.0 *. 3600.0);
  let table = Option.get (Fuzzer.relations f) in
  Fmt.pr "After 4 virtual hours of fuzzing: %d relations (%d learned dynamically)@.@."
    (Relation_table.count table)
    (Relation_table.count table - Relation_table.count static);

  (* Dynamic-only edges: influence invisible to the type system. *)
  let dynamic_edges =
    List.filter
      (fun (a, b) -> not (Relation_table.get static a b))
      (Relation_table.edges table)
  in
  Fmt.pr "A few dynamically learned relations (state, not resource flow):@.";
  List.iteri
    (fun k (a, b) ->
      if k < 15 then Fmt.pr "  %-28s -> %s@." (name_of target a) (name_of target b))
    dynamic_edges;

  (* The paper's Figure 2 pair. *)
  let id n = (Target.find_exn target n).Syscall.id in
  Fmt.pr "@.Figure 2 check: fcntl$ADD_SEALS -> mmap learned? %b@."
    (Relation_table.get table (id "fcntl$ADD_SEALS") (id "mmap"));

  (* Strongest influencers. *)
  let by_degree =
    List.init (Target.n_syscalls target) (fun i -> (i, Relation_table.out_degree table i))
    |> List.filter (fun (_, d) -> d > 0)
    |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
  in
  Fmt.pr "@.Top influencer calls (out-degree):@.";
  List.iteri
    (fun k (i, d) ->
      if k < 10 then Fmt.pr "  %-32s %d@." (name_of target i) d)
    by_degree;
  Fmt.pr "@.Alpha converged to %.2f after %d executions.@." (Fuzzer.alpha_value f)
    (Fuzzer.execs f)
