(* Crash triage end to end: raw console log, symbolization, and
   reproducer minimization.

   A noisy 7-call program triggers the TCP disconnect bug; triage
   parses the sanitizer log back to a stable signature and shrinks the
   program to its 3-call core.

   Run with: dune exec examples/triage_demo.exe *)

module Target = Healer_syzlang.Target
module K = Healer_kernel
module Prog = Healer_executor.Prog
module Value = Healer_executor.Value
module Exec = Healer_executor.Exec
open Healer_core

let call target name args = { Prog.syscall = Target.find_exn target name; args }

let () =
  let target = K.Kernel.target () in
  let sockaddr = Value.Ptr (Value.Group [ Value.Int 2L; Value.Int 80L; Value.Int 1L ]) in
  let noisy =
    Prog.of_list
      [
        call target "open" [ Value.Str "/etc/passwd"; Value.Int 0L; Value.Int 0L ];
        call target "read" [ Value.Res_ref 0; Value.Buf (Bytes.make 16 '.'); Value.Int 16L ];
        call target "socket$tcp" [ Value.Int 2L; Value.Int 1L; Value.Int 6L ];
        call target "fsync" [ Value.Res_ref 0 ];
        call target "connect" [ Value.Res_ref 2; sockaddr ];
        call target "connect$unspec" [ Value.Res_ref 2; Value.Int 0L ];
        call target "close" [ Value.Res_ref 0 ];
      ]
  in
  Fmt.pr "Crashing test case (7 calls, 4 of them noise):@.%s@.@."
    (Prog.to_string noisy);

  let kernel = K.Kernel.boot ~version:K.Version.V5_11 () in
  let _, result = Exec.run kernel noisy in
  let report = Option.get result.Exec.crash in
  Fmt.pr "VM console output:@.%s@.@." report.K.Crash.log;

  (match K.Crash.symbolize report.K.Crash.log with
  | Some (key, risk) ->
    Fmt.pr "Symbolized: %s (%s)@.@." key (K.Risk.to_string risk)
  | None -> Fmt.pr "Symbolization failed!@.");

  let exec p =
    let kernel = K.Kernel.boot ~version:K.Version.V5_11 () in
    snd (Exec.run kernel p)
  in
  let triage = Triage.create ~exec in
  ignore (Triage.on_crash triage ~vtime:0.0 noisy report);
  match Triage.records triage with
  | [ record ] ->
    Fmt.pr "Minimized reproducer (%d calls):@.%s@." record.Triage.repro_len
      (Prog.to_string record.Triage.reproducer)
  | _ -> Fmt.pr "unexpected triage state@."
