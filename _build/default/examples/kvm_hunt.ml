(* Hunting the Listing-1 KVM bug (out-of-bounds in search_memslots).

   The paper's Section 3 motivation: triggering this bug needs the full
   openat$kvm -> KVM_CREATE_VM -> KVM_CREATE_VCPU ->
   KVM_SET_USER_MEMORY_REGION -> KVM_RUN chain with a discontiguous
   slot layout. We fuzz until HEALER finds it and show how the learned
   relations concentrate selection on the KVM chain.

   Run with: dune exec examples/kvm_hunt.exe *)

module Target = Healer_syzlang.Target
module Syscall = Healer_syzlang.Syscall
module K = Healer_kernel
module Prog = Healer_executor.Prog
open Healer_core

let is_kvm name =
  String.length name >= 4
  && (String.sub name 0 4 = "ioct" || String.length name >= 10)
  && Healer_kernel.Kernel.subsystem_of name = "kvm"

let kvm_subgraph target table =
  List.filter_map
    (fun (a, b) ->
      let na = (Target.syscall target a).Syscall.name in
      let nb = (Target.syscall target b).Syscall.name in
      if is_kvm na && is_kvm nb then Some (na, nb) else None)
    (Relation_table.edges table)

let () =
  let cfg = Fuzzer.config ~seed:11 ~tool:Fuzzer.Healer ~version:K.Version.V5_11 () in
  let f = Fuzzer.create cfg in
  let target = Fuzzer.target f in
  let deadline = 48.0 *. 3600.0 in
  let rec hunt () =
    if Fuzzer.now f >= deadline then None
    else begin
      Fuzzer.run_until f (Fuzzer.now f +. 600.0);
      match Triage.found (Fuzzer.triage f) "search_memslots" with
      | Some record -> Some record
      | None -> hunt ()
    end
  in
  Fmt.pr "Hunting 'out-of-bounds in search_memslots' (Listing 1)...@.";
  (match hunt () with
  | Some record ->
    Fmt.pr "Found after %.1f virtual hours and %d executions.@."
      (record.Triage.first_found /. 3600.0)
      (Fuzzer.execs f);
    Fmt.pr "@.Minimized reproducer (%d calls):@.%s@." record.Triage.repro_len
      (Prog.to_string record.Triage.reproducer)
  | None ->
    Fmt.pr "Not found within %.0f virtual hours (execs: %d).@." (deadline /. 3600.0)
      (Fuzzer.execs f));
  (match Fuzzer.relations f with
  | Some table ->
    let sub = kvm_subgraph target table in
    Fmt.pr "@.Learned KVM relation subgraph (%d edges), as in Figure 5:@."
      (List.length sub);
    List.iter (fun (a, b) -> Fmt.pr "  %s -> %s@." a b) sub
  | None -> ());
  Fmt.pr "@.Other crashes found along the way:@.";
  List.iter
    (fun (r : Triage.record) ->
      if r.Triage.bug_key <> "search_memslots" then
        Fmt.pr "  %-40s %s@." r.Triage.bug_key (K.Risk.to_string r.Triage.risk))
    (Triage.records (Fuzzer.triage f))
