(* Reproduction harness for every table and figure in the paper's
   evaluation (Section 6), plus micro-benchmarks and design ablations.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe fig4 table1     # selected sections

   Environment:
     HEALER_BENCH_ROUNDS  rounds per experiment (default 5; paper: 10)
     HEALER_BENCH_HOURS   virtual hours per campaign (default 24)
     HEALER_BENCH_EXT     virtual hours of the extended per-version
                          campaign behind Table 5 (default 96)

   Absolute numbers differ from the paper (the kernel is a simulator on
   a virtual clock); the comparisons are the reproduction target. *)

module Target = Healer_syzlang.Target
module Syscall = Healer_syzlang.Syscall
module K = Healer_kernel
open Healer_core

let env_int name default =
  match Sys.getenv_opt name with Some s -> int_of_string s | None -> default

let env_float name default =
  match Sys.getenv_opt name with Some s -> float_of_string s | None -> default

let rounds = env_int "HEALER_BENCH_ROUNDS" 5
let hours = env_float "HEALER_BENCH_HOURS" 24.0
let ext_hours = env_float "HEALER_BENCH_EXT" 96.0

let versions = K.Version.evaluated
let tools = Fuzzer.all_tools

let section name =
  Fmt.pr "@.=====================================================@.";
  Fmt.pr "  %s@." name;
  Fmt.pr "=====================================================@."

(* ---- memoized campaign matrix ---- *)

let cache : (string, Campaign.run) Hashtbl.t = Hashtbl.create 64

let key tool version seed h =
  Printf.sprintf "%s/%s/%d/%.1f" (Fuzzer.tool_name tool)
    (K.Version.to_string version) seed h

let campaign ?(h = hours) tool version seed =
  let k = key tool version seed h in
  match Hashtbl.find_opt cache k with
  | Some r -> r
  | None ->
    let r = Campaign.run_one ~hours:h ~seed ~tool ~version () in
    Hashtbl.replace cache k r;
    r

let runs_of ?(h = hours) tool version =
  List.init rounds (fun i -> campaign ~h tool version (i + 1))

(* ---- Figure 4: coverage growth over 24 hours ---- *)

let fig4 () =
  section "Figure 4: branch coverage growth over the campaign";
  List.iter
    (fun version ->
      Fmt.pr "@.Linux %s (avg of %d rounds)@." (K.Version.to_string version) rounds;
      Fmt.pr "  %6s %10s %10s %10s@." "hour" "healer" "syzkaller" "moonshine";
      let series tool = Campaign.average_series (runs_of tool version) in
      let h_series = series Fuzzer.Healer in
      let s_series = series Fuzzer.Syzkaller in
      let m_series = series Fuzzer.Moonshine in
      let at series t =
        let rec go acc = function
          | [] -> acc
          | (t', v) :: rest -> if t' <= t then go v rest else acc
        in
        go 0.0 series
      in
      let steps = int_of_float (hours /. 2.0) in
      for step = 1 to steps do
        let t = float_of_int step *. 2.0 *. 3600.0 in
        Fmt.pr "  %6.0f %10.0f %10.0f %10.0f@." (t /. 3600.0) (at h_series t)
          (at s_series t) (at m_series t)
      done;
      let arr series = Array.of_list (List.map snd series) in
      Fmt.pr "@.%s@."
        (Healer_util.Asciichart.render
           ~series:
             [ ("healer", arr h_series); ("syzkaller", arr s_series);
               ("moonshine", arr m_series) ]
           ()))
    versions

(* ---- Tables 1 and 2: improvement + speedup ---- *)

let comparison_row version ~subject ~base =
  let pairs =
    List.init rounds (fun i ->
        let seed = i + 1 in
        (campaign base version seed, campaign subject version seed))
  in
  let imprs = List.map (fun (b, s) -> Campaign.improvement_pct ~base:b s) pairs in
  let speedups = List.filter_map (fun (b, s) -> Campaign.speedup ~base:b s) pairs in
  (imprs, speedups)

let print_comparison title ~subject ~base =
  Fmt.pr "@.%s@." title;
  Fmt.pr "  %-8s %9s %9s %9s %9s@." "Version" "min-impr" "max-impr" "Average"
    "Speed-up";
  let all_imprs = ref [] and all_speedups = ref [] in
  List.iter
    (fun version ->
      let imprs, speedups = comparison_row version ~subject ~base in
      all_imprs := imprs @ !all_imprs;
      all_speedups := speedups @ !all_speedups;
      Fmt.pr "  %-8s %+8.0f%% %+8.0f%% %+8.0f%% %8s@."
        (K.Version.to_string version)
        (Healer_util.Statx.minimum imprs)
        (Healer_util.Statx.maximum imprs)
        (Healer_util.Statx.mean imprs)
        (if speedups = [] then "n/a"
         else Printf.sprintf "+%.1fx" (Healer_util.Statx.mean speedups)))
    versions;
  Fmt.pr "  %-8s %+8.0f%% %+8.0f%% %+8.0f%% %8s@." "Overall"
    (Healer_util.Statx.minimum !all_imprs)
    (Healer_util.Statx.maximum !all_imprs)
    (Healer_util.Statx.mean !all_imprs)
    (if !all_speedups = [] then "n/a"
     else Printf.sprintf "+%.1fx" (Healer_util.Statx.mean !all_speedups))

let table1 () =
  section "Table 1: branch coverage of HEALER vs Syzkaller / Moonshine";
  print_comparison "(a) HEALER vs. Syzkaller" ~subject:Fuzzer.Healer
    ~base:Fuzzer.Syzkaller;
  print_comparison "(b) HEALER vs. Moonshine" ~subject:Fuzzer.Healer
    ~base:Fuzzer.Moonshine

let table2 () =
  section "Table 2: HEALER vs HEALER- (relation learning ablation)";
  print_comparison "HEALER vs. HEALER-" ~subject:Fuzzer.Healer
    ~base:Fuzzer.Healer_minus

(* ---- Table 3: learned relation counts ---- *)

let table3 () =
  section "Table 3: HEALER's learned relations count";
  Fmt.pr "  %-8s %8s %8s %8s@." "Version" "Min" "Max" "Average";
  let overall = ref [] in
  List.iter
    (fun version ->
      let counts =
        List.map
          (fun (r : Campaign.run) -> float_of_int r.Campaign.relations)
          (runs_of Fuzzer.Healer version)
      in
      overall := counts @ !overall;
      Fmt.pr "  %-8s %8.0f %8.0f %8.0f@." (K.Version.to_string version)
        (Healer_util.Statx.minimum counts)
        (Healer_util.Statx.maximum counts)
        (Healer_util.Statx.mean counts))
    versions;
  Fmt.pr "  %-8s %8.0f %8.0f %8.0f@." "Overall"
    (Healer_util.Statx.minimum !overall)
    (Healer_util.Statx.maximum !overall)
    (Healer_util.Statx.mean !overall)

(* ---- Figure 5: relation graph evolution over the first 3 hours ---- *)

let fig5 () =
  section "Figure 5: evolution of the learned relations (first 3 hours)";
  let run = campaign Fuzzer.Healer K.Version.V5_11 1 in
  let target = K.Kernel.target () in
  let static = Static_learning.initial_table target in
  List.iter
    (fun (t, edges) ->
      let nodes =
        List.sort_uniq Int.compare (List.concat_map (fun (a, b) -> [ a; b ]) edges)
      in
      let dynamic =
        List.filter (fun (a, b) -> not (Relation_table.get static a b)) edges
      in
      let kvm_edges =
        List.filter
          (fun (a, b) ->
            K.Kernel.subsystem_of (Target.syscall target a).Syscall.name = "kvm"
            && K.Kernel.subsystem_of (Target.syscall target b).Syscall.name = "kvm")
          edges
      in
      Fmt.pr "@.t = %.0fh: %d relations, %d calls involved, %d learned dynamically@."
        (t /. 3600.0) (List.length edges) (List.length nodes) (List.length dynamic);
      Fmt.pr "  KVM subgraph (%d edges):@." (List.length kvm_edges);
      List.iter
        (fun (a, b) ->
          Fmt.pr "    %-34s -> %s@."
            (Target.syscall target a).Syscall.name
            (Target.syscall target b).Syscall.name)
        kvm_edges)
    run.Campaign.relation_snapshots

(* ---- Figure 6: minimized sequence length distribution ---- *)

let fig6 () =
  section "Figure 6: distribution of minimized sequence lengths in the corpus";
  let hist lengths =
    let total = max 1 (List.length lengths) in
    let bucket pred = float_of_int (List.length (List.filter pred lengths))
                      /. float_of_int total in
    [ bucket (fun l -> l = 1); bucket (fun l -> l = 2); bucket (fun l -> l = 3);
      bucket (fun l -> l = 4); bucket (fun l -> l >= 5) ]
  in
  Fmt.pr "  %-10s %8s | %6s %6s %6s %6s %6s | %7s %7s@." "tool" "corpus" "len1"
    "len2" "len3" "len4" "len5+" ">=3" ">=5";
  List.iter
    (fun tool ->
      let runs = List.concat_map (fun v -> runs_of tool v) versions in
      let lengths = List.concat_map (fun (r : Campaign.run) -> r.Campaign.corpus_lengths) runs in
      let sizes =
        Healer_util.Statx.mean
          (List.map (fun (r : Campaign.run) -> float_of_int r.Campaign.corpus_size) runs)
      in
      let h = hist lengths in
      let frac pred =
        float_of_int (List.length (List.filter pred lengths))
        /. float_of_int (max 1 (List.length lengths))
      in
      Fmt.pr "  %-10s %8.0f | %6.2f %6.2f %6.2f %6.2f %6.2f | %6.0f%% %6.0f%%@."
        (Fuzzer.tool_name tool) sizes (List.nth h 0) (List.nth h 1) (List.nth h 2)
        (List.nth h 3) (List.nth h 4)
        (100.0 *. frac (fun l -> l >= 3))
        (100.0 *. frac (fun l -> l >= 5)))
    tools

(* ---- Table 4 + Section 6.3: 24h bug detection ---- *)

let found_keys tool =
  List.concat_map
    (fun version ->
      List.concat_map
        (fun (r : Campaign.run) ->
          List.map (fun (c : Triage.record) -> c.Triage.bug_key) r.Campaign.crashes)
        (runs_of tool version))
    versions
  |> List.sort_uniq String.compare

let known_only keys =
  List.filter
    (fun k -> match K.Bug.find k with Some b -> b.K.Bug.known | None -> false)
    keys

let table4 () =
  section "Table 4 / Section 6.3: vulnerabilities in the 24h experiments";
  let per_tool = List.map (fun tool -> (tool, found_keys tool)) tools in
  Fmt.pr "@.Previously-known vulnerabilities found (paper: HEALER 32, Moonshine 20, Syzkaller 17, HEALER- 10):@.";
  List.iter
    (fun (tool, keys) ->
      Fmt.pr "  %-10s %d known (+%d previously unknown)@." (Fuzzer.tool_name tool)
        (List.length (known_only keys))
        (List.length keys - List.length (known_only keys)))
    per_tool;
  let healer_keys = List.assoc Fuzzer.Healer per_tool in
  let others =
    List.concat_map
      (fun tool -> if tool = Fuzzer.Healer then [] else List.assoc tool per_tool)
      tools
    |> List.sort_uniq String.compare
  in
  let missed_by_healer = List.filter (fun k -> not (List.mem k healer_keys)) others in
  Fmt.pr "@.Bugs found by baselines but not HEALER (paper: 3, all needing USB emulation):@.";
  List.iter
    (fun k ->
      let req =
        match K.Bug.find k with
        | Some { K.Bug.requires = Some f; _ } -> " [requires executor feature: " ^ f ^ "]"
        | _ -> ""
      in
      Fmt.pr "  %s%s@." k req)
    missed_by_healer;
  (* The Table 4 body: previously-known bugs only HEALER found, with
     the measured reproducer length. *)
  let healer_only =
    List.filter (fun k -> not (List.mem k others)) (known_only healer_keys)
  in
  Fmt.pr "@.Previously-known bugs found only by HEALER (paper's Table 4):@.";
  Fmt.pr "  %-48s %-8s %s@." "Vulnerability" "Version" "Length";
  List.iter
    (fun k ->
      let b = K.Bug.find_exn k in
      let lengths =
        List.concat_map
          (fun version ->
            List.filter_map
              (fun (r : Campaign.run) ->
                List.find_map
                  (fun (c : Triage.record) ->
                    if c.Triage.bug_key = k then Some c.Triage.repro_len else None)
                  r.Campaign.crashes)
              (runs_of Fuzzer.Healer version))
          versions
      in
      let length = match lengths with [] -> 0 | l -> List.fold_left min 99 l in
      Fmt.pr "  %-48s %-8s %d@." b.K.Bug.title
        (K.Version.to_string b.K.Bug.since)
        length)
    healer_only

(* ---- Table 5: the extended multi-version campaign ---- *)

let table5 () =
  section "Table 5: previously unknown vulnerabilities (extended campaign)";
  Fmt.pr "  (HEALER on every kernel version, %.0f virtual hours each)@.@."
    ext_hours;
  let ext_rounds = max 1 (rounds / 2) in
  let found =
    List.concat_map
      (fun version ->
        List.concat_map
          (fun seed ->
            let run = campaign ~h:ext_hours Fuzzer.Healer version seed in
            List.map (fun (c : Triage.record) -> c.Triage.bug_key) run.Campaign.crashes)
          (List.init ext_rounds (fun i -> i + 1)))
      K.Version.all
    |> List.sort_uniq String.compare
  in
  let unknown = K.Bug.unknown_bugs () in
  let hit = List.filter (fun (b : K.Bug.t) -> List.mem b.K.Bug.key found) unknown in
  Fmt.pr "  found %d of the %d previously-unknown vulnerabilities:@.@."
    (List.length hit) (List.length unknown);
  Fmt.pr "  %-10s %-58s %-26s %s@." "Subsystem" "Operations" "Risk" "Version";
  List.iter
    (fun (b : K.Bug.t) ->
      let mark = if List.mem b.K.Bug.key found then " " else "*" in
      Fmt.pr "  %-10s %-58s %-26s %-5s %s@." b.K.Bug.subsystem b.K.Bug.operations
        (K.Risk.to_string b.K.Bug.risk)
        (K.Version.to_string b.K.Bug.since)
        mark)
    unknown;
  Fmt.pr "@.  (* = not reproduced in this run)@.";
  (* Risk-class profile, Section 6.3. *)
  let risks = List.map (fun (b : K.Bug.t) -> b.K.Bug.risk) hit in
  let frac pred =
    100.0
    *. float_of_int (List.length (List.filter pred risks))
    /. float_of_int (max 1 (List.length risks))
  in
  Fmt.pr "@.  risk profile of found bugs: %.1f%% memory errors, %.1f%% concurrency, %.1f%% other@."
    (frac K.Risk.is_memory_error)
    (frac K.Risk.is_concurrency)
    (frac (fun r -> not (K.Risk.is_memory_error r || K.Risk.is_concurrency r)))

(* ---- ablations over the design decisions (DESIGN.md section 4) ---- *)

let ablation () =
  section "Ablations: alpha policy, static/dynamic learning";
  let run name cfg =
    let f = Fuzzer.create cfg in
    Fuzzer.run_until f (hours *. 3600.0);
    Fmt.pr "  %-34s coverage=%5d relations=%4d alpha=%.2f@." name
      (Fuzzer.coverage f) (Fuzzer.relation_count f) (Fuzzer.alpha_value f)
  in
  let base ?fixed_alpha ?(static = true) ?(dynamic = true) () =
    Fuzzer.config ~seed:1 ?fixed_alpha ~use_static_learning:static
      ~use_dynamic_learning:dynamic ~tool:Fuzzer.Healer ~version:K.Version.V5_11
      ()
  in
  run "adaptive alpha (paper)" (base ());
  List.iter
    (fun a -> run (Printf.sprintf "fixed alpha = %.1f" a) (base ~fixed_alpha:a ()))
    [ 0.0; 0.2; 0.5; 0.8; 1.0 ];
  run "no static learning" (base ~static:false ());
  run "no dynamic learning" (base ~dynamic:false ());
  run "no learning at all" (base ~static:false ~dynamic:false ())

(* ---- micro-benchmarks (bechamel) ---- *)

let micro () =
  section "Micro-benchmarks (bechamel)";
  let open Bechamel in
  let target = K.Kernel.target () in
  let kernel = K.Kernel.boot ~version:K.Version.V5_11 () in
  let rng = Healer_util.Rng.create 1 in
  let table = Static_learning.initial_table target in
  let sample_prog =
    Gen.generate rng target
      ~select:(fun ~sub:_ -> Healer_util.Rng.int rng (Target.n_syscalls target))
      ()
  in
  let encoded = Healer_executor.Serializer.encode sample_prog in
  let choice = Choice_table.create target in
  let tests =
    [
      Test.make ~name:"exec program"
        (Staged.stage (fun () ->
             ignore (Healer_executor.Exec.run kernel sample_prog)));
      Test.make ~name:"serializer encode"
        (Staged.stage (fun () -> ignore (Healer_executor.Serializer.encode sample_prog)));
      Test.make ~name:"serializer decode"
        (Staged.stage (fun () ->
             ignore (Healer_executor.Serializer.decode target encoded)));
      Test.make ~name:"algorithm3 select"
        (Staged.stage (fun () ->
             ignore (Select.select rng table ~alpha:0.8 ~sub:[ 1; 2; 3; 4 ])));
      Test.make ~name:"choice table select"
        (Staged.stage (fun () ->
             ignore (Choice_table.select rng choice ~bias:(Some 3))));
      Test.make ~name:"generate test case"
        (Staged.stage (fun () ->
             ignore
               (Gen.generate rng target
                  ~select:(fun ~sub:_ -> Healer_util.Rng.int rng (Target.n_syscalls target))
                  ())));
      Test.make ~name:"relation table set/get"
        (Staged.stage (fun () ->
             let t = Relation_table.create 64 in
             for i = 0 to 63 do
               ignore (Relation_table.set t i ((i + 7) mod 64))
             done));
    ]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  Fmt.pr "  %-26s %14s@." "benchmark" "ns/run";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg instances elt in
          let result = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Fmt.pr "  %-26s %14.0f@." (Test.Elt.name elt) est
          | _ -> Fmt.pr "  %-26s %14s@." (Test.Elt.name elt) "n/a")
        (Test.elements test))
    tests

(* ---- main ---- *)

let sections =
  [
    ("fig4", fig4); ("table1", table1); ("table2", table2); ("table3", table3);
    ("fig5", fig5); ("fig6", fig6); ("table4", table4); ("table5", table5);
    ("ablation", ablation); ("micro", micro);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst sections
  in
  Fmt.pr "HEALER reproduction benches: rounds=%d, %.0f virtual hours per campaign@."
    rounds hours;
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
        Fmt.epr "unknown section %s (available: %s)@." name
          (String.concat ", " (List.map fst sections)))
    requested
