(* KVM chain semantics (the paper's Section 3 deep-state example) and
   the TTY/console state machine. *)

module K = Healer_kernel
module Exec = Healer_executor.Exec
open Helpers

let kvm_prefix =
  [
    call "openat$kvm" [ i (-100L); s "/dev/kvm"; i 0L ];
    call "ioctl$KVM_CREATE_VM" [ r 0; i 0xae01L ];
  ]

let region ~slot ~gpa ~size =
  group [ iv slot; i 0L; i gpa; i size; vma ]

let test_kvm_wrong_path () =
  let r = run (prog [ call "openat$kvm" [ i (-100L); s "/dev/null"; i 0L ] ]) in
  check_errno "wrong device path" (Some K.Errno.ENOENT) r.Exec.calls.(0)

let test_kvm_chain_stagewise () =
  (* Every stage needs the previous stage's resource: the structure
     that makes random sequences exit early (Section 3). *)
  let r =
    run
      (prog
         (kvm_prefix
         @ [
             call "ioctl$KVM_CREATE_VCPU" [ r 0; i 0xae41L; i 0L ]; (* on sys fd *)
             call "ioctl$KVM_CREATE_VCPU" [ r 1; i 0xae41L; i 0L ];
             call "ioctl$KVM_RUN" [ r 1; i 0xae80L ]; (* on vm fd *)
             call "ioctl$KVM_RUN" [ r 3; i 0xae80L ];
           ]))
  in
  check_errno "vcpu on sys fd" (Some K.Errno.EINVAL) r.Exec.calls.(2);
  check_ok "vcpu on vm fd" r.Exec.calls.(3);
  check_errno "run on vm fd" (Some K.Errno.EINVAL) r.Exec.calls.(4);
  (* RUN with no memory exits early. *)
  check_errno "run without memslots" (Some K.Errno.EFAULT) r.Exec.calls.(5)

let test_kvm_run_with_memory () =
  let r =
    run
      (prog
         (kvm_prefix
         @ [
             call "ioctl$KVM_CREATE_VCPU" [ r 1; i 0xae41L; i 0L ];
             call "ioctl$KVM_SET_USER_MEMORY_REGION"
               [ r 1; i 0x4020ae46L; region ~slot:0 ~gpa:0L ~size:0x10000L ];
             call "ioctl$KVM_RUN" [ r 2; i 0xae80L ];
           ]))
  in
  check_ok "run with a slot at gpa 0" r.Exec.calls.(4)

let test_kvm_memslot_delete () =
  let r =
    run
      (prog
         (kvm_prefix
         @ [
             call "ioctl$KVM_CREATE_VCPU" [ r 1; i 0xae41L; i 0L ];
             call "ioctl$KVM_SET_USER_MEMORY_REGION"
               [ r 1; i 0x4020ae46L; region ~slot:0 ~gpa:0L ~size:0x10000L ];
             call "ioctl$KVM_SET_USER_MEMORY_REGION"
               [ r 1; i 0x4020ae46L; region ~slot:0 ~gpa:0L ~size:0L ];
             call "ioctl$KVM_RUN" [ r 2; i 0xae80L ];
           ]))
  in
  check_ok "size 0 deletes" r.Exec.calls.(4);
  check_errno "run after slot deleted" (Some K.Errno.EFAULT) r.Exec.calls.(5)

let test_kvm_vcpu_limits () =
  let mk_vcpu id = call "ioctl$KVM_CREATE_VCPU" [ r 1; i 0xae41L; iv id ] in
  let r =
    run (prog (kvm_prefix @ [ mk_vcpu 9; mk_vcpu 0; mk_vcpu 1; mk_vcpu 2; mk_vcpu 3; mk_vcpu 4 ]))
  in
  check_errno "id out of range" (Some K.Errno.EINVAL) r.Exec.calls.(2);
  check_ok "vcpu 0" r.Exec.calls.(3);
  check_errno "too many vcpus" (Some K.Errno.ENOMEM) r.Exec.calls.(7)

let test_kvm_irqchip () =
  let r =
    run
      (prog
         (kvm_prefix
         @ [
             call "ioctl$KVM_IRQ_LINE" [ r 1; i 0x4008ae61L; group [ i 3L; i 1L ] ];
             call "ioctl$KVM_CREATE_IRQCHIP" [ r 1; i 0xae60L ];
             call "ioctl$KVM_CREATE_IRQCHIP" [ r 1; i 0xae60L ];
             call "ioctl$KVM_IRQ_LINE" [ r 1; i 0x4008ae61L; group [ i 3L; i 1L ] ];
           ]))
  in
  check_errno "irq without chip" (Some K.Errno.ENXIO) r.Exec.calls.(2);
  check_ok "create chip" r.Exec.calls.(3);
  check_errno "second chip" (Some K.Errno.EEXIST) r.Exec.calls.(4);
  check_ok "irq line" r.Exec.calls.(5)

let test_kvm_run_covers_assembled_state () =
  (* The same RUN covers different branches depending on the assembled
     VM configuration — what makes the chain worth learning. *)
  let bare =
    prog
      (kvm_prefix
      @ [
          call "ioctl$KVM_CREATE_VCPU" [ r 1; i 0xae41L; i 0L ];
          call "ioctl$KVM_SET_USER_MEMORY_REGION"
            [ r 1; i 0x4020ae46L; region ~slot:0 ~gpa:0L ~size:0x10000L ];
          call "ioctl$KVM_RUN" [ r 2; i 0xae80L ];
        ])
  in
  let configured =
    prog
      (kvm_prefix
      @ [
          call "ioctl$KVM_CREATE_VCPU" [ r 1; i 0xae41L; i 0L ];
          call "ioctl$KVM_SET_USER_MEMORY_REGION"
            [ r 1; i 0x4020ae46L; region ~slot:0 ~gpa:0L ~size:0x10000L ];
          call "ioctl$KVM_CREATE_IRQCHIP" [ r 1; i 0xae60L ];
          call "ioctl$KVM_SMI" [ r 2; i 0xaeb7L ];
          call "ioctl$KVM_RUN" [ r 2; i 0xae80L ];
        ])
  in
  let a = run bare and b = run configured in
  check_ok "bare run" a.Exec.calls.(4);
  check_ok "configured run" b.Exec.calls.(6);
  Alcotest.(check bool) "distinct run paths" false
    (Exec.cov_equal a.Exec.calls.(4).Exec.cov b.Exec.calls.(6).Exec.cov)

(* ---- TTY ---- *)

let test_tty_ldisc_roundtrip () =
  let r =
    run
      (prog
         [
           call "openat$ptmx" [ i (-100L); s "/dev/ptmx"; i 0L ];
           call "ioctl$TIOCGETD" [ r 0; i 0x5424L; group [ i 0L ] ];
           call "ioctl$TIOCSETD" [ r 0; i 0x5423L; ptr (i 2L) ];
           call "ioctl$TIOCGETD" [ r 0; i 0x5424L; group [ i 0L ] ];
           call "ioctl$TIOCSETD" [ r 0; i 0x5423L; ptr (i 99L) ];
         ])
  in
  Alcotest.(check int64) "default N_TTY" 0L r.Exec.calls.(1).Exec.retval;
  Alcotest.(check int64) "after set" 2L r.Exec.calls.(3).Exec.retval;
  check_errno "out of range" (Some K.Errno.EINVAL) r.Exec.calls.(4)

let test_gsm_config_needs_ldisc () =
  let r =
    run
      (prog
         [
           call "openat$ptmx" [ i (-100L); s "/dev/ptmx"; i 0L ];
           call "ioctl$GSMIOC_SETCONF" [ r 0; i 0x40204701L; group [ i 1L; i 0L; iv 64; iv 64 ] ];
           call "ioctl$TIOCSETD" [ r 0; i 0x5423L; ptr (i 21L) ];
           call "ioctl$GSMIOC_SETCONF" [ r 0; i 0x40204701L; group [ i 1L; i 0L; iv 64; iv 64 ] ];
         ])
  in
  check_errno "config before N_GSM" (Some K.Errno.EOPNOTSUPP) r.Exec.calls.(1);
  check_ok "config after N_GSM" r.Exec.calls.(3)

let test_ptmx_gsm_write_gate () =
  let r =
    run
      (prog
         [
           call "openat$ptmx" [ i (-100L); s "/dev/ptmx"; i 0L ];
           call "ioctl$TIOCSETD" [ r 0; i 0x5423L; ptr (i 21L) ];
           call "write" [ r 0; buf 8; iv 8 ];
           call "ioctl$GSMIOC_SETCONF" [ r 0; i 0x40204701L; group [ i 1L; i 0L; iv 64; iv 64 ] ];
           call "write" [ r 0; buf 8; iv 8 ];
         ])
  in
  check_errno "write before mux config" (Some K.Errno.EAGAIN) r.Exec.calls.(2);
  check_ok "write after config" r.Exec.calls.(4)

let test_tiocsti_feeds_read () =
  let r =
    run
      (prog
         [
           call "openat$ptmx" [ i (-100L); s "/dev/ptmx"; i 0L ];
           call "read" [ r 0; buf 8; iv 8 ];
           call "ioctl$TIOCSTI" [ r 0; i 0x5412L; ptr (i 65L) ];
           call "read" [ r 0; buf 8; iv 8 ];
         ])
  in
  check_errno "nothing to read" (Some K.Errno.EAGAIN) r.Exec.calls.(1);
  Alcotest.(check int64) "injected byte readable" 1L r.Exec.calls.(3).Exec.retval

let test_vcs_screen_window () =
  let r =
    run
      (prog
         [
           call "openat$vcs" [ i (-100L); s "/dev/vcs"; i 0L ];
           call "read" [ r 0; buf 16; iv 16 ];
           call "ioctl$VT_ACTIVATE" [ r 0; i 0x5606L; i 3L ];
           call "read" [ r 0; buf 16; iv 16 ];
           call "ioctl$VT_ACTIVATE" [ r 0; i 0x5606L; iv 99 ];
         ])
  in
  Alcotest.(check int64) "screen read" 16L r.Exec.calls.(1).Exec.retval;
  check_ok "vt switch" r.Exec.calls.(2);
  check_ok "read after switch" r.Exec.calls.(3);
  check_errno "bad vt" (Some K.Errno.ENXIO) r.Exec.calls.(4)

let test_vt_disallocate_blocks_writes () =
  let r =
    run
      (prog
         [
           call "openat$vcs" [ i (-100L); s "/dev/vcs"; i 0L ];
           call "ioctl$VT_DISALLOCATE" [ r 0; i 0x5608L; i 1L ];
           call "write" [ r 0; buf 8; iv 8 ];
         ])
  in
  check_errno "write to freed console" (Some K.Errno.ENXIO) r.Exec.calls.(2)

let test_syslog_counters () =
  let r =
    run
      (prog
         [
           call "openat$ptmx" [ i (-100L); s "/dev/ptmx"; i 0L ];
           call "write" [ r 0; buf 4; iv 4 ];
           call "write" [ r 0; buf 4; iv 4 ];
           call "syslog" [ i 9L; buf 0; iv 0 ];
           call "syslog" [ i 5L; buf 0; iv 0 ];
           call "syslog" [ i 9L; buf 0; iv 0 ];
           call "syslog" [ iv 99; buf 0; iv 0 ];
         ])
  in
  Alcotest.(check int64) "unread count" 2L r.Exec.calls.(3).Exec.retval;
  check_ok "clear" r.Exec.calls.(4);
  Alcotest.(check int64) "cleared" 0L r.Exec.calls.(5).Exec.retval;
  check_errno "bad action" (Some K.Errno.EINVAL) r.Exec.calls.(6)

let test_tty_ioctl_on_non_tty () =
  let r =
    run
      (prog
         [
           call "open" [ s "/etc/passwd"; i 0L; i 0L ];
           call "ioctl$TIOCSETD" [ r 0; i 0x5423L; ptr (i 0L) ];
         ])
  in
  check_errno "ENOTTY" (Some K.Errno.ENOTTY) r.Exec.calls.(1)

let suite =
  [
    case "kvm wrong path" test_kvm_wrong_path;
    case "kvm chain stagewise" test_kvm_chain_stagewise;
    case "kvm run with memory" test_kvm_run_with_memory;
    case "kvm memslot delete" test_kvm_memslot_delete;
    case "kvm vcpu limits" test_kvm_vcpu_limits;
    case "kvm irqchip" test_kvm_irqchip;
    case "kvm run covers assembled state" test_kvm_run_covers_assembled_state;
    case "tty ldisc roundtrip" test_tty_ldisc_roundtrip;
    case "gsm config needs ldisc" test_gsm_config_needs_ldisc;
    case "ptmx gsm write gate" test_ptmx_gsm_write_gate;
    case "TIOCSTI feeds read" test_tiocsti_feeds_read;
    case "vcs screen window" test_vcs_screen_window;
    case "vt disallocate blocks writes" test_vt_disallocate_blocks_writes;
    case "syslog counters" test_syslog_counters;
    case "tty ioctl on non-tty" test_tty_ioctl_on_non_tty;
  ]
