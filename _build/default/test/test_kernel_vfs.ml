(* VFS/memfd state-machine semantics: open modes, offsets, links,
   epoll membership, AIO lifecycle, sealing. *)

module K = Healer_kernel
module Exec = Healer_executor.Exec
open Helpers

let test_open_missing_enoent () =
  let r = run (prog [ call "open" [ s "/tmp/nope"; i 0L; i 0L ] ]) in
  check_errno "missing file" (Some K.Errno.ENOENT) r.Exec.calls.(0)

let test_open_creat_then_reopen () =
  let r =
    run
      (prog
         [
           call "open" [ s "/tmp/f1"; i 0x40L; i 0x1ffL ];
           call "open" [ s "/tmp/f1"; i 0L; i 0L ];
         ])
  in
  check_ok "create" r.Exec.calls.(0);
  check_ok "reopen without O_CREAT" r.Exec.calls.(1)

let test_open_null_path () =
  let r = run (prog [ call "open" [ Value.Str ""; i 0x40L; i 0L ] ]) in
  check_errno "empty path faults" (Some K.Errno.EFAULT) r.Exec.calls.(0)

let test_write_grows_read_back () =
  let r =
    run
      (prog
         [
           call "open" [ s "/tmp/f1"; i 0x40L; i 0x1ffL ];
           call "write" [ r 0; buf 100; iv 100 ];
           call "lseek" [ r 0; i 0L; i 0L ];
           call "read" [ r 0; buf 100; iv 100 ];
         ])
  in
  Alcotest.(check int64) "write count" 100L r.Exec.calls.(1).Exec.retval;
  Alcotest.(check int64) "read sees the data" 100L r.Exec.calls.(3).Exec.retval

let test_read_at_eof () =
  let r =
    run
      (prog
         [
           call "open" [ s "/tmp/f1"; i 0x40L; i 0x1ffL ];
           call "read" [ r 0; buf 10; iv 10 ];
         ])
  in
  Alcotest.(check int64) "empty file reads 0" 0L r.Exec.calls.(1).Exec.retval

let test_trunc_flag_resets_size () =
  let r =
    run
      (prog
         [
           call "open" [ s "/tmp/f1"; i 0x40L; i 0x1ffL ];
           call "write" [ r 0; buf 50; iv 50 ];
           call "open" [ s "/tmp/f1"; i 0x240L; i 0L ]; (* O_CREAT|O_TRUNC *)
           call "read" [ r 2; buf 50; iv 50 ];
         ])
  in
  Alcotest.(check int64) "truncated on open" 0L r.Exec.calls.(3).Exec.retval

let test_lseek_whence () =
  let r =
    run
      (prog
         [
           call "open" [ s "/etc/passwd"; i 0L; i 0L ];
           call "lseek" [ r 0; iv 10; i 0L ]; (* SET *)
           call "lseek" [ r 0; iv 10; i 1L ]; (* CUR *)
           call "lseek" [ r 0; i 0L; i 2L ]; (* END *)
           call "lseek" [ r 0; iv (-1); i 0L ];
         ])
  in
  Alcotest.(check int64) "SET" 10L r.Exec.calls.(1).Exec.retval;
  Alcotest.(check int64) "CUR accumulates" 20L r.Exec.calls.(2).Exec.retval;
  Alcotest.(check int64) "END is size" 2048L r.Exec.calls.(3).Exec.retval;
  check_errno "negative dest" (Some K.Errno.EINVAL) r.Exec.calls.(4)

let test_close_then_use () =
  let r =
    run
      (prog
         [
           call "open" [ s "/etc/passwd"; i 0L; i 0L ];
           call "close" [ r 0 ];
           call "read" [ r 0; buf 10; iv 10 ];
           call "close" [ r 0 ];
         ])
  in
  check_ok "close" r.Exec.calls.(1);
  check_errno "read after close" (Some K.Errno.EBADF) r.Exec.calls.(2);
  check_errno "double close" (Some K.Errno.EBADF) r.Exec.calls.(3)

let test_dup_shares_object () =
  let r =
    run
      (prog
         [
           call "open" [ s "/etc/passwd"; i 0L; i 0L ];
           call "dup" [ r 0 ];
           call "lseek" [ r 0; iv 100; i 0L ];
           call "read" [ r 1; buf 2048; iv 2048 ];
         ])
  in
  check_ok "dup" r.Exec.calls.(1);
  (* The duplicate shares the offset moved through the original. *)
  Alcotest.(check int64) "shared offset" 1948L r.Exec.calls.(3).Exec.retval

let test_dup_keeps_object_alive () =
  let r =
    run
      (prog
         [
           call "open" [ s "/etc/passwd"; i 0L; i 0L ];
           call "dup" [ r 0 ];
           call "close" [ r 0 ];
           call "read" [ r 1; buf 10; iv 10 ];
         ])
  in
  check_ok "alias still readable" r.Exec.calls.(3)

let test_link_unlink_lifecycle () =
  let r =
    run
      (prog
         [
           call "open" [ s "/tmp/f1"; i 0x40L; i 0x1ffL ];
           call "link" [ s "/tmp/f1"; s "/tmp/l0" ];
           call "link" [ s "/tmp/f1"; s "/tmp/f1" ];
           call "unlink" [ s "/tmp/f1" ];
           call "unlink" [ s "/tmp/f1" ];
         ])
  in
  check_ok "link" r.Exec.calls.(1);
  check_errno "self link" (Some K.Errno.EEXIST) r.Exec.calls.(2);
  check_ok "first unlink (nlink 2->1)" r.Exec.calls.(3);
  check_ok "second unlink removes" r.Exec.calls.(4)

let test_epoll_membership () =
  let r =
    run
      (prog
         [
           call "epoll_create" [ iv 4 ];
           call "open" [ s "/etc/passwd"; i 0L; i 0L ];
           call "epoll_ctl$EPOLL_CTL_ADD" [ r 0; i 1L; r 1; group [ i 1L; i 0L ] ];
           call "epoll_ctl$EPOLL_CTL_ADD" [ r 0; i 1L; r 1; group [ i 1L; i 0L ] ];
           call "epoll_wait" [ r 0; group [ i 0L; i 0L ]; iv 4; iv 0 ];
           call "epoll_ctl$EPOLL_CTL_DEL" [ r 0; i 2L; r 1; group [ i 1L; i 0L ] ];
           call "epoll_ctl$EPOLL_CTL_DEL" [ r 0; i 2L; r 1; group [ i 1L; i 0L ] ];
         ])
  in
  check_ok "add" r.Exec.calls.(2);
  check_errno "re-add" (Some K.Errno.EEXIST) r.Exec.calls.(3);
  Alcotest.(check int64) "one ready" 1L r.Exec.calls.(4).Exec.retval;
  check_ok "del" r.Exec.calls.(5);
  check_errno "re-del" (Some K.Errno.ENOENT) r.Exec.calls.(6)

let test_epoll_bad_fd () =
  let r =
    run
      (prog
         [
           call "epoll_create" [ iv (-1) ];
           call "epoll_create" [ iv 4 ];
           call "epoll_ctl$EPOLL_CTL_ADD"
             [ r 1; i 1L; Value.Res_special 99L; group [ i 1L; i 0L ] ];
         ])
  in
  check_errno "negative size" (Some K.Errno.EINVAL) r.Exec.calls.(0);
  check_errno "watching a bad fd" (Some K.Errno.EBADF) r.Exec.calls.(2)

let test_aio_lifecycle () =
  let r =
    run
      (prog
         [
           call "io_setup" [ iv 4 ];
           call "io_submit" [ r 0; iv 0; ptr (Value.Group []) ];
           call "io_destroy" [ r 0 ];
           call "io_setup" [ i 0L ];
           call "io_submit" [ Value.Res_special 99L; iv 1; ptr (Value.Group []) ];
         ])
  in
  check_ok "setup" r.Exec.calls.(0);
  Alcotest.(check int64) "submit zero" 0L r.Exec.calls.(1).Exec.retval;
  check_ok "destroy with nothing inflight" r.Exec.calls.(2);
  check_errno "zero events" (Some K.Errno.EINVAL) r.Exec.calls.(3);
  check_errno "bad ctx" (Some K.Errno.EINVAL) r.Exec.calls.(4)

let test_chrdev_lifecycle () =
  let r =
    run
      (prog
         [
           call "open$chr" [ s "/dev/c0"; i 0L ];
           call "mknod$chr" [ s "/dev/c0"; i 0x2000L; i 0L ];
           call "mknod$chr" [ s "/dev/c0"; i 0x2000L; i 0L ];
           call "open$chr" [ s "/dev/c0"; i 0L ];
           call "unlink" [ s "/dev/c0" ];
           call "unlink" [ s "/dev/c0" ];
         ])
  in
  check_errno "open before mknod" (Some K.Errno.ENOENT) r.Exec.calls.(0);
  check_ok "mknod" r.Exec.calls.(1);
  check_errno "re-mknod" (Some K.Errno.EEXIST) r.Exec.calls.(2);
  check_ok "open" r.Exec.calls.(3);
  check_ok "unlink unregisters" r.Exec.calls.(4);
  check_errno "second unlink" (Some K.Errno.ENOENT) r.Exec.calls.(5)

(* ---- memfd ---- *)

let test_memfd_sealing_semantics () =
  let r =
    run
      (prog
         [
           call "memfd_create" [ ptr (s "m"); i 2L ]; (* allow sealing *)
           call "write" [ r 0; buf 64; iv 64 ];
           call "fcntl$ADD_SEALS" [ r 0; i 0x409L; i 0x8L ]; (* SEAL_WRITE *)
           call "write" [ r 0; buf 64; iv 64 ];
           call "fcntl$GET_SEALS" [ r 0; i 0x40aL ];
         ])
  in
  check_ok "write before seal" r.Exec.calls.(1);
  check_ok "seal" r.Exec.calls.(2);
  check_errno "write after SEAL_WRITE" (Some K.Errno.EPERM) r.Exec.calls.(3);
  Alcotest.(check int64) "seals readable" 0x8L r.Exec.calls.(4).Exec.retval

let test_memfd_seal_seal () =
  (* Without MFD_ALLOW_SEALING the object starts F_SEAL_SEAL'd. *)
  let r =
    run
      (prog
         [
           call "memfd_create" [ ptr (s "m"); i 0L ];
           call "fcntl$ADD_SEALS" [ r 0; i 0x409L; i 0x8L ];
         ])
  in
  check_errno "sealing is sealed" (Some K.Errno.EPERM) r.Exec.calls.(1)

let test_memfd_grow_seal () =
  let r =
    run
      (prog
         [
           call "memfd_create" [ ptr (s "m"); i 2L ];
           call "ftruncate" [ r 0; iv 4096 ];
           call "fcntl$ADD_SEALS" [ r 0; i 0x409L; i 0x4L ]; (* SEAL_GROW *)
           call "ftruncate" [ r 0; iv 8192 ];
           call "ftruncate" [ r 0; iv 100 ];
         ])
  in
  check_ok "grow before seal" r.Exec.calls.(1);
  check_errno "grow after SEAL_GROW" (Some K.Errno.EPERM) r.Exec.calls.(3);
  check_ok "shrink still fine" r.Exec.calls.(4)

let test_memfd_mmap_paths () =
  (* Figure 2: the sealed mapping takes branches the unsealed one
     cannot. *)
  let base =
    [
      call "memfd_create" [ ptr (s "m"); i 2L ];
      call "write" [ r 0; buf 64; iv 64 ];
    ]
  in
  let unsealed =
    run (prog (base @ [ call "mmap" [ vma; iv 4096; i 1L; i 2L; r 0; i 0L ] ]))
  in
  let sealed =
    run
      (prog
         (base
         @ [
             call "fcntl$ADD_SEALS" [ r 0; i 0x409L; i 0x8L ];
             call "mmap" [ vma; iv 4096; i 1L; i 2L; r 0; i 0L ];
           ]))
  in
  check_ok "unsealed map" unsealed.Exec.calls.(2);
  check_ok "sealed map" sealed.Exec.calls.(3);
  Alcotest.(check bool) "different mmap paths" false
    (Exec.cov_equal unsealed.Exec.calls.(2).Exec.cov sealed.Exec.calls.(3).Exec.cov)

let test_memfd_mmap_writable_sealed () =
  let r =
    run
      (prog
         [
           call "memfd_create" [ ptr (s "m"); i 2L ];
           call "fcntl$ADD_SEALS" [ r 0; i 0x409L; i 0x8L ];
           call "mmap" [ vma; iv 4096; i 3L; i 1L; r 0; i 0L ]; (* PROT_WRITE *)
         ])
  in
  check_errno "writable map of sealed memfd" (Some K.Errno.EPERM) r.Exec.calls.(2)

let test_memfd_mmap_empty () =
  let r =
    run
      (prog
         [
           call "memfd_create" [ ptr (s "m"); i 2L ];
           call "mmap" [ vma; iv 4096; i 1L; i 2L; r 0; i 0L ];
         ])
  in
  check_errno "empty object" (Some K.Errno.ENOMEM) r.Exec.calls.(1)

let test_fallocate_modes () =
  let r =
    run
      (prog
         [
           call "open" [ s "/tmp/f1"; i 0x40L; i 0x1ffL ];
           call "fallocate" [ r 0; i 0L; i 0L; iv 4096 ];
           call "fallocate" [ r 0; i 0L; i 0L; i 0L ];
           call "fstat" [ r 0; group [ i 0L; i 0L; i 0L ] ];
         ])
  in
  check_ok "allocate" r.Exec.calls.(1);
  check_errno "zero length" (Some K.Errno.EINVAL) r.Exec.calls.(2);
  check_ok "fstat" r.Exec.calls.(3)

let suite =
  [
    case "open missing" test_open_missing_enoent;
    case "open O_CREAT/reopen" test_open_creat_then_reopen;
    case "open empty path" test_open_null_path;
    case "write grows, read back" test_write_grows_read_back;
    case "read at EOF" test_read_at_eof;
    case "O_TRUNC" test_trunc_flag_resets_size;
    case "lseek whence" test_lseek_whence;
    case "close then use" test_close_then_use;
    case "dup shares object" test_dup_shares_object;
    case "dup keeps object alive" test_dup_keeps_object_alive;
    case "link/unlink lifecycle" test_link_unlink_lifecycle;
    case "epoll membership" test_epoll_membership;
    case "epoll bad args" test_epoll_bad_fd;
    case "aio lifecycle" test_aio_lifecycle;
    case "chrdev lifecycle" test_chrdev_lifecycle;
    case "memfd sealing" test_memfd_sealing_semantics;
    case "memfd F_SEAL_SEAL" test_memfd_seal_seal;
    case "memfd grow seal" test_memfd_grow_seal;
    case "memfd mmap paths differ (Fig 2)" test_memfd_mmap_paths;
    case "memfd writable sealed map" test_memfd_mmap_writable_sealed;
    case "memfd empty map" test_memfd_mmap_empty;
    case "fallocate modes" test_fallocate_modes;
  ]
