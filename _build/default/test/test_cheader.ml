(* The C-header -> Syzlang converter (the paper's Section 8 extension). *)

module Cheader = Healer_syzlang.Cheader
module Target = Healer_syzlang.Target
module Syscall = Healer_syzlang.Syscall
open Helpers

let sample_header =
  {|
/* A device interface header. */
#ifndef _FOO_H
#define _FOO_H

#include <linux/types.h>

#define FOO_FLAG_A 0x1
#define FOO_FLAG_B 0x2
#define FOO_FLAG_C (1 << 4)
#define FOO_MAGIC 0xabcd

struct foo_config {
    __u32 mode;
    __u64 offset;
    char name[32];
    unsigned int flags;
};

#define FOO_RESET _IO('f', 0x01)
#define FOO_SETUP _IOW('f', 0x02, struct foo_config)
#define FOO_QUERY _IOR('f', 0x03, struct foo_config)

long foo_submit(int fd, const char *buf, size_t count);

#endif
|}

let test_parse_defines () =
  let items = Cheader.parse sample_header in
  let defines =
    List.filter_map (function Cheader.Define (n, v) -> Some (n, v) | _ -> None) items
  in
  Alcotest.(check int) "four constants" 4 (List.length defines);
  Alcotest.(check int64) "shift evaluated" 16L (List.assoc "FOO_FLAG_C" defines)

let test_parse_struct () =
  let items = Cheader.parse sample_header in
  match
    List.find_opt (function Cheader.Struct_def ("foo_config", _) -> true | _ -> false) items
  with
  | Some (Cheader.Struct_def (_, fields)) ->
    Alcotest.(check (list (pair string string)))
      "field conversion"
      [ ("mode", "int32"); ("offset", "int64"); ("name", "buffer[in]");
        ("flags", "int32") ]
      fields
  | _ -> Alcotest.fail "struct not parsed"

let test_parse_ioctls () =
  let items = Cheader.parse sample_header in
  let ioctls =
    List.filter_map
      (function
        | Cheader.Ioctl { iname; dir; code; arg } -> Some (iname, (dir, code, arg))
        | _ -> None)
      items
  in
  Alcotest.(check int) "three ioctls" 3 (List.length ioctls);
  let dir, code, arg = List.assoc "FOO_SETUP" ioctls in
  Alcotest.(check string) "direction" "in" dir;
  Alcotest.(check (option string)) "struct arg" (Some "foo_config") arg;
  (* code = 'f' * 256 + 2 *)
  Alcotest.(check int64) "number" (Int64.of_int ((Char.code 'f' * 256) + 2)) code

let test_parse_proto () =
  let items = Cheader.parse sample_header in
  match List.find_opt (function Cheader.Proto _ -> true | _ -> false) items with
  | Some (Cheader.Proto { pname; params; _ }) ->
    Alcotest.(check string) "name" "foo_submit" pname;
    Alcotest.(check (list (pair string string)))
      "params"
      [ ("int32", "fd"); ("buffer[in]", "buf"); ("int64", "count") ]
      params
  | _ -> Alcotest.fail "prototype not parsed"

let test_group_defines () =
  let groups =
    Cheader.group_defines
      [ ("FOO_FLAG_A", 1L); ("FOO_FLAG_B", 2L); ("BAR_X", 9L); ("FOO_FLAG_C", 4L) ]
  in
  Alcotest.(check int) "two groups" 2 (List.length groups);
  Alcotest.(check int) "foo group size" 3
    (List.length (List.assoc "FOO_FLAG" groups))

let test_convert_compiles () =
  (* The emitted Syzlang must compile against a resource prelude, and
     the generated interfaces must be queryable. *)
  let generated = Cheader.convert ~fd_resource:"fd_foo" sample_header in
  let src = "resource fd[int32]: -1\nresource fd_foo[fd]\nopen_foo() fd_foo\n" ^ generated in
  let target = Target.of_string src in
  let setup = Target.find_exn target "ioctl$FOO_SETUP" in
  Alcotest.(check (list string)) "consumes the device fd" [ "fd_foo" ]
    (Target.consumes target setup);
  Alcotest.(check bool) "flag set emitted" true
    (Array.length (Target.flag_values target "foo_flag_flags") >= 2);
  Alcotest.(check bool) "prototype emitted" true
    (Target.find target "foo_submit" <> None);
  (* And the producer/consumer index wires the generated calls to the
     prelude's constructor — static learning sees them. *)
  let producers = Target.producers_of target "fd_foo" in
  Alcotest.(check bool) "open_foo produces for the ioctls" true
    (List.exists (fun (c : Syscall.t) -> c.Syscall.name = "open_foo") producers)

let test_convert_generates_fuzzable_target () =
  let generated = Cheader.convert ~fd_resource:"fd_foo" sample_header in
  let src = "resource fd[int32]: -1\nresource fd_foo[fd]\nopen_foo() fd_foo\n" ^ generated in
  let target = Target.of_string src in
  (* Value generation must handle every generated call. *)
  let rng = rng () in
  let ctx = { Healer_core.Value_gen.target; producers = (fun _ -> []) } in
  Array.iter
    (fun (c : Syscall.t) ->
      Alcotest.(check int) ("arity of " ^ c.Syscall.name)
        (List.length c.Syscall.args)
        (List.length (Healer_core.Value_gen.gen_args rng ctx c)))
    (Target.syscalls target)

let test_comments_stripped () =
  let items = Cheader.parse "/* #define HIDDEN 1 */\n#define SEEN 2 // tail\n" in
  match items with
  | [ Cheader.Define ("SEEN", 2L) ] -> ()
  | _ -> Alcotest.fail "comment handling"

let test_unsupported_raises () =
  let reject src =
    match Cheader.parse src with
    | exception Cheader.Unsupported _ -> ()
    | _ -> Alcotest.fail ("should reject: " ^ src)
  in
  (* A struct that starts like one we support but contains an unknown
     type must fail loudly rather than emit a wrong description. *)
  reject "struct bad {\n    frob_t weird;\n};\n";
  reject "struct unterminated {\n    int x;\n"

let test_unknown_struct_in_field () =
  match Cheader.parse "struct a {\n    struct missing m;\n};\n" with
  | exception Cheader.Unsupported _ -> ()
  | _ -> Alcotest.fail "unknown struct reference must be rejected"

let test_struct_ordering () =
  (* A struct may reference an earlier struct. *)
  let items =
    Cheader.parse
      "struct inner {\n    __u32 x;\n};\nstruct outer {\n    struct inner i;\n};\n"
  in
  match
    List.find_opt (function Cheader.Struct_def ("outer", _) -> true | _ -> false) items
  with
  | Some (Cheader.Struct_def (_, [ ("i", "inner") ])) -> ()
  | _ -> Alcotest.fail "nested struct reference"

let test_proto_void_params () =
  match Cheader.parse "long nop(void);\n" with
  | [ Cheader.Proto { pname = "nop"; params = []; _ } ] -> ()
  | _ -> Alcotest.fail "void parameter list"

let test_ioctl_without_struct_arg () =
  match Cheader.parse "#define F_KICK _IOW('f', 9, int)\n" with
  | [ Cheader.Ioctl { arg = None; dir = "in"; _ } ] -> ()
  | _ -> Alcotest.fail "scalar ioctl argument is dropped, not mis-typed"

let suite =
  [
    case "parse defines" test_parse_defines;
    case "parse struct" test_parse_struct;
    case "parse ioctls" test_parse_ioctls;
    case "parse prototype" test_parse_proto;
    case "group defines" test_group_defines;
    case "converted output compiles" test_convert_compiles;
    case "converted target fuzzable" test_convert_generates_fuzzable_target;
    case "comments stripped" test_comments_stripped;
    case "unsupported raises" test_unsupported_raises;
    case "unknown struct field" test_unknown_struct_in_field;
    case "struct ordering" test_struct_ordering;
    case "void params" test_proto_void_params;
    case "scalar ioctl arg" test_ioctl_without_struct_arg;
  ]
