(* The kernel plumbing itself: boot/reboot, dispatch, coverage regions,
   sanitizer mapping, version ordering, crash log machinery. *)

module K = Healer_kernel
module Target = Healer_syzlang.Target
module Exec = Healer_executor.Exec
open Helpers

let test_boot_reboot_preserve_config () =
  let k =
    K.Kernel.boot ~san:{ K.Sanitizer.default with kcsan = false }
      ~features:[ "usb" ] ~version:K.Version.V5_4 ()
  in
  let k' = K.Kernel.reboot k in
  Alcotest.(check string) "version preserved" "5.4"
    (K.Version.to_string (K.Kernel.version k'));
  Alcotest.(check (list string)) "features preserved" [ "usb" ] (K.Kernel.features k');
  Alcotest.(check bool) "sanitizers preserved" false
    (K.Kernel.sanitizers k').K.Sanitizer.kcsan

let test_reboot_resets_state () =
  let k = boot () in
  let p = prog [ call "open" [ s "/tmp/f0"; i 0x40L; i 0x1ffL ] ] in
  let k, r1 = Exec.run ~fresh_state:false k p in
  check_ok "created" r1.Exec.calls.(0);
  (* Without O_CREAT the file only opens if state persisted. *)
  let reopen = prog [ call "open" [ s "/tmp/f0"; i 0L; i 0L ] ] in
  let k, r2 = Exec.run ~fresh_state:false k reopen in
  check_ok "persists without reboot" r2.Exec.calls.(0);
  let _, r3 = Exec.run ~fresh_state:true k reopen in
  check_errno "fresh state forgets" (Some K.Errno.ENOENT) r3.Exec.calls.(0)

let test_target_memoized () =
  Alcotest.(check bool) "same compiled target" true
    (K.Kernel.target () == K.Kernel.target ())

let test_subsystem_of () =
  Alcotest.(check string) "kvm ioctl" "kvm" (K.Kernel.subsystem_of "ioctl$KVM_RUN");
  Alcotest.(check string) "generic write" "vfs" (K.Kernel.subsystem_of "write");
  Alcotest.(check string) "unknown" "?" (K.Kernel.subsystem_of "nonsense")

let test_coredump_without_fds () =
  (* No live descriptors: the dump takes the clean path. *)
  let k = boot ~version:K.Version.V5_11 () in
  let cov = K.Coverage.create () in
  K.Kernel.coredump k ~cov;
  Alcotest.(check bool) "covered something" true (K.Coverage.blocks cov <> [])

let test_coverage_regions () =
  let base = K.Coverage.region ~name:"test-region-a" ~size:16 in
  Alcotest.(check int) "idempotent" base (K.Coverage.region ~name:"test-region-a" ~size:16);
  Alcotest.(check int) "smaller re-request fine" base
    (K.Coverage.region ~name:"test-region-a" ~size:8);
  (match K.Coverage.region ~name:"test-region-a" ~size:32 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "larger re-registration must fail");
  Alcotest.(check string) "region_name resolves" "test-region-a"
    (K.Coverage.region_name (base + 3));
  Alcotest.(check bool) "regions are disjoint" true
    (K.Coverage.region ~name:"test-region-b" ~size:4 >= base + 16)

let test_coverage_collector () =
  let cov = K.Coverage.create () in
  K.Coverage.hit cov 5;
  K.Coverage.hit cov 3;
  K.Coverage.hit cov 5;
  Alcotest.(check (list int)) "first-hit order, deduped" [ 5; 3 ]
    (K.Coverage.blocks cov);
  K.Coverage.reset cov;
  Alcotest.(check (list int)) "reset" [] (K.Coverage.blocks cov)

let test_sanitizer_mapping () =
  let open K.Risk in
  let base = K.Sanitizer.none in
  Alcotest.(check bool) "uaf needs kasan" false (K.Sanitizer.detects base Use_after_free);
  Alcotest.(check bool) "uaf with kasan" true
    (K.Sanitizer.detects { base with kasan = true } Use_after_free);
  Alcotest.(check bool) "uninit needs kmsan" false (K.Sanitizer.detects base Uninit_value);
  Alcotest.(check bool) "race needs kcsan" false (K.Sanitizer.detects base Data_race);
  Alcotest.(check bool) "null-deref always visible" true
    (K.Sanitizer.detects base Null_ptr_deref);
  Alcotest.(check bool) "deadlock always visible" true
    (K.Sanitizer.detects base Deadlock)

let test_version_ordering () =
  let open K.Version in
  Alcotest.(check bool) "4.19 < 5.11" true (compare V4_19 V5_11 < 0);
  Alcotest.(check bool) "at_least reflexive" true (at_least V5_4 V5_4);
  Alcotest.(check bool) "at_least strict" false (at_least V5_0 V5_4);
  Alcotest.(check int) "all versions" 5 (List.length all);
  List.iter
    (fun v ->
      Alcotest.(check (option string)) "of_string/to_string roundtrip"
        (Some (to_string v))
        (Option.map to_string (of_string (to_string v))))
    all

let test_errno_codes_unique () =
  let all =
    [ K.Errno.EPERM; ENOENT; EINTR; EIO; EBADF; EAGAIN; ENOMEM; EFAULT; EBUSY;
      EEXIST; ENODEV; EINVAL; ENOTTY; ENOSPC; EPIPE; ENOSYS; ENOTCONN; EISCONN;
      EADDRINUSE; EDESTADDRREQ; EOPNOTSUPP; EALREADY; EINPROGRESS; ETIMEDOUT;
      EACCES; ENXIO; EOVERFLOW ]
  in
  let codes = List.map K.Errno.code all in
  Alcotest.(check int) "codes distinct" (List.length all)
    (List.length (List.sort_uniq compare codes));
  List.iter (fun c -> Alcotest.(check bool) "positive" true (c > 0)) codes

let test_ctx_bug_unknown_key () =
  let k = boot () in
  let cov = K.Coverage.create () in
  let ctx = K.Ctx.make ~st:(K.Kernel.state k) ~san:K.Sanitizer.default cov in
  match K.Ctx.bug ctx "definitely_not_a_bug" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "typo'd bug keys must fail loudly"

let test_crash_log_shape () =
  let log =
    K.Crash.render_log ~bug_key:"tcp_disconnect" ~risk:K.Risk.Null_ptr_deref
      ~call_name:"connect$unspec"
  in
  let lines = String.split_on_char '\n' log in
  Alcotest.(check bool) "multi-line" true (List.length lines >= 5);
  Alcotest.(check bool) "has RIP line" true
    (List.exists (fun l -> String.length l >= 4 && String.sub l 0 4 = "RIP:") lines);
  (* Naive first-address symbolization would hit the header; the RIP
     frame and the noise frames must all be distinct addresses. *)
  Alcotest.(check bool) "noise differs from faulting address" true
    (K.Crash.address_of "tcp_disconnect" <> K.Crash.address_of "tcp_disconnect:t")

let test_exec_call_enosys () =
  (* A syscall object not in any handler table returns ENOSYS; build
     one from a private target. *)
  let t = Target.of_string "phantom(a int32)" in
  let k = boot () in
  let cov = K.Coverage.create () in
  let r = K.Kernel.exec_call k ~cov (Target.find_exn t "phantom") [ K.Arg.Int 0L ] in
  Alcotest.(check (option string)) "ENOSYS" (Some "ENOSYS")
    (Option.map K.Errno.to_string r.K.Ctx.err)

let suite =
  [
    case "boot/reboot preserve config" test_boot_reboot_preserve_config;
    case "reboot resets state" test_reboot_resets_state;
    case "target memoized" test_target_memoized;
    case "subsystem_of" test_subsystem_of;
    case "coredump without fds" test_coredump_without_fds;
    case "coverage regions" test_coverage_regions;
    case "coverage collector" test_coverage_collector;
    case "sanitizer mapping" test_sanitizer_mapping;
    case "version ordering" test_version_ordering;
    case "errno codes unique" test_errno_codes_unique;
    case "ctx bug unknown key" test_ctx_bug_unknown_key;
    case "crash log shape" test_crash_log_shape;
    case "exec_call ENOSYS" test_exec_call_enosys;
  ]
