(* Remaining subsystems: framebuffer, rdma, io_uring, block, journal,
   mounts, vivid, usb, compat. *)

module K = Healer_kernel
module Exec = Healer_executor.Exec
open Helpers

let fb0 = call "openat$fb0" [ i (-100L); s "/dev/fb0"; i 0L ]

let test_fb_geometry () =
  let r =
    run
      (prog
         [
           fb0;
           call "ioctl$FBIOGET_VSCREENINFO" [ r 0; i 0x4600L; group [ i 0L; i 0L; i 0L; i 0L ] ];
           call "ioctl$FBIOPUT_VSCREENINFO"
             [ r 0; i 0x4601L; group [ i 1280L; i 1024L; i 32L; i 39721L ] ];
           call "ioctl$FBIOPUT_VSCREENINFO"
             [ r 0; i 0x4601L; group [ i 1280L; i 1024L; i 0L; i 39721L ] ];
           call "ioctl$FBIOPUT_VSCREENINFO" [ r 0; i 0x4601L; Value.Null ];
         ])
  in
  check_ok "get" r.Exec.calls.(1);
  check_ok "put valid" r.Exec.calls.(2);
  check_errno "zero bpp" (Some K.Errno.EINVAL) r.Exec.calls.(3);
  check_errno "null var" (Some K.Errno.EFAULT) r.Exec.calls.(4)

let test_fb_font_lifecycle () =
  let r =
    run
      (prog
         [
           fb0;
           call "ioctl$KDFONTOP_GET" [ r 0; i 0x4b72L; group [ i 1L; i 0L; i 0L; buf 0 ] ];
           call "ioctl$KDFONTOP_SET" [ r 0; i 0x4b72L; group [ i 0L; i 16L; i 8L; buf 256 ] ];
           call "ioctl$KDFONTOP_GET" [ r 0; i 0x4b72L; group [ i 1L; i 0L; i 0L; buf 0 ] ];
           call "ioctl$KDFONTOP_SET" [ r 0; i 0x4b72L; group [ i 0L; i 99L; i 8L; buf 256 ] ];
         ])
  in
  check_errno "get without font" (Some K.Errno.ENODEV) r.Exec.calls.(1);
  check_ok "set" r.Exec.calls.(2);
  check_ok "get after set" r.Exec.calls.(3);
  check_errno "height out of range" (Some K.Errno.EINVAL) r.Exec.calls.(4)

let test_fb_write_sizes () =
  let small =
    run (prog [ fb0; call "write" [ r 0; buf 64; iv 64 ] ])
  in
  let large =
    run (prog [ fb0; call "write" [ r 0; buf 8192; iv 8192 ] ])
  in
  check_ok "small blit" small.Exec.calls.(1);
  check_ok "large blit" large.Exec.calls.(1);
  Alcotest.(check bool) "size-dependent path" false
    (Exec.cov_equal small.Exec.calls.(1).Exec.cov large.Exec.calls.(1).Exec.cov)

(* ---- rdma ---- *)

let rdma_open = call "openat$rdma_cm" [ i (-100L); s "/dev/infiniband/rdma_cm"; i 0L ]
let sockaddr = group [ i 2L; i 80L; i 1L ]

let test_rdma_id_lifecycle () =
  let r =
    run
      (prog
         [
           rdma_open;
           call "ioctl$RDMA_LISTEN" [ r 0; i 0xc0184603L; Value.Res_special 77L; iv 4 ];
           call "ioctl$RDMA_CREATE_ID" [ r 0; i 0xc0184600L; i 0L ];
           call "ioctl$RDMA_LISTEN" [ r 0; i 0xc0184603L; r 2; iv 4 ];
           call "ioctl$RDMA_BIND_ADDR" [ r 0; i 0xc0184601L; r 2; sockaddr ];
           call "ioctl$RDMA_LISTEN" [ r 0; i 0xc0184603L; r 2; iv 4 ];
           call "ioctl$RDMA_DESTROY_ID" [ r 0; i 0xc0184605L; r 2 ];
           call "ioctl$RDMA_DESTROY_ID" [ r 0; i 0xc0184605L; r 2 ];
         ])
  in
  check_errno "unknown id" (Some K.Errno.ENOENT) r.Exec.calls.(1);
  check_errno "listen before bind" (Some K.Errno.EINVAL) r.Exec.calls.(3);
  check_ok "bind" r.Exec.calls.(4);
  check_ok "listen" r.Exec.calls.(5);
  check_ok "destroy" r.Exec.calls.(6);
  check_errno "double destroy" (Some K.Errno.ENOENT) r.Exec.calls.(7)

let test_rdma_connect_needs_resolve () =
  let r =
    run
      (prog
         [
           rdma_open;
           call "ioctl$RDMA_CREATE_ID" [ r 0; i 0xc0184600L; i 0L ];
           call "ioctl$RDMA_CONNECT" [ r 0; i 0xc0184604L; r 1 ];
           call "ioctl$RDMA_RESOLVE_ADDR" [ r 0; i 0xc0184602L; r 1; sockaddr ];
           call "ioctl$RDMA_CONNECT" [ r 0; i 0xc0184604L; r 1 ];
         ])
  in
  check_errno "connect before resolve" (Some K.Errno.EINVAL) r.Exec.calls.(2);
  check_ok "connect after resolve" r.Exec.calls.(4)

(* ---- io_uring ---- *)

let uring_setup = call "io_uring_setup" [ iv 64; group [ iv 64; iv 64; i 0L ] ]

let test_uring_setup_validation () =
  let r =
    run
      (prog
         [
           call "io_uring_setup" [ i 0L; group [ i 0L; i 0L; i 0L ] ];
           call "io_uring_setup" [ iv 100000; group [ i 0L; i 0L; i 0L ] ];
           uring_setup;
         ])
  in
  check_errno "zero entries" (Some K.Errno.EINVAL) r.Exec.calls.(0);
  check_errno "too many" (Some K.Errno.EINVAL) r.Exec.calls.(1);
  check_ok "valid" r.Exec.calls.(2)

let test_uring_buffers () =
  let iov = ptr (Value.Group [ Value.Group [ vma; i 4096L ] ]) in
  let r =
    run
      (prog
         [
           uring_setup;
           call "io_uring_register$UNREGISTER_BUFFERS" [ r 0; i 1L; ptr (i 0L); i 0L ];
           call "io_uring_register$BUFFERS" [ r 0; i 0L; iov; iv 1 ];
           call "io_uring_register$BUFFERS" [ r 0; i 0L; iov; iv 1 ];
           call "io_uring_register$UNREGISTER_BUFFERS" [ r 0; i 1L; ptr (i 0L); i 0L ];
         ])
  in
  check_errno "unregister with none" (Some K.Errno.ENXIO) r.Exec.calls.(1);
  check_ok "register" r.Exec.calls.(2);
  check_errno "double register" (Some K.Errno.EBUSY) r.Exec.calls.(3);
  check_ok "unregister" r.Exec.calls.(4)

let test_uring_enter_caps_submit () =
  let r =
    run
      (prog
         [
           call "io_uring_setup" [ iv 8; group [ iv 8; iv 8; i 0L ] ];
           call "io_uring_enter" [ r 0; iv 100; i 0L; i 0L ];
           call "io_uring_enter" [ r 0; iv (-1); i 0L; i 0L ];
         ])
  in
  Alcotest.(check int64) "capped at ring size" 8L r.Exec.calls.(1).Exec.retval;
  check_errno "negative submit" (Some K.Errno.EINVAL) r.Exec.calls.(2)

(* ---- block ---- *)

let test_nbd_state_machine () =
  let r =
    run
      (prog
         [
           call "openat$nbd" [ i (-100L); s "/dev/nbd0"; i 0L ];
           call "ioctl$NBD_DO_IT" [ r 0; i 0xab03L ];
           call "socket$tcp" [ i 2L; i 1L; i 6L ];
           call "ioctl$NBD_SET_SOCK" [ r 0; i 0xab00L; r 2 ];
           call "ioctl$NBD_DO_IT" [ r 0; i 0xab03L ];
           call "ioctl$NBD_DO_IT" [ r 0; i 0xab03L ];
         ])
  in
  check_errno "do_it without socket" (Some K.Errno.EINVAL) r.Exec.calls.(1);
  check_ok "set sock" r.Exec.calls.(3);
  check_ok "do_it" r.Exec.calls.(4);
  check_errno "do_it while running" (Some K.Errno.EBUSY) r.Exec.calls.(5)

let test_nbd_set_sock_validation () =
  let r =
    run
      (prog
         [
           call "openat$nbd" [ i (-100L); s "/dev/nbd0"; i 0L ];
           call "open" [ s "/etc/passwd"; i 0L; i 0L ];
           call "ioctl$NBD_SET_SOCK" [ r 0; i 0xab00L; r 1 ];
         ])
  in
  check_errno "backing fd must be a socket" (Some K.Errno.EINVAL) r.Exec.calls.(2)

let test_loop_partitions () =
  let part n = group [ iv n; i 0L; i 0L ] in
  let r =
    run
      (prog
         [
           call "openat$loop" [ i (-100L); s "/dev/loop0"; i 0L ];
           call "ioctl$BLKRRPART" [ r 0; i 0x125fL ];
           call "open" [ s "/tmp/f0"; i 0x40L; i 0x1ffL ];
           call "ioctl$LOOP_SET_FD" [ r 0; i 0x4c00L; r 2 ];
           call "ioctl$LOOP_SET_FD" [ r 0; i 0x4c00L; r 2 ];
           call "ioctl$BLKPG_ADD" [ r 0; i 0x1269L; part 1 ];
           call "ioctl$BLKPG_ADD" [ r 0; i 0x1269L; part 1 ];
           call "ioctl$BLKPG_ADD" [ r 0; i 0x1269L; part 99 ];
           call "ioctl$LOOP_CLR_FD" [ r 0; i 0x4c01L ];
           call "ioctl$LOOP_CLR_FD" [ r 0; i 0x4c01L ];
         ])
  in
  check_errno "rrpart without backing" (Some K.Errno.ENXIO) r.Exec.calls.(1);
  check_ok "set fd" r.Exec.calls.(3);
  check_errno "set fd twice" (Some K.Errno.EBUSY) r.Exec.calls.(4);
  check_ok "add part" r.Exec.calls.(5);
  check_errno "duplicate part" (Some K.Errno.EBUSY) r.Exec.calls.(6);
  check_errno "part number range" (Some K.Errno.EINVAL) r.Exec.calls.(7);
  check_ok "clear" r.Exec.calls.(8);
  check_errno "double clear" (Some K.Errno.ENXIO) r.Exec.calls.(9)

(* ---- ext4/jbd2 and mounts ---- *)

let test_ext4_paths () =
  let r =
    run
      (prog
         [
           call "open$ext4" [ s "/etc/passwd"; i 0x40L; i 0x1ffL ];
           call "open$ext4" [ s "/mnt/ext4/f0"; i 0x40L; i 0x1ffL ];
           call "write" [ r 1; buf 128; iv 128 ];
           call "fsync$ext4" [ r 1 ];
           call "fchmod$ext4" [ Value.Res_special 1L; iv 420 ];
         ])
  in
  check_errno "not on the ext4 mount" (Some K.Errno.ENOENT) r.Exec.calls.(0);
  check_ok "journaled write" r.Exec.calls.(2);
  check_ok "commit" r.Exec.calls.(3);
  check_errno "fchmod on bad fd" (Some K.Errno.EBADF) r.Exec.calls.(4)

let test_mount_lifecycle () =
  let r =
    run
      (prog
         [
           call "mount$ext4" [ s "/dev/loop0"; s "/mnt/a"; s "ext4"; i 0L; ptr (i 0L) ];
           call "mount$ext4" [ s "/dev/loop0"; s "/mnt/a"; s "ext4"; i 0L; ptr (i 0L) ];
           call "mount$ext4" [ s "/dev/loop0"; s "/bogus"; s "ext4"; i 0L; ptr (i 0L) ];
           call "umount" [ s "/mnt/a" ];
         ])
  in
  check_ok "mount" r.Exec.calls.(0);
  check_errno "busy mountpoint" (Some K.Errno.EBUSY) r.Exec.calls.(1);
  check_errno "bad mountpoint" (Some K.Errno.ENOENT) r.Exec.calls.(2);
  check_ok "umount" r.Exec.calls.(3)

let test_mount_nfs_versions () =
  let data v namlen = group [ i v; i namlen; buf 8 ] in
  let r =
    run
      (prog
         [
           call "mount$nfs" [ s "10.0.0.1:/export"; s "/mnt/a"; data 1L 16L ];
           call "mount$nfs" [ s "10.0.0.1:/export"; s "/mnt/a"; data 4L 16L ];
         ])
  in
  check_errno "nfs v1 rejected" (Some K.Errno.EINVAL) r.Exec.calls.(0);
  check_ok "nfs v4" r.Exec.calls.(1)

(* ---- vivid ---- *)

let vivid_open = call "openat$vivid" [ i (-100L); s "/dev/video0"; i 0L ]
let fmt_640 = group [ iv 640; iv 480; i 0L ]

let test_vivid_streaming () =
  let r =
    run
      (prog
         [
           vivid_open;
           call "ioctl$VIDIOC_STREAMON" [ r 0; i 0x40045612L ];
           call "ioctl$VIDIOC_S_FMT" [ r 0; i 0xc0d05605L; fmt_640 ];
           call "ioctl$VIDIOC_STREAMON" [ r 0; i 0x40045612L ];
           call "ioctl$VIDIOC_STREAMON" [ r 0; i 0x40045612L ];
           call "ioctl$VIDIOC_STREAMOFF" [ r 0; i 0x40045613L ];
           call "ioctl$VIDIOC_STREAMOFF" [ r 0; i 0x40045613L ];
         ])
  in
  check_errno "stream before fmt" (Some K.Errno.EINVAL) r.Exec.calls.(1);
  check_ok "stream on" r.Exec.calls.(3);
  check_errno "double on" (Some K.Errno.EBUSY) r.Exec.calls.(4);
  check_ok "stream off" r.Exec.calls.(5);
  check_errno "double off" (Some K.Errno.EINVAL) r.Exec.calls.(6)

let test_vivid_fmt_validation () =
  let r =
    run
      (prog
         [
           vivid_open;
           call "ioctl$VIDIOC_S_FMT" [ r 0; i 0xc0d05605L; group [ i 0L; iv 480; i 0L ] ];
           call "ioctl$VIDIOC_REQBUFS" [ r 0; i 0xc0145608L; iv 99 ];
         ])
  in
  check_errno "zero width" (Some K.Errno.EINVAL) r.Exec.calls.(1);
  check_errno "too many buffers" (Some K.Errno.EINVAL) r.Exec.calls.(2)

(* ---- usb (feature gated) ---- *)

let test_usb_lifecycle_with_feature () =
  let r =
    run ~features:[ "usb" ]
      (prog
         [
           call "syz_usb_connect" [ buf 4 ];
           call "syz_usb_connect" [ buf 18 ];
           call "syz_usb_disconnect" [ r 1 ];
           call "syz_usb_disconnect" [ r 1 ];
         ])
  in
  check_errno "short descriptor" (Some K.Errno.EINVAL) r.Exec.calls.(0);
  check_ok "connect" r.Exec.calls.(1);
  check_ok "disconnect" r.Exec.calls.(2);
  check_errno "double disconnect" (Some K.Errno.ENODEV) r.Exec.calls.(3)

(* ---- compat long tail ---- *)

let test_compat_calls () =
  let r =
    run
      (prog
         [
           call "prctl$PR_SET_NAME" [ iv 4; i 0L ];
           call "prctl$PR_SET_NAME" [ iv (-4); i 0L ];
           call "clock_gettime$MONOTONIC" [ i 0L; i 0L ];
         ])
  in
  check_ok "ok args" r.Exec.calls.(0);
  check_errno "negative arg" (Some K.Errno.EINVAL) r.Exec.calls.(1);
  check_ok "clock" r.Exec.calls.(2)

let test_compat_is_isolated () =
  (* Compat calls have no resources, so they never gain relations and
     never influence any state: running one between two stateful calls
     does not change the second call's coverage. *)
  let without =
    run
      (prog
         [
           call "socket$tcp" [ i 2L; i 1L; i 6L ];
           call "bind" [ r 0; sockaddr ];
         ])
  in
  let with_noise =
    run
      (prog
         [
           call "socket$tcp" [ i 2L; i 1L; i 6L ];
           call "umask$SET" [ iv 18; i 0L ];
           call "bind" [ r 0; sockaddr ];
         ])
  in
  Alcotest.(check bool) "bind coverage unaffected" true
    (Exec.cov_equal without.Exec.calls.(1).Exec.cov
       with_noise.Exec.calls.(2).Exec.cov)

let suite =
  [
    case "fb geometry" test_fb_geometry;
    case "fb font lifecycle" test_fb_font_lifecycle;
    case "fb write sizes" test_fb_write_sizes;
    case "rdma id lifecycle" test_rdma_id_lifecycle;
    case "rdma connect needs resolve" test_rdma_connect_needs_resolve;
    case "uring setup validation" test_uring_setup_validation;
    case "uring buffers" test_uring_buffers;
    case "uring enter caps" test_uring_enter_caps_submit;
    case "nbd state machine" test_nbd_state_machine;
    case "nbd set-sock validation" test_nbd_set_sock_validation;
    case "loop partitions" test_loop_partitions;
    case "ext4 paths" test_ext4_paths;
    case "mount lifecycle" test_mount_lifecycle;
    case "mount nfs versions" test_mount_nfs_versions;
    case "vivid streaming" test_vivid_streaming;
    case "vivid fmt validation" test_vivid_fmt_validation;
    case "usb lifecycle (feature)" test_usb_lifecycle_with_feature;
    case "compat calls" test_compat_calls;
    case "compat isolated" test_compat_is_isolated;
  ]
