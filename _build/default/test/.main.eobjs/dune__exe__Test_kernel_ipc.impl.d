test/test_kernel_ipc.ml: Alcotest Array Healer_core Healer_executor Healer_kernel Healer_syzlang Helpers
