test/test_kernel_sock.ml: Alcotest Array Healer_executor Healer_kernel Helpers Value
