test/helpers.ml: Alcotest Bytes Healer_executor Healer_kernel Healer_syzlang Healer_util Int64 Lazy Option QCheck2 QCheck_alcotest Random
