test/test_syzlang.ml: Alcotest Array Healer_kernel Healer_syzlang Helpers List Printf String
