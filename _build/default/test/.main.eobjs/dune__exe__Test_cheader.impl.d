test/test_cheader.ml: Alcotest Array Char Healer_core Healer_syzlang Helpers Int64 List
