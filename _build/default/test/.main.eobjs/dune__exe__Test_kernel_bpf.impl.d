test/test_kernel_bpf.ml: Alcotest Array Healer_executor Healer_kernel Helpers List Value
