test/test_kernel_kvm_tty.ml: Alcotest Array Healer_executor Healer_kernel Helpers
