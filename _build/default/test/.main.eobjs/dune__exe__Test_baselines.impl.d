test/test_baselines.ml: Alcotest Array Choice_table Distill Healer_core Healer_executor Healer_syzlang Helpers List Printf Seeds
