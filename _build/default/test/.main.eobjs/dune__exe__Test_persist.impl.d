test/test_persist.ml: Alcotest Corpus Filename Fun Fuzzer Healer_core Healer_executor Healer_kernel Healer_syzlang Helpers List Option Persist Relation_table String Sys
