test/test_kernel_vfs.ml: Alcotest Array Healer_executor Healer_kernel Helpers Value
