test/test_genmut.ml: Alcotest Array Builder Corpus Gen Healer_core Healer_executor Healer_syzlang Healer_util Helpers Int64 List Mutate Option QCheck2 Value_gen
