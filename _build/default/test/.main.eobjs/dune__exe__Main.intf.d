test/main.mli:
