test/test_bugs.ml: Alcotest Array Bug_repros Healer_executor Healer_kernel Helpers Int64 List
