test/test_triage_fuzzer.ml: Alcotest Campaign Corpus Fuzzer Healer_core Healer_executor Healer_kernel Helpers List Option Relation_table Static_learning Triage
