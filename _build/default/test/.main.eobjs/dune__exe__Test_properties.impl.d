test/test_properties.ml: Array Bytes Char Dynamic_learning Gen Healer_core Healer_executor Healer_kernel Healer_syzlang Healer_util Helpers List Minimize Prog_cov QCheck2 Relation_table
