test/bug_repros.ml: Bytes Healer_executor Healer_kernel Helpers List String Value
