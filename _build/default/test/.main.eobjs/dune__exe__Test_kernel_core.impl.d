test/test_kernel_core.ml: Alcotest Array Healer_executor Healer_kernel Healer_syzlang Helpers List Option String
