test/test_kernel_misc.ml: Alcotest Array Healer_executor Healer_kernel Helpers Value
