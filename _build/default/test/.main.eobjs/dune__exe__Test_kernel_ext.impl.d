test/test_kernel_ext.ml: Alcotest Array Healer_executor Healer_kernel Helpers Int64 List Value
