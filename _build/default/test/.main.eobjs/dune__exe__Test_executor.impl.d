test/test_executor.ml: Alcotest Array Buffer Bytes Healer_executor Healer_kernel Healer_syzlang Helpers Int64 List Printf QCheck2 String
