test/test_util.ml: Alcotest Array Healer_util Helpers List QCheck2 String
